/**
 * @file
 * Figure 11: L1 cache miss rate of BVH accesses over time for the LANDS
 * scene — the baseline GPU (ray stationary) versus an RT unit operating
 * permanently in treelet-stationary mode (naive treelet queues, no
 * grouping).
 *
 * Shape to reproduce: treelet-stationary starts far below the baseline
 * (the paper dips to ~9%) while queues are full, then rises past the
 * baseline (~75-80%) once queues become underpopulated; the baseline
 * plateaus around its steady miss rate.
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    // This figure is a single-scene time series.
    std::string scene = opt.scenes.size() == 1 ? opt.scenes[0] : "LANDS";
    printBenchHeader("Figure 11: L1 BVH miss rate over time (" + scene +
                         ")",
                     opt);

    GpuConfig base = opt.apply(GpuConfig{});

    // "Permanently treelet stationary": every ray goes through the
    // queues and every queue is dispatched as a treelet warp no matter
    // how small (grouping and repacking off).
    GpuConfig tstat = opt.apply(GpuConfig::virtualizedTreeletQueues());
    tstat.groupUnderpopulated = false;
    tstat.repackThreshold = 0;

    RunStats rb = runScene(scene, base, opt);
    RunStats rt = runScene(scene, tstat, opt);

    const auto &sb = rb.bvhMissSeries;
    const auto &st = rt.bvhMissSeries;
    size_t n = std::min(sb.size(), st.size());

    Table t({"time_pct", "baseline_miss", "treelet_stationary_miss"});
    for (size_t i = 0; i < n; i++) {
        t.row()
            .cell(double(i) * 100.0 / double(n), 1)
            .cell(sb[i], 3)
            .cell(st[i], 3);
    }
    t.print(std::cout);
    writeCsv(opt, t, "fig11_missrate_time.csv");

    // Crossover summary.
    double early_t = 0, late_t = 0, early_b = 0, late_b = 0;
    size_t half = std::max<size_t>(1, n / 2);
    for (size_t i = 0; i < n; i++) {
        (i < half ? early_t : late_t) += st[i];
        (i < half ? early_b : late_b) += sb[i];
    }
    std::cout << "\nfirst-half mean: baseline "
              << formatDouble(early_b / half, 3) << " vs treelet "
              << formatDouble(early_t / half, 3)
              << "\nsecond-half mean: baseline "
              << formatDouble(late_b / double(n - half), 3)
              << " vs treelet "
              << formatDouble(late_t / double(n - half), 3)
              << "\npaper: treelet mode dips to ~0.09 early, rises to "
                 "~0.75-0.80 late; baseline plateaus ~0.60\n";
    return 0;
}
