/**
 * @file
 * Figure 1: performance bottlenecks of the baseline RT unit.
 *  (a) L1 miss rate of BVH accesses issued from the RT unit, per scene.
 *  (b) SIMT efficiency of the baseline RT unit, per scene.
 * Scenes print in ascending measured BVH size, as the paper plots them.
 * Shape to reproduce: high miss rates loosely rising with BVH size and
 * uniformly low SIMT efficiency (paper: avg 58% miss, ~0.37 SIMT).
 */

#include <algorithm>
#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 1: baseline RT unit bottlenecks", opt);

    GpuConfig cfg = opt.apply(GpuConfig{});
    std::vector<RunStats> runs = runAllScenes(
        opt, [&](const std::string &) { return cfg; });

    // Sort rows by measured BVH size (the paper's x-axis order).
    std::vector<size_t> order(opt.scenes.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return getSceneBundle(opt.scenes[a], opt.sceneScale)
                   .bvhStats.totalBytes <
               getSceneBundle(opt.scenes[b], opt.sceneScale)
                   .bvhStats.totalBytes;
    });

    Table t({"scene", "bvh_mb", "l1_bvh_miss_rate", "simt_efficiency"});
    std::vector<double> miss, simt;
    for (size_t i : order) {
        const auto &b = getSceneBundle(opt.scenes[i], opt.sceneScale);
        const RunStats &rs = runs[i];
        miss.push_back(rs.bvhL1MissRate);
        simt.push_back(rs.simtEfficiency());
        t.row()
            .cell(opt.scenes[i])
            .cell(double(b.bvhStats.totalBytes) / 1048576.0, 2)
            .cell(rs.bvhL1MissRate, 3)
            .cell(rs.simtEfficiency(), 3);
    }
    t.row().cell("MEAN").cell("").cell(mean(miss), 3).cell(mean(simt), 3);

    t.print(std::cout);
    writeCsv(opt, t, "fig01_baseline.csv");

    std::cout << "\npaper: avg miss 0.58 (up to 0.70); avg SIMT ~0.37\n";
    return 0;
}
