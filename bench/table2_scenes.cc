/**
 * @file
 * Table 2: summary of evaluation scenes — BVH size and triangle count
 * of every stand-in scene next to the LumiBench values the paper
 * reports. The shape to verify: ascending BVH size in the same order.
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Table 2: evaluation scenes", opt);

    Table t({"scene", "tris", "bvh_mb", "treelets", "nodes",
             "paper_tris", "paper_bvh_mb", "description"});

    std::vector<const SceneBundle *> bundles(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        bundles[i] = &getSceneBundle(name, opt.sceneScale);
    });

    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const SceneBundle &b = *bundles[i];
        const SceneSpec &spec = sceneSpec(b.name);
        t.row()
            .cell(b.name)
            .cell(uint64_t(b.scene.triangles.size()))
            .cell(double(b.bvhStats.totalBytes) / (1024.0 * 1024.0), 2)
            .cell(uint64_t(b.bvhStats.treeletCount))
            .cell(uint64_t(b.bvhStats.nodeCount))
            .cell(uint64_t(spec.paperTriCount))
            .cell(spec.paperBvhMb, 2)
            .cell(spec.description);
    }
    t.print(std::cout);
    writeCsv(opt, t, "table2_scenes.csv");
    return 0;
}
