/**
 * @file
 * Microbenchmarks (google-benchmark): throughput sanity for the
 * substrate kernels — intersection tests, BVH construction, functional
 * traversal, treelet-order traversal and the cache model. These do not
 * correspond to a paper figure; they document the host-side cost of the
 * simulator's building blocks.
 */

#include <cstdlib>
#include <filesystem>

#include <benchmark/benchmark.h>

#include "bvh/bvh.hh"
#include "bvh/traverser.hh"
#include "core/arch.hh"
#include "geom/rng.hh"
#include "geom/simd.hh"
#include "gpu/rt_unit.hh"
#include "harness/run_cache.hh"
#include "memsys/cache.hh"
#include "memsys/memsys.hh"
#include "scene/registry.hh"

namespace
{

using namespace trt;

const Scene &
benchScene()
{
    static Scene s = buildScene("BUNNY", 0.25f);
    return s;
}

const Bvh &
benchBvh()
{
    static Bvh b = Bvh::build(benchScene().triangles);
    return b;
}

Ray
randomRay(Pcg32 &rng, const Aabb &bounds)
{
    Vec3 e = bounds.extent();
    Vec3 o{bounds.lo.x + e.x * rng.nextFloat(),
           bounds.lo.y + e.y * rng.nextFloat(),
           bounds.lo.z + e.z * rng.nextFloat()};
    Vec3 d = normalize(Vec3{rng.nextFloat() - 0.5f, rng.nextFloat() - 0.5f,
                            rng.nextFloat() - 0.5f});
    return Ray(o, d);
}

void
BM_TriangleIntersect(benchmark::State &state)
{
    Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0};
    Ray r({0.1f, 0.0f, -2}, {0, 0, 1});
    float t, u, v;
    for (auto _ : state) {
        benchmark::DoNotOptimize(intersectTriangle(r, tri, t, u, v));
    }
}
BENCHMARK(BM_TriangleIntersect);

void
BM_AabbIntersect(benchmark::State &state)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    Ray r({0, 0, -5}, {0.1f, 0.05f, 1});
    RayInv inv(r);
    float t;
    for (auto _ : state) {
        benchmark::DoNotOptimize(intersectAabb(r, inv, box, t));
    }
}
BENCHMARK(BM_AabbIntersect);

/**
 * Builder throughput, serial vs parallel, two scene sizes.
 * Args: (0 = BUNNY small / 1 = PARTY large, build threads).
 */
void
BM_BvhBuild(benchmark::State &state)
{
    static Scene small = buildScene("BUNNY", 0.25f);
    static Scene large = buildScene("PARTY", 0.25f);
    const Scene &s = state.range(0) ? large : small;
    BvhConfig cfg;
    cfg.buildThreads = uint32_t(state.range(1));
    for (auto _ : state) {
        Bvh b = Bvh::build(s.triangles, cfg);
        benchmark::DoNotOptimize(b.totalBytes());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(s.triangles.size()));
    state.SetLabel(s.name + (state.range(1) == 1 ? " serial"
                                                 : " parallel"));
}
BENCHMARK(BM_BvhBuild)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 1})
    ->Args({0, 8})
    ->Args({1, 1})
    ->Args({1, 8});

void
BM_ClosestHit(benchmark::State &state)
{
    const Bvh &bvh = benchBvh();
    Pcg32 rng(1);
    Aabb bounds = bvh.rootBounds();
    for (auto _ : state) {
        Ray r = randomRay(rng, bounds);
        benchmark::DoNotOptimize(bvh.intersectClosest(r));
    }
}
BENCHMARK(BM_ClosestHit);

void
BM_TreeletOrderTraversal(benchmark::State &state)
{
    const Bvh &bvh = benchBvh();
    Pcg32 rng(2);
    Aabb bounds = bvh.rootBounds();
    for (auto _ : state) {
        RayTraverser t(&bvh, randomRay(rng, bounds));
        while (!t.done()) {
            if (t.atBoundary()) {
                t.enterNextTreelet();
                continue;
            }
            t.complete();
        }
        benchmark::DoNotOptimize(t.hit());
    }
}
BENCHMARK(BM_TreeletOrderTraversal);

/**
 * Run-cache hit and miss cost: what a memoized bench pays to load a
 * cached RunStats (hit) or to discover one is absent (miss), versus
 * re-simulating. Uses a private cache root under the temp directory.
 */
class RunCacheBench
{
  public:
    RunCacheBench()
    {
        dir_ = (std::filesystem::temp_directory_path() /
                "trt_micro_run_cache")
                   .string();
        setenv("TRT_CACHE", dir_.c_str(), 1);
        setenv("TRT_RUN_CACHE", "1", 1);
        stats_.cycles = 1;
        // Representative payload: a 256x256 frame plus a miss series.
        stats_.framebuffer.resize(256 * 256, Vec3{0.5f, 0.5f, 0.5f});
        stats_.bvhMissSeries.resize(512, 0.25);
        fp_ = runFingerprint(GpuConfig{}, "MICRO", 1.0f);
        storeCachedRun(fp_, "MICRO", stats_);
    }

    ~RunCacheBench()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
        unsetenv("TRT_CACHE");
        unsetenv("TRT_RUN_CACHE");
    }

    uint64_t fp_ = 0;
    RunStats stats_;
    std::string dir_;
};

void
BM_RunCacheHit(benchmark::State &state)
{
    RunCacheBench rc;
    RunStats out;
    for (auto _ : state) {
        bool ok = loadCachedRun(rc.fp_, "MICRO", out);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_RunCacheHit)->Unit(benchmark::kMicrosecond);

void
BM_RunCacheMiss(benchmark::State &state)
{
    RunCacheBench rc;
    RunStats out;
    for (auto _ : state) {
        bool ok = loadCachedRun(rc.fp_ ^ 1, "MICRO", out);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_RunCacheMiss)->Unit(benchmark::kMicrosecond);

void
BM_RunCacheStore(benchmark::State &state)
{
    RunCacheBench rc;
    for (auto _ : state) {
        storeCachedRun(rc.fp_, "MICRO", rc.stats_);
    }
}
BENCHMARK(BM_RunCacheStore)->Unit(benchmark::kMicrosecond);

/**
 * Simulator scaling: one full frame of the proposed architecture at
 * TRT_SIM_THREADS = 1..8 worker threads. Arg is the thread count; the
 * per-arg wall time directly yields the parallel-tick speedup curve
 * (results are bit-identical across args — see test_determinism).
 */
void
BM_SimulatorScaling(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig::virtualizedTreeletQueues();
    cfg.imageWidth = cfg.imageHeight = 128;
    cfg.simThreads = uint32_t(state.range(0));
    const Scene &s = benchScene();
    for (auto _ : state) {
        RunStats st = simulate(cfg, s, benchBvh());
        benchmark::DoNotOptimize(st.cycles);
    }
    state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SimulatorScaling)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

/**
 * The 4-wide slab test, scalar reference vs the dispatching kernel
 * (SIMD when compiled in and enabled). Arg: 0 = scalar, 1 = vector.
 * Both paths produce bit-identical masks and entry distances; the
 * delta here is the pure host-side speedup of the vector backend.
 */
void
BM_Aabb4Kernel(benchmark::State &state)
{
    constexpr int kInputs = 256;
    static std::vector<std::pair<Ray, PackedBounds4>> inputs = [] {
        std::vector<std::pair<Ray, PackedBounds4>> in;
        Pcg32 rng(7);
        for (int i = 0; i < kInputs; i++) {
            Ray r({rng.nextRange(-4, 4), rng.nextRange(-4, 4), -6.0f},
                  normalize(Vec3{rng.nextRange(-0.3f, 0.3f),
                                 rng.nextRange(-0.3f, 0.3f), 1.0f}));
            PackedBounds4 pb;
            for (int k = 0; k < 4; k++) {
                Vec3 lo{rng.nextRange(-5, 4), rng.nextRange(-5, 4),
                        rng.nextRange(-5, 4)};
                pb.set(k, Aabb{lo, lo + Vec3{1, 1, 1}});
            }
            in.emplace_back(r, pb);
        }
        return in;
    }();

    bool want_simd = state.range(0) != 0;
    if (want_simd && !simdCompiledIn()) {
        state.SkipWithError("TRT_SIMD=OFF build");
        return;
    }
    setSimdEnabled(want_simd);
    size_t i = 0;
    float t[4];
    for (auto _ : state) {
        const auto &[r, pb] = inputs[i++ & (kInputs - 1)];
        RayInv inv(r);
        benchmark::DoNotOptimize(intersectAabb4(r, inv, pb, t));
    }
    setSimdEnabled(true);
    state.SetItemsProcessed(int64_t(state.iterations()) * 4);
    state.SetLabel(want_simd ? "simd" : "scalar");
}
BENCHMARK(BM_Aabb4Kernel)->Arg(0)->Arg(1);

/**
 * Cost of the per-tick next-event refresh the GPU main loop pays for
 * every ticked SM (Gpu::refreshRtEvent). With the incremental event
 * heap this is O(1) in the number of resident rays — the label arg
 * (32 / 1024 / 4096 rays) documents exactly that flatness; the old
 * implementation rescanned every warp-buffer entry.
 */
void
BM_RtNextEventRefresh(benchmark::State &state)
{
    uint32_t rays = uint32_t(state.range(0));
    GpuConfig cfg;
    cfg.warpBufferSize = (rays + cfg.warpSize - 1) / cfg.warpSize;
    MemConfig mc;
    mc.numL1s = 1;
    MemorySystem mem(mc);
    BaselineRtUnit unit(cfg, mem, benchBvh(), 0);
    unit.setCompletion([](uint64_t, std::vector<LaneHit> &&) {});

    Pcg32 rng(11);
    Aabb bounds = benchBvh().rootBounds();
    uint64_t token = 1;
    for (uint32_t n = 0; n < rays; n += cfg.warpSize) {
        TraceRequest req;
        req.token = token++;
        for (uint32_t l = 0; l < cfg.warpSize; l++)
            req.lanes.push_back({uint8_t(l), randomRay(rng, bounds)});
        unit.tryAccept(0, std::move(req));
    }
    // One tick populates the wait states (and the event heap) of every
    // resident ray; the refresh below is what each later cycle pays.
    unit.tick(0);

    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.nextEventCycle());
    }
    state.SetLabel(std::to_string(rays) + " resident rays");
}
BENCHMARK(BM_RtNextEventRefresh)->Arg(32)->Arg(1024)->Arg(4096);

void
BM_CacheFullyAssoc(benchmark::State &state)
{
    Cache c(16 * 1024, 0, 128);
    Pcg32 rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(uint64_t(rng.nextBounded(4096)) * 128));
    }
}
BENCHMARK(BM_CacheFullyAssoc);

void
BM_CacheSetAssoc(benchmark::State &state)
{
    Cache c(128 * 1024, 16, 128);
    Pcg32 rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(uint64_t(rng.nextBounded(65536)) * 128));
    }
}
BENCHMARK(BM_CacheSetAssoc);

void
BM_MemorySystemRead(benchmark::State &state)
{
    MemConfig mc;
    mc.numL1s = 1;
    MemorySystem mem(mc);
    Pcg32 rng(5);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.read(now++, 0, uint64_t(rng.nextBounded(1 << 20)) * 128,
                     64, MemClass::BvhNode));
    }
}
BENCHMARK(BM_MemorySystemRead);

} // anonymous namespace

BENCHMARK_MAIN();
