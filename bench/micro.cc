/**
 * @file
 * Microbenchmarks (google-benchmark): throughput sanity for the
 * substrate kernels — intersection tests, BVH construction, functional
 * traversal, treelet-order traversal and the cache model. These do not
 * correspond to a paper figure; they document the host-side cost of the
 * simulator's building blocks.
 */

#include <benchmark/benchmark.h>

#include "bvh/bvh.hh"
#include "bvh/traverser.hh"
#include "geom/rng.hh"
#include "memsys/cache.hh"
#include "memsys/memsys.hh"
#include "scene/registry.hh"

namespace
{

using namespace trt;

const Scene &
benchScene()
{
    static Scene s = buildScene("BUNNY", 0.25f);
    return s;
}

const Bvh &
benchBvh()
{
    static Bvh b = Bvh::build(benchScene().triangles);
    return b;
}

Ray
randomRay(Pcg32 &rng, const Aabb &bounds)
{
    Vec3 e = bounds.extent();
    Vec3 o{bounds.lo.x + e.x * rng.nextFloat(),
           bounds.lo.y + e.y * rng.nextFloat(),
           bounds.lo.z + e.z * rng.nextFloat()};
    Vec3 d = normalize(Vec3{rng.nextFloat() - 0.5f, rng.nextFloat() - 0.5f,
                            rng.nextFloat() - 0.5f});
    return Ray(o, d);
}

void
BM_TriangleIntersect(benchmark::State &state)
{
    Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0};
    Ray r({0.1f, 0.0f, -2}, {0, 0, 1});
    float t, u, v;
    for (auto _ : state) {
        benchmark::DoNotOptimize(intersectTriangle(r, tri, t, u, v));
    }
}
BENCHMARK(BM_TriangleIntersect);

void
BM_AabbIntersect(benchmark::State &state)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    Ray r({0, 0, -5}, {0.1f, 0.05f, 1});
    RayInv inv(r);
    float t;
    for (auto _ : state) {
        benchmark::DoNotOptimize(intersectAabb(r, inv, box, t));
    }
}
BENCHMARK(BM_AabbIntersect);

void
BM_BvhBuild(benchmark::State &state)
{
    const Scene &s = benchScene();
    for (auto _ : state) {
        Bvh b = Bvh::build(s.triangles);
        benchmark::DoNotOptimize(b.totalBytes());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(s.triangles.size()));
}
BENCHMARK(BM_BvhBuild)->Unit(benchmark::kMillisecond);

void
BM_ClosestHit(benchmark::State &state)
{
    const Bvh &bvh = benchBvh();
    Pcg32 rng(1);
    Aabb bounds = bvh.rootBounds();
    for (auto _ : state) {
        Ray r = randomRay(rng, bounds);
        benchmark::DoNotOptimize(bvh.intersectClosest(r));
    }
}
BENCHMARK(BM_ClosestHit);

void
BM_TreeletOrderTraversal(benchmark::State &state)
{
    const Bvh &bvh = benchBvh();
    Pcg32 rng(2);
    Aabb bounds = bvh.rootBounds();
    for (auto _ : state) {
        RayTraverser t(&bvh, randomRay(rng, bounds));
        while (!t.done()) {
            if (t.atBoundary()) {
                t.enterNextTreelet();
                continue;
            }
            t.complete();
        }
        benchmark::DoNotOptimize(t.hit());
    }
}
BENCHMARK(BM_TreeletOrderTraversal);

void
BM_CacheFullyAssoc(benchmark::State &state)
{
    Cache c(16 * 1024, 0, 128);
    Pcg32 rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(uint64_t(rng.nextBounded(4096)) * 128));
    }
}
BENCHMARK(BM_CacheFullyAssoc);

void
BM_CacheSetAssoc(benchmark::State &state)
{
    Cache c(128 * 1024, 16, 128);
    Pcg32 rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(uint64_t(rng.nextBounded(65536)) * 128));
    }
}
BENCHMARK(BM_CacheSetAssoc);

void
BM_MemorySystemRead(benchmark::State &state)
{
    MemConfig mc;
    mc.numL1s = 1;
    MemorySystem mem(mc);
    Pcg32 rng(5);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.read(now++, 0, uint64_t(rng.nextBounded(1 << 20)) * 128,
                     64, MemClass::BvhNode));
    }
}
BENCHMARK(BM_MemorySystemRead);

} // anonymous namespace

BENCHMARK_MAIN();
