/**
 * @file
 * Figure 5: potential speedup of treelets with increasing concurrent
 * rays, from the standalone analytical model of section 2.4 (no cache
 * modeling; batch reuse only). Shape to reproduce: speedup rises
 * monotonically with concurrent rays, reaching ~3-4x for most scenes,
 * with the smallest-BVH scenes highest.
 */

#include <iostream>

#include "analytic/analytic.hh"
#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 5: analytical treelet speedup", opt);

    const std::vector<uint32_t> batches = {32,   64,   128,  256, 512,
                                           1024, 2048, 4096, 8192};
    // The analytical model runs on recorded traces; cap rays per scene
    // to keep the recording affordable.
    const uint32_t kMaxRays = 60000;

    std::vector<std::string> headers = {"scene"};
    for (uint32_t b : batches)
        headers.push_back(std::to_string(b));
    Table t(headers);

    std::vector<std::vector<double>> rows(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        const SceneBundle &sb = getSceneBundle(name, opt.sceneScale);
        auto traces =
            recordTraces(sb.scene, sb.bvh, opt.resolution, opt.resolution,
                         GpuConfig{}.maxBounces,
                         GpuConfig{}.contributionCutoff, kMaxRays);
        // Price each treelet fetch at its actual node count.
        std::vector<uint32_t> tl_nodes(sb.bvh.treeletCount());
        for (uint32_t t = 0; t < sb.bvh.treeletCount(); t++)
            tl_nodes[t] = sb.bvh.treeletNodeCount(t);
        AnalyticModel model(std::move(traces), std::move(tl_nodes));
        for (uint32_t b : batches)
            rows[i].push_back(model.speedup(b));
    });

    for (size_t i = 0; i < opt.scenes.size(); i++) {
        t.row().cell(opt.scenes[i]);
        for (double v : rows[i])
            t.cell(v, 2);
    }
    t.print(std::cout);
    writeCsv(opt, t, "fig05_analytical.csv");

    std::cout << "\npaper: monotone rise to ~3-4x by thousands of "
                 "concurrent rays; small-BVH scenes highest\n";
    return 0;
}
