/**
 * @file
 * Ablation study of the design choices DESIGN.md section 5 calls out,
 * on a representative scene subset. Each row disables/varies exactly
 * one mechanism of the full virtualized-treelet-queue configuration so
 * its individual contribution is visible.
 *
 * Rows:
 *   full            the complete proposed configuration
 *   no_preload      no treelet / ray-data preloading (section 4.3)
 *   no_repack       no warp repacking (section 4.5)
 *   no_group        no grouping of underpopulated queues (section 4.4)
 *   no_virt         no ray virtualization (section 3.1)
 *   diverge_4       lax initial-phase divergence threshold
 *   skip_treelet    no treelet-stationary phase at all (section 6.4)
 *   small_treelet   2KB treelets (quarter of half-L1)
 *   queue_32        low underpopulation threshold
 *
 * A second table (ablation_width.csv) sweeps the BVH node layout
 * (DESIGN.md §11) — width-4 64B, width-4 32B quantized, width-8 80B
 * compressed — under both the baseline and VTQ architectures, and
 * reports the cache behavior the compression is meant to move: BVH
 * L1/L2 miss rates, mean nodes per treelet, and treelet switches.
 */

#include <iostream>
#include <optional>

#include "harness/harness.hh"

namespace
{

/** Combined miss rate of the BVH traffic (nodes + triangle blocks). */
double
bvhMissRate(const trt::RunStats &st, bool l2)
{
    using trt::MemClass;
    const trt::MemClassStats &n = st.memClass(MemClass::BvhNode);
    const trt::MemClassStats &t = st.memClass(MemClass::Triangle);
    uint64_t acc = l2 ? n.l2Accesses + t.l2Accesses
                      : n.l1Accesses + t.l1Accesses;
    uint64_t miss = l2 ? n.l2Misses + t.l2Misses
                       : n.l1Misses + t.l1Misses;
    return acc ? double(miss) / double(acc) : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    // Default to a representative subset; TRT_SCENES overrides. The
    // no_group / skip_treelet rows run deliberately pathological
    // regimes, so clamp the frame size (rows are normalized against a
    // baseline at the same resolution).
    if (!std::getenv("TRT_SCENES"))
        opt.scenes = {"BUNNY", "CRNVL", "FRST"};
    opt.resolution = std::min(opt.resolution, 128u);
    printBenchHeader("Ablation: VTQ design choices", opt);

    struct Variant
    {
        std::string name;
        GpuConfig cfg;
        /** Rebuild the BVH with these parameters (unset = shared
         *  default build). */
        std::optional<BvhConfig> bvhCfg;
    };

    auto vtq = [&]() {
        return opt.apply(GpuConfig::virtualizedTreeletQueues());
    };

    std::vector<Variant> variants;
    variants.push_back({"full", vtq()});
    {
        Variant v{"no_preload", vtq()};
        v.cfg.preloadEnabled = false;
        variants.push_back(v);
    }
    {
        Variant v{"no_repack", vtq()};
        v.cfg.repackThreshold = 0;
        variants.push_back(v);
    }
    {
        Variant v{"no_group", vtq()};
        v.cfg.groupUnderpopulated = false;
        variants.push_back(v);
    }
    {
        Variant v{"no_virt", vtq()};
        v.cfg.rayVirtualization = false;
        variants.push_back(v);
    }
    {
        Variant v{"diverge_4", vtq()};
        v.cfg.initialDivergeThreshold = 4;
        variants.push_back(v);
    }
    {
        Variant v{"skip_treelet", vtq()};
        v.cfg.skipTreeletPhase = true;
        variants.push_back(v);
    }
    {
        Variant v{"small_treelet", vtq()};
        BvhConfig bc;
        bc.treeletMaxBytes = 2048;
        v.bvhCfg = bc;
        variants.push_back(v);
    }
    {
        Variant v{"queue_32", vtq()};
        v.cfg.queueThreshold = 32;
        variants.push_back(v);
    }
    {
        // Section 7.3: compressed wide BVH (Ylitie et al.) composed
        // with treelet queues — 32B quantized nodes, twice the nodes
        // per treelet and per cache line.
        Variant v{"compressed_vtq", vtq()};
        BvhConfig bc;
        bc.quantizedNodes = true;
        v.bvhCfg = bc;
        variants.push_back(v);
    }
    {
        Variant v{"compressed_base", opt.apply(GpuConfig{})};
        BvhConfig bc;
        bc.quantizedNodes = true;
        v.bvhCfg = bc;
        variants.push_back(v);
    }

    std::vector<std::string> headers = {"variant"};
    for (const auto &s : opt.scenes)
        headers.push_back(s);
    headers.push_back("geomean");
    Table t(headers);

    // Baseline cycles per scene (and rebuilt-BVH variants on demand).
    std::vector<uint64_t> base_cycles(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        base_cycles[i] = runScene(name, opt.apply(GpuConfig{}), opt)
                             .cycles;
    });

    for (const auto &v : variants) {
        std::vector<double> speedups(opt.scenes.size());
        parallelForScenes(opt, [&](size_t i, const std::string &name) {
            uint64_t cycles;
            if (!v.bvhCfg) {
                cycles = runScene(name, v.cfg, opt).cycles;
            } else {
                const SceneBundle &b = getSceneBundle(name,
                                                      opt.sceneScale);
                Bvh alt = Bvh::build(b.scene.triangles, *v.bvhCfg);
                cycles = simulate(v.cfg, b.scene, alt).cycles;
            }
            speedups[i] = double(base_cycles[i]) / double(cycles);
        });
        t.row().cell(v.name);
        for (double s : speedups)
            t.cell(s, 3);
        t.cell(geomean(speedups), 3);
    }

    t.print(std::cout);
    writeCsv(opt, t, "ablation.csv");

    // ---- BVH width / node-layout ablation (DESIGN.md §11) -----------
    // Three layouts x two architectures. width4_32B shrinks nodes
    // without changing arity (more nodes per treelet); width8_80B
    // additionally halves the node count (fewer, fatter nodes at
    // 10B/child vs 16B/child), so nodes-per-treelet is not the right
    // lens for it — the miss rates and switch counts are.
    struct WidthVariant
    {
        const char *name;
        BvhConfig bvhCfg;
    };
    std::vector<WidthVariant> layouts;
    layouts.push_back({"width4_64B", BvhConfig{}});
    {
        BvhConfig bc;
        bc.quantizedNodes = true;
        layouts.push_back({"width4_32B", bc});
    }
    {
        BvhConfig bc;
        bc.width = 8;
        layouts.push_back({"width8_80B", bc});
    }

    Table wt({"scene", "layout", "arch", "cycles", "bvh_l1_miss",
              "bvh_l2_miss", "nodes_per_treelet", "treelet_switches"});
    for (const auto &lv : layouts) {
        for (int use_vtq = 0; use_vtq <= 1; use_vtq++) {
            std::vector<RunStats> res(opt.scenes.size());
            std::vector<double> tnodes(opt.scenes.size());
            parallelForScenes(opt, [&](size_t i,
                                       const std::string &name) {
                const SceneBundle &b =
                    getSceneBundle(name, opt.sceneScale, lv.bvhCfg);
                GpuConfig cfg = use_vtq ? vtq()
                                        : opt.apply(GpuConfig{});
                cfg.simThreads = opt.effectiveSimThreads();
                res[i] = simulate(cfg, b.scene, b.bvh);
                tnodes[i] = b.bvhStats.avgTreeletNodes;
            });
            for (size_t i = 0; i < opt.scenes.size(); i++) {
                wt.row()
                    .cell(opt.scenes[i])
                    .cell(lv.name)
                    .cell(use_vtq ? "vtq" : "base")
                    .cell(res[i].cycles)
                    .cell(bvhMissRate(res[i], false), 4)
                    .cell(bvhMissRate(res[i], true), 4)
                    .cell(tnodes[i], 1)
                    .cell(res[i].rt.boundaryCrossings);
            }
        }
    }
    std::cout << "\n";
    wt.print(std::cout);
    writeCsv(opt, wt, "ablation_width.csv");
    return 0;
}
