/**
 * @file
 * Ablation study of the design choices DESIGN.md section 5 calls out,
 * on a representative scene subset. Each row disables/varies exactly
 * one mechanism of the full virtualized-treelet-queue configuration so
 * its individual contribution is visible.
 *
 * Rows:
 *   full            the complete proposed configuration
 *   no_preload      no treelet / ray-data preloading (section 4.3)
 *   no_repack       no warp repacking (section 4.5)
 *   no_group        no grouping of underpopulated queues (section 4.4)
 *   no_virt         no ray virtualization (section 3.1)
 *   diverge_4       lax initial-phase divergence threshold
 *   skip_treelet    no treelet-stationary phase at all (section 6.4)
 *   small_treelet   2KB treelets (quarter of half-L1)
 *   queue_32        low underpopulation threshold
 */

#include <iostream>
#include <optional>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    // Default to a representative subset; TRT_SCENES overrides. The
    // no_group / skip_treelet rows run deliberately pathological
    // regimes, so clamp the frame size (rows are normalized against a
    // baseline at the same resolution).
    if (!std::getenv("TRT_SCENES"))
        opt.scenes = {"BUNNY", "CRNVL", "FRST"};
    opt.resolution = std::min(opt.resolution, 128u);
    printBenchHeader("Ablation: VTQ design choices", opt);

    struct Variant
    {
        std::string name;
        GpuConfig cfg;
        /** Rebuild the BVH with these parameters (unset = shared
         *  default build). */
        std::optional<BvhConfig> bvhCfg;
    };

    auto vtq = [&]() {
        return opt.apply(GpuConfig::virtualizedTreeletQueues());
    };

    std::vector<Variant> variants;
    variants.push_back({"full", vtq()});
    {
        Variant v{"no_preload", vtq()};
        v.cfg.preloadEnabled = false;
        variants.push_back(v);
    }
    {
        Variant v{"no_repack", vtq()};
        v.cfg.repackThreshold = 0;
        variants.push_back(v);
    }
    {
        Variant v{"no_group", vtq()};
        v.cfg.groupUnderpopulated = false;
        variants.push_back(v);
    }
    {
        Variant v{"no_virt", vtq()};
        v.cfg.rayVirtualization = false;
        variants.push_back(v);
    }
    {
        Variant v{"diverge_4", vtq()};
        v.cfg.initialDivergeThreshold = 4;
        variants.push_back(v);
    }
    {
        Variant v{"skip_treelet", vtq()};
        v.cfg.skipTreeletPhase = true;
        variants.push_back(v);
    }
    {
        Variant v{"small_treelet", vtq()};
        BvhConfig bc;
        bc.treeletMaxBytes = 2048;
        v.bvhCfg = bc;
        variants.push_back(v);
    }
    {
        Variant v{"queue_32", vtq()};
        v.cfg.queueThreshold = 32;
        variants.push_back(v);
    }
    {
        // Section 7.3: compressed wide BVH (Ylitie et al.) composed
        // with treelet queues — 32B quantized nodes, twice the nodes
        // per treelet and per cache line.
        Variant v{"compressed_vtq", vtq()};
        BvhConfig bc;
        bc.quantizedNodes = true;
        v.bvhCfg = bc;
        variants.push_back(v);
    }
    {
        Variant v{"compressed_base", opt.apply(GpuConfig{})};
        BvhConfig bc;
        bc.quantizedNodes = true;
        v.bvhCfg = bc;
        variants.push_back(v);
    }

    std::vector<std::string> headers = {"variant"};
    for (const auto &s : opt.scenes)
        headers.push_back(s);
    headers.push_back("geomean");
    Table t(headers);

    // Baseline cycles per scene (and rebuilt-BVH variants on demand).
    std::vector<uint64_t> base_cycles(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        base_cycles[i] = runScene(name, opt.apply(GpuConfig{}), opt)
                             .cycles;
    });

    for (const auto &v : variants) {
        std::vector<double> speedups(opt.scenes.size());
        parallelForScenes(opt, [&](size_t i, const std::string &name) {
            uint64_t cycles;
            if (!v.bvhCfg) {
                cycles = runScene(name, v.cfg, opt).cycles;
            } else {
                const SceneBundle &b = getSceneBundle(name,
                                                      opt.sceneScale);
                Bvh alt = Bvh::build(b.scene.triangles, *v.bvhCfg);
                cycles = simulate(v.cfg, b.scene, alt).cycles;
            }
            speedups[i] = double(base_cycles[i]) / double(cycles);
        });
        t.row().cell(v.name);
        for (double s : speedups)
            t.cell(s, 3);
        t.cell(geomean(speedups), 3);
    }

    t.print(std::cout);
    writeCsv(opt, t, "ablation.csv");
    return 0;
}
