/**
 * @file
 * Figure 10: overall speedup of Virtualized Treelet Queues (4096
 * concurrent rays) and Treelet Prefetching [Chou et al.] over the
 * baseline GPU, per scene, sorted by ascending BVH size.
 *
 * Shape to reproduce: VTQ beats prefetching everywhere; VTQ average
 * ~1.95x (paper), up to ~2.55x; prefetching ~1.3x; SPNZA and CHSNT are
 * the low-gain scenes.
 */

#include <algorithm>
#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader(
        "Figure 10: overall speedup (VTQ vs treelet prefetching)", opt);

    GpuConfig base = opt.apply(GpuConfig{});
    GpuConfig pref = opt.apply(GpuConfig::treeletPrefetch());
    GpuConfig vtq = opt.apply(GpuConfig::virtualizedTreeletQueues());

    std::vector<uint64_t> cb(opt.scenes.size()), cp(opt.scenes.size()),
        cv(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        cb[i] = runScene(name, base, opt).cycles;
        cp[i] = runScene(name, pref, opt).cycles;
        cv[i] = runScene(name, vtq, opt).cycles;
    });

    std::vector<size_t> order(opt.scenes.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return getSceneBundle(opt.scenes[a], opt.sceneScale)
                   .bvhStats.totalBytes <
               getSceneBundle(opt.scenes[b], opt.sceneScale)
                   .bvhStats.totalBytes;
    });

    Table t({"scene", "baseline_cycles", "prefetch_speedup",
             "vtq_speedup"});
    std::vector<double> sp, sv;
    for (size_t i : order) {
        double s_pref = double(cb[i]) / double(cp[i]);
        double s_vtq = double(cb[i]) / double(cv[i]);
        sp.push_back(s_pref);
        sv.push_back(s_vtq);
        t.row()
            .cell(opt.scenes[i])
            .cell(cb[i])
            .cell(s_pref, 3)
            .cell(s_vtq, 3);
    }
    t.row()
        .cell("GEOMEAN")
        .cell("")
        .cell(geomean(sp), 3)
        .cell(geomean(sv), 3);
    t.print(std::cout);
    writeCsv(opt, t, "fig10_overall.csv");

    std::cout << "\npaper: VTQ avg 1.95x (max 2.55x), prefetching ~1.36x; "
                 "VTQ/prefetch = 1.43x\n"
              << "measured: VTQ/prefetch = "
              << formatDouble(geomean(sv) / geomean(sp), 3) << "x\n";
    return 0;
}
