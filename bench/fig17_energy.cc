/**
 * @file
 * Figure 17: energy of virtualized treelet queues relative to the
 * baseline GPU, with the ray-virtualization share broken out.
 *
 * Shape to reproduce: treelet queues cut total energy substantially
 * (paper: ~60% savings, mostly from the reduced cycles), and ray
 * virtualization accounts for ~11% of the design's total energy.
 */

#include <iostream>

#include "energy/energy.hh"
#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 17: energy", opt);

    GpuConfig base = opt.apply(GpuConfig{});
    GpuConfig vtq = opt.apply(GpuConfig::virtualizedTreeletQueues());

    Table t({"scene", "baseline_mj", "vtq_mj", "vtq_rel",
             "virt_share_pct"});
    std::vector<double> rel, virt;
    std::vector<EnergyReport> eb(opt.scenes.size()), ev(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        GpuConfig b = base, v = vtq;
        RunStats rb = runScene(name, b, opt);
        RunStats rv = runScene(name, v, opt);
        eb[i] = computeEnergy(rb, b.numSms);
        ev[i] = computeEnergy(rv, v.numSms);
    });

    for (size_t i = 0; i < opt.scenes.size(); i++) {
        double r = ev[i].total() / eb[i].total();
        rel.push_back(r);
        virt.push_back(100.0 * ev[i].virtualizationShare());
        t.row()
            .cell(opt.scenes[i])
            .cell(eb[i].total() / 1e6, 3)
            .cell(ev[i].total() / 1e6, 3)
            .cell(r, 3)
            .cell(virt.back(), 2);
    }
    t.row()
        .cell("MEAN")
        .cell("")
        .cell("")
        .cell(mean(rel), 3)
        .cell(mean(virt), 2);
    t.print(std::cout);
    writeCsv(opt, t, "fig17_energy.csv");

    std::cout << "\npaper: VTQ at ~40% of baseline energy; "
                 "virtualization ~11% of VTQ total\n";
    return 0;
}
