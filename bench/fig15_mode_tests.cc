/**
 * @file
 * Figure 15: share of ray intersection tests processed under each
 * traversal mode under the full proposed configuration, per scene.
 *
 * Shape to reproduce: treelet-stationary mode processes up to ~52% of
 * the intersection tests with an average around 15%; the rest is ray
 * stationary (plus the initial phase).
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 15: intersection tests per traversal mode",
                     opt);

    GpuConfig vtq = opt.apply(GpuConfig::virtualizedTreeletQueues());
    std::vector<RunStats> runs = runAllScenes(
        opt, [&](const std::string &) { return vtq; });

    Table t({"scene", "initial_pct", "treelet_stationary_pct",
             "ray_stationary_pct"});
    std::vector<double> pt;
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const auto &m = runs[i].rt.isectTests;
        double total = double(m[0] + m[1] + m[2]);
        if (total <= 0)
            total = 1;
        pt.push_back(100.0 * m[1] / total);
        t.row()
            .cell(opt.scenes[i])
            .cell(100.0 * m[0] / total, 1)
            .cell(100.0 * m[1] / total, 1)
            .cell(100.0 * m[2] / total, 1);
    }
    t.row().cell("MEAN treelet share").cell("").cell(mean(pt), 1).cell("");
    t.print(std::cout);
    writeCsv(opt, t, "fig15_mode_tests.csv");

    std::cout << "\npaper: treelet-stationary handles up to 52% of tests, "
                 "~15% on average\n";
    return 0;
}
