/**
 * @file
 * Figure 14: cycle distribution of the three ray traversal modes
 * (initial / treelet stationary / ray stationary) under the full
 * proposed configuration, per scene.
 *
 * Shape to reproduce: the initial phase is short and the ray-stationary
 * phase dominates cycles for every scene.
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 14: traversal-mode cycle distribution", opt);

    GpuConfig vtq = opt.apply(GpuConfig::virtualizedTreeletQueues());
    std::vector<RunStats> runs = runAllScenes(
        opt, [&](const std::string &) { return vtq; });

    Table t({"scene", "initial_pct", "treelet_stationary_pct",
             "ray_stationary_pct"});
    std::vector<double> pi, pt, pr;
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const auto &m = runs[i].rt.modeCycles;
        double total = double(m[0] + m[1] + m[2]);
        if (total <= 0)
            total = 1;
        pi.push_back(100.0 * m[0] / total);
        pt.push_back(100.0 * m[1] / total);
        pr.push_back(100.0 * m[2] / total);
        t.row()
            .cell(opt.scenes[i])
            .cell(pi.back(), 1)
            .cell(pt.back(), 1)
            .cell(pr.back(), 1);
    }
    t.row()
        .cell("MEAN")
        .cell(mean(pi), 1)
        .cell(mean(pt), 1)
        .cell(mean(pr), 1);
    t.print(std::cout);
    writeCsv(opt, t, "fig14_mode_cycles.csv");

    std::cout << "\npaper: short initial phase; ray-stationary mode "
                 "dominates cycles in every scene\n";
    return 0;
}
