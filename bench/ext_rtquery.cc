/**
 * @file
 * Extension experiment (paper section 8): virtualized treelet queues
 * on general tree-traversal workloads. Sweeps the three point
 * distributions of the RTNN-style fixed-radius nearest-neighbor
 * workload and reports baseline / prefetch / VTQ cycles.
 *
 * Expectation (the paper's conjecture): query rays are maximally
 * incoherent, so the treelet-queue mechanisms should transfer — VTQ
 * beats the baseline on tree-traversal queries as it does on path
 * tracing.
 */

#include <iostream>

#include "harness/harness.hh"
#include "workloads/rt_query.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Extension: RT-unit tree-traversal queries (sec 8)",
                     opt);

    struct Case
    {
        const char *name;
        PointDistribution dist;
    };
    const Case cases[] = {
        {"uniform", PointDistribution::Uniform},
        {"clustered", PointDistribution::Clustered},
        {"shell", PointDistribution::Shell},
    };

    // Scale the workload with the harness resolution so TRT_FAST works
    // (quarter of the frame's ray count keeps the sweep to minutes).
    RtQueryConfig qc;
    qc.numQueries = (opt.resolution / 2) * (opt.resolution / 2);
    qc.numPoints = uint32_t(100000.0f * opt.sceneScale);

    Table t({"distribution", "points", "queries", "bvh_mb",
             "baseline_cycles", "prefetch_speedup", "vtq_speedup",
             "base_simt", "vtq_simt"});

    for (const Case &c : cases) {
        RtQueryConfig cfg = qc;
        cfg.distribution = c.dist;
        RtQueryWorkload wl = buildRtQueryWorkload(cfg);
        Bvh bvh = Bvh::build(wl.scene.triangles);

        GpuConfig base;
        RunStats rb = simulateRays(base, wl.scene, bvh, wl.queries);
        RunStats rp = simulateRays(GpuConfig::treeletPrefetch(), wl.scene,
                                   bvh, wl.queries);
        RunStats rv = simulateRays(GpuConfig::virtualizedTreeletQueues(),
                                   wl.scene, bvh, wl.queries);

        t.row()
            .cell(c.name)
            .cell(uint64_t(wl.points.size()))
            .cell(uint64_t(wl.queries.size()))
            .cell(double(bvh.totalBytes()) / 1048576.0, 2)
            .cell(rb.cycles)
            .cell(double(rb.cycles) / double(rp.cycles), 3)
            .cell(double(rb.cycles) / double(rv.cycles), 3)
            .cell(rb.simtEfficiency(), 3)
            .cell(rv.simtEfficiency(), 3);
    }
    t.print(std::cout);
    writeCsv(opt, t, "ext_rtquery.csv");

    std::cout << "\npaper sec 8: conjectures treelet queues transfer to "
                 "RT-accelerated tree queries (RTNN/RT-DBSCAN/RTIndeX)\n";
    return 0;
}
