/**
 * @file
 * Figure 12: speedup of grouping underpopulated treelet queues into
 * ray-stationary warps, versus the naive treelet-queue implementation,
 * at several queue thresholds. All variants are normalized to the
 * baseline GPU and run without warp repacking (repacking is evaluated
 * separately in Figure 13).
 *
 * Shape to reproduce: naive treelet queues are far below baseline
 * (paper: grouping is ~8x faster than naive at threshold 128) and
 * grouping alone lands near (paper: ~5% below) the baseline.
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    // The naive variant deliberately runs the pathological regime
    // (whole-treelet fetches for 1-ray queues) and is several times
    // slower than everything else in the repository; clamp this
    // bench's frame size. All rows are normalized to a baseline run at
    // the same resolution, so the comparison is self-consistent.
    opt.resolution = std::min(opt.resolution, 128u);
    printBenchHeader("Figure 12: grouping underpopulated treelet queues",
                     opt);

    GpuConfig base = opt.apply(GpuConfig{});

    auto vtq_no_repack = [&]() {
        GpuConfig c = opt.apply(GpuConfig::virtualizedTreeletQueues());
        c.repackThreshold = 0;
        return c;
    };

    GpuConfig naive = vtq_no_repack();
    naive.groupUnderpopulated = false;

    const std::vector<uint32_t> thresholds = {32, 64, 128};
    std::vector<std::vector<double>> rows(opt.scenes.size());

    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        uint64_t cb = runScene(name, base, opt).cycles;
        uint64_t cn = runScene(name, naive, opt).cycles;
        rows[i].push_back(double(cb) / double(cn));
        for (uint32_t q : thresholds) {
            GpuConfig g = vtq_no_repack();
            g.queueThreshold = q;
            uint64_t cg = runScene(name, g, opt).cycles;
            rows[i].push_back(double(cb) / double(cg));
        }
    });

    Table t({"scene", "naive", "group_q32", "group_q64", "group_q128"});
    std::vector<std::vector<double>> cols(thresholds.size() + 1);
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        t.row().cell(opt.scenes[i]);
        for (size_t c = 0; c < rows[i].size(); c++) {
            t.cell(rows[i][c], 3);
            cols[c].push_back(rows[i][c]);
        }
    }
    t.row().cell("GEOMEAN");
    for (auto &c : cols)
        t.cell(geomean(c), 3);
    t.print(std::cout);
    writeCsv(opt, t, "fig12_grouping.csv");

    std::cout << "\npaper: grouping(128) ~8x over naive, but ~5% below "
                 "baseline without repacking\n"
              << "measured: grouping(128)/naive = "
              << formatDouble(geomean(cols[3]) / geomean(cols[0]), 2)
              << "x\n";
    return 0;
}
