/**
 * @file
 * Dispatch-policy x BVH-width ablation (DESIGN.md §9, §11): baseline
 * FIFO vs the paper's virtualized treelet queues vs Morton ray
 * reordering vs hash-based path prediction (private and shared table),
 * each at BVH width 4 (64-byte nodes) and width 8 (compressed 80-byte
 * nodes), per figure scene. Reports cycles and speedup over the
 * same-width FIFO, SIMT efficiency, BVH L1/L2 miss rates, the
 * predictor hit rate and the shared-vs-private hit-rate delta — and
 * fails hard if any run renders a different frame than the width-4
 * FIFO baseline, since policies only move *when* rays run and *where*
 * traversal starts, and the compressed layout dequantizes to
 * conservative bounds that accept a superset of node entries without
 * changing any closest hit.
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "harness/harness.hh"

namespace
{

using namespace trt;

/** Combined miss rate of the BVH traffic (nodes + triangle blocks). */
double
bvhMissRate(const RunStats &st, bool l2)
{
    const MemClassStats &n = st.memClass(MemClass::BvhNode);
    const MemClassStats &t = st.memClass(MemClass::Triangle);
    uint64_t acc = l2 ? n.l2Accesses + t.l2Accesses
                      : n.l1Accesses + t.l1Accesses;
    uint64_t miss = l2 ? n.l2Misses + t.l2Misses
                       : n.l1Misses + t.l1Misses;
    return acc ? double(miss) / double(acc) : 0.0;
}

bool
sameFrame(const RunStats &a, const RunStats &b)
{
    return a.framebuffer.size() == b.framebuffer.size() &&
           (a.framebuffer.empty() ||
            std::memcmp(a.framebuffer.data(), b.framebuffer.data(),
                        a.framebuffer.size() * sizeof(Vec3)) == 0);
}

struct Variant
{
    const char *label;
    DispatchPolicyKind kind;
    bool sharedPredict;
};

constexpr Variant kVariants[] = {
    {"fifo", DispatchPolicyKind::Fifo, false},
    {"vtq", DispatchPolicyKind::Vtq, false},
    {"reorder", DispatchPolicyKind::Reorder, false},
    {"predict", DispatchPolicyKind::Predict, false},
    {"predict_shared", DispatchPolicyKind::Predict, true},
};
constexpr size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);
constexpr int kWidths[] = {4, 8};
constexpr size_t kNumWidths = sizeof(kWidths) / sizeof(kWidths[0]);

} // anonymous namespace

int
main(int argc, char **argv)
{
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Dispatch-policy x BVH-width ablation "
                     "(fifo / vtq / reorder / predict[+shared], "
                     "width 4 / 8)",
                     opt);

    // This bench sweeps the policy and width axes itself, so the
    // TRT_POLICY override must not collapse the variants; the runs go
    // straight through simulate() with an explicit BvhConfig, which
    // also bypasses the (TRT_BVH_WIDTH-keyed) run cache.
    HarnessOptions sweep = opt;
    sweep.policyName.clear();

    // runs[scene][width][variant]
    std::vector<std::vector<std::vector<RunStats>>> runs(
        opt.scenes.size(),
        std::vector<std::vector<RunStats>>(
            kNumWidths, std::vector<RunStats>(kNumVariants)));
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        for (size_t w = 0; w < kNumWidths; w++) {
            BvhConfig bvhCfg;
            bvhCfg.width = kWidths[w];
            const SceneBundle &b =
                getSceneBundle(name, opt.sceneScale, bvhCfg);
            for (size_t v = 0; v < kNumVariants; v++) {
                GpuConfig cfg =
                    sweep.apply(GpuConfig::forPolicy(kVariants[v].kind));
                cfg.predictShared = kVariants[v].sharedPredict;
                cfg.simThreads = opt.effectiveSimThreads();
                runs[i][w][v] = simulate(cfg, b.scene, b.bvh);
            }
        }
    });

    Table t({"scene", "width", "policy", "cycles", "speedup_vs_fifo",
             "simt_eff", "bvh_l1_miss", "bvh_l2_miss", "predict_hit_rate",
             "hit_delta_vs_private", "reorder_batches"});
    bool frames_ok = true;
    std::vector<std::vector<std::vector<double>>> speedups(
        kNumWidths, std::vector<std::vector<double>>(kNumVariants));
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const RunStats &ref = runs[i][0][0]; // width-4 fifo
        for (size_t w = 0; w < kNumWidths; w++) {
            const RunStats &fifo = runs[i][w][0];
            const RunStats &priv = runs[i][w][3]; // predict (private)
            for (size_t v = 0; v < kNumVariants; v++) {
                const RunStats &st = runs[i][w][v];
                if (!sameFrame(ref, st)) {
                    std::cerr << "FRAME MISMATCH: scene " << opt.scenes[i]
                              << " width " << kWidths[w] << " policy "
                              << kVariants[v].label
                              << " differs from width-4 fifo\n";
                    frames_ok = false;
                }
                double speedup = double(fifo.cycles) / double(st.cycles);
                speedups[w][v].push_back(speedup);
                auto &row = t.row();
                row.cell(opt.scenes[i])
                    .cell(kWidths[w])
                    .cell(kVariants[v].label)
                    .cell(st.cycles)
                    .cell(speedup, 3)
                    .cell(st.simtEfficiency(), 3)
                    .cell(bvhMissRate(st, false), 4)
                    .cell(bvhMissRate(st, true), 4)
                    .cell(st.rt.predictHitRate(), 3);
                if (kVariants[v].sharedPredict)
                    row.cell(st.rt.predictHitRate() -
                                 priv.rt.predictHitRate(),
                             3);
                else
                    row.cell("");
                row.cell(st.rt.reorderBatches);
            }
        }
    }
    for (size_t w = 0; w < kNumWidths; w++) {
        for (size_t v = 0; v < kNumVariants; v++) {
            t.row()
                .cell("GEOMEAN")
                .cell(kWidths[w])
                .cell(kVariants[v].label)
                .cell("")
                .cell(geomean(speedups[w][v]), 3)
                .cell("")
                .cell("")
                .cell("")
                .cell("")
                .cell("")
                .cell("");
        }
    }
    t.print(std::cout);
    writeCsv(opt, t, "policy_compare.csv");

    if (!frames_ok) {
        std::cerr << "\npolicy ablation FAILED: rendered frames differ "
                     "across policies/widths\n";
        return 1;
    }
    std::cout << "\nframes identical across all " << kNumVariants
              << " policies at both widths on every scene\n";
    return 0;
}
