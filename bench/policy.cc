/**
 * @file
 * Dispatch-policy ablation (DESIGN.md §9): baseline FIFO vs the
 * paper's virtualized treelet queues vs Morton ray reordering vs
 * hash-based path prediction, per figure scene. Reports cycles and
 * speedup over FIFO, SIMT efficiency, BVH L1/L2 miss rates, and the
 * predictor hit rate — and fails hard if any policy renders a
 * different frame, since policies only move *when* rays run and
 * *where* traversal starts, never what a ray hits.
 */

#include <array>
#include <cstring>
#include <iostream>
#include <vector>

#include "harness/harness.hh"

namespace
{

using namespace trt;

/** Combined miss rate of the BVH traffic (nodes + triangle blocks). */
double
bvhMissRate(const RunStats &st, bool l2)
{
    const MemClassStats &n = st.memClass(MemClass::BvhNode);
    const MemClassStats &t = st.memClass(MemClass::Triangle);
    uint64_t acc = l2 ? n.l2Accesses + t.l2Accesses
                      : n.l1Accesses + t.l1Accesses;
    uint64_t miss = l2 ? n.l2Misses + t.l2Misses
                       : n.l1Misses + t.l1Misses;
    return acc ? double(miss) / double(acc) : 0.0;
}

bool
sameFrame(const RunStats &a, const RunStats &b)
{
    return a.framebuffer.size() == b.framebuffer.size() &&
           (a.framebuffer.empty() ||
            std::memcmp(a.framebuffer.data(), b.framebuffer.data(),
                        a.framebuffer.size() * sizeof(Vec3)) == 0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader(
        "Dispatch-policy ablation (fifo / vtq / reorder / predict)", opt);

    // This bench sweeps the policy axis itself; a TRT_POLICY override
    // would collapse all four configurations into one.
    HarnessOptions sweep = opt;
    sweep.policyName.clear();

    constexpr DispatchPolicyKind kKinds[] = {
        DispatchPolicyKind::Fifo,
        DispatchPolicyKind::Vtq,
        DispatchPolicyKind::Reorder,
        DispatchPolicyKind::Predict,
    };
    constexpr size_t kNum = sizeof(kKinds) / sizeof(kKinds[0]);

    std::vector<std::array<RunStats, kNum>> runs(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        for (size_t k = 0; k < kNum; k++) {
            runs[i][k] = runScene(
                name, sweep.apply(GpuConfig::forPolicy(kKinds[k])), sweep);
        }
    });

    Table t({"scene", "policy", "cycles", "speedup_vs_fifo", "simt_eff",
             "bvh_l1_miss", "bvh_l2_miss", "predict_hit_rate",
             "reorder_batches"});
    bool frames_ok = true;
    std::array<std::vector<double>, kNum> speedups;
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const RunStats &fifo = runs[i][0];
        for (size_t k = 0; k < kNum; k++) {
            const RunStats &st = runs[i][k];
            if (!sameFrame(fifo, st)) {
                std::cerr << "FRAME MISMATCH: scene " << opt.scenes[i]
                          << " policy "
                          << dispatchPolicyName(kKinds[k])
                          << " differs from fifo\n";
                frames_ok = false;
            }
            double speedup = double(fifo.cycles) / double(st.cycles);
            speedups[k].push_back(speedup);
            t.row()
                .cell(opt.scenes[i])
                .cell(dispatchPolicyName(kKinds[k]))
                .cell(st.cycles)
                .cell(speedup, 3)
                .cell(st.simtEfficiency(), 3)
                .cell(bvhMissRate(st, false), 4)
                .cell(bvhMissRate(st, true), 4)
                .cell(st.rt.predictHitRate(), 3)
                .cell(st.rt.reorderBatches);
        }
    }
    for (size_t k = 0; k < kNum; k++) {
        t.row()
            .cell("GEOMEAN")
            .cell(dispatchPolicyName(kKinds[k]))
            .cell("")
            .cell(geomean(speedups[k]), 3)
            .cell("")
            .cell("")
            .cell("")
            .cell("")
            .cell("");
    }
    t.print(std::cout);
    writeCsv(opt, t, "policy_compare.csv");

    if (!frames_ok) {
        std::cerr << "\npolicy ablation FAILED: rendered frames differ "
                     "across policies\n";
        return 1;
    }
    std::cout << "\nframes identical across all " << kNum
              << " policies on every scene\n";
    return 0;
}
