/**
 * @file
 * Figure 13: warp repacking.
 *  (a) Speedup over the baseline GPU at different repack thresholds
 *      (none / 8 / 16 / 22), all with grouping enabled.
 *  (b) SIMT efficiency of the same variants next to the baseline.
 *
 * Shape to reproduce: without repacking treelet queues sit slightly
 * below baseline; speedup grows with the repack threshold (paper: 1.84x
 * at 16, 1.95x at 22) and SIMT efficiency roughly doubles (paper:
 * baseline 0.37, no-repack 0.33, repack-22 0.82).
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 13: warp repacking", opt);

    GpuConfig base = opt.apply(GpuConfig{});
    const std::vector<uint32_t> thresholds = {0, 8, 16, 22};

    struct Row
    {
        std::vector<double> speedup;
        std::vector<double> simt;
        double baseSimt = 0.0;
    };
    std::vector<Row> rows(opt.scenes.size());

    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        RunStats rb = runScene(name, base, opt);
        rows[i].baseSimt = rb.simtEfficiency();
        for (uint32_t th : thresholds) {
            GpuConfig c = opt.apply(GpuConfig::virtualizedTreeletQueues());
            c.repackThreshold = th;
            RunStats r = runScene(name, c, opt);
            rows[i].speedup.push_back(double(rb.cycles) /
                                      double(r.cycles));
            rows[i].simt.push_back(r.simtEfficiency());
        }
    });

    Table t({"scene", "speedup_none", "speedup_r8", "speedup_r16",
             "speedup_r22", "simt_base", "simt_none", "simt_r8",
             "simt_r16", "simt_r22"});
    std::vector<std::vector<double>> sp(4);
    std::vector<double> sb;
    std::vector<std::vector<double>> si(4);
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        t.row().cell(opt.scenes[i]);
        for (size_t k = 0; k < 4; k++) {
            t.cell(rows[i].speedup[k], 3);
            sp[k].push_back(rows[i].speedup[k]);
        }
        t.cell(rows[i].baseSimt, 3);
        sb.push_back(rows[i].baseSimt);
        for (size_t k = 0; k < 4; k++) {
            t.cell(rows[i].simt[k], 3);
            si[k].push_back(rows[i].simt[k]);
        }
    }
    t.row().cell("MEAN");
    for (size_t k = 0; k < 4; k++)
        t.cell(geomean(sp[k]), 3);
    t.cell(mean(sb), 3);
    for (size_t k = 0; k < 4; k++)
        t.cell(mean(si[k]), 3);
    t.print(std::cout);
    writeCsv(opt, t, "fig13_repacking.csv");

    std::cout << "\npaper: speedups none<1, r16=1.84, r22=1.95; SIMT "
                 "base 0.37, none 0.33, r22 0.82\n";
    return 0;
}
