/**
 * @file
 * Sampled-simulation validation harness (DESIGN.md §8): runs every
 * scene through all three architectures twice — once with the full
 * detailed simulator (ground truth) and once with the sampled
 * simulator — and reports per-run cycle error, counter errors and
 * wall-clock speedup side by side.
 *
 * Doubles as the CI accuracy gate: exits non-zero if any run's
 * |cycle error| exceeds TRT_SAMPLE_GATE_PCT percent (default 5). At
 * the smoke scale CI uses, scenes are small enough that the sampler
 * takes its all-detailed bypass and the gate checks exactness; at
 * full scale this prints the honest error table instead.
 */

#include <chrono>
#include <cmath>
#include <iostream>

#include "core/arch.hh"
#include "harness/harness.hh"
#include "util/env.hh"

namespace
{

double
pctErr(double sampled, double full)
{
    if (full == 0.0)
        return sampled == 0.0 ? 0.0 : 100.0;
    return (sampled - full) / full * 100.0;
}

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Sampled simulation validation (full vs sampled)",
                     opt);

    double gate = envDouble("TRT_SAMPLE_GATE_PCT", 5.0);

    SampleConfig sc = SampleConfig::fromEnv();
    sc.enabled = true; // This bench always compares against sampling.

    struct ArchDesc
    {
        const char *name;
        GpuConfig cfg;
    };
    const std::vector<ArchDesc> arches = {
        {"base", opt.apply(GpuConfig{})},
        {"pref", opt.apply(GpuConfig::treeletPrefetch())},
        {"vtq", opt.apply(GpuConfig::virtualizedTreeletQueues())},
    };

    Table t({"scene", "arch", "full_cycles", "sampled_cycles", "err_pct",
             "ci95_pct", "visits_err_pct", "dram_err_pct", "intervals",
             "speedup"});

    double worstErr = 0.0;
    std::string worstRun = "none";

    // Scenes run serially: both legs of a pair must be timed on an
    // otherwise idle machine for the speedup column to mean anything.
    for (const std::string &name : opt.scenes) {
        const SceneBundle &b = getSceneBundle(name, opt.sceneScale);
        for (const ArchDesc &a : arches) {
            RunStats full, samp;
            double fullS = wallSeconds(
                [&] { full = simulate(a.cfg, b.scene, b.bvh); });
            double sampS = wallSeconds(
                [&] { samp = simulateSampled(a.cfg, b.scene, b.bvh, sc); });

            double err = pctErr(double(samp.cycles), double(full.cycles));
            double ci = full.cycles
                            ? samp.sampled.cyclesCi95 /
                                  double(full.cycles) * 100.0
                            : 0.0;
            double visitsErr = pctErr(double(samp.rt.nodeVisits),
                                      double(full.rt.nodeVisits));
            double dramErr =
                pctErr(double(samp.memClass(MemClass::BvhNode).dramAccesses),
                       double(full.memClass(MemClass::BvhNode).dramAccesses));

            t.row()
                .cell(name)
                .cell(a.name)
                .cell(full.cycles)
                .cell(samp.cycles)
                .cell(err, 2)
                .cell(ci, 2)
                .cell(visitsErr, 2)
                .cell(dramErr, 2)
                .cell(uint64_t(samp.sampled.intervals))
                .cell(sampS > 0.0 ? fullS / sampS : 0.0, 2);

            if (std::abs(err) > std::abs(worstErr)) {
                worstErr = err;
                worstRun = name + "/" + a.name;
            }
        }
    }

    t.print(std::cout);
    writeCsv(opt, t, "sampled_validate.csv");

    std::cout << "\nworst |cycle error|: " << formatDouble(worstErr, 2)
              << "% (" << worstRun << "), gate ±"
              << formatDouble(gate, 1) << "%\n";
    if (std::abs(worstErr) > gate) {
        std::cerr << "sampled_validate: FAIL: " << worstRun
                  << " cycle error " << formatDouble(worstErr, 2)
                  << "% exceeds gate " << formatDouble(gate, 1) << "%\n";
        return 1;
    }
    std::cout << "sampled_validate: PASS\n";
    return 0;
}
