/**
 * @file
 * Section 6.5: area overheads of the treelet-queue structures, derived
 * from measured high-water marks of a full VTQ run.
 *
 *  - Treelet Count Table: 19-bit treelet address + 12-bit ray count per
 *    entry; the paper provisions 600 entries (2.2KB) and observes at
 *    most 549 queues (13 above the threshold at once).
 *  - Ray data: 32B per ray, 4096 rays -> 128KB in the reserved L2.
 *  - Treelet Queue Table: (19 + 32x12 bits) x 128 entries = 6.29KB.
 */

#include <algorithm>
#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Section 6.5: area overheads", opt);

    GpuConfig vtq = opt.apply(GpuConfig::virtualizedTreeletQueues());
    std::vector<RunStats> runs = runAllScenes(
        opt, [&](const std::string &) { return vtq; });

    Table t({"scene", "count_table_hw", "over_threshold_hw",
             "queue_table_entries_hw", "max_concurrent_rays"});
    uint32_t max_ct = 0, max_over = 0, max_qt = 0;
    uint64_t max_rays = 0;
    for (size_t i = 0; i < opt.scenes.size(); i++) {
        const RtStats &r = runs[i].rt;
        max_ct = std::max(max_ct, r.countTableHighWater);
        max_over = std::max(max_over, r.countTableOverThresholdHW);
        max_qt = std::max(max_qt, r.queueTableEntriesHW);
        max_rays = std::max(max_rays, r.maxConcurrentRays);
        t.row()
            .cell(opt.scenes[i])
            .cell(uint64_t(r.countTableHighWater))
            .cell(uint64_t(r.countTableOverThresholdHW))
            .cell(uint64_t(r.queueTableEntriesHW))
            .cell(r.maxConcurrentRays);
    }
    t.print(std::cout);
    writeCsv(opt, t, "area_overheads.csv");

    // Derived structure sizes with the paper's bit widths.
    double count_table_kb = double(max_ct) * (19 + 12) / 8.0 / 1024.0;
    double queue_table_kb =
        double(max_qt) * (19 + 32.0 * 12.0) / 8.0 / 1024.0;
    double ray_data_kb = double(vtq.maxVirtualRaysPerSm) * 32.0 / 1024.0;

    std::cout << "\nmax count-table entries observed: " << max_ct << " ("
              << formatDouble(count_table_kb, 2)
              << "KB at 31 bits/entry; paper provisions 600 = 2.2KB, "
                 "observes <= 549)\n"
              << "max entries above threshold at once: " << max_over
              << " (paper: <= 13)\n"
              << "max queue-table entries observed: " << max_qt << " ("
              << formatDouble(queue_table_kb, 2)
              << "KB; paper provisions 128 = 6.29KB)\n"
              << "ray data: " << vtq.maxVirtualRaysPerSm << " rays x 32B = "
              << formatDouble(ray_data_kb, 0) << "KB (paper: 128KB)\n"
              << "max concurrent rays observed: " << max_rays << "\n";
    return 0;
}
