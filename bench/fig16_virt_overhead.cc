/**
 * @file
 * Figure 16: ray virtualization performance overhead — the full
 * proposed configuration with real CTA save/restore costs, normalized
 * to the same configuration with free (zero-cost) save/restore.
 *
 * Shape to reproduce: virtualization costs ~10% performance on average
 * (the CTA state traffic and restore latency).
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    printBenchHeader("Figure 16: ray virtualization overhead", opt);

    GpuConfig real = opt.apply(GpuConfig::virtualizedTreeletQueues());
    GpuConfig free_virt = real;
    free_virt.virtualizationFree = true;

    Table t({"scene", "free_cycles", "real_cycles", "overhead_pct",
             "cta_saves", "state_mb_moved"});
    std::vector<double> ovh;
    std::vector<RunStats> rr(opt.scenes.size()), rf(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        rf[i] = runScene(name, free_virt, opt);
        rr[i] = runScene(name, real, opt);
    });

    for (size_t i = 0; i < opt.scenes.size(); i++) {
        double o = 100.0 * (double(rr[i].cycles) / double(rf[i].cycles) -
                            1.0);
        ovh.push_back(o);
        t.row()
            .cell(opt.scenes[i])
            .cell(rf[i].cycles)
            .cell(rr[i].cycles)
            .cell(o, 2)
            .cell(rr[i].ctaSaves)
            .cell(double(rr[i].ctaStateBytes) / 1048576.0, 2);
    }
    t.row().cell("MEAN").cell("").cell("").cell(mean(ovh), 2).cell("")
        .cell("");
    t.print(std::cout);
    writeCsv(opt, t, "fig16_virt_overhead.csv");

    std::cout << "\npaper: ray virtualization costs ~10% on average\n";
    return 0;
}
