/**
 * @file
 * Table 1: the simulated GPU configuration. Prints the configured
 * values so a reader can diff them against the paper.
 */

#include <iostream>

#include "harness/harness.hh"

int
main(int argc, char **argv)
{
    using namespace trt;
    HarnessOptions opt = HarnessOptions::fromArgs(argc, argv);
    GpuConfig cfg = opt.apply(GpuConfig{});

    printBenchHeader("Table 1: Vulkan-Sim configuration", opt);

    Table t({"parameter", "value", "paper"});
    auto row = [&](const std::string &p, const std::string &v,
                   const std::string &paper) {
        t.row().cell(p).cell(v).cell(paper);
    };
    row("# Streaming Multiprocessors", std::to_string(cfg.numSms), "16");
    row("Max Warps per SM", std::to_string(cfg.maxWarpsPerSm), "32");
    row("Warp Size", std::to_string(cfg.warpSize), "32");
    row("Max CTA per SM", std::to_string(cfg.maxCtasPerSm), "16");
    row("# Registers / SM", std::to_string(cfg.regsPerSm), "32768");
    row("L1 Data Cache",
        std::to_string(cfg.mem.l1Bytes / 1024) + "KB fully-assoc LRU, " +
            std::to_string(cfg.mem.l1HitLatency) + " cycles",
        "16KB, fully assoc. LRU, 39 cycles");
    row("L2 Unified Cache",
        std::to_string(cfg.mem.l2Bytes / 1024) + "KB " +
            std::to_string(cfg.mem.l2Ways) + "-way LRU, " +
            std::to_string(cfg.mem.l2HitLatency) + " cycles",
        "128KB, 16-way assoc. LRU, 187 cycles");
    row("# RT Units / SM", std::to_string(cfg.rtUnitsPerSm), "1");
    row("RT Unit Warp Buffer Size", std::to_string(cfg.warpBufferSize),
        "1");
    row("Max virtual rays / SM", std::to_string(cfg.maxVirtualRaysPerSm),
        "4096");
    row("Treelet size cap",
        std::to_string(BvhConfig{}.treeletMaxBytes / 1024) + "KB",
        "half the L1 (8KB)");

    t.print(std::cout);
    writeCsv(opt, t, "table1_config.csv");
    return 0;
}
