/**
 * @file
 * Tests for the section 2.4 analytical model: trace recording sanity
 * and the model's defining properties — monotone speedup in concurrent
 * rays, batch-size-1 degeneracy, and exact hand-computed cases.
 */

#include <gtest/gtest.h>

#include "analytic/analytic.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

TEST(RecordTraces, ProducesPerRayFootprints)
{
    Scene s = buildScene("BUNNY", 0.05f);
    BvhConfig bc;
    bc.treeletMaxBytes = 1024;
    Bvh bvh = Bvh::build(s.triangles, bc);
    auto traces = recordTraces(s, bvh, 16, 16, 2, 0.02f);
    EXPECT_GE(traces.size(), 256u); // at least the primary rays
    for (const auto &t : traces) {
        EXPECT_GE(t.treelets.size(), 1u);
        EXPECT_GE(t.nodesVisited, 1u);
        // Unique treelets only.
        std::set<uint32_t> uniq(t.treelets.begin(), t.treelets.end());
        EXPECT_EQ(uniq.size(), t.treelets.size());
    }
}

TEST(RecordTraces, MaxRaysCap)
{
    Scene s = buildScene("BUNNY", 0.05f);
    Bvh bvh = Bvh::build(s.triangles);
    auto traces = recordTraces(s, bvh, 16, 16, 2, 0.02f, 100);
    EXPECT_EQ(traces.size(), 100u);
}

TEST(AnalyticModel, HandComputedCosts)
{
    // Two rays, each visiting 10 nodes; ray 0 visits treelets {0,1},
    // ray 1 visits {1,2}. Treelet fetch = 4 nodes.
    std::vector<RayTrace> traces(2);
    traces[0].nodesVisited = 10;
    traces[0].treelets = {0, 1};
    traces[1].nodesVisited = 10;
    traces[1].treelets = {1, 2};
    AnalyticModel m(traces, 4.0);

    EXPECT_DOUBLE_EQ(m.baselineCost(), 20.0);
    // Batch of 1: each ray fetches its own treelets: (2 + 2) * 4.
    EXPECT_DOUBLE_EQ(m.treeletCost(1), 16.0);
    // Batch of 2: union {0,1,2} fetched once: 3 * 4.
    EXPECT_DOUBLE_EQ(m.treeletCost(2), 12.0);
    EXPECT_DOUBLE_EQ(m.speedup(2), 20.0 / 12.0);
}

TEST(AnalyticModel, SpeedupMonotoneInBatchSize)
{
    Scene s = buildScene("CRNVL", 0.05f);
    BvhConfig bc;
    bc.treeletMaxBytes = 1024;
    Bvh bvh = Bvh::build(s.triangles, bc);
    auto traces = recordTraces(s, bvh, 32, 32, 3, 0.02f, 3000);
    AnalyticModel m(std::move(traces), bvh.stats().avgTreeletNodes);

    double prev = 0.0;
    for (uint32_t b : {1u, 8u, 64u, 512u, 4096u}) {
        double sp = m.speedup(b);
        EXPECT_GE(sp, prev * 0.999) << "batch " << b;
        prev = sp;
    }
    // Large batches must show a real benefit.
    EXPECT_GT(m.speedup(4096), 1.0);
}

TEST(AnalyticModel, PerTreeletCostsUsed)
{
    // Same footprint as HandComputedCosts but per-treelet sizes
    // {4, 8, 2} instead of the constant 4.
    std::vector<RayTrace> traces(2);
    traces[0].nodesVisited = 10;
    traces[0].treelets = {0, 1};
    traces[1].nodesVisited = 10;
    traces[1].treelets = {1, 2};
    AnalyticModel m(traces, std::vector<uint32_t>{4, 8, 2});
    // Batch of 1: (4+8) + (8+2) = 22. Batch of 2: 4+8+2 = 14.
    EXPECT_DOUBLE_EQ(m.treeletCost(1), 22.0);
    EXPECT_DOUBLE_EQ(m.treeletCost(2), 14.0);
    EXPECT_DOUBLE_EQ(m.speedup(2), 20.0 / 14.0);
}

TEST(AnalyticModel, ZeroBatchFallsBack)
{
    std::vector<RayTrace> traces(1);
    traces[0].nodesVisited = 5;
    traces[0].treelets = {0};
    AnalyticModel m(traces, 2.0);
    EXPECT_DOUBLE_EQ(m.treeletCost(0), m.baselineCost());
}

TEST(AnalyticModel, EmptyTraces)
{
    AnalyticModel m({}, 4.0);
    EXPECT_DOUBLE_EQ(m.baselineCost(), 0.0);
    EXPECT_DOUBLE_EQ(m.speedup(32), 0.0);
}

TEST(AnalyticModel, RayCount)
{
    std::vector<RayTrace> traces(7);
    for (auto &t : traces) {
        t.nodesVisited = 1;
        t.treelets = {0};
    }
    AnalyticModel m(traces, 1.0);
    EXPECT_EQ(m.rayCount(), 7u);
    // All rays share one treelet: huge batches approach 7x.
    EXPECT_DOUBLE_EQ(m.speedup(7), 7.0);
}

} // anonymous namespace
} // namespace trt
