/**
 * @file
 * Dispatch-policy layer tests (DESIGN.md §9): every policy must be a
 * pure *scheduling* strategy — it may change when rays run, in which
 * warp, and where traversal starts, but never what a ray hits. The
 * suite pins that contract: frames identical across all four policies,
 * bit-identical RunStats across thread counts and SIMD modes per
 * policy, snapshot round-trips of reorder-bin and prediction-table
 * state, traverser-level misprediction fallback, and the
 * bounds-checked mode-indexed stat accessors.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "bvh/traverser.hh"
#include "core/arch.hh"
#include "geom/rng.hh"
#include "geom/simd.hh"
#include "gpu/dispatch_policy.hh"
#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"
#include "snapshot/snapshot.hh"

namespace trt
{
namespace
{

namespace fs = std::filesystem;

const SceneBundle &
bundle(const std::string &name)
{
    return getSceneBundle(name, 0.25f);
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    cfg.maxCtasPerSm = 2;
    return cfg;
}

RunStats
runWithThreads(const std::string &scene, GpuConfig cfg, uint32_t threads)
{
    cfg.simThreads = threads;
    const SceneBundle &b = bundle(scene);
    return simulate(cfg, b.scene, b.bvh);
}

void
expectIdentical(const RunStats &a, const RunStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.framebuffer, b.framebuffer) << what;
    EXPECT_EQ(a.rt.raysCompleted, b.rt.raysCompleted) << what;
    EXPECT_EQ(a.rt.isectTests, b.rt.isectTests) << what;
    EXPECT_EQ(a.rt.reorderBatches, b.rt.reorderBatches) << what;
    EXPECT_EQ(a.rt.predictLookups, b.rt.predictLookups) << what;
    EXPECT_EQ(a.rt.predictHits, b.rt.predictHits) << what;
    EXPECT_EQ(a.rt.predictMisses, b.rt.predictMisses) << what;
    EXPECT_EQ(RunStatsIo::fingerprint(a), RunStatsIo::fingerprint(b))
        << what;
}

/** A policy plus its table-scope flavor: `predict` keeps one table per
 *  RT unit, `predict_shared` shares one per SM (TRT_PREDICT_SHARED). */
struct PolicyVariant
{
    const char *label;
    DispatchPolicyKind kind;
    bool sharedPredict;
};

constexpr PolicyVariant kAllVariants[] = {
    {"fifo", DispatchPolicyKind::Fifo, false},
    {"vtq", DispatchPolicyKind::Vtq, false},
    {"reorder", DispatchPolicyKind::Reorder, false},
    {"predict", DispatchPolicyKind::Predict, false},
    {"predict_shared", DispatchPolicyKind::Predict, true},
};

GpuConfig
forVariant(const PolicyVariant &v)
{
    GpuConfig cfg = sized(GpuConfig::forPolicy(v.kind));
    cfg.predictShared = v.sharedPredict;
    return cfg;
}

/** Restores the process-wide SIMD toggle on scope exit. */
struct SimdGuard
{
    ~SimdGuard() { setSimdEnabled(true); }
};

// ---- scheduling never changes the image ----------------------------

/** The load-bearing invariant of the whole layer: reordering rays and
 *  entering traversal at a predicted leaf block must render the exact
 *  frame the FIFO baseline renders. */
TEST(PolicyFrames, IdenticalAcrossAllPolicies)
{
    for (const char *scene : {"CRNVL", "BUNNY"}) {
        RunStats ref = runWithThreads(
            scene, sized(GpuConfig::forPolicy(DispatchPolicyKind::Fifo)),
            1);
        for (const PolicyVariant &v : kAllVariants) {
            if (v.kind == DispatchPolicyKind::Fifo)
                continue;
            RunStats st = runWithThreads(scene, forVariant(v), 1);
            EXPECT_EQ(ref.framebuffer, st.framebuffer)
                << scene << " " << v.label;
            EXPECT_EQ(ref.rt.raysCompleted, st.rt.raysCompleted)
                << scene << " " << v.label;
            ASSERT_EQ(ref.primaryHits.size(), st.primaryHits.size())
                << scene << " " << v.label;
            for (size_t p = 0; p < ref.primaryHits.size(); p++) {
                ASSERT_EQ(ref.primaryHits[p].t, st.primaryHits[p].t)
                    << scene << " " << v.label << " pixel " << p;
                ASSERT_EQ(ref.primaryHits[p].triIndex,
                          st.primaryHits[p].triIndex)
                    << scene << " " << v.label << " pixel " << p;
            }
        }
    }
}

/** The policies must actually do something: predict issues lookups,
 *  reorder forms cross-group batches. Guards against a refactor that
 *  silently wires every kind to the FIFO base class. */
TEST(PolicyFrames, PoliciesAreLive)
{
    RunStats pred = runWithThreads(
        "CRNVL", sized(GpuConfig::forPolicy(DispatchPolicyKind::Predict)),
        1);
    EXPECT_GT(pred.rt.predictLookups, 0u);
    EXPECT_GT(pred.rt.predictInserts, 0u);
    // Every resolved speculation is either a hit or a miss; lookups
    // that found no table entry resolve as neither.
    EXPECT_LE(pred.rt.predictHits + pred.rt.predictMisses,
              pred.rt.predictLookups);
    EXPECT_GT(pred.rt.predictHits, 0u)
        << "a 64x64 primary-ray frame has enough coherence that the "
           "predictor must land at least one correct speculation";

    RunStats reo = runWithThreads(
        "CRNVL", sized(GpuConfig::forPolicy(DispatchPolicyKind::Reorder)),
        1);
    EXPECT_GT(reo.rt.reorderBatches, 0u);

    // The shared table trains through per-SM queues; it must still
    // issue lookups and land hits once flushed updates become visible.
    GpuConfig shared =
        sized(GpuConfig::forPolicy(DispatchPolicyKind::Predict));
    shared.predictShared = true;
    RunStats sh = runWithThreads("CRNVL", shared, 1);
    EXPECT_GT(sh.rt.predictLookups, 0u);
    EXPECT_GT(sh.rt.predictInserts, 0u);
    EXPECT_GT(sh.rt.predictHits, 0u);
}

// ---- determinism matrix: policy x threads x SIMD -------------------

class PolicyDeterminism : public ::testing::TestWithParam<PolicyVariant>
{
};

TEST_P(PolicyDeterminism, BitIdenticalAcrossThreadCounts)
{
    GpuConfig cfg = forVariant(GetParam());
    RunStats serial = runWithThreads("CRNVL", cfg, 1);
    for (uint32_t t : {2u, 4u}) {
        expectIdentical(serial, runWithThreads("CRNVL", cfg, t),
                        std::string(GetParam().label) + "/CRNVL 1 vs " +
                            std::to_string(t));
    }
}

TEST_P(PolicyDeterminism, SimdToggleBitIdentical)
{
    if (!simdCompiledIn())
        GTEST_SKIP() << "scalar-only build (TRT_SIMD=OFF)";
    SimdGuard guard;
    GpuConfig cfg = forVariant(GetParam());
    setSimdEnabled(true);
    RunStats simd_on = runWithThreads("CRNVL", cfg, 1);
    setSimdEnabled(false);
    expectIdentical(simd_on, runWithThreads("CRNVL", cfg, 4),
                    std::string(GetParam().label) +
                        "/CRNVL simd-on@1 vs simd-off@4");
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyDeterminism,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto &info) {
                             return std::string(info.param.label);
                         });

// ---- snapshot round-trip of policy state ---------------------------

fs::path
snapDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / ("trt_snap_" + name);
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

RunStats
haltAndResume(const std::string &scene, GpuConfig cfg, uint64_t halt_cycle,
              const fs::path &dir, uint32_t resume_threads, uint64_t fp)
{
    const SceneBundle &b = bundle(scene);
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = fp;
    halt.haltAtCycle = halt_cycle;
    bool halted = false;
    try {
        simulateWithSnapshots(cfg, b.scene, b.bvh, halt, false);
    } catch (const SimulationHalted &e) {
        halted = true;
        EXPECT_GE(e.cycle, halt_cycle);
        EXPECT_TRUE(fs::exists(e.snapshotPath));
    }
    EXPECT_TRUE(halted) << scene << ": run finished before halt cycle "
                        << halt_cycle;

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = fp;
    GpuConfig rcfg = cfg;
    rcfg.simThreads = resume_threads;
    return simulateWithSnapshots(rcfg, b.scene, b.bvh, resume, true);
}

class PolicySnapshot : public ::testing::TestWithParam<PolicyVariant>
{
};

/** Crash mid-run and resume: the serialized reorder bins / prediction
 *  table (private per-unit or SM-shared) must restore exactly, or the
 *  resumed schedule (and thus every timing counter) skews. Resuming at
 *  a different thread count also exercises the state's
 *  thread-invariance. */
TEST_P(PolicySnapshot, ResumeBitIdentical)
{
    GpuConfig cfg = forVariant(GetParam());
    cfg.simThreads = 1;
    const SceneBundle &b = bundle("CRNVL");
    RunStats ref = simulate(cfg, b.scene, b.bvh);
    uint64_t halt = ref.cycles / 2;
    ASSERT_GT(halt, 0u);

    for (uint32_t threads : {1u, 4u}) {
        fs::path dir = snapDir(std::string("policy_") +
                               GetParam().label + "_t" +
                               std::to_string(threads));
        RunStats res =
            haltAndResume("CRNVL", cfg, halt, dir, threads, 0xD15Cull);
        expectIdentical(ref, res, std::string(GetParam().label) +
                                      " resume @" +
                                      std::to_string(threads));
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySnapshot,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto &info) {
                             return std::string(info.param.label);
                         });

// ---- traverser-level misprediction fallback ------------------------

struct TraverserFixture
{
    Scene scene;
    Bvh bvh;

    TraverserFixture()
    {
        scene = buildScene("CRNVL", 0.05f);
        BvhConfig cfg;
        cfg.treeletMaxBytes = 1024;
        bvh = Bvh::build(scene.triangles, cfg);
    }
};

Ray
randomRay(Pcg32 &rng, const Aabb &b)
{
    Vec3 e = b.extent();
    Vec3 o{b.lo.x + e.x * rng.nextFloat(), b.lo.y + e.y * rng.nextFloat(),
           b.lo.z + e.z * rng.nextFloat()};
    return Ray(o, normalize(Vec3{rng.nextFloat() - 0.5f,
                                 rng.nextFloat() - 0.5f,
                                 rng.nextFloat() - 0.5f}));
}

void
expectSameHit(const HitRecord &a, const HitRecord &b, int ray_idx)
{
    ASSERT_EQ(a.hit(), b.hit()) << "ray " << ray_idx;
    if (a.hit()) {
        EXPECT_EQ(a.t, b.t) << "ray " << ray_idx;
        EXPECT_EQ(a.triIndex, b.triIndex) << "ray " << ray_idx;
    }
}

/** Priming with an *arbitrary* (usually wrong) leaf block must still
 *  produce the unprimed hit bit-for-bit: the root fallback after a
 *  speculative entry IS the normal traversal, merely tightened by the
 *  speculative t bound. */
TEST(Misprediction, WrongBlockFallsBackToExactHit)
{
    TraverserFixture f;
    Pcg32 rng(1234);
    uint32_t num_tris = uint32_t(f.bvh.triangles().size());
    ASSERT_GT(num_tris, 8u);
    RayTraverser plain, primed;
    for (int i = 0; i < 300; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        plain.reset(&f.bvh, r);
        finishTraversal(plain);

        // A pseudo-random block — unrelated to the ray's real path.
        uint32_t first = rng.nextBounded(num_tris - 4);
        primed.reset(&f.bvh, r);
        primed.primeSpeculation(first, 4);
        finishTraversal(primed);

        expectSameHit(plain.hit(), primed.hit(), i);
        EXPECT_NE(primed.specOutcome(),
                  RayTraverser::SpecOutcome::None)
            << "ray " << i;
    }
}

/** Priming with the block that truly contains the closest hit must be
 *  reported Correct and still reproduce the exact hit record. */
TEST(Misprediction, CorrectBlockReportedCorrect)
{
    TraverserFixture f;
    Pcg32 rng(77);
    RayTraverser plain, primed;
    int correct_checked = 0;
    for (int i = 0; i < 300 && correct_checked < 50; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        plain.reset(&f.bvh, r);
        finishTraversal(plain);
        if (!plain.hit().hit() || plain.hitBlockCount() == 0)
            continue;

        primed.reset(&f.bvh, r);
        primed.primeSpeculation(plain.hitBlockFirst(),
                                plain.hitBlockCount());
        finishTraversal(primed);

        expectSameHit(plain.hit(), primed.hit(), i);
        EXPECT_EQ(primed.specOutcome(),
                  RayTraverser::SpecOutcome::Correct)
            << "ray " << i;
        correct_checked++;
    }
    EXPECT_GE(correct_checked, 10)
        << "scene too sparse to exercise correct predictions";
}

TEST(Misprediction, UnprimedOutcomeIsNone)
{
    TraverserFixture f;
    Ray r = f.scene.camera.generateRay(10, 10, 64, 64);
    RayTraverser t(&f.bvh, r);
    finishTraversal(t);
    EXPECT_EQ(t.specOutcome(), RayTraverser::SpecOutcome::None);
    EXPECT_FALSE(t.specPrimed());
}

// ---- policy unit behavior ------------------------------------------

/** Reorder binning is a pure function of ray geometry: same ray, same
 *  bin; nearby origins with the same direction octant share bins at
 *  coarse grids. */
TEST(ReorderBins, KeyIsDeterministicAndOctantAware)
{
    TraverserFixture f;
    GpuConfig cfg = GpuConfig::forPolicy(DispatchPolicyKind::Reorder);
    RtStats stats;
    ReorderPolicy pol(cfg, f.bvh, stats);

    Ray a(Vec3{0.1f, 0.2f, 0.3f}, normalize(Vec3{1, 1, 1}));
    EXPECT_EQ(pol.binKey(a), pol.binKey(a));

    Ray flipped(a.orig, normalize(Vec3{-1, 1, 1}));
    EXPECT_NE(pol.binKey(a) & 7u, pol.binKey(flipped) & 7u)
        << "direction octant must be part of the key";
}

/** The prediction table trains on completed traversals and then
 *  speculates the trained block for a matching ray hash. */
TEST(PredictTable, TrainsAndSpeculates)
{
    TraverserFixture f;
    GpuConfig cfg = GpuConfig::forPolicy(DispatchPolicyKind::Predict);
    RtStats stats;
    PredictPolicy pol(cfg, f.bvh, stats);

    // Find a ray that hits, complete it, train the table.
    Pcg32 rng(5);
    RayTraverser t;
    Ray trained;
    bool found = false;
    for (int i = 0; i < 200 && !found; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        t.reset(&f.bvh, r);
        finishTraversal(t);
        if (t.hit().hit() && t.hitBlockCount() > 0) {
            trained = r;
            found = true;
        }
    }
    ASSERT_TRUE(found);

    EXPECT_FALSE(pol.speculate(trained).valid) << "cold table";
    pol.onRayComplete(t);
    DispatchPolicy::Speculation spec = pol.speculate(trained);
    ASSERT_TRUE(spec.valid);
    EXPECT_EQ(spec.firstTri, t.hitBlockFirst());
    EXPECT_EQ(spec.count, t.hitBlockCount());
    EXPECT_EQ(stats.predictLookups, 2u);
}

// ---- mode-indexed stat accessors (satellite: bounds checking) ------

TEST(TraversalModes, NamesAndIndicesCoverEveryEnumerator)
{
    for (size_t i = 0; i < kNumTraversalModes; i++) {
        TraversalMode m = TraversalMode(i);
        EXPECT_EQ(modeIndex(m), i);
        EXPECT_STRNE(traversalModeName(m), "unknown");
    }
}

TEST(TraversalModes, OutOfRangeIndexThrows)
{
    EXPECT_THROW(modeIndex(TraversalMode::NumModes), std::out_of_range);
    EXPECT_THROW(modeIndex(TraversalMode(200)), std::out_of_range);
}

} // anonymous namespace
} // namespace trt
