/**
 * @file
 * Checkpoint/restore subsystem tests (DESIGN.md §7): serializer
 * round-trips and schema-drift detection, snapshot-file validation
 * (CRC, truncation, fingerprint), and the hard acceptance bar —
 * resuming a halted run must reproduce the uninterrupted run's
 * RunStats bit-for-bit at any TRT_SIM_THREADS and either SIMD mode.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/arch.hh"
#include "geom/simd.hh"
#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"
#include "snapshot/snapshot.hh"

namespace trt
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test snapshot directory under the gtest temp root. */
fs::path
snapDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / ("trt_snap_" + name);
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

// ---- serializer ----------------------------------------------------

TEST(Serializer, RoundTripsPrimitivesAndChunks)
{
    Serializer s;
    s.beginChunk("OUTR");
    s.u8(0xAB);
    s.b(true);
    s.u32(0xDEADBEEFu);
    s.u64(0x0123456789ABCDEFull);
    s.f32(1.5f);
    s.str("hello");
    s.vecPod(std::vector<uint64_t>{1, 2, 3});
    s.beginChunk("INNR");
    s.u32(42);
    s.endChunk();
    s.endChunk();

    Deserializer d(s.bytes());
    d.beginChunk("OUTR");
    EXPECT_EQ(d.u8(), 0xAB);
    EXPECT_TRUE(d.b());
    EXPECT_EQ(d.u32(), 0xDEADBEEFu);
    EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(d.f32(), 1.5f);
    EXPECT_EQ(d.str(), "hello");
    EXPECT_EQ(d.vecPod<uint64_t>(), (std::vector<uint64_t>{1, 2, 3}));
    d.beginChunk("INNR");
    EXPECT_EQ(d.u32(), 42u);
    d.endChunk();
    d.endChunk();
    EXPECT_TRUE(d.atEnd());
}

TEST(Serializer, ChunkTagMismatchThrows)
{
    Serializer s;
    s.beginChunk("AAAA");
    s.endChunk();
    Deserializer d(s.bytes());
    EXPECT_THROW(d.beginChunk("BBBB"), SnapshotError);
}

TEST(Serializer, SchemaDriftFailsAtTheOwningChunk)
{
    // One side wrote two fields, the other reads one: endChunk must
    // flag the unconsumed bytes instead of silently skewing the rest.
    Serializer s;
    s.beginChunk("DRFT");
    s.u32(1);
    s.u32(2);
    s.endChunk();
    Deserializer d(s.bytes());
    d.beginChunk("DRFT");
    EXPECT_EQ(d.u32(), 1u);
    EXPECT_THROW(d.endChunk(), SnapshotError);
}

TEST(Serializer, TruncationThrows)
{
    Serializer s;
    s.u64(1000); // vector length far beyond the stream
    Deserializer d(s.bytes());
    EXPECT_THROW(d.vecPod<uint64_t>(), SnapshotError);

    Deserializer d2(s.bytes().data(), 3);
    EXPECT_THROW(d2.u64(), SnapshotError);
}

TEST(Serializer, BoolRangeChecked)
{
    Serializer s;
    s.u8(2);
    Deserializer d(s.bytes());
    EXPECT_THROW(d.b(), SnapshotError);
}

TEST(Serializer, Crc32MatchesKnownVector)
{
    // zlib's crc32("123456789") reference value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

// ---- snapshot files ------------------------------------------------

std::vector<uint8_t>
somePayload()
{
    Serializer s;
    s.beginChunk("TEST");
    for (uint32_t i = 0; i < 256; i++)
        s.u32(i * 2654435761u);
    s.endChunk();
    return s.take();
}

TEST(SnapshotFile, WriteReadRoundTrips)
{
    fs::path dir = snapDir("roundtrip");
    std::vector<uint8_t> payload = somePayload();
    fs::path p = writeSnapshotFile(dir.string(), 0xFEEDull, 123, payload);
    EXPECT_EQ(p.filename().string(), snapshotFileName(0xFEEDull, 123));
    EXPECT_EQ(readSnapshotPayload(p, 0xFEEDull), payload);
}

TEST(SnapshotFile, RejectsCorruptPayload)
{
    fs::path dir = snapDir("corrupt");
    fs::path p =
        writeSnapshotFile(dir.string(), 0xFEEDull, 5, somePayload());
    {
        std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(40 + 17); // a byte inside the payload
        char c = 0x7F;
        f.write(&c, 1);
    }
    EXPECT_THROW(readSnapshotPayload(p, 0xFEEDull), SnapshotError);
}

TEST(SnapshotFile, RejectsTruncation)
{
    fs::path dir = snapDir("trunc");
    fs::path p =
        writeSnapshotFile(dir.string(), 0xFEEDull, 5, somePayload());
    fs::resize_file(p, fs::file_size(p) / 2);
    EXPECT_THROW(readSnapshotPayload(p, 0xFEEDull), SnapshotError);
}

TEST(SnapshotFile, RejectsStaleFingerprint)
{
    fs::path dir = snapDir("stale");
    fs::path p =
        writeSnapshotFile(dir.string(), 0xFEEDull, 5, somePayload());
    EXPECT_THROW(readSnapshotPayload(p, 0xBEEFull), SnapshotError);
}

TEST(SnapshotFile, FindNewestPicksHighestCycleAndSkipsCorrupt)
{
    fs::path dir = snapDir("newest");
    writeSnapshotFile(dir.string(), 0xFEEDull, 100, somePayload());
    writeSnapshotFile(dir.string(), 0xFEEDull, 300, somePayload());
    writeSnapshotFile(dir.string(), 0xFEEDull, 200, somePayload());
    // A different world's snapshot must never be considered.
    writeSnapshotFile(dir.string(), 0xBEEFull, 900, somePayload());

    auto best = findNewestValidSnapshot(dir.string(), 0xFEEDull);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->filename().string(), snapshotFileName(0xFEEDull, 300));

    // Corrupt the newest: the next-best valid one must win.
    fs::resize_file(*best, 10);
    best = findNewestValidSnapshot(dir.string(), 0xFEEDull);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->filename().string(), snapshotFileName(0xFEEDull, 200));

    EXPECT_FALSE(
        findNewestValidSnapshot(dir.string(), 0x1111ull).has_value());
}

TEST(SnapshotFile, RemoveSnapshotsForIsFingerprintScoped)
{
    fs::path dir = snapDir("remove");
    writeSnapshotFile(dir.string(), 0xFEEDull, 1, somePayload());
    writeSnapshotFile(dir.string(), 0xFEEDull, 2, somePayload());
    writeSnapshotFile(dir.string(), 0xBEEFull, 3, somePayload());
    EXPECT_EQ(removeSnapshotsFor(dir.string(), 0xFEEDull), 2u);
    EXPECT_FALSE(
        findNewestValidSnapshot(dir.string(), 0xFEEDull).has_value());
    EXPECT_TRUE(
        findNewestValidSnapshot(dir.string(), 0xBEEFull).has_value());
}

// ---- crash/resume determinism --------------------------------------

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    // Force ray virtualization traffic, as in determinism_test.
    cfg.maxCtasPerSm = 2;
    return cfg;
}

void
expectIdentical(const RunStats &a, const RunStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.framebuffer, b.framebuffer) << what;
    EXPECT_EQ(a.raysTraced, b.raysTraced) << what;
    EXPECT_EQ(a.aluLaneInstrs, b.aluLaneInstrs) << what;
    EXPECT_EQ(a.ctaSaves, b.ctaSaves) << what;
    EXPECT_EQ(a.ctaRestores, b.ctaRestores) << what;
    EXPECT_EQ(a.bvhMissSeries, b.bvhMissSeries) << what;
    EXPECT_EQ(RunStatsIo::fingerprint(a), RunStatsIo::fingerprint(b))
        << what;
}

/** Run to haltAtCycle (writing a snapshot), then resume with
 *  @p resume_threads workers and return the completed stats. */
RunStats
haltAndResume(const std::string &scene, GpuConfig cfg, uint64_t halt_cycle,
              const fs::path &dir, uint32_t resume_threads, uint64_t fp)
{
    const SceneBundle &b = getSceneBundle(scene, 0.25f);
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = fp;
    halt.haltAtCycle = halt_cycle;
    bool halted = false;
    try {
        simulateWithSnapshots(cfg, b.scene, b.bvh, halt, false);
    } catch (const SimulationHalted &e) {
        halted = true;
        EXPECT_GE(e.cycle, halt_cycle);
        EXPECT_TRUE(fs::exists(e.snapshotPath));
    }
    EXPECT_TRUE(halted) << scene << ": run finished before halt cycle "
                        << halt_cycle;

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = fp;
    GpuConfig rcfg = cfg;
    rcfg.simThreads = resume_threads;
    return simulateWithSnapshots(rcfg, b.scene, b.bvh, resume, true);
}

class SnapshotScene : public ::testing::TestWithParam<const char *>
{
};

/** The acceptance bar: crash at mid-run, resume, and the stats must be
 *  bit-identical to the uninterrupted run — including when the resume
 *  uses a different worker-thread count than the capture. */
TEST_P(SnapshotScene, ResumeBitIdenticalAcrossThreadCounts)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = getSceneBundle(GetParam(), 0.25f);
    RunStats ref = simulate(cfg, b.scene, b.bvh);
    uint64_t halt = ref.cycles / 2;
    ASSERT_GT(halt, 0u);

    for (uint32_t threads : {1u, 4u}) {
        fs::path dir = snapDir(std::string("resume_") + GetParam() + "_t" +
                               std::to_string(threads));
        RunStats res =
            haltAndResume(GetParam(), cfg, halt, dir, threads, 0xF00Dull);
        expectIdentical(ref, res,
                        std::string("resume/") + GetParam() + " @" +
                            std::to_string(threads) + " threads");
    }
}

/** Restores the process-wide SIMD toggle on scope exit. */
struct SimdGuard
{
    ~SimdGuard() { setSimdEnabled(true); }
};

/** Capture with SIMD intersection kernels on, resume with them off
 *  (and vice versa): the snapshot stores traversal state, not kernel
 *  choice, and the kernels are bit-identical (DESIGN.md §6). */
TEST_P(SnapshotScene, ResumeBitIdenticalAcrossSimdToggle)
{
    if (!simdCompiledIn())
        GTEST_SKIP() << "scalar-only build (TRT_SIMD=OFF)";
    SimdGuard guard;
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = getSceneBundle(GetParam(), 0.25f);
    setSimdEnabled(true);
    RunStats ref = simulate(cfg, b.scene, b.bvh);
    uint64_t halt = ref.cycles / 2;
    ASSERT_GT(halt, 0u);

    for (bool resume_simd : {true, false}) {
        fs::path dir = snapDir(std::string("simd_") + GetParam() +
                               (resume_simd ? "_on" : "_off"));
        const SceneBundle &bd = getSceneBundle(GetParam(), 0.25f);
        SnapshotPolicy halt_pol;
        halt_pol.dir = dir.string();
        halt_pol.worldFp = 0xF00Dull;
        halt_pol.haltAtCycle = halt;
        setSimdEnabled(!resume_simd); // capture under the *other* mode
        bool halted = false;
        try {
            simulateWithSnapshots(cfg, bd.scene, bd.bvh, halt_pol, false);
        } catch (const SimulationHalted &) {
            halted = true;
        }
        ASSERT_TRUE(halted);
        setSimdEnabled(resume_simd);
        SnapshotPolicy resume_pol;
        resume_pol.dir = dir.string();
        resume_pol.worldFp = 0xF00Dull;
        GpuConfig rcfg = cfg;
        rcfg.simThreads = 4;
        RunStats res =
            simulateWithSnapshots(rcfg, bd.scene, bd.bvh, resume_pol, true);
        expectIdentical(ref, res,
                        std::string("simd-flip/") + GetParam() +
                            (resume_simd ? " off->on" : " on->off"));
    }
}

INSTANTIATE_TEST_SUITE_P(AcrossScenes, SnapshotScene,
                         ::testing::Values("CRNVL", "BUNNY", "SPNZA"));

/** The compressed 8-wide backend serializes wider traversal frames
 *  (stack entries address 8-slot nodes): crash/resume over the
 *  width-8 tree must stay bit-identical, including resume at a
 *  different worker-thread count. */
TEST(Snapshot, Wide8ResumeBitIdentical)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    BvhConfig bc;
    bc.width = 8;
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f, bc);
    RunStats ref = simulate(cfg, b.scene, b.bvh);
    uint64_t halt = ref.cycles / 2;
    ASSERT_GT(halt, 0u);

    for (uint32_t threads : {1u, 4u}) {
        fs::path dir =
            snapDir("wide8_t" + std::to_string(threads));
        SnapshotPolicy halt_pol;
        halt_pol.dir = dir.string();
        halt_pol.worldFp = 0x8F00Dull;
        halt_pol.haltAtCycle = halt;
        EXPECT_THROW(
            simulateWithSnapshots(cfg, b.scene, b.bvh, halt_pol, false),
            SimulationHalted);
        SnapshotPolicy resume;
        resume.dir = dir.string();
        resume.worldFp = 0x8F00Dull;
        GpuConfig rcfg = cfg;
        rcfg.simThreads = threads;
        RunStats res =
            simulateWithSnapshots(rcfg, b.scene, b.bvh, resume, true);
        expectIdentical(ref, res,
                        "wide8 resume @" + std::to_string(threads));
    }
}

TEST(Snapshot, PeriodicCaptureDoesNotPerturbTheRun)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f);
    RunStats ref = simulate(cfg, b.scene, b.bvh);

    fs::path dir = snapDir("periodic");
    SnapshotPolicy pol;
    pol.dir = dir.string();
    pol.worldFp = 0xABCDull;
    pol.everyCycles = std::max<uint64_t>(ref.cycles / 5, 1);
    RunStats res = simulateWithSnapshots(cfg, b.scene, b.bvh, pol, false);
    expectIdentical(ref, res, "periodic capture");
    EXPECT_TRUE(
        findNewestValidSnapshot(dir.string(), 0xABCDull).has_value());
}

TEST(Snapshot, CorruptSnapshotFallsBackToColdRun)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f);
    RunStats ref = simulate(cfg, b.scene, b.bvh);

    fs::path dir = snapDir("fallback");
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = 0xD00Dull;
    halt.haltAtCycle = ref.cycles / 2;
    std::string snap_path;
    try {
        simulateWithSnapshots(cfg, b.scene, b.bvh, halt, false);
        FAIL() << "expected SimulationHalted";
    } catch (const SimulationHalted &e) {
        snap_path = e.snapshotPath;
    }
    // Corrupt every snapshot in the dir so resume has nothing valid.
    for (const auto &ent : fs::directory_iterator(dir))
        fs::resize_file(ent.path(), 20);

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = 0xD00Dull;
    RunStats res = simulateWithSnapshots(cfg, b.scene, b.bvh, resume, true);
    expectIdentical(ref, res, "cold fallback after corruption");
}

TEST(Snapshot, MismatchedGpuConfigFallsBackToColdRun)
{
    // Same (caller-chosen) world fingerprint, different simulated GPU:
    // the payload-level GpuConfig fingerprint check must catch it and
    // the driver must recover with a cold run of the *new* config.
    GpuConfig cap_cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cap_cfg.simThreads = 1;
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f);
    RunStats cap_ref = simulate(cap_cfg, b.scene, b.bvh);

    fs::path dir = snapDir("cfg_mismatch");
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = 0xCAFEull;
    halt.haltAtCycle = cap_ref.cycles / 2;
    EXPECT_THROW(simulateWithSnapshots(cap_cfg, b.scene, b.bvh, halt, false),
                 SimulationHalted);

    GpuConfig other_cfg = sized(GpuConfig::virtualizedTreeletQueues());
    other_cfg.simThreads = 1;
    other_cfg.maxCtasPerSm = 4; // different machine
    RunStats other_ref = simulate(other_cfg, b.scene, b.bvh);

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = 0xCAFEull;
    RunStats res =
        simulateWithSnapshots(other_cfg, b.scene, b.bvh, resume, true);
    expectIdentical(other_ref, res, "cold fallback after config change");
}

TEST(Snapshot, PolicyFromEnvParsesKnobs)
{
    setenv("TRT_SNAPSHOT_EVERY", "5000", 1);
    setenv("TRT_SNAPSHOT_HALT_AT", "123", 1);
    setenv("TRT_SNAPSHOT_DIR", "/tmp/some_dir", 1);
    setenv("TRT_SNAPSHOT_KEEP", "1", 1);
    SnapshotPolicy p = SnapshotPolicy::fromEnv(0x42ull);
    EXPECT_EQ(p.everyCycles, 5000u);
    EXPECT_EQ(p.haltAtCycle, 123u);
    EXPECT_EQ(p.dir, "/tmp/some_dir");
    EXPECT_TRUE(p.keep);
    EXPECT_EQ(p.worldFp, 0x42ull);
    EXPECT_TRUE(p.captureEnabled());
    unsetenv("TRT_SNAPSHOT_EVERY");
    unsetenv("TRT_SNAPSHOT_HALT_AT");
    unsetenv("TRT_SNAPSHOT_DIR");
    unsetenv("TRT_SNAPSHOT_KEEP");
    SnapshotPolicy off = SnapshotPolicy::fromEnv(0);
    EXPECT_FALSE(off.captureEnabled());
}

} // anonymous namespace
} // namespace trt
