/**
 * @file
 * Tests for the experiment harness: environment parsing, scene-bundle
 * caching, parallel execution and CSV output.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "harness/harness.hh"

namespace trt
{
namespace
{

/** RAII environment variable setter. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            old_ = old;
        had_ = old != nullptr;
        setenv(name, value, 1);
    }

    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_;
};

TEST(HarnessOptions, Defaults)
{
    unsetenv("TRT_RES");
    unsetenv("TRT_SCALE");
    unsetenv("TRT_SCENES");
    unsetenv("TRT_FAST");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 256u);
    EXPECT_FLOAT_EQ(opt.sceneScale, 1.0f);
    EXPECT_EQ(opt.scenes.size(), 14u);
}

TEST(HarnessOptions, EnvOverrides)
{
    EnvGuard r("TRT_RES", "64");
    EnvGuard s("TRT_SCALE", "0.5");
    EnvGuard sc("TRT_SCENES", "BUNNY,CRNVL");
    EnvGuard th("TRT_THREADS", "3");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 64u);
    EXPECT_FLOAT_EQ(opt.sceneScale, 0.5f);
    ASSERT_EQ(opt.scenes.size(), 2u);
    EXPECT_EQ(opt.scenes[0], "BUNNY");
    EXPECT_EQ(opt.scenes[1], "CRNVL");
    EXPECT_EQ(opt.threads, 3u);
}

TEST(HarnessOptions, FastMode)
{
    EnvGuard f("TRT_FAST", "1");
    EnvGuard r("TRT_RES", ""); // empty -> atof 0 -> keeps fast default?
    unsetenv("TRT_RES");
    unsetenv("TRT_SCALE");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 64u);
    EXPECT_LT(opt.sceneScale, 0.5f);
}

TEST(HarnessOptions, ApplySetsResolution)
{
    HarnessOptions opt;
    opt.resolution = 48;
    GpuConfig cfg = opt.apply(GpuConfig{});
    EXPECT_EQ(cfg.imageWidth, 48u);
    EXPECT_EQ(cfg.imageHeight, 48u);
}

TEST(SceneBundle, CachedByNameAndScale)
{
    const SceneBundle &a = getSceneBundle("BUNNY", 0.03f);
    const SceneBundle &b = getSceneBundle("BUNNY", 0.03f);
    EXPECT_EQ(&a, &b); // same object
    const SceneBundle &c = getSceneBundle("BUNNY", 0.06f);
    EXPECT_NE(&a, &c);
    EXPECT_GT(c.scene.triangles.size(), a.scene.triangles.size());
    EXPECT_EQ(a.bvhStats.triCount, a.scene.triangles.size());
}

TEST(RunScene, ProducesStats)
{
    HarnessOptions opt;
    opt.resolution = 16;
    opt.sceneScale = 0.03f;
    GpuConfig cfg = opt.apply(GpuConfig{});
    cfg.numSms = 2;
    cfg.mem.numL1s = 2;
    RunStats rs = runScene("BUNNY", cfg, opt);
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_EQ(rs.framebuffer.size(), 256u);
}

TEST(ParallelForScenes, VisitsAllInOrderedSlots)
{
    HarnessOptions opt;
    opt.scenes = {"A", "B", "C", "D"};
    opt.threads = 2;
    std::vector<std::string> got(4);
    parallelForScenes(opt, [&](size_t i, const std::string &n) {
        got[i] = n;
    });
    EXPECT_EQ(got, opt.scenes);
}

TEST(ParallelForScenes, PropagatesExceptions)
{
    HarnessOptions opt;
    opt.scenes = {"A", "B"};
    opt.threads = 2;
    EXPECT_THROW(
        parallelForScenes(opt,
                          [&](size_t, const std::string &n) {
                              if (n == "B")
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(WriteCsv, CreatesFile)
{
    HarnessOptions opt;
    opt.resultsDir =
        (std::filesystem::temp_directory_path() / "trt_test_results")
            .string();
    Table t({"a"});
    t.row().cell("1");
    writeCsv(opt, t, "unit.csv");
    std::ifstream in(std::filesystem::path(opt.resultsDir) / "unit.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a");
    std::filesystem::remove_all(opt.resultsDir);
}

} // anonymous namespace
} // namespace trt
