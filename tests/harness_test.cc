/**
 * @file
 * Tests for the experiment harness: environment parsing, scene-bundle
 * caching, parallel execution and CSV output.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"
#include "util/env.hh"
#include "harness/run_cache.hh"

namespace trt
{
namespace
{

/** RAII environment variable setter. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            old_ = old;
        had_ = old != nullptr;
        setenv(name, value, 1);
    }

    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_;
};

TEST(HarnessOptions, Defaults)
{
    unsetenv("TRT_RES");
    unsetenv("TRT_SCALE");
    unsetenv("TRT_SCENES");
    unsetenv("TRT_FAST");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 256u);
    EXPECT_FLOAT_EQ(opt.sceneScale, 1.0f);
    EXPECT_EQ(opt.scenes.size(), 14u);
}

TEST(HarnessOptions, EnvOverrides)
{
    EnvGuard r("TRT_RES", "64");
    EnvGuard s("TRT_SCALE", "0.5");
    EnvGuard sc("TRT_SCENES", "BUNNY,CRNVL");
    EnvGuard th("TRT_THREADS", "3");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 64u);
    EXPECT_FLOAT_EQ(opt.sceneScale, 0.5f);
    ASSERT_EQ(opt.scenes.size(), 2u);
    EXPECT_EQ(opt.scenes[0], "BUNNY");
    EXPECT_EQ(opt.scenes[1], "CRNVL");
    EXPECT_EQ(opt.threads, 3u);
}

TEST(HarnessOptions, FastMode)
{
    EnvGuard f("TRT_FAST", "1");
    EnvGuard r("TRT_RES", ""); // empty -> atof 0 -> keeps fast default?
    unsetenv("TRT_RES");
    unsetenv("TRT_SCALE");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 64u);
    EXPECT_LT(opt.sceneScale, 0.5f);
}

/** TRT_FAST only lowers the *defaults*: an explicit TRT_SCALE (or
 *  TRT_RES) wins over the smoke-mode values regardless of the order
 *  the knobs are read (precedence note in harness.hh). */
TEST(HarnessOptions, ExplicitScaleWinsOverFastMode)
{
    EnvGuard f("TRT_FAST", "1");
    EnvGuard s("TRT_SCALE", "0.5");
    unsetenv("TRT_RES");
    HarnessOptions opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 64u); // fast default still applies
    EXPECT_FLOAT_EQ(opt.sceneScale, 0.5f);

    EnvGuard r("TRT_RES", "512");
    opt = HarnessOptions::fromEnv();
    EXPECT_EQ(opt.resolution, 512u);
    EXPECT_FLOAT_EQ(opt.sceneScale, 0.5f);
}

// ---- strict environment-knob parsing (util/env.hh) -----------------

TEST(EnvKnobs, MalformedIntegerIsAHardError)
{
    EnvGuard r("TRT_RES", "abc");
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(EnvKnobs, TrailingGarbageIsAHardError)
{
    EnvGuard r("TRT_RES", "64junk");
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(EnvKnobs, NegativeUnsignedKnobIsAHardError)
{
    EnvGuard t("TRT_THREADS", "-2");
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(EnvKnobs, MalformedFloatIsAHardError)
{
    EnvGuard sc("TRT_SCALE", "0.5x");
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(EnvKnobs, MalformedFlagIsAHardError)
{
    EnvGuard f("TRT_FAST", "maybe");
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(EnvKnobs, ErrorNamesKnobAndOffendingValue)
{
    EnvGuard r("TRT_RES", "12junk");
    try {
        HarnessOptions::fromEnv();
        FAIL() << "expected EnvError";
    } catch (const EnvError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("TRT_RES"), std::string::npos) << msg;
        EXPECT_NE(msg.find("12junk"), std::string::npos) << msg;
    }
}

TEST(EnvKnobs, FlagSpellings)
{
    for (const char *v : {"1", "true", "on", "yes"}) {
        EnvGuard f("TRT_FAST", v);
        EXPECT_TRUE(envFlag("TRT_FAST", false)) << v;
    }
    for (const char *v : {"0", "false", "off", "no"}) {
        EnvGuard f("TRT_FAST", v);
        EXPECT_FALSE(envFlag("TRT_FAST", true)) << v;
    }
}

TEST(EnvKnobs, RangeViolationIsAHardError)
{
    EnvGuard r("TRT_RES", "100000"); // above the 1<<16 cap
    EXPECT_THROW(HarnessOptions::fromEnv(), EnvError);
}

TEST(HarnessOptions, ApplySetsResolution)
{
    HarnessOptions opt;
    opt.resolution = 48;
    GpuConfig cfg = opt.apply(GpuConfig{});
    EXPECT_EQ(cfg.imageWidth, 48u);
    EXPECT_EQ(cfg.imageHeight, 48u);
}

TEST(SceneBundle, CachedByNameAndScale)
{
    const SceneBundle &a = getSceneBundle("BUNNY", 0.03f);
    const SceneBundle &b = getSceneBundle("BUNNY", 0.03f);
    EXPECT_EQ(&a, &b); // same object
    const SceneBundle &c = getSceneBundle("BUNNY", 0.06f);
    EXPECT_NE(&a, &c);
    EXPECT_GT(c.scene.triangles.size(), a.scene.triangles.size());
    EXPECT_EQ(a.bvhStats.triCount, a.scene.triangles.size());
}

TEST(RunScene, ProducesStats)
{
    HarnessOptions opt;
    opt.resolution = 16;
    opt.sceneScale = 0.03f;
    GpuConfig cfg = opt.apply(GpuConfig{});
    cfg.numSms = 2;
    cfg.mem.numL1s = 2;
    RunStats rs = runScene("BUNNY", cfg, opt);
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_EQ(rs.framebuffer.size(), 256u);
}

TEST(ParallelForScenes, VisitsAllInOrderedSlots)
{
    HarnessOptions opt;
    opt.scenes = {"A", "B", "C", "D"};
    opt.threads = 2;
    std::vector<std::string> got(4);
    parallelForScenes(opt, [&](size_t i, const std::string &n) {
        got[i] = n;
    });
    EXPECT_EQ(got, opt.scenes);
}

TEST(ParallelForScenes, PropagatesExceptions)
{
    HarnessOptions opt;
    opt.scenes = {"A", "B"};
    opt.threads = 2;
    EXPECT_THROW(
        parallelForScenes(opt,
                          [&](size_t, const std::string &n) {
                              if (n == "B")
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(WriteCsv, CreatesFile)
{
    HarnessOptions opt;
    opt.resultsDir =
        (std::filesystem::temp_directory_path() / "trt_test_results")
            .string();
    Table t({"a"});
    t.row().cell("1");
    writeCsv(opt, t, "unit.csv");
    std::ifstream in(std::filesystem::path(opt.resultsDir) / "unit.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a");
    std::filesystem::remove_all(opt.resultsDir);
}

RunStats
syntheticStats()
{
    RunStats st;
    st.cycles = 123456789ull;
    st.framebuffer = {{0.1f, 0.2f, 0.3f}, {1.0f, 0.0f, 0.5f}};
    st.rt.activeLaneCycles = 11;
    st.rt.slotLaneCycles = 22;
    st.rt.modeCycles[0] = 33;
    st.rt.isectTests[1] = 44;
    st.rt.nodeVisits = 55;
    st.rt.countTableHighWater = 66;
    st.rt.prefetchIssues = 77;
    st.mem[0].l1Accesses = 88;
    st.mem[1].dramReadBytes = 99;
    st.bvhL1MissRate = 0.125;
    st.bvhMissSeries = {0.5, 0.25, 0.125};
    st.aluLaneInstrs = 101;
    st.raysTraced = 102;
    st.ctasLaunched = 103;
    st.ctaSaves = 104;
    st.ctaRestores = 105;
    st.ctaStateBytes = 106;
    st.primaryHits.resize(3);
    st.primaryHits[1].t = 1.5f;
    st.primaryHits[1].triIndex = 42;
    return st;
}

void
expectStatsEqual(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(a.framebuffer.size(), b.framebuffer.size());
    for (size_t i = 0; i < a.framebuffer.size(); i++)
        EXPECT_TRUE(a.framebuffer[i] == b.framebuffer[i]) << i;
    EXPECT_EQ(a.rt.activeLaneCycles, b.rt.activeLaneCycles);
    EXPECT_EQ(a.rt.slotLaneCycles, b.rt.slotLaneCycles);
    EXPECT_EQ(a.rt.modeCycles, b.rt.modeCycles);
    EXPECT_EQ(a.rt.isectTests, b.rt.isectTests);
    EXPECT_EQ(a.rt.nodeVisits, b.rt.nodeVisits);
    EXPECT_EQ(a.rt.countTableHighWater, b.rt.countTableHighWater);
    EXPECT_EQ(a.rt.prefetchIssues, b.rt.prefetchIssues);
    for (size_t c = 0; c < a.mem.size(); c++) {
        EXPECT_EQ(a.mem[c].l1Accesses, b.mem[c].l1Accesses) << c;
        EXPECT_EQ(a.mem[c].l1Misses, b.mem[c].l1Misses) << c;
        EXPECT_EQ(a.mem[c].dramReadBytes, b.mem[c].dramReadBytes) << c;
    }
    EXPECT_EQ(a.bvhL1MissRate, b.bvhL1MissRate);
    EXPECT_EQ(a.bvhMissSeries, b.bvhMissSeries);
    EXPECT_EQ(a.aluLaneInstrs, b.aluLaneInstrs);
    EXPECT_EQ(a.raysTraced, b.raysTraced);
    EXPECT_EQ(a.ctasLaunched, b.ctasLaunched);
    EXPECT_EQ(a.ctaSaves, b.ctaSaves);
    EXPECT_EQ(a.ctaRestores, b.ctaRestores);
    EXPECT_EQ(a.ctaStateBytes, b.ctaStateBytes);
    ASSERT_EQ(a.primaryHits.size(), b.primaryHits.size());
    for (size_t i = 0; i < a.primaryHits.size(); i++) {
        EXPECT_EQ(a.primaryHits[i].t, b.primaryHits[i].t) << i;
        EXPECT_EQ(a.primaryHits[i].triIndex, b.primaryHits[i].triIndex)
            << i;
    }
}

TEST(RunStatsIo, RoundTripExact)
{
    RunStats st = syntheticStats();
    std::stringstream ss;
    RunStatsIo::save(ss, st);
    RunStats back;
    ASSERT_TRUE(RunStatsIo::load(ss, back));
    expectStatsEqual(st, back);
}

TEST(RunStatsIo, RejectsBadMagicVersionAndTruncation)
{
    RunStats st = syntheticStats();
    std::stringstream ss;
    RunStatsIo::save(ss, st);
    std::string blob = ss.str();

    RunStats back;
    {
        std::string bad = blob;
        bad[0] ^= 0xff; // magic
        std::istringstream is(bad);
        EXPECT_FALSE(RunStatsIo::load(is, back));
    }
    {
        std::string bad = blob;
        bad[4] ^= 0xff; // version
        std::istringstream is(bad);
        EXPECT_FALSE(RunStatsIo::load(is, back));
    }
    {
        std::istringstream is(blob.substr(0, blob.size() / 2));
        EXPECT_FALSE(RunStatsIo::load(is, back));
    }
    {
        std::istringstream is(blob + "x"); // trailing garbage
        EXPECT_FALSE(RunStatsIo::load(is, back));
    }
}

TEST(RunCache, FingerprintSensitivity)
{
    GpuConfig cfg;
    uint64_t fp = runFingerprint(cfg, "BUNNY", 1.0f);
    EXPECT_EQ(fp, runFingerprint(cfg, "BUNNY", 1.0f));
    EXPECT_NE(fp, runFingerprint(cfg, "CRNVL", 1.0f));
    EXPECT_NE(fp, runFingerprint(cfg, "BUNNY", 0.5f));

    GpuConfig bounces = cfg;
    bounces.maxBounces++;
    EXPECT_NE(fp, runFingerprint(bounces, "BUNNY", 1.0f));
    GpuConfig res = cfg;
    res.imageWidth = 128;
    EXPECT_NE(fp, runFingerprint(res, "BUNNY", 1.0f));
    GpuConfig arch = GpuConfig::virtualizedTreeletQueues();
    EXPECT_NE(fp, runFingerprint(arch, "BUNNY", 1.0f));
}

/** Fixture giving each test a private cache root. */
class RunCacheOnDisk : public ::testing::Test
{
  protected:
    RunCacheOnDisk()
        : dir_((std::filesystem::temp_directory_path() /
                "trt_run_cache_test")
                   .string()),
          cache_("TRT_CACHE", dir_.c_str())
    {
        std::filesystem::remove_all(dir_);
        resetHarnessTiming();
    }

    ~RunCacheOnDisk() override
    {
        std::filesystem::remove_all(dir_);
        resetHarnessTiming();
    }

    std::string dir_;
    EnvGuard cache_;
};

TEST_F(RunCacheOnDisk, StoreThenLoadRoundTrips)
{
    RunStats st = syntheticStats();
    uint64_t fp = runFingerprint(GpuConfig{}, "BUNNY", 0.03f);
    storeCachedRun(fp, "BUNNY", st);

    RunStats back;
    ASSERT_TRUE(loadCachedRun(fp, "BUNNY", back));
    expectStatsEqual(st, back);
    EXPECT_EQ(harnessTiming().runCacheHits, 1u);

    // A different fingerprint (changed config) must miss.
    GpuConfig other;
    other.maxBounces++;
    RunStats none;
    EXPECT_FALSE(
        loadCachedRun(runFingerprint(other, "BUNNY", 0.03f), "BUNNY",
                      none));
    EXPECT_EQ(harnessTiming().runCacheMisses, 1u);
}

TEST_F(RunCacheOnDisk, SecondRunSceneIsServedFromCache)
{
    HarnessOptions opt;
    opt.resolution = 16;
    opt.sceneScale = 0.03f;
    GpuConfig cfg = opt.apply(GpuConfig{});
    cfg.numSms = 2;
    cfg.mem.numL1s = 2;

    RunStats first = runScene("BUNNY", cfg, opt);
    EXPECT_EQ(harnessTiming().runCacheHits, 0u);
    EXPECT_EQ(harnessTiming().runCacheMisses, 1u);

    RunStats second = runScene("BUNNY", cfg, opt);
    EXPECT_EQ(harnessTiming().runCacheHits, 1u);
    EXPECT_EQ(harnessTiming().runCacheMisses, 1u);
    expectStatsEqual(first, second);

    // Any config change invalidates (different fingerprint -> miss).
    GpuConfig changed = cfg;
    changed.queueThreshold++;
    runScene("BUNNY", changed, opt);
    EXPECT_EQ(harnessTiming().runCacheMisses, 2u);
}

TEST_F(RunCacheOnDisk, SizeCapPrunesLruBlobs)
{
    // ~0.7 MB serialized per blob.
    RunStats big;
    big.cycles = 1;
    big.framebuffer.assign(60000, Vec3{1, 2, 3});

    uint64_t fp1 = runFingerprint(GpuConfig{}, "AAA", 1.0f);
    uint64_t fp2 = runFingerprint(GpuConfig{}, "BBB", 1.0f);
    uint64_t fp3 = runFingerprint(GpuConfig{}, "CCC", 1.0f);
    {
        EnvGuard nocap("TRT_RUN_CACHE_MAX_MB", "0"); // no pruning yet
        storeCachedRun(fp1, "AAA", big);
        storeCachedRun(fp2, "BBB", big);
        storeCachedRun(fp3, "CCC", big);
    }

    // Age the blobs explicitly (mtime is the LRU signal): AAA oldest.
    auto runs = std::filesystem::path(dir_) / "runs";
    auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &de : std::filesystem::directory_iterator(runs)) {
        std::string name = de.path().filename().string();
        int age_min = name.rfind("AAA", 0) == 0   ? 3
                      : name.rfind("BBB", 0) == 0 ? 2
                                                  : 1;
        std::filesystem::last_write_time(
            de.path(), now - std::chrono::minutes(age_min));
    }

    // A store under a 1 MB cap prunes the two oldest blobs.
    EnvGuard cap("TRT_RUN_CACHE_MAX_MB", "1");
    RunStats small;
    small.cycles = 2;
    storeCachedRun(runFingerprint(GpuConfig{}, "DDD", 1.0f), "DDD",
                   small);

    RunStats back;
    EXPECT_FALSE(loadCachedRun(fp1, "AAA", back));
    EXPECT_FALSE(loadCachedRun(fp2, "BBB", back));
    EXPECT_TRUE(loadCachedRun(fp3, "CCC", back));
    EXPECT_EQ(harnessTiming().runCachePrunedBlobs, 2u);
    EXPECT_GT(harnessTiming().runCachePrunedBytes, 1024u * 1024u);
}

TEST_F(RunCacheOnDisk, EscapeHatchDisablesCache)
{
    EnvGuard off("TRT_RUN_CACHE", "0");
    EXPECT_FALSE(runCacheEnabled());

    HarnessOptions opt;
    opt.resolution = 16;
    opt.sceneScale = 0.03f;
    GpuConfig cfg = opt.apply(GpuConfig{});
    cfg.numSms = 2;
    cfg.mem.numL1s = 2;

    runScene("BUNNY", cfg, opt);
    runScene("BUNNY", cfg, opt);
    EXPECT_EQ(harnessTiming().runCacheHits, 0u);
    EXPECT_EQ(harnessTiming().runCacheMisses, 0u);
    EXPECT_FALSE(
        std::filesystem::exists(std::filesystem::path(dir_) / "runs"));
}

} // anonymous namespace
} // namespace trt
