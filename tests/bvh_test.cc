/**
 * @file
 * Tests for BVH construction: structural invariants (every triangle
 * referenced exactly once, child bounds contained, depth sane),
 * functional correctness against brute force, treelet partition
 * invariants (byte cap, connectivity, full cover, contiguous layout),
 * and the memory layout.
 */

#include <set>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "bvh/bvh.hh"
#include "bvh/io.hh"
#include "geom/rng.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

std::vector<Triangle>
randomTriangles(uint32_t n, uint64_t seed)
{
    Pcg32 rng(seed);
    std::vector<Triangle> tris;
    tris.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
        Vec3 c{rng.nextRange(-10, 10), rng.nextRange(-10, 10),
               rng.nextRange(-10, 10)};
        Triangle t;
        t.v0 = c;
        t.v1 = c + Vec3{rng.nextRange(0.05f, 0.5f), 0, 0};
        t.v2 = c + Vec3{0, rng.nextRange(0.05f, 0.5f),
                        rng.nextRange(-0.2f, 0.2f)};
        t.material = i % 3;
        tris.push_back(t);
    }
    return tris;
}

HitRecord
bruteForce(const std::vector<Triangle> &tris, const Ray &ray)
{
    HitRecord best;
    Ray r = ray;
    for (uint32_t i = 0; i < tris.size(); i++) {
        float t, u, v;
        if (intersectTriangle(r, tris[i], t, u, v)) {
            best.t = t;
            best.u = u;
            best.v = v;
            best.triIndex = i;
            r.tmax = t;
        }
    }
    return best;
}

TEST(BvhBuild, EmptyScene)
{
    Bvh bvh = Bvh::build({});
    EXPECT_EQ(bvh.triangles().size(), 0u);
    EXPECT_GE(bvh.nodes().size(), 1u);
    Ray r({0, 0, -5}, {0, 0, 1});
    EXPECT_FALSE(bvh.intersectClosest(r).hit());
}

TEST(BvhBuild, SingleTriangle)
{
    std::vector<Triangle> tris = {{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0}};
    Bvh bvh = Bvh::build(tris);
    EXPECT_EQ(bvh.triangles().size(), 1u);
    Ray r({0, 0, -5}, {0, 0, 1});
    HitRecord h = bvh.intersectClosest(r);
    ASSERT_TRUE(h.hit());
    EXPECT_NEAR(h.t, 5.0f, 1e-4f);
}

TEST(BvhBuild, EveryTriangleReferencedExactlyOnce)
{
    auto tris = randomTriangles(500, 42);
    Bvh bvh = Bvh::build(tris);

    std::vector<int> refs(tris.size(), 0);
    for (const auto &n : bvh.nodes()) {
        for (const auto &c : n.child) {
            if (c.kind != WideChild::Leaf)
                continue;
            for (uint32_t k = 0; k < c.count; k++)
                refs[bvh.originalTriIndex(c.index + k)]++;
        }
    }
    for (size_t i = 0; i < refs.size(); i++)
        EXPECT_EQ(refs[i], 1) << "triangle " << i;
}

TEST(BvhBuild, ChildBoundsContainGeometry)
{
    auto tris = randomTriangles(300, 7);
    Bvh bvh = Bvh::build(tris);

    // Leaf child bounds must contain their triangles; internal child
    // bounds must contain the union of the child node's own children.
    for (const auto &n : bvh.nodes()) {
        for (const auto &c : n.child) {
            if (c.kind == WideChild::Leaf) {
                Aabb geo;
                for (uint32_t k = 0; k < c.count; k++)
                    geo.grow(bvh.triangles()[c.index + k].bounds());
                // Allow epsilon slack for float round-trips.
                Aabb grown = c.bounds;
                grown.lo -= Vec3{1e-4f, 1e-4f, 1e-4f};
                grown.hi += Vec3{1e-4f, 1e-4f, 1e-4f};
                EXPECT_TRUE(grown.contains(geo));
            } else if (c.kind == WideChild::Internal) {
                Aabb sub;
                for (const auto &gc : bvh.nodes()[c.index].child)
                    if (gc.kind != WideChild::Invalid)
                        sub.grow(gc.bounds);
                Aabb grown = c.bounds;
                grown.lo -= Vec3{1e-4f, 1e-4f, 1e-4f};
                grown.hi += Vec3{1e-4f, 1e-4f, 1e-4f};
                EXPECT_TRUE(grown.contains(sub));
            }
        }
    }
}

TEST(BvhBuild, LeafSizeRespected)
{
    BvhConfig cfg;
    cfg.maxLeafTris = 3;
    auto tris = randomTriangles(400, 13);
    Bvh bvh = Bvh::build(tris, cfg);
    for (const auto &n : bvh.nodes())
        for (const auto &c : n.child)
            if (c.kind == WideChild::Leaf)
                EXPECT_LE(c.count, 3u);
}

TEST(BvhBuild, WideNodesHaveAtMostFourChildren)
{
    auto tris = randomTriangles(600, 99);
    Bvh bvh = Bvh::build(tris);
    uint64_t total_children = 0;
    for (const auto &n : bvh.nodes()) {
        EXPECT_LE(n.childCount(), kBvhWidth);
        total_children += uint32_t(n.childCount());
    }
    // A healthy collapse averages close to 4 children per node.
    EXPECT_GT(double(total_children) / double(bvh.nodes().size()), 2.5);
}

TEST(BvhBuild, DegenerateIdenticalCentroids)
{
    // 100 triangles stacked at the same place: the builder must still
    // terminate and produce valid leaves (median fallback).
    std::vector<Triangle> tris(
        100, Triangle{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0});
    Bvh bvh = Bvh::build(tris);
    EXPECT_EQ(bvh.triangles().size(), 100u);
    Ray r({0.2f, 0.2f, -5}, {0, 0, 1});
    EXPECT_TRUE(bvh.intersectClosest(r).hit());
}

class TraversalCorrectness
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>>
{
};

TEST_P(TraversalCorrectness, MatchesBruteForce)
{
    auto [count, seed] = GetParam();
    auto tris = randomTriangles(count, seed);
    Bvh bvh = Bvh::build(tris);

    Pcg32 rng(seed ^ 0xabcdef);
    for (int i = 0; i < 200; i++) {
        Ray r({rng.nextRange(-12, 12), rng.nextRange(-12, 12),
               rng.nextRange(-12, 12)},
              normalize(Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                             rng.nextRange(-1, 1)}));
        HitRecord a = bvh.intersectClosest(r);
        HitRecord b = bruteForce(tris, r);
        ASSERT_EQ(a.hit(), b.hit()) << "ray " << i;
        if (a.hit()) {
            ASSERT_FLOAT_EQ(a.t, b.t) << "ray " << i;
            ASSERT_EQ(bvh.originalTriIndex(a.triIndex), b.triIndex)
                << "ray " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TraversalCorrectness,
    ::testing::Values(std::make_tuple(1u, 1ull), std::make_tuple(5u, 2ull),
                      std::make_tuple(33u, 3ull),
                      std::make_tuple(200u, 4ull),
                      std::make_tuple(1000u, 5ull)));

TEST(Treelets, ByteCapRespected)
{
    auto tris = randomTriangles(2000, 21);
    BvhConfig cfg;
    cfg.treeletMaxBytes = 1024;
    Bvh bvh = Bvh::build(tris, cfg);

    for (uint32_t t = 0; t < bvh.treeletCount(); t++) {
        // A treelet may exceed the cap only if it is a single node
        // whose own footprint is larger than the cap.
        if (bvh.treeletNodeCount(t) > 1)
            EXPECT_LE(bvh.treeletBytes(t), cfg.treeletMaxBytes)
                << "treelet " << t;
    }
}

TEST(Treelets, EveryNodeAssigned)
{
    auto tris = randomTriangles(1500, 33);
    Bvh bvh = Bvh::build(tris);
    std::vector<uint32_t> counts(bvh.treeletCount(), 0);
    for (uint32_t n = 0; n < bvh.nodes().size(); n++) {
        uint32_t t = bvh.treeletOf(n);
        ASSERT_LT(t, bvh.treeletCount());
        counts[t]++;
    }
    uint64_t sum = 0;
    for (uint32_t t = 0; t < bvh.treeletCount(); t++) {
        EXPECT_EQ(counts[t], bvh.treeletNodeCount(t));
        sum += counts[t];
    }
    EXPECT_EQ(sum, bvh.nodes().size());
}

TEST(Treelets, Connectivity)
{
    // Within a treelet, every node except one entry point has its
    // parent in the same treelet.
    auto tris = randomTriangles(1500, 55);
    BvhConfig cfg;
    cfg.treeletMaxBytes = 2048;
    Bvh bvh = Bvh::build(tris, cfg);

    std::vector<uint32_t> parent(bvh.nodes().size(), kInvalidNode);
    for (uint32_t n = 0; n < bvh.nodes().size(); n++)
        for (const auto &c : bvh.nodes()[n].child)
            if (c.kind == WideChild::Internal)
                parent[c.index] = n;

    std::vector<uint32_t> entries(bvh.treeletCount(), 0);
    for (uint32_t n = 0; n < bvh.nodes().size(); n++) {
        uint32_t t = bvh.treeletOf(n);
        bool entry = parent[n] == kInvalidNode ||
                     bvh.treeletOf(parent[n]) != t;
        entries[t] += entry ? 1 : 0;
    }
    for (uint32_t t = 0; t < bvh.treeletCount(); t++)
        EXPECT_EQ(entries[t], 1u) << "treelet " << t;
}

TEST(Treelets, ContiguousLayout)
{
    auto tris = randomTriangles(1200, 77);
    Bvh bvh = Bvh::build(tris);

    for (uint32_t t = 0; t < bvh.treeletCount(); t++) {
        uint64_t base = bvh.treeletBaseAddr(t);
        uint64_t end = base + bvh.treeletBytes(t);
        // Treelets tile the address space in order.
        if (t + 1 < bvh.treeletCount())
            EXPECT_EQ(end, bvh.treeletBaseAddr(t + 1));
    }
    // Every node's address lies inside its treelet's range.
    for (uint32_t n = 0; n < bvh.nodes().size(); n++) {
        uint32_t t = bvh.treeletOf(n);
        EXPECT_GE(bvh.nodeAddr(n), bvh.treeletBaseAddr(t));
        EXPECT_LT(bvh.nodeAddr(n) + kNodeBytes,
                  bvh.treeletBaseAddr(t) + bvh.treeletBytes(t) + 1);
    }
}

TEST(Treelets, LeafBlocksInOwnersTreelet)
{
    auto tris = randomTriangles(900, 88);
    Bvh bvh = Bvh::build(tris);
    for (uint32_t n = 0; n < bvh.nodes().size(); n++) {
        uint32_t t = bvh.treeletOf(n);
        for (const auto &c : bvh.nodes()[n].child) {
            if (c.kind != WideChild::Leaf)
                continue;
            uint64_t addr = bvh.triBlockAddr(c.index);
            EXPECT_GE(addr, bvh.treeletBaseAddr(t));
            EXPECT_LE(addr + uint64_t(c.count) * kTriBytes,
                      bvh.treeletBaseAddr(t) + bvh.treeletBytes(t));
        }
    }
}

TEST(Layout, AddressesUniqueAndSized)
{
    auto tris = randomTriangles(800, 111);
    Bvh bvh = Bvh::build(tris);

    // Node addresses are unique and non-overlapping. (They are byte-
    // granular, not 64B-aligned: triangle blocks are interleaved
    // between treelets.)
    std::set<uint64_t> addrs;
    for (uint32_t n = 0; n < bvh.nodes().size(); n++)
        EXPECT_TRUE(addrs.insert(bvh.nodeAddr(n)).second);
    uint64_t expected =
        uint64_t(bvh.nodes().size()) * kNodeBytes +
        uint64_t(bvh.triangles().size()) * kTriBytes;
    EXPECT_EQ(bvh.totalBytes(), expected);
}

TEST(Stats, Consistency)
{
    auto tris = randomTriangles(700, 123);
    Bvh bvh = Bvh::build(tris);
    BvhStats st = bvh.stats();
    EXPECT_EQ(st.triCount, 700u);
    EXPECT_EQ(st.nodeCount, uint32_t(bvh.nodes().size()));
    EXPECT_EQ(st.treeletCount, bvh.treeletCount());
    EXPECT_GT(st.maxDepth, 2u);
    EXPECT_GT(st.avgLeafTris, 0.0);
    EXPECT_LE(st.avgLeafTris, double(BvhConfig{}.maxLeafTris));
    EXPECT_GT(st.avgTreeletDepth, 0.9);
    EXPECT_EQ(st.totalBytes, bvh.totalBytes());
}

TEST(CompressedBvh, QuantizedBoundsContainExactOnes)
{
    auto tris = randomTriangles(800, 202);
    Bvh exact = Bvh::build(tris);
    BvhConfig qc;
    qc.quantizedNodes = true;
    Bvh quant = Bvh::build(tris, qc);

    // Same topology: node count and child kinds match; quantized child
    // boxes contain the exact ones.
    ASSERT_EQ(exact.nodes().size(), quant.nodes().size());
    for (size_t n = 0; n < exact.nodes().size(); n++) {
        for (int s = 0; s < kBvhWidth; s++) {
            const WideChild &e = exact.nodes()[n].child[s];
            const WideChild &q = quant.nodes()[n].child[s];
            ASSERT_EQ(e.kind, q.kind);
            if (e.kind == WideChild::Invalid)
                continue;
            EXPECT_TRUE(q.bounds.contains(e.bounds))
                << "node " << n << " slot " << s;
        }
    }
}

TEST(CompressedBvh, HalvesNodeFootprint)
{
    auto tris = randomTriangles(1000, 203);
    Bvh exact = Bvh::build(tris);
    BvhConfig qc;
    qc.quantizedNodes = true;
    Bvh quant = Bvh::build(tris, qc);

    EXPECT_EQ(exact.nodeBytes(), kNodeBytes);
    EXPECT_EQ(quant.nodeBytes(), kCompressedNodeBytes);
    EXPECT_TRUE(quant.quantized());
    EXPECT_LT(quant.totalBytes(), exact.totalBytes());
    // Treelet counts stay in the same regime (the cap is byte-based
    // and leaf triangle blocks dominate treelet footprints, so exact
    // counts may differ slightly in either direction).
    EXPECT_NEAR(double(quant.treeletCount()),
                double(exact.treeletCount()),
                0.15 * double(exact.treeletCount()));
}

TEST(CompressedBvh, ClosestHitsIdentical)
{
    // Conservative quantization may add node visits but can never
    // change the closest hit.
    auto tris = randomTriangles(600, 204);
    Bvh exact = Bvh::build(tris);
    BvhConfig qc;
    qc.quantizedNodes = true;
    Bvh quant = Bvh::build(tris, qc);

    Pcg32 rng(205);
    for (int i = 0; i < 300; i++) {
        Ray r({rng.nextRange(-12, 12), rng.nextRange(-12, 12),
               rng.nextRange(-12, 12)},
              normalize(Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                             rng.nextRange(-1, 1)}));
        HitRecord a = exact.intersectClosest(r);
        HitRecord b = quant.intersectClosest(r);
        ASSERT_EQ(a.hit(), b.hit()) << "ray " << i;
        if (a.hit()) {
            ASSERT_FLOAT_EQ(a.t, b.t);
            ASSERT_EQ(exact.originalTriIndex(a.triIndex),
                      quant.originalTriIndex(b.triIndex));
        }
    }
}

/**
 * Field-wise equality of two built BVHs (node array, triangle order,
 * treelet assignment, byte layout). Field-wise rather than memcmp so
 * uninitialized struct padding can't cause false mismatches.
 */
void
expectBvhIdentical(const Bvh &a, const Bvh &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.nodes().size(), b.nodes().size());
    for (size_t n = 0; n < a.nodes().size(); n++) {
        const WideNode &na = a.nodes()[n];
        const WideNode &nb = b.nodes()[n];
        for (int c = 0; c < kMaxBvhWidth; c++) {
            ASSERT_EQ(na.child[c].kind, nb.child[c].kind)
                << "node " << n << " child " << c;
            ASSERT_EQ(na.child[c].index, nb.child[c].index)
                << "node " << n << " child " << c;
            ASSERT_EQ(na.child[c].count, nb.child[c].count)
                << "node " << n << " child " << c;
            ASSERT_TRUE(na.child[c].bounds.lo == nb.child[c].bounds.lo &&
                        na.child[c].bounds.hi == nb.child[c].bounds.hi)
                << "node " << n << " child " << c << " bounds";
        }
    }

    ASSERT_EQ(a.triangles().size(), b.triangles().size());
    for (uint32_t i = 0; i < a.triangles().size(); i++) {
        ASSERT_EQ(a.originalTriIndex(i), b.originalTriIndex(i))
            << "triangle permutation diverges at " << i;
        ASSERT_EQ(a.triBlockAddr(i), b.triBlockAddr(i)) << "tri addr " << i;
    }

    ASSERT_EQ(a.treeletCount(), b.treeletCount());
    for (uint32_t n = 0; n < a.nodes().size(); n++) {
        ASSERT_EQ(a.treeletOf(n), b.treeletOf(n)) << "node " << n;
        ASSERT_EQ(a.nodeAddr(n), b.nodeAddr(n)) << "node " << n;
    }
    for (uint32_t t = 0; t < a.treeletCount(); t++) {
        ASSERT_EQ(a.treeletNodeCount(t), b.treeletNodeCount(t)) << "tl " << t;
        ASSERT_EQ(a.treeletBytes(t), b.treeletBytes(t)) << "tl " << t;
        ASSERT_EQ(a.treeletBaseAddr(t), b.treeletBaseAddr(t)) << "tl " << t;
        ASSERT_FLOAT_EQ(a.treeletAvgDepth(t), b.treeletAvgDepth(t))
            << "tl " << t;
    }
    ASSERT_EQ(a.totalBytes(), b.totalBytes());
    ASSERT_EQ(a.nodeBytes(), b.nodeBytes());
    ASSERT_TRUE(a.rootBounds().lo == b.rootBounds().lo &&
                a.rootBounds().hi == b.rootBounds().hi);
}

TEST(ParallelBuild, BitIdenticalToSerialOnRegistryScenes)
{
    // ISSUE acceptance: parallel build (8 threads) must be bit-identical
    // to the serial build — same node order, same treelet ids, same
    // layout — on at least 3 registry scenes.
    for (const char *name : {"BUNNY", "CRNVL", "PARTY"}) {
        Scene s = buildScene(name, 0.25f);
        // Ensure the scene is large enough to engage the parallel path.
        ASSERT_GT(s.triangles.size(), 4096u) << name;
        BvhConfig serial;
        serial.buildThreads = 1;
        BvhConfig parallel;
        parallel.buildThreads = 8;
        Bvh a = Bvh::build(s.triangles, serial);
        Bvh b = Bvh::build(s.triangles, parallel);
        SCOPED_TRACE(name);
        expectBvhIdentical(a, b);
    }
}

TEST(ParallelBuild, BitIdenticalAcrossThreadCounts)
{
    std::vector<Triangle> tris = randomTriangles(20000, 99);
    BvhConfig serial;
    serial.buildThreads = 1;
    Bvh ref = Bvh::build(tris, serial);
    for (uint32_t threads : {2u, 3u, 8u, 16u}) {
        BvhConfig cfg;
        cfg.buildThreads = threads;
        Bvh par = Bvh::build(tris, cfg);
        SCOPED_TRACE(threads);
        expectBvhIdentical(ref, par);
    }
}

TEST(ParallelBuild, BitIdenticalWithQuantizedNodes)
{
    std::vector<Triangle> tris = randomTriangles(16000, 7);
    BvhConfig serial;
    serial.buildThreads = 1;
    serial.quantizedNodes = true;
    BvhConfig parallel = serial;
    parallel.buildThreads = 8;
    expectBvhIdentical(Bvh::build(tris, serial), Bvh::build(tris, parallel));
}

TEST(ParallelBuild, SmallInputsUseAnyThreadCount)
{
    // Tiny scenes fall back to the serial path regardless of the knob;
    // the result must still be well-formed and identical.
    std::vector<Triangle> tris = randomTriangles(37, 3);
    BvhConfig serial;
    serial.buildThreads = 1;
    BvhConfig parallel;
    parallel.buildThreads = 8;
    expectBvhIdentical(Bvh::build(tris, serial), Bvh::build(tris, parallel));
}

TEST(BvhConfigFingerprint, SensitiveToBuildParamsNotThreads)
{
    BvhConfig base;
    uint64_t fp = base.fingerprint();

    BvhConfig threads = base;
    threads.buildThreads = 8;
    EXPECT_EQ(fp, threads.fingerprint())
        << "buildThreads must not affect the fingerprint";

    BvhConfig leaf = base;
    leaf.maxLeafTris = 4;
    EXPECT_NE(fp, leaf.fingerprint());

    BvhConfig cap = base;
    cap.treeletMaxBytes = 16 * 1024;
    EXPECT_NE(fp, cap.fingerprint());

    BvhConfig quant = base;
    quant.quantizedNodes = true;
    EXPECT_NE(fp, quant.fingerprint());
}

TEST(Stats, SahQualitySane)
{
    // The SAH build should visit far fewer nodes than a degenerate
    // chain would: probe average traversal depth via closest hit.
    Scene s = buildScene("BUNNY", 0.05f);
    Bvh bvh = Bvh::build(s.triangles);
    BvhStats st = bvh.stats();
    double log4 = std::log(double(st.triCount)) / std::log(4.0);
    EXPECT_LT(double(st.maxDepth), 4.0 * log4);
}

BvhConfig
wide8Config()
{
    BvhConfig cfg;
    cfg.width = 8;
    return cfg;
}

TEST(Wide8, LayoutAndFootprint)
{
    auto tris = randomTriangles(1000, 301);
    Bvh four = Bvh::build(tris);
    Bvh eight = Bvh::build(tris, wide8Config());

    EXPECT_EQ(eight.width(), kMaxBvhWidth);
    EXPECT_EQ(eight.nodeBytes(), kCompressedNode8Bytes);
    EXPECT_TRUE(eight.quantized());
    EXPECT_EQ(eight.packedStride(), 2u);
    for (const auto &n : eight.nodes())
        EXPECT_LE(n.childCount(), kMaxBvhWidth);
    // Doubling the arity should remove a large fraction of the
    // internal nodes and shrink the node array's byte footprint even
    // though individual nodes grow from 64B to 80B.
    EXPECT_LT(eight.nodes().size(), four.nodes().size());
    EXPECT_LT(eight.nodes().size() * kCompressedNode8Bytes,
              four.nodes().size() * kNodeBytes);
    EXPECT_LT(eight.totalBytes(), four.totalBytes());
}

TEST(Wide8, EveryTriangleReferencedExactlyOnce)
{
    auto tris = randomTriangles(700, 302);
    Bvh bvh = Bvh::build(tris, wide8Config());
    std::vector<int> refs(tris.size(), 0);
    for (const auto &n : bvh.nodes()) {
        for (const auto &c : n.child) {
            if (c.kind != WideChild::Leaf)
                continue;
            for (uint32_t k = 0; k < c.count; k++)
                refs[bvh.originalTriIndex(c.index + k)]++;
        }
    }
    for (size_t i = 0; i < refs.size(); i++)
        EXPECT_EQ(refs[i], 1) << "triangle " << i;
}

/** Exact AABB of all geometry in the subtree rooted at @p node. */
Aabb
subtreeGeoBounds(const Bvh &bvh, uint32_t node)
{
    Aabb geo;
    for (const auto &c : bvh.nodes()[node].child) {
        if (c.kind == WideChild::Leaf) {
            for (uint32_t k = 0; k < c.count; k++)
                geo.grow(bvh.triangles()[c.index + k].bounds());
        } else if (c.kind == WideChild::Internal) {
            geo.grow(subtreeGeoBounds(bvh, c.index));
        }
    }
    return geo;
}

TEST(Wide8, QuantizedBoundsContainGeometry)
{
    // The dequantized child boxes must conservatively contain the
    // *exact geometry* below them — that is the invariant that makes
    // the compressed layout hit-identical. (Sibling quantized boxes
    // need not nest: a grandchild's own inflated box may poke outside
    // the parent's inflated box without affecting any hit.)
    auto tris = randomTriangles(500, 303);
    Bvh bvh = Bvh::build(tris, wide8Config());
    for (const auto &n : bvh.nodes()) {
        for (const auto &c : n.child) {
            if (c.kind == WideChild::Leaf) {
                Aabb geo;
                for (uint32_t k = 0; k < c.count; k++)
                    geo.grow(bvh.triangles()[c.index + k].bounds());
                EXPECT_TRUE(c.bounds.contains(geo));
            } else if (c.kind == WideChild::Internal) {
                EXPECT_TRUE(
                    c.bounds.contains(subtreeGeoBounds(bvh, c.index)));
            }
        }
    }
}

TEST(Wide8, MatchesBruteForce)
{
    for (uint32_t count : {1u, 7u, 64u, 800u}) {
        auto tris = randomTriangles(count, 304 + count);
        Bvh bvh = Bvh::build(tris, wide8Config());
        Pcg32 rng(count ^ 0x8888);
        for (int i = 0; i < 150; i++) {
            Ray r({rng.nextRange(-12, 12), rng.nextRange(-12, 12),
                   rng.nextRange(-12, 12)},
                  normalize(Vec3{rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1)}));
            HitRecord a = bvh.intersectClosest(r);
            HitRecord b = bruteForce(tris, r);
            ASSERT_EQ(a.hit(), b.hit()) << count << " tris, ray " << i;
            if (a.hit()) {
                ASSERT_FLOAT_EQ(a.t, b.t);
                ASSERT_EQ(bvh.originalTriIndex(a.triIndex), b.triIndex);
            }
        }
    }
}

TEST(Wide8, ClosestHitsIdenticalToWidth4)
{
    // The 8-wide collapse regroups the same binary SAH tree, and the
    // conservative quantization only admits extra node entries — the
    // closest hit must match the 4-wide build exactly.
    auto tris = randomTriangles(900, 305);
    Bvh four = Bvh::build(tris);
    Bvh eight = Bvh::build(tris, wide8Config());
    Pcg32 rng(306);
    for (int i = 0; i < 300; i++) {
        Ray r({rng.nextRange(-12, 12), rng.nextRange(-12, 12),
               rng.nextRange(-12, 12)},
              normalize(Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                             rng.nextRange(-1, 1)}));
        HitRecord a = four.intersectClosest(r);
        HitRecord b = eight.intersectClosest(r);
        ASSERT_EQ(a.hit(), b.hit()) << "ray " << i;
        if (a.hit()) {
            ASSERT_FLOAT_EQ(a.t, b.t);
            ASSERT_EQ(four.originalTriIndex(a.triIndex),
                      eight.originalTriIndex(b.triIndex));
        }
    }
}

TEST(Wide8, TreeletInvariantsHold)
{
    auto tris = randomTriangles(1500, 307);
    BvhConfig cfg = wide8Config();
    cfg.treeletMaxBytes = 2048;
    Bvh bvh = Bvh::build(tris, cfg);
    // Byte cap in *compressed* bytes; every node assigned.
    uint64_t sum = 0;
    for (uint32_t t = 0; t < bvh.treeletCount(); t++) {
        if (bvh.treeletNodeCount(t) > 1)
            EXPECT_LE(bvh.treeletBytes(t), cfg.treeletMaxBytes);
        sum += bvh.treeletNodeCount(t);
    }
    EXPECT_EQ(sum, bvh.nodes().size());
    uint64_t expected =
        uint64_t(bvh.nodes().size()) * kCompressedNode8Bytes +
        uint64_t(bvh.triangles().size()) * kTriBytes;
    EXPECT_EQ(bvh.totalBytes(), expected);
}

class BuilderEdgeCases : public ::testing::TestWithParam<int>
{
protected:
    BvhConfig
    cfg() const
    {
        BvhConfig c;
        c.width = GetParam();
        return c;
    }
};

TEST_P(BuilderEdgeCases, EmptyScene)
{
    Bvh bvh = Bvh::build({}, cfg());
    EXPECT_EQ(bvh.triangles().size(), 0u);
    EXPECT_GE(bvh.nodes().size(), 1u);
    Ray r({0, 0, -5}, {0, 0, 1});
    EXPECT_FALSE(bvh.intersectClosest(r).hit());
}

TEST_P(BuilderEdgeCases, SingleTriangle)
{
    std::vector<Triangle> tris = {{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0}};
    Bvh bvh = Bvh::build(tris, cfg());
    ASSERT_EQ(bvh.triangles().size(), 1u);
    Ray r({0, 0, -5}, {0, 0, 1});
    HitRecord h = bvh.intersectClosest(r);
    ASSERT_TRUE(h.hit());
    EXPECT_NEAR(h.t, 5.0f, 1e-4f);
}

TEST_P(BuilderEdgeCases, AllDegenerateAabbs)
{
    // Point triangles: every primitive AABB has zero extent, so the
    // quantizer sees flat axes everywhere and the splitter has no
    // spatial signal at all. The build must still terminate with
    // every triangle referenced once.
    std::vector<Triangle> tris(
        64, Triangle{{2, 3, 4}, {2, 3, 4}, {2, 3, 4}, 0});
    Bvh bvh = Bvh::build(tris, cfg());
    EXPECT_EQ(bvh.triangles().size(), 64u);
    std::vector<int> refs(tris.size(), 0);
    for (const auto &n : bvh.nodes())
        for (const auto &c : n.child)
            if (c.kind == WideChild::Leaf)
                for (uint32_t k = 0; k < c.count; k++)
                    refs[bvh.originalTriIndex(c.index + k)]++;
    for (size_t i = 0; i < refs.size(); i++)
        EXPECT_EQ(refs[i], 1) << "triangle " << i;
}

TEST_P(BuilderEdgeCases, LeafOnlyTree)
{
    // Fewer triangles than one leaf holds: the whole tree is a single
    // root with one leaf child.
    auto tris = randomTriangles(3, 308);
    Bvh bvh = Bvh::build(tris, cfg());
    EXPECT_EQ(bvh.nodes().size(), 1u);
    Pcg32 rng(309);
    for (int i = 0; i < 50; i++) {
        Ray r({rng.nextRange(-12, 12), rng.nextRange(-12, 12),
               rng.nextRange(-12, 12)},
              normalize(Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                             rng.nextRange(-1, 1)}));
        HitRecord a = bvh.intersectClosest(r);
        HitRecord b = bruteForce(tris, r);
        ASSERT_EQ(a.hit(), b.hit());
        if (a.hit())
            ASSERT_FLOAT_EQ(a.t, b.t);
    }
}

INSTANTIATE_TEST_SUITE_P(BothWidths, BuilderEdgeCases,
                         ::testing::Values(4, 8),
                         [](const auto &info) {
                             return "width" + std::to_string(info.param);
                         });

TEST(ParallelBuild, BitIdenticalAtWidth8)
{
    // The wave-parallel DP collapse must give the same 8-wide tree at
    // any thread count.
    std::vector<Triangle> tris = randomTriangles(20000, 310);
    BvhConfig serial = wide8Config();
    serial.buildThreads = 1;
    Bvh ref = Bvh::build(tris, serial);
    for (uint32_t threads : {2u, 8u, 16u}) {
        BvhConfig cfg = wide8Config();
        cfg.buildThreads = threads;
        SCOPED_TRACE(threads);
        expectBvhIdentical(ref, Bvh::build(tris, cfg));
    }
}

TEST(BvhConfigFingerprint, SensitiveToWidth)
{
    BvhConfig base;
    EXPECT_NE(base.fingerprint(), wide8Config().fingerprint())
        << "width must key the bundle/run caches";
}

class BvhIoRoundTrip : public ::testing::TestWithParam<BvhConfig>
{
};

TEST_P(BvhIoRoundTrip, Identical)
{
    auto tris = randomTriangles(1200, 311);
    Bvh orig = Bvh::build(tris, GetParam());
    std::stringstream ss;
    BvhIo::save(ss, orig);
    Bvh loaded;
    ASSERT_TRUE(BvhIo::load(ss, loaded));
    expectBvhIdentical(orig, loaded);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, BvhIoRoundTrip,
    ::testing::Values(BvhConfig{},
                      [] {
                          BvhConfig c;
                          c.quantizedNodes = true;
                          return c;
                      }(),
                      wide8Config()),
    [](const auto &info) {
        return info.param.width == 8     ? std::string("width8")
               : info.param.quantizedNodes ? std::string("width4_quant")
                                           : std::string("width4");
    });

TEST(BvhIoReject, CorruptedHeader)
{
    auto tris = randomTriangles(100, 312);
    Bvh orig = Bvh::build(tris, wide8Config());
    std::stringstream good;
    BvhIo::save(good, orig);
    const std::string bytes = good.str();

    // Flipping any header field (magic @0, version @4, width @8,
    // nodeBytes @12) must make load() fail before touching the vectors.
    for (size_t off : {size_t(0), size_t(4), size_t(8), size_t(12)}) {
        std::string bad = bytes;
        bad[off] ^= 0x5a;
        std::stringstream ss(bad);
        Bvh out;
        EXPECT_FALSE(BvhIo::load(ss, out)) << "offset " << off;
    }

    // A truncated stream must fail, not produce a partial BVH.
    std::stringstream trunc(bytes.substr(0, bytes.size() / 2));
    Bvh out;
    EXPECT_FALSE(BvhIo::load(trunc, out));

    // Sanity: the untampered bytes still load.
    std::stringstream ok(bytes);
    Bvh fine;
    EXPECT_TRUE(BvhIo::load(ok, fine));
}

} // anonymous namespace
} // namespace trt
