/**
 * @file
 * Tests for the sweep farm (DESIGN.md §13): manifest parsing and
 * expansion, JobSpec serialization and run-cache aliasing, the framed
 * pipe protocol, multi-process run-cache stores, and the end-to-end
 * crash/retry sweep whose results must be bit-identical to serial
 * execution.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "farm/json.hh"
#include "farm/manifest.hh"
#include "farm/protocol.hh"
#include "farm/scheduler.hh"
#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"
#include "harness/run_cache.hh"
#include "util/env.hh"

namespace trt
{
namespace
{

/** RAII environment variable setter. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            old_ = old;
        had_ = old != nullptr;
        setenv(name, value, 1);
    }

    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_;
};

/** Unique temp dir per test, removed on teardown. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            ("trt_farm_" + tag + "_XXXXXX"))
                               .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        path_ = ::mkdtemp(buf.data());
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }
    std::string sub(const std::string &name) const
    {
        return (std::filesystem::path(path_) / name).string();
    }

  private:
    std::string path_;
};

RunStats
syntheticStats(uint64_t seed)
{
    RunStats st;
    st.cycles = 1000 + seed;
    st.raysTraced = 77 * (seed + 1);
    st.aluLaneInstrs = seed * 3;
    st.rt.nodeVisits = seed * 11;
    st.framebuffer.assign(16, Vec3{float(seed), 0.5f, 0.25f});
    return st;
}

// ---- JSON ------------------------------------------------------------

TEST(FarmJson, ParsesScalarsArraysObjects)
{
    JsonValue v = JsonValue::parse(
        "{\"a\": 1, \"b\": [true, \"x\", 2.5], // comment\n"
        " \"c\": {\"d\": null}, # also a comment\n"
        " \"e\": \"esc\\n\\\"q\\\"\",}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->text, "1");
    ASSERT_TRUE(v.find("b")->isArray());
    ASSERT_EQ(v.find("b")->items.size(), 3u);
    EXPECT_TRUE(v.find("b")->items[0].isBool());
    EXPECT_EQ(v.find("b")->items[2].text, "2.5");
    EXPECT_TRUE(v.find("c")->find("d")->isNull());
    EXPECT_EQ(v.find("e")->text, "esc\n\"q\"");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(FarmJson, RejectsGarbage)
{
    EXPECT_THROW(JsonValue::parse("{\"a\": }"), EnvError);
    EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), EnvError);
    EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"), EnvError);
    EXPECT_THROW(JsonValue::parse("[1, 2"), EnvError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), EnvError);
    EXPECT_THROW(JsonValue::parse("01x"), EnvError);
}

// ---- JobSpec ---------------------------------------------------------

TEST(FarmJobSpec, SerializeRoundTrips)
{
    JobSpec spec;
    spec.scene = "CRNVL";
    spec.scale = 0.15f;
    spec.resolution = 128;
    spec.config = "vtq";
    spec.bvhWidth = 8;
    spec.maxBounces = 2;
    spec.sample.enabled = true;
    spec.sample.measureCtas = 4;
    spec.sample.targetIntervals = 6;
    JobSpec back = JobSpec::deserialize(spec.serialize());
    EXPECT_EQ(back.scene, spec.scene);
    EXPECT_EQ(back.scale, spec.scale);
    EXPECT_EQ(back.resolution, spec.resolution);
    EXPECT_EQ(back.config, spec.config);
    EXPECT_EQ(back.bvhWidth, spec.bvhWidth);
    EXPECT_EQ(back.maxBounces, spec.maxBounces);
    EXPECT_EQ(back.sample.enabled, spec.sample.enabled);
    EXPECT_EQ(back.sample.measureCtas, spec.sample.measureCtas);
    EXPECT_EQ(back.sample.targetIntervals, spec.sample.targetIntervals);
    EXPECT_EQ(back.fingerprint(), spec.fingerprint());
}

TEST(FarmJobSpec, StrictParsing)
{
    EXPECT_THROW(JobSpec::deserialize("scene=B\nbogus_key=1\n"),
                 EnvError);
    EXPECT_THROW(JobSpec::deserialize("res=128\n"), EnvError); // no scene
    EXPECT_THROW(JobSpec::deserialize("scene=B\nres=-5\n"), EnvError);
    EXPECT_THROW(JobSpec::deserialize("scene=B\nres=12x\n"), EnvError);
    EXPECT_THROW(JobSpec::deserialize("scene=B\npredict_shared=maybe\n"),
                 EnvError);
}

TEST(FarmJobSpec, MaterializationValidates)
{
    JobSpec spec;
    spec.scene = "BUNNY";
    spec.config = "warp-drive";
    EXPECT_THROW(spec.gpuConfig(), EnvError);
    spec.config = "vtq";
    EXPECT_NO_THROW(spec.gpuConfig());
    spec.bvhWidth = 6;
    EXPECT_THROW(spec.bvhConfig(), EnvError);
}

TEST(FarmJobSpec, NamedConfigsMatchFactories)
{
    JobSpec spec;
    spec.scene = "BUNNY";
    spec.resolution = 64;
    spec.config = "vtq";
    GpuConfig want = GpuConfig::virtualizedTreeletQueues();
    want.imageWidth = want.imageHeight = 64;
    EXPECT_EQ(spec.gpuConfig().fingerprint(), want.fingerprint());

    spec.config = "prefetch";
    GpuConfig pf = GpuConfig::treeletPrefetch();
    pf.imageWidth = pf.imageHeight = 64;
    EXPECT_EQ(spec.gpuConfig().fingerprint(), pf.fingerprint());

    spec.config = "fifo";
    GpuConfig base;
    base.imageWidth = base.imageHeight = 64;
    EXPECT_EQ(spec.gpuConfig().fingerprint(), base.fingerprint());
}

// ---- manifest expansion ----------------------------------------------

constexpr const char *kGridManifest = R"({
  "name": "grid",
  "defaults": {"res": 32, "scale": 0.05},
  "scenes": ["BUNNY", "CRNVL"],
  "configs": ["fifo", "vtq"],
  "grid": {"bvh_width": [4, 8]}
})";

TEST(FarmManifest, ExpandsCrossProductInOrder)
{
    Manifest m = Manifest::parse(kGridManifest);
    EXPECT_EQ(m.name, "grid");
    ASSERT_EQ(m.jobs.size(), 8u); // 2 scenes × 2 configs × 2 widths
    EXPECT_EQ(m.duplicates, 0u);
    // Scenes outermost, grid axis innermost.
    EXPECT_EQ(m.jobs[0].label(), "BUNNY/fifo/r32/x0.0500000007/w4");
    EXPECT_EQ(m.jobs[1].bvhWidth, 8u);
    EXPECT_EQ(m.jobs[2].config, "vtq");
    EXPECT_EQ(m.jobs[4].scene, "CRNVL");
    for (const JobSpec &j : m.jobs) {
        EXPECT_EQ(j.resolution, 32u);
        EXPECT_FLOAT_EQ(j.scale, 0.05f);
    }
}

TEST(FarmManifest, DedupsByFingerprint)
{
    Manifest m = Manifest::parse(R"({
      "scenes": ["BUNNY"],
      "configs": ["fifo", "fifo", "baseline"],
      "jobs": [{"scene": "BUNNY", "config": "fifo"}]
    })");
    // fifo == baseline == the explicit job: one unique simulation.
    EXPECT_EQ(m.jobs.size(), 1u);
    EXPECT_EQ(m.duplicates, 3u);
}

TEST(FarmManifest, RejectsUnknownKeysAndKnobs)
{
    EXPECT_THROW(Manifest::parse(R"({"scenes": ["B"], "shards": 4})"),
                 EnvError);
    EXPECT_THROW(Manifest::parse(
                     R"({"scenes": ["B"], "defaults": {"rez": 128}})"),
                 EnvError);
    EXPECT_THROW(Manifest::parse(
                     R"({"scenes": ["B"], "grid": {"warp_size": [16]}})"),
                 EnvError);
    EXPECT_THROW(Manifest::parse(
                     R"({"scenes": ["B"], "configs": ["warp-drive"]})"),
                 EnvError);
    EXPECT_THROW(Manifest::parse(R"({"jobs": [{"res": 32}]})"),
                 EnvError); // job without scene
    EXPECT_THROW(Manifest::parse(R"({"name": "x"})"),
                 EnvError); // neither scenes nor jobs
}

TEST(FarmManifest, LoadReadsFile)
{
    TempDir dir("manifest");
    std::string path = dir.sub("m.json");
    std::ofstream(path) << kGridManifest;
    EXPECT_EQ(Manifest::load(path).jobs.size(), 8u);
    EXPECT_THROW(Manifest::load(dir.sub("missing.json")), EnvError);
}

// ---- protocol --------------------------------------------------------

TEST(FarmProtocol, FramesRoundTripThroughPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    JobSpec spec;
    spec.scene = "BUNNY";
    spec.config = "vtq";
    spec.resolution = 64;
    ASSERT_TRUE(writeFrame(fds[1], FarmMsg::Job,
                           encodeJob(7, spec, true)));
    JobOutcome out;
    out.stats = syntheticStats(3);
    out.fingerprint = 0xabcdef;
    out.cacheHit = true;
    out.wallMs = 42;
    ASSERT_TRUE(writeFrame(fds[1], FarmMsg::Result,
                           encodeResult(7, out)));
    ASSERT_TRUE(writeFrame(fds[1], FarmMsg::Error,
                           encodeError(9, "boom")));
    ASSERT_TRUE(writeFrame(fds[1], FarmMsg::Heartbeat,
                           encodeHeartbeat(7)));
    ::close(fds[1]);

    FrameReader reader;
    FarmMsg type;
    std::string payload;
    auto read_frame = [&] {
        while (!reader.next(type, payload))
            if (reader.pump(fds[0]) < 0)
                FAIL() << "unexpected EOF";
    };

    read_frame();
    ASSERT_EQ(type, FarmMsg::Job);
    uint64_t idx;
    JobSpec spec2;
    bool resume = false;
    decodeJob(payload, idx, spec2, resume);
    EXPECT_EQ(idx, 7u);
    EXPECT_TRUE(resume);
    EXPECT_EQ(spec2.fingerprint(), spec.fingerprint());

    read_frame();
    ASSERT_EQ(type, FarmMsg::Result);
    JobOutcome out2;
    ASSERT_TRUE(decodeResult(payload, idx, out2));
    EXPECT_EQ(idx, 7u);
    EXPECT_TRUE(out2.cacheHit);
    EXPECT_EQ(out2.wallMs, 42u);
    EXPECT_EQ(RunStatsIo::fingerprint(out2.stats),
              RunStatsIo::fingerprint(out.stats));

    read_frame();
    ASSERT_EQ(type, FarmMsg::Error);
    std::string msg;
    decodeError(payload, idx, msg);
    EXPECT_EQ(idx, 9u);
    EXPECT_EQ(msg, "boom");

    read_frame();
    ASSERT_EQ(type, FarmMsg::Heartbeat);
    EXPECT_TRUE(decodeHeartbeat(payload, idx));
    EXPECT_EQ(idx, 7u);

    // Writer closed: EOF, not a truncated frame.
    EXPECT_FALSE(reader.next(type, payload));
    EXPECT_LT(reader.pump(fds[0]), 0);
    ::close(fds[0]);
}

TEST(FarmProtocol, TornHeaderIsNotAFrame)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // 10 bytes of a 16-byte header: what a SIGKILL mid-write leaves.
    std::string partial("\x46\x54\x52\x54\x01\x00\x00\x00\x05\x00", 10);
    ASSERT_EQ(::write(fds[1], partial.data(), partial.size()),
              ssize_t(partial.size()));
    ::close(fds[1]);
    FrameReader reader;
    FarmMsg type;
    std::string payload;
    EXPECT_GT(reader.pump(fds[0]), 0);
    EXPECT_FALSE(reader.next(type, payload)); // incomplete, not corrupt
    EXPECT_LT(reader.pump(fds[0]), 0);        // EOF
    ::close(fds[0]);
}

TEST(FarmProtocol, CorruptMagicThrows)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::string junk(32, 'Z');
    ASSERT_EQ(::write(fds[1], junk.data(), junk.size()),
              ssize_t(junk.size()));
    ::close(fds[1]);
    FrameReader reader;
    FarmMsg type;
    std::string payload;
    EXPECT_GT(reader.pump(fds[0]), 0);
    EXPECT_THROW(reader.next(type, payload), EnvError);
    ::close(fds[0]);
}

// ---- run-cache aliasing & multi-process safety -----------------------

/** JobSpec::fingerprint() must equal the key runScene() computes for
 *  the same knobs — farm jobs and hand-run benches share cache
 *  entries. A bench warms the cache; the job must see a hit. */
TEST(FarmRunCache, JobSpecAliasesBenchEntries)
{
    TempDir dir("alias");
    EnvGuard cache("TRT_CACHE", dir.path().c_str());
    resetHarnessTiming();

    JobSpec spec;
    spec.scene = "BUNNY";
    spec.scale = 0.03f;
    spec.resolution = 16;
    spec.config = "vtq";

    EXPECT_FALSE(cachedRunExists(spec.fingerprint(), spec.scene));

    // The bench path: explicit GpuConfig through runScene.
    HarnessOptions opt;
    opt.sceneScale = spec.scale;
    opt.simThreads = 1;
    RunStats bench = runScene(spec.scene, spec.gpuConfig(), opt);

    // Same knobs as a declarative job: must be a cache hit with
    // bit-identical stats.
    EXPECT_TRUE(cachedRunExists(spec.fingerprint(), spec.scene));
    JobOutcome job = runJob(spec, {});
    EXPECT_TRUE(job.cacheHit);
    EXPECT_EQ(RunStatsIo::fingerprint(job.stats),
              RunStatsIo::fingerprint(bench));
}

/** Concurrent stores of the same fingerprint from forked processes
 *  must never produce a torn blob (atomic temp+rename). */
TEST(FarmRunCache, ConcurrentStoresStayValid)
{
    TempDir dir("mpstore");
    EnvGuard cache("TRT_CACHE", dir.path().c_str());
    RunStats st = syntheticStats(42);
    constexpr uint64_t kFp = 0x1234abcd5678ef00ull;

    std::vector<pid_t> kids;
    for (int i = 0; i < 4; i++) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            for (int rep = 0; rep < 25; rep++)
                storeCachedRun(kFp, "SYNTH", st);
            ::_exit(0);
        }
        kids.push_back(pid);
    }
    for (int rep = 0; rep < 25; rep++)
        storeCachedRun(kFp, "SYNTH", st);
    for (pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    RunStats loaded;
    ASSERT_TRUE(loadCachedRun(kFp, "SYNTH", loaded));
    EXPECT_EQ(RunStatsIo::fingerprint(loaded),
              RunStatsIo::fingerprint(st));
    // No leftover temp files.
    size_t stray = 0;
    for (const auto &de : std::filesystem::directory_iterator(
             std::filesystem::path(dir.path()) / "runs"))
        stray += de.path().extension() != ".bin";
    EXPECT_EQ(stray, 0u);
}

// ---- end-to-end crash/retry sweep ------------------------------------

constexpr const char *kSweepManifest = R"({
  "name": "e2e",
  "defaults": {"res": 16, "scale": 0.03},
  "scenes": ["BUNNY", "CRNVL"],
  "configs": ["fifo", "vtq"]
})";

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** A multi-worker sweep with one injected SIGKILL mid-job must retry,
 *  resume from the crash snapshot, and land RunStats bit-identical to
 *  running every job serially — the ISSUE's acceptance criterion. */
TEST(FarmEndToEnd, CrashedSweepMatchesSerialBitIdentically)
{
    Manifest m = Manifest::parse(kSweepManifest);
    ASSERT_EQ(m.jobs.size(), 4u);

    TempDir serial_dir("serial");
    TempDir farm_dir("farm");
    std::string serial_csv, farm_csv;
    std::vector<uint64_t> serial_fps, farm_fps;

    {
        EnvGuard cache("TRT_CACHE", serial_dir.path().c_str());
        FarmOptions opt;
        opt.serial = true;
        opt.outDir = serial_dir.sub("out");
        opt.simThreads = 1;
        FarmResult res = runFarm(m, opt);
        EXPECT_EQ(res.simulated, 4u);
        EXPECT_EQ(res.failed, 0u);
        EXPECT_EQ(res.workerCrashes, 0u);
        for (const JobRecord &r : res.jobs)
            serial_fps.push_back(RunStatsIo::fingerprint(r.stats));
        serial_csv = readFile(opt.outDir + "/e2e.csv");
    }
    {
        EnvGuard cache("TRT_CACHE", farm_dir.path().c_str());
        EnvGuard snap("TRT_SNAPSHOT_DIR",
                      farm_dir.sub("snaps").c_str());
        FarmOptions opt;
        opt.workers = 2;
        opt.retries = 2;
        opt.outDir = farm_dir.sub("out");
        opt.simThreads = 1;
        // One worker SIGKILLs itself mid-simulation (snapshot already
        // on disk); cycle 2000 is mid-run for every job at this size.
        opt.injectCrashSentinel = farm_dir.sub("crash.sentinel");
        opt.injectCrashAtCycle = 2000;
        FarmResult res = runFarm(m, opt);
        EXPECT_EQ(res.simulated, 4u);
        EXPECT_EQ(res.failed, 0u);
        EXPECT_GE(res.workerCrashes, 1u);
        EXPECT_GE(res.retries, 1u);
        EXPECT_TRUE(
            std::filesystem::exists(farm_dir.sub("crash.sentinel")));
        for (const JobRecord &r : res.jobs)
            farm_fps.push_back(RunStatsIo::fingerprint(r.stats));
        farm_csv = readFile(opt.outDir + "/e2e.csv");

        // JSONL streamed one line per job.
        std::istringstream jsonl(readFile(opt.outDir + "/e2e.jsonl"));
        std::string line;
        size_t lines = 0;
        while (std::getline(jsonl, line))
            lines += !line.empty();
        EXPECT_EQ(lines, 4u);
    }

    EXPECT_EQ(serial_fps, farm_fps);
    EXPECT_FALSE(serial_csv.empty());
    EXPECT_EQ(serial_csv, farm_csv);
}

/** Re-running a sweep over a warm cache must skip every job,
 *  observably (cached count), without touching a worker. */
TEST(FarmEndToEnd, WarmCacheSkipsEveryJob)
{
    Manifest m = Manifest::parse(R"({
      "name": "warm",
      "defaults": {"res": 16, "scale": 0.03},
      "scenes": ["BUNNY"],
      "configs": ["fifo", "vtq"]
    })");

    TempDir dir("warm");
    EnvGuard cache("TRT_CACHE", dir.path().c_str());
    FarmOptions opt;
    opt.serial = true;
    opt.outDir = dir.sub("out");
    opt.simThreads = 1;
    FarmResult first = runFarm(m, opt);
    EXPECT_EQ(first.simulated, 2u);
    EXPECT_EQ(first.cached, 0u);

    FarmResult second = runFarm(m, opt);
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.cached, 2u);
    EXPECT_EQ(second.failed, 0u);
    for (size_t i = 0; i < first.jobs.size(); i++)
        EXPECT_EQ(RunStatsIo::fingerprint(second.jobs[i].stats),
                  RunStatsIo::fingerprint(first.jobs[i].stats));
}

} // namespace
} // namespace trt
