/**
 * @file
 * Unit tests for the geometry primitives: vectors, AABBs, intersection
 * kernels, RNG determinism and sampling invariants.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "geom/onb.hh"
#include "geom/ray.hh"
#include "geom/rng.hh"
#include "geom/simd.hh"
#include "geom/vec.hh"

namespace trt
{
namespace
{

TEST(Vec3, BasicArithmetic)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
    EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
    EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
    EXPECT_EQ(2.0f * a, (Vec3{2, 4, 6}));
    EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
    EXPECT_EQ(a * b, (Vec3{4, 10, 18}));
}

TEST(Vec3, DotAndCross)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(dot(x, y), 0.0f);
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    EXPECT_FLOAT_EQ(dot(Vec3{1, 2, 3}, Vec3{4, 5, 6}), 32.0f);
}

TEST(Vec3, NormalizeAndLength)
{
    Vec3 v{3, 4, 0};
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    Vec3 n = normalize(v);
    EXPECT_NEAR(length(n), 1.0f, 1e-6f);
    // Degenerate input falls back to +x.
    EXPECT_EQ(normalize(Vec3{0, 0, 0}), (Vec3{1, 0, 0}));
}

TEST(Vec3, MinMaxClampLerp)
{
    Vec3 a{1, 5, -2}, b{3, 2, 0};
    EXPECT_EQ(min(a, b), (Vec3{1, 2, -2}));
    EXPECT_EQ(max(a, b), (Vec3{3, 5, 0}));
    EXPECT_EQ(clamp(a, 0.0f, 2.0f), (Vec3{1, 2, 0}));
    EXPECT_EQ(lerp(Vec3{0, 0, 0}, Vec3{2, 4, 8}, 0.5f), (Vec3{1, 2, 4}));
}

TEST(Vec3, MaxDimAndComponents)
{
    EXPECT_EQ((Vec3{3, -7, 2}).maxDim(), 1);
    EXPECT_EQ((Vec3{9, -7, 2}).maxDim(), 0);
    EXPECT_EQ((Vec3{1, -7, 8}).maxDim(), 2);
    EXPECT_FLOAT_EQ((Vec3{3, -7, 2}).maxComponent(), 3.0f);
    EXPECT_FLOAT_EQ((Vec3{3, -7, 2}).minComponent(), -7.0f);
}

TEST(Vec3, Reflect)
{
    Vec3 v = normalize(Vec3{1, -1, 0});
    Vec3 r = reflect(v, {0, 1, 0});
    EXPECT_NEAR(r.x, v.x, 1e-6f);
    EXPECT_NEAR(r.y, -v.y, 1e-6f);
}

TEST(Aabb, EmptyAndGrow)
{
    Aabb b;
    EXPECT_TRUE(b.empty());
    EXPECT_FLOAT_EQ(b.surfaceArea(), 0.0f);
    b.grow(Vec3{1, 2, 3});
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(b.lo, (Vec3{1, 2, 3}));
    EXPECT_EQ(b.hi, (Vec3{1, 2, 3}));
    b.grow(Vec3{-1, 5, 0});
    EXPECT_EQ(b.lo, (Vec3{-1, 2, 0}));
    EXPECT_EQ(b.hi, (Vec3{1, 5, 3}));
}

TEST(Aabb, SurfaceAreaAndCenter)
{
    Aabb b{{0, 0, 0}, {2, 3, 4}};
    EXPECT_FLOAT_EQ(b.surfaceArea(), 2.0f * (6 + 12 + 8));
    EXPECT_EQ(b.center(), (Vec3{1, 1.5f, 2}));
    EXPECT_EQ(b.extent(), (Vec3{2, 3, 4}));
}

TEST(Aabb, ContainsAndOverlaps)
{
    Aabb b{{0, 0, 0}, {1, 1, 1}};
    EXPECT_TRUE(b.contains(Vec3{0.5f, 0.5f, 0.5f}));
    EXPECT_TRUE(b.contains(Vec3{0, 0, 0}));
    EXPECT_FALSE(b.contains(Vec3{1.1f, 0.5f, 0.5f}));
    EXPECT_TRUE(b.contains(Aabb{{0.2f, 0.2f, 0.2f}, {0.8f, 0.8f, 0.8f}}));
    EXPECT_FALSE(b.contains(Aabb{{0.5f, 0.5f, 0.5f}, {1.5f, 0.8f, 0.8f}}));
    EXPECT_TRUE(b.overlaps(Aabb{{0.9f, 0.9f, 0.9f}, {2, 2, 2}}));
    EXPECT_FALSE(b.overlaps(Aabb{{1.1f, 1.1f, 1.1f}, {2, 2, 2}}));
}

TEST(Aabb, MergeIsUnion)
{
    Aabb a{{0, 0, 0}, {1, 1, 1}};
    Aabb b{{2, -1, 0}, {3, 0.5f, 2}};
    Aabb m = Aabb::merge(a, b);
    EXPECT_TRUE(m.contains(a));
    EXPECT_TRUE(m.contains(b));
    EXPECT_EQ(m.lo, (Vec3{0, -1, 0}));
    EXPECT_EQ(m.hi, (Vec3{3, 1, 2}));
}

TEST(IntersectAabb, HitAndMiss)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    Ray hit_ray({0, 0, -5}, {0, 0, 1});
    RayInv inv(hit_ray);
    float t;
    ASSERT_TRUE(intersectAabb(hit_ray, inv, box, t));
    EXPECT_NEAR(t, 4.0f, 1e-4f);

    Ray miss_ray({0, 3, -5}, {0, 0, 1});
    RayInv inv2(miss_ray);
    EXPECT_FALSE(intersectAabb(miss_ray, inv2, box, t));
}

TEST(IntersectAabb, RespectsInterval)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    Ray r({0, 0, -5}, {0, 0, 1});
    r.tmax = 3.0f; // box entry at t=4 is beyond tmax
    RayInv inv(r);
    float t;
    EXPECT_FALSE(intersectAabb(r, inv, box, t));

    Ray r2({0, 0, -5}, {0, 0, 1});
    r2.tmin = 7.0f; // box exit at t=6 is before tmin
    RayInv inv2(r2);
    EXPECT_FALSE(intersectAabb(r2, inv2, box, t));
}

TEST(IntersectAabb, OriginInsideBox)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    Ray r({0, 0, 0}, {0, 0, 1});
    RayInv inv(r);
    float t;
    ASSERT_TRUE(intersectAabb(r, inv, box, t));
    EXPECT_NEAR(t, r.tmin, 1e-5f);
}

TEST(IntersectAabb, AxisParallelRays)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    // A ray exactly parallel to a slab, inside it.
    Ray inside({0.5f, 0.5f, -5}, {0, 0, 1});
    RayInv inv(inside);
    float t;
    EXPECT_TRUE(intersectAabb(inside, inv, box, t));
    // Outside the slab, parallel.
    Ray outside({0.5f, 2.0f, -5}, {0, 0, 1});
    RayInv inv2(outside);
    EXPECT_FALSE(intersectAabb(outside, inv2, box, t));
}

TEST(IntersectTriangle, FrontAndBackFace)
{
    Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0};
    Ray r({0, 0, -2}, {0, 0, 1});
    float t, u, v;
    ASSERT_TRUE(intersectTriangle(r, tri, t, u, v));
    EXPECT_NEAR(t, 2.0f, 1e-5f);

    // Double-sided: the reversed ray from behind also hits.
    Ray back({0, 0, 2}, {0, 0, -1});
    ASSERT_TRUE(intersectTriangle(back, tri, t, u, v));
    EXPECT_NEAR(t, 2.0f, 1e-5f);
}

TEST(IntersectTriangle, MissOutsideEdges)
{
    Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0};
    float t, u, v;
    Ray r1({2.0f, 0, -2}, {0, 0, 1});
    EXPECT_FALSE(intersectTriangle(r1, tri, t, u, v));
    Ray r2({0, -2.0f, -2}, {0, 0, 1});
    EXPECT_FALSE(intersectTriangle(r2, tri, t, u, v));
}

TEST(IntersectTriangle, BarycentricsAtVertices)
{
    Triangle tri{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0};
    float t, u, v;
    // Near v1 -> u ~ 1; near v2 -> v ~ 1.
    Ray r1({0.99f, 0.005f, -1}, {0, 0, 1});
    ASSERT_TRUE(intersectTriangle(r1, tri, t, u, v));
    EXPECT_GT(u, 0.95f);
    Ray r2({0.005f, 0.99f, -1}, {0, 0, 1});
    ASSERT_TRUE(intersectTriangle(r2, tri, t, u, v));
    EXPECT_GT(v, 0.95f);
}

TEST(IntersectTriangle, ParallelRayMisses)
{
    Triangle tri{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}, 0};
    Ray r({0, 0, -1}, {1, 0, 0}); // parallel to the triangle plane
    float t, u, v;
    EXPECT_FALSE(intersectTriangle(r, tri, t, u, v));
}

TEST(Triangle, BoundsAndAreaAndNormal)
{
    Triangle tri{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, 0};
    Aabb b = tri.bounds();
    EXPECT_EQ(b.lo, (Vec3{0, 0, 0}));
    EXPECT_EQ(b.hi, (Vec3{2, 2, 0}));
    EXPECT_FLOAT_EQ(tri.area(), 2.0f);
    Vec3 n = normalize(tri.geometricNormal());
    EXPECT_NEAR(std::fabs(n.z), 1.0f, 1e-6f);
    EXPECT_EQ(tri.centroid(), (Vec3{2.0f / 3, 2.0f / 3, 0}));
}

TEST(Pcg32, DeterministicStreams)
{
    Pcg32 a(42, 7), b(42, 7), c(43, 7);
    for (int i = 0; i < 100; i++) {
        uint32_t va = a.nextU32();
        EXPECT_EQ(va, b.nextU32());
    }
    // Different seed should diverge immediately with high probability.
    Pcg32 a2(42, 7);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a2.nextU32() == c.nextU32() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Pcg32, FloatRangeAndBound)
{
    Pcg32 rng(1);
    for (int i = 0; i < 1000; i++) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        uint32_t b = rng.nextBounded(17);
        EXPECT_LT(b, 17u);
        float r = rng.nextRange(-2.0f, 3.0f);
        EXPECT_GE(r, -2.0f);
        EXPECT_LT(r, 3.0f);
    }
}

TEST(SampleDim, CounterBasedAndUniform)
{
    // Same key -> same value, independent of call order.
    EXPECT_EQ(sampleDim(7, 2, 1), sampleDim(7, 2, 1));
    EXPECT_NE(sampleDim(7, 2, 1), sampleDim(7, 2, 2));
    EXPECT_NE(sampleDim(7, 2, 1), sampleDim(8, 2, 1));

    // Coarse uniformity over pixels.
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        sum += sampleDim(uint32_t(i), 0, 0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Onb, Orthonormal)
{
    Pcg32 rng(5);
    for (int i = 0; i < 200; i++) {
        Vec3 n = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        Onb onb(n);
        EXPECT_NEAR(length(onb.t), 1.0f, 1e-5f);
        EXPECT_NEAR(length(onb.b), 1.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.t, onb.b), 0.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.t, onb.n), 0.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.b, onb.n), 0.0f, 1e-5f);
        EXPECT_EQ(onb.toWorld(Vec3{0, 0, 1}), n);
    }
}

TEST(Sampling, CosineHemisphereAboveSurface)
{
    Pcg32 rng(11);
    Vec3 n = normalize(Vec3{1, 2, -1});
    double mean_cos = 0.0;
    const int N = 5000;
    for (int i = 0; i < N; i++) {
        Vec3 d = sampleCosineHemisphere(n, rng.nextFloat(),
                                        rng.nextFloat());
        EXPECT_NEAR(length(d), 1.0f, 1e-4f);
        EXPECT_GE(dot(d, n), -1e-4f);
        mean_cos += dot(d, n);
    }
    // E[cos theta] = 2/3 for cosine-weighted sampling.
    EXPECT_NEAR(mean_cos / N, 2.0 / 3.0, 0.02);
}

TEST(Sampling, UniformSphereIsCentered)
{
    Pcg32 rng(13);
    Vec3 acc{0, 0, 0};
    const int N = 20000;
    for (int i = 0; i < N; i++) {
        Vec3 d = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        EXPECT_NEAR(length(d), 1.0f, 1e-4f);
        acc += d;
    }
    EXPECT_NEAR(length(acc) / N, 0.0f, 0.02f);
}

TEST(RayInv, HandlesZeroComponents)
{
    Ray r({0, 0, 0}, {0, 1, 0});
    RayInv inv(r);
    EXPECT_TRUE(std::isfinite(inv.invDir.x));
    EXPECT_TRUE(std::isfinite(inv.invDir.z));
    EXPECT_FALSE(inv.neg[1]);
}

TEST(HitRecord, DefaultIsMiss)
{
    HitRecord h;
    EXPECT_FALSE(h.hit());
    h.t = 1.0f;
    EXPECT_TRUE(h.hit());
}

// ---- 4-lane SIMD kernels vs their scalar references ------------------
//
// The determinism policy (DESIGN.md §6) requires the vector kernels to
// be bit-identical to the scalar ones, not merely close: a single ULP
// of drift changes traversal order and with it every cycle count. The
// tests below compare raw float bits over randomized inputs.

uint32_t
bitsOf(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

Vec3
randomUnitDir(Pcg32 &rng)
{
    // Includes axis-aligned directions (zero components -> infinite
    // inverse) which are the historically fragile slab-test inputs.
    if (rng.nextBounded(8) == 0) {
        Vec3 d{0, 0, 0};
        float *c = rng.nextBounded(2) ? &d.x
                                      : (rng.nextBounded(2) ? &d.y : &d.z);
        *c = rng.nextBounded(2) ? 1.0f : -1.0f;
        return d;
    }
    Vec3 d{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
           rng.nextRange(-1, 1)};
    float len = std::sqrt(dot(d, d));
    return len > 1e-3f ? d * (1.0f / len) : Vec3{1, 0, 0};
}

TEST(Simd4, BoxKernelBitExactRandomized)
{
    Pcg32 rng(20260806);
    const bool toggled = simdCompiledIn();
    for (int iter = 0; iter < 20000; iter++) {
        Ray ray;
        ray.orig = Vec3{rng.nextRange(-10, 10), rng.nextRange(-10, 10),
                        rng.nextRange(-10, 10)};
        ray.dir = randomUnitDir(rng);
        // Default tmin = 1e-4 (never 0, as in the simulator) keeps the
        // kernels away from the unobservable max(+-0, +-0) sign edge.
        ray.tmax = rng.nextRange(0.1f, 50.0f);
        RayInv inv(ray);

        PackedBounds4 pb;
        uint32_t lanes = 1 + rng.nextBounded(4);
        for (uint32_t k = 0; k < lanes; k++) {
            Vec3 a{rng.nextRange(-12, 12), rng.nextRange(-12, 12),
                   rng.nextRange(-12, 12)};
            // Mix volumes with flat/point boxes (zero-extent axes).
            Vec3 ext{rng.nextRange(0, 4), rng.nextRange(0, 4),
                     rng.nextBounded(4) == 0 ? 0.0f : rng.nextRange(0, 4)};
            pb.set(int(k), Aabb{a, a + ext});
        }

        float ts[4] = {}, tv[4] = {};
        uint32_t ms = intersectAabb4Scalar(ray, inv, pb, ts);
        setSimdEnabled(true);
        uint32_t mv = intersectAabb4(ray, inv, pb, tv);
        ASSERT_EQ(ms, mv) << "iter " << iter;
        for (int k = 0; k < 4; k++) {
            if (ms >> k & 1u) {
                ASSERT_EQ(bitsOf(ts[k]), bitsOf(tv[k]))
                    << "iter " << iter << " lane " << k;
            }
        }
        if (toggled) {
            // The runtime toggle must reproduce the scalar bits too.
            setSimdEnabled(false);
            float td[4] = {};
            uint32_t md = intersectAabb4(ray, inv, pb, td);
            setSimdEnabled(true);
            ASSERT_EQ(ms, md) << "iter " << iter;
            for (int k = 0; k < 4; k++) {
                if (ms >> k & 1u) {
                    ASSERT_EQ(bitsOf(ts[k]), bitsOf(td[k]))
                        << "iter " << iter << " lane " << k;
                }
            }
        }
    }
}

TEST(Simd4, TriangleKernelBitExactRandomized)
{
    Pcg32 rng(988);
    for (int iter = 0; iter < 20000; iter++) {
        Ray ray;
        ray.orig = Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)};
        ray.dir = randomUnitDir(rng);

        uint32_t n = 1 + rng.nextBounded(4);
        Triangle tris[4];
        for (uint32_t k = 0; k < n; k++) {
            Vec3 v0{rng.nextRange(-6, 6), rng.nextRange(-6, 6),
                    rng.nextRange(-6, 6)};
            // Small triangles near the ray so a useful fraction of
            // iterations produce candidate hits (and tiny determinants
            // exercise the epsilon reject).
            float s = rng.nextBounded(8) == 0 ? 1e-5f : 2.0f;
            tris[k].v0 = v0;
            tris[k].v1 = v0 + Vec3{rng.nextRange(-s, s),
                                   rng.nextRange(-s, s),
                                   rng.nextRange(-s, s)};
            tris[k].v2 = v0 + Vec3{rng.nextRange(-s, s),
                                   rng.nextRange(-s, s),
                                   rng.nextRange(-s, s)};
        }

        float t0[4], u0[4], v0[4], t1[4], u1[4], v1[4];
        uint32_t ms = mollerTrumbore4Scalar(ray, tris, n, t0, u0, v0);
        setSimdEnabled(true);
        uint32_t mv = mollerTrumbore4(ray, tris, n, t1, u1, v1);
        ASSERT_EQ(ms, mv) << "iter " << iter;
        for (uint32_t k = 0; k < n; k++) {
            if (!(ms >> k & 1u))
                continue;
            ASSERT_EQ(bitsOf(t0[k]), bitsOf(t1[k])) << "iter " << iter;
            ASSERT_EQ(bitsOf(u0[k]), bitsOf(u1[k])) << "iter " << iter;
            ASSERT_EQ(bitsOf(v0[k]), bitsOf(v1[k])) << "iter " << iter;
        }
    }
}

TEST(Simd4, RuntimeToggleAndBuildKnob)
{
    // simdEnabled() honours the compile-time knob: a TRT_SIMD=OFF
    // build must report (and stay) scalar regardless of the toggle.
    bool compiled = simdCompiledIn();
    setSimdEnabled(true);
    EXPECT_EQ(simdEnabled(), compiled);
    setSimdEnabled(false);
    EXPECT_FALSE(simdEnabled());
    setSimdEnabled(true);
    EXPECT_EQ(simdEnabled(), compiled);
}

} // anonymous namespace
} // namespace trt
