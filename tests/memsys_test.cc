/**
 * @file
 * Tests for the memory hierarchy: cache tag-store behaviour (LRU,
 * associativity, fully-associative O(1) path), and the MemorySystem's
 * latency model, MSHR-style merging, prefetch path, bandwidth, bypass
 * and per-class accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "memsys/cache.hh"
#include "memsys/memsys.hh"

namespace trt
{
namespace
{

TEST(Cache, HitAfterMiss)
{
    Cache c(1024, 0, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(Cache, LineAddr)
{
    Cache c(1024, 0, 64);
    EXPECT_EQ(c.lineAddr(0x100), 0x100u);
    EXPECT_EQ(c.lineAddr(0x13f), 0x100u);
    EXPECT_EQ(c.lineAddr(0x140), 0x140u);
}

TEST(Cache, FullyAssocLruEviction)
{
    // 4 lines capacity.
    Cache c(4 * 64, 0, 64);
    for (uint64_t i = 0; i < 4; i++)
        EXPECT_FALSE(c.access(i * 64));
    // Touch line 0 so line 1 is LRU.
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(4 * 64)); // evicts line 1
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1 * 64)); // line 1 was evicted
}

TEST(Cache, SetAssocLruWithinSet)
{
    // 2 sets x 2 ways, 64B lines. Lines map to sets by tag parity.
    Cache c(4 * 64, 2, 64);
    // Set 0 gets tags 0, 2, 4 (all even).
    EXPECT_FALSE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    EXPECT_TRUE(c.access(0 * 64));  // touch: tag 2 becomes LRU
    EXPECT_FALSE(c.access(4 * 64)); // evicts tag 2
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    // Set 1 (odd tags) unaffected throughout.
    EXPECT_FALSE(c.access(1 * 64));
    EXPECT_TRUE(c.access(1 * 64));
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(2 * 64, 0, 64);
    c.access(0);
    c.access(64); // LRU order: 0 older
    EXPECT_TRUE(c.probe(0));
    // Probe must not have promoted line 0: inserting a third line
    // still evicts line 0.
    c.access(128);
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(64));
}

TEST(Cache, InstallWithoutAccess)
{
    Cache c(4 * 64, 0, 64);
    c.install(0x200);
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_TRUE(c.access(0x200));
}

TEST(Cache, InvalidateAll)
{
    Cache c(4 * 64, 0, 64);
    c.access(0);
    c.access(64);
    c.invalidateAll();
    EXPECT_EQ(c.residentLines(), 0u);
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, ResidentLinesCapped)
{
    Cache fa(8 * 64, 0, 64);
    Cache sa(8 * 64, 4, 64);
    for (uint64_t i = 0; i < 100; i++) {
        fa.access(i * 64);
        sa.access(i * 64);
    }
    EXPECT_EQ(fa.residentLines(), 8u);
    EXPECT_LE(sa.residentLines(), 8u);
}

/** residentLines() is maintained incrementally on fill/evict/invalid-
 *  ate (PR 3); it must always equal a probe count of every address the
 *  cache has ever seen, for both FA and SA organizations. */
TEST(Cache, ResidentLinesStaysInSyncWithTagStore)
{
    Cache fa(16 * 64, 0, 64);
    Cache sa(16 * 64, 4, 64);
    std::vector<uint64_t> touched;
    auto recount = [&](const Cache &c) {
        uint64_t n = 0;
        for (uint64_t a : touched)
            n += c.probe(a) ? 1 : 0;
        return n;
    };
    // Deterministic mixed access/install stream with reuse: LCG over a
    // 64-line working set against 16-line caches forces evictions.
    uint64_t x = 12345;
    for (int step = 0; step < 2000; step++) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t addr = ((x >> 33) % 64) * 64;
        if (std::find(touched.begin(), touched.end(), addr) ==
            touched.end())
            touched.push_back(addr);
        if (step % 7 == 3) {
            fa.install(addr);
            sa.install(addr);
        } else {
            fa.access(addr);
            sa.access(addr);
        }
        if (step % 500 == 499) {
            EXPECT_EQ(fa.residentLines(), recount(fa)) << step;
            EXPECT_EQ(sa.residentLines(), recount(sa)) << step;
        }
    }
    EXPECT_EQ(fa.residentLines(), recount(fa));
    EXPECT_EQ(sa.residentLines(), recount(sa));
    EXPECT_EQ(fa.residentLines(), 16u); // full after heavy traffic
    fa.invalidateAll();
    sa.invalidateAll();
    EXPECT_EQ(fa.residentLines(), 0u);
    EXPECT_EQ(sa.residentLines(), 0u);
    EXPECT_EQ(recount(fa), 0u);
    EXPECT_EQ(recount(sa), 0u);
}

MemConfig
smallConfig()
{
    MemConfig mc;
    mc.numL1s = 2;
    mc.lineBytes = 64;
    mc.l1Bytes = 1024;
    mc.l2Bytes = 8192;
    mc.l2Ways = 4;
    return mc;
}

TEST(MemorySystem, LatencyLevels)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);

    // Cold: full DRAM path.
    auto a = mem.read(1000, 0, 0x1000, 64, MemClass::BvhNode);
    EXPECT_FALSE(a.l1Hit);
    EXPECT_GT(a.readyCycle,
              1000 + mc.l2HitLatency + mc.dramLatency - 1);

    // Warm L1 (after the fill has completed).
    uint64_t later = a.readyCycle + 10;
    auto b = mem.read(later, 0, 0x1000, 64, MemClass::BvhNode);
    EXPECT_TRUE(b.l1Hit);
    EXPECT_EQ(b.readyCycle, later + mc.l1HitLatency);

    // Other SM: L1 miss, L2 hit.
    auto c = mem.read(later, 1, 0x1000, 64, MemClass::BvhNode);
    EXPECT_FALSE(c.l1Hit);
    EXPECT_EQ(c.readyCycle, later + mc.l2HitLatency);
}

TEST(MemorySystem, MshrMergeWhileInFlight)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    auto a = mem.read(0, 0, 0x2000, 64, MemClass::BvhNode);
    // Second access to the same line while the fill is in flight must
    // wait for the fill, not report an instant L1 hit.
    auto b = mem.read(5, 0, 0x2000, 64, MemClass::BvhNode);
    EXPECT_EQ(b.readyCycle, a.readyCycle);
    // And not issue a second DRAM access.
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).dramAccesses, 1u);
}

TEST(MemorySystem, MultiLineRequest)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    // 200 bytes spanning 4 lines.
    mem.read(0, 0, 0x3000, 200, MemClass::Triangle);
    EXPECT_EQ(mem.classStats(MemClass::Triangle).l1Accesses, 4u);
}

TEST(MemorySystem, DramBandwidthQueues)
{
    MemConfig mc = smallConfig();
    mc.dramBytesPerCycle = 1.0; // 64 cycles per line
    MemorySystem mem(mc);
    auto a = mem.read(0, 0, 0x10000, 64, MemClass::BvhNode);
    auto b = mem.read(0, 0, 0x20000, 64, MemClass::BvhNode);
    // Second distinct line must queue behind the first.
    EXPECT_GE(b.readyCycle, a.readyCycle + 63);
}

TEST(MemorySystem, PrefetchInstallsAndDemandWaits)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    // Single line: the returned ready cycle is that line's fill time.
    uint64_t ready = mem.prefetchL1(0, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_GT(ready, 0u);
    EXPECT_TRUE(mem.l1Probe(0, 0x4000));
    // Demand access before the fill completes waits for it...
    auto a = mem.read(10, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_GE(a.readyCycle, ready);
    // ...and after completion it is a plain L1 hit.
    auto b = mem.read(ready + 5, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_EQ(b.readyCycle, ready + 5 + mc.l1HitLatency);
}

TEST(MemorySystem, PrefetchSkipsResidentLines)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x5000, 64, MemClass::BvhNode);
    uint64_t dram_before =
        mem.classStats(MemClass::BvhNode).dramAccesses;
    mem.prefetchL1(10000, 0, 0x5000, 64, MemClass::BvhNode);
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).dramAccesses,
              dram_before);
}

TEST(MemorySystem, BypassL1DoesNotTouchL1)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x6000, 64, MemClass::RayData, true);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l1Accesses, 0u);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l2Accesses, 1u);
    EXPECT_FALSE(mem.l1Probe(0, 0x6000));
}

TEST(MemorySystem, ReservedL2Partition)
{
    MemConfig mc = smallConfig();
    mc.l2ReservedBytes = 4096;
    MemorySystem mem(mc);
    // Ray data repeatedly accessed stays resident in the reserved
    // partition even while BVH traffic would have evicted it.
    mem.read(0, 0, 0x7000, 64, MemClass::RayData, true);
    for (uint64_t i = 0; i < 200; i++)
        mem.read(100 + i, 0, 0x100000 + i * 64, 64, MemClass::BvhNode);
    uint64_t misses_before =
        mem.classStats(MemClass::RayData).l2Misses;
    mem.read(100000, 0, 0x7000, 64, MemClass::RayData, true);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l2Misses, misses_before);
}

TEST(MemorySystem, WritesConsumeBandwidthOnly)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.write(0, 0, 0x8000, 128, MemClass::CtaState);
    const auto &st = mem.classStats(MemClass::CtaState);
    EXPECT_EQ(st.writes, 1u);
    EXPECT_EQ(st.dramWriteBytes, 128u);
    EXPECT_EQ(st.l1Accesses, 0u);
}

TEST(MemorySystem, ClassAccountingIsSeparate)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x9000, 64, MemClass::BvhNode);
    mem.read(0, 1, 0xa000, 64, MemClass::Triangle);
    mem.read(0, 0, 0xb000, 64, MemClass::Shader);
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).l1Accesses, 1u);
    EXPECT_EQ(mem.classStats(MemClass::Triangle).l1Accesses, 1u);
    EXPECT_EQ(mem.classStats(MemClass::Shader).l1Accesses, 1u);
    EXPECT_EQ(mem.totalStats().l1Accesses, 3u);
}

TEST(MemorySystem, BvhMissRateAndSeries)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.enableBvhSeries(100);
    mem.read(0, 0, 0xc000, 64, MemClass::BvhNode); // miss
    uint64_t warm = 5000;
    mem.read(warm, 0, 0xc000, 64, MemClass::BvhNode); // hit
    EXPECT_DOUBLE_EQ(mem.bvhL1MissRate(), 0.5);
    ASSERT_NE(mem.bvhSeries(), nullptr);
    EXPECT_DOUBLE_EQ(mem.bvhSeries()->ratioAt(0), 1.0);
    EXPECT_DOUBLE_EQ(mem.bvhSeries()->ratioAt(warm / 100), 0.0);
}

TEST(MemorySystem, PortImmediateMatchesPlainRead)
{
    MemConfig mc = smallConfig();
    MemorySystem serial(mc);
    MemorySystem ported(mc);

    for (uint64_t i = 0; i < 50; i++) {
        uint64_t now = i * 7;
        uint64_t addr = 0x1000 + (i % 8) * 64;
        auto a = serial.read(now, 0, addr, 64, MemClass::BvhNode);
        uint64_t ready = 0;
        MemTicket t = ported.port(0).read(now, addr, 64,
                                          MemClass::BvhNode, false,
                                          &ready);
        ASSERT_TRUE(ported.port(0).resolved(t));
        const auto &b = ported.port(0).result(t);
        EXPECT_EQ(a.readyCycle, b.readyCycle);
        EXPECT_EQ(a.readyCycle, ready);
        EXPECT_EQ(a.l1Hit, b.l1Hit);
        EXPECT_EQ(a.l2Hit, b.l2Hit);
    }
}

/**
 * Two SMs hammering the same L2 set within single cycles: the serial
 * read() path and the issue/commit path must produce identical Access
 * results and identical counters. This is the cross-SM contention case
 * the (sm, seq) commit order exists for — L2 LRU updates, MSHR merges
 * and DRAM queueing all depend on the global request order.
 */
TEST(MemorySystem, TwoPhaseMatchesSerialUnderL2Contention)
{
    MemConfig mc = smallConfig();
    MemorySystem serial(mc);
    MemorySystem phased(mc);

    // Addresses with identical L2 set index: stride = sets * lineBytes.
    uint64_t sets = mc.l2Bytes / (uint64_t(mc.l2Ways) * mc.lineBytes);
    uint64_t stride = sets * mc.lineBytes;

    for (uint64_t round = 0; round < 200; round++) {
        uint64_t now = round * 3; // several rounds share a cycle
        // Both SMs pick conflicting lines; every 4th round they touch
        // the very same line (same-cycle MSHR merge across SMs).
        uint64_t a0 = 0x100000 + (round % 6) * stride;
        uint64_t a1 = round % 4 == 0
                          ? a0
                          : 0x100000 + ((round + 3) % 6) * stride;

        auto s0 = serial.read(now, 0, a0, 64, MemClass::BvhNode);
        auto s1 = serial.read(now, 1, a1, 64, MemClass::Triangle);
        if (round % 5 == 0)
            serial.write(now, 0, 0x900000 + round * 64, 64,
                         MemClass::RayData);
        uint64_t sp = 0;
        if (round % 7 == 0)
            sp = serial.prefetchL1(now, 1, 0x400000 + round * 64, 64,
                                   MemClass::BvhNode);

        phased.beginIssuePhase();
        uint64_t r0 = 0, r1 = 0;
        MemTicket t0 = phased.port(0).read(now, a0, 64,
                                           MemClass::BvhNode, false, &r0);
        MemTicket t1 = phased.port(1).read(now, a1, 64,
                                           MemClass::Triangle, false, &r1);
        if (round % 5 == 0)
            phased.port(0).write(now, 0x900000 + round * 64, 64,
                                 MemClass::RayData);
        MemTicket tp = 0;
        if (round % 7 == 0)
            tp = phased.port(1).prefetchL1(now, 0x400000 + round * 64,
                                           64, MemClass::BvhNode);
        // Unresolved until the commit.
        EXPECT_FALSE(phased.port(0).resolved(t0));
        EXPECT_FALSE(phased.port(1).resolved(t1));
        phased.commitIssuePhase();

        ASSERT_TRUE(phased.port(0).resolved(t0));
        ASSERT_TRUE(phased.port(1).resolved(t1));
        const auto &p0 = phased.port(0).result(t0);
        const auto &p1 = phased.port(1).result(t1);
        EXPECT_EQ(s0.readyCycle, p0.readyCycle) << "round " << round;
        EXPECT_EQ(s0.l1Hit, p0.l1Hit);
        EXPECT_EQ(s0.l2Hit, p0.l2Hit);
        EXPECT_EQ(s0.readyCycle, r0);
        EXPECT_EQ(s1.readyCycle, p1.readyCycle) << "round " << round;
        EXPECT_EQ(s1.l1Hit, p1.l1Hit);
        EXPECT_EQ(s1.l2Hit, p1.l2Hit);
        EXPECT_EQ(s1.readyCycle, r1);
        if (round % 7 == 0) {
            EXPECT_EQ(sp, phased.port(1).result(tp).readyCycle);
        }
    }

    for (size_t c = 0; c < size_t(MemClass::NumClasses); c++) {
        const auto &a = serial.classStats(MemClass(c));
        const auto &b = phased.classStats(MemClass(c));
        EXPECT_EQ(a.l1Accesses, b.l1Accesses) << memClassName(MemClass(c));
        EXPECT_EQ(a.l1Misses, b.l1Misses);
        EXPECT_EQ(a.l2Accesses, b.l2Accesses);
        EXPECT_EQ(a.l2Misses, b.l2Misses);
        EXPECT_EQ(a.dramAccesses, b.dramAccesses);
        EXPECT_EQ(a.dramReadBytes, b.dramReadBytes);
        EXPECT_EQ(a.dramWriteBytes, b.dramWriteBytes);
        EXPECT_EQ(a.writes, b.writes);
    }
}

TEST(MemorySystem, MemClassNames)
{
    EXPECT_STREQ(memClassName(MemClass::BvhNode), "bvh_node");
    EXPECT_STREQ(memClassName(MemClass::RayData), "ray_data");
    EXPECT_STREQ(memClassName(MemClass::CtaState), "cta_state");
    EXPECT_STREQ(memClassName(MemClass::QueueTable), "queue_table");
}

} // anonymous namespace
} // namespace trt
