/**
 * @file
 * Tests for the memory hierarchy: cache tag-store behaviour (LRU,
 * associativity, fully-associative O(1) path), and the MemorySystem's
 * latency model, MSHR-style merging, prefetch path, bandwidth, bypass
 * and per-class accounting.
 */

#include <gtest/gtest.h>

#include "memsys/cache.hh"
#include "memsys/memsys.hh"

namespace trt
{
namespace
{

TEST(Cache, HitAfterMiss)
{
    Cache c(1024, 0, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(Cache, LineAddr)
{
    Cache c(1024, 0, 64);
    EXPECT_EQ(c.lineAddr(0x100), 0x100u);
    EXPECT_EQ(c.lineAddr(0x13f), 0x100u);
    EXPECT_EQ(c.lineAddr(0x140), 0x140u);
}

TEST(Cache, FullyAssocLruEviction)
{
    // 4 lines capacity.
    Cache c(4 * 64, 0, 64);
    for (uint64_t i = 0; i < 4; i++)
        EXPECT_FALSE(c.access(i * 64));
    // Touch line 0 so line 1 is LRU.
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(4 * 64)); // evicts line 1
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1 * 64)); // line 1 was evicted
}

TEST(Cache, SetAssocLruWithinSet)
{
    // 2 sets x 2 ways, 64B lines. Lines map to sets by tag parity.
    Cache c(4 * 64, 2, 64);
    // Set 0 gets tags 0, 2, 4 (all even).
    EXPECT_FALSE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    EXPECT_TRUE(c.access(0 * 64));  // touch: tag 2 becomes LRU
    EXPECT_FALSE(c.access(4 * 64)); // evicts tag 2
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    // Set 1 (odd tags) unaffected throughout.
    EXPECT_FALSE(c.access(1 * 64));
    EXPECT_TRUE(c.access(1 * 64));
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(2 * 64, 0, 64);
    c.access(0);
    c.access(64); // LRU order: 0 older
    EXPECT_TRUE(c.probe(0));
    // Probe must not have promoted line 0: inserting a third line
    // still evicts line 0.
    c.access(128);
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(64));
}

TEST(Cache, InstallWithoutAccess)
{
    Cache c(4 * 64, 0, 64);
    c.install(0x200);
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_TRUE(c.access(0x200));
}

TEST(Cache, InvalidateAll)
{
    Cache c(4 * 64, 0, 64);
    c.access(0);
    c.access(64);
    c.invalidateAll();
    EXPECT_EQ(c.residentLines(), 0u);
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, ResidentLinesCapped)
{
    Cache fa(8 * 64, 0, 64);
    Cache sa(8 * 64, 4, 64);
    for (uint64_t i = 0; i < 100; i++) {
        fa.access(i * 64);
        sa.access(i * 64);
    }
    EXPECT_EQ(fa.residentLines(), 8u);
    EXPECT_LE(sa.residentLines(), 8u);
}

MemConfig
smallConfig()
{
    MemConfig mc;
    mc.numL1s = 2;
    mc.lineBytes = 64;
    mc.l1Bytes = 1024;
    mc.l2Bytes = 8192;
    mc.l2Ways = 4;
    return mc;
}

TEST(MemorySystem, LatencyLevels)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);

    // Cold: full DRAM path.
    auto a = mem.read(1000, 0, 0x1000, 64, MemClass::BvhNode);
    EXPECT_FALSE(a.l1Hit);
    EXPECT_GT(a.readyCycle,
              1000 + mc.l2HitLatency + mc.dramLatency - 1);

    // Warm L1 (after the fill has completed).
    uint64_t later = a.readyCycle + 10;
    auto b = mem.read(later, 0, 0x1000, 64, MemClass::BvhNode);
    EXPECT_TRUE(b.l1Hit);
    EXPECT_EQ(b.readyCycle, later + mc.l1HitLatency);

    // Other SM: L1 miss, L2 hit.
    auto c = mem.read(later, 1, 0x1000, 64, MemClass::BvhNode);
    EXPECT_FALSE(c.l1Hit);
    EXPECT_EQ(c.readyCycle, later + mc.l2HitLatency);
}

TEST(MemorySystem, MshrMergeWhileInFlight)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    auto a = mem.read(0, 0, 0x2000, 64, MemClass::BvhNode);
    // Second access to the same line while the fill is in flight must
    // wait for the fill, not report an instant L1 hit.
    auto b = mem.read(5, 0, 0x2000, 64, MemClass::BvhNode);
    EXPECT_EQ(b.readyCycle, a.readyCycle);
    // And not issue a second DRAM access.
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).dramAccesses, 1u);
}

TEST(MemorySystem, MultiLineRequest)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    // 200 bytes spanning 4 lines.
    mem.read(0, 0, 0x3000, 200, MemClass::Triangle);
    EXPECT_EQ(mem.classStats(MemClass::Triangle).l1Accesses, 4u);
}

TEST(MemorySystem, DramBandwidthQueues)
{
    MemConfig mc = smallConfig();
    mc.dramBytesPerCycle = 1.0; // 64 cycles per line
    MemorySystem mem(mc);
    auto a = mem.read(0, 0, 0x10000, 64, MemClass::BvhNode);
    auto b = mem.read(0, 0, 0x20000, 64, MemClass::BvhNode);
    // Second distinct line must queue behind the first.
    EXPECT_GE(b.readyCycle, a.readyCycle + 63);
}

TEST(MemorySystem, PrefetchInstallsAndDemandWaits)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    // Single line: the returned ready cycle is that line's fill time.
    uint64_t ready = mem.prefetchL1(0, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_GT(ready, 0u);
    EXPECT_TRUE(mem.l1Probe(0, 0x4000));
    // Demand access before the fill completes waits for it...
    auto a = mem.read(10, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_GE(a.readyCycle, ready);
    // ...and after completion it is a plain L1 hit.
    auto b = mem.read(ready + 5, 0, 0x4000, 64, MemClass::BvhNode);
    EXPECT_EQ(b.readyCycle, ready + 5 + mc.l1HitLatency);
}

TEST(MemorySystem, PrefetchSkipsResidentLines)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x5000, 64, MemClass::BvhNode);
    uint64_t dram_before =
        mem.classStats(MemClass::BvhNode).dramAccesses;
    mem.prefetchL1(10000, 0, 0x5000, 64, MemClass::BvhNode);
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).dramAccesses,
              dram_before);
}

TEST(MemorySystem, BypassL1DoesNotTouchL1)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x6000, 64, MemClass::RayData, true);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l1Accesses, 0u);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l2Accesses, 1u);
    EXPECT_FALSE(mem.l1Probe(0, 0x6000));
}

TEST(MemorySystem, ReservedL2Partition)
{
    MemConfig mc = smallConfig();
    mc.l2ReservedBytes = 4096;
    MemorySystem mem(mc);
    // Ray data repeatedly accessed stays resident in the reserved
    // partition even while BVH traffic would have evicted it.
    mem.read(0, 0, 0x7000, 64, MemClass::RayData, true);
    for (uint64_t i = 0; i < 200; i++)
        mem.read(100 + i, 0, 0x100000 + i * 64, 64, MemClass::BvhNode);
    uint64_t misses_before =
        mem.classStats(MemClass::RayData).l2Misses;
    mem.read(100000, 0, 0x7000, 64, MemClass::RayData, true);
    EXPECT_EQ(mem.classStats(MemClass::RayData).l2Misses, misses_before);
}

TEST(MemorySystem, WritesConsumeBandwidthOnly)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.write(0, 0, 0x8000, 128, MemClass::CtaState);
    const auto &st = mem.classStats(MemClass::CtaState);
    EXPECT_EQ(st.writes, 1u);
    EXPECT_EQ(st.dramWriteBytes, 128u);
    EXPECT_EQ(st.l1Accesses, 0u);
}

TEST(MemorySystem, ClassAccountingIsSeparate)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.read(0, 0, 0x9000, 64, MemClass::BvhNode);
    mem.read(0, 1, 0xa000, 64, MemClass::Triangle);
    mem.read(0, 0, 0xb000, 64, MemClass::Shader);
    EXPECT_EQ(mem.classStats(MemClass::BvhNode).l1Accesses, 1u);
    EXPECT_EQ(mem.classStats(MemClass::Triangle).l1Accesses, 1u);
    EXPECT_EQ(mem.classStats(MemClass::Shader).l1Accesses, 1u);
    EXPECT_EQ(mem.totalStats().l1Accesses, 3u);
}

TEST(MemorySystem, BvhMissRateAndSeries)
{
    MemConfig mc = smallConfig();
    MemorySystem mem(mc);
    mem.enableBvhSeries(100);
    mem.read(0, 0, 0xc000, 64, MemClass::BvhNode); // miss
    uint64_t warm = 5000;
    mem.read(warm, 0, 0xc000, 64, MemClass::BvhNode); // hit
    EXPECT_DOUBLE_EQ(mem.bvhL1MissRate(), 0.5);
    ASSERT_NE(mem.bvhSeries(), nullptr);
    EXPECT_DOUBLE_EQ(mem.bvhSeries()->ratioAt(0), 1.0);
    EXPECT_DOUBLE_EQ(mem.bvhSeries()->ratioAt(warm / 100), 0.0);
}

TEST(MemorySystem, MemClassNames)
{
    EXPECT_STREQ(memClassName(MemClass::BvhNode), "bvh_node");
    EXPECT_STREQ(memClassName(MemClass::RayData), "ray_data");
    EXPECT_STREQ(memClassName(MemClass::CtaState), "cta_state");
    EXPECT_STREQ(memClassName(MemClass::QueueTable), "queue_table");
}

} // anonymous namespace
} // namespace trt
