/**
 * @file
 * Tests for the per-event energy model: accounting identities,
 * monotonicity in event counts, and the separability of the
 * ray-virtualization (CTA state) share used by Figure 17.
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"

namespace trt
{
namespace
{

RunStats
emptyRun()
{
    RunStats rs;
    rs.framebuffer.clear();
    return rs;
}

TEST(Energy, ZeroRunZeroEnergy)
{
    EnergyReport r = computeEnergy(emptyRun(), 16);
    EXPECT_DOUBLE_EQ(r.total(), 0.0);
    EXPECT_DOUBLE_EQ(r.virtualizationShare(), 0.0);
}

TEST(Energy, StaticScalesWithCyclesAndSms)
{
    RunStats rs = emptyRun();
    rs.cycles = 1000;
    EnergyParams p;
    EnergyReport a = computeEnergy(rs, 16, p);
    EnergyReport b = computeEnergy(rs, 8, p);
    EXPECT_DOUBLE_EQ(a.staticE, 2.0 * b.staticE);
    EXPECT_DOUBLE_EQ(a.staticE, 1000.0 * 16.0 * p.staticPerSmCycle);
}

TEST(Energy, DramEnergyFromBytes)
{
    RunStats rs = emptyRun();
    auto &m = rs.mem[size_t(MemClass::BvhNode)];
    m.dramReadBytes = 1000;
    m.dramWriteBytes = 500;
    EnergyParams p;
    EnergyReport r = computeEnergy(rs, 1, p);
    EXPECT_DOUBLE_EQ(r.dram, 1500.0 * p.dramPerByte);
}

TEST(Energy, CtaStateSeparatedFromMemory)
{
    RunStats rs = emptyRun();
    auto &cta = rs.mem[size_t(MemClass::CtaState)];
    cta.dramReadBytes = 2000;
    cta.l2Accesses = 10;
    auto &bvh = rs.mem[size_t(MemClass::BvhNode)];
    bvh.dramReadBytes = 2000;
    bvh.l2Accesses = 10;

    EnergyParams p;
    EnergyReport r = computeEnergy(rs, 1, p);
    double expected = 2000.0 * p.dramPerByte + 10.0 * p.l2PerAccess;
    EXPECT_DOUBLE_EQ(r.ctaState, expected);
    EXPECT_DOUBLE_EQ(r.dram + r.l2, expected);
    EXPECT_NEAR(r.virtualizationShare(), 0.5, 1e-12);
}

TEST(Energy, CoreScalesWithLaneInstrs)
{
    RunStats rs = emptyRun();
    rs.aluLaneInstrs = 1000000;
    EnergyParams p;
    EnergyReport r = computeEnergy(rs, 1, p);
    EXPECT_DOUBLE_EQ(r.core, 1e6 * p.aluPerLaneInstr);
}

TEST(Energy, RtUnitSplitsBoxAndTriTests)
{
    RunStats rs = emptyRun();
    rs.rt.nodeVisits = 75;
    rs.rt.leafVisits = 25;
    rs.rt.isectTests[size_t(TraversalMode::RayStationary)] = 100;
    EnergyParams p;
    EnergyReport r = computeEnergy(rs, 1, p);
    // 75% box, 25% tri by visit apportioning.
    EXPECT_DOUBLE_EQ(r.rtUnit, 75.0 * p.boxTest + 25.0 * p.triTest);
}

TEST(Energy, QueueOpsCharged)
{
    RunStats rs = emptyRun();
    rs.rt.raysEnqueued = 100;
    rs.rt.repackedRays = 50;
    EnergyParams p;
    EnergyReport r = computeEnergy(rs, 1, p);
    EXPECT_DOUBLE_EQ(r.rtUnit, 150.0 * p.queueTableOp);
}

TEST(Energy, TotalIsSumOfParts)
{
    RunStats rs = emptyRun();
    rs.cycles = 123;
    rs.aluLaneInstrs = 456;
    rs.mem[size_t(MemClass::BvhNode)].l1Accesses = 7;
    rs.mem[size_t(MemClass::CtaState)].writes = 1;
    rs.mem[size_t(MemClass::CtaState)].dramWriteBytes = 64;
    rs.rt.nodeVisits = 3;
    rs.rt.isectTests[0] = 9;
    EnergyReport r = computeEnergy(rs, 4);
    EXPECT_DOUBLE_EQ(r.total(), r.dram + r.l2 + r.l1 + r.core + r.rtUnit +
                                    r.ctaState + r.staticE);
    EXPECT_GT(r.total(), 0.0);
}

TEST(Energy, MonotoneInEveryCounter)
{
    RunStats base = emptyRun();
    base.cycles = 100;
    base.aluLaneInstrs = 100;
    base.mem[size_t(MemClass::BvhNode)].l1Accesses = 100;
    base.mem[size_t(MemClass::BvhNode)].l2Accesses = 50;
    base.mem[size_t(MemClass::BvhNode)].dramReadBytes = 6400;
    double t0 = computeEnergy(base, 16).total();

    RunStats more = base;
    more.cycles *= 2;
    EXPECT_GT(computeEnergy(more, 16).total(), t0);

    more = base;
    more.mem[size_t(MemClass::BvhNode)].dramReadBytes *= 2;
    EXPECT_GT(computeEnergy(more, 16).total(), t0);

    more = base;
    more.aluLaneInstrs *= 2;
    EXPECT_GT(computeEnergy(more, 16).total(), t0);
}

} // anonymous namespace
} // namespace trt
