/**
 * @file
 * Tests for the stepwise dual-stack RayTraverser: equivalence with the
 * plain traversal, the boundary/park protocol the RT units rely on,
 * access descriptors, and work counters.
 */

#include <gtest/gtest.h>

#include "bvh/traverser.hh"
#include "geom/rng.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

struct Fixture
{
    Scene scene;
    Bvh bvh;

    explicit Fixture(uint32_t treelet_bytes = 1024, int width = 4)
    {
        scene = buildScene("CRNVL", 0.05f);
        BvhConfig cfg;
        cfg.treeletMaxBytes = treelet_bytes;
        cfg.width = width;
        bvh = Bvh::build(scene.triangles, cfg);
    }
};

Ray
randomRay(Pcg32 &rng, const Aabb &b)
{
    Vec3 e = b.extent();
    Vec3 o{b.lo.x + e.x * rng.nextFloat(), b.lo.y + e.y * rng.nextFloat(),
           b.lo.z + e.z * rng.nextFloat()};
    return Ray(o, normalize(Vec3{rng.nextFloat() - 0.5f,
                                 rng.nextFloat() - 0.5f,
                                 rng.nextFloat() - 0.5f}));
}

/** Drive a traverser to completion, never parking. */
HitRecord
runToEnd(RayTraverser &t)
{
    while (!t.done()) {
        if (t.atBoundary()) {
            t.enterNextTreelet();
            continue;
        }
        t.complete();
    }
    return t.hit();
}

TEST(Traverser, StartsAtRootBoundary)
{
    Fixture f;
    Ray r = f.scene.camera.generateRay(10, 10, 64, 64);
    RayTraverser t(&f.bvh, r);
    EXPECT_TRUE(t.atBoundary());
    EXPECT_EQ(t.nextTreelet(), f.bvh.treeletOf(f.bvh.rootNode()));
    EXPECT_EQ(t.currentTreelet(), kInvalidTreelet);
    t.enterNextTreelet();
    EXPECT_EQ(t.currentTreelet(), f.bvh.treeletOf(f.bvh.rootNode()));
    EXPECT_EQ(t.phase(), RayTraverser::Phase::FetchNode);
}

TEST(Traverser, MatchesIntersectClosest)
{
    Fixture f;
    Pcg32 rng(9);
    for (int i = 0; i < 300; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        HitRecord a = runToEnd(t);
        HitRecord b = f.bvh.intersectClosest(r);
        ASSERT_EQ(a.hit(), b.hit()) << "ray " << i;
        if (a.hit()) {
            ASSERT_FLOAT_EQ(a.t, b.t);
            ASSERT_EQ(a.triIndex, b.triIndex);
        }
    }
}

TEST(Traverser, AccessDescriptorsAreValid)
{
    Fixture f;
    Ray r = f.scene.camera.generateRay(32, 32, 64, 64);
    RayTraverser t(&f.bvh, r);
    while (!t.done()) {
        if (t.atBoundary()) {
            t.enterNextTreelet();
            continue;
        }
        auto acc = t.currentAccess();
        EXPECT_GE(acc.addr, kBvhBaseAddr);
        EXPECT_LT(acc.addr, kBvhBaseAddr + f.bvh.totalBytes());
        if (acc.leaf) {
            EXPECT_GT(acc.bytes, 0u);
            EXPECT_EQ(acc.bytes % kTriBytes, 0u);
        } else {
            EXPECT_EQ(acc.bytes, f.bvh.nodeBytes());
            // Node accesses stay inside the current treelet.
            uint32_t tl = f.bvh.treeletOf(acc.node);
            EXPECT_EQ(tl, t.currentTreelet());
        }
        t.complete();
    }
}

TEST(Traverser, CountsAreConsistent)
{
    Fixture f;
    Pcg32 rng(17);
    for (int i = 0; i < 50; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        uint32_t reported = 0;
        while (!t.done()) {
            if (t.atBoundary()) {
                t.enterNextTreelet();
                continue;
            }
            reported += t.complete();
        }
        const auto &c = t.counts();
        EXPECT_EQ(c.boxTests + c.triTests, reported);
        EXPECT_GE(c.nodeFetches, 1u);
        EXPECT_GE(c.treeletSwitches, 1u);
        // Each node fetch tests at most kBvhWidth children.
        EXPECT_LE(c.boxTests, c.nodeFetches * kBvhWidth);
    }
}

TEST(Traverser, ParkAndResumeAtBoundaryPreservesResult)
{
    // Simulate what the treelet-queue unit does: every time the ray
    // reaches a boundary, "park" it (copy the traverser!) and resume
    // the copy. The final hit must be unchanged.
    Fixture f;
    Pcg32 rng(23);
    for (int i = 0; i < 100; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        HitRecord expect = f.bvh.intersectClosest(r);

        RayTraverser t(&f.bvh, r);
        int parks = 0;
        while (!t.done()) {
            if (t.atBoundary()) {
                RayTraverser parked = t;   // copy = park + requeue
                t = std::move(parked);
                t.enterNextTreelet();
                parks++;
                continue;
            }
            t.complete();
        }
        ASSERT_EQ(t.hit().hit(), expect.hit());
        if (expect.hit())
            ASSERT_FLOAT_EQ(t.hit().t, expect.t);
        ASSERT_GE(parks, 1);
    }
}

TEST(Traverser, BoundaryTargetsMatchQueueKey)
{
    // When at a boundary, nextTreelet() is the queue the RT unit files
    // the ray under; entering must land exactly there.
    Fixture f;
    Pcg32 rng(31);
    for (int i = 0; i < 50; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        while (!t.done()) {
            if (t.atBoundary()) {
                uint32_t target = t.nextTreelet();
                t.enterNextTreelet();
                ASSERT_EQ(t.currentTreelet(), target);
                continue;
            }
            t.complete();
        }
    }
}

TEST(Traverser, SmallTreeletsMeanMoreSwitches)
{
    Fixture small(512), large(64 * 1024);
    Pcg32 rng(37);
    uint64_t sw_small = 0, sw_large = 0;
    for (int i = 0; i < 100; i++) {
        Ray r = randomRay(rng, small.bvh.rootBounds());
        RayTraverser a(&small.bvh, r), b(&large.bvh, r);
        runToEnd(a);
        runToEnd(b);
        sw_small += a.counts().treeletSwitches;
        sw_large += b.counts().treeletSwitches;
    }
    EXPECT_GT(sw_small, sw_large);
}

TEST(Traverser, MissRayTerminates)
{
    Fixture f;
    // A ray pointing away from the scene.
    Aabb b = f.bvh.rootBounds();
    Ray r(b.hi + Vec3{10, 10, 10}, normalize(Vec3{1, 1, 1}));
    RayTraverser t(&f.bvh, r);
    HitRecord h = runToEnd(t);
    EXPECT_FALSE(h.hit());
    // Root fetch happens, little else.
    EXPECT_LE(t.counts().nodeFetches, 2u);
}

TEST(Traverser, TmaxLimitsTraversal)
{
    Fixture f;
    Ray r = f.scene.camera.generateRay(32, 32, 64, 64);
    HitRecord full = f.bvh.intersectClosest(r);
    ASSERT_TRUE(full.hit());

    Ray clipped = r;
    clipped.tmax = full.t * 0.5f; // hit now out of range
    RayTraverser t(&f.bvh, clipped);
    HitRecord h = runToEnd(t);
    EXPECT_FALSE(h.hit());
}

TEST(Traverser, Wide8MatchesIntersectClosest)
{
    // The stepwise traverser over the compressed 8-wide tree must
    // produce exactly the hits of the scalar reference traversal.
    Fixture f(1024, 8);
    ASSERT_EQ(f.bvh.width(), 8);
    Pcg32 rng(43);
    for (int i = 0; i < 300; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        HitRecord a = runToEnd(t);
        HitRecord b = f.bvh.intersectClosest(r);
        ASSERT_EQ(a.hit(), b.hit()) << "ray " << i;
        if (a.hit()) {
            ASSERT_FLOAT_EQ(a.t, b.t);
            ASSERT_EQ(a.triIndex, b.triIndex);
        }
    }
}

TEST(Traverser, Wide8AccessDescriptors)
{
    // Node accesses over the 8-wide tree are sized as compressed
    // 80-byte nodes, and each fetch tests at most 8 children.
    Fixture f(1024, 8);
    Pcg32 rng(47);
    for (int i = 0; i < 50; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        while (!t.done()) {
            if (t.atBoundary()) {
                t.enterNextTreelet();
                continue;
            }
            auto acc = t.currentAccess();
            if (!acc.leaf)
                EXPECT_EQ(acc.bytes, kCompressedNode8Bytes);
            t.complete();
        }
        const auto &c = t.counts();
        EXPECT_LE(c.boxTests, c.nodeFetches * uint64_t(kMaxBvhWidth));
    }
}

TEST(Traverser, StackDepthBounded)
{
    Fixture f;
    Pcg32 rng(41);
    size_t max_depth = 0;
    for (int i = 0; i < 50; i++) {
        Ray r = randomRay(rng, f.bvh.rootBounds());
        RayTraverser t(&f.bvh, r);
        while (!t.done()) {
            max_depth = std::max(max_depth, t.stackDepth());
            if (t.atBoundary()) {
                t.enterNextTreelet();
                continue;
            }
            t.complete();
        }
    }
    // 4-wide BVH of ~5K tris: stacks stay far below triangle count.
    EXPECT_LT(max_depth, 128u);
    EXPECT_GT(max_depth, 2u);
}

} // anonymous namespace
} // namespace trt
