/**
 * @file
 * Unit tests for the statistics primitives and table writers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace trt
{
namespace
{

TEST(Distribution, Empty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(Distribution, Accumulates)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Ratio, Basics)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.add(true);
    r.add(false);
    r.add(true);
    r.add(true);
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
    EXPECT_EQ(r.num, 3u);
    EXPECT_EQ(r.den, 4u);
}

TEST(WindowedSeries, WindowAssignment)
{
    WindowedSeries s(100);
    s.record(0, 1, 2);
    s.record(99, 1, 2);
    s.record(100, 3, 3);
    EXPECT_EQ(s.windows(), 2u);
    EXPECT_DOUBLE_EQ(s.ratioAt(0), 0.5);
    EXPECT_DOUBLE_EQ(s.ratioAt(1), 1.0);
    EXPECT_DOUBLE_EQ(s.ratioAt(5), 0.0); // out of range
    EXPECT_EQ(s.numAt(0), 2u);
    EXPECT_EQ(s.denAt(0), 4u);
}

TEST(WindowedSeries, ZeroWindowClamped)
{
    WindowedSeries s(0);
    EXPECT_EQ(s.windowCycles(), 1u);
    s.record(3, 1, 1);
    EXPECT_EQ(s.windows(), 4u);
}

TEST(WindowedSeries, ResampleMergesWindows)
{
    WindowedSeries s(10);
    // 8 windows with denominator 8 and numerator = window index.
    for (uint64_t w = 0; w < 8; w++)
        s.record(w * 10, w, 8);
    auto r = s.resampled(4);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(r[1], 5.0 / 16.0);
    EXPECT_DOUBLE_EQ(r[2], 9.0 / 16.0);
    EXPECT_DOUBLE_EQ(r[3], 13.0 / 16.0);
}

TEST(WindowedSeries, ResampleEdgeCases)
{
    WindowedSeries s(10);
    EXPECT_TRUE(s.resampled(4).empty()); // no data
    s.record(5, 1, 2);
    EXPECT_TRUE(s.resampled(0).empty());
    auto r = s.resampled(3); // more buckets than windows
    ASSERT_EQ(r.size(), 3u);
    EXPECT_DOUBLE_EQ(r[0], 0.5);
}

TEST(Geomean, Values)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Mean, Values)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Table, CellsAndAccess)
{
    Table t({"a", "b", "c"});
    t.row().cell("x").cell(1.5, 1).cell(uint64_t(7));
    t.row().cell("y").cell(2).cell("z");
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.at(0, 0), "x");
    EXPECT_EQ(t.at(0, 1), "1.5");
    EXPECT_EQ(t.at(0, 2), "7");
    EXPECT_EQ(t.at(1, 1), "2");
    EXPECT_THROW(t.at(5, 0), std::out_of_range);
}

TEST(Table, PrintAligned)
{
    Table t({"name", "v"});
    t.row().cell("long_scene_name").cell(uint64_t(1));
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("long_scene_name"), std::string::npos);
    EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, PrintCsv)
{
    Table t({"a", "b"});
    t.row().cell("1").cell("2");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

} // anonymous namespace
} // namespace trt
