/**
 * @file
 * Tests for the GPU timing model: config defaults (Table 1), baseline
 * simulation correctness (bit-identical to the functional renderer),
 * CTA scheduling limits, shader model, and stat plausibility.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "gpu/gpu.hh"
#include "gpu/rate_limiter.hh"
#include "gpu/shader.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

/** Small deterministic scene + BVH shared by the tests. */
struct Fixture
{
    Scene scene;
    Bvh bvh;

    explicit Fixture(const std::string &name = "BUNNY", float scale = 0.1f)
    {
        scene = buildScene(name, scale);
        bvh = Bvh::build(scene.triangles);
    }
};

GpuConfig
tinyConfig()
{
    GpuConfig cfg;
    cfg.imageWidth = 32;
    cfg.imageHeight = 32;
    cfg.numSms = 4;
    cfg.mem.numL1s = 4;
    return cfg;
}

TEST(GpuConfig, Table1Defaults)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.numSms, 16u);
    EXPECT_EQ(cfg.maxWarpsPerSm, 32u);
    EXPECT_EQ(cfg.warpSize, 32u);
    EXPECT_EQ(cfg.maxCtasPerSm, 16u);
    EXPECT_EQ(cfg.regsPerSm, 32768u);
    EXPECT_EQ(cfg.mem.l1Bytes, 16u * 1024u);
    EXPECT_EQ(cfg.mem.l1Ways, 0u); // fully associative
    EXPECT_EQ(cfg.mem.l1HitLatency, 39u);
    EXPECT_EQ(cfg.mem.l2Bytes, 128u * 1024u);
    EXPECT_EQ(cfg.mem.l2Ways, 16u);
    EXPECT_EQ(cfg.mem.l2HitLatency, 187u);
    EXPECT_EQ(cfg.rtUnitsPerSm, 1u);
    EXPECT_EQ(cfg.warpBufferSize, 1u);
    EXPECT_EQ(cfg.maxVirtualRaysPerSm, 4096u);
    EXPECT_EQ(cfg.imageWidth, 256u);
    EXPECT_EQ(cfg.maxBounces, 3u);
}

TEST(GpuConfig, ConvenienceConstructors)
{
    GpuConfig vtq = GpuConfig::virtualizedTreeletQueues();
    EXPECT_EQ(vtq.arch, RtArch::TreeletQueues);
    EXPECT_TRUE(vtq.rayVirtualization);
    EXPECT_GT(vtq.mem.l2ReservedBytes, 0u);

    GpuConfig pf = GpuConfig::treeletPrefetch();
    EXPECT_EQ(pf.arch, RtArch::TreeletPrefetch);
}

TEST(PathTracer, PrimaryRaysHitScene)
{
    Fixture f;
    PathTracer pt(f.scene, f.bvh, 3, 0.02f);
    uint32_t hits = 0;
    for (uint32_t p = 0; p < 64; p++) {
        PathState st = pt.startPath(p * 16 + 5, 32, 32);
        EXPECT_TRUE(st.alive);
        HitRecord h = f.bvh.intersectClosest(st.ray);
        hits += h.hit() ? 1 : 0;
    }
    // The auto-framed camera must actually see the scene.
    EXPECT_GT(hits, 32u);
}

TEST(PathTracer, ShadeTerminatesOnMiss)
{
    Fixture f;
    PathTracer pt(f.scene, f.bvh, 3, 0.02f);
    PathState st = pt.startPath(0, 32, 32);
    HitRecord miss;
    pt.shade(st, miss);
    EXPECT_FALSE(st.alive);
    EXPECT_EQ(st.radiance.x, f.scene.background.x);
}

TEST(PathTracer, BounceLimitRespected)
{
    Fixture f;
    PathTracer pt(f.scene, f.bvh, 2, 1e-6f);
    for (uint32_t p = 0; p < 256; p++) {
        PathState st = pt.startPath(p, 16, 16);
        uint32_t traces = 0;
        while (st.alive) {
            HitRecord h = f.bvh.intersectClosest(st.ray);
            pt.shade(st, h);
            traces++;
            ASSERT_LE(traces, 3u); // primary + 2 bounces
        }
    }
}

TEST(PathTracer, ThroughputCutoffKillsPaths)
{
    Fixture f;
    // A cutoff of 1.0 kills every path at its first diffuse bounce.
    PathTracer pt(f.scene, f.bvh, 3, 1.0f);
    for (uint32_t p = 0; p < 64; p++) {
        PathState st = pt.startPath(p, 16, 16);
        HitRecord h = f.bvh.intersectClosest(st.ray);
        pt.shade(st, h);
        EXPECT_FALSE(st.alive);
    }
}

TEST(RenderReference, Deterministic)
{
    Fixture f;
    auto fb1 = renderReference(f.scene, f.bvh, 16, 16, 3, 0.02f);
    auto fb2 = renderReference(f.scene, f.bvh, 16, 16, 3, 0.02f);
    ASSERT_EQ(fb1.size(), fb2.size());
    for (size_t i = 0; i < fb1.size(); i++)
        EXPECT_EQ(fb1[i], fb2[i]) << "pixel " << i;
}

TEST(BaselineSim, CompletesAndMatchesReference)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    Gpu gpu(cfg, f.scene, f.bvh);
    RunStats rs = gpu.run();

    EXPECT_GT(rs.cycles, 0u);
    EXPECT_EQ(rs.framebuffer.size(), 32u * 32u);

    auto ref = renderReference(f.scene, f.bvh, 32, 32, cfg.maxBounces,
                               cfg.contributionCutoff);
    ASSERT_EQ(ref.size(), rs.framebuffer.size());
    for (size_t i = 0; i < ref.size(); i++)
        ASSERT_EQ(ref[i], rs.framebuffer[i]) << "pixel " << i;
}

TEST(BaselineSim, DeterministicCycles)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    RunStats a = Gpu(cfg, f.scene, f.bvh).run();
    RunStats b = Gpu(cfg, f.scene, f.bvh).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.rt.nodeVisits, b.rt.nodeVisits);
    EXPECT_EQ(a.mem[size_t(MemClass::BvhNode)].l1Misses,
              b.mem[size_t(MemClass::BvhNode)].l1Misses);
}

TEST(BaselineSim, StatsArePlausible)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    RunStats rs = Gpu(cfg, f.scene, f.bvh).run();

    EXPECT_GT(rs.raysTraced, 1024u);  // 1024 primaries + secondaries
    EXPECT_EQ(rs.rt.raysCompleted, rs.raysTraced);
    EXPECT_GT(rs.rt.nodeVisits, rs.raysTraced); // several nodes per ray
    EXPECT_GT(rs.rt.leafVisits, 0u);
    EXPECT_GT(rs.aluLaneInstrs, 0u);
    EXPECT_EQ(rs.ctasLaunched, (32u * 32u) / cfg.ctaSize);
    EXPECT_EQ(rs.ctaSaves, 0u); // no virtualization in the baseline
    double simt = rs.simtEfficiency();
    EXPECT_GT(simt, 0.05);
    EXPECT_LE(simt, 1.0);
    // Baseline attributes every cycle to ray-stationary mode.
    EXPECT_EQ(rs.rt.modeCycles[size_t(TraversalMode::Initial)], 0u);
    EXPECT_EQ(rs.rt.modeCycles[size_t(TraversalMode::TreeletStationary)],
              0u);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::RayStationary)], 0u);
}

TEST(BaselineSim, BvhAccessesRecorded)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    RunStats rs = Gpu(cfg, f.scene, f.bvh).run();
    const auto &bvh_mem = rs.memClass(MemClass::BvhNode);
    EXPECT_GT(bvh_mem.l1Accesses, 0u);
    EXPECT_GT(rs.bvhL1MissRate, 0.0);
    EXPECT_LT(rs.bvhL1MissRate, 1.0);
    EXPECT_FALSE(rs.bvhMissSeries.empty());
}

TEST(BaselineSim, RunTwiceThrows)
{
    Fixture f;
    Gpu gpu(tinyConfig(), f.scene, f.bvh);
    gpu.run();
    EXPECT_THROW(gpu.run(), std::logic_error);
}

TEST(BaselineSim, NonBaselineArchRequiresFactory)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    cfg.arch = RtArch::TreeletQueues;
    EXPECT_THROW(Gpu(cfg, f.scene, f.bvh), std::invalid_argument);
}

TEST(BaselineSim, MismatchedL1CountRejected)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    cfg.mem.numL1s = 2; // != numSms
    EXPECT_THROW(Gpu(cfg, f.scene, f.bvh), std::invalid_argument);
}

TEST(BaselineSim, PartialWarpAtOddResolution)
{
    Fixture f;
    GpuConfig cfg = tinyConfig();
    cfg.imageWidth = 30; // 900 pixels: last CTA is partial
    cfg.imageHeight = 30;
    RunStats rs = Gpu(cfg, f.scene, f.bvh).run();
    EXPECT_EQ(rs.framebuffer.size(), 900u);
    auto ref = renderReference(f.scene, f.bvh, 30, 30, cfg.maxBounces,
                               cfg.contributionCutoff);
    for (size_t i = 0; i < ref.size(); i++)
        ASSERT_EQ(ref[i], rs.framebuffer[i]) << "pixel " << i;
}

TEST(RateLimiter, WidthOnePerCycle)
{
    RateLimiter rl(1);
    EXPECT_EQ(rl.book(10), 10u);
    EXPECT_EQ(rl.book(10), 11u);
    EXPECT_EQ(rl.book(10), 12u);
    EXPECT_EQ(rl.book(20), 20u);
    EXPECT_EQ(rl.nextFree(20), 21u);
}

TEST(RateLimiter, WiderWidths)
{
    RateLimiter rl(3);
    EXPECT_EQ(rl.book(5), 5u);
    EXPECT_EQ(rl.book(5), 5u);
    EXPECT_EQ(rl.book(5), 5u);
    EXPECT_EQ(rl.book(5), 6u);
    EXPECT_EQ(rl.nextFree(5), 6u);
    EXPECT_EQ(rl.nextFree(7), 7u);
}

} // anonymous namespace
} // namespace trt
