/**
 * @file
 * Telemetry-layer tests (DESIGN.md §12): the counter registry is the
 * single source of truth for serialization and sampled-counter
 * enumeration; telemetry off is bit-invariant (no RunStats change, no
 * files); telemetry on produces byte-identical traces across
 * TRT_SIM_THREADS and SIMD modes and across BVH widths' own runs; a
 * snapshot-resumed run's trace equals the uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bvh/bvh.hh"
#include "core/arch.hh"
#include "geom/simd.hh"
#include "gpu/run_stats_io.hh"
#include "gpu/sampled.hh"
#include "harness/harness.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/counter_registry.hh"
#include "telemetry/telemetry.hh"

namespace trt
{
namespace
{

namespace fs = std::filesystem;

fs::path
telemDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / ("trt_telem_" + name);
    fs::remove_all(p);
    return p;
}

std::string
slurp(const fs::path &p)
{
    std::ifstream is(p, std::ios::binary);
    EXPECT_TRUE(is) << "missing " << p;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    cfg.maxCtasPerSm = 2; // Force ray-virtualization traffic.
    return cfg;
}

GpuConfig
telemetrized(GpuConfig cfg, const fs::path &dir)
{
    cfg.telem.enabled = true;
    cfg.telem.trace = true;
    cfg.telem.everyCycles = 512;
    cfg.telem.outDir = dir.string();
    cfg.telem.outBase = "t";
    return cfg;
}

// ---- counter registry ----------------------------------------------

TEST(CounterRegistry, EveryCounterRoundTripsThroughRunStatsIo)
{
    // Stamp every registered counter with a distinct value...
    RunStats st;
    uint64_t next = 1;
    forEachRunCounter(st, [&](const CounterInfo &ci, auto &v) {
        EXPECT_FALSE(ci.name.empty());
        v = std::decay_t<decltype(v)>(next++);
    });
    ASSERT_GT(next, 40u) << "registry suspiciously small";

    // ...then prove save/load moves all of them, none twice.
    std::ostringstream os(std::ios::binary);
    RunStatsIo::save(os, st);
    std::istringstream is(os.str(), std::ios::binary);
    RunStats back;
    ASSERT_TRUE(RunStatsIo::load(is, back));
    uint64_t expect = 1;
    forEachRunCounter(back, [&](const CounterInfo &ci, auto &v) {
        EXPECT_EQ(uint64_t(v), expect++) << ci.name;
    });
    EXPECT_EQ(RunStatsIo::fingerprint(st), RunStatsIo::fingerprint(back));
}

TEST(CounterRegistry, NamesAreUniqueAndUnitted)
{
    RunStats st;
    std::vector<std::string> names;
    forEachRunCounter(st, [&](const CounterInfo &ci, auto &) {
        EXPECT_NE(ci.unit, nullptr) << ci.name;
        names.push_back(ci.name);
    });
    std::vector<std::string> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end())
        << "duplicate counter name registered";
}

TEST(CounterRegistry, WorkCountersMatchSampledEnumeration)
{
    // The sampler extrapolates exactly the Work-kind uint64 counters;
    // its public name list must be the registry's Work subset, in
    // order — this is what replaced the hand-maintained list.
    RunStats st;
    std::vector<std::string> work;
    forEachRunCounter(st, [&](const CounterInfo &ci, auto &v) {
        if (ci.kind == CounterKind::Work &&
            sizeof(v) == sizeof(uint64_t))
            work.push_back(ci.name);
    });
    EXPECT_EQ(work, sampleCounterNames());
}

TEST(CounterRegistry, HighWatersMergeByMaxNotSum)
{
    RtStats a, b;
    a.countTableHighWater = 7;
    b.countTableHighWater = 5;
    a.nodeVisits = 10;
    b.nodeVisits = 32;
    a.accumulate(b);
    EXPECT_EQ(a.countTableHighWater, 7u);
    EXPECT_EQ(a.nodeVisits, 42u);
}

// ---- off-by-default invariance -------------------------------------

TEST(Telemetry, OffByDefaultChangesNothingAndWritesNothing)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f);
    RunStats off = simulate(cfg, b.scene, b.bvh);

    fs::path dir = telemDir("invariance");
    RunStats on = simulate(telemetrized(cfg, dir), b.scene, b.bvh);

    // Observability only: bit-identical RunStats with telemetry on.
    EXPECT_EQ(RunStatsIo::fingerprint(off), RunStatsIo::fingerprint(on));
    EXPECT_TRUE(fs::exists(dir / "t.tsbin"));
    EXPECT_TRUE(fs::exists(dir / "t.trace.json"));

    // And with telemetry off, no output directory appears at all.
    fs::path ghost = telemDir("ghost");
    GpuConfig plain = cfg;
    plain.telem.outDir = ghost.string();
    simulate(plain, b.scene, b.bvh);
    EXPECT_FALSE(fs::exists(ghost));
}

TEST(Telemetry, ConfigFingerprintExcludesTelemetry)
{
    GpuConfig a = sized(GpuConfig::virtualizedTreeletQueues());
    GpuConfig b = telemetrized(a, telemDir("fp"));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// ---- trace determinism matrix --------------------------------------

/** Run CRNVL under @p cfg with the given thread count and SIMD mode,
 *  returning {tsbin bytes, trace.json bytes}. */
std::pair<std::string, std::string>
traceBytes(GpuConfig cfg, const fs::path &dir, uint32_t threads,
           bool simd, uint32_t bvh_width)
{
    bool simd_before = simdEnabled();
    setSimdEnabled(simd);
    BvhConfig bc;
    bc.width = bvh_width;
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f, bc);
    cfg = telemetrized(cfg, dir);
    cfg.simThreads = threads;
    simulate(cfg, b.scene, b.bvh);
    setSimdEnabled(simd_before);
    return {slurp(dir / "t.tsbin"), slurp(dir / "t.trace.json")};
}

class TelemetryWidth : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(TelemetryWidth, TraceBytesIdenticalAcrossThreadsAndSimd)
{
    uint32_t width = GetParam();
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());

    auto ref = traceBytes(cfg, telemDir("ref"), 1, simdEnabled(), width);
    EXPECT_FALSE(ref.first.empty());

    auto threaded =
        traceBytes(cfg, telemDir("thr"), 4, simdEnabled(), width);
    EXPECT_EQ(ref.first, threaded.first) << "tsbin across threads";
    EXPECT_EQ(ref.second, threaded.second) << "json across threads";

    if (simdCompiledIn()) {
        auto scalar = traceBytes(cfg, telemDir("sca"), 4, false, width);
        EXPECT_EQ(ref.first, scalar.first) << "tsbin across SIMD";
        EXPECT_EQ(ref.second, scalar.second) << "json across SIMD";
    }
}

INSTANTIATE_TEST_SUITE_P(AcrossBvhWidths, TelemetryWidth,
                         ::testing::Values(4u, 8u));

// ---- snapshot/resume continuity ------------------------------------

TEST(Telemetry, ResumedTraceEqualsUninterruptedTrace)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    const SceneBundle &b = getSceneBundle("CRNVL", 0.25f);

    fs::path whole_dir = telemDir("whole");
    RunStats whole =
        simulate(telemetrized(cfg, whole_dir), b.scene, b.bvh);
    std::string whole_bin = slurp(whole_dir / "t.tsbin");
    std::string whole_json = slurp(whole_dir / "t.trace.json");

    // Halt mid-run: no files may exist yet (no partial traces)...
    fs::path part_dir = telemDir("part");
    fs::path snap_dir = telemDir("snaps");
    fs::create_directories(snap_dir);
    SnapshotPolicy halt;
    halt.dir = snap_dir.string();
    halt.worldFp = 0x7e1e;
    halt.haltAtCycle = whole.cycles / 2;
    GpuConfig tcfg = telemetrized(cfg, part_dir);
    EXPECT_THROW(
        simulateWithSnapshots(tcfg, b.scene, b.bvh, halt, false),
        SimulationHalted);
    EXPECT_FALSE(fs::exists(part_dir / "t.tsbin"));

    // ...and the resumed run must write the full byte-identical trace:
    // restored streams + its own, no gap and no duplicate at the seam.
    SnapshotPolicy resume;
    resume.dir = snap_dir.string();
    resume.worldFp = 0x7e1e;
    GpuConfig rcfg = tcfg;
    rcfg.simThreads = 4; // Resume under a different fan-out, too.
    RunStats resumed =
        simulateWithSnapshots(rcfg, b.scene, b.bvh, resume, true);
    EXPECT_EQ(RunStatsIo::fingerprint(whole),
              RunStatsIo::fingerprint(resumed));
    EXPECT_EQ(whole_bin, slurp(part_dir / "t.tsbin"));
    EXPECT_EQ(whole_json, slurp(part_dir / "t.trace.json"));
}

// ---- telemetry state in snapshots ----------------------------------

TEST(Telemetry, SaveStateRefusesUndrainedChannels)
{
    TelemetryConfig tc;
    tc.enabled = true;
    Telemetry t(tc, 2);
    t.channel(0).samplingOn = true;
    t.channel(0).every = 64;
    t.channel(0).startSample(64);
    Serializer s;
    EXPECT_THROW(t.saveState(s), SnapshotError);
    t.commit();
    EXPECT_NO_THROW(t.saveState(s));
}

TEST(Telemetry, StateRoundTripsThroughSnapshot)
{
    TelemetryConfig tc;
    tc.enabled = true;
    tc.trace = true;
    tc.everyCycles = 64;
    Telemetry t(tc, 2);
    for (uint32_t sm = 0; sm < 2; sm++) {
        t.channel(sm).samplingOn = true;
        t.channel(sm).eventsOn = true;
        t.channel(sm).every = 64;
    }
    TelemSample &s0 = t.channel(1).startSample(64);
    s0.raysHeld = 5;
    s0.nodeVisits = 99;
    t.channel(0).event(70, TelemEventKind::TreeletSwitch, 3, 0);
    TelemGpuSample g;
    g.cycle = 64;
    g.dramReadBytes = 4096;
    t.pushGpuSample(g);
    t.commit();

    Serializer ser;
    t.saveState(ser);
    Telemetry back(tc, 2);
    Deserializer d(ser.bytes());
    back.loadState(d);

    ASSERT_EQ(back.samples().size(), 1u);
    EXPECT_EQ(back.samples()[0].sm, 1u);
    EXPECT_EQ(back.samples()[0].nodeVisits, 99u);
    ASSERT_EQ(back.gpuSamples().size(), 1u);
    EXPECT_EQ(back.gpuSamples()[0].dramReadBytes, 4096u);
    ASSERT_EQ(back.events().size(), 1u);
    EXPECT_EQ(back.events()[0].kind, TelemEventKind::TreeletSwitch);
    // Sampling cursors restored: the next due cycles are preserved.
    EXPECT_EQ(back.channel(1).nextSampleAt, t.channel(1).nextSampleAt);
}

} // anonymous namespace
} // namespace trt
