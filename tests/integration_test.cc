/**
 * @file
 * Cross-module integration tests: the shape claims the paper's
 * evaluation rests on, checked at test scale. These are the "does the
 * reproduction reproduce" tests — slower than unit tests but still
 * seconds, not minutes (64x64 frames, reduced scene scale).
 */

#include <gtest/gtest.h>

#include "analytic/analytic.hh"
#include "core/arch.hh"
#include "energy/energy.hh"
#include "harness/harness.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

/** Shared bundle at integration-test scale. */
const SceneBundle &
bundle(const std::string &name = "CRNVL")
{
    return getSceneBundle(name, 0.25f);
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    // A 64x64 frame only has 256 rays per SM; cap CTA slots so the
    // baseline occupancy (2 CTAs x 64 threads = 128 rays) is below
    // that, putting virtualization in the regime it targets.
    cfg.maxCtasPerSm = 2;
    return cfg;
}

/** Run cache keyed by (scene, arch-tag) so expensive sims run once. */
RunStats
cachedRun(const std::string &scene, const std::string &tag,
          const GpuConfig &cfg)
{
    static std::map<std::string, RunStats> cache;
    auto key = scene + "/" + tag;
    auto it = cache.find(key);
    if (it == cache.end()) {
        const SceneBundle &b = bundle(scene);
        it = cache.emplace(key, simulate(cfg, b.scene, b.bvh)).first;
    }
    return it->second;
}

TEST(Integration, VtqBeatsBaselineOnDivergentScene)
{
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_LT(rv.cycles, rb.cycles);
    // And with much better SIMT efficiency (Fig. 13b direction).
    EXPECT_GT(rv.simtEfficiency(), rb.simtEfficiency() * 1.3);
}

TEST(Integration, AllArchesIdenticalImageAtScale)
{
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));
    RunStats rp = cachedRun("CRNVL", "pref",
                            sized(GpuConfig::treeletPrefetch()));
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_EQ(rb.framebuffer, rp.framebuffer);
    EXPECT_EQ(rb.framebuffer, rv.framebuffer);
}

TEST(Integration, PrefetcherIssuesAndMostlyHits)
{
    RunStats rp = cachedRun("CRNVL", "pref",
                            sized(GpuConfig::treeletPrefetch()));
    ASSERT_GT(rp.rt.prefetchLines, 0u);
    double used = double(rp.rt.prefetchUsedLines) /
                  double(rp.rt.prefetchLines);
    // Chou et al. report 56.5% used; we require the same regime.
    EXPECT_GT(used, 0.25);
    EXPECT_LT(used, 1.0);
}

TEST(Integration, TreeletPhaseLowersMissRateWhileActive)
{
    // Fig. 11 direction: permanently treelet-stationary traversal has
    // a lower *early* BVH miss rate than the baseline.
    GpuConfig tstat = sized(GpuConfig::virtualizedTreeletQueues());
    tstat.groupUnderpopulated = false;
    tstat.repackThreshold = 0;
    RunStats rt = cachedRun("CRNVL", "tstat", tstat);
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));

    ASSERT_GE(rt.bvhMissSeries.size(), 8u);
    ASSERT_GE(rb.bvhMissSeries.size(), 8u);
    // The populated-queue phase is brief in cycles at test scale, so
    // compare the *deepest dip* in the first half against the
    // baseline's own minimum: treelet-stationary mode must reach a
    // lower miss rate than the baseline ever does (the paper's 9% dip).
    auto min_first_half = [](const std::vector<double> &s) {
        double m = 1.0;
        for (size_t i = 0; i < s.size() / 2; i++)
            if (s[i] > 0.0)
                m = std::min(m, s[i]);
        return m;
    };
    EXPECT_LT(min_first_half(rt.bvhMissSeries),
              min_first_half(rb.bvhMissSeries));
}

TEST(Integration, GroupingBeatsNaive)
{
    // Fig. 12 direction: grouping underpopulated queues is much faster
    // than dispatching every queue as a treelet warp.
    GpuConfig naive = sized(GpuConfig::virtualizedTreeletQueues());
    naive.groupUnderpopulated = false;
    naive.repackThreshold = 0;
    GpuConfig grouped = sized(GpuConfig::virtualizedTreeletQueues());
    grouped.repackThreshold = 0;

    RunStats rn = cachedRun("CRNVL", "tstat", naive);
    RunStats rg = cachedRun("CRNVL", "grouped", grouped);
    EXPECT_LT(rg.cycles, rn.cycles);
}

TEST(Integration, RepackingImprovesOverNoRepacking)
{
    GpuConfig norepack = sized(GpuConfig::virtualizedTreeletQueues());
    norepack.repackThreshold = 0;
    RunStats rn = cachedRun("CRNVL", "grouped", norepack);
    RunStats rr = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_LT(rr.cycles, rn.cycles);
    EXPECT_GT(rr.simtEfficiency(), rn.simtEfficiency());
}

TEST(Integration, VirtualizationRaisesConcurrentRays)
{
    GpuConfig off = sized(GpuConfig::virtualizedTreeletQueues());
    off.rayVirtualization = false;
    RunStats ro = cachedRun("CRNVL", "novirt", off);
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_GT(rv.rt.maxConcurrentRays, ro.rt.maxConcurrentRays);
}

TEST(Integration, VirtualizationCostIsModest)
{
    // Fig. 16 direction: real CTA save/restore costs a bounded amount
    // versus free virtualization.
    GpuConfig freev = sized(GpuConfig::virtualizedTreeletQueues());
    freev.virtualizationFree = true;
    RunStats rf = cachedRun("CRNVL", "freevirt", freev);
    RunStats rr = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_GE(rr.cycles, rf.cycles);
    EXPECT_LT(double(rr.cycles), double(rf.cycles) * 1.5);
}

TEST(Integration, EnergyFollowsCycles)
{
    // Fig. 17 direction: the faster VTQ run burns less energy.
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EnergyReport eb = computeEnergy(rb, 16);
    EnergyReport ev = computeEnergy(rv, 16);
    EXPECT_LT(ev.total(), eb.total());
    EXPECT_GT(ev.virtualizationShare(), 0.0);
    EXPECT_LT(ev.virtualizationShare(), 0.4);
}

TEST(Integration, AnalyticModelPredictsGainDirection)
{
    // Fig. 5 direction: the analytical model must predict >1x at high
    // concurrency for a divergent scene.
    const SceneBundle &b = bundle("CRNVL");
    auto traces = recordTraces(b.scene, b.bvh, 64, 64, 3, 0.02f, 8000);
    AnalyticModel m(std::move(traces), b.bvhStats.avgTreeletNodes);
    EXPECT_GT(m.speedup(4096), m.speedup(32));
    EXPECT_GT(m.speedup(4096), 1.0);
}

TEST(Integration, ModeBreakdownCoversAllTests)
{
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    uint64_t total = 0;
    for (auto t : rv.rt.isectTests)
        total += t;
    // Every intersection test is attributed to exactly one mode; the
    // total must match the baseline run (same functional work).
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));
    uint64_t base_total = 0;
    for (auto t : rb.rt.isectTests)
        base_total += t;
    EXPECT_EQ(total, base_total);
}

TEST(Integration, NodeVisitCountsInvariantAcrossArches)
{
    // Traversal work is functional, so every architecture performs the
    // same node/leaf visits; only the timing differs.
    RunStats rb = cachedRun("CRNVL", "base", sized(GpuConfig{}));
    RunStats rp = cachedRun("CRNVL", "pref",
                            sized(GpuConfig::treeletPrefetch()));
    RunStats rv = cachedRun("CRNVL", "vtq",
                            sized(GpuConfig::virtualizedTreeletQueues()));
    EXPECT_EQ(rb.rt.nodeVisits, rp.rt.nodeVisits);
    EXPECT_EQ(rb.rt.nodeVisits, rv.rt.nodeVisits);
    EXPECT_EQ(rb.rt.leafVisits, rv.rt.leafVisits);
}

} // anonymous namespace
} // namespace trt
