/**
 * @file
 * Determinism of the SM-parallel simulator: RunStats must be
 * bit-identical between TRT_SIM_THREADS=1 and any higher thread count.
 * This is the hard acceptance bar of the two-phase memory interface —
 * worker threads may only change wall-clock time, never results. The
 * comparison uses RunStatsIo::fingerprint (a hash of the full
 * serialized RunStats: cycles, framebuffer, every counter, the miss
 * series), plus targeted field checks so a mismatch names the culprit.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "geom/simd.hh"
#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"

namespace trt
{
namespace
{

const SceneBundle &
bundle(const std::string &name)
{
    return getSceneBundle(name, 0.25f);
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    // Keep baseline occupancy below the ray count so virtualization
    // (CTA save/restore traffic) is exercised, as in integration_test.
    cfg.maxCtasPerSm = 2;
    return cfg;
}

RunStats
runWithThreads(const std::string &scene, GpuConfig cfg, uint32_t threads)
{
    cfg.simThreads = threads;
    const SceneBundle &b = bundle(scene);
    return simulate(cfg, b.scene, b.bvh);
}

void
expectIdentical(const RunStats &serial, const RunStats &parallel,
                const std::string &what)
{
    // Field checks first: a fingerprint mismatch alone says nothing
    // about where the divergence started.
    EXPECT_EQ(serial.cycles, parallel.cycles) << what;
    EXPECT_EQ(serial.framebuffer, parallel.framebuffer) << what;
    EXPECT_EQ(serial.bvhMissSeries, parallel.bvhMissSeries) << what;
    EXPECT_EQ(serial.rt.raysCompleted, parallel.rt.raysCompleted) << what;
    EXPECT_EQ(serial.rt.activeLaneCycles, parallel.rt.activeLaneCycles)
        << what;
    EXPECT_EQ(serial.rt.isectTests, parallel.rt.isectTests) << what;
    EXPECT_EQ(serial.rt.raysEnqueued, parallel.rt.raysEnqueued) << what;
    EXPECT_EQ(serial.aluLaneInstrs, parallel.aluLaneInstrs) << what;
    EXPECT_EQ(serial.ctaSaves, parallel.ctaSaves) << what;
    EXPECT_EQ(serial.ctaRestores, parallel.ctaRestores) << what;
    for (size_t c = 0; c < serial.mem.size(); c++) {
        EXPECT_EQ(serial.mem[c].l1Accesses, parallel.mem[c].l1Accesses)
            << what << " class " << c;
        EXPECT_EQ(serial.mem[c].l2Misses, parallel.mem[c].l2Misses)
            << what << " class " << c;
        EXPECT_EQ(serial.mem[c].dramAccesses,
                  parallel.mem[c].dramAccesses)
            << what << " class " << c;
    }
    // The blanket check: every serialized byte.
    EXPECT_EQ(RunStatsIo::fingerprint(serial),
              RunStatsIo::fingerprint(parallel))
        << what;
}

class DeterminismScene : public ::testing::TestWithParam<const char *>
{
};

/** The proposed architecture (heaviest memory machinery: treelet
 *  queues, preloads, ray virtualization) across >= 3 scenes. */
TEST_P(DeterminismScene, VtqBitIdenticalAt4Threads)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    RunStats serial = runWithThreads(GetParam(), cfg, 1);
    RunStats parallel = runWithThreads(GetParam(), cfg, 4);
    expectIdentical(serial, parallel,
                    std::string("vtq/") + GetParam() + " 1 vs 4");
}

INSTANTIATE_TEST_SUITE_P(AcrossScenes, DeterminismScene,
                         ::testing::Values("CRNVL", "BUNNY", "SPNZA"));

TEST(Determinism, BaselineAndPrefetchArches)
{
    GpuConfig base = sized(GpuConfig{});
    expectIdentical(runWithThreads("CRNVL", base, 1),
                    runWithThreads("CRNVL", base, 4),
                    "baseline/CRNVL 1 vs 4");
    GpuConfig pref = sized(GpuConfig::treeletPrefetch());
    expectIdentical(runWithThreads("CRNVL", pref, 1),
                    runWithThreads("CRNVL", pref, 4),
                    "prefetch/CRNVL 1 vs 4");
}

TEST(Determinism, ThreadCountSweep)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    RunStats serial = runWithThreads("CRNVL", cfg, 1);
    for (uint32_t t : {2u, 8u}) {
        expectIdentical(serial, runWithThreads("CRNVL", cfg, t),
                        "vtq/CRNVL 1 vs " + std::to_string(t));
    }
}

/** Restores the process-wide SIMD toggle on scope exit. */
struct SimdGuard
{
    ~SimdGuard() { setSimdEnabled(true); }
};

/** The SIMD intersection kernels are bit-identical to the scalar ones
 *  (DESIGN.md §6), so flipping the runtime toggle — combined with any
 *  simulator thread count — must reproduce the exact same RunStats.
 *  Scene-parameterized; together with the arch test below this spans
 *  {simd on, off} x {1, 4, 8 threads} x 3 scenes x 3 architectures. */
TEST_P(DeterminismScene, SimdToggleBitIdenticalAcrossThreadCounts)
{
    if (!simdCompiledIn())
        GTEST_SKIP() << "scalar-only build (TRT_SIMD=OFF)";
    SimdGuard guard;
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    setSimdEnabled(true);
    RunStats simd_on = runWithThreads(GetParam(), cfg, 1);
    setSimdEnabled(false);
    for (uint32_t t : {1u, 4u, 8u}) {
        expectIdentical(simd_on, runWithThreads(GetParam(), cfg, t),
                        std::string("vtq/") + GetParam() +
                            " simd-on vs simd-off @" +
                            std::to_string(t) + " threads");
    }
}

TEST(Determinism, SimdToggleBaselineAndPrefetchArches)
{
    if (!simdCompiledIn())
        GTEST_SKIP() << "scalar-only build (TRT_SIMD=OFF)";
    SimdGuard guard;
    for (auto make : {+[] { return GpuConfig{}; },
                      +[] { return GpuConfig::treeletPrefetch(); }}) {
        GpuConfig cfg = sized(make());
        setSimdEnabled(true);
        RunStats simd_on = runWithThreads("CRNVL", cfg, 1);
        setSimdEnabled(false);
        expectIdentical(simd_on, runWithThreads("CRNVL", cfg, 4),
                        std::string(rtArchName(cfg.arch)) +
                            "/CRNVL simd-on@1 vs simd-off@4");
        setSimdEnabled(true);
    }
}

RunStats
runWide8(const std::string &scene, GpuConfig cfg, uint32_t threads)
{
    cfg.simThreads = threads;
    BvhConfig bc;
    bc.width = 8;
    const SceneBundle &b = getSceneBundle(scene, 0.25f, bc);
    return simulate(cfg, b.scene, b.bvh);
}

/** The compressed 8-wide backend under the full machinery: worker
 *  threads may only change wall-clock time, never results. */
TEST_P(DeterminismScene, Wide8BitIdenticalAcrossThreadCounts)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    RunStats serial = runWide8(GetParam(), cfg, 1);
    for (uint32_t t : {4u, 8u}) {
        expectIdentical(serial, runWide8(GetParam(), cfg, t),
                        std::string("vtq-w8/") + GetParam() + " 1 vs " +
                            std::to_string(t));
    }
}

/** ISSUE acceptance: the 8-wide tree dequantizes to conservative
 *  bounds, so traversal may visit extra nodes but every closest hit —
 *  and so the rendered frame — matches the 4-wide build exactly. */
TEST_P(DeterminismScene, Wide8FrameIdenticalToWide4)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    RunStats four = runWithThreads(GetParam(), cfg, 1);
    RunStats eight = runWide8(GetParam(), cfg, 1);
    EXPECT_EQ(four.framebuffer, eight.framebuffer)
        << GetParam() << ": width-8 frame differs from width-4";
    EXPECT_EQ(four.rt.raysCompleted, eight.rt.raysCompleted);
}

/** The shared predictor trains through per-SM queues flushed at cycle
 *  boundaries, so its lookups see the same table regardless of how SM
 *  ticks are distributed over worker threads. */
TEST(Determinism, SharedPredictorBitIdentical)
{
    GpuConfig cfg = sized(GpuConfig::forPolicy(DispatchPolicyKind::Predict));
    cfg.predictShared = true;
    RunStats serial = runWithThreads("CRNVL", cfg, 1);
    for (uint32_t t : {4u, 8u}) {
        expectIdentical(serial, runWithThreads("CRNVL", cfg, t),
                        "predict-shared/CRNVL 1 vs " + std::to_string(t));
    }
}

/** simThreads must never reach the run-cache key: cached serial
 *  results stay valid for parallel runs and vice versa. */
TEST(Determinism, SimThreadsExcludedFromFingerprint)
{
    GpuConfig a = sized(GpuConfig::virtualizedTreeletQueues());
    GpuConfig b = a;
    b.simThreads = 8;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

} // anonymous namespace
} // namespace trt
