/**
 * @file
 * Sampled-simulation tests (DESIGN.md §8): the stratified extrapolation
 * math on known synthetic interval streams, SampleAccumulator snapshot
 * round-trips, determinism of sampled runs across TRT_SIM_THREADS and
 * the SIMD toggle, crash/resume of a mid-flight sampled run, the
 * all-detailed small-scene guarantee, and run-cache separation between
 * sampled and full results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/arch.hh"
#include "geom/simd.hh"
#include "gpu/run_stats_io.hh"
#include "gpu/sampled.hh"
#include "harness/harness.hh"
#include "harness/run_cache.hh"
#include "snapshot/snapshot.hh"
#include "stats/sampling.hh"

namespace trt
{
namespace
{

namespace fs = std::filesystem;

// ---- stratified extrapolation on synthetic streams -----------------

TEST(StratifiedExtrapolate, ExactWhenStrataEqualWork)
{
    // All-detailed degenerate case: every unit of work measured, the
    // estimate is the exact sum and the CI collapses to zero.
    Estimate e = stratifiedExtrapolate({100, 200}, {10, 20}, {10, 20});
    EXPECT_DOUBLE_EQ(e.value, 300.0);
    EXPECT_DOUBLE_EQ(e.ci95, 0.0);
}

TEST(StratifiedExtrapolate, HandComputedTwoStrata)
{
    // Rates 10 and 30 over strata 50 and 100: 10*50 + 30*100 = 3500.
    // The pooled ratio-of-sums would give (400/20)*150 = 3000 — the
    // stratified estimator must weight by represented, not measured,
    // work.
    Estimate e = stratifiedExtrapolate({100, 300}, {10, 10}, {50, 100});
    EXPECT_DOUBLE_EQ(e.value, 3500.0);
    // CI: rates {10, 30}, sd = sqrt(((10-20)^2 + (30-20)^2)/1),
    // t95(df=1) = 12.706, scaled by sqrt(50^2 + 100^2).
    double sd = std::sqrt(200.0);
    double expect_ci = 12.706 * sd * std::sqrt(50.0 * 50.0 + 100.0 * 100.0);
    EXPECT_NEAR(e.ci95, expect_ci, 1e-9);
}

TEST(StratifiedExtrapolate, ZeroWorkIntervalFallsBackToPooledRate)
{
    // Second interval observed nothing: its stratum is charged at the
    // pooled rate 100/10 = 10, so 10*10 + 10*20 = 300.
    Estimate e = stratifiedExtrapolate({100, 0}, {10, 0}, {10, 20});
    EXPECT_DOUBLE_EQ(e.value, 300.0);
}

TEST(StratifiedExtrapolate, ResidualWorkChargedAtPooledRate)
{
    // Strata cover the measured work exactly, plus 30 residual units
    // no interval represents: 100 + 300 + (400/20)*30 = 1000. The
    // residual also disqualifies the exact-degenerate shortcut.
    Estimate e =
        stratifiedExtrapolate({100, 300}, {10, 10}, {10, 10}, 30);
    EXPECT_DOUBLE_EQ(e.value, 1000.0);
    EXPECT_GT(e.ci95, 0.0);
}

TEST(StratifiedExtrapolate, NoObservedWorkReturnsRawSum)
{
    Estimate e = stratifiedExtrapolate({7, 8}, {0, 0}, {10, 20});
    EXPECT_DOUBLE_EQ(e.value, 15.0);
    EXPECT_DOUBLE_EQ(e.ci95, 0.0);
}

TEST(StratifiedExtrapolate, LengthMismatchThrows)
{
    EXPECT_THROW(stratifiedExtrapolate({1}, {1, 2}, {1, 2}),
                 std::invalid_argument);
    EXPECT_THROW(stratifiedExtrapolate({1, 2}, {1, 2}, {1}),
                 std::invalid_argument);
}

TEST(StudentT95, KnownCriticalValues)
{
    EXPECT_DOUBLE_EQ(studentT95(0), 0.0);
    EXPECT_DOUBLE_EQ(studentT95(1), 12.706);
    EXPECT_DOUBLE_EQ(studentT95(5), 2.571);
    EXPECT_DOUBLE_EQ(studentT95(30), 2.042);
    EXPECT_DOUBLE_EQ(studentT95(31), 1.96);
    EXPECT_DOUBLE_EQ(studentT95(1000), 1.96);
}

// ---- SampleAccumulator ---------------------------------------------

SampleInterval
interval(uint64_t cycles, uint64_t work, std::vector<uint64_t> deltas)
{
    SampleInterval iv;
    iv.cycles = cycles;
    iv.work = work;
    iv.deltas = std::move(deltas);
    return iv;
}

TEST(SampleAccumulator, AccumulatesAndExtrapolates)
{
    SampleAccumulator acc;
    acc.add(interval(100, 10, {50, 1}));
    acc.closeStratum(50);
    acc.add(interval(300, 10, {150, 3}));
    acc.closeStratum(100);
    EXPECT_EQ(acc.intervals(), 2u);
    EXPECT_EQ(acc.measuredCycles(), 400u);
    EXPECT_EQ(acc.measuredWork(), 20u);
    EXPECT_DOUBLE_EQ(acc.extrapolateCycles().value, 3500.0);
    std::vector<Estimate> c = acc.extrapolateCounters();
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0].value, 1750.0); // rates 5, 15 over 50, 100
    EXPECT_DOUBLE_EQ(c[1].value, 35.0);   // rates .1, .3 over 50, 100
}

TEST(SampleAccumulator, CounterCountMismatchThrows)
{
    SampleAccumulator acc;
    acc.add(interval(1, 1, {1, 2}));
    EXPECT_THROW(acc.add(interval(1, 1, {1})), std::invalid_argument);
}

TEST(SampleAccumulator, SaveLoadRoundTripsEstimates)
{
    SampleAccumulator acc;
    acc.add(interval(100, 10, {50, 1}));
    acc.closeStratum(50);
    acc.add(interval(300, 10, {150, 3}));
    acc.closeStratum(80);
    acc.setResidualWork(20);

    Serializer s;
    acc.saveState(s);
    Deserializer d(s.bytes());
    SampleAccumulator back;
    back.loadState(d);

    EXPECT_EQ(back.intervals(), acc.intervals());
    EXPECT_EQ(back.measuredCycles(), acc.measuredCycles());
    EXPECT_EQ(back.measuredWork(), acc.measuredWork());
    EXPECT_EQ(back.residualWork(), acc.residualWork());
    EXPECT_EQ(back.samples()[1].stratumWork, 80u);
    // The reloaded accumulator must extrapolate bit-identically.
    EXPECT_DOUBLE_EQ(back.extrapolateCycles().value,
                     acc.extrapolateCycles().value);
    EXPECT_DOUBLE_EQ(back.extrapolateCycles().ci95,
                     acc.extrapolateCycles().ci95);
}

// ---- end-to-end sampled runs ---------------------------------------

const SceneBundle &
bundle(const std::string &name)
{
    return getSceneBundle(name, 0.25f);
}

GpuConfig
sized(GpuConfig cfg)
{
    cfg.imageWidth = cfg.imageHeight = 64;
    // Occupancy below the ray count so virtualization is exercised.
    cfg.maxCtasPerSm = 2;
    return cfg;
}

/** A schedule small enough that 64x64 scenes (16 CTAs) really sample:
 *  fast-forward legs and warm-ups run instead of the all-detailed
 *  small-scene bypass. */
SampleConfig
samplingConfig()
{
    SampleConfig sc;
    sc.enabled = true;
    sc.measureCtas = 2;
    sc.targetIntervals = 4;
    sc.warmupCycles = 2000;
    return sc;
}

RunStats
runSampledWith(const std::string &scene, GpuConfig cfg, uint32_t threads,
               const SampleConfig &sc)
{
    cfg.simThreads = threads;
    const SceneBundle &b = bundle(scene);
    return simulateSampled(cfg, b.scene, b.bvh, sc);
}

class SampledScene : public ::testing::TestWithParam<const char *>
{
};

/** Sampled runs must be bit-identical across simulator thread counts:
 *  fast-forward legs, warm-up boundaries, interval placement and the
 *  IEEE extrapolation arithmetic are all serial-commit decisions. */
TEST_P(SampledScene, BitIdenticalAcrossSimThreads)
{
    SampleConfig sc = samplingConfig();
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    RunStats serial = runSampledWith(GetParam(), cfg, 1, sc);
    ASSERT_TRUE(serial.sampled.enabled);
    EXPECT_GT(serial.sampled.intervals, 1u);
    for (uint32_t t : {2u, 4u}) {
        RunStats parallel = runSampledWith(GetParam(), cfg, t, sc);
        EXPECT_EQ(serial.cycles, parallel.cycles) << t << " threads";
        EXPECT_EQ(RunStatsIo::fingerprint(serial),
                  RunStatsIo::fingerprint(parallel))
            << GetParam() << " sampled 1 vs " << t << " threads";
    }
}

TEST_P(SampledScene, BitIdenticalAcrossSimdToggle)
{
    if (!simdCompiledIn())
        GTEST_SKIP() << "scalar-only build (TRT_SIMD=OFF)";
    struct SimdGuard
    {
        ~SimdGuard() { setSimdEnabled(true); }
    } guard;
    SampleConfig sc = samplingConfig();
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    setSimdEnabled(true);
    RunStats simd_on = runSampledWith(GetParam(), cfg, 1, sc);
    setSimdEnabled(false);
    RunStats simd_off = runSampledWith(GetParam(), cfg, 4, sc);
    EXPECT_EQ(RunStatsIo::fingerprint(simd_on),
              RunStatsIo::fingerprint(simd_off))
        << GetParam() << " sampled simd-on@1 vs simd-off@4";
}

INSTANTIATE_TEST_SUITE_P(AcrossScenes, SampledScene,
                         ::testing::Values("CRNVL", "BUNNY"));

TEST(Sampled, BaselineAndPrefetchArchesDeterministic)
{
    SampleConfig sc = samplingConfig();
    for (auto make : {+[] { return GpuConfig{}; },
                      +[] { return GpuConfig::treeletPrefetch(); }}) {
        GpuConfig cfg = sized(make());
        RunStats serial = runSampledWith("CRNVL", cfg, 1, sc);
        RunStats parallel = runSampledWith("CRNVL", cfg, 4, sc);
        EXPECT_EQ(RunStatsIo::fingerprint(serial),
                  RunStatsIo::fingerprint(parallel))
            << rtArchName(cfg.arch);
    }
}

/** Scenes smaller than one sampling schedule (measureCtas *
 *  targetIntervals CTAs) run entirely detailed: exact cycles and
 *  counters, zero confidence interval. This is the property the CI
 *  accuracy gate leans on. */
TEST(Sampled, SmallSceneIsExact)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    const SceneBundle &b = bundle("BUNNY");
    RunStats full = simulate(cfg, b.scene, b.bvh);
    SampleConfig sc; // default schedule: 32 * 8 CTAs >> 16 CTAs
    sc.enabled = true;
    RunStats sampled = simulateSampled(cfg, b.scene, b.bvh, sc);
    ASSERT_TRUE(sampled.sampled.enabled);
    EXPECT_EQ(sampled.cycles, full.cycles);
    EXPECT_DOUBLE_EQ(sampled.sampled.cyclesCi95, 0.0);
    EXPECT_EQ(sampled.rt.raysCompleted, full.rt.raysCompleted);
    EXPECT_EQ(sampled.rt.nodeVisits, full.rt.nodeVisits);
    EXPECT_EQ(sampled.framebuffer, full.framebuffer);
}

// ---- crash/resume of a mid-flight sampled run ----------------------

fs::path
snapDir(const std::string &name)
{
    fs::path p = fs::path(::testing::TempDir()) / ("trt_sampled_" + name);
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

TEST(SampledSnapshot, ResumeBitIdenticalToUninterrupted)
{
    SampleConfig sc = samplingConfig();
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = bundle("CRNVL");
    RunStats reference = simulateSampled(cfg, b.scene, b.bvh, sc);

    fs::path dir = snapDir("resume");
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = 0xBEEF;
    halt.haltAtCycle = 4000;
    bool halted = false;
    try {
        simulateSampled(cfg, b.scene, b.bvh, sc, halt, false);
    } catch (const SimulationHalted &) {
        halted = true;
    }
    ASSERT_TRUE(halted) << "halt cycle never reached — scene too small";

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = 0xBEEF;
    GpuConfig rcfg = cfg;
    rcfg.simThreads = 4; // resume under a different thread count
    RunStats resumed =
        simulateSampled(rcfg, b.scene, b.bvh, sc, resume, true);
    EXPECT_EQ(reference.cycles, resumed.cycles);
    EXPECT_EQ(RunStatsIo::fingerprint(reference),
              RunStatsIo::fingerprint(resumed));
}

TEST(SampledSnapshot, SampleConfigMismatchThrows)
{
    SampleConfig sc = samplingConfig();
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = bundle("CRNVL");

    fs::path dir = snapDir("cfg_mismatch");
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = 0xF00D;
    halt.haltAtCycle = 4000;
    EXPECT_THROW(simulateSampled(cfg, b.scene, b.bvh, sc, halt, false),
                 SimulationHalted);

    // The snapshot holds mid-flight sampler state under sc's schedule;
    // resuming under different TRT_SAMPLE_* parameters must refuse
    // rather than blend two schedules into one estimate.
    SampleConfig other = sc;
    other.measureCtas = 3;
    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = 0xF00D;
    EXPECT_THROW(
        simulateSampled(cfg, b.scene, b.bvh, other, resume, true),
        SnapshotError);
}

TEST(SampledSnapshot, FullRunSnapshotRefusedUnderSampling)
{
    GpuConfig cfg = sized(GpuConfig::virtualizedTreeletQueues());
    cfg.simThreads = 1;
    const SceneBundle &b = bundle("CRNVL");

    fs::path dir = snapDir("full_to_sampled");
    SnapshotPolicy halt;
    halt.dir = dir.string();
    halt.worldFp = 0xCAFE;
    halt.haltAtCycle = 4000;
    EXPECT_THROW(simulateWithSnapshots(cfg, b.scene, b.bvh, halt, false),
                 SimulationHalted);

    SnapshotPolicy resume;
    resume.dir = dir.string();
    resume.worldFp = 0xCAFE;
    SampleConfig sc = samplingConfig();
    EXPECT_THROW(simulateSampled(cfg, b.scene, b.bvh, sc, resume, true),
                 SnapshotError);
}

// ---- run-cache separation ------------------------------------------

/** Restores an env var on scope exit (mirrors harness_test.cc). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        if (const char *old = getenv(name)) {
            had_ = true;
            old_ = old;
        }
        setenv(name, value, 1);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_, old_;
    bool had_ = false;
};

TEST(SampledRunCache, FingerprintSeparatesSampledFromFull)
{
    GpuConfig cfg = sized(GpuConfig{});
    SampleConfig sc;
    sc.enabled = true;
    uint64_t fp_full = runFingerprint(cfg, "BUNNY", 0.25f);
    uint64_t fp_sampled =
        runFingerprint(cfg, "BUNNY", 0.25f, sc.fingerprint());
    EXPECT_NE(fp_full, fp_sampled);

    // Different sampling parameters must not share blobs either.
    SampleConfig other = sc;
    other.measureCtas *= 2;
    EXPECT_NE(runFingerprint(cfg, "BUNNY", 0.25f, other.fingerprint()),
              fp_sampled);
}

/** The regression the fingerprint exists for: a stored sampled result
 *  must never be served to a full run, nor a full result to a sampled
 *  run, through the on-disk cache itself. */
TEST(SampledRunCache, StoredBlobsNeverAlias)
{
    fs::path dir = fs::path(::testing::TempDir()) / "trt_runcache_alias";
    fs::remove_all(dir);
    EnvGuard cache("TRT_CACHE", dir.string().c_str());
    EnvGuard enable("TRT_RUN_CACHE", "1");

    GpuConfig cfg = sized(GpuConfig{});
    SampleConfig sc;
    sc.enabled = true;
    uint64_t fp_full = runFingerprint(cfg, "BUNNY", 0.25f);
    uint64_t fp_sampled =
        runFingerprint(cfg, "BUNNY", 0.25f, sc.fingerprint());

    RunStats sampled_result;
    sampled_result.cycles = 424242;
    sampled_result.sampled.enabled = true;
    storeCachedRun(fp_sampled, "BUNNY", sampled_result);

    RunStats out;
    EXPECT_FALSE(loadCachedRun(fp_full, "BUNNY", out))
        << "full run was served a sampled blob";
    ASSERT_TRUE(loadCachedRun(fp_sampled, "BUNNY", out));
    EXPECT_EQ(out.cycles, 424242u);
    EXPECT_TRUE(out.sampled.enabled);

    RunStats full_result;
    full_result.cycles = 111111;
    storeCachedRun(fp_full, "BUNNY", full_result);
    ASSERT_TRUE(loadCachedRun(fp_full, "BUNNY", out));
    EXPECT_EQ(out.cycles, 111111u);
    EXPECT_FALSE(out.sampled.enabled)
        << "sampled blob overwrote the full run's";
    fs::remove_all(dir);
}

} // anonymous namespace
} // namespace trt
