/**
 * @file
 * Tests for the procedural scene layer: mesh builders, noise, the scene
 * registry, and per-scene sanity (triangle budgets, bounds, cameras,
 * materials), parameterized over all 14 LumiBench stand-ins.
 */

#include <cmath>
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "bvh/bvh.hh"
#include "geom/rng.hh"
#include "gpu/shader.hh"
#include "scene/procedural.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

TEST(MeshBuilder, QuadIsTwoTriangles)
{
    MeshBuilder mb;
    mb.addQuad({0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, 3);
    ASSERT_EQ(mb.triangleCount(), 2u);
    EXPECT_EQ(mb.triangles()[0].material, 3u);
    // Total area equals the quad's area.
    float area = mb.triangles()[0].area() + mb.triangles()[1].area();
    EXPECT_NEAR(area, 1.0f, 1e-5f);
}

TEST(MeshBuilder, BoxHasTwelveTrianglesAndCorrectBounds)
{
    MeshBuilder mb;
    mb.addBox({-1, -2, -3}, {1, 2, 3}, 0);
    ASSERT_EQ(mb.triangleCount(), 12u);
    Aabb b;
    for (const auto &t : mb.triangles())
        b.grow(t.bounds());
    EXPECT_EQ(b.lo, (Vec3{-1, -2, -3}));
    EXPECT_EQ(b.hi, (Vec3{1, 2, 3}));
}

TEST(MeshBuilder, SphereSubdivisionCounts)
{
    for (int sub = 0; sub <= 3; sub++) {
        MeshBuilder mb;
        mb.addSphere({0, 0, 0}, 1.0f, sub, 0);
        EXPECT_EQ(mb.triangleCount(), 20u << (2 * sub)) << "sub=" << sub;
    }
}

TEST(MeshBuilder, SphereVerticesOnRadius)
{
    MeshBuilder mb;
    mb.addSphere({1, 2, 3}, 2.0f, 2, 0);
    for (const auto &t : mb.triangles()) {
        for (const Vec3 &v : {t.v0, t.v1, t.v2})
            EXPECT_NEAR(length(v - Vec3{1, 2, 3}), 2.0f, 1e-4f);
    }
}

TEST(MeshBuilder, DisplacedSphereIsCrackFree)
{
    // Shared vertices mean displaced spheres stay watertight: every
    // vertex position that appears must appear in >= 2 triangles.
    MeshBuilder mb;
    mb.addSphere({0, 0, 0}, 1.0f, 2, 0, [](const Vec3 &p) {
        return 0.3f * p.x * p.y;
    });
    std::map<std::tuple<float, float, float>, int> uses;
    for (const auto &t : mb.triangles())
        for (const Vec3 &v : {t.v0, t.v1, t.v2})
            uses[{v.x, v.y, v.z}]++;
    for (const auto &[v, n] : uses)
        EXPECT_GE(n, 2);
}

TEST(MeshBuilder, CylinderAndConeCounts)
{
    MeshBuilder mb;
    mb.addCylinder({0, 0, 0}, {0, 2, 0}, 0.5f, 8, 0);
    EXPECT_EQ(mb.triangleCount(), 16u); // 8 quads
    MeshBuilder mc;
    mc.addCone({0, 0, 0}, {0, 2, 0}, 0.5f, 8, 0);
    EXPECT_EQ(mc.triangleCount(), 8u);
}

TEST(MeshBuilder, HeightfieldGridCount)
{
    MeshBuilder mb;
    mb.addHeightfield(-1, -1, 1, 1, 4, 5, 0,
                      [](float x, float z) { return x + z; });
    EXPECT_EQ(mb.triangleCount(), 2u * 4u * 5u);
    // Vertices follow the height function.
    for (const auto &t : mb.triangles())
        for (const Vec3 &v : {t.v0, t.v1, t.v2})
            EXPECT_NEAR(v.y, v.x + v.z, 1e-5f);
}

TEST(MeshBuilder, AppendWithTransform)
{
    MeshBuilder src;
    src.addTriangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 2);
    MeshBuilder dst;
    dst.append(src, Transform::translate({10, 0, 0}));
    ASSERT_EQ(dst.triangleCount(), 1u);
    EXPECT_EQ(dst.triangles()[0].v0, (Vec3{10, 0, 0}));
    EXPECT_EQ(dst.triangles()[0].material, 2u);

    dst.append(src);
    EXPECT_EQ(dst.triangleCount(), 2u);
    EXPECT_EQ(dst.triangles()[1].v0, (Vec3{0, 0, 0}));
}

TEST(Transform, ComposeAndRotate)
{
    Transform t = Transform::translate({1, 0, 0})
                      .compose(Transform::scale(2.0f));
    EXPECT_EQ(t.apply({1, 1, 1}), (Vec3{3, 2, 2}));

    Transform r = Transform::rotateY(3.14159265f / 2.0f);
    Vec3 v = r.apply({1, 0, 0});
    EXPECT_NEAR(v.x, 0.0f, 1e-5f);
    EXPECT_NEAR(v.z, -1.0f, 1e-5f);

    Transform rs = Transform::scale({1, 2, 3});
    EXPECT_EQ(rs.apply({1, 1, 1}), (Vec3{1, 2, 3}));
}

TEST(Noise, DeterministicAndBounded)
{
    for (int i = 0; i < 100; i++) {
        float x = float(i) * 0.37f, y = float(i) * 0.91f;
        float v1 = valueNoise2(x, y, 7);
        float v2 = valueNoise2(x, y, 7);
        EXPECT_EQ(v1, v2);
        EXPECT_GE(v1, 0.0f);
        EXPECT_LE(v1, 1.0f);
        float f = fbm2(x, y, 4, 7);
        EXPECT_GE(f, 0.0f);
        EXPECT_LE(f, 1.0f);
    }
    // Different seeds give different fields.
    EXPECT_NE(valueNoise2(1.5f, 2.5f, 1), valueNoise2(1.5f, 2.5f, 2));
}

TEST(Noise, SmoothInterpolation)
{
    // Noise at lattice points equals the lattice value; nearby points
    // are close (continuity).
    float a = valueNoise2(3.0f, 4.0f, 11);
    float b = valueNoise2(3.001f, 4.0f, 11);
    EXPECT_NEAR(a, b, 0.01f);
}

TEST(Registry, FourteenScenesInTable2Order)
{
    auto names = sceneNames();
    ASSERT_EQ(names.size(), 14u);
    EXPECT_EQ(names.front(), "BUNNY");
    EXPECT_EQ(names.back(), "ROBOT");
    // Paper BVH sizes ascend in spec order.
    const auto &specs = lumiBenchSpecs();
    for (size_t i = 1; i < specs.size(); i++)
        EXPECT_GT(specs[i].paperBvhMb, specs[i - 1].paperBvhMb);
}

TEST(Registry, UnknownSceneThrows)
{
    EXPECT_THROW(sceneSpec("NOPE"), std::out_of_range);
    EXPECT_THROW(buildScene("NOPE"), std::out_of_range);
}

TEST(Registry, BuildIsDeterministic)
{
    Scene a = buildScene("CRNVL", 0.05f);
    Scene b = buildScene("CRNVL", 0.05f);
    ASSERT_EQ(a.triangles.size(), b.triangles.size());
    for (size_t i = 0; i < a.triangles.size(); i += 97)
        EXPECT_EQ(a.triangles[i].v0, b.triangles[i].v0);
}

class SceneParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SceneParam, BudgetBoundsMaterialsCamera)
{
    const std::string name = GetParam();
    const float scale = 0.05f;
    Scene s = buildScene(name, scale);
    const SceneSpec &spec = sceneSpec(name);

    // Triangle count within +-40% of the scaled budget.
    double budget = double(spec.targetTris) * scale;
    EXPECT_GT(double(s.triangles.size()), budget * 0.6);
    EXPECT_LT(double(s.triangles.size()), budget * 1.4);

    // All triangles have finite vertices and valid material indices.
    Aabb b = s.bounds();
    EXPECT_FALSE(b.empty());
    for (const auto &t : s.triangles) {
        ASSERT_LT(t.material, s.materials.size());
        for (const Vec3 &v : {t.v0, t.v1, t.v2}) {
            ASSERT_TRUE(std::isfinite(v.x));
            ASSERT_TRUE(std::isfinite(v.y));
            ASSERT_TRUE(std::isfinite(v.z));
        }
    }

    // Exactly one emissive material class must exist (the light panel).
    bool has_emissive = false;
    for (const auto &m : s.materials)
        has_emissive |= m.type == MaterialType::Emissive;
    EXPECT_TRUE(has_emissive);

    // The camera actually sees the scene: a healthy fraction of
    // primary rays hit geometry.
    Bvh bvh = Bvh::build(s.triangles);
    uint32_t hits = 0;
    const uint32_t n = 256;
    PathTracer pt(s, bvh, 1, 0.02f);
    for (uint32_t i = 0; i < n; i++) {
        PathState st = pt.startPath(i * 16, 64, 64);
        hits += bvh.intersectClosest(st.ray).hit() ? 1 : 0;
    }
    EXPECT_GT(hits, n / 5) << name << ": camera sees too little";
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneParam,
                         ::testing::ValuesIn(sceneNames()),
                         [](const auto &info) { return info.param; });

TEST(Camera, RaysAreNormalizedAndDeterministic)
{
    Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 45.0f);
    Ray a = cam.generateRay(3, 4, 64, 64);
    Ray b = cam.generateRay(3, 4, 64, 64);
    EXPECT_EQ(a.orig, b.orig);
    EXPECT_EQ(a.dir, b.dir);
    EXPECT_NEAR(length(a.dir), 1.0f, 1e-5f);
    // Center pixel looks roughly along -z (towards the target).
    Ray c = cam.generateRay(32, 32, 64, 64);
    EXPECT_LT(c.dir.z, -0.9f);
}

TEST(Camera, FovChangesSpread)
{
    Camera narrow({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 20.0f);
    Camera wide({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 90.0f);
    Ray n = narrow.generateRay(0, 32, 64, 64);
    Ray w = wide.generateRay(0, 32, 64, 64);
    // The wide camera's corner ray diverges more from the axis.
    EXPECT_GT(std::fabs(w.dir.x), std::fabs(n.dir.x));
}

TEST(Material, Constructors)
{
    Material l = Material::lambert({0.5f, 0.6f, 0.7f});
    EXPECT_EQ(l.type, MaterialType::Lambert);
    Material m = Material::mirror();
    EXPECT_EQ(m.type, MaterialType::Mirror);
    Material g = Material::glossy({1, 1, 1}, 0.3f);
    EXPECT_EQ(g.type, MaterialType::Glossy);
    EXPECT_FLOAT_EQ(g.roughness, 0.3f);
    Material e = Material::emissive({5, 5, 5});
    EXPECT_EQ(e.type, MaterialType::Emissive);
    EXPECT_EQ(e.albedo, (Vec3{0, 0, 0}));
}

} // anonymous namespace
} // namespace trt
