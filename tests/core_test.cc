/**
 * @file
 * Tests for the paper's proposed architectures: treelet prefetching and
 * virtualized treelet queues. The load-bearing invariant is that every
 * architecture renders the exact same image as the functional reference
 * — the optimizations may only change *timing*.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/arch.hh"
#include "core/line_set.hh"
#include "gpu/shader.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

struct Fixture
{
    Scene scene;
    Bvh bvh;

    /**
     * Test scenes are tiny (fast), so an 8KB treelet would swallow most
     * of the BVH and no treelet boundary would ever be crossed; a 1KB
     * cap restores the many-treelets regime the full-scale scenes have.
     */
    explicit Fixture(const std::string &name = "BUNNY", float scale = 0.1f,
                     uint32_t treelet_bytes = 1024)
    {
        scene = buildScene(name, scale);
        BvhConfig bc;
        bc.treeletMaxBytes = treelet_bytes;
        bvh = Bvh::build(scene.triangles, bc);
    }
};

GpuConfig
tinyConfig(RtArch arch)
{
    GpuConfig cfg;
    cfg.imageWidth = 32;
    cfg.imageHeight = 32;
    cfg.numSms = 4;
    cfg.mem.numL1s = 4;
    cfg.arch = arch;
    if (arch == RtArch::TreeletQueues) {
        cfg.rayVirtualization = true;
        cfg.mem.l2ReservedBytes = 64 * 1024;
        // Scale queue thresholds to the small ray population of a
        // 32x32 test frame, and keep few CTA slots so the scheduler
        // actually has pending CTAs (suspension only fires when the
        // freed slot can be reused).
        cfg.queueThreshold = 16;
        cfg.repackThreshold = 22;
        cfg.maxCtasPerSm = 2;
    }
    return cfg;
}

/** All architectures must produce bit-identical images. */
TEST(ArchEquivalence, AllArchesRenderIdenticalImages)
{
    Fixture f;
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);

    for (RtArch arch : {RtArch::Baseline, RtArch::TreeletPrefetch,
                        RtArch::TreeletQueues}) {
        GpuConfig cfg = tinyConfig(arch);
        RunStats rs = simulate(cfg, f.scene, f.bvh);
        ASSERT_EQ(rs.framebuffer.size(), ref.size());
        for (size_t i = 0; i < ref.size(); i++) {
            ASSERT_EQ(ref[i], rs.framebuffer[i])
                << "arch=" << rtArchName(arch) << " pixel " << i;
        }
    }
}

TEST(ArchEquivalence, VtqVariantsRenderIdenticalImages)
{
    Fixture f;
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);

    std::vector<GpuConfig> variants;
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.groupUnderpopulated = false; // naive treelet queues
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.repackThreshold = 0; // no repacking
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.skipTreeletPhase = true;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.preloadEnabled = false;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.rayVirtualization = false;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.virtualizationFree = true;
        variants.push_back(c);
    }

    for (size_t v = 0; v < variants.size(); v++) {
        RunStats rs = simulate(variants[v], f.scene, f.bvh);
        for (size_t i = 0; i < ref.size(); i++) {
            ASSERT_EQ(ref[i], rs.framebuffer[i])
                << "variant " << v << " pixel " << i;
        }
    }
}

TEST(TreeletPrefetch, IssuesAndUsesPrefetches)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletPrefetch), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.prefetchIssues, 0u);
    EXPECT_GT(rs.rt.prefetchLines, 0u);
    EXPECT_GT(rs.rt.prefetchUsedLines, 0u);
    EXPECT_LE(rs.rt.prefetchUsedLines, rs.rt.prefetchLines);
}

TEST(TreeletQueues, UsesAllThreeModes)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::Initial)], 0u);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::TreeletStationary)],
              0u);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::RayStationary)], 0u);
    EXPECT_GT(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_GT(rs.rt.groupedWarpsFormed, 0u);
    EXPECT_GT(rs.rt.raysEnqueued, 0u);
}

TEST(TreeletQueues, VirtualizationSuspendsAndRestores)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.ctaSaves, rs.ctaRestores);
    EXPECT_GT(rs.ctaStateBytes, 0u);
    // CTA state traffic must be visible in the memory class stats.
    EXPECT_GT(rs.memClass(MemClass::CtaState).writes, 0u);
    EXPECT_GT(rs.memClass(MemClass::CtaState).l2Accesses, 0u);
}

TEST(TreeletQueues, VirtualizationFreeHasNoStateTraffic)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.virtualizationFree = true;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.memClass(MemClass::CtaState).writes, 0u);
    EXPECT_EQ(rs.memClass(MemClass::CtaState).l1Accesses, 0u);
}

TEST(TreeletQueues, NoVirtualizationMeansNoSaves)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.rayVirtualization = false;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_EQ(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.ctaRestores, 0u);
}

TEST(TreeletQueues, RayDataTrafficExists)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    const auto &rd = rs.memClass(MemClass::RayData);
    EXPECT_GT(rd.writes, 0u);     // parked ray state
    EXPECT_GT(rd.l2Accesses, 0u); // reserved-region fetches
    EXPECT_EQ(rd.l1Accesses, 0u); // ray data must bypass the L1
}

TEST(TreeletQueues, RepackingHappensAndRaisesSimtEfficiency)
{
    Fixture f("SPNZA", 0.1f);
    GpuConfig with = tinyConfig(RtArch::TreeletQueues);
    with.repackThreshold = 22;
    // Force every ray through the grouped ray-stationary path so the
    // queues hold plenty of strays for the repacker to pull from (a
    // 32x32 frame otherwise drains its queues into one warp), and make
    // warps diverge at their first treelet boundary so rays actually
    // reach the queues at this small scale.
    with.queueThreshold = 100000;
    with.initialDivergeThreshold = 0;
    GpuConfig without = with;
    without.repackThreshold = 0;

    RunStats a = simulate(with, f.scene, f.bvh);
    RunStats b = simulate(without, f.scene, f.bvh);
    EXPECT_GT(a.rt.repackEvents, 0u);
    EXPECT_EQ(b.rt.repackEvents, 0u);
    EXPECT_GT(a.simtEfficiency(), b.simtEfficiency());
}

TEST(TreeletQueues, TableHighWatersTracked)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.countTableHighWater, 0u);
    EXPECT_GT(rs.rt.queueTableEntriesHW, 0u);
    EXPECT_GT(rs.rt.maxConcurrentRays, 32u);
}

TEST(TreeletQueues, ConcurrentRayCapRespected)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.maxVirtualRaysPerSm = 64;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_LE(rs.rt.maxConcurrentRays, 64u);
    // Still renders correctly.
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);
    for (size_t i = 0; i < ref.size(); i++)
        ASSERT_EQ(ref[i], rs.framebuffer[i]);
}

TEST(TreeletQueues, SkipTreeletPhaseHasNoTreeletWarps)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.skipTreeletPhase = true;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_EQ(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_EQ(rs.rt.modeCycles[size_t(TraversalMode::TreeletStationary)],
              0u);
    EXPECT_GT(rs.rt.groupedWarpsFormed, 0u);
}

TEST(TreeletQueues, NaiveModeFormsUnderpopulatedTreeletWarps)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.groupUnderpopulated = false;
    cfg.repackThreshold = 0;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_EQ(rs.rt.groupedWarpsFormed, 0u);
}

TEST(Factory, DispatchesOnArch)
{
    Fixture f;
    auto factory = makeRtUnitFactory();
    GpuConfig cfg = tinyConfig(RtArch::Baseline);
    MemorySystem mem(cfg.mem);
    auto base = factory(cfg, mem, f.bvh, 0);
    EXPECT_TRUE(base->idle());

    cfg.arch = RtArch::TreeletQueues;
    auto tq = factory(cfg, mem, f.bvh, 0);
    EXPECT_TRUE(tq->idle());
}


// ---- LineSet (open-addressed line-address set, PR 3) ---------------

TEST(LineSet, InsertEraseContains)
{
    LineSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(0x1000));
    EXPECT_FALSE(s.insert(0x1000)); // duplicate
    EXPECT_TRUE(s.insert(0x2000));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(0x1000));
    EXPECT_FALSE(s.contains(0x3000));
    EXPECT_TRUE(s.erase(0x1000));
    EXPECT_FALSE(s.erase(0x1000)); // already gone
    EXPECT_FALSE(s.contains(0x1000));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.sortedKeys(), (std::vector<uint64_t>{0x2000}));
}

TEST(LineSet, GrowsAndRehashesPastInitialCapacity)
{
    LineSet s;
    std::size_t cap0 = s.capacity();
    // Push well past the 3/4 load-factor trigger of the initial table.
    const uint64_t n = 4096;
    for (uint64_t i = 1; i <= n; i++)
        ASSERT_TRUE(s.insert(i * 64));
    EXPECT_EQ(s.size(), n);
    EXPECT_GT(s.capacity(), cap0);
    for (uint64_t i = 1; i <= n; i++)
        EXPECT_TRUE(s.contains(i * 64)) << i;
    EXPECT_FALSE(s.contains((n + 1) * 64));
    EXPECT_EQ(s.sortedKeys().size(), n);
}

TEST(LineSet, ClearKeepsCapacityAndDropsKeys)
{
    LineSet s;
    for (uint64_t i = 1; i <= 2000; i++)
        s.insert(i * 64);
    std::size_t cap = s.capacity();
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.capacity(), cap);
    EXPECT_FALSE(s.contains(64));
    EXPECT_TRUE(s.insert(64)); // reusable after clear
}

/** Backward-shift deletion under heavy collisions: keys engineered to
 *  share probe chains, erased in an order that forces shifts, checked
 *  against a reference std::set at every step. */
TEST(LineSet, CollisionHeavyEraseKeepsProbeChainsIntact)
{
    LineSet s;
    std::set<uint64_t> ref;
    // The multiply-shift hash uses the high 32 bits, so keys differing
    // only in a high-bit stride collide to nearby buckets frequently.
    auto key = [](uint64_t i) { return (i % 7 + 1) + ((i / 7) << 33); };
    for (uint64_t i = 0; i < 3000; i++) {
        uint64_t k = key(i);
        EXPECT_EQ(s.insert(k), ref.insert(k).second) << i;
    }
    // Erase every third key, then verify every key's membership.
    for (uint64_t i = 0; i < 3000; i += 3) {
        uint64_t k = key(i);
        EXPECT_EQ(s.erase(k), ref.erase(k) > 0) << i;
    }
    EXPECT_EQ(s.size(), ref.size());
    for (uint64_t i = 0; i < 3000; i++) {
        uint64_t k = key(i);
        EXPECT_EQ(s.contains(k), ref.count(k) > 0) << i;
    }
    std::vector<uint64_t> want(ref.begin(), ref.end());
    EXPECT_EQ(s.sortedKeys(), want);
}

} // anonymous namespace
} // namespace trt
