/**
 * @file
 * Tests for the paper's proposed architectures: treelet prefetching and
 * virtualized treelet queues. The load-bearing invariant is that every
 * architecture renders the exact same image as the functional reference
 * — the optimizations may only change *timing*.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "gpu/shader.hh"
#include "scene/registry.hh"

namespace trt
{
namespace
{

struct Fixture
{
    Scene scene;
    Bvh bvh;

    /**
     * Test scenes are tiny (fast), so an 8KB treelet would swallow most
     * of the BVH and no treelet boundary would ever be crossed; a 1KB
     * cap restores the many-treelets regime the full-scale scenes have.
     */
    explicit Fixture(const std::string &name = "BUNNY", float scale = 0.1f,
                     uint32_t treelet_bytes = 1024)
    {
        scene = buildScene(name, scale);
        BvhConfig bc;
        bc.treeletMaxBytes = treelet_bytes;
        bvh = Bvh::build(scene.triangles, bc);
    }
};

GpuConfig
tinyConfig(RtArch arch)
{
    GpuConfig cfg;
    cfg.imageWidth = 32;
    cfg.imageHeight = 32;
    cfg.numSms = 4;
    cfg.mem.numL1s = 4;
    cfg.arch = arch;
    if (arch == RtArch::TreeletQueues) {
        cfg.rayVirtualization = true;
        cfg.mem.l2ReservedBytes = 64 * 1024;
        // Scale queue thresholds to the small ray population of a
        // 32x32 test frame, and keep few CTA slots so the scheduler
        // actually has pending CTAs (suspension only fires when the
        // freed slot can be reused).
        cfg.queueThreshold = 16;
        cfg.repackThreshold = 22;
        cfg.maxCtasPerSm = 2;
    }
    return cfg;
}

/** All architectures must produce bit-identical images. */
TEST(ArchEquivalence, AllArchesRenderIdenticalImages)
{
    Fixture f;
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);

    for (RtArch arch : {RtArch::Baseline, RtArch::TreeletPrefetch,
                        RtArch::TreeletQueues}) {
        GpuConfig cfg = tinyConfig(arch);
        RunStats rs = simulate(cfg, f.scene, f.bvh);
        ASSERT_EQ(rs.framebuffer.size(), ref.size());
        for (size_t i = 0; i < ref.size(); i++) {
            ASSERT_EQ(ref[i], rs.framebuffer[i])
                << "arch=" << rtArchName(arch) << " pixel " << i;
        }
    }
}

TEST(ArchEquivalence, VtqVariantsRenderIdenticalImages)
{
    Fixture f;
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);

    std::vector<GpuConfig> variants;
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.groupUnderpopulated = false; // naive treelet queues
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.repackThreshold = 0; // no repacking
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.skipTreeletPhase = true;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.preloadEnabled = false;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.rayVirtualization = false;
        variants.push_back(c);
    }
    {
        GpuConfig c = tinyConfig(RtArch::TreeletQueues);
        c.virtualizationFree = true;
        variants.push_back(c);
    }

    for (size_t v = 0; v < variants.size(); v++) {
        RunStats rs = simulate(variants[v], f.scene, f.bvh);
        for (size_t i = 0; i < ref.size(); i++) {
            ASSERT_EQ(ref[i], rs.framebuffer[i])
                << "variant " << v << " pixel " << i;
        }
    }
}

TEST(TreeletPrefetch, IssuesAndUsesPrefetches)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletPrefetch), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.prefetchIssues, 0u);
    EXPECT_GT(rs.rt.prefetchLines, 0u);
    EXPECT_GT(rs.rt.prefetchUsedLines, 0u);
    EXPECT_LE(rs.rt.prefetchUsedLines, rs.rt.prefetchLines);
}

TEST(TreeletQueues, UsesAllThreeModes)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::Initial)], 0u);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::TreeletStationary)],
              0u);
    EXPECT_GT(rs.rt.modeCycles[size_t(TraversalMode::RayStationary)], 0u);
    EXPECT_GT(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_GT(rs.rt.groupedWarpsFormed, 0u);
    EXPECT_GT(rs.rt.raysEnqueued, 0u);
}

TEST(TreeletQueues, VirtualizationSuspendsAndRestores)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.ctaSaves, rs.ctaRestores);
    EXPECT_GT(rs.ctaStateBytes, 0u);
    // CTA state traffic must be visible in the memory class stats.
    EXPECT_GT(rs.memClass(MemClass::CtaState).writes, 0u);
    EXPECT_GT(rs.memClass(MemClass::CtaState).l2Accesses, 0u);
}

TEST(TreeletQueues, VirtualizationFreeHasNoStateTraffic)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.virtualizationFree = true;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.memClass(MemClass::CtaState).writes, 0u);
    EXPECT_EQ(rs.memClass(MemClass::CtaState).l1Accesses, 0u);
}

TEST(TreeletQueues, NoVirtualizationMeansNoSaves)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.rayVirtualization = false;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_EQ(rs.ctaSaves, 0u);
    EXPECT_EQ(rs.ctaRestores, 0u);
}

TEST(TreeletQueues, RayDataTrafficExists)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    const auto &rd = rs.memClass(MemClass::RayData);
    EXPECT_GT(rd.writes, 0u);     // parked ray state
    EXPECT_GT(rd.l2Accesses, 0u); // reserved-region fetches
    EXPECT_EQ(rd.l1Accesses, 0u); // ray data must bypass the L1
}

TEST(TreeletQueues, RepackingHappensAndRaisesSimtEfficiency)
{
    Fixture f("SPNZA", 0.1f);
    GpuConfig with = tinyConfig(RtArch::TreeletQueues);
    with.repackThreshold = 22;
    // Force every ray through the grouped ray-stationary path so the
    // queues hold plenty of strays for the repacker to pull from (a
    // 32x32 frame otherwise drains its queues into one warp), and make
    // warps diverge at their first treelet boundary so rays actually
    // reach the queues at this small scale.
    with.queueThreshold = 100000;
    with.initialDivergeThreshold = 0;
    GpuConfig without = with;
    without.repackThreshold = 0;

    RunStats a = simulate(with, f.scene, f.bvh);
    RunStats b = simulate(without, f.scene, f.bvh);
    EXPECT_GT(a.rt.repackEvents, 0u);
    EXPECT_EQ(b.rt.repackEvents, 0u);
    EXPECT_GT(a.simtEfficiency(), b.simtEfficiency());
}

TEST(TreeletQueues, TableHighWatersTracked)
{
    Fixture f;
    RunStats rs = simulate(tinyConfig(RtArch::TreeletQueues), f.scene,
                           f.bvh);
    EXPECT_GT(rs.rt.countTableHighWater, 0u);
    EXPECT_GT(rs.rt.queueTableEntriesHW, 0u);
    EXPECT_GT(rs.rt.maxConcurrentRays, 32u);
}

TEST(TreeletQueues, ConcurrentRayCapRespected)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.maxVirtualRaysPerSm = 64;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_LE(rs.rt.maxConcurrentRays, 64u);
    // Still renders correctly.
    auto ref = renderReference(f.scene, f.bvh, 32, 32, 3, 0.02f);
    for (size_t i = 0; i < ref.size(); i++)
        ASSERT_EQ(ref[i], rs.framebuffer[i]);
}

TEST(TreeletQueues, SkipTreeletPhaseHasNoTreeletWarps)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.skipTreeletPhase = true;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_EQ(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_EQ(rs.rt.modeCycles[size_t(TraversalMode::TreeletStationary)],
              0u);
    EXPECT_GT(rs.rt.groupedWarpsFormed, 0u);
}

TEST(TreeletQueues, NaiveModeFormsUnderpopulatedTreeletWarps)
{
    Fixture f;
    GpuConfig cfg = tinyConfig(RtArch::TreeletQueues);
    cfg.groupUnderpopulated = false;
    cfg.repackThreshold = 0;
    RunStats rs = simulate(cfg, f.scene, f.bvh);
    EXPECT_GT(rs.rt.treeletWarpsFormed, 0u);
    EXPECT_EQ(rs.rt.groupedWarpsFormed, 0u);
}

TEST(Factory, DispatchesOnArch)
{
    Fixture f;
    auto factory = makeRtUnitFactory();
    GpuConfig cfg = tinyConfig(RtArch::Baseline);
    MemorySystem mem(cfg.mem);
    auto base = factory(cfg, mem, f.bvh, 0);
    EXPECT_TRUE(base->idle());

    cfg.arch = RtArch::TreeletQueues;
    auto tq = factory(cfg, mem, f.bvh, 0);
    EXPECT_TRUE(tq->idle());
}

} // anonymous namespace
} // namespace trt
