/**
 * @file
 * Tests for the general tree-traversal workload (section 8 extension):
 * splat geometry, query lowering, functional correctness against brute
 * force, and the custom-ray simulation path through the GPU model.
 */

#include <gtest/gtest.h>

#include "core/arch.hh"
#include "workloads/rt_query.hh"

namespace trt
{
namespace
{

float
l1(const Vec3 &a, const Vec3 &b)
{
    return std::fabs(a.x - b.x) + std::fabs(a.y - b.y) +
           std::fabs(a.z - b.z);
}

RtQueryConfig
smallConfig(PointDistribution dist = PointDistribution::Clustered)
{
    RtQueryConfig cfg;
    cfg.numPoints = 2000;
    cfg.numQueries = 400;
    cfg.distribution = dist;
    cfg.queryRadius = 0.03f;
    cfg.seed = 7;
    return cfg;
}

TEST(RtQueryWorkload, GeometryShape)
{
    RtQueryConfig cfg = smallConfig();
    RtQueryWorkload wl = buildRtQueryWorkload(cfg);
    EXPECT_EQ(wl.points.size(), cfg.numPoints);
    EXPECT_EQ(wl.queries.size(), cfg.numQueries);
    EXPECT_EQ(wl.scene.triangles.size(),
              size_t(cfg.numPoints) * wl.trisPerSplat);
    // Every splat triangle's bounds lie within queryRadius (L-inf) of
    // its point.
    for (uint32_t i = 0; i < 100; i++) {
        uint32_t tri = i * 37 % uint32_t(wl.scene.triangles.size());
        uint32_t pt = wl.pointOf(tri);
        Aabb b = wl.scene.triangles[tri].bounds();
        EXPECT_LE(length(b.center() - wl.points[pt]),
                  2.0f * wl.queryRadius);
    }
}

TEST(RtQueryWorkload, Deterministic)
{
    RtQueryWorkload a = buildRtQueryWorkload(smallConfig());
    RtQueryWorkload b = buildRtQueryWorkload(smallConfig());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); i += 53)
        EXPECT_EQ(a.points[i], b.points[i]);
    for (size_t i = 0; i < a.queries.size(); i += 29)
        EXPECT_EQ(a.queries[i].orig, b.queries[i].orig);
}

TEST(RtQueryWorkload, QuerySegmentsSpanBallDiameter)
{
    RtQueryWorkload wl = buildRtQueryWorkload(smallConfig());
    for (const Ray &q : wl.queries) {
        EXPECT_FLOAT_EQ(q.tmax, 2.0f * wl.queryRadius);
        EXPECT_NEAR(length(q.dir), 1.0f, 1e-5f);
    }
}

class DistributionParam
    : public ::testing::TestWithParam<PointDistribution>
{
};

TEST_P(DistributionParam, AnswersMatchBruteForce)
{
    RtQueryConfig cfg = smallConfig(GetParam());
    RtQueryWorkload wl = buildRtQueryWorkload(cfg);
    Bvh bvh = Bvh::build(wl.scene.triangles);
    auto results = answerQueries(wl, bvh);
    ASSERT_EQ(results.size(), wl.queries.size());

    uint32_t found = 0;
    for (size_t i = 0; i < results.size(); i++) {
        QueryResult bf = bruteForceNearest(wl.points, wl.queries[i].orig,
                                           wl.queryRadius);
        ASSERT_EQ(results[i].nearest != ~0u, bf.nearest != ~0u)
            << "query " << i;
        if (bf.nearest != ~0u) {
            found++;
            ASSERT_FLOAT_EQ(results[i].distance, bf.distance)
                << "query " << i;
        }
    }
    // The workload must actually exercise hits (the L1-ball volume at
    // this radius gives roughly 5-10% of queries a neighbor for the
    // uniform distribution, more for clustered/shell).
    EXPECT_GE(found, 10u);
}

INSTANTIATE_TEST_SUITE_P(Distributions, DistributionParam,
                         ::testing::Values(PointDistribution::Uniform,
                                           PointDistribution::Clustered,
                                           PointDistribution::Shell));

TEST(RtQuerySim, RunsThroughGpuAndHitsAgree)
{
    RtQueryConfig cfg = smallConfig();
    cfg.numQueries = 512;
    RtQueryWorkload wl = buildRtQueryWorkload(cfg);
    Bvh bvh = Bvh::build(wl.scene.triangles);

    GpuConfig gc;
    gc.numSms = 4;
    gc.mem.numL1s = 4;
    RunStats rs = simulateRays(gc, wl.scene, bvh, wl.queries);

    EXPECT_GT(rs.cycles, 0u);
    EXPECT_EQ(rs.raysTraced, wl.queries.size());
    ASSERT_EQ(rs.primaryHits.size(), wl.queries.size());

    // The timing model's closest hits match direct traversal.
    for (size_t i = 0; i < wl.queries.size(); i++) {
        HitRecord ref = bvh.intersectClosest(wl.queries[i]);
        ASSERT_EQ(rs.primaryHits[i].hit(), ref.hit()) << "query " << i;
        if (ref.hit())
            ASSERT_FLOAT_EQ(rs.primaryHits[i].t, ref.t);
    }
}

TEST(RtQuerySim, ArchitecturesAgreeOnQueryHits)
{
    RtQueryConfig cfg = smallConfig();
    cfg.numQueries = 512;
    RtQueryWorkload wl = buildRtQueryWorkload(cfg);
    BvhConfig bc;
    bc.treeletMaxBytes = 2048;
    Bvh bvh = Bvh::build(wl.scene.triangles, bc);

    GpuConfig base;
    base.numSms = 4;
    base.mem.numL1s = 4;
    GpuConfig vtq = GpuConfig::virtualizedTreeletQueues();
    vtq.numSms = 4;
    vtq.mem.numL1s = 4;
    vtq.queueThreshold = 16;
    vtq.maxCtasPerSm = 2;

    RunStats a = simulateRays(base, wl.scene, bvh, wl.queries);
    RunStats b = simulateRays(vtq, wl.scene, bvh, wl.queries);
    ASSERT_EQ(a.primaryHits.size(), b.primaryHits.size());
    for (size_t i = 0; i < a.primaryHits.size(); i++) {
        ASSERT_EQ(a.primaryHits[i].hit(), b.primaryHits[i].hit());
        if (a.primaryHits[i].hit())
            ASSERT_FLOAT_EQ(a.primaryHits[i].t, b.primaryHits[i].t);
    }
    // Query rays are single-bounce, so the workload completes.
    EXPECT_EQ(b.rt.raysCompleted, wl.queries.size());
}

TEST(RtQuerySim, PointCloudBvhHasManyTreelets)
{
    RtQueryWorkload wl = buildRtQueryWorkload(smallConfig());
    Bvh bvh = Bvh::build(wl.scene.triangles);
    // The workload must be big enough to exceed one treelet, or the
    // treelet-queue evaluation on it is vacuous.
    EXPECT_GT(bvh.treeletCount(), 8u);
}

} // anonymous namespace
} // namespace trt
