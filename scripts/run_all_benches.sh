#!/usr/bin/env bash
# Full paper sweep: one fault-tolerant trt_farm pass over the paper
# grid, then the figure/table benches against the warm run cache.
#
# The farm (DESIGN.md §13) does the heavy lifting — sharded workers,
# per-job retry with snapshot resume, live CSV/JSONL streaming into
# results/farm/ — and its job fingerprints alias the benches' run-cache
# keys, so the bench loop below mostly formats tables from cached
# results instead of re-simulating. Interrupt and re-run at will: jobs
# already in .trt_cache/runs/ are skipped.
#
# Environment knobs (TRT_RES, TRT_SCALE, TRT_SCENES, TRT_FAST,
# TRT_FARM_WORKERS, TRT_RUN_CACHE, ...) apply; see README.md. Pass a
# manifest path to sweep something other than the default paper grid.
# TRT_SKIP_FARM=1 restores the old cold bench loop.
set -u
cd "$(dirname "$0")/.."
mkdir -p results

manifest=${1:-manifests/paper_grid.json}
if [ -x build/tools/trt_farm ] && [ "${TRT_SKIP_FARM:-0}" != "1" ]; then
    echo "=== farm sweep: $manifest ==="
    build/tools/trt_farm --out results/farm "$manifest" ||
        echo "warning: farm reported failed jobs; benches will simulate those cold"
else
    echo "trt_farm not built (or TRT_SKIP_FARM=1): benches simulate cold"
fi

: > results/bench_all.log
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "=== $name ===" | tee -a results/bench_all.log
    "$b" 2>&1 | tee "results/${name}.txt" | tail -40
    cat "results/${name}.txt" >> results/bench_all.log
done
echo "all benches complete"
