#!/usr/bin/env bash
# Run every benchmark binary, teeing output into results/.
# Environment knobs (TRT_RES, TRT_SCALE, TRT_SCENES, TRT_FAST,
# TRT_BUILD_THREADS, TRT_RUN_CACHE) apply. With a warm .trt_cache/runs/
# previously-simulated (scene, config) pairs are loaded, not re-run;
# each bench's [harness] summary line reports the hit counts.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
: > results/bench_all.log
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "=== $name ===" | tee -a results/bench_all.log
    "$b" 2>&1 | tee "results/${name}.txt" | tail -40
    cat "results/${name}.txt" >> results/bench_all.log
done
echo "all benches complete"
