#!/usr/bin/env bash
# Resume the bench sweep: a trt_farm pass over the paper grid first
# (jobs already in the run cache are skipped, interrupted jobs resume
# from snapshots — see DESIGN.md §13), then every bench binary whose
# results file is missing or incomplete re-runs against the warm
# cache. "force" as $1 re-runs every bench's formatting pass.
set -u
cd "$(dirname "$0")/.."
mkdir -p results

manifest=${TRT_FARM_MANIFEST:-manifests/paper_grid.json}
if [ -x build/tools/trt_farm ] && [ "${TRT_SKIP_FARM:-0}" != "1" ]; then
    echo "=== farm sweep: $manifest ==="
    build/tools/trt_farm --out results/farm "$manifest" ||
        echo "warning: farm reported failed jobs; benches will simulate those cold"
fi

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    out="results/${name}.txt"
    if [ -s "$out" ] && [ "${1:-}" != "force" ] && ! grep -q INCOMPLETE "$out"; then
        continue
    fi
    echo "running $name"
    echo INCOMPLETE > "$out"
    "$b" > "$out.tmp" 2>&1 && mv "$out.tmp" "$out" || echo "FAILED $name" >> "$out"
done
echo ALL_DONE > results/.benches_done
