#!/usr/bin/env bash
# Resume the bench sweep: run every bench binary whose results file is
# missing or incomplete (no trailing "paper:" note / table).
set -u
cd "$(dirname "$0")/.."
mkdir -p results
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    out="results/${name}.txt"
    if [ -s "$out" ] && [ "$1" != "force" ] && ! grep -q INCOMPLETE "$out"; then
        continue
    fi
    echo "running $name"
    echo INCOMPLETE > "$out"
    "$b" > "$out.tmp" 2>&1 && mv "$out.tmp" "$out" || echo "FAILED $name" >> "$out"
done
echo ALL_DONE > results/.benches_done
