#!/usr/bin/env bash
# Farm smoke check (CI; DESIGN.md §13).
#
# 1. Serial golden run of manifests/ci_smoke.json into a fresh cache.
# 2. Multi-worker run of the same manifest into another fresh cache,
#    with one injected worker crash (TRT_FARM_INJECT_CRASH): a worker
#    SIGKILLs itself mid-simulation, the scheduler retries the shard
#    with --resume from the crash snapshot.
# 3. Requires: the crashed sweep completes (exit 0), at least one
#    worker crash + retry actually happened, and the aggregated CSV is
#    byte-identical to the serial golden run.
# 4. Reruns the sweep over the warm cache and requires every job to be
#    served from the run cache (observable dedup).
#
# Environment:
#   FARM_BIN   trt_farm binary (default build/tools/trt_farm)
#   WORKERS    pool size (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

bin=${FARM_BIN:-build/tools/trt_farm}
workers=${WORKERS:-2}
workdir=${1:-.farm_smoke_ci}

rm -rf "$workdir"
mkdir -p "$workdir"

echo "=== serial golden run ==="
TRT_CACHE="$workdir/cache_serial" \
    "$bin" --serial --out "$workdir/golden" manifests/ci_smoke.json

echo "=== crash-injected ${workers}-worker run ==="
TRT_CACHE="$workdir/cache_farm" \
TRT_SNAPSHOT_DIR="$workdir/snapshots" \
TRT_FARM_INJECT_CRASH="$workdir/crash.sentinel" \
TRT_FARM_INJECT_CRASH_AT=${TRT_FARM_INJECT_CRASH_AT:-20000} \
    "$bin" --workers "$workers" --out "$workdir/farm" \
    manifests/ci_smoke.json | tee "$workdir/farm_summary.txt"

# The injected crash must have fired and been retried to completion.
grep -q 'worker_crashes=[1-9]' "$workdir/farm_summary.txt" ||
    { echo "FAIL: no worker crash was injected"; exit 1; }
grep -q ' retries=[1-9]' "$workdir/farm_summary.txt" ||
    { echo "FAIL: the crashed shard was not retried"; exit 1; }
grep -q ' failed=0 ' "$workdir/farm_summary.txt" ||
    { echo "FAIL: sweep reported failed jobs"; exit 1; }
[ -f "$workdir/crash.sentinel" ] ||
    { echo "FAIL: crash sentinel never claimed"; exit 1; }

echo "=== diff aggregated CSV against golden ==="
diff "$workdir/golden/ci_smoke.csv" "$workdir/farm/ci_smoke.csv" ||
    { echo "FAIL: crashed sweep CSV differs from serial golden"; exit 1; }

echo "=== warm-cache rerun must skip every job ==="
TRT_CACHE="$workdir/cache_farm" \
    "$bin" --workers "$workers" --out "$workdir/warm" \
    manifests/ci_smoke.json | tee "$workdir/warm_summary.txt"
grep -q 'cached=4 simulated=0' "$workdir/warm_summary.txt" ||
    { echo "FAIL: warm rerun re-simulated cached jobs"; exit 1; }

echo "farm smoke OK"
