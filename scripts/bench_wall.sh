#!/usr/bin/env bash
# Wall-clock smoke benchmark of the simulator hot loop.
#
# Times build/bench/bench_fig10_overall (the headline figure: all three
# architectures over the scene suite) at smoke scale with the run cache
# disabled, so every run is a full cycle-level simulation. Appends the
# result as one JSON-lines entry to BENCH_simwall.jsonl (or $1), so the
# file accumulates a history across commits instead of keeping only the
# latest number; each entry records whether it timed the full detailed
# simulator or the sampled one ("mode": "full" | "sampled").
#
# Environment:
#   BENCH_RUNS       repetitions, best-of is reported (default 3)
#   BENCH_SAMPLED    =1: time the sampled simulator (TRT_SAMPLE=1)
#   BENCH_SCALE_ENV  extra env overrides recorded verbatim in the entry
#                    (e.g. "TRT_FAST=0 TRT_SCENES=CRNVL TRT_RES=512");
#                    default is the TRT_FAST smoke configuration
#   BASELINE_WALL_S  optional baseline seconds; adds a "speedup" field
#   BENCH_BIN        override the benchmark binary
#   BENCH_NO_BUILD   =1: skip the rebuild and time the binary as-is
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_simwall.jsonl}
runs=${BENCH_RUNS:-3}
bin=${BENCH_BIN:-build/bench/bench_fig10_overall}

# Rebuild first so we never time a stale binary; a build failure aborts
# the benchmark instead of silently measuring yesterday's code.
if [ "${BENCH_NO_BUILD:-0}" != "1" ]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target "$(basename "$bin")" >/dev/null
fi

if [ ! -x "$bin" ]; then
    echo "bench_wall: $bin not built" >&2
    exit 1
fi

env_desc="TRT_FAST=1 TRT_RUN_CACHE=0"
export TRT_FAST=1
export TRT_RUN_CACHE=0
mode=full
if [ "${BENCH_SAMPLED:-0}" = "1" ]; then
    export TRT_SAMPLE=1
    mode=sampled
    env_desc="$env_desc TRT_SAMPLE=1"
fi
if [ -n "${BENCH_SCALE_ENV:-}" ]; then
    # Word-splitting is intentional: each item is a KEY=VALUE override.
    # shellcheck disable=SC2086
    export $BENCH_SCALE_ENV
    env_desc="$env_desc $BENCH_SCALE_ENV"
fi

best_real=""
best_sim_ms=""
all_real=""
for i in $(seq 1 "$runs"); do
    log=$(mktemp)
    start=$(date +%s.%N)
    "$bin" >"$log" 2>&1
    end=$(date +%s.%N)
    real=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')
    sim_ms=$(sed -n 's/.*simulate \([0-9]*\) ms.*/\1/p' "$log" | tail -1)
    rm -f "$log"
    echo "bench_wall: run $i/$runs real=${real}s simulate=${sim_ms:-?}ms" >&2
    all_real="${all_real:+$all_real, }$real"
    if [ -z "$best_real" ] || awk "BEGIN{exit !($real < $best_real)}"; then
        best_real=$real
        best_sim_ms=${sim_ms:-0}
    fi
done

entry="{\"bench\": \"$(basename "$bin")\""
entry="$entry, \"mode\": \"$mode\""
# Active dispatch policy (DESIGN.md §9): a TRT_POLICY override changes
# what the timed hot loop does, so the history entry must record it —
# "baseline" when unset (each bench config's own policy).
entry="$entry, \"policy\": \"${TRT_POLICY:-baseline}\""
# Knobs that change what the hot loop simulates (and so what a wall
# number means) are recorded with their defaults made explicit, so
# rows stay comparable across commits even when a knob was unset:
# BVH branching width (DESIGN.md §11), shared predictor, SIMD kernels
# (compile default on), and the SM tick fan-out width.
entry="$entry, \"bvh_width\": ${TRT_BVH_WIDTH:-4}"
entry="$entry, \"predict_shared\": ${TRT_PREDICT_SHARED:-0}"
entry="$entry, \"simd\": ${TRT_SIMD:-1}"
entry="$entry, \"sim_threads\": ${TRT_SIM_THREADS:-0}"
entry="$entry, \"env\": \"$env_desc\""
entry="$entry, \"runs\": [$all_real]"
entry="$entry, \"best_real_s\": $best_real"
entry="$entry, \"best_simulate_ms\": ${best_sim_ms:-0}"
# Provenance: without the commit (plus a dirty-tree flag) a history of
# wall numbers cannot be mapped back to the code that produced them.
commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
dirty=0
[ -n "$(git status --porcelain 2>/dev/null)" ] && dirty=1
entry="$entry, \"commit\": \"$commit\""
entry="$entry, \"dirty\": $dirty"
if [ -n "${BASELINE_WALL_S:-}" ]; then
    speedup=$(echo "$BASELINE_WALL_S $best_real" |
              awk '{printf "%.3f", $1 / $2}')
    entry="$entry, \"baseline_wall_s\": $BASELINE_WALL_S"
    entry="$entry, \"speedup\": $speedup"
fi
entry="$entry, \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\"}"

printf '%s\n' "$entry" >> "$out"

echo "bench_wall: appended to $out" >&2
tail -1 "$out"
