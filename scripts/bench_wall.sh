#!/usr/bin/env bash
# Wall-clock smoke benchmark of the simulator hot loop.
#
# Times build/bench/bench_fig10_overall (the headline figure: all three
# architectures over the scene suite) at smoke scale with the run cache
# disabled, so every run is a full cycle-level simulation. Writes the
# result as JSON to BENCH_simwall.json (or $1).
#
# Environment:
#   BENCH_RUNS       repetitions, best-of is reported (default 3)
#   BASELINE_WALL_S  optional baseline seconds; adds a "speedup" field
#   BENCH_BIN        override the benchmark binary
#   BENCH_NO_BUILD   =1: skip the rebuild and time the binary as-is
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_simwall.json}
runs=${BENCH_RUNS:-3}
bin=${BENCH_BIN:-build/bench/bench_fig10_overall}

# Rebuild first so we never time a stale binary; a build failure aborts
# the benchmark instead of silently measuring yesterday's code.
if [ "${BENCH_NO_BUILD:-0}" != "1" ]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target "$(basename "$bin")" >/dev/null
fi

if [ ! -x "$bin" ]; then
    echo "bench_wall: $bin not built" >&2
    exit 1
fi

export TRT_FAST=1
export TRT_RUN_CACHE=0

best_real=""
best_sim_ms=""
all_real=""
for i in $(seq 1 "$runs"); do
    log=$(mktemp)
    start=$(date +%s.%N)
    "$bin" >"$log" 2>&1
    end=$(date +%s.%N)
    real=$(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')
    sim_ms=$(sed -n 's/.*simulate \([0-9]*\) ms.*/\1/p' "$log" | tail -1)
    rm -f "$log"
    echo "bench_wall: run $i/$runs real=${real}s simulate=${sim_ms:-?}ms" >&2
    all_real="${all_real:+$all_real, }$real"
    if [ -z "$best_real" ] || awk "BEGIN{exit !($real < $best_real)}"; then
        best_real=$real
        best_sim_ms=${sim_ms:-0}
    fi
done

{
    echo "{"
    echo "  \"bench\": \"$(basename "$bin")\","
    echo "  \"mode\": \"TRT_FAST=1 TRT_RUN_CACHE=0\","
    echo "  \"runs\": [$all_real],"
    echo "  \"best_real_s\": $best_real,"
    echo "  \"best_simulate_ms\": ${best_sim_ms:-0},"
    if [ -n "${BASELINE_WALL_S:-}" ]; then
        speedup=$(echo "$BASELINE_WALL_S $best_real" |
                  awk '{printf "%.3f", $1 / $2}')
        echo "  \"baseline_wall_s\": $BASELINE_WALL_S,"
        echo "  \"speedup\": $speedup,"
    fi
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\""
    echo "}"
} > "$out"

echo "bench_wall: wrote $out" >&2
cat "$out"
