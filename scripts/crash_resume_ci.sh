#!/usr/bin/env bash
# Crash-resume determinism check (CI; DESIGN.md §7).
#
# 1. Runs a scene to completion (cold reference CSVs).
# 2. Reruns with periodic snapshots and a forced mid-run halt
#    (TRT_SNAPSHOT_HALT_AT) — the deterministic stand-in for a crash.
# 3. Resumes with --resume from the newest valid snapshot.
# 4. Requires the resumed run's CSVs to match the reference
#    byte-for-byte, and that the resume actually restored a snapshot
#    rather than silently cold-starting.
#
# Environment:
#   BENCH_BIN        benchmark binary (default bench_fig01_baseline)
#   TRT_SCENES       scene subset (default CRNVL)
#   TRT_SIM_THREADS  resume-side worker threads (default 4: the resume
#                    deliberately uses a different thread count than
#                    the capture to prove thread-count independence)
set -euo pipefail
cd "$(dirname "$0")/.."

bin=${BENCH_BIN:-build/bench/bench_fig01_baseline}
workdir=${1:-.crash_resume_ci}

export TRT_FAST=1
export TRT_RUN_CACHE=0
export TRT_SCENES=${TRT_SCENES:-CRNVL}
export TRT_SNAPSHOT_DIR=$workdir/snapshots

rm -rf "$workdir"
mkdir -p "$workdir"

echo "crash_resume: cold reference run" >&2
TRT_SIM_THREADS=1 TRT_RESULTS=$workdir/cold "$bin"

echo "crash_resume: crashing mid-run (TRT_SNAPSHOT_HALT_AT)" >&2
set +e
TRT_SIM_THREADS=1 TRT_RESULTS=$workdir/crash \
    TRT_SNAPSHOT_EVERY=2000 TRT_SNAPSHOT_HALT_AT=5000 \
    "$bin" >"$workdir/crash.log" 2>&1
status=$?
set -e
if [ "$status" -eq 0 ]; then
    echo "crash_resume: FAIL - run was expected to halt mid-simulation" >&2
    exit 1
fi

snaps=$(find "$TRT_SNAPSHOT_DIR" -name '*.trtsnap' 2>/dev/null | wc -l)
if [ "$snaps" -eq 0 ]; then
    echo "crash_resume: FAIL - no snapshot written before the halt" >&2
    exit 1
fi
echo "crash_resume: halted with $snaps snapshot(s) on disk" >&2

echo "crash_resume: resuming with --resume" >&2
TRT_SIM_THREADS=${TRT_SIM_THREADS:-4} TRT_RESULTS=$workdir/resumed \
    "$bin" --resume 2>"$workdir/resume.log"

if ! grep -q "\[snapshot\] resuming from" "$workdir/resume.log"; then
    echo "crash_resume: FAIL - resume did not restore a snapshot" >&2
    cat "$workdir/resume.log" >&2
    exit 1
fi

if ! diff -r "$workdir/cold" "$workdir/resumed"; then
    echo "crash_resume: FAIL - resumed results differ from cold run" >&2
    exit 1
fi

echo "crash_resume: OK - resumed run is byte-identical to the cold run" >&2
