#!/usr/bin/env python3
"""Telemetry trace reader (DESIGN.md §12).

Reads the .tsbin binary time series written under TRT_TELEM=1 and the
.trace.json Chrome trace written under TRT_TELEM_TRACE=1, all with the
standard library only.

Subcommands:
  csv <trace.tsbin> [out.csv]   convert the per-SM time series to CSV
                                (cumulative counters differentiated into
                                per-window deltas).
  summary <trace.tsbin>         per-phase summary: cycles, samples,
                                mean occupancy / queue depth / predictor
                                hit rate per sampled-simulation phase.
  residency <trace.tsbin>       queue-residency profile: time-weighted
                                mean and peak parked rays, split into
                                the pre-treelet (warm-up) window vs the
                                steady queue phase — the DESIGN.md §8
                                warm-up-bias comparison.
  validate <trace.trace.json>   schema-check a Chrome trace-event file
                                (used by CI); exit 1 on violations.
"""

import json
import signal
import struct
import sys

MAGIC = 0x54545254  # 'TRTT'
VERSION = 1

SAMPLE_FIELDS = (
    "cycle", "sm", "raysHeld", "queuedRays", "queueCount",
    "queueDepth0", "queueDepth1", "queueDepth2", "queueDepth3",
    "treeletSwitches", "predictLookups", "predictHits", "nodeVisits",
    "raysCompleted",
)
GPU_FIELDS = (
    "cycle", "bvhL1Accesses", "bvhL1Misses", "bvhL2Accesses",
    "bvhL2Misses", "dramReadBytes", "dramWriteBytes",
)
# Cumulative per-SM counters: the CSV converter emits per-window deltas.
CUMULATIVE = ("treeletSwitches", "predictLookups", "predictHits",
              "nodeVisits", "raysCompleted")

EVENT_KINDS = (
    "warp_formed", "treelet_switch", "queue_drained", "queue_overflow",
    "spec_verdict", "prefetch_issue", "treelet_phase_entered",
    "snapshot_capture", "phase_begin",
)
PHASES = ("detailed", "measure", "fast_forward", "warmup")


class Trace:
    def __init__(self):
        self.every = 0
        self.num_sms = 0
        self.trace_flag = False
        self.samples = []      # dicts keyed by SAMPLE_FIELDS
        self.gpu_samples = []  # dicts keyed by GPU_FIELDS
        self.events = []       # (cycle, sm, kind, a0, a1)


class Reader:
    def __init__(self, data):
        self.data = data
        self.off = 0

    def u(self, fmt):
        (v,) = struct.unpack_from(fmt, self.data, self.off)
        self.off += struct.calcsize(fmt)
        return v

    def u8(self):
        return self.u("<B")

    def u32(self):
        return self.u("<I")

    def u64(self):
        return self.u("<Q")


def read_tsbin(path):
    with open(path, "rb") as f:
        r = Reader(f.read())
    if r.u32() != MAGIC:
        raise SystemExit(f"{path}: not a telemetry trace (bad magic)")
    version = r.u32()
    if version != VERSION:
        raise SystemExit(f"{path}: unsupported trace version {version}")
    t = Trace()
    t.every = r.u64()
    t.num_sms = r.u32()
    t.trace_flag = r.u8() != 0

    n = r.u64()
    for _ in range(n):
        s = {"cycle": r.u64(), "sm": r.u32(), "raysHeld": r.u32(),
             "queuedRays": r.u32(), "queueCount": r.u32()}
        for i in range(4):
            s[f"queueDepth{i}"] = r.u32()
        for name in CUMULATIVE:
            s[name] = r.u64()
        t.samples.append(s)

    n = r.u64()
    for _ in range(n):
        t.gpu_samples.append({name: r.u64() for name in GPU_FIELDS})

    n = r.u64()
    for _ in range(n):
        cycle = r.u64()
        sm = r.u32()
        kind = r.u8()
        a0 = r.u64()
        a1 = r.u64()
        t.events.append((cycle, sm, kind, a0, a1))
    if r.off != len(r.data):
        raise SystemExit(f"{path}: {len(r.data) - r.off} trailing bytes")
    return t


def cmd_csv(args):
    t = read_tsbin(args[0])
    out = open(args[1], "w") if len(args) > 1 else sys.stdout
    print(",".join(SAMPLE_FIELDS), file=out)
    prev = {}  # sm -> last cumulative values
    for s in t.samples:
        row = dict(s)
        last = prev.setdefault(s["sm"], {k: 0 for k in CUMULATIVE})
        for k in CUMULATIVE:
            row[k] = s[k] - last[k]
            last[k] = s[k]
        print(",".join(str(row[f]) for f in SAMPLE_FIELDS), file=out)
    if out is not sys.stdout:
        out.close()
        print(f"wrote {args[1]}: {len(t.samples)} samples")


def phase_windows(t):
    """[(phase_name, start, end)] from phase_begin events; the whole
    run is 'detailed' when no phase events were traced."""
    marks = [(c, a0) for (c, _, k, a0, _) in t.events
             if EVENT_KINDS[k] == "phase_begin"]
    last = max((s["cycle"] for s in t.samples), default=0)
    last = max(last, max((c for c, _, _, _, _ in t.events), default=0))
    if not marks:
        return [("detailed", 0, last)]
    marks.sort()
    out = []
    for i, (c, p) in enumerate(marks):
        end = marks[i + 1][0] if i + 1 < len(marks) else last
        out.append((PHASES[p], c, end))
    return out


def mean(xs):
    return sum(xs) / len(xs) if xs else 0.0


def cmd_summary(args):
    t = read_tsbin(args[0])
    print(f"{args[0]}: every={t.every} sms={t.num_sms} "
          f"samples={len(t.samples)} gpu_samples={len(t.gpu_samples)} "
          f"events={len(t.events)}")
    for phase, start, end in phase_windows(t):
        ss = [s for s in t.samples if start <= s["cycle"] < max(end, start + 1)]
        # Per-SM deltas of the cumulative counters inside the window.
        dlook = dhit = 0
        per_sm = {}
        for s in ss:
            p = per_sm.get(s["sm"])
            if p is not None:
                dlook += s["predictLookups"] - p["predictLookups"]
                dhit += s["predictHits"] - p["predictHits"]
            per_sm[s["sm"]] = s
        hit = f"{100.0 * dhit / dlook:.1f}%" if dlook else "n/a"
        print(f"  phase {phase:<12} [{start}, {end}): "
              f"{len(ss)} samples, "
              f"mean rays/SM {mean([s['raysHeld'] for s in ss]):.1f}, "
              f"mean parked {mean([s['queuedRays'] for s in ss]):.1f}, "
              f"mean queues {mean([s['queueCount'] for s in ss]):.1f}, "
              f"predict hit {hit}")
    ev_counts = {}
    for (_, _, k, _, _) in t.events:
        name = EVENT_KINDS[k] if k < len(EVENT_KINDS) else f"kind{k}"
        ev_counts[name] = ev_counts.get(name, 0) + 1
    for name in sorted(ev_counts):
        print(f"  events {name}: {ev_counts[name]}")


def cmd_residency(args):
    """Queue residency before vs after the first treelet-stationary
    dispatch (per SM): quantifies the warm-up bias DESIGN.md §8
    discusses — sampled warm-up must rebuild parked-ray populations
    comparable to the steady state's."""
    t = read_tsbin(args[0])
    first_treelet = {}
    for (c, sm, k, _, _) in t.events:
        if EVENT_KINDS[k] == "treelet_phase_entered":
            first_treelet.setdefault(sm, c)
    pre, post = [], []
    for s in t.samples:
        boundary = first_treelet.get(s["sm"])
        if boundary is None or s["cycle"] < boundary:
            pre.append(s["queuedRays"])
        else:
            post.append(s["queuedRays"])
    def line(tag, xs):
        peak = max(xs) if xs else 0
        print(f"  {tag:<22} samples={len(xs):<6} "
              f"mean parked={mean(xs):10.1f}  peak={peak}")
    print(f"{args[0]}: queue residency around the initial->queue-phase "
          "transition")
    line("initial phase (pre)", pre)
    line("queue phase (post)", post)
    if not first_treelet:
        print("  (no treelet_phase_entered events: baseline run or "
              "trace disabled)")


def cmd_validate(args):
    path = args[0]
    with open(path) as f:
        doc = json.load(f)
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise SystemExit(f"{path}: missing traceEvents")
    events = doc["traceEvents"]
    open_b = {}
    counters = 0
    instants = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("M", "C", "i", "B", "E"):
            errors.append(f"event {i}: unknown ph {ph!r}")
            continue
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name",
                                     "thread_sort_index"):
                errors.append(f"event {i}: unknown metadata "
                              f"{e.get('name')!r}")
            continue
        # E events inherit the name of their open B; name not required.
        keys = ("pid", "tid", "ts") if ph == "E" else \
               ("name", "pid", "tid", "ts")
        for key in keys:
            if key not in e:
                errors.append(f"event {i}: missing {key!r}")
        if not isinstance(e.get("ts"), int) or e.get("ts", 0) < 0:
            errors.append(f"event {i}: non-integer ts")
        if ph == "C":
            counters += 1
            if not e.get("args"):
                errors.append(f"event {i}: counter without args")
            elif not all(isinstance(v, int) for v in e["args"].values()):
                errors.append(f"event {i}: non-integer counter value")
        elif ph == "i":
            instants += 1
            if e.get("s") != "t":
                errors.append(f"event {i}: instant without thread scope")
        elif ph == "B":
            open_b[(e["pid"], e["tid"])] = \
                open_b.get((e["pid"], e["tid"]), 0) + 1
        elif ph == "E":
            k = (e["pid"], e["tid"])
            if open_b.get(k, 0) <= 0:
                errors.append(f"event {i}: E without matching B")
            else:
                open_b[k] -= 1
    for k, n in open_b.items():
        if n:
            errors.append(f"track {k}: {n} unclosed B events")
    # The writer guarantees timestamp order within each counter series
    # (pid, tid, name) and within each duration track (pid, tid);
    # different series on one track are written sequentially, so a
    # whole-track check would false-positive.
    last_ts = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph in ("B", "E"):
            k = (e.get("pid"), e.get("tid"), "dur")
        else:
            k = (e.get("pid"), e.get("tid"), e.get("name"))
        if last_ts.get(k, -1) > e.get("ts", 0):
            errors.append(f"event {i}: timestamps not monotonic on {k}")
            break
        last_ts[k] = e.get("ts", 0)
    for err in errors[:20]:
        print(f"{path}: {err}", file=sys.stderr)
    if errors:
        raise SystemExit(f"{path}: {len(errors)} schema violations")
    print(f"{path}: OK ({len(events)} events: {counters} counter, "
          f"{instants} instant)")


def main():
    cmds = {"csv": cmd_csv, "summary": cmd_summary,
            "residency": cmd_residency, "validate": cmd_validate}
    if len(sys.argv) < 3 or sys.argv[1] not in cmds:
        print(__doc__.strip(), file=sys.stderr)
        raise SystemExit(2)
    cmds[sys.argv[1]](sys.argv[2:])


if __name__ == "__main__":
    # Die quietly when the reader goes away (csv ... | head).
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    main()
