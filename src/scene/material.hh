/**
 * @file
 * Surface material model for the path tracer. Kept deliberately small:
 * the paper's workload is LumiBench path tracing at 1 spp with lambertian
 * and specular surfaces plus emitters; what matters architecturally is the
 * ray *divergence* each material class induces, not shading fidelity.
 */

#ifndef TRT_SCENE_MATERIAL_HH
#define TRT_SCENE_MATERIAL_HH

#include <cstdint>

#include "geom/vec.hh"

namespace trt
{

/** Material archetypes. */
enum class MaterialType : uint8_t
{
    Lambert,   //!< Diffuse; scatters into the cosine hemisphere (incoherent
               //!< secondary rays -> the hard case for caches).
    Mirror,    //!< Perfect specular reflection (coherent secondaries).
    Glossy,    //!< Specular with roughness-perturbed reflection.
    Emissive,  //!< Light source; terminates the path.
};

/** A surface material. */
struct Material
{
    MaterialType type = MaterialType::Lambert;
    Vec3 albedo{0.8f, 0.8f, 0.8f};
    Vec3 emission{0.0f, 0.0f, 0.0f};
    float roughness = 0.0f;  //!< Glossy lobe width in [0, 1].

    static Material
    lambert(const Vec3 &albedo)
    {
        Material m;
        m.type = MaterialType::Lambert;
        m.albedo = albedo;
        return m;
    }

    static Material
    mirror(const Vec3 &albedo = {0.95f, 0.95f, 0.95f})
    {
        Material m;
        m.type = MaterialType::Mirror;
        m.albedo = albedo;
        return m;
    }

    static Material
    glossy(const Vec3 &albedo, float roughness)
    {
        Material m;
        m.type = MaterialType::Glossy;
        m.albedo = albedo;
        m.roughness = roughness;
        return m;
    }

    static Material
    emissive(const Vec3 &emission)
    {
        Material m;
        m.type = MaterialType::Emissive;
        m.emission = emission;
        m.albedo = {0.0f, 0.0f, 0.0f};
        return m;
    }
};

} // namespace trt

#endif // TRT_SCENE_MATERIAL_HH
