/**
 * @file
 * A renderable scene: triangle soup, materials, camera and environment.
 */

#ifndef TRT_SCENE_SCENE_HH
#define TRT_SCENE_SCENE_HH

#include <string>
#include <vector>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "scene/camera.hh"
#include "scene/material.hh"

namespace trt
{

/** A complete scene ready for BVH construction and rendering. */
struct Scene
{
    std::string name;
    std::vector<Triangle> triangles;
    std::vector<Material> materials;
    Camera camera;
    /** Environment radiance returned by rays that escape the scene. */
    Vec3 background{0.6f, 0.7f, 0.9f};

    /** Bounds over all triangles. */
    Aabb
    bounds() const
    {
        Aabb b;
        for (const auto &t : triangles)
            b.grow(t.bounds());
        return b;
    }

    /** The material bound to triangle @p tri_index. */
    const Material &
    materialOf(uint32_t tri_index) const
    {
        return materials[triangles[tri_index].material];
    }
};

} // namespace trt

#endif // TRT_SCENE_SCENE_HH
