/**
 * @file
 * Registry of the 14 LumiBench stand-in scenes (paper Table 2). Each
 * generator is procedural and deterministic; triangle budgets default to
 * roughly 1/16 of the paper's counts (see DESIGN.md section 2 for the
 * scale-model argument). FOX deliberately gets a larger budget than its
 * 1/16 share: in LumiBench its BVH is outsized relative to its triangle
 * count (fur-like geometry), and our fur-strand stand-in reproduces that
 * by triangle count instead.
 */

#ifndef TRT_SCENE_REGISTRY_HH
#define TRT_SCENE_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scene/scene.hh"

namespace trt
{

/** Descriptor for one benchmark scene. */
struct SceneSpec
{
    std::string name;        //!< LumiBench scene tag, e.g. "BUNNY".
    uint32_t targetTris;     //!< Triangle budget at scale 1.0.
    double paperBvhMb;       //!< BVH size the paper reports (Table 2).
    double paperTriCount;    //!< Triangle count the paper reports.
    std::string description; //!< What the stand-in builds.
};

/** All scene specs in the paper's Table 2 order (ascending BVH size). */
const std::vector<SceneSpec> &lumiBenchSpecs();

/** Names only, in Table 2 order. */
std::vector<std::string> sceneNames();

/** Spec lookup by name; throws std::out_of_range for unknown names. */
const SceneSpec &sceneSpec(const std::string &name);

/**
 * Build a scene by name.
 *
 * @param name One of sceneNames().
 * @param scale Multiplier on the triangle budget (TRT_FAST uses < 1).
 */
Scene buildScene(const std::string &name, float scale = 1.0f);

} // namespace trt

#endif // TRT_SCENE_REGISTRY_HH
