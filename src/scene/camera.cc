#include "scene/camera.hh"

#include <cmath>

#include "geom/rng.hh"

namespace trt
{

Camera::Camera(const Vec3 &pos, const Vec3 &look_at, const Vec3 &up,
               float fov_y_deg)
    : pos_(pos)
{
    constexpr float kPi = 3.14159265358979323846f;
    fwd_ = normalize(look_at - pos);
    right_ = normalize(cross(fwd_, up));
    up_ = cross(right_, fwd_);
    tanHalfFov_ = std::tan(fov_y_deg * kPi / 360.0f);
}

Ray
Camera::generateRay(uint32_t px, uint32_t py, uint32_t width,
                    uint32_t height) const
{
    uint32_t pixel = py * width + px;
    float jx = sampleDim(pixel, 0, 100);
    float jy = sampleDim(pixel, 0, 101);

    float aspect = float(width) / float(height);
    // NDC in [-1, 1] with y up.
    float sx = (2.0f * (float(px) + jx) / float(width) - 1.0f) * aspect;
    float sy = 1.0f - 2.0f * (float(py) + jy) / float(height);

    Vec3 dir = normalize(fwd_ + right_ * (sx * tanHalfFov_) +
                         up_ * (sy * tanHalfFov_));
    return Ray(pos_, dir);
}

} // namespace trt
