#include "scene/procedural.hh"

#include <array>
#include <cmath>
#include <map>

namespace trt
{

Transform
Transform::translate(const Vec3 &d)
{
    Transform x;
    x.t = d;
    return x;
}

Transform
Transform::scale(float s)
{
    return scale(Vec3{s, s, s});
}

Transform
Transform::scale(const Vec3 &s)
{
    Transform x;
    x.m[0][0] = s.x;
    x.m[1][1] = s.y;
    x.m[2][2] = s.z;
    return x;
}

Transform
Transform::rotateY(float radians)
{
    Transform x;
    float c = std::cos(radians), s = std::sin(radians);
    x.m[0][0] = c;
    x.m[0][2] = s;
    x.m[2][0] = -s;
    x.m[2][2] = c;
    return x;
}

Transform
Transform::compose(const Transform &other) const
{
    Transform r;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            r.m[i][j] = 0.0f;
            for (int k = 0; k < 3; k++)
                r.m[i][j] += m[i][k] * other.m[k][j];
        }
    }
    r.t = apply(other.t);
    return r;
}

void
MeshBuilder::addTriangle(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                         uint32_t mat)
{
    Triangle t;
    t.v0 = a;
    t.v1 = b;
    t.v2 = c;
    t.material = mat;
    tris_.push_back(t);
}

void
MeshBuilder::addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                     const Vec3 &d, uint32_t mat)
{
    addTriangle(a, b, c, mat);
    addTriangle(a, c, d, mat);
}

void
MeshBuilder::addBox(const Vec3 &lo, const Vec3 &hi, uint32_t mat)
{
    Vec3 p000{lo.x, lo.y, lo.z}, p001{lo.x, lo.y, hi.z};
    Vec3 p010{lo.x, hi.y, lo.z}, p011{lo.x, hi.y, hi.z};
    Vec3 p100{hi.x, lo.y, lo.z}, p101{hi.x, lo.y, hi.z};
    Vec3 p110{hi.x, hi.y, lo.z}, p111{hi.x, hi.y, hi.z};

    addQuad(p000, p100, p101, p001, mat); // bottom
    addQuad(p010, p011, p111, p110, mat); // top
    addQuad(p000, p001, p011, p010, mat); // -x
    addQuad(p100, p110, p111, p101, mat); // +x
    addQuad(p000, p010, p110, p100, mat); // -z
    addQuad(p001, p101, p111, p011, mat); // +z
}

namespace
{

/** Icosahedron vertex list (unit sphere). */
void
icosahedron(std::vector<Vec3> &verts, std::vector<std::array<int, 3>> &faces)
{
    const float phi = (1.0f + std::sqrt(5.0f)) / 2.0f;
    auto add = [&](float x, float y, float z) {
        verts.push_back(normalize(Vec3{x, y, z}));
    };
    add(-1, phi, 0);
    add(1, phi, 0);
    add(-1, -phi, 0);
    add(1, -phi, 0);
    add(0, -1, phi);
    add(0, 1, phi);
    add(0, -1, -phi);
    add(0, 1, -phi);
    add(phi, 0, -1);
    add(phi, 0, 1);
    add(-phi, 0, -1);
    add(-phi, 0, 1);

    faces = {{0, 11, 5},  {0, 5, 1},   {0, 1, 7},   {0, 7, 10}, {0, 10, 11},
             {1, 5, 9},   {5, 11, 4},  {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
             {3, 9, 4},   {3, 4, 2},   {3, 2, 6},   {3, 6, 8},  {3, 8, 9},
             {4, 9, 5},   {2, 4, 11},  {6, 2, 10},  {8, 6, 7},  {9, 8, 1}};
}

} // anonymous namespace

void
MeshBuilder::addSphere(const Vec3 &center, float radius, int subdivisions,
                       uint32_t mat,
                       const std::function<float(const Vec3 &)> &displace)
{
    std::vector<Vec3> verts;
    std::vector<std::array<int, 3>> faces;
    icosahedron(verts, faces);

    // Midpoint subdivision with vertex sharing so displacement produces a
    // crack-free surface.
    for (int level = 0; level < subdivisions; level++) {
        std::map<std::pair<int, int>, int> midpoint;
        auto mid = [&](int a, int b) {
            auto key = std::minmax(a, b);
            auto it = midpoint.find(key);
            if (it != midpoint.end())
                return it->second;
            Vec3 p = normalize((verts[a] + verts[b]) * 0.5f);
            verts.push_back(p);
            int idx = int(verts.size()) - 1;
            midpoint.emplace(key, idx);
            return idx;
        };
        std::vector<std::array<int, 3>> next;
        next.reserve(faces.size() * 4);
        for (const auto &f : faces) {
            int ab = mid(f[0], f[1]);
            int bc = mid(f[1], f[2]);
            int ca = mid(f[2], f[0]);
            next.push_back({f[0], ab, ca});
            next.push_back({f[1], bc, ab});
            next.push_back({f[2], ca, bc});
            next.push_back({ab, bc, ca});
        }
        faces = std::move(next);
    }

    std::vector<Vec3> world(verts.size());
    for (size_t i = 0; i < verts.size(); i++) {
        float r = radius;
        if (displace)
            r *= 1.0f + displace(verts[i]);
        world[i] = center + verts[i] * r;
    }
    for (const auto &f : faces)
        addTriangle(world[f[0]], world[f[1]], world[f[2]], mat);
}

void
MeshBuilder::addCylinder(const Vec3 &p0, const Vec3 &p1, float radius,
                         int segments, uint32_t mat)
{
    constexpr float kPi = 3.14159265358979323846f;
    Vec3 axis = normalize(p1 - p0);
    // Build a frame around the axis.
    Vec3 side = std::fabs(axis.y) < 0.99f ? Vec3{0, 1, 0} : Vec3{1, 0, 0};
    Vec3 u = normalize(cross(axis, side));
    Vec3 v = cross(axis, u);

    for (int s = 0; s < segments; s++) {
        float a0 = 2.0f * kPi * float(s) / float(segments);
        float a1 = 2.0f * kPi * float(s + 1) / float(segments);
        Vec3 r0 = u * std::cos(a0) + v * std::sin(a0);
        Vec3 r1 = u * std::cos(a1) + v * std::sin(a1);
        addQuad(p0 + r0 * radius, p0 + r1 * radius, p1 + r1 * radius,
                p1 + r0 * radius, mat);
    }
}

void
MeshBuilder::addCone(const Vec3 &base, const Vec3 &apex, float radius,
                     int segments, uint32_t mat)
{
    constexpr float kPi = 3.14159265358979323846f;
    Vec3 axis = normalize(apex - base);
    Vec3 side = std::fabs(axis.y) < 0.99f ? Vec3{0, 1, 0} : Vec3{1, 0, 0};
    Vec3 u = normalize(cross(axis, side));
    Vec3 v = cross(axis, u);

    for (int s = 0; s < segments; s++) {
        float a0 = 2.0f * kPi * float(s) / float(segments);
        float a1 = 2.0f * kPi * float(s + 1) / float(segments);
        Vec3 r0 = u * std::cos(a0) + v * std::sin(a0);
        Vec3 r1 = u * std::cos(a1) + v * std::sin(a1);
        addTriangle(base + r0 * radius, base + r1 * radius, apex, mat);
    }
}

void
MeshBuilder::addHeightfield(float x0, float z0, float x1, float z1, int nx,
                            int nz, uint32_t mat,
                            const std::function<float(float, float)> &height)
{
    auto point = [&](int i, int j) {
        float x = x0 + (x1 - x0) * float(i) / float(nx);
        float z = z0 + (z1 - z0) * float(j) / float(nz);
        return Vec3{x, height(x, z), z};
    };
    for (int i = 0; i < nx; i++) {
        for (int j = 0; j < nz; j++) {
            Vec3 p00 = point(i, j), p10 = point(i + 1, j);
            Vec3 p01 = point(i, j + 1), p11 = point(i + 1, j + 1);
            addTriangle(p00, p10, p11, mat);
            addTriangle(p00, p11, p01, mat);
        }
    }
}

void
MeshBuilder::addBlade(const Vec3 &root, float height, float width,
                      float lean_x, float lean_z, uint32_t mat)
{
    Vec3 tip = root + Vec3{lean_x, height, lean_z};
    Vec3 half{width * 0.5f, 0.0f, width * 0.1f};
    addTriangle(root - half, root + half, tip, mat);
    // Back face so the blade is visible from both sides regardless of
    // winding-sensitive shading (we shade double-sided anyway, but the
    // second triangle thickens the geometric footprint slightly).
    Vec3 mid = lerp(root, tip, 0.5f) + Vec3{0.0f, 0.0f, width * 0.05f};
    addTriangle(root + half, mid, tip, mat);
}

void
MeshBuilder::append(const MeshBuilder &other, const Transform &xf)
{
    tris_.reserve(tris_.size() + other.tris_.size());
    for (const auto &t : other.tris_) {
        Triangle n;
        n.v0 = xf.apply(t.v0);
        n.v1 = xf.apply(t.v1);
        n.v2 = xf.apply(t.v2);
        n.material = t.material;
        tris_.push_back(n);
    }
}

void
MeshBuilder::append(const MeshBuilder &other)
{
    tris_.insert(tris_.end(), other.tris_.begin(), other.tris_.end());
}

float
valueNoise2(float x, float y, uint32_t seed)
{
    auto lattice = [seed](int ix, int iy) {
        uint64_t key = (uint64_t(uint32_t(ix)) << 32) ^ uint32_t(iy);
        return float(hashMix(key ^ (uint64_t(seed) << 17)) >> 8) *
               (1.0f / 16777216.0f);
    };
    int ix = int(std::floor(x)), iy = int(std::floor(y));
    float fx = x - float(ix), fy = y - float(iy);
    // Smoothstep interpolation weights.
    float wx = fx * fx * (3.0f - 2.0f * fx);
    float wy = fy * fy * (3.0f - 2.0f * fy);
    float v00 = lattice(ix, iy), v10 = lattice(ix + 1, iy);
    float v01 = lattice(ix, iy + 1), v11 = lattice(ix + 1, iy + 1);
    float a = v00 + (v10 - v00) * wx;
    float b = v01 + (v11 - v01) * wx;
    return a + (b - a) * wy;
}

float
fbm2(float x, float y, int octaves, uint32_t seed)
{
    float amp = 0.5f, sum = 0.0f, norm = 0.0f;
    for (int o = 0; o < octaves; o++) {
        sum += amp * valueNoise2(x, y, seed + uint32_t(o) * 7919u);
        norm += amp;
        amp *= 0.5f;
        x *= 2.0f;
        y *= 2.0f;
    }
    return norm > 0.0f ? sum / norm : 0.0f;
}

} // namespace trt
