/**
 * @file
 * Procedural mesh-building primitives used to synthesize the LumiBench
 * stand-in scenes (see scene/registry.cc and DESIGN.md section 2). Every
 * builder is deterministic given its RNG seed.
 */

#ifndef TRT_SCENE_PROCEDURAL_HH
#define TRT_SCENE_PROCEDURAL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/intersect.hh"
#include "geom/rng.hh"
#include "geom/vec.hh"

namespace trt
{

/** Minimal affine transform (rotation/scale 3x3 plus translation). */
struct Transform
{
    // Row-major linear part.
    float m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    Vec3 t;

    Vec3
    apply(const Vec3 &p) const
    {
        return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + t.x,
                m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + t.y,
                m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + t.z};
    }

    static Transform translate(const Vec3 &d);
    static Transform scale(float s);
    static Transform scale(const Vec3 &s);
    static Transform rotateY(float radians);
    /** this ∘ other (apply @p other first). */
    Transform compose(const Transform &other) const;
};

/**
 * Accumulates triangles into a mesh. Primitives append triangles bound to
 * a material index managed by the caller.
 */
class MeshBuilder
{
  public:
    std::vector<Triangle> &triangles() { return tris_; }
    const std::vector<Triangle> &triangles() const { return tris_; }
    size_t triangleCount() const { return tris_.size(); }

    void addTriangle(const Vec3 &a, const Vec3 &b, const Vec3 &c,
                     uint32_t mat);
    /** Quad (two triangles) with corners in winding order. */
    void addQuad(const Vec3 &a, const Vec3 &b, const Vec3 &c, const Vec3 &d,
                 uint32_t mat);
    /** Axis-aligned box (12 triangles). */
    void addBox(const Vec3 &lo, const Vec3 &hi, uint32_t mat);
    /**
     * Icosphere with @p subdivisions levels (20 * 4^n triangles),
     * optionally displaced along the normal by @p displace(unit_point).
     */
    void addSphere(const Vec3 &center, float radius, int subdivisions,
                   uint32_t mat,
                   const std::function<float(const Vec3 &)> &displace = {});
    /** Open cylinder between @p p0 and @p p1. */
    void addCylinder(const Vec3 &p0, const Vec3 &p1, float radius,
                     int segments, uint32_t mat);
    /** Cone from base center @p base (radius @p radius) to @p apex. */
    void addCone(const Vec3 &base, const Vec3 &apex, float radius,
                 int segments, uint32_t mat);
    /**
     * Heightfield over [x0,x1]x[z0,z1] sampled on an (nx+1)x(nz+1) grid;
     * 2*nx*nz triangles.
     */
    void addHeightfield(float x0, float z0, float x1, float z1, int nx,
                        int nz, uint32_t mat,
                        const std::function<float(float, float)> &height);
    /** Thin vertical blade (2 triangles), e.g. a grass strand. */
    void addBlade(const Vec3 &root, float height, float width, float lean_x,
                  float lean_z, uint32_t mat);
    /** Append all triangles of @p other transformed by @p xf. */
    void append(const MeshBuilder &other, const Transform &xf);
    /** Append all triangles of @p other as-is. */
    void append(const MeshBuilder &other);

  private:
    std::vector<Triangle> tris_;
};

/** Deterministic value noise in [0, 1] on an integer lattice. */
float valueNoise2(float x, float y, uint32_t seed);

/** Fractal Brownian motion over valueNoise2; @p octaves >= 1. */
float fbm2(float x, float y, int octaves, uint32_t seed);

} // namespace trt

#endif // TRT_SCENE_PROCEDURAL_HH
