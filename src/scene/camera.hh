/**
 * @file
 * Pinhole camera generating primary rays, one per pixel (1 spp with a
 * deterministic in-pixel jitter, matching the paper's workload setup).
 */

#ifndef TRT_SCENE_CAMERA_HH
#define TRT_SCENE_CAMERA_HH

#include <cstdint>

#include "geom/ray.hh"
#include "geom/vec.hh"

namespace trt
{

/** Pinhole camera. */
class Camera
{
  public:
    Camera() : Camera({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 45.0f) {}

    /**
     * @param pos Eye position.
     * @param look_at Target point.
     * @param up Up hint.
     * @param fov_y_deg Vertical field of view in degrees.
     */
    Camera(const Vec3 &pos, const Vec3 &look_at, const Vec3 &up,
           float fov_y_deg);

    /**
     * Primary ray through pixel (px, py) on a width x height image.
     * The in-pixel offset is a deterministic hash of the pixel index so
     * runs are bit-reproducible.
     */
    Ray generateRay(uint32_t px, uint32_t py, uint32_t width,
                    uint32_t height) const;

    const Vec3 &position() const { return pos_; }
    const Vec3 &forward() const { return fwd_; }

    /** Serializable snapshot of the derived camera frame. */
    struct State
    {
        Vec3 pos, fwd, right, up;
        float tanHalfFov;
    };

    State
    state() const
    {
        return {pos_, fwd_, right_, up_, tanHalfFov_};
    }

    static Camera
    fromState(const State &s)
    {
        Camera c;
        c.pos_ = s.pos;
        c.fwd_ = s.fwd;
        c.right_ = s.right;
        c.up_ = s.up;
        c.tanHalfFov_ = s.tanHalfFov;
        return c;
    }

  private:
    Vec3 pos_;
    Vec3 fwd_, right_, up_;
    float tanHalfFov_;
};

} // namespace trt

#endif // TRT_SCENE_CAMERA_HH
