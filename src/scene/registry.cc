#include "scene/registry.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/onb.hh"
#include "scene/procedural.hh"

namespace trt
{

namespace
{

constexpr float kPi = 3.14159265358979323846f;

/**
 * Place the camera on a ring around the scene bounds looking at the
 * center, the way LumiBench frames its scenes.
 */
void
autoCamera(Scene &scene, float azimuth_deg, float elevation_deg,
           float distance_factor, float fov_deg = 50.0f)
{
    Aabb b = scene.bounds();
    Vec3 center = b.center();
    float radius = length(b.extent()) * 0.5f;
    float az = azimuth_deg * kPi / 180.0f;
    float el = elevation_deg * kPi / 180.0f;
    Vec3 offset{std::cos(el) * std::sin(az), std::sin(el),
                std::cos(el) * std::cos(az)};
    Vec3 pos = center + offset * (radius * distance_factor);
    scene.camera = Camera(pos, center, {0, 1, 0}, fov_deg);
}

/** Subdivision level n such that 20 * 4^n is closest to @p budget. */
int
sphereSubdivForBudget(uint32_t budget)
{
    int n = 0;
    while (n < 8 && 20u * (1u << (2 * (n + 1))) <= budget)
        n++;
    return n;
}

/** Grid resolution r such that 2 * r * r is about @p budget. */
int
gridResForBudget(uint32_t budget)
{
    int r = int(std::sqrt(std::max(2.0, double(budget) / 2.0)));
    return std::max(1, r);
}

/** An emissive ceiling/sky panel sized to the scene, added last. */
void
addLightPanel(Scene &scene, MeshBuilder &mb, const Vec3 &emission)
{
    uint32_t mat = uint32_t(scene.materials.size());
    scene.materials.push_back(Material::emissive(emission));
    Aabb b;
    for (const auto &t : mb.triangles())
        b.grow(t.bounds());
    Vec3 c = b.center();
    Vec3 e = b.extent();
    float y = b.hi.y + e.y * 0.35f;
    float hx = e.x * 0.25f, hz = e.z * 0.25f;
    mb.addQuad({c.x - hx, y, c.z - hz}, {c.x + hx, y, c.z - hz},
               {c.x + hx, y, c.z + hz}, {c.x - hx, y, c.z + hz}, mat);
}

/** A simple conifer used by CHSNT / FRST / PARK. */
MeshBuilder
makeTree(Pcg32 &rng, uint32_t leaf_budget, uint32_t trunk_mat,
         uint32_t leaf_mat)
{
    MeshBuilder t;
    float h = rng.nextRange(3.0f, 5.0f);
    t.addCylinder({0, 0, 0}, {0, h * 0.45f, 0}, 0.15f * h / 4.0f, 8,
                  trunk_mat);
    // Either a layered conifer or a blade-leaf canopy depending on the
    // leaf budget, so small trees stay cheap.
    int layers = 3;
    uint32_t cone_tris = uint32_t(layers) * 10u;
    if (leaf_budget > cone_tris * 4) {
        uint32_t blades = (leaf_budget - cone_tris) / 2;
        for (uint32_t i = 0; i < blades; i++) {
            float ang = rng.nextRange(0.0f, 2.0f * kPi);
            float rad = rng.nextRange(0.0f, h * 0.35f);
            float y = rng.nextRange(h * 0.35f, h);
            Vec3 root{std::cos(ang) * rad, y, std::sin(ang) * rad};
            t.addBlade(root, rng.nextRange(0.1f, 0.3f),
                       rng.nextRange(0.05f, 0.12f),
                       rng.nextRange(-0.15f, 0.15f),
                       rng.nextRange(-0.15f, 0.15f), leaf_mat);
        }
    }
    for (int l = 0; l < layers; l++) {
        float base = h * (0.3f + 0.2f * float(l));
        float rad = h * 0.35f * (1.0f - 0.25f * float(l));
        t.addCone({0, base, 0}, {0, base + h * 0.3f, 0}, rad, 10, leaf_mat);
    }
    return t;
}

// ---------------------------------------------------------------------
// Scene generators. Each consumes a triangle budget and returns a Scene.
// ---------------------------------------------------------------------

Scene
makeBunny(uint32_t budget)
{
    Scene s;
    s.name = "BUNNY";
    s.materials = {Material::lambert({0.75f, 0.71f, 0.68f}),   // body
                   Material::lambert({0.45f, 0.55f, 0.35f}),   // ground
                   Material::glossy({0.7f, 0.7f, 0.75f}, 0.2f)};

    MeshBuilder mb;
    Pcg32 rng(101);
    uint32_t body_budget = budget * 6 / 10;
    int sub = sphereSubdivForBudget(body_budget);
    auto lump = [](const Vec3 &p) {
        // Ears/haunches-ish lumpy displacement.
        return 0.25f * fbm2(p.x * 2.0f + 3.0f, p.y * 2.0f + p.z, 4, 7u) +
               0.35f * std::fmax(0.0f, p.y) * valueNoise2(p.x * 3, p.z * 3,
                                                          11u);
    };
    mb.addSphere({0, 1.2f, 0}, 1.0f, sub, 0, lump);
    mb.addSphere({1.6f, 0.5f, 0.8f}, 0.45f, std::max(1, sub - 2), 2);

    uint32_t used = uint32_t(mb.triangleCount());
    int res = gridResForBudget(budget > used ? budget - used : 2);
    mb.addHeightfield(-6, -6, 6, 6, res, res, 1, [](float x, float z) {
        return 0.12f * fbm2(x * 0.5f, z * 0.5f, 3, 23u);
    });

    addLightPanel(s, mb, {14, 13, 12});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 35, 22, 1.5f);
    return s;
}

Scene
makeSponza(uint32_t budget)
{
    Scene s;
    s.name = "SPNZA";
    s.materials = {Material::lambert({0.73f, 0.65f, 0.55f}),  // stone
                   Material::lambert({0.60f, 0.25f, 0.20f}),  // drapes
                   Material::lambert({0.55f, 0.50f, 0.45f}),  // floor
                   Material::lambert({0.35f, 0.30f, 0.28f})}; // trim

    MeshBuilder mb;
    // Atrium: two colonnade rows along x, open courtyard between.
    const float L = 20.0f, W = 10.0f, H = 8.0f;
    for (int row = 0; row < 2; row++) {
        float z = row == 0 ? -W * 0.5f : W * 0.5f;
        for (int i = 0; i < 9; i++) {
            float x = -L * 0.5f + 2.2f + float(i) * 2.0f;
            mb.addCylinder({x, 0, z}, {x, H * 0.55f, z}, 0.35f, 12, 0);
            mb.addBox({x - 0.5f, H * 0.55f, z - 0.5f},
                      {x + 0.5f, H * 0.62f, z + 0.5f}, 3);
            mb.addBox({x - 0.45f, -0.05f, z - 0.45f},
                      {x + 0.45f, 0.12f, z + 0.45f}, 3);
        }
        // Upper gallery ledge.
        mb.addBox({-L * 0.5f, H * 0.62f, z - 0.6f},
                  {L * 0.5f, H * 0.7f, z + 0.6f}, 0);
        // Hanging drapes.
        for (int i = 0; i < 5; i++) {
            float x = -L * 0.5f + 3.5f + float(i) * 3.4f;
            mb.addQuad({x, H * 0.6f, z - 0.02f}, {x + 1.6f, H * 0.6f,
                        z - 0.02f}, {x + 1.6f, H * 0.25f, z + 0.25f},
                       {x, H * 0.25f, z + 0.25f}, 1);
        }
    }
    // End walls.
    mb.addBox({-L * 0.5f - 0.4f, 0, -W * 0.5f - 1.5f},
              {-L * 0.5f, H, W * 0.5f + 1.5f}, 0);
    mb.addBox({L * 0.5f, 0, -W * 0.5f - 1.5f},
              {L * 0.5f + 0.4f, H, W * 0.5f + 1.5f}, 0);
    // Outer side walls behind the colonnades.
    mb.addBox({-L * 0.5f, 0, -W * 0.5f - 1.5f},
              {L * 0.5f, H, -W * 0.5f - 1.2f}, 0);
    mb.addBox({-L * 0.5f, 0, W * 0.5f + 1.2f},
              {L * 0.5f, H, W * 0.5f + 1.5f}, 0);

    // Tessellated floor consumes the remaining budget (worn stone).
    uint32_t used = uint32_t(mb.triangleCount());
    int res = gridResForBudget(budget > used ? budget - used : 2);
    mb.addHeightfield(-L * 0.5f, -W * 0.5f - 1.5f, L * 0.5f, W * 0.5f + 1.5f,
                      res, res, 2, [](float x, float z) {
                          return 0.02f * fbm2(x * 2.0f, z * 2.0f, 3, 31u);
                      });

    addLightPanel(s, mb, {16, 15, 13});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 78, 12, 1.15f, 60.0f);
    return s;
}

Scene
makeChestnut(uint32_t budget)
{
    Scene s;
    s.name = "CHSNT";
    s.materials = {Material::lambert({0.42f, 0.30f, 0.20f}),  // bark
                   Material::lambert({0.25f, 0.50f, 0.18f}),  // leaves
                   Material::lambert({0.40f, 0.48f, 0.30f})}; // ground

    MeshBuilder mb;
    Pcg32 rng(303);
    // Trunk and main branches.
    mb.addCylinder({0, 0, 0}, {0, 4.0f, 0}, 0.5f, 16, 0);
    for (int i = 0; i < 7; i++) {
        float ang = 2.0f * kPi * float(i) / 7.0f + rng.nextFloat();
        Vec3 dir{std::cos(ang), 1.1f, std::sin(ang)};
        Vec3 base{0, 3.2f + 0.3f * float(i % 3), 0};
        mb.addCylinder(base, base + normalize(dir) * 2.8f, 0.18f, 8, 0);
    }
    // Leaf canopy: blades scattered in a sphere shell.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t ground_budget = budget / 8;
    uint32_t leaves = budget > used + ground_budget
                          ? (budget - used - ground_budget) / 2
                          : 100;
    for (uint32_t i = 0; i < leaves; i++) {
        Vec3 d = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        float r = 2.2f + 1.5f * std::cbrt(rng.nextFloat());
        Vec3 root = Vec3{0, 5.2f, 0} + d * r;
        if (root.y < 2.0f)
            root.y = 2.0f + rng.nextFloat();
        mb.addBlade(root, rng.nextRange(0.12f, 0.3f),
                    rng.nextRange(0.08f, 0.18f), rng.nextRange(-0.2f, 0.2f),
                    rng.nextRange(-0.2f, 0.2f), 1);
    }
    int res = gridResForBudget(ground_budget);
    mb.addHeightfield(-9, -9, 9, 9, res, res, 2, [](float x, float z) {
        return 0.10f * fbm2(x * 0.7f, z * 0.7f, 3, 41u);
    });

    addLightPanel(s, mb, {15, 14, 12});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 120, 10, 1.35f);
    return s;
}

Scene
makeRef(uint32_t budget)
{
    Scene s;
    s.name = "REF";
    s.materials = {Material::lambert({0.7f, 0.7f, 0.7f}),    // walls
                   Material::mirror(),                        // spheres
                   Material::glossy({0.8f, 0.6f, 0.3f}, 0.1f),
                   Material::lambert({0.2f, 0.3f, 0.6f}),
                   Material::mirror({0.9f, 0.95f, 0.9f})};

    MeshBuilder mb;
    // Mirror/glossy spheres on a tessellated studio floor; the classic
    // reflection test arrangement.
    uint32_t sphere_budget = budget / 2;
    int sub = sphereSubdivForBudget(sphere_budget / 3);
    mb.addSphere({-2.4f, 1.0f, 0.0f}, 1.0f, sub, 1);
    mb.addSphere({0.0f, 1.0f, -0.8f}, 1.0f, sub, 4);
    mb.addSphere({2.4f, 1.0f, 0.0f}, 1.0f, sub, 2);
    // Backdrop panels.
    mb.addQuad({-6, 0, -4}, {6, 0, -4}, {6, 6, -4}, {-6, 6, -4}, 3);
    mb.addBox({-6.2f, 0, -4.2f}, {-6.0f, 6, 4}, 0);
    mb.addBox({6.0f, 0, -4.2f}, {6.2f, 6, 4}, 0);

    uint32_t used = uint32_t(mb.triangleCount());
    int res = gridResForBudget(budget > used ? budget - used : 2);
    mb.addHeightfield(-6, -4, 6, 4, res, res, 0, [](float x, float z) {
        return 0.01f * valueNoise2(x * 4, z * 4, 55u);
    });

    addLightPanel(s, mb, {18, 17, 16});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 0, 14, 1.45f);
    return s;
}

Scene
makeCarnival(uint32_t budget)
{
    Scene s;
    s.name = "CRNVL";
    s.materials = {Material::lambert({0.8f, 0.2f, 0.2f}),   // red
                   Material::lambert({0.9f, 0.8f, 0.2f}),   // yellow
                   Material::lambert({0.2f, 0.4f, 0.8f}),   // blue
                   Material::lambert({0.45f, 0.42f, 0.38f}),// ground
                   Material::emissive({6, 5, 3}),           // bulbs
                   Material::glossy({0.7f, 0.7f, 0.8f}, 0.15f)};

    MeshBuilder mb;
    Pcg32 rng(505);
    // Ferris wheel: hub, spokes, cabins.
    Vec3 hub{0, 6.5f, 0};
    mb.addCylinder(hub - Vec3{0, 0, 0.6f}, hub + Vec3{0, 0, 0.6f}, 0.5f, 12,
                   5);
    for (int i = 0; i < 12; i++) {
        float ang = 2.0f * kPi * float(i) / 12.0f;
        Vec3 rim = hub + Vec3{std::cos(ang) * 5.0f, std::sin(ang) * 5.0f, 0};
        mb.addCylinder(hub, rim, 0.08f, 6, 5);
        mb.addBox(rim - Vec3{0.5f, 0.8f, 0.4f}, rim + Vec3{0.5f, 0.2f, 0.4f},
                  uint32_t(i % 3));
        mb.addSphere(rim + Vec3{0, 0.35f, 0}, 0.18f, 1, 4);
    }
    // Support legs.
    mb.addCylinder({-2.5f, 0, 1.0f}, hub, 0.25f, 8, 5);
    mb.addCylinder({2.5f, 0, 1.0f}, hub, 0.25f, 8, 5);
    // Tents.
    for (int i = 0; i < 6; i++) {
        float x = -12.0f + 4.5f * float(i);
        float z = 7.0f + rng.nextRange(-1.0f, 1.0f);
        mb.addCylinder({x, 0, z}, {x, 2.2f, z}, 1.6f, 12, uint32_t(i % 3));
        mb.addCone({x, 2.2f, z}, {x, 4.2f, z}, 2.0f, 12, uint32_t((i+1)%3));
    }
    // Stalls.
    for (int i = 0; i < 8; i++) {
        float x = rng.nextRange(-12.0f, 12.0f);
        float z = rng.nextRange(-9.0f, -4.0f);
        mb.addBox({x, 0, z}, {x + 2.0f, 2.4f, z + 1.4f}, uint32_t(i % 3));
    }

    uint32_t used = uint32_t(mb.triangleCount());
    int res = gridResForBudget(budget > used ? budget - used : 2);
    mb.addHeightfield(-15, -11, 15, 11, res, res, 3, [](float x, float z) {
        return 0.05f * fbm2(x * 0.4f, z * 0.4f, 3, 67u);
    });

    addLightPanel(s, mb, {13, 12, 11});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 28, 13, 1.25f, 55.0f);
    return s;
}

Scene
makeBathroom(uint32_t budget)
{
    Scene s;
    s.name = "BATH";
    s.materials = {Material::lambert({0.85f, 0.85f, 0.88f}),   // tiles
                   Material::glossy({0.9f, 0.9f, 0.92f}, 0.05f),// ceramic
                   Material::mirror(),                          // mirror
                   Material::lambert({0.5f, 0.45f, 0.4f}),      // wood
                   Material::lambert({0.3f, 0.5f, 0.6f})};      // towel

    MeshBuilder mb;
    const float L = 6.0f, W = 4.5f, H = 3.0f;
    // Room shell: tiled walls built as many small offset quads so the
    // geometry (not a texture) carries the tile detail.
    uint32_t tile_budget = budget / 2;
    int tiles_per_wall = std::max(2, int(std::sqrt(tile_budget / 8.0)));
    auto tile_wall = [&](Vec3 origin, Vec3 du, Vec3 dv, Vec3 jitter_n) {
        Pcg32 trng(hashMix(uint64_t(origin.x * 13 + origin.z * 7)));
        for (int i = 0; i < tiles_per_wall; i++) {
            for (int j = 0; j < tiles_per_wall; j++) {
                float u0 = float(i) / tiles_per_wall;
                float u1 = float(i + 1) / tiles_per_wall - 0.008f;
                float v0 = float(j) / tiles_per_wall;
                float v1 = float(j + 1) / tiles_per_wall - 0.008f;
                Vec3 n = jitter_n * (0.004f * trng.nextFloat());
                mb.addQuad(origin + du * u0 + dv * v0 + n,
                           origin + du * u1 + dv * v0 + n,
                           origin + du * u1 + dv * v1 + n,
                           origin + du * u0 + dv * v1 + n, 0);
            }
        }
    };
    tile_wall({0, 0, 0}, {L, 0, 0}, {0, H, 0}, {0, 0, 1});       // back
    tile_wall({0, 0, W}, {0, 0, -W}, {0, H, 0}, {1, 0, 0});      // left
    tile_wall({L, 0, 0}, {0, 0, W}, {0, H, 0}, {-1, 0, 0});      // right
    tile_wall({0, 0, W}, {L, 0, 0}, {0, 0, -W}, {0, 1, 0});      // floor

    // Tub: half-ellipsoid shell.
    uint32_t used = uint32_t(mb.triangleCount());
    int sub = sphereSubdivForBudget((budget - std::min(budget, used)) / 2);
    MeshBuilder tub;
    tub.addSphere({0, 0, 0}, 1.0f, std::max(2, sub), 1);
    Transform tubxf = Transform::translate({L * 0.3f, 0.55f, W * 0.35f})
                          .compose(Transform::scale({1.6f, 0.55f, 0.9f}));
    mb.append(tub, tubxf);
    // Mirror above a wooden vanity.
    mb.addQuad({L * 0.55f, 1.2f, 0.02f}, {L * 0.9f, 1.2f, 0.02f},
               {L * 0.9f, 2.4f, 0.02f}, {L * 0.55f, 2.4f, 0.02f}, 2);
    mb.addBox({L * 0.52f, 0, 0.0f}, {L * 0.93f, 0.9f, 0.6f}, 3);
    mb.addSphere({L * 0.72f, 1.0f, 0.3f}, 0.18f, 2, 1);
    // Towel rack.
    mb.addCylinder({0.1f, 1.6f, W * 0.7f}, {0.1f, 1.6f, W * 0.9f}, 0.03f, 6,
                   3);
    mb.addQuad({0.12f, 1.6f, W * 0.72f}, {0.12f, 1.6f, W * 0.88f},
               {0.12f, 0.9f, W * 0.88f}, {0.12f, 0.9f, W * 0.72f}, 4);

    addLightPanel(s, mb, {12, 12, 11});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 215, 12, 1.05f, 60.0f);
    return s;
}

Scene
makeParty(uint32_t budget)
{
    Scene s;
    s.name = "PARTY";
    s.materials = {Material::lambert({0.75f, 0.72f, 0.70f}),  // room
                   Material::lambert({0.85f, 0.2f, 0.25f}),
                   Material::lambert({0.2f, 0.7f, 0.3f}),
                   Material::lambert({0.95f, 0.8f, 0.2f}),
                   Material::lambert({0.3f, 0.35f, 0.85f}),
                   Material::glossy({0.8f, 0.8f, 0.85f}, 0.1f),
                   Material::emissive({8, 7, 5})};

    MeshBuilder mb;
    Pcg32 rng(707);
    const float L = 14.0f, W = 10.0f, H = 5.0f;
    mb.addQuad({0, 0, 0}, {L, 0, 0}, {L, 0, W}, {0, 0, W}, 0);
    mb.addQuad({0, 0, 0}, {0, H, 0}, {L, H, 0}, {L, 0, 0}, 0);
    mb.addQuad({0, 0, 0}, {0, 0, W}, {0, H, W}, {0, H, 0}, 0);
    mb.addQuad({L, 0, 0}, {L, H, 0}, {L, H, W}, {L, 0, W}, 0);

    // Tables with glossy tops.
    for (int i = 0; i < 6; i++) {
        float x = rng.nextRange(1.5f, L - 1.5f);
        float z = rng.nextRange(1.5f, W - 1.5f);
        mb.addCylinder({x, 0, z}, {x, 0.9f, z}, 0.08f, 8, 0);
        mb.addCylinder({x, 0.9f, z}, {x, 1.0f, z}, 0.7f, 16, 5);
    }
    // Balloons: floating spheres.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t balloon_budget = (budget - std::min(budget, used)) / 4;
    uint32_t n_balloons = std::max(8u, balloon_budget / 320u);
    for (uint32_t i = 0; i < n_balloons; i++) {
        Vec3 c{rng.nextRange(0.8f, L - 0.8f), rng.nextRange(2.2f, H - 0.4f),
               rng.nextRange(0.8f, W - 0.8f)};
        mb.addSphere(c, rng.nextRange(0.18f, 0.32f), 2,
                     1 + rng.nextBounded(4));
    }
    // Confetti: the bulk of the triangle budget; tiny random quads that
    // spread geometry through the whole room volume (BVH stress).
    used = uint32_t(mb.triangleCount());
    uint32_t confetti = budget > used ? (budget - used) / 2 : 100;
    for (uint32_t i = 0; i < confetti; i++) {
        Vec3 c{rng.nextRange(0.1f, L - 0.1f), rng.nextRange(0.02f, H - 0.2f),
               rng.nextRange(0.1f, W - 0.1f)};
        Vec3 d = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        Vec3 e = normalize(cross(d, Vec3{0.3f, 0.8f, 0.5f})) * 0.03f;
        mb.addTriangle(c, c + d * 0.05f, c + e, 1 + rng.nextBounded(4));
        i++;
        if (i < confetti) {
            mb.addTriangle(c + e, c + d * 0.05f, c + d * 0.05f + e,
                           1 + rng.nextBounded(4));
        }
    }

    addLightPanel(s, mb, {10, 9, 8});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 40, 16, 0.95f, 62.0f);
    return s;
}

Scene
makeSpring(uint32_t budget)
{
    Scene s;
    s.name = "SPRNG";
    s.materials = {Material::lambert({0.35f, 0.55f, 0.25f}),  // grass
                   Material::lambert({0.45f, 0.50f, 0.30f}),  // soil
                   Material::lambert({0.9f, 0.6f, 0.7f}),     // blossom
                   Material::lambert({0.42f, 0.30f, 0.20f}),  // bark
                   Material::lambert({0.95f, 0.9f, 0.4f})};   // flowers

    MeshBuilder mb;
    Pcg32 rng(909);
    const float R = 16.0f;
    auto ground = [](float x, float z) {
        return 0.8f * fbm2(x * 0.15f, z * 0.15f, 4, 77u);
    };
    uint32_t terrain_budget = budget / 6;
    int res = gridResForBudget(terrain_budget);
    mb.addHeightfield(-R, -R, R, R, res, res, 1, ground);

    // A few blossoming trees.
    for (int i = 0; i < 4; i++) {
        float x = rng.nextRange(-R * 0.6f, R * 0.6f);
        float z = rng.nextRange(-R * 0.6f, R * 0.6f);
        MeshBuilder tree = makeTree(rng, 400, 3, 2);
        mb.append(tree, Transform::translate({x, ground(x, z), z}));
    }
    // Flowers.
    for (int i = 0; i < 220; i++) {
        float x = rng.nextRange(-R, R), z = rng.nextRange(-R, R);
        Vec3 c{x, ground(x, z) + 0.25f, z};
        mb.addSphere(c, 0.06f, 1, 4);
    }
    // Grass blades consume the remaining budget.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t blades = budget > used ? (budget - used) / 2 : 100;
    for (uint32_t i = 0; i < blades; i++) {
        float x = rng.nextRange(-R, R), z = rng.nextRange(-R, R);
        mb.addBlade({x, ground(x, z), z}, rng.nextRange(0.15f, 0.45f),
                    rng.nextRange(0.02f, 0.05f), rng.nextRange(-0.2f, 0.2f),
                    rng.nextRange(-0.2f, 0.2f), 0);
    }

    addLightPanel(s, mb, {15, 14, 12});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 65, 14, 1.1f, 55.0f);
    return s;
}

Scene
makeLandscape(uint32_t budget)
{
    Scene s;
    s.name = "LANDS";
    s.materials = {Material::lambert({0.40f, 0.45f, 0.28f}),  // terrain
                   Material::lambert({0.5f, 0.48f, 0.46f}),   // rock
                   Material::lambert({0.85f, 0.87f, 0.9f}),   // snow
                   Material::lambert({0.25f, 0.45f, 0.2f})};  // shrub

    MeshBuilder mb;
    Pcg32 rng(1111);
    const float R = 40.0f;
    auto terrain = [](float x, float z) {
        float base = 6.0f * fbm2(x * 0.05f, z * 0.05f, 5, 99u);
        float ridge = 3.0f *
            std::fabs(fbm2(x * 0.08f + 10.0f, z * 0.08f, 4, 131u) - 0.5f);
        return base + ridge;
    };
    // Terrain is the bulk of the scene.
    uint32_t rock_budget = budget / 10;
    int res = gridResForBudget(budget - rock_budget);
    mb.addHeightfield(-R, -R, R, R, res, res, 0, terrain);

    // Boulders and shrubs scattered on the slopes.
    uint32_t n_rocks = std::max(10u, rock_budget / 700u);
    for (uint32_t i = 0; i < n_rocks; i++) {
        float x = rng.nextRange(-R * 0.9f, R * 0.9f);
        float z = rng.nextRange(-R * 0.9f, R * 0.9f);
        float r = rng.nextRange(0.4f, 1.6f);
        uint32_t mat = rng.nextFloat() < 0.6f ? 1u : 3u;
        uint32_t seed = rng.nextU32();
        mb.addSphere({x, terrain(x, z) + r * 0.4f, z}, r, 2, mat,
                     [seed](const Vec3 &p) {
                         return 0.35f * (valueNoise2(p.x * 2 + float(seed %
                             97), p.y * 2 + p.z, seed) - 0.5f);
                     });
    }

    addLightPanel(s, mb, {16, 15, 13});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 150, 18, 0.9f, 58.0f);
    return s;
}

Scene
makeForest(uint32_t budget)
{
    Scene s;
    s.name = "FRST";
    s.materials = {Material::lambert({0.30f, 0.26f, 0.20f}),  // floor
                   Material::lambert({0.42f, 0.30f, 0.20f}),  // bark
                   Material::lambert({0.15f, 0.40f, 0.15f}),  // needles
                   Material::lambert({0.3f, 0.45f, 0.2f})};   // moss

    MeshBuilder mb;
    Pcg32 rng(1313);
    const float R = 30.0f;
    auto ground = [](float x, float z) {
        return 1.2f * fbm2(x * 0.1f, z * 0.1f, 4, 151u);
    };
    uint32_t terrain_budget = budget / 8;
    int res = gridResForBudget(terrain_budget);
    mb.addHeightfield(-R, -R, R, R, res, res, 0, ground);

    // Instanced trees: most of the budget. Each tree carries a blade
    // canopy so secondary rays inside the forest are highly incoherent.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t tree_budget = budget > used ? budget - used : 1000;
    uint32_t per_tree = 900;
    uint32_t n_trees = std::max(8u, tree_budget / per_tree);
    for (uint32_t i = 0; i < n_trees; i++) {
        float x = rng.nextRange(-R * 0.95f, R * 0.95f);
        float z = rng.nextRange(-R * 0.95f, R * 0.95f);
        MeshBuilder tree = makeTree(rng, per_tree - 100, 1, 2);
        Transform xf = Transform::translate({x, ground(x, z) - 0.1f, z})
                           .compose(Transform::rotateY(rng.nextRange(
                               0.0f, 2.0f * kPi)))
                           .compose(Transform::scale(rng.nextRange(0.7f,
                                                                   1.4f)));
        mb.append(tree, xf);
    }

    addLightPanel(s, mb, {14, 14, 12});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 100, 8, 0.8f, 60.0f);
    return s;
}

Scene
makePark(uint32_t budget)
{
    Scene s;
    s.name = "PARK";
    s.materials = {Material::lambert({0.35f, 0.5f, 0.25f}),   // lawn
                   Material::lambert({0.42f, 0.30f, 0.20f}),  // bark
                   Material::lambert({0.2f, 0.45f, 0.18f}),   // leaves
                   Material::lambert({0.55f, 0.5f, 0.45f}),   // path
                   Material::lambert({0.35f, 0.25f, 0.18f}),  // bench
                   Material::emissive({7, 6, 4}),             // lamp
                   Material::glossy({0.45f, 0.45f, 0.5f}, 0.2f)};

    MeshBuilder mb;
    Pcg32 rng(1515);
    const float R = 34.0f;
    auto ground = [](float x, float z) {
        return 0.6f * fbm2(x * 0.08f, z * 0.08f, 4, 171u);
    };
    uint32_t terrain_budget = budget / 6;
    int res = gridResForBudget(terrain_budget);
    mb.addHeightfield(-R, -R, R, R, res, res, 0, ground);

    // Winding path of flat quads.
    for (int i = -30; i < 30; i++) {
        float t0 = float(i) * 1.1f, t1 = t0 + 1.1f;
        auto px = [](float t) { return t; };
        auto pz = [](float t) { return 6.0f * std::sin(t * 0.12f); };
        Vec3 a{px(t0), 0, pz(t0) - 1.2f}, b{px(t0), 0, pz(t0) + 1.2f};
        Vec3 c{px(t1), 0, pz(t1) + 1.2f}, d{px(t1), 0, pz(t1) - 1.2f};
        a.y = ground(a.x, a.z) + 0.03f;
        b.y = ground(b.x, b.z) + 0.03f;
        c.y = ground(c.x, c.z) + 0.03f;
        d.y = ground(d.x, d.z) + 0.03f;
        mb.addQuad(a, b, c, d, 3);
    }
    // Benches and lamp posts along the path.
    for (int i = 0; i < 10; i++) {
        float t = -28.0f + 6.0f * float(i);
        float x = t, z = 6.0f * std::sin(t * 0.12f) + 2.0f;
        float y = ground(x, z);
        mb.addBox({x - 0.8f, y + 0.35f, z - 0.25f},
                  {x + 0.8f, y + 0.45f, z + 0.25f}, 4);
        mb.addBox({x - 0.8f, y, z - 0.22f}, {x - 0.7f, y + 0.35f, z + 0.22f},
                  4);
        mb.addBox({x + 0.7f, y, z - 0.22f}, {x + 0.8f, y + 0.35f, z + 0.22f},
                  4);
        if (i % 2 == 0) {
            mb.addCylinder({x, y, z - 1.5f}, {x, y + 3.2f, z - 1.5f}, 0.07f,
                           8, 6);
            mb.addSphere({x, y + 3.4f, z - 1.5f}, 0.25f, 2, 5);
        }
    }
    // Trees fill the remaining budget.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t tree_budget = budget > used ? budget - used : 1000;
    uint32_t per_tree = 1100;
    uint32_t n_trees = std::max(6u, tree_budget / per_tree);
    for (uint32_t i = 0; i < n_trees; i++) {
        float x = rng.nextRange(-R * 0.95f, R * 0.95f);
        float z = rng.nextRange(-R * 0.95f, R * 0.95f);
        MeshBuilder tree = makeTree(rng, per_tree - 120, 1, 2);
        Transform xf = Transform::translate({x, ground(x, z) - 0.1f, z})
                           .compose(Transform::scale(rng.nextRange(0.8f,
                                                                   1.5f)));
        mb.append(tree, xf);
    }

    addLightPanel(s, mb, {14, 13, 12});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 55, 11, 0.85f, 58.0f);
    return s;
}

Scene
makeFox(uint32_t budget)
{
    Scene s;
    s.name = "FOX";
    s.materials = {Material::lambert({0.85f, 0.45f, 0.2f}),   // fur
                   Material::lambert({0.95f, 0.93f, 0.9f}),   // chest fur
                   Material::lambert({0.45f, 0.48f, 0.35f}),  // ground
                   Material::lambert({0.2f, 0.15f, 0.12f})};  // paws/nose

    MeshBuilder mb;
    Pcg32 rng(1717);
    // Body: displaced ellipsoid torso + head + tail cones.
    MeshBuilder body;
    body.addSphere({0, 0, 0}, 1.0f, 4, 0, [](const Vec3 &p) {
        return 0.08f * fbm2(p.x * 4, p.y * 4 + p.z, 3, 191u);
    });
    mb.append(body, Transform::translate({0, 1.0f, 0})
                        .compose(Transform::scale({1.5f, 0.85f, 0.8f})));
    mb.addSphere({1.7f, 1.6f, 0}, 0.5f, 3, 0);
    mb.addCone({1.95f, 1.55f, 0}, {2.45f, 1.45f, 0}, 0.22f, 10, 3); // snout
    mb.addCone({1.6f, 1.95f, 0.25f}, {1.75f, 2.4f, 0.32f}, 0.16f, 8, 0);
    mb.addCone({1.6f, 1.95f, -0.25f}, {1.75f, 2.4f, -0.32f}, 0.16f, 8, 0);
    mb.addCone({-1.3f, 1.0f, 0}, {-2.8f, 1.4f, 0}, 0.35f, 12, 0);  // tail
    for (int leg = 0; leg < 4; leg++) {
        float x = leg < 2 ? 0.9f : -0.8f;
        float z = (leg % 2 == 0) ? 0.4f : -0.4f;
        mb.addCylinder({x, 1.0f, z}, {x, 0.0f, z}, 0.12f, 8, 3);
    }
    // Fur: the dominant geometry, mirroring LumiBench FOX's outsized
    // BVH-per-triangle ratio. Strands rooted on the torso/tail surfaces.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t ground_budget = budget / 12;
    uint32_t strands = budget > used + ground_budget
                           ? (budget - used - ground_budget) / 2
                           : 100;
    for (uint32_t i = 0; i < strands; i++) {
        Vec3 d = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        bool tail = rng.nextFloat() < 0.25f;
        Vec3 root;
        uint32_t mat = 0;
        if (tail) {
            float t = rng.nextFloat();
            Vec3 axis = lerp({-1.3f, 1.0f, 0}, {-2.8f, 1.4f, 0}, t);
            root = axis + d * (0.35f * (1.0f - t) + 0.05f);
            mat = t > 0.8f ? 1u : 0u;
        } else {
            root = Vec3{d.x * 1.5f, 1.0f + d.y * 0.85f, d.z * 0.8f};
            mat = (d.y < -0.3f && d.x > 0.2f) ? 1u : 0u;
        }
        mb.addBlade(root, rng.nextRange(0.06f, 0.16f),
                    rng.nextRange(0.01f, 0.03f), d.x * 0.08f, d.z * 0.08f,
                    mat);
    }
    int res = gridResForBudget(ground_budget);
    mb.addHeightfield(-7, -7, 7, 7, res, res, 2, [](float x, float z) {
        return 0.1f * fbm2(x * 0.6f, z * 0.6f, 3, 201u);
    });

    addLightPanel(s, mb, {15, 14, 13});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 25, 14, 1.3f);
    return s;
}

Scene
makeCar(uint32_t budget)
{
    Scene s;
    s.name = "CAR";
    s.materials = {Material::glossy({0.7f, 0.1f, 0.12f}, 0.08f), // paint
                   Material::lambert({0.1f, 0.1f, 0.12f}),       // tires
                   Material::mirror({0.9f, 0.9f, 0.95f}),        // chrome
                   Material::lambert({0.75f, 0.75f, 0.78f}),     // floor
                   Material::glossy({0.4f, 0.5f, 0.6f}, 0.03f)}; // glass-ish

    MeshBuilder mb;
    // Dense body shell: displaced, stretched sphere. The displacement
    // carves wheel arches and a cabin bulge so the silhouette is car-like.
    uint32_t body_budget = budget / 2;
    int sub = sphereSubdivForBudget(body_budget);
    MeshBuilder shell;
    shell.addSphere({0, 0, 0}, 1.0f, sub, 0, [](const Vec3 &p) {
        float cabin = 0.35f * std::exp(-8.0f * (p.x - 0.1f) * (p.x - 0.1f)) *
                      std::fmax(0.0f, p.y);
        float arch = 0.0f;
        for (float wx : {-0.55f, 0.55f}) {
            float dx = p.x - wx;
            float dy = p.y + 0.55f;
            arch -= 0.25f * std::exp(-30.0f * (dx * dx + dy * dy));
        }
        return cabin + arch +
               0.015f * fbm2(p.x * 6, p.y * 6 + p.z * 3, 2, 211u);
    });
    mb.append(shell, Transform::translate({0, 0.85f, 0})
                         .compose(Transform::scale({2.3f, 0.65f, 1.0f})));
    // Windshield band.
    MeshBuilder cabin;
    cabin.addSphere({0, 0, 0}, 1.0f, std::max(2, sub - 2), 4);
    mb.append(cabin, Transform::translate({0.25f, 1.35f, 0})
                         .compose(Transform::scale({1.0f, 0.35f, 0.85f})));
    // Wheels: dense short cylinders plus chrome hub spheres.
    uint32_t wheel_budget = budget / 8;
    int wheel_seg = std::max(12, int(wheel_budget / 4 / 4));
    for (float wx : {-1.35f, 1.35f}) {
        for (float wz : {-0.95f, 0.95f}) {
            mb.addCylinder({wx, 0.4f, wz - 0.12f}, {wx, 0.4f, wz + 0.12f},
                           0.4f, wheel_seg, 1);
            mb.addSphere({wx, 0.4f, wz + (wz > 0 ? 0.13f : -0.13f)}, 0.18f,
                         3, 2);
        }
    }
    // Showroom: tessellated floor and back wall.
    uint32_t used = uint32_t(mb.triangleCount());
    uint32_t rest = budget > used ? budget - used : 2;
    int res = gridResForBudget(rest * 3 / 4);
    mb.addHeightfield(-6, -5, 6, 5, res, res, 3, [](float, float) {
        return 0.0f;
    });
    int wres = gridResForBudget(rest / 4);
    // Back wall as a vertical heightfield (built flat then rotated).
    MeshBuilder wall;
    wall.addHeightfield(-6, 0, 6, 4, wres, std::max(1, wres / 2), 3,
                        [](float, float) { return 0.0f; });
    Transform wallxf;
    // Rotate the heightfield's (x, z) plane up to (x, y): swap y/z.
    wallxf.m[1][1] = 0;
    wallxf.m[1][2] = 1;
    wallxf.m[2][1] = 1;
    wallxf.m[2][2] = 0;
    wallxf.t = {0, 0, -5.0f};
    mb.append(wall, wallxf);

    addLightPanel(s, mb, {17, 16, 15});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 30, 10, 1.35f);
    return s;
}

Scene
makeRobot(uint32_t budget)
{
    Scene s;
    s.name = "ROBOT";
    s.materials = {Material::glossy({0.6f, 0.62f, 0.65f}, 0.15f), // steel
                   Material::lambert({0.8f, 0.5f, 0.1f}),         // accent
                   Material::mirror({0.85f, 0.87f, 0.9f}),        // chrome
                   Material::lambert({0.3f, 0.3f, 0.32f}),        // joints
                   Material::emissive({4, 8, 10}),                // eyes
                   Material::lambert({0.55f, 0.55f, 0.58f})};     // floor

    MeshBuilder mb;
    Pcg32 rng(2121);
    // The robot is assembled from densely tessellated, noise-perturbed
    // parts so the BVH has both large structures and fine detail.
    uint32_t part_budget = budget * 3 / 4;
    auto plated = [](uint32_t seed) {
        return [seed](const Vec3 &p) {
            // Panel lines: quantized noise gives a plated-armour look.
            float v = valueNoise2(p.x * 5 + float(seed % 31), p.y * 5 + p.z,
                                  seed);
            return 0.05f * std::floor(v * 4.0f) / 4.0f;
        };
    };
    struct Part
    {
        Vec3 pos;
        Vec3 scale;
        uint32_t mat;
        float share; // fraction of part budget
    };
    const Part parts[] = {
        {{0, 3.2f, 0}, {1.2f, 1.6f, 0.8f}, 0, 0.28f},     // torso
        {{0, 5.4f, 0}, {0.6f, 0.65f, 0.6f}, 0, 0.12f},    // head
        {{-1.7f, 3.9f, 0}, {0.4f, 1.2f, 0.4f}, 1, 0.10f}, // L upper arm
        {{1.7f, 3.9f, 0}, {0.4f, 1.2f, 0.4f}, 1, 0.10f},  // R upper arm
        {{-1.8f, 2.2f, 0.3f}, {0.32f, 1.0f, 0.32f}, 0, 0.07f},
        {{1.8f, 2.2f, 0.3f}, {0.32f, 1.0f, 0.32f}, 0, 0.07f},
        {{-0.6f, 1.0f, 0}, {0.45f, 1.1f, 0.45f}, 1, 0.10f}, // L leg
        {{0.6f, 1.0f, 0}, {0.45f, 1.1f, 0.45f}, 1, 0.10f},  // R leg
        {{0, 4.5f, 0}, {0.5f, 0.3f, 0.5f}, 3, 0.06f},       // neck
    };
    for (const auto &p : parts) {
        uint32_t b = uint32_t(part_budget * p.share);
        int sub = sphereSubdivForBudget(b);
        MeshBuilder part;
        part.addSphere({0, 0, 0}, 1.0f, sub, p.mat, plated(rng.nextU32()));
        mb.append(part, Transform::translate(p.pos)
                            .compose(Transform::scale(p.scale)));
    }
    // Joints and details.
    for (float sx : {-1.0f, 1.0f}) {
        mb.addSphere({sx * 1.7f, 3.0f, 0.15f}, 0.3f, 3, 2); // elbows
        mb.addSphere({sx * 0.6f, 0.0f, 0.2f}, 0.35f, 3, 3); // feet
        mb.addSphere({sx * 0.22f, 5.5f, 0.5f}, 0.09f, 2, 4); // eyes
    }
    // Antenna and chest plate.
    mb.addCylinder({0, 6.0f, 0}, {0, 6.9f, 0}, 0.04f, 8, 2);
    mb.addSphere({0, 7.0f, 0}, 0.1f, 2, 4);
    mb.addBox({-0.5f, 3.1f, 0.72f}, {0.5f, 3.9f, 0.85f}, 2);

    // Workshop floor consumes the rest.
    uint32_t used = uint32_t(mb.triangleCount());
    int res = gridResForBudget(budget > used ? budget - used : 2);
    mb.addHeightfield(-8, -8, 8, 8, res, res, 5, [](float x, float z) {
        return 0.015f * valueNoise2(x * 2, z * 2, 241u);
    });

    addLightPanel(s, mb, {14, 14, 14});
    s.triangles = std::move(mb.triangles());
    autoCamera(s, 20, 15, 1.35f);
    return s;
}

} // anonymous namespace

const std::vector<SceneSpec> &
lumiBenchSpecs()
{
    // Triangle budgets are ~1/16 of Table 2; FOX is upscaled to preserve
    // the paper's ascending-BVH-size ordering (see file comment).
    static const std::vector<SceneSpec> specs = {
        {"BUNNY", 36000, 13.18,  144100,   "lumpy hero object on terrain"},
        {"SPNZA", 65600, 22.84,  262300,   "colonnaded atrium interior"},
        {"CHSNT", 78400, 28.28,  313200,   "single large tree with leaves"},
        {"REF", 112000, 40.36,  448900,   "mirror/glossy reflection rig"},
        {"CRNVL", 112400, 60.67,  449600,   "carnival: wheel, tents, stalls"},
        {"BATH", 106000, 112.79, 423600,   "tiled bathroom with mirror"},
        {"PARTY", 424000, 156.05, 1700000,  "room full of confetti"},
        {"SPRNG", 476000, 177.96, 1900000,  "meadow with grass blades"},
        {"LANDS", 824000, 303.48, 3300000,  "mountainous heightfield"},
        {"FRST", 1048000, 380.51, 4200000,  "instanced conifer forest"},
        {"PARK", 1500000, 542.53, 6000000,  "park with path and trees"},
        {"FOX", 1800000, 648.48, 1600000,  "fur-covered creature"},
        {"CAR", 3176000, 1328.23, 12700000, "dense car shell in showroom"},
        {"ROBOT", 5152000, 1868.95, 20600000, "plated robot, many parts"},
    };
    return specs;
}

std::vector<std::string>
sceneNames()
{
    std::vector<std::string> names;
    for (const auto &s : lumiBenchSpecs())
        names.push_back(s.name);
    return names;
}

const SceneSpec &
sceneSpec(const std::string &name)
{
    for (const auto &s : lumiBenchSpecs())
        if (s.name == name)
            return s;
    throw std::out_of_range("unknown scene: " + name);
}

Scene
buildScene(const std::string &name, float scale)
{
    const SceneSpec &spec = sceneSpec(name);
    uint32_t budget =
        std::max(500u, uint32_t(double(spec.targetTris) * double(scale)));

    if (name == "BUNNY")
        return makeBunny(budget);
    if (name == "SPNZA")
        return makeSponza(budget);
    if (name == "CHSNT")
        return makeChestnut(budget);
    if (name == "REF")
        return makeRef(budget);
    if (name == "CRNVL")
        return makeCarnival(budget);
    if (name == "BATH")
        return makeBathroom(budget);
    if (name == "PARTY")
        return makeParty(budget);
    if (name == "SPRNG")
        return makeSpring(budget);
    if (name == "LANDS")
        return makeLandscape(budget);
    if (name == "FRST")
        return makeForest(budget);
    if (name == "PARK")
        return makePark(budget);
    if (name == "FOX")
        return makeFox(budget);
    if (name == "CAR")
        return makeCar(budget);
    if (name == "ROBOT")
        return makeRobot(budget);
    throw std::out_of_range("unknown scene: " + name);
}

} // namespace trt
