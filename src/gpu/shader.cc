#include "gpu/shader.hh"

#include "geom/onb.hh"
#include "geom/rng.hh"

namespace trt
{

PathTracer::PathTracer(const Scene &scene, const Bvh &bvh,
                       uint32_t max_bounces, float cutoff)
    : scene_(scene), bvh_(bvh), maxBounces_(max_bounces), cutoff_(cutoff)
{
}

PathState
PathTracer::startPath(uint32_t pixel, uint32_t width, uint32_t height) const
{
    PathState st;
    st.pixel = pixel;
    st.bounce = 0;
    st.alive = true;
    uint32_t px = pixel % width;
    uint32_t py = pixel / width;
    st.ray = scene_.camera.generateRay(px, py, width, height);
    return st;
}

void
PathTracer::shade(PathState &st, const HitRecord &hit) const
{
    if (!hit.hit()) {
        // Escaped: pick up the environment and terminate.
        st.radiance += st.throughput * scene_.background;
        st.alive = false;
        return;
    }

    const Triangle &tri = bvh_.triangles()[hit.triIndex];
    const Material &mat = scene_.materials[tri.material];

    if (mat.type == MaterialType::Emissive) {
        st.radiance += st.throughput * mat.emission;
        st.alive = false;
        return;
    }

    if (st.bounce >= maxBounces_) {
        st.alive = false;
        return;
    }

    // Shading-point frame; double-sided shading (flip toward the ray).
    Vec3 n = normalize(tri.geometricNormal());
    if (dot(n, st.ray.dir) > 0.0f)
        n = -n;
    Vec3 p = st.ray.at(hit.t);

    uint32_t b = st.bounce;
    float u1 = sampleDim(st.pixel, b, 0);
    float u2 = sampleDim(st.pixel, b, 1);

    Vec3 dir;
    switch (mat.type) {
      case MaterialType::Mirror:
        dir = normalize(reflect(st.ray.dir, n));
        break;
      case MaterialType::Glossy: {
        Vec3 r = normalize(reflect(st.ray.dir, n));
        Vec3 fuzz = sampleUniformSphere(u1, u2) * mat.roughness;
        dir = normalize(r + fuzz);
        if (dot(dir, n) <= 0.0f)
            dir = r; // keep the lobe above the surface
        break;
      }
      case MaterialType::Lambert:
      default:
        dir = sampleCosineHemisphere(n, u1, u2);
        break;
    }

    // Cosine-weighted sampling cancels the cosine/pi for Lambert;
    // specular lobes carry albedo directly.
    st.throughput *= mat.albedo;
    st.bounce++;

    if (st.throughput.maxComponent() < cutoff_) {
        // Contribution negligible (paper section 5.1's early exit).
        st.alive = false;
        return;
    }

    st.ray = Ray(p + n * 1e-4f, dir);
    st.alive = true;
}

std::vector<Vec3>
renderReference(const Scene &scene, const Bvh &bvh, uint32_t width,
                uint32_t height, uint32_t max_bounces, float cutoff)
{
    PathTracer pt(scene, bvh, max_bounces, cutoff);
    std::vector<Vec3> fb(size_t(width) * height);
    for (uint32_t pixel = 0; pixel < fb.size(); pixel++) {
        PathState st = pt.startPath(pixel, width, height);
        while (st.alive) {
            HitRecord hit = bvh.intersectClosest(st.ray);
            pt.shade(st, hit);
        }
        fb[pixel] = st.radiance;
    }
    return fb;
}

} // namespace trt
