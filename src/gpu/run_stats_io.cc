#include "gpu/run_stats_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "geom/hash.hh"

namespace trt
{

namespace
{

constexpr uint32_t kMagic = 0x54525452u; // 'TRTR'

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return bool(is);
}

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = v.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    if (n)
        os.write(reinterpret_cast<const char *>(v.data()),
                 std::streamsize(n * sizeof(T)));
}

template <typename T>
bool
readVec(std::istream &is, std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n > (1ull << 32))
        return false;
    v.resize(n);
    if (n)
        is.read(reinterpret_cast<char *>(v.data()),
                std::streamsize(n * sizeof(T)));
    return bool(is);
}

// RtStats is written field by field (not as one struct) so that
// uninitialized padding between the uint32 high-water fields never
// reaches the file: cache blobs stay byte-deterministic.
void
writeRtStats(std::ostream &os, const RtStats &rt)
{
    writePod(os, rt.activeLaneCycles);
    writePod(os, rt.slotLaneCycles);
    writePod(os, rt.modeCycles);
    writePod(os, rt.isectTests);
    writePod(os, rt.nodeVisits);
    writePod(os, rt.leafVisits);
    writePod(os, rt.raysCompleted);
    writePod(os, rt.boundaryCrossings);
    writePod(os, rt.raysEnqueued);
    writePod(os, rt.treeletWarpsFormed);
    writePod(os, rt.groupedWarpsFormed);
    writePod(os, rt.repackEvents);
    writePod(os, rt.repackedRays);
    writePod(os, rt.countTableHighWater);
    writePod(os, rt.countTableOverThresholdHW);
    writePod(os, rt.queueTableEntriesHW);
    writePod(os, rt.maxConcurrentRays);
    writePod(os, rt.prefetchLines);
    writePod(os, rt.prefetchUsedLines);
    writePod(os, rt.prefetchIssues);
    writePod(os, rt.reorderBatches);
    writePod(os, rt.predictLookups);
    writePod(os, rt.predictHits);
    writePod(os, rt.predictMisses);
    writePod(os, rt.predictInserts);
}

bool
readRtStats(std::istream &is, RtStats &rt)
{
    return readPod(is, rt.activeLaneCycles) &&
           readPod(is, rt.slotLaneCycles) && readPod(is, rt.modeCycles) &&
           readPod(is, rt.isectTests) && readPod(is, rt.nodeVisits) &&
           readPod(is, rt.leafVisits) && readPod(is, rt.raysCompleted) &&
           readPod(is, rt.boundaryCrossings) &&
           readPod(is, rt.raysEnqueued) &&
           readPod(is, rt.treeletWarpsFormed) &&
           readPod(is, rt.groupedWarpsFormed) &&
           readPod(is, rt.repackEvents) && readPod(is, rt.repackedRays) &&
           readPod(is, rt.countTableHighWater) &&
           readPod(is, rt.countTableOverThresholdHW) &&
           readPod(is, rt.queueTableEntriesHW) &&
           readPod(is, rt.maxConcurrentRays) &&
           readPod(is, rt.prefetchLines) &&
           readPod(is, rt.prefetchUsedLines) &&
           readPod(is, rt.prefetchIssues) &&
           readPod(is, rt.reorderBatches) &&
           readPod(is, rt.predictLookups) &&
           readPod(is, rt.predictHits) &&
           readPod(is, rt.predictMisses) &&
           readPod(is, rt.predictInserts);
}

} // anonymous namespace

void
RunStatsIo::save(std::ostream &os, const RunStats &st)
{
    writePod(os, kMagic);
    writePod(os, kVersion);

    writePod(os, st.cycles);
    writeVec(os, st.framebuffer);
    writeRtStats(os, st.rt);
    // MemClassStats is all-uint64 (no padding), safe to write whole.
    static_assert(sizeof(MemClassStats) == 8 * sizeof(uint64_t));
    writePod(os, st.mem);
    writePod(os, st.bvhL1MissRate);
    writeVec(os, st.bvhMissSeries);
    writePod(os, st.aluLaneInstrs);
    writePod(os, st.raysTraced);
    writePod(os, st.ctasLaunched);
    writePod(os, st.ctaSaves);
    writePod(os, st.ctaRestores);
    writePod(os, st.ctaStateBytes);
    writeVec(os, st.primaryHits);

    // v2: sampled-run summary (all zeros for full runs).
    writePod(os, uint8_t(st.sampled.enabled ? 1 : 0));
    writePod(os, st.sampled.intervals);
    writePod(os, st.sampled.measuredCycles);
    writePod(os, st.sampled.measuredRounds);
    writePod(os, st.sampled.totalRays);
    writePod(os, st.sampled.ffRays);
    writePod(os, st.sampled.cyclesCi95);
    writeVec(os, st.sampled.counterCi95);
}

bool
RunStatsIo::load(std::istream &is, RunStats &st)
{
    uint32_t magic = 0, version = 0;
    if (!readPod(is, magic) || !readPod(is, version))
        return false;
    if (magic != kMagic || version != kVersion)
        return false;

    if (!(readPod(is, st.cycles) && readVec(is, st.framebuffer) &&
          readRtStats(is, st.rt) && readPod(is, st.mem) &&
          readPod(is, st.bvhL1MissRate) && readVec(is, st.bvhMissSeries) &&
          readPod(is, st.aluLaneInstrs) && readPod(is, st.raysTraced) &&
          readPod(is, st.ctasLaunched) && readPod(is, st.ctaSaves) &&
          readPod(is, st.ctaRestores) && readPod(is, st.ctaStateBytes) &&
          readVec(is, st.primaryHits)))
        return false;

    uint8_t sampled_enabled = 0;
    if (!(readPod(is, sampled_enabled) &&
          readPod(is, st.sampled.intervals) &&
          readPod(is, st.sampled.measuredCycles) &&
          readPod(is, st.sampled.measuredRounds) &&
          readPod(is, st.sampled.totalRays) &&
          readPod(is, st.sampled.ffRays) &&
          readPod(is, st.sampled.cyclesCi95) &&
          readVec(is, st.sampled.counterCi95)))
        return false;
    st.sampled.enabled = sampled_enabled != 0;

    // The blob must end exactly here; trailing bytes mean a schema skew
    // that kVersion failed to catch.
    return is.peek() == std::istream::traits_type::eof();
}

uint64_t
RunStatsIo::fingerprint(const RunStats &st)
{
    // Hash the exact serialized form: anything save() covers is covered
    // here, and padding can never leak in (save() writes field by
    // field).
    std::ostringstream os(std::ios::binary);
    save(os, st);
    std::string bytes = os.str();
    Fnv1a h;
    h.bytes(bytes.data(), bytes.size());
    return h.value();
}

} // namespace trt
