#include "gpu/run_stats_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "geom/hash.hh"
#include "telemetry/counter_registry.hh"

namespace trt
{

namespace
{

constexpr uint32_t kMagic = 0x54525452u; // 'TRTR'

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return bool(is);
}

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = v.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    if (n)
        os.write(reinterpret_cast<const char *>(v.data()),
                 std::streamsize(n * sizeof(T)));
}

template <typename T>
bool
readVec(std::istream &is, std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n > (1ull << 32))
        return false;
    v.resize(n);
    if (n)
        is.read(reinterpret_cast<char *>(v.data()),
                std::streamsize(n * sizeof(T)));
    return bool(is);
}

// Counters are written field by field in counter-registry order (not
// as one struct) so that uninitialized padding between the uint32
// high-water fields never reaches the file: cache blobs stay
// byte-deterministic, and every registered counter round-trips by
// construction (v4; telemetry/counter_registry.hh).
void
writeCounters(std::ostream &os, const RunStats &st)
{
    forEachRunCounter(st, [&](const CounterInfo &, const auto &v) {
        writePod(os, v);
    });
}

bool
readCounters(std::istream &is, RunStats &st)
{
    bool ok = true;
    forEachRunCounter(st, [&](const CounterInfo &, auto &v) {
        ok = ok && readPod(is, v);
    });
    return ok;
}

} // anonymous namespace

void
RunStatsIo::save(std::ostream &os, const RunStats &st)
{
    writePod(os, kMagic);
    writePod(os, kVersion);

    writePod(os, st.cycles);
    writeVec(os, st.framebuffer);
    // Every scalar counter (RT, per-class memory, GPU-level) in
    // registry order; MemClassStats stays all-uint64 so the per-field
    // walk writes the same bytes a whole-struct write would.
    static_assert(sizeof(MemClassStats) == 8 * sizeof(uint64_t));
    writeCounters(os, st);
    writePod(os, st.bvhL1MissRate);
    writeVec(os, st.bvhMissSeries);
    writeVec(os, st.primaryHits);

    // v2: sampled-run summary (all zeros for full runs).
    writePod(os, uint8_t(st.sampled.enabled ? 1 : 0));
    writePod(os, st.sampled.intervals);
    writePod(os, st.sampled.measuredCycles);
    writePod(os, st.sampled.measuredRounds);
    writePod(os, st.sampled.totalRays);
    writePod(os, st.sampled.ffRays);
    writePod(os, st.sampled.cyclesCi95);
    writeVec(os, st.sampled.counterCi95);
}

bool
RunStatsIo::load(std::istream &is, RunStats &st)
{
    uint32_t magic = 0, version = 0;
    if (!readPod(is, magic) || !readPod(is, version))
        return false;
    if (magic != kMagic || version != kVersion)
        return false;

    if (!(readPod(is, st.cycles) && readVec(is, st.framebuffer) &&
          readCounters(is, st) && readPod(is, st.bvhL1MissRate) &&
          readVec(is, st.bvhMissSeries) && readVec(is, st.primaryHits)))
        return false;

    uint8_t sampled_enabled = 0;
    if (!(readPod(is, sampled_enabled) &&
          readPod(is, st.sampled.intervals) &&
          readPod(is, st.sampled.measuredCycles) &&
          readPod(is, st.sampled.measuredRounds) &&
          readPod(is, st.sampled.totalRays) &&
          readPod(is, st.sampled.ffRays) &&
          readPod(is, st.sampled.cyclesCi95) &&
          readVec(is, st.sampled.counterCi95)))
        return false;
    st.sampled.enabled = sampled_enabled != 0;

    // The blob must end exactly here; trailing bytes mean a schema skew
    // that kVersion failed to catch.
    return is.peek() == std::istream::traits_type::eof();
}

uint64_t
RunStatsIo::fingerprint(const RunStats &st)
{
    // Hash the exact serialized form: anything save() covers is covered
    // here, and padding can never leak in (save() writes field by
    // field).
    std::ostringstream os(std::ios::binary);
    save(os, st);
    std::string bytes = os.str();
    Fnv1a h;
    h.bytes(bytes.data(), bytes.size());
    return h.value();
}

} // namespace trt
