/**
 * @file
 * GpuConfig fingerprinting for the harness run cache. Every field that
 * can change simulation results is hashed individually; bump the schema
 * tag whenever a field is added, removed or reordered so stale cache
 * entries can never be mistaken for fresh ones.
 */

#include "gpu/config.hh"

#include "geom/hash.hh"

namespace trt
{

const char *
dispatchPolicyName(DispatchPolicyKind k)
{
    switch (k) {
      case DispatchPolicyKind::Fifo:
        return "fifo";
      case DispatchPolicyKind::Vtq:
        return "vtq";
      case DispatchPolicyKind::Reorder:
        return "reorder";
      case DispatchPolicyKind::Predict:
        return "predict";
      default:
        return "unknown";
    }
}

bool
parseDispatchPolicy(const std::string &name, DispatchPolicyKind &out)
{
    if (name == "baseline" || name == "fifo")
        out = DispatchPolicyKind::Fifo;
    else if (name == "vtq")
        out = DispatchPolicyKind::Vtq;
    else if (name == "reorder")
        out = DispatchPolicyKind::Reorder;
    else if (name == "predict")
        out = DispatchPolicyKind::Predict;
    else
        return false;
    return true;
}

GpuConfig
GpuConfig::forPolicy(DispatchPolicyKind kind)
{
    if (kind == DispatchPolicyKind::Vtq)
        return virtualizedTreeletQueues();
    GpuConfig c;
    c.policy = kind;
    return c;
}

uint64_t
GpuConfig::fingerprint() const
{
    Fnv1a h;
    h.pod(uint32_t(0x6C0F0003)); // schema tag (v3: + decode latency,
                                 // wide box cost, shared predictor)

    h.pod(numSms);
    h.pod(maxWarpsPerSm);
    h.pod(warpSize);
    h.pod(maxCtasPerSm);
    h.pod(regsPerSm);
    h.pod(rtUnitsPerSm);
    h.pod(warpBufferSize);

    h.pod(mem.lineBytes);
    h.pod(mem.numL1s);
    h.pod(mem.l1Bytes);
    h.pod(mem.l1Ways);
    h.pod(mem.l1HitLatency);
    h.pod(mem.l2Bytes);
    h.pod(mem.l2Ways);
    h.pod(mem.l2HitLatency);
    h.pod(mem.l2ReservedBytes);
    h.pod(mem.dramLatency);
    h.pod(mem.dramBytesPerCycle);

    h.pod(ctaSize);
    h.pod(raygenAluInstrs);
    h.pod(shadeAluInstrs);
    h.pod(regsPerThread);
    h.pod(simtStackDepth);

    h.pod(rtMemIssuePerCycle);
    h.pod(isectBoxLatency);
    h.pod(isectTriLatency);
    h.pod(isectIssuePerCycle);
    h.pod(nodeDecodeLatency);
    h.pod(wideBoxExtraLatency);

    h.pod(imageWidth);
    h.pod(imageHeight);
    h.pod(maxBounces);
    h.pod(contributionCutoff);

    h.pod(arch);
    h.pod(uint8_t(rayVirtualization));
    h.pod(uint8_t(virtualizationFree));
    h.pod(maxVirtualRaysPerSm);
    h.pod(queueThreshold);
    h.pod(uint8_t(groupUnderpopulated));
    h.pod(repackThreshold);
    h.pod(uint8_t(preloadEnabled));
    h.pod(initialDivergeThreshold);
    h.pod(uint8_t(skipTreeletPhase));

    h.pod(policy);
    h.pod(reorderBinBits);
    h.pod(predictTableBits);
    h.pod(uint8_t(predictShared));

    h.pod(prefetchCooldown);
    h.pod(prefetchMinRays);

    // simThreads is deliberately not hashed: it changes wall-clock
    // behavior only, never RunStats, so cached runs stay valid across
    // thread counts. telem likewise: sampling and tracing observe the
    // simulation without steering it, so a config with telemetry on
    // still maps to the same cached RunStats.

    return h.value();
}

} // namespace trt
