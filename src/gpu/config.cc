/**
 * @file
 * GpuConfig fingerprinting for the harness run cache. Every field that
 * can change simulation results is hashed individually; bump the schema
 * tag whenever a field is added, removed or reordered so stale cache
 * entries can never be mistaken for fresh ones.
 */

#include "gpu/config.hh"

#include "geom/hash.hh"

namespace trt
{

uint64_t
GpuConfig::fingerprint() const
{
    Fnv1a h;
    h.pod(uint32_t(0x6C0F0001)); // schema tag

    h.pod(numSms);
    h.pod(maxWarpsPerSm);
    h.pod(warpSize);
    h.pod(maxCtasPerSm);
    h.pod(regsPerSm);
    h.pod(rtUnitsPerSm);
    h.pod(warpBufferSize);

    h.pod(mem.lineBytes);
    h.pod(mem.numL1s);
    h.pod(mem.l1Bytes);
    h.pod(mem.l1Ways);
    h.pod(mem.l1HitLatency);
    h.pod(mem.l2Bytes);
    h.pod(mem.l2Ways);
    h.pod(mem.l2HitLatency);
    h.pod(mem.l2ReservedBytes);
    h.pod(mem.dramLatency);
    h.pod(mem.dramBytesPerCycle);

    h.pod(ctaSize);
    h.pod(raygenAluInstrs);
    h.pod(shadeAluInstrs);
    h.pod(regsPerThread);
    h.pod(simtStackDepth);

    h.pod(rtMemIssuePerCycle);
    h.pod(isectBoxLatency);
    h.pod(isectTriLatency);
    h.pod(isectIssuePerCycle);

    h.pod(imageWidth);
    h.pod(imageHeight);
    h.pod(maxBounces);
    h.pod(contributionCutoff);

    h.pod(arch);
    h.pod(uint8_t(rayVirtualization));
    h.pod(uint8_t(virtualizationFree));
    h.pod(maxVirtualRaysPerSm);
    h.pod(queueThreshold);
    h.pod(uint8_t(groupUnderpopulated));
    h.pod(repackThreshold);
    h.pod(uint8_t(preloadEnabled));
    h.pod(initialDivergeThreshold);
    h.pod(uint8_t(skipTreeletPhase));

    h.pod(prefetchCooldown);
    h.pod(prefetchMinRays);

    // simThreads is deliberately not hashed: it changes wall-clock
    // behavior only, never RunStats, so cached runs stay valid across
    // thread counts.

    return h.value();
}

} // namespace trt
