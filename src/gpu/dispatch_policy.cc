#include "gpu/dispatch_policy.hh"

#include <algorithm>
#include <cassert>

#include "geom/hash.hh"

namespace trt
{

namespace
{

/** Spread the low 21 bits of @p x so consecutive bits land 3 apart
 *  (Morton interleave component). */
uint64_t
part1by2(uint64_t x)
{
    x &= 0x1fffffull;
    x = (x | x << 32) & 0x001f00000000ffffull;
    x = (x | x << 16) & 0x001f0000ff0000ffull;
    x = (x | x << 8) & 0x100f00f00f00f00full;
    x = (x | x << 4) & 0x10c30c30c30c30c3ull;
    x = (x | x << 2) & 0x1249249249249249ull;
    return x;
}

/** Quantize @p v over [lo, hi] into [0, 2^bits). Degenerate axes (and
 *  out-of-bounds origins) clamp — every ray gets *some* bin. */
uint32_t
quantizeAxis(float v, float lo, float hi, uint32_t bits)
{
    if (!(hi > lo))
        return 0;
    float f = (v - lo) / (hi - lo);
    if (!(f > 0.0f))
        return 0;
    uint32_t levels = 1u << bits;
    if (f >= 1.0f)
        return levels - 1;
    uint32_t q = uint32_t(f * float(levels));
    return std::min(q, levels - 1);
}

} // anonymous namespace

// ---- SharedPredict ----------------------------------------------------

SharedPredict::SharedPredict(const GpuConfig &cfg)
{
    uint32_t bits = std::min<uint32_t>(std::max(cfg.predictTableBits, 1u),
                                       24u);
    table.resize(size_t(1) << bits);
    mask = table.size() - 1;
    pending.resize(cfg.numSms);
}

void
SharedPredict::flush()
{
    // SM order, then enqueue order within an SM: the exact sequence a
    // serial SM loop would apply, so the table contents after every
    // cycle are thread-count independent. Applied unconditionally —
    // the queue-time dedup against the frozen table already filtered
    // no-op updates.
    for (std::vector<Train> &q : pending) {
        for (const Train &t : q) {
            Entry &e = table[size_t(t.hash & mask)];
            e.tag = t.hash;
            e.firstTri = t.firstTri;
            e.count = t.count;
        }
        q.clear();
    }
}

void
SharedPredict::saveState(Serializer &s) const
{
    for (const auto &q : pending)
        if (!q.empty())
            throw SnapshotError(
                "snapshot: unflushed shared-predictor trainings");
    s.beginChunk("PSHR");
    s.u64(table.size());
    for (const Entry &e : table) {
        s.u64(e.tag);
        s.u32(e.firstTri);
        s.u32(e.count);
    }
    s.endChunk();
}

void
SharedPredict::loadState(Deserializer &d)
{
    d.beginChunk("PSHR");
    if (d.u64() != table.size())
        throw SnapshotError(
            "snapshot: shared prediction-table size mismatch (config skew)");
    for (Entry &e : table) {
        e.tag = d.u64();
        e.firstTri = d.u32();
        e.count = d.u32();
    }
    for (auto &q : pending)
        q.clear();
    d.endChunk();
}

// ---- base-class treelet-queue decisions (the paper's heuristics) ------

bool
DispatchPolicy::endInitialPhase(uint32_t divergence) const
{
    // Section 3.2 step 1: terminate the fresh warp once its rays spread
    // over more treelets than the threshold (skipTreeletPhase parks
    // unconditionally — the section 6.4 threshold-of-zero experiment).
    return cfg_.skipTreeletPhase ||
           divergence > cfg_.initialDivergeThreshold;
}

DispatchPolicy::DispatchChoice
DispatchPolicy::chooseDispatch(const std::vector<QueueView> &queues,
                               uint32_t loaded_treelet) const
{
    DispatchChoice c;
    if (queues.empty())
        return c;

    // Empty the loaded treelet's queue before switching (section 3.2):
    // its data is already in the L1, so a switch would waste the fetch.
    if (!cfg_.skipTreeletPhase && loaded_treelet != kInvalidTreelet) {
        for (const QueueView &q : queues) {
            if (q.treelet == loaded_treelet && q.size > 0) {
                c.kind = WarpKind::Treelet;
                c.treelet = loaded_treelet;
                return c;
            }
        }
    }

    // Largest queue, first-in-table-order on ties (matches the strict
    // greater-than scan the unit used before extraction).
    uint32_t best = kInvalidTreelet;
    uint32_t best_size = 0;
    for (const QueueView &q : queues) {
        if (q.size > best_size) {
            best = q.treelet;
            best_size = q.size;
        }
    }
    if (best == kInvalidTreelet)
        return c;

    bool treelet_eligible =
        !cfg_.skipTreeletPhase &&
        (best_size >= cfg_.queueThreshold || !cfg_.groupUnderpopulated);
    if (treelet_eligible) {
        c.kind = WarpKind::Treelet;
        c.treelet = best;
    } else if (cfg_.groupUnderpopulated || cfg_.skipTreeletPhase) {
        c.kind = WarpKind::Grouped;
    }
    return c;
}

// ---- pool serialization helpers ---------------------------------------

namespace
{

void
savePendingRay(Serializer &s, const PendingRay &r)
{
    s.pod(r.ray);
    s.u64(r.warpToken);
    s.u32(r.ctaToken);
    s.u8(r.lane);
}

PendingRay
loadPendingRay(Deserializer &d)
{
    PendingRay r;
    r.ray = d.pod<Ray>();
    r.warpToken = d.u64();
    r.ctaToken = d.u32();
    r.lane = d.u8();
    return r;
}

} // anonymous namespace

// ---- FifoPolicy -------------------------------------------------------

void
FifoPolicy::enqueue(std::vector<PendingRay> &&group)
{
    count_ += group.size();
    groups_.push_back(std::move(group));
}

void
FifoPolicy::formWarp(uint32_t warp_size, std::vector<PendingRay> &out)
{
    out.clear();
    if (groups_.empty())
        return;
    // Warps stay intact: one incoming group becomes one RT warp, even
    // when undersized — exactly the pre-policy baseline behavior.
    (void)warp_size;
    out = std::move(groups_.front());
    groups_.pop_front();
    count_ -= out.size();
}

void
FifoPolicy::takePending(std::vector<PendingRay> &out)
{
    out.clear();
    for (auto &g : groups_)
        for (auto &r : g)
            out.push_back(std::move(r));
    groups_.clear();
    count_ = 0;
}

void
FifoPolicy::saveState(Serializer &s) const
{
    s.beginChunk("DPOL");
    s.u64(groups_.size());
    for (const auto &g : groups_) {
        s.u64(g.size());
        for (const PendingRay &r : g)
            savePendingRay(s, r);
    }
    s.endChunk();
}

void
FifoPolicy::loadState(Deserializer &d)
{
    d.beginChunk("DPOL");
    groups_.clear();
    count_ = 0;
    uint64_t n = d.u64();
    for (uint64_t i = 0; i < n; i++) {
        std::vector<PendingRay> g;
        uint64_t m = d.u64();
        g.reserve(size_t(m));
        for (uint64_t j = 0; j < m; j++)
            g.push_back(loadPendingRay(d));
        count_ += g.size();
        groups_.push_back(std::move(g));
    }
    d.endChunk();
}

// ---- ReorderPolicy ----------------------------------------------------

ReorderPolicy::ReorderPolicy(const GpuConfig &cfg, const Bvh &bvh,
                             RtStats &stats)
    : DispatchPolicy(cfg, bvh, stats)
{
}

uint64_t
ReorderPolicy::binKey(const Ray &ray) const
{
    // Morton code of the origin quantized over the scene bounds, with
    // the direction octant in the low bits: rays sharing a bin start
    // close together *and* head the same way, so the warps formed from
    // one bin traverse largely the same treelets.
    uint32_t bits = std::min<uint32_t>(std::max(cfg_.reorderBinBits, 1u),
                                       16u);
    const Aabb &b = bvh_.rootBounds();
    uint64_t mx = part1by2(
        quantizeAxis(ray.orig.x, b.lo.x, b.hi.x, bits));
    uint64_t my = part1by2(
        quantizeAxis(ray.orig.y, b.lo.y, b.hi.y, bits));
    uint64_t mz = part1by2(
        quantizeAxis(ray.orig.z, b.lo.z, b.hi.z, bits));
    uint64_t morton = mx | my << 1 | mz << 2;
    uint64_t octant = uint64_t(ray.dir.x < 0.0f) |
                      uint64_t(ray.dir.y < 0.0f) << 1 |
                      uint64_t(ray.dir.z < 0.0f) << 2;
    return morton << 3 | octant;
}

void
ReorderPolicy::enqueue(std::vector<PendingRay> &&group)
{
    for (PendingRay &r : group) {
        bins_[binKey(r.ray)].push_back(std::move(r));
        count_++;
    }
    group.clear();
}

void
ReorderPolicy::formWarp(uint32_t warp_size, std::vector<PendingRay> &out)
{
    out.clear();
    // Drain bins in ascending key order, topping an undersized bin up
    // from its key-order successors: warps come out full *and* sorted,
    // which is the whole point of reordering.
    auto it = bins_.begin();
    while (it != bins_.end() && out.size() < warp_size) {
        auto &q = it->second;
        while (!q.empty() && out.size() < warp_size) {
            out.push_back(std::move(q.front()));
            q.pop_front();
            count_--;
        }
        if (q.empty())
            it = bins_.erase(it);
        else
            ++it;
    }
    if (!out.empty())
        stats_.reorderBatches++;
}

void
ReorderPolicy::takePending(std::vector<PendingRay> &out)
{
    out.clear();
    for (auto &[key, q] : bins_)
        for (PendingRay &r : q)
            out.push_back(std::move(r));
    bins_.clear();
    count_ = 0;
}

void
ReorderPolicy::saveState(Serializer &s) const
{
    s.beginChunk("DPOL");
    s.u64(bins_.size());
    for (const auto &[key, q] : bins_) {
        s.u64(key);
        s.u64(q.size());
        for (const PendingRay &r : q)
            savePendingRay(s, r);
    }
    s.endChunk();
}

void
ReorderPolicy::loadState(Deserializer &d)
{
    d.beginChunk("DPOL");
    bins_.clear();
    count_ = 0;
    uint64_t n = d.u64();
    for (uint64_t i = 0; i < n; i++) {
        uint64_t key = d.u64();
        std::deque<PendingRay> q;
        uint64_t m = d.u64();
        for (uint64_t j = 0; j < m; j++)
            q.push_back(loadPendingRay(d));
        count_ += q.size();
        bins_.emplace(key, std::move(q));
    }
    d.endChunk();
}

// ---- PredictPolicy ----------------------------------------------------

PredictPolicy::PredictPolicy(const GpuConfig &cfg, const Bvh &bvh,
                             RtStats &stats)
    : FifoPolicy(cfg, bvh, stats)
{
    uint32_t bits = std::min<uint32_t>(std::max(cfg.predictTableBits, 1u),
                                       24u);
    table_.resize(size_t(1) << bits);
    mask_ = table_.size() - 1;
}

uint64_t
PredictPolicy::rayHash(const Ray &ray) const
{
    // Quantized origin (6 bits/axis over the scene bounds) plus
    // quantized direction (6 bits/axis of the [-1,1] components): rays
    // close in space and heading hash together, which is what makes
    // the table's last-resolver block a useful guess.
    const Aabb &b = bvh_.rootBounds();
    Fnv1a h;
    h.pod(quantizeAxis(ray.orig.x, b.lo.x, b.hi.x, 6));
    h.pod(quantizeAxis(ray.orig.y, b.lo.y, b.hi.y, 6));
    h.pod(quantizeAxis(ray.orig.z, b.lo.z, b.hi.z, 6));
    h.pod(quantizeAxis(ray.dir.x, -1.0f, 1.0f, 6));
    h.pod(quantizeAxis(ray.dir.y, -1.0f, 1.0f, 6));
    h.pod(quantizeAxis(ray.dir.z, -1.0f, 1.0f, 6));
    return h.value();
}

void
PredictPolicy::setShared(SharedPredict *sp, uint32_t sm_id)
{
    shared_ = sp;
    smId_ = sm_id;
    if (shared_) {
        // The private table is dead weight in shared mode; release it
        // so snapshots don't carry numSms idle copies.
        table_.clear();
        table_.shrink_to_fit();
        mask_ = 0;
    }
}

DispatchPolicy::Speculation
PredictPolicy::speculate(const Ray &ray)
{
    stats_.predictLookups++;
    uint64_t h = rayHash(ray);
    if (shared_) {
        // Reads only: the shared table is frozen for the whole tick
        // phase (trainings queue up and land at the cycle commit).
        const SharedPredict::Entry &e =
            shared_->table[size_t(h & shared_->mask)];
        if (e.count == 0 || e.tag != h)
            return {};
        return {e.firstTri, e.count, true};
    }
    const Entry &e = table_[size_t(h & mask_)];
    if (e.count == 0 || e.tag != h)
        return {}; // cold or conflicting slot: no prediction
    return {e.firstTri, e.count, true};
}

void
PredictPolicy::onRayComplete(const RayTraverser &trav)
{
    // Score the prediction this traversal ran under (if any).
    switch (trav.specOutcome()) {
      case RayTraverser::SpecOutcome::Correct:
        stats_.predictHits++;
        break;
      case RayTraverser::SpecOutcome::Wrong:
        stats_.predictMisses++;
        break;
      case RayTraverser::SpecOutcome::None:
        break;
    }

    // Train: remember the leaf block that resolved this ray. Misses
    // don't evict — a ray that escaped the scene says nothing about
    // where the next similar ray will hit.
    if (!trav.hit().hit() || trav.hitBlockCount() == 0)
        return;
    uint64_t h = rayHash(trav.ray());
    if (shared_) {
        // Dedup against the frozen table, then defer the write to this
        // SM's pending queue; SharedPredict::flush() applies it at the
        // serial cycle commit. predictInserts counts queued updates —
        // deterministic, since the table can't change under us here.
        const SharedPredict::Entry &e =
            shared_->table[size_t(h & shared_->mask)];
        if (e.tag != h || e.firstTri != trav.hitBlockFirst() ||
            e.count != trav.hitBlockCount()) {
            shared_->pending[smId_].push_back(
                {h, trav.hitBlockFirst(), trav.hitBlockCount()});
            stats_.predictInserts++;
        }
        return;
    }
    Entry &e = table_[size_t(h & mask_)];
    if (e.tag != h || e.firstTri != trav.hitBlockFirst() ||
        e.count != trav.hitBlockCount()) {
        e.tag = h;
        e.firstTri = trav.hitBlockFirst();
        e.count = trav.hitBlockCount();
        stats_.predictInserts++;
    }
}

void
PredictPolicy::saveState(Serializer &s) const
{
    FifoPolicy::saveState(s);
    s.beginChunk("PRED");
    // Shared mode: table_ is empty by construction (setShared cleared
    // it), so this writes a zero-length table and the real state lives
    // in the Gpu's "PSHR" chunk. predictShared is fingerprinted, so a
    // snapshot can never be resumed under the other mode.
    s.u64(table_.size());
    for (const Entry &e : table_) {
        s.u64(e.tag);
        s.u32(e.firstTri);
        s.u32(e.count);
    }
    s.endChunk();
}

void
PredictPolicy::loadState(Deserializer &d)
{
    FifoPolicy::loadState(d);
    d.beginChunk("PRED");
    if (d.u64() != table_.size())
        throw SnapshotError(
            "snapshot: prediction-table size mismatch (config skew)");
    for (Entry &e : table_) {
        e.tag = d.u64();
        e.firstTri = d.u32();
        e.count = d.u32();
    }
    d.endChunk();
}

// ---- factory ----------------------------------------------------------

std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(const GpuConfig &cfg, const Bvh &bvh, RtStats &stats)
{
    switch (cfg.policy) {
      case DispatchPolicyKind::Vtq:
        return std::make_unique<VtqPolicy>(cfg, bvh, stats);
      case DispatchPolicyKind::Reorder:
        return std::make_unique<ReorderPolicy>(cfg, bvh, stats);
      case DispatchPolicyKind::Predict:
        return std::make_unique<PredictPolicy>(cfg, bvh, stats);
      case DispatchPolicyKind::Fifo:
      default:
        return std::make_unique<FifoPolicy>(cfg, bvh, stats);
    }
}

} // namespace trt
