/**
 * @file
 * Persistent worker pool for per-cycle SM tick fan-out. A simulation
 * forks and joins once per simulated cycle, so dispatch latency — not
 * throughput — is what matters: workers spin briefly on an epoch
 * counter before futex-parking (std::atomic::wait), and work is
 * distributed by a static modulo slice (no per-item atomics).
 *
 * The pool never affects simulation results: ticks executed here touch
 * only per-SM state, and the shared memory system is mutated solely in
 * the serial commit phase (see memsys.hh). Any thread count, including
 * running everything on the caller, yields bit-identical RunStats.
 */

#ifndef TRT_GPU_SIM_POOL_HH
#define TRT_GPU_SIM_POOL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trt
{

/** Spin-then-park fork/join pool; see file comment. */
class TickPool
{
  public:
    /** @param threads Total parallelism including the calling thread;
     *  spawns threads-1 workers. */
    explicit TickPool(uint32_t threads)
    {
        uint32_t workers = threads > 1 ? threads - 1 : 0;
        workers_.reserve(workers);
        for (uint32_t w = 0; w < workers; w++)
            workers_.emplace_back([this, w]() { workerLoop(w); });
    }

    ~TickPool()
    {
        stop_.store(true, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        epoch_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    TickPool(const TickPool &) = delete;
    TickPool &operator=(const TickPool &) = delete;

    uint32_t threads() const { return uint32_t(workers_.size()) + 1; }

    /**
     * Run fn(0) .. fn(n-1) across the pool and the calling thread;
     * returns when all calls completed. Calls must touch disjoint
     * state. The first exception thrown by any call is rethrown here
     * (after the join).
     */
    void
    run(uint32_t n, const std::function<void(uint32_t)> &fn)
    {
        if (workers_.empty() || n <= 1) {
            for (uint32_t i = 0; i < n; i++)
                fn(i);
            return;
        }
        n_ = n;
        fn_ = &fn;
        pending_.store(uint32_t(workers_.size()),
                       std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        epoch_.notify_all();
        runSlice(uint32_t(workers_.size())); // caller takes the last lane
        for (uint32_t spins = 0;
             pending_.load(std::memory_order_acquire) != 0;) {
            if (++spins > kSpins) {
                uint32_t p = pending_.load(std::memory_order_acquire);
                if (p != 0)
                    pending_.wait(p);
                spins = 0;
            }
        }
        fn_ = nullptr;
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

  private:
    /** Spin budget before parking; small enough that an oversubscribed
     *  (or single-core) host falls through to the futex quickly. */
    static constexpr uint32_t kSpins = 2048;

    void
    runSlice(uint32_t lane)
    {
        const std::function<void(uint32_t)> *fn = fn_;
        uint32_t stride = threads();
        for (uint32_t i = lane; i < n_; i += stride) {
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(errMtx_);
                if (!error_)
                    error_ = std::current_exception();
            }
        }
    }

    void
    workerLoop(uint32_t lane)
    {
        uint64_t seen = 0;
        for (;;) {
            uint64_t e;
            uint32_t spins = 0;
            while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
                if (++spins > kSpins) {
                    epoch_.wait(seen);
                    spins = 0;
                }
            }
            seen = e;
            if (stop_.load(std::memory_order_relaxed))
                return;
            runSlice(lane);
            pending_.fetch_sub(1, std::memory_order_release);
            pending_.notify_one();
        }
    }

    std::vector<std::thread> workers_;
    std::atomic<uint64_t> epoch_{0};
    std::atomic<uint32_t> pending_{0};
    std::atomic<bool> stop_{false};
    uint32_t n_ = 0;
    const std::function<void(uint32_t)> *fn_ = nullptr;
    std::mutex errMtx_;
    std::exception_ptr error_;
};

} // namespace trt

#endif // TRT_GPU_SIM_POOL_HH
