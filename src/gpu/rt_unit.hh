/**
 * @file
 * RT unit base: the per-SM ray tracing accelerator. Models the
 * Vulkan-Sim RT unit of the paper's Figure 3: a warp buffer of ray
 * entries, a memory scheduler that pushes one BVH address per cycle to
 * the memory access queue, a response path and fixed-function
 * intersection units. Traversal uses the dual-stack treelet order
 * (bvh/traverser.hh) in every architecture variant.
 *
 * Concrete units: BaselineRtUnit (this file), TreeletPrefetchRtUnit and
 * TreeletQueueRtUnit (src/core).
 */

#ifndef TRT_GPU_RT_UNIT_HH
#define TRT_GPU_RT_UNIT_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bvh/traverser.hh"
#include "gpu/config.hh"
#include "gpu/rate_limiter.hh"
#include "memsys/memsys.hh"

namespace trt
{

struct SharedPredict;
class TelemChannel;
struct TelemSample;
enum class TelemEventKind : uint8_t;

/** "No pending event" sentinel for nextEventCycle(). */
constexpr uint64_t kNoEvent = ~0ull;

/**
 * Ready-cycle sentinel stored while a deferred memory request is
 * unresolved (issue phase, see memsys.hh). Any comparison
 * `ready > now` naturally stalls the consumer; commitIssuePhase()
 * overwrites it with the real ready cycle before anyone can observe a
 * later `now`.
 */
constexpr uint64_t kPendingReady = ~0ull;

/** Traversal mode attribution for Figures 14/15. */
enum class TraversalMode : uint8_t
{
    Initial = 0,       //!< Initial ray-stationary phase.
    TreeletStationary, //!< Treelet warps from treelet queues.
    RayStationary,     //!< Final phase (grouped/underpopulated rays).
    NumModes
};

const char *traversalModeName(TraversalMode m);

constexpr size_t kNumTraversalModes = size_t(TraversalMode::NumModes);

/**
 * Bounds-checked index into the mode-indexed stat arrays
 * (RtStats::modeCycles / isectTests). A TraversalMode enumerator added
 * without growing the arrays throws here instead of silently skewing
 * the accounting through an out-of-range raw cast.
 */
constexpr size_t
modeIndex(TraversalMode m)
{
    return size_t(m) < kNumTraversalModes
               ? size_t(m)
               : throw std::out_of_range(
                     "TraversalMode outside the stat arrays");
}

/** One lane's ray handed to the RT unit by a warp. */
struct LaneRay
{
    uint8_t lane;
    Ray ray;
};

/** One lane's traversal result returned to the warp. */
struct LaneHit
{
    uint8_t lane;
    HitRecord hit;
};

/** A warp's traceRayEXT() issue. */
struct TraceRequest
{
    uint64_t token = 0;    //!< Unique per warp trace.
    uint32_t ctaToken = 0; //!< Owning CTA (virtualization bookkeeping).
    std::vector<LaneRay> lanes;
};

/** RT unit statistics feeding the paper's figures. */
struct RtStats
{
    // SIMT efficiency (Fig. 1b / 13b): active vs. total lanes
    // integrated over cycles with at least one occupied warp slot.
    uint64_t activeLaneCycles = 0;
    uint64_t slotLaneCycles = 0;

    // Per-mode cycle and work distribution (Figs. 14/15).
    std::array<uint64_t, size_t(TraversalMode::NumModes)> modeCycles{};
    std::array<uint64_t, size_t(TraversalMode::NumModes)> isectTests{};

    uint64_t nodeVisits = 0;
    uint64_t leafVisits = 0;
    uint64_t raysCompleted = 0;
    uint64_t boundaryCrossings = 0;

    // Treelet queue machinery (section 6.5 area analysis).
    uint64_t raysEnqueued = 0;
    uint64_t treeletWarpsFormed = 0;
    uint64_t groupedWarpsFormed = 0;
    uint64_t repackEvents = 0;
    uint64_t repackedRays = 0;
    /** L1 treelet working-set reloads: treelet-stationary warps
     *  dispatched for a treelet other than the one currently loaded
     *  (VTQ architecture only; DESIGN.md §12). */
    uint64_t treeletSwitches = 0;
    uint32_t countTableHighWater = 0;
    uint32_t countTableOverThresholdHW = 0;
    uint32_t queueTableEntriesHW = 0;
    uint64_t maxConcurrentRays = 0;

    // Prefetcher (Chou et al. comparison).
    uint64_t prefetchLines = 0;
    uint64_t prefetchUsedLines = 0;
    uint64_t prefetchIssues = 0;

    // Dispatch policies (DESIGN.md §9).
    uint64_t reorderBatches = 0; //!< Reorder: warps formed from bins.
    uint64_t predictLookups = 0; //!< Predict: table probes.
    uint64_t predictHits = 0;    //!< Predicted block held the hit.
    uint64_t predictMisses = 0;  //!< Primed but wrong (root fallback).
    uint64_t predictInserts = 0; //!< Prediction-table trainings.

    double
    predictHitRate() const
    {
        uint64_t primed = predictHits + predictMisses;
        return primed ? double(predictHits) / double(primed) : 0.0;
    }

    double
    simtEfficiency() const
    {
        return slotLaneCycles
                   ? double(activeLaneCycles) / double(slotLaneCycles)
                   : 0.0;
    }

    /** Merge @p o into this, summing Work/Exact counters and
     *  max-merging high-water marks — kinds come from the counter
     *  registry (telemetry/counter_registry.hh). */
    void accumulate(const RtStats &o);

    /** Snapshot hooks (field-by-field via the counter registry; the
     *  struct has padding). */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);
};

/**
 * Base class: shared per-ray pipeline stepping (memory scheduler +
 * intersection pipeline) and accounting. Subclasses drive policy:
 * what happens at treelet boundaries and how warps are formed.
 */
class RtUnitBase
{
  public:
    using CompletionFn =
        std::function<void(uint64_t token, std::vector<LaneHit> &&)>;
    /** Fired when the last outstanding ray of a CTA completes. */
    using CtaDrainedFn = std::function<void(uint32_t cta_token)>;

    RtUnitBase(const GpuConfig &cfg, MemorySystem &mem, const Bvh &bvh,
               uint32_t sm_id);
    virtual ~RtUnitBase() = default;

    /** Try to take a warp's trace. False = caller must retry later. */
    virtual bool tryAccept(uint64_t now, TraceRequest &&req) = 0;

    /** Advance internal state to time @p now. */
    virtual void tick(uint64_t now) = 0;

    /**
     * Earliest cycle at which tick() could make progress (kNoEvent when
     * idle). Maintained incrementally: every ray/slot state transition
     * notes its wake-up cycle into a per-unit min-heap (noteEvent), so
     * this is O(1) amortized instead of a rescan of every slot and
     * queue. Stale heap records (from entries that advanced or parked
     * earlier than recorded) only cause benign extra ticks; they are
     * lazily discarded at the next tick (consumeEventsUpTo).
     */
    virtual uint64_t nextEventCycle() const { return cachedNextEvent(); }

    /** True when no rays are in flight or queued. */
    virtual bool idle() const = 0;

    /**
     * Warm-up recovery metric: how much drained state the unit holds.
     * The sampler records this before a fast-forward drain and holds
     * the post-leg warm-up until it has rebuilt to the pre-drain
     * level — queue state is what the drain destroys, and measuring
     * before it recovers reads rounds serviced against empty queues.
     * The base semantic is rays held (queued, parked or stepping);
     * subclasses may weight it by whatever else the drain cost them
     * (the VTQ unit folds in its treelet-queue spread).
     */
    virtual uint64_t raysHeld() const = 0;

    /**
     * Called once per cycle after commitIssuePhase(), in SM order.
     * Units that recorded deferred requests whose destination may have
     * moved (see TreeletQueueRtUnit's preload fixups) resolve them here.
     */
    virtual void onMemCommit(uint64_t now) { (void)now; }

    /** One-line occupancy/state summary for stall diagnostics. */
    virtual std::string debugStatus() const { return {}; }

    /**
     * Sampled-simulation fast-forward entry (DESIGN.md §8): complete
     * every ray this unit owns — in flight or queued — functionally
     * (finishTraversal), fire the normal completion callbacks so warp
     * state stays consistent, and leave the unit idle() with no pending
     * events. Counters keep accumulating; the sampler only reads
     * counter deltas inside measured intervals, so drain-time increments
     * never pollute an estimate. Only callable at the serial commit
     * boundary (same contract as saveState).
     */
    virtual void drainFunctional(uint64_t now) = 0;

    void setCompletion(CompletionFn fn) { completion_ = std::move(fn); }
    void setCtaDrained(CtaDrainedFn fn) { ctaDrained_ = std::move(fn); }

    /** Attach the GPU-owned shared prediction table
     *  (TRT_PREDICT_SHARED, DESIGN.md §9). Default: ignored; units
     *  with a PredictPolicy forward it. */
    virtual void setSharedPredict(SharedPredict *sp) { (void)sp; }

    /** Attach this SM's telemetry staging channel (DESIGN.md §12).
     *  Null (the default) keeps every telemetry hook a single
     *  predictable branch. */
    void setTelemetry(TelemChannel *ch) { telem_ = ch; }

    const RtStats &stats() const { return stats_; }
    uint32_t smId() const { return smId_; }

    /**
     * Snapshot hooks (DESIGN.md §7). Only callable at the serial
     * commit boundary of Gpu::run, where every deferred memory ticket
     * has been resolved — a still-pending ready sentinel in any ray
     * entry is a SnapshotError. Subclass overrides call the base
     * first, then append their own chunk.
     */
    virtual void saveState(Serializer &s) const;
    virtual void loadState(Deserializer &d);

  protected:
    /** Per-ray execution stage within the RT unit pipeline. */
    enum class Stage : uint8_t
    {
        WaitData,  //!< Ray data load outstanding (treelet queues).
        NeedIssue, //!< Needs its next BVH address issued.
        WaitMem,   //!< Memory response outstanding.
        WaitIsect, //!< In the intersection pipeline.
        Done,
    };

    /** A ray entry of the warp buffer. */
    struct RayEntry
    {
        bool valid = false;
        uint8_t lane = 0;
        uint64_t warpToken = 0;
        uint32_t ctaToken = 0;
        uint32_t rayId = 0; //!< Virtual ray id (treelet queues only).
        RayTraverser trav;
        Stage stage = Stage::Done;
        uint64_t ready = 0;
        bool fetchIsLeaf = false;
    };

    /**
     * Run the WaitData/NeedIssue/WaitMem/WaitIsect stages for @p e at
     * time @p now as far as shared-resource limits allow. Stops (and
     * returns) whenever the traverser reaches a boundary or finishes —
     * the caller's policy then decides. With @p stop_at_issue the ray
     * additionally halts before issuing its next access (used to drain
     * a warp that is being terminated into the treelet queues).
     * @return true if state changed.
     */
    bool stepRay(uint64_t now, RayEntry &e, TraversalMode mode,
                 bool stop_at_issue = false);

    /** Whether the traverser needs a policy decision. */
    static bool
    needsPolicy(const RayEntry &e)
    {
        return e.stage == Stage::NeedIssue &&
               (e.trav.done() || e.trav.atBoundary());
    }

    // --- incremental next-event tracking -----------------------------
    /** Record a future wake-up cycle (min-heap with lazy deletion). */
    void
    noteEvent(uint64_t cycle)
    {
        if (cycle == kNoEvent)
            return;
        eventHeap_.push_back(cycle);
        std::push_heap(eventHeap_.begin(), eventHeap_.end(),
                       std::greater<>{});
    }

    /**
     * Record a wake-up whose cycle is still the kPendingReady sentinel
     * (deferred memory request). The pointee is read — by then real —
     * at the first nextEventCycle() after commitIssuePhase(); the Gpu
     * refreshes every ticked SM then, before any entry referenced here
     * can be recycled.
     */
    void notePendingEvent(const uint64_t *ready)
    { pendingEventReadies_.push_back(ready); }

    /** Drop event records at or before @p now; call at tick() start
     *  (the tick processes everything ready by @p now). */
    void
    consumeEventsUpTo(uint64_t now)
    {
        drainPendingEvents();
        while (!eventHeap_.empty() && eventHeap_.front() <= now) {
            std::pop_heap(eventHeap_.begin(), eventHeap_.end(),
                          std::greater<>{});
            eventHeap_.pop_back();
        }
    }

    /** Current earliest recorded event (kNoEvent when none). */
    uint64_t
    cachedNextEvent() const
    {
        drainPendingEvents();
        return eventHeap_.empty() ? kNoEvent : eventHeap_.front();
    }

    /** Forget every recorded wake-up (drainFunctional leaves no rays
     *  that could be woken; stale records would only cost spurious
     *  ticks, but dropping them keeps nextEventCycle() exactly
     *  kNoEvent, which the sampled driver asserts). */
    void
    clearEventRecords()
    {
        eventHeap_.clear();
        pendingEventReadies_.clear();
    }

    /** Serialize one warp-buffer ray entry (traverser included). */
    void saveRayEntry(Serializer &s, const RayEntry &e) const;
    /** Restore one ray entry, re-binding its traverser to bvh_. */
    void loadRayEntry(Deserializer &d, RayEntry &e);

    static void saveLaneHits(Serializer &s,
                             const std::vector<LaneHit> &hits);
    static std::vector<LaneHit> loadLaneHits(Deserializer &d);

    // --- telemetry (DESIGN.md §12) -----------------------------------
    /** Stage a periodic time-series sample if one is due. Call at
     *  tick() start — tick-time context, writes only this SM's
     *  channel. No-op without telemetry. */
    void maybeTelemSample(uint64_t now);
    /** Fill the occupancy/queue fields of a due sample; the base
     *  records raysHeld(), the VTQ unit adds per-queue depths. */
    virtual void telemSampleFill(TelemSample &s) const;
    /** Stage an event on this SM's track (no-op unless tracing). */
    void telemEvent(uint64_t now, TelemEventKind kind, uint64_t a0 = 0,
                    uint64_t a1 = 0);

    /** Hook: called for each demand-fetched BVH line (the treelet
     *  prefetcher tracks prefetch usefulness with this). */
    virtual void onDemandLine(uint64_t line_addr) { (void)line_addr; }
    /** Hook: called whenever a ray crosses into a new treelet. */
    virtual void
    onTreeletEnter(uint64_t now, uint32_t treelet)
    {
        (void)now;
        (void)treelet;
    }

    const GpuConfig &cfg_;
    MemorySystem &mem_;
    /** This SM's two-phase frontend; all tick-time traffic goes here. */
    MemorySystem::SmPort &port_;
    const Bvh &bvh_;
    uint32_t smId_;

    /** Memory scheduler issue-width limiter. */
    RateLimiter memIssue_;
    /** Intersection pipeline front-end limiter. */
    RateLimiter isect_;
    /** Intersection latency of one node visit: isectBoxLatency, plus
     *  the dequantization stage for compressed layouts, plus the second
     *  4-wide box batch for 8-wide nodes. Precomputed from cfg_ and
     *  bvh_ at construction (both immutable). */
    uint32_t nodeLatency_;

    RtStats stats_;
    CompletionFn completion_;
    CtaDrainedFn ctaDrained_;
    uint64_t lastAccounted_ = 0;
    /** This SM's telemetry staging channel; null = telemetry off. */
    TelemChannel *telem_ = nullptr;

  private:
    void
    drainPendingEvents() const
    {
        for (const uint64_t *p : pendingEventReadies_) {
            // A pointee still holding the sentinel belongs to a preload
            // fixup drained before onMemCommit() patched it; the patch
            // notes the real wake-up itself, so just skip it here.
            if (*p == kPendingReady)
                continue;
            eventHeap_.push_back(*p);
            std::push_heap(eventHeap_.begin(), eventHeap_.end(),
                           std::greater<>{});
        }
        pendingEventReadies_.clear();
    }

    // Mutable: cachedNextEvent() folds resolved deferred readies into
    // the heap from the const query path.
    mutable std::vector<uint64_t> eventHeap_;
    mutable std::vector<const uint64_t *> pendingEventReadies_;
};

class DispatchPolicy;

/** A ray waiting in an RT unit's pending pool (not yet in a slot).
 *  Owned by the unit's DispatchPolicy (dispatch_policy.hh). */
struct PendingRay
{
    Ray ray;
    uint64_t warpToken = 0;
    uint32_t ctaToken = 0;
    uint8_t lane = 0;
};

/**
 * Baseline ray-stationary RT unit: a small warp buffer (Table 1: one
 * slot); each warp traverses to completion, crossing treelet boundaries
 * freely. This is the paper's baseline GPU (with the treelet traversal
 * order of Chou et al. already applied, as section 5 specifies).
 *
 * Which rays form the next RT warp — and where each starts traversing —
 * is delegated to the DispatchPolicy selected by GpuConfig::policy
 * (DESIGN.md §9): Fifo reproduces the original arrival-order behavior
 * cycle-for-cycle; Reorder forms warps from Morton-binned rays (which
 * may mix rays of different shader warps, so hit delivery is per-ray
 * via the warps_ bookkeeping); Predict primes each ray's traverser with
 * a predicted leaf block.
 */
class BaselineRtUnit : public RtUnitBase
{
  public:
    BaselineRtUnit(const GpuConfig &cfg, MemorySystem &mem, const Bvh &bvh,
                   uint32_t sm_id);
    ~BaselineRtUnit() override; //!< Out-of-line: DispatchPolicy is fwd.

    bool tryAccept(uint64_t now, TraceRequest &&req) override;
    void tick(uint64_t now) override;
    bool idle() const override;
    uint64_t raysHeld() const override;
    std::string debugStatus() const override;
    void drainFunctional(uint64_t now) override;
    void setSharedPredict(SharedPredict *sp) override;

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  protected:
    struct WarpSlot
    {
        bool active = false;
        std::vector<RayEntry> rays;
        uint32_t remaining = 0;
    };

    /** Per-warp completion bookkeeping: a policy may split one shader
     *  warp's rays across RT warps, so hits are delivered per ray and
     *  the trace completes when its last ray does. */
    struct WarpBk
    {
        uint32_t outstanding = 0;
        std::vector<LaneHit> hits;
    };

    void accountInterval(uint64_t now);
    void fillSlotsFromQueue(uint64_t now);
    /** Install the policy's next warp into @p slot (must be inactive);
     *  false when the policy has nothing to dispatch. */
    bool fillSlot(uint64_t now, WarpSlot &slot);
    /** Step every due ray of @p slot; true when the warp completed. */
    bool stepSlot(uint64_t now, WarpSlot &slot);
    /** Record a finished ray's hit; fires completion_ on the last. */
    void deliver(uint64_t warp_token, uint8_t lane, const HitRecord &hit);

    std::vector<WarpSlot> slots_;
    /** token -> outstanding/hits; std::map iterates token-sorted, so
     *  snapshots of identical states produce identical bytes. */
    std::map<uint64_t, WarpBk> warps_;
    std::unique_ptr<DispatchPolicy> policy_;
    /** Pooled formWarp() output (allocation-free steady state). */
    std::vector<PendingRay> warpScratch_;
};

} // namespace trt

#endif // TRT_GPU_RT_UNIT_HH
