#include "gpu/rt_unit.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "gpu/dispatch_policy.hh"
#include "telemetry/counter_registry.hh"
#include "telemetry/telemetry.hh"

namespace trt
{

const char *
rtArchName(RtArch a)
{
    switch (a) {
      case RtArch::Baseline:
        return "baseline";
      case RtArch::TreeletPrefetch:
        return "treelet_prefetch";
      case RtArch::TreeletQueues:
        return "treelet_queues";
      default:
        return "unknown";
    }
}

const char *
traversalModeName(TraversalMode m)
{
    switch (m) {
      case TraversalMode::Initial:
        return "initial";
      case TraversalMode::TreeletStationary:
        return "treelet_stationary";
      case TraversalMode::RayStationary:
        return "ray_stationary";
      default:
        return "unknown";
    }
}

// Tripwire for the counter registry: a field added to RtStats without
// a registry entry changes this size and fails here — update
// telemetry/counter_registry.hh (serialization, accumulation and the
// sampled-counter enumeration all follow from it automatically).
static_assert(sizeof(RtStats) == 27 * sizeof(uint64_t) +
                                     3 * sizeof(uint32_t) + 4,
              "RtStats changed: register the new counter in "
              "telemetry/counter_registry.hh");

void
RtStats::accumulate(const RtStats &o)
{
    // Registry-driven merge: Work/Exact counters sum, high-water marks
    // take the max. Gather the other side's values first (both walks
    // visit fields in the identical registry order).
    std::vector<uint64_t> vals;
    vals.reserve(32);
    forEachRtCounter(o, [&](const CounterInfo &, const auto &v) {
        vals.push_back(uint64_t(v));
    });
    size_t i = 0;
    forEachRtCounter(*this, [&](const CounterInfo &ci, auto &v) {
        using T = std::decay_t<decltype(v)>;
        if (ci.kind == CounterKind::HighWater)
            v = std::max(v, T(vals[i++]));
        else
            v = T(v + vals[i++]);
    });
}

RtUnitBase::RtUnitBase(const GpuConfig &cfg, MemorySystem &mem,
                       const Bvh &bvh, uint32_t sm_id)
    : cfg_(cfg), mem_(mem), port_(mem.port(sm_id)), bvh_(bvh),
      smId_(sm_id), memIssue_(cfg.rtMemIssuePerCycle),
      isect_(cfg.isectIssuePerCycle)
{
    // Node-visit latency (DESIGN.md §11): compressed layouts pay a
    // dequantization stage before the box tests, and 8-wide nodes push
    // a second 4-wide AABB batch through the intersection pipeline.
    nodeLatency_ = cfg.isectBoxLatency;
    if (bvh.quantized())
        nodeLatency_ += cfg.nodeDecodeLatency;
    if (bvh.width() == kMaxBvhWidth)
        nodeLatency_ += cfg.wideBoxExtraLatency;
}

void
RtUnitBase::maybeTelemSample(uint64_t now)
{
    if (!telem_ || !telem_->sampleDue(now))
        return;
    TelemSample &s = telem_->startSample(now);
    s.treeletSwitches = stats_.treeletSwitches;
    s.predictLookups = stats_.predictLookups;
    s.predictHits = stats_.predictHits;
    s.nodeVisits = stats_.nodeVisits;
    s.raysCompleted = stats_.raysCompleted;
    telemSampleFill(s);
}

void
RtUnitBase::telemSampleFill(TelemSample &s) const
{
    s.raysHeld =
        uint32_t(std::min<uint64_t>(raysHeld(), UINT32_MAX));
}

void
RtUnitBase::telemEvent(uint64_t now, TelemEventKind kind, uint64_t a0,
                       uint64_t a1)
{
    if (telem_)
        telem_->event(now, kind, a0, a1);
}

bool
RtUnitBase::stepRay(uint64_t now, RayEntry &e, TraversalMode mode,
                    bool stop_at_issue)
{
    bool changed = false;
    for (;;) {
        switch (e.stage) {
          case Stage::WaitData:
            if (e.ready > now)
                return changed;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;

          case Stage::NeedIssue: {
            if (needsPolicy(e) || stop_at_issue)
                return changed; // caller decides (done / boundary / park)
            if (memIssue_.nextFree(now) > now) {
                // Issue port exhausted this cycle; wake when it frees.
                noteEvent(memIssue_.nextFree(now));
                return changed;
            }
            uint64_t issue_at = memIssue_.book(now);
            RayTraverser::Access acc = e.trav.currentAccess();
            // Let subclasses observe demand lines (prefetch tracking).
            uint64_t first = acc.addr & ~uint64_t(mem_.lineBytes() - 1);
            uint64_t last = (acc.addr + acc.bytes - 1) &
                            ~uint64_t(mem_.lineBytes() - 1);
            for (uint64_t a = first; a <= last; a += mem_.lineBytes())
                onDemandLine(a);
            MemClass cls =
                acc.leaf ? MemClass::Triangle : MemClass::BvhNode;
            // Deferred in an issue phase: the sentinel parks the ray in
            // WaitMem until commitIssuePhase() stores the real ready
            // cycle through &e.ready (slot entries never move mid-tick).
            e.ready = kPendingReady;
            port_.read(issue_at, acc.addr, acc.bytes, cls, false,
                       &e.ready);
            // Outside an issue phase the read resolved synchronously
            // and e.ready is already real; otherwise the sentinel is
            // read after commitIssuePhase() resolves it. Either way the
            // entry stays parked in WaitMem (and its slot occupied)
            // until then, so the recorded pointer cannot dangle.
            if (e.ready == kPendingReady)
                notePendingEvent(&e.ready);
            else if (e.ready > now)
                noteEvent(e.ready);
            e.fetchIsLeaf = acc.leaf;
            e.stage = Stage::WaitMem;
            changed = true;
            break;
          }

          case Stage::WaitMem: {
            if (e.ready > now)
                return changed;
            // Data returned to the response FIFO; enter the
            // intersection pipeline (throughput limited).
            uint64_t start = isect_.book(std::max(now, e.ready));
            e.ready = start + (e.fetchIsLeaf ? cfg_.isectTriLatency
                                             : nodeLatency_);
            e.stage = Stage::WaitIsect;
            if (e.ready > now)
                noteEvent(e.ready);
            changed = true;
            break;
          }

          case Stage::WaitIsect: {
            if (e.ready > now)
                return changed;
            uint32_t tests = e.trav.complete();
            stats_.isectTests[modeIndex(mode)] += tests;
            if (e.fetchIsLeaf)
                stats_.leafVisits++;
            else
                stats_.nodeVisits++;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;
          }

          case Stage::Done:
            return changed;
        }
    }
}

BaselineRtUnit::BaselineRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                               const Bvh &bvh, uint32_t sm_id)
    : RtUnitBase(cfg, mem, bvh, sm_id)
{
    slots_.resize(cfg.warpBufferSize);
    policy_ = makeDispatchPolicy(cfg, bvh, stats_);
}

BaselineRtUnit::~BaselineRtUnit() = default;

void
BaselineRtUnit::setSharedPredict(SharedPredict *sp)
{
    policy_->setShared(sp, smId_);
}

bool
BaselineRtUnit::tryAccept(uint64_t now, TraceRequest &&req)
{
    // The shader warp stalls at traceRayEXT() either way; pooling the
    // rays here is timing-equivalent to stalling in the SM and keeps
    // the SM model simple. Completion bookkeeping is registered up
    // front because a policy may spread the warp's rays over several
    // RT warps; the trace completes when its last ray delivers.
    WarpBk &bk = warps_[req.token];
    bk.outstanding = uint32_t(req.lanes.size());
    bk.hits.clear();
    if (bk.outstanding == 0) {
        warps_.erase(req.token);
        if (completion_)
            completion_(req.token, {});
        return true;
    }
    std::vector<PendingRay> group;
    group.reserve(req.lanes.size());
    for (const LaneRay &lr : req.lanes)
        group.push_back({lr.ray, req.token, req.ctaToken, lr.lane});
    policy_->enqueue(std::move(group));
    fillSlotsFromQueue(now);
    return true;
}

void
BaselineRtUnit::deliver(uint64_t warp_token, uint8_t lane,
                        const HitRecord &hit)
{
    auto it = warps_.find(warp_token);
    assert(it != warps_.end() && it->second.outstanding > 0);
    WarpBk &bk = it->second;
    bk.hits.push_back({lane, hit});
    if (--bk.outstanding == 0) {
        std::vector<LaneHit> hits = std::move(bk.hits);
        warps_.erase(it);
        if (completion_)
            completion_(warp_token, std::move(hits));
    }
}

bool
BaselineRtUnit::fillSlot(uint64_t now, WarpSlot &slot)
{
    policy_->formWarp(cfg_.warpSize, warpScratch_);
    if (warpScratch_.empty())
        return false;
    slot.active = true;
    uint32_t n = uint32_t(warpScratch_.size());
    telemEvent(now, TelemEventKind::WarpFormed,
               uint64_t(TraversalMode::RayStationary), n);
    // Reuse prior entries so each ray's traverser recycles its
    // stack allocations (resize keeps capacity either way).
    slot.rays.resize(n);
    slot.remaining = n;
    for (uint32_t i = 0; i < n; i++) {
        const PendingRay &pr = warpScratch_[i];
        RayEntry &e = slot.rays[i];
        e.valid = true;
        e.lane = pr.lane;
        e.warpToken = pr.warpToken;
        e.ctaToken = pr.ctaToken;
        e.trav.reset(&bvh_, pr.ray);
        DispatchPolicy::Speculation spec = policy_->speculate(pr.ray);
        if (spec.valid) {
            // Predicted rays start at the predicted leaf block; the
            // root fallback that always follows re-enters the treelet
            // path through the ordinary boundary handling.
            e.trav.primeSpeculation(spec.firstTri, spec.count);
        } else {
            // Fresh rays enter the root treelet immediately in the
            // baseline (ray-stationary) policy.
            e.trav.enterNextTreelet();
            onTreeletEnter(now, e.trav.currentTreelet());
        }
        e.stage = Stage::NeedIssue;
        e.ready = now;
        e.fetchIsLeaf = false;
    }
    return true;
}

void
BaselineRtUnit::fillSlotsFromQueue(uint64_t now)
{
    for (auto &slot : slots_) {
        if (slot.active)
            continue;
        if (!fillSlot(now, slot))
            break;
        // Freshly filled entries can issue this very cycle; this call
        // runs outside a tick (tryAccept), so schedule the same-cycle
        // tick the old rescan provided.
        noteEvent(now);
    }
}

void
BaselineRtUnit::accountInterval(uint64_t now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t dt = now - lastAccounted_;
    lastAccounted_ = now;
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        stats_.activeLaneCycles += uint64_t(slot.remaining) * dt;
        stats_.slotLaneCycles += uint64_t(cfg_.warpSize) * dt;
        stats_.modeCycles[modeIndex(TraversalMode::RayStationary)] += dt;
    }
}

bool
BaselineRtUnit::stepSlot(uint64_t now, WarpSlot &slot)
{
    for (auto &e : slot.rays) {
        if (!e.valid || e.stage == Stage::Done)
            continue;
        // Not-due waits can't progress; skip the call entirely.
        if (e.stage != Stage::NeedIssue && e.ready > now)
            continue;
        stepRay(now, e, TraversalMode::RayStationary);
        while (needsPolicy(e)) {
            if (e.trav.done()) {
                policy_->onRayComplete(e.trav);
                if (telem_ && e.trav.specOutcome() !=
                                  RayTraverser::SpecOutcome::None)
                    telemEvent(now, TelemEventKind::SpeculationVerdict,
                               e.trav.specOutcome() ==
                                       RayTraverser::SpecOutcome::Correct
                                   ? 1
                                   : 0);
                deliver(e.warpToken, e.lane, e.trav.hit());
                e.stage = Stage::Done;
                slot.remaining--;
                stats_.raysCompleted++;
                break;
            }
            // Boundary: the baseline just keeps going.
            e.trav.enterNextTreelet();
            stats_.boundaryCrossings++;
            onTreeletEnter(now, e.trav.currentTreelet());
            stepRay(now, e, TraversalMode::RayStationary);
        }
    }
    if (slot.remaining == 0) {
        slot.active = false;
        // slot.rays is kept: the next fill reuses the entries
        // (and their traverser stacks) in place.
        return true;
    }
    return false;
}

void
BaselineRtUnit::tick(uint64_t now)
{
    maybeTelemSample(now);
    accountInterval(now);
    // Everything due by now is handled below; drop its event records.
    consumeEventsUpTo(now);

    // One pass suffices for the resident warps: stepping a ray never
    // unblocks an already-visited one in the same cycle (issue ports
    // only fill up and ready cycles only lie ahead), so the classic
    // rescan-until-fixed-point only ever found new work in slots
    // refilled from the pending queue. Refill and step those directly.
    bool freed = false;
    for (auto &slot : slots_) {
        if (slot.active)
            freed |= stepSlot(now, slot);
    }
    while (freed) {
        freed = false;
        for (auto &slot : slots_) {
            if (slot.active || !fillSlot(now, slot))
                continue;
            freed |= stepSlot(now, slot);
        }
    }
}

void
BaselineRtUnit::drainFunctional(uint64_t now)
{
    // Charge lane-occupancy up to the boundary, then finish every ray
    // functionally. Mode-cycle/isect attribution for drained work is
    // deliberately not modeled: the sampler ends its measured interval
    // before draining, so these counters are only read as deltas inside
    // intervals and the drain burst is invisible to the estimates.
    accountInterval(now);
    for (auto &slot : slots_) {
        if (!slot.active)
            continue;
        for (auto &e : slot.rays) {
            if (!e.valid || e.stage == Stage::Done)
                continue;
            finishTraversal(e.trav);
            policy_->onRayComplete(e.trav);
            deliver(e.warpToken, e.lane, e.trav.hit());
            e.stage = Stage::Done;
            slot.remaining--;
            stats_.raysCompleted++;
        }
        slot.active = false;
    }
    // Pooled rays never entered a slot; traverse them with a scratch
    // traverser (fresh rays sit at the root boundary until
    // finishTraversal crosses it, exactly as fillSlot would).
    // Speculation is deliberately skipped: finishTraversal from the
    // root yields the identical frame, and the drained burst's timing
    // is never measured (DESIGN.md §8).
    RayTraverser scratch;
    policy_->takePending(warpScratch_);
    for (const PendingRay &pr : warpScratch_) {
        scratch.reset(&bvh_, pr.ray);
        finishTraversal(scratch);
        policy_->onRayComplete(scratch);
        deliver(pr.warpToken, pr.lane, scratch.hit());
        stats_.raysCompleted++;
    }
    warpScratch_.clear();
    clearEventRecords();
}

bool
BaselineRtUnit::idle() const
{
    if (policy_->hasPending())
        return false;
    for (const auto &slot : slots_)
        if (slot.active)
            return false;
    return true;
}

uint64_t
BaselineRtUnit::raysHeld() const
{
    uint64_t held = policy_->pendingRays();
    for (const auto &slot : slots_)
        if (slot.active)
            held += slot.remaining;
    return held;
}

std::string
BaselineRtUnit::debugStatus() const
{
    uint32_t active = 0;
    std::array<uint32_t, 5> stages{};
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        active++;
        for (const auto &e : slot.rays)
            if (e.valid)
                stages[size_t(e.stage)]++;
    }
    std::ostringstream os;
    os << "baseline slots=" << active << "/" << slots_.size()
       << " policy=" << dispatchPolicyName(policy_->kind())
       << " pendingRays=" << policy_->pendingRays() << " rays{waitData="
       << stages[size_t(Stage::WaitData)]
       << " needIssue=" << stages[size_t(Stage::NeedIssue)]
       << " waitMem=" << stages[size_t(Stage::WaitMem)]
       << " waitIsect=" << stages[size_t(Stage::WaitIsect)] << "}";
    return os.str();
}

// ---- snapshot hooks ----------------------------------------------------

void
RtStats::saveState(Serializer &s) const
{
    // Registry order, native widths: the chunk layout is defined by
    // telemetry/counter_registry.hh alone.
    s.beginChunk("RTST");
    forEachRtCounter(*this, [&](const CounterInfo &, const auto &v) {
        s.pod(v);
    });
    s.endChunk();
}

void
RtStats::loadState(Deserializer &d)
{
    d.beginChunk("RTST");
    forEachRtCounter(*this, [&](const CounterInfo &, auto &v) {
        v = d.pod<std::decay_t<decltype(v)>>();
    });
    d.endChunk();
}

void
RtUnitBase::saveRayEntry(Serializer &s, const RayEntry &e) const
{
    if (e.valid && e.ready == kPendingReady)
        throw SnapshotError(
            "snapshot: ray entry with unresolved deferred ready "
            "(capture outside the serial commit boundary)");
    s.b(e.valid);
    s.u8(e.lane);
    s.u64(e.warpToken);
    s.u32(e.ctaToken);
    s.u32(e.rayId);
    e.trav.saveState(s);
    s.u8(uint8_t(e.stage));
    s.u64(e.ready);
    s.b(e.fetchIsLeaf);
}

void
RtUnitBase::loadRayEntry(Deserializer &d, RayEntry &e)
{
    e.valid = d.b();
    e.lane = d.u8();
    e.warpToken = d.u64();
    e.ctaToken = d.u32();
    e.rayId = d.u32();
    e.trav.loadState(d, &bvh_);
    uint8_t stage = d.u8();
    if (stage > uint8_t(Stage::Done))
        throw SnapshotError("snapshot: ray stage out of range");
    e.stage = Stage(stage);
    e.ready = d.u64();
    e.fetchIsLeaf = d.b();
}

void
RtUnitBase::saveState(Serializer &s) const
{
    s.beginChunk("RTUB");
    stats_.saveState(s);
    s.u64(lastAccounted_);
    memIssue_.saveState(s);
    isect_.saveState(s);
    // Fold any resolved deferred readies into the heap, then persist
    // it sorted — a sorted array is a valid min-heap and the pop order
    // of a heap of plain cycles depends only on the multiset anyway.
    (void)cachedNextEvent();
    std::vector<uint64_t> events = eventHeap_;
    std::sort(events.begin(), events.end());
    s.vecPod(events);
    s.endChunk();
}

void
RtUnitBase::loadState(Deserializer &d)
{
    d.beginChunk("RTUB");
    stats_.loadState(d);
    lastAccounted_ = d.u64();
    memIssue_.loadState(d);
    isect_.loadState(d);
    pendingEventReadies_.clear();
    eventHeap_ = d.vecPod<uint64_t>(); // sorted == valid min-heap
    d.endChunk();
}

void
RtUnitBase::saveLaneHits(Serializer &s, const std::vector<LaneHit> &hits)
{
    s.u64(hits.size());
    for (const LaneHit &h : hits) {
        s.u8(h.lane);
        s.pod(h.hit);
    }
}

std::vector<LaneHit>
RtUnitBase::loadLaneHits(Deserializer &d)
{
    uint64_t n = d.u64();
    std::vector<LaneHit> hits;
    hits.reserve(size_t(n));
    for (uint64_t i = 0; i < n; i++) {
        LaneHit h;
        h.lane = d.u8();
        h.hit = d.pod<HitRecord>();
        hits.push_back(h);
    }
    return hits;
}

void
BaselineRtUnit::saveState(Serializer &s) const
{
    RtUnitBase::saveState(s);
    s.beginChunk("BASE");
    s.u64(slots_.size());
    for (const WarpSlot &slot : slots_) {
        s.b(slot.active);
        s.u64(slot.rays.size());
        for (const RayEntry &e : slot.rays)
            saveRayEntry(s, e);
        s.u32(slot.remaining);
    }
    // std::map iterates token-sorted: identical states serialize to
    // identical bytes regardless of insertion history.
    s.u64(warps_.size());
    for (const auto &[token, bk] : warps_) {
        s.u64(token);
        s.u32(bk.outstanding);
        saveLaneHits(s, bk.hits);
    }
    s.endChunk();
    policy_->saveState(s);
}

void
BaselineRtUnit::loadState(Deserializer &d)
{
    RtUnitBase::loadState(d);
    d.beginChunk("BASE");
    if (d.u64() != slots_.size())
        throw SnapshotError("snapshot: warp slot count mismatch");
    for (WarpSlot &slot : slots_) {
        slot.active = d.b();
        uint64_t n = d.u64();
        slot.rays.assign(size_t(n), RayEntry{});
        for (RayEntry &e : slot.rays)
            loadRayEntry(d, e);
        slot.remaining = d.u32();
    }
    warps_.clear();
    uint64_t nw = d.u64();
    for (uint64_t i = 0; i < nw; i++) {
        uint64_t token = d.u64();
        WarpBk bk;
        bk.outstanding = d.u32();
        bk.hits = loadLaneHits(d);
        warps_.emplace(token, std::move(bk));
    }
    d.endChunk();
    policy_->loadState(d);
}

} // namespace trt
