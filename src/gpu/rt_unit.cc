#include "gpu/rt_unit.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace trt
{

const char *
rtArchName(RtArch a)
{
    switch (a) {
      case RtArch::Baseline:
        return "baseline";
      case RtArch::TreeletPrefetch:
        return "treelet_prefetch";
      case RtArch::TreeletQueues:
        return "treelet_queues";
      default:
        return "unknown";
    }
}

const char *
traversalModeName(TraversalMode m)
{
    switch (m) {
      case TraversalMode::Initial:
        return "initial";
      case TraversalMode::TreeletStationary:
        return "treelet_stationary";
      case TraversalMode::RayStationary:
        return "ray_stationary";
      default:
        return "unknown";
    }
}

void
RtStats::accumulate(const RtStats &o)
{
    activeLaneCycles += o.activeLaneCycles;
    slotLaneCycles += o.slotLaneCycles;
    for (size_t i = 0; i < modeCycles.size(); i++) {
        modeCycles[i] += o.modeCycles[i];
        isectTests[i] += o.isectTests[i];
    }
    nodeVisits += o.nodeVisits;
    leafVisits += o.leafVisits;
    raysCompleted += o.raysCompleted;
    boundaryCrossings += o.boundaryCrossings;
    raysEnqueued += o.raysEnqueued;
    treeletWarpsFormed += o.treeletWarpsFormed;
    groupedWarpsFormed += o.groupedWarpsFormed;
    repackEvents += o.repackEvents;
    repackedRays += o.repackedRays;
    countTableHighWater = std::max(countTableHighWater,
                                   o.countTableHighWater);
    countTableOverThresholdHW = std::max(countTableOverThresholdHW,
                                         o.countTableOverThresholdHW);
    queueTableEntriesHW = std::max(queueTableEntriesHW,
                                   o.queueTableEntriesHW);
    maxConcurrentRays = std::max(maxConcurrentRays, o.maxConcurrentRays);
    prefetchLines += o.prefetchLines;
    prefetchUsedLines += o.prefetchUsedLines;
    prefetchIssues += o.prefetchIssues;
}

RtUnitBase::RtUnitBase(const GpuConfig &cfg, MemorySystem &mem,
                       const Bvh &bvh, uint32_t sm_id)
    : cfg_(cfg), mem_(mem), port_(mem.port(sm_id)), bvh_(bvh),
      smId_(sm_id), memIssue_(cfg.rtMemIssuePerCycle),
      isect_(cfg.isectIssuePerCycle)
{
}

bool
RtUnitBase::stepRay(uint64_t now, RayEntry &e, TraversalMode mode,
                    bool stop_at_issue)
{
    bool changed = false;
    for (;;) {
        switch (e.stage) {
          case Stage::WaitData:
            if (e.ready > now)
                return changed;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;

          case Stage::NeedIssue: {
            if (needsPolicy(e) || stop_at_issue)
                return changed; // caller decides (done / boundary / park)
            if (memIssue_.nextFree(now) > now)
                return changed; // issue port exhausted this cycle
            uint64_t issue_at = memIssue_.book(now);
            RayTraverser::Access acc = e.trav.currentAccess();
            // Let subclasses observe demand lines (prefetch tracking).
            uint64_t first = acc.addr & ~uint64_t(mem_.lineBytes() - 1);
            uint64_t last = (acc.addr + acc.bytes - 1) &
                            ~uint64_t(mem_.lineBytes() - 1);
            for (uint64_t a = first; a <= last; a += mem_.lineBytes())
                onDemandLine(a);
            MemClass cls =
                acc.leaf ? MemClass::Triangle : MemClass::BvhNode;
            // Deferred in an issue phase: the sentinel parks the ray in
            // WaitMem until commitIssuePhase() stores the real ready
            // cycle through &e.ready (slot entries never move mid-tick).
            e.ready = kPendingReady;
            port_.read(issue_at, acc.addr, acc.bytes, cls, false,
                       &e.ready);
            e.fetchIsLeaf = acc.leaf;
            e.stage = Stage::WaitMem;
            changed = true;
            break;
          }

          case Stage::WaitMem: {
            if (e.ready > now)
                return changed;
            // Data returned to the response FIFO; enter the
            // intersection pipeline (throughput limited).
            uint64_t start = isect_.book(std::max(now, e.ready));
            e.ready = start + (e.fetchIsLeaf ? cfg_.isectTriLatency
                                             : cfg_.isectBoxLatency);
            e.stage = Stage::WaitIsect;
            changed = true;
            break;
          }

          case Stage::WaitIsect: {
            if (e.ready > now)
                return changed;
            uint32_t tests = e.trav.complete();
            stats_.isectTests[size_t(mode)] += tests;
            if (e.fetchIsLeaf)
                stats_.leafVisits++;
            else
                stats_.nodeVisits++;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;
          }

          case Stage::Done:
            return changed;
        }
    }
}

BaselineRtUnit::BaselineRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                               const Bvh &bvh, uint32_t sm_id)
    : RtUnitBase(cfg, mem, bvh, sm_id)
{
    slots_.resize(cfg.warpBufferSize);
}

bool
BaselineRtUnit::tryAccept(uint64_t now, TraceRequest &&req)
{
    // The baseline warp stalls at traceRayEXT() either way; queueing
    // here is timing-equivalent to stalling in the SM and keeps the SM
    // model simple.
    pending_.push_back(std::move(req));
    fillSlotsFromQueue(now);
    return true;
}

void
BaselineRtUnit::fillSlotsFromQueue(uint64_t now)
{
    for (auto &slot : slots_) {
        if (slot.active || pending_.empty())
            continue;
        TraceRequest req = std::move(pending_.front());
        pending_.pop_front();
        slot.active = true;
        slot.token = req.token;
        slot.hits.clear();
        slot.rays.clear();
        slot.rays.reserve(req.lanes.size());
        slot.remaining = uint32_t(req.lanes.size());
        for (auto &lr : req.lanes) {
            RayEntry e;
            e.valid = true;
            e.lane = lr.lane;
            e.warpToken = req.token;
            e.ctaToken = req.ctaToken;
            e.trav = RayTraverser(&bvh_, lr.ray);
            // Fresh rays enter the root treelet immediately in the
            // baseline (ray-stationary) policy.
            e.trav.enterNextTreelet();
            onTreeletEnter(now, e.trav.currentTreelet());
            e.stage = Stage::NeedIssue;
            e.ready = now;
            slot.rays.push_back(std::move(e));
        }
    }
}

void
BaselineRtUnit::accountInterval(uint64_t now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t dt = now - lastAccounted_;
    lastAccounted_ = now;
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        stats_.activeLaneCycles += uint64_t(slot.remaining) * dt;
        stats_.slotLaneCycles += uint64_t(cfg_.warpSize) * dt;
        stats_.modeCycles[size_t(TraversalMode::RayStationary)] += dt;
    }
}

void
BaselineRtUnit::tick(uint64_t now)
{
    accountInterval(now);

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &slot : slots_) {
            if (!slot.active)
                continue;
            for (auto &e : slot.rays) {
                if (!e.valid || e.stage == Stage::Done)
                    continue;
                changed |= stepRay(now, e, TraversalMode::RayStationary);
                while (needsPolicy(e)) {
                    if (e.trav.done()) {
                        slot.hits.push_back({e.lane, e.trav.hit()});
                        e.stage = Stage::Done;
                        slot.remaining--;
                        stats_.raysCompleted++;
                        changed = true;
                        break;
                    }
                    // Boundary: the baseline just keeps going.
                    e.trav.enterNextTreelet();
                    stats_.boundaryCrossings++;
                    onTreeletEnter(now, e.trav.currentTreelet());
                    changed |= stepRay(now, e, TraversalMode::RayStationary);
                }
            }
            if (slot.remaining == 0) {
                if (completion_)
                    completion_(slot.token, std::move(slot.hits));
                slot.active = false;
                slot.hits.clear();
                slot.rays.clear();
                changed = true;
            }
        }
        if (changed)
            fillSlotsFromQueue(now);
    }
}

uint64_t
BaselineRtUnit::nextEventCycle() const
{
    uint64_t next = kNoEvent;
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        for (const auto &e : slot.rays) {
            if (!e.valid)
                continue;
            switch (e.stage) {
              case Stage::WaitData:
              case Stage::WaitMem:
              case Stage::WaitIsect:
                next = std::min(next, e.ready);
                break;
              case Stage::NeedIssue:
                // Only reachable when the issue port was exhausted at
                // the last tick; it frees next cycle.
                next = std::min(next, memIssue_.nextFree(lastAccounted_));
                break;
              default:
                break;
            }
        }
    }
    return next;
}

bool
BaselineRtUnit::idle() const
{
    if (!pending_.empty())
        return false;
    for (const auto &slot : slots_)
        if (slot.active)
            return false;
    return true;
}

std::string
BaselineRtUnit::debugStatus() const
{
    uint32_t active = 0;
    std::array<uint32_t, 5> stages{};
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        active++;
        for (const auto &e : slot.rays)
            if (e.valid)
                stages[size_t(e.stage)]++;
    }
    std::ostringstream os;
    os << "baseline slots=" << active << "/" << slots_.size()
       << " pendingWarps=" << pending_.size() << " rays{waitData="
       << stages[size_t(Stage::WaitData)]
       << " needIssue=" << stages[size_t(Stage::NeedIssue)]
       << " waitMem=" << stages[size_t(Stage::WaitMem)]
       << " waitIsect=" << stages[size_t(Stage::WaitIsect)] << "}";
    return os.str();
}

} // namespace trt
