#include "gpu/rt_unit.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace trt
{

const char *
rtArchName(RtArch a)
{
    switch (a) {
      case RtArch::Baseline:
        return "baseline";
      case RtArch::TreeletPrefetch:
        return "treelet_prefetch";
      case RtArch::TreeletQueues:
        return "treelet_queues";
      default:
        return "unknown";
    }
}

const char *
traversalModeName(TraversalMode m)
{
    switch (m) {
      case TraversalMode::Initial:
        return "initial";
      case TraversalMode::TreeletStationary:
        return "treelet_stationary";
      case TraversalMode::RayStationary:
        return "ray_stationary";
      default:
        return "unknown";
    }
}

void
RtStats::accumulate(const RtStats &o)
{
    activeLaneCycles += o.activeLaneCycles;
    slotLaneCycles += o.slotLaneCycles;
    for (size_t i = 0; i < modeCycles.size(); i++) {
        modeCycles[i] += o.modeCycles[i];
        isectTests[i] += o.isectTests[i];
    }
    nodeVisits += o.nodeVisits;
    leafVisits += o.leafVisits;
    raysCompleted += o.raysCompleted;
    boundaryCrossings += o.boundaryCrossings;
    raysEnqueued += o.raysEnqueued;
    treeletWarpsFormed += o.treeletWarpsFormed;
    groupedWarpsFormed += o.groupedWarpsFormed;
    repackEvents += o.repackEvents;
    repackedRays += o.repackedRays;
    countTableHighWater = std::max(countTableHighWater,
                                   o.countTableHighWater);
    countTableOverThresholdHW = std::max(countTableOverThresholdHW,
                                         o.countTableOverThresholdHW);
    queueTableEntriesHW = std::max(queueTableEntriesHW,
                                   o.queueTableEntriesHW);
    maxConcurrentRays = std::max(maxConcurrentRays, o.maxConcurrentRays);
    prefetchLines += o.prefetchLines;
    prefetchUsedLines += o.prefetchUsedLines;
    prefetchIssues += o.prefetchIssues;
}

RtUnitBase::RtUnitBase(const GpuConfig &cfg, MemorySystem &mem,
                       const Bvh &bvh, uint32_t sm_id)
    : cfg_(cfg), mem_(mem), port_(mem.port(sm_id)), bvh_(bvh),
      smId_(sm_id), memIssue_(cfg.rtMemIssuePerCycle),
      isect_(cfg.isectIssuePerCycle)
{
}

bool
RtUnitBase::stepRay(uint64_t now, RayEntry &e, TraversalMode mode,
                    bool stop_at_issue)
{
    bool changed = false;
    for (;;) {
        switch (e.stage) {
          case Stage::WaitData:
            if (e.ready > now)
                return changed;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;

          case Stage::NeedIssue: {
            if (needsPolicy(e) || stop_at_issue)
                return changed; // caller decides (done / boundary / park)
            if (memIssue_.nextFree(now) > now) {
                // Issue port exhausted this cycle; wake when it frees.
                noteEvent(memIssue_.nextFree(now));
                return changed;
            }
            uint64_t issue_at = memIssue_.book(now);
            RayTraverser::Access acc = e.trav.currentAccess();
            // Let subclasses observe demand lines (prefetch tracking).
            uint64_t first = acc.addr & ~uint64_t(mem_.lineBytes() - 1);
            uint64_t last = (acc.addr + acc.bytes - 1) &
                            ~uint64_t(mem_.lineBytes() - 1);
            for (uint64_t a = first; a <= last; a += mem_.lineBytes())
                onDemandLine(a);
            MemClass cls =
                acc.leaf ? MemClass::Triangle : MemClass::BvhNode;
            // Deferred in an issue phase: the sentinel parks the ray in
            // WaitMem until commitIssuePhase() stores the real ready
            // cycle through &e.ready (slot entries never move mid-tick).
            e.ready = kPendingReady;
            port_.read(issue_at, acc.addr, acc.bytes, cls, false,
                       &e.ready);
            // Outside an issue phase the read resolved synchronously
            // and e.ready is already real; otherwise the sentinel is
            // read after commitIssuePhase() resolves it. Either way the
            // entry stays parked in WaitMem (and its slot occupied)
            // until then, so the recorded pointer cannot dangle.
            if (e.ready == kPendingReady)
                notePendingEvent(&e.ready);
            else if (e.ready > now)
                noteEvent(e.ready);
            e.fetchIsLeaf = acc.leaf;
            e.stage = Stage::WaitMem;
            changed = true;
            break;
          }

          case Stage::WaitMem: {
            if (e.ready > now)
                return changed;
            // Data returned to the response FIFO; enter the
            // intersection pipeline (throughput limited).
            uint64_t start = isect_.book(std::max(now, e.ready));
            e.ready = start + (e.fetchIsLeaf ? cfg_.isectTriLatency
                                             : cfg_.isectBoxLatency);
            e.stage = Stage::WaitIsect;
            if (e.ready > now)
                noteEvent(e.ready);
            changed = true;
            break;
          }

          case Stage::WaitIsect: {
            if (e.ready > now)
                return changed;
            uint32_t tests = e.trav.complete();
            stats_.isectTests[size_t(mode)] += tests;
            if (e.fetchIsLeaf)
                stats_.leafVisits++;
            else
                stats_.nodeVisits++;
            e.stage = Stage::NeedIssue;
            changed = true;
            break;
          }

          case Stage::Done:
            return changed;
        }
    }
}

BaselineRtUnit::BaselineRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                               const Bvh &bvh, uint32_t sm_id)
    : RtUnitBase(cfg, mem, bvh, sm_id)
{
    slots_.resize(cfg.warpBufferSize);
}

bool
BaselineRtUnit::tryAccept(uint64_t now, TraceRequest &&req)
{
    // The baseline warp stalls at traceRayEXT() either way; queueing
    // here is timing-equivalent to stalling in the SM and keeps the SM
    // model simple.
    pending_.push_back(std::move(req));
    fillSlotsFromQueue(now);
    return true;
}

void
BaselineRtUnit::fillSlot(uint64_t now, WarpSlot &slot)
{
    TraceRequest req = std::move(pending_.front());
    pending_.pop_front();
    slot.active = true;
    slot.token = req.token;
    slot.hits.clear();
    uint32_t n = uint32_t(req.lanes.size());
    // Reuse prior entries so each ray's traverser recycles its
    // stack allocations (resize keeps capacity either way).
    slot.rays.resize(n);
    slot.remaining = n;
    for (uint32_t i = 0; i < n; i++) {
        const LaneRay &lr = req.lanes[i];
        RayEntry &e = slot.rays[i];
        e.valid = true;
        e.lane = lr.lane;
        e.warpToken = req.token;
        e.ctaToken = req.ctaToken;
        e.trav.reset(&bvh_, lr.ray);
        // Fresh rays enter the root treelet immediately in the
        // baseline (ray-stationary) policy.
        e.trav.enterNextTreelet();
        onTreeletEnter(now, e.trav.currentTreelet());
        e.stage = Stage::NeedIssue;
        e.ready = now;
        e.fetchIsLeaf = false;
    }
}

void
BaselineRtUnit::fillSlotsFromQueue(uint64_t now)
{
    for (auto &slot : slots_) {
        if (slot.active || pending_.empty())
            continue;
        fillSlot(now, slot);
        // Freshly filled entries can issue this very cycle; this call
        // runs outside a tick (tryAccept), so schedule the same-cycle
        // tick the old rescan provided.
        noteEvent(now);
    }
}

void
BaselineRtUnit::accountInterval(uint64_t now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t dt = now - lastAccounted_;
    lastAccounted_ = now;
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        stats_.activeLaneCycles += uint64_t(slot.remaining) * dt;
        stats_.slotLaneCycles += uint64_t(cfg_.warpSize) * dt;
        stats_.modeCycles[size_t(TraversalMode::RayStationary)] += dt;
    }
}

bool
BaselineRtUnit::stepSlot(uint64_t now, WarpSlot &slot)
{
    for (auto &e : slot.rays) {
        if (!e.valid || e.stage == Stage::Done)
            continue;
        // Not-due waits can't progress; skip the call entirely.
        if (e.stage != Stage::NeedIssue && e.ready > now)
            continue;
        stepRay(now, e, TraversalMode::RayStationary);
        while (needsPolicy(e)) {
            if (e.trav.done()) {
                slot.hits.push_back({e.lane, e.trav.hit()});
                e.stage = Stage::Done;
                slot.remaining--;
                stats_.raysCompleted++;
                break;
            }
            // Boundary: the baseline just keeps going.
            e.trav.enterNextTreelet();
            stats_.boundaryCrossings++;
            onTreeletEnter(now, e.trav.currentTreelet());
            stepRay(now, e, TraversalMode::RayStationary);
        }
    }
    if (slot.remaining == 0) {
        if (completion_)
            completion_(slot.token, std::move(slot.hits));
        slot.active = false;
        slot.hits.clear();
        // slot.rays is kept: the next fill reuses the entries
        // (and their traverser stacks) in place.
        return true;
    }
    return false;
}

void
BaselineRtUnit::tick(uint64_t now)
{
    accountInterval(now);
    // Everything due by now is handled below; drop its event records.
    consumeEventsUpTo(now);

    // One pass suffices for the resident warps: stepping a ray never
    // unblocks an already-visited one in the same cycle (issue ports
    // only fill up and ready cycles only lie ahead), so the classic
    // rescan-until-fixed-point only ever found new work in slots
    // refilled from the pending queue. Refill and step those directly.
    bool freed = false;
    for (auto &slot : slots_) {
        if (slot.active)
            freed |= stepSlot(now, slot);
    }
    while (freed) {
        freed = false;
        for (auto &slot : slots_) {
            if (slot.active || pending_.empty())
                continue;
            fillSlot(now, slot);
            freed |= stepSlot(now, slot);
        }
    }
}

void
BaselineRtUnit::drainFunctional(uint64_t now)
{
    // Charge lane-occupancy up to the boundary, then finish every ray
    // functionally. Mode-cycle/isect attribution for drained work is
    // deliberately not modeled: the sampler ends its measured interval
    // before draining, so these counters are only read as deltas inside
    // intervals and the drain burst is invisible to the estimates.
    accountInterval(now);
    for (auto &slot : slots_) {
        if (!slot.active)
            continue;
        for (auto &e : slot.rays) {
            if (!e.valid || e.stage == Stage::Done)
                continue;
            finishTraversal(e.trav);
            slot.hits.push_back({e.lane, e.trav.hit()});
            e.stage = Stage::Done;
            slot.remaining--;
            stats_.raysCompleted++;
        }
        if (completion_)
            completion_(slot.token, std::move(slot.hits));
        slot.active = false;
        slot.hits.clear();
    }
    // Queued warps never entered a slot; traverse them with a scratch
    // traverser (fresh rays sit at the root boundary until
    // finishTraversal crosses it, exactly as fillSlot would).
    RayTraverser scratch;
    while (!pending_.empty()) {
        TraceRequest req = std::move(pending_.front());
        pending_.pop_front();
        std::vector<LaneHit> hits;
        hits.reserve(req.lanes.size());
        for (const LaneRay &lr : req.lanes) {
            scratch.reset(&bvh_, lr.ray);
            finishTraversal(scratch);
            hits.push_back({lr.lane, scratch.hit()});
            stats_.raysCompleted++;
        }
        if (completion_)
            completion_(req.token, std::move(hits));
    }
    clearEventRecords();
}

bool
BaselineRtUnit::idle() const
{
    if (!pending_.empty())
        return false;
    for (const auto &slot : slots_)
        if (slot.active)
            return false;
    return true;
}

uint64_t
BaselineRtUnit::raysHeld() const
{
    uint64_t held = 0;
    for (const auto &req : pending_)
        held += req.lanes.size();
    for (const auto &slot : slots_)
        if (slot.active)
            held += slot.remaining;
    return held;
}

std::string
BaselineRtUnit::debugStatus() const
{
    uint32_t active = 0;
    std::array<uint32_t, 5> stages{};
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        active++;
        for (const auto &e : slot.rays)
            if (e.valid)
                stages[size_t(e.stage)]++;
    }
    std::ostringstream os;
    os << "baseline slots=" << active << "/" << slots_.size()
       << " pendingWarps=" << pending_.size() << " rays{waitData="
       << stages[size_t(Stage::WaitData)]
       << " needIssue=" << stages[size_t(Stage::NeedIssue)]
       << " waitMem=" << stages[size_t(Stage::WaitMem)]
       << " waitIsect=" << stages[size_t(Stage::WaitIsect)] << "}";
    return os.str();
}

// ---- snapshot hooks ----------------------------------------------------

void
RtStats::saveState(Serializer &s) const
{
    s.beginChunk("RTST");
    s.u64(activeLaneCycles);
    s.u64(slotLaneCycles);
    for (uint64_t v : modeCycles)
        s.u64(v);
    for (uint64_t v : isectTests)
        s.u64(v);
    s.u64(nodeVisits);
    s.u64(leafVisits);
    s.u64(raysCompleted);
    s.u64(boundaryCrossings);
    s.u64(raysEnqueued);
    s.u64(treeletWarpsFormed);
    s.u64(groupedWarpsFormed);
    s.u64(repackEvents);
    s.u64(repackedRays);
    s.u32(countTableHighWater);
    s.u32(countTableOverThresholdHW);
    s.u32(queueTableEntriesHW);
    s.u64(maxConcurrentRays);
    s.u64(prefetchLines);
    s.u64(prefetchUsedLines);
    s.u64(prefetchIssues);
    s.endChunk();
}

void
RtStats::loadState(Deserializer &d)
{
    d.beginChunk("RTST");
    activeLaneCycles = d.u64();
    slotLaneCycles = d.u64();
    for (uint64_t &v : modeCycles)
        v = d.u64();
    for (uint64_t &v : isectTests)
        v = d.u64();
    nodeVisits = d.u64();
    leafVisits = d.u64();
    raysCompleted = d.u64();
    boundaryCrossings = d.u64();
    raysEnqueued = d.u64();
    treeletWarpsFormed = d.u64();
    groupedWarpsFormed = d.u64();
    repackEvents = d.u64();
    repackedRays = d.u64();
    countTableHighWater = d.u32();
    countTableOverThresholdHW = d.u32();
    queueTableEntriesHW = d.u32();
    maxConcurrentRays = d.u64();
    prefetchLines = d.u64();
    prefetchUsedLines = d.u64();
    prefetchIssues = d.u64();
    d.endChunk();
}

void
RtUnitBase::saveRayEntry(Serializer &s, const RayEntry &e) const
{
    if (e.valid && e.ready == kPendingReady)
        throw SnapshotError(
            "snapshot: ray entry with unresolved deferred ready "
            "(capture outside the serial commit boundary)");
    s.b(e.valid);
    s.u8(e.lane);
    s.u64(e.warpToken);
    s.u32(e.ctaToken);
    s.u32(e.rayId);
    e.trav.saveState(s);
    s.u8(uint8_t(e.stage));
    s.u64(e.ready);
    s.b(e.fetchIsLeaf);
}

void
RtUnitBase::loadRayEntry(Deserializer &d, RayEntry &e)
{
    e.valid = d.b();
    e.lane = d.u8();
    e.warpToken = d.u64();
    e.ctaToken = d.u32();
    e.rayId = d.u32();
    e.trav.loadState(d, &bvh_);
    uint8_t stage = d.u8();
    if (stage > uint8_t(Stage::Done))
        throw SnapshotError("snapshot: ray stage out of range");
    e.stage = Stage(stage);
    e.ready = d.u64();
    e.fetchIsLeaf = d.b();
}

void
RtUnitBase::saveState(Serializer &s) const
{
    s.beginChunk("RTUB");
    stats_.saveState(s);
    s.u64(lastAccounted_);
    memIssue_.saveState(s);
    isect_.saveState(s);
    // Fold any resolved deferred readies into the heap, then persist
    // it sorted — a sorted array is a valid min-heap and the pop order
    // of a heap of plain cycles depends only on the multiset anyway.
    (void)cachedNextEvent();
    std::vector<uint64_t> events = eventHeap_;
    std::sort(events.begin(), events.end());
    s.vecPod(events);
    s.endChunk();
}

void
RtUnitBase::loadState(Deserializer &d)
{
    d.beginChunk("RTUB");
    stats_.loadState(d);
    lastAccounted_ = d.u64();
    memIssue_.loadState(d);
    isect_.loadState(d);
    pendingEventReadies_.clear();
    eventHeap_ = d.vecPod<uint64_t>(); // sorted == valid min-heap
    d.endChunk();
}

namespace
{

void
saveTraceRequest(Serializer &s, const TraceRequest &req)
{
    s.u64(req.token);
    s.u32(req.ctaToken);
    s.u64(req.lanes.size());
    for (const LaneRay &lr : req.lanes) {
        s.u8(lr.lane);
        s.pod(lr.ray);
    }
}

TraceRequest
loadTraceRequest(Deserializer &d)
{
    TraceRequest req;
    req.token = d.u64();
    req.ctaToken = d.u32();
    uint64_t n = d.u64();
    req.lanes.reserve(size_t(n));
    for (uint64_t i = 0; i < n; i++) {
        LaneRay lr;
        lr.lane = d.u8();
        lr.ray = d.pod<Ray>();
        req.lanes.push_back(lr);
    }
    return req;
}

} // namespace

void
RtUnitBase::saveLaneHits(Serializer &s, const std::vector<LaneHit> &hits)
{
    s.u64(hits.size());
    for (const LaneHit &h : hits) {
        s.u8(h.lane);
        s.pod(h.hit);
    }
}

std::vector<LaneHit>
RtUnitBase::loadLaneHits(Deserializer &d)
{
    uint64_t n = d.u64();
    std::vector<LaneHit> hits;
    hits.reserve(size_t(n));
    for (uint64_t i = 0; i < n; i++) {
        LaneHit h;
        h.lane = d.u8();
        h.hit = d.pod<HitRecord>();
        hits.push_back(h);
    }
    return hits;
}

void
BaselineRtUnit::saveState(Serializer &s) const
{
    RtUnitBase::saveState(s);
    s.beginChunk("BASE");
    s.u64(slots_.size());
    for (const WarpSlot &slot : slots_) {
        s.b(slot.active);
        s.u64(slot.token);
        s.u64(slot.rays.size());
        for (const RayEntry &e : slot.rays)
            saveRayEntry(s, e);
        saveLaneHits(s, slot.hits);
        s.u32(slot.remaining);
    }
    s.u64(pending_.size());
    for (const TraceRequest &req : pending_)
        saveTraceRequest(s, req);
    s.endChunk();
}

void
BaselineRtUnit::loadState(Deserializer &d)
{
    RtUnitBase::loadState(d);
    d.beginChunk("BASE");
    if (d.u64() != slots_.size())
        throw SnapshotError("snapshot: warp slot count mismatch");
    for (WarpSlot &slot : slots_) {
        slot.active = d.b();
        slot.token = d.u64();
        uint64_t n = d.u64();
        slot.rays.assign(size_t(n), RayEntry{});
        for (RayEntry &e : slot.rays)
            loadRayEntry(d, e);
        slot.hits = loadLaneHits(d);
        slot.remaining = d.u32();
    }
    pending_.clear();
    uint64_t n = d.u64();
    for (uint64_t i = 0; i < n; i++)
        pending_.push_back(loadTraceRequest(d));
    d.endChunk();
}

} // namespace trt
