/**
 * @file
 * Dispatch policies (DESIGN.md §9): the strategy objects that decide
 * *which ray runs next, in which warp, starting at which node*, kept
 * separate from the RT units' pipeline/timing machinery.
 *
 * A policy owns the unit's pending-ray pool (enqueue / formWarp), gets
 * per-ray hooks (speculate / onRayComplete), and — for the treelet-
 * queue architecture — the warp-scheduling decisions extracted from
 * TreeletQueueRtUnit (endInitialPhase / chooseDispatch). All policy
 * state is per-RT-unit and mutated only inside that SM's tick or the
 * serial phases, so every policy is bit-identical across
 * TRT_SIM_THREADS and TRT_SIMD. Policies only move *when* rays run and
 * *where* traversal starts; the rendered frame is identical across all
 * of them (the Predict policy's speculative entry is frame-exact by
 * construction — see RayTraverser::primeSpeculation).
 *
 * Policies:
 *  - Fifo:    arrival order, warps kept intact. Reproduces the seed
 *             baseline cycle-for-cycle.
 *  - Vtq:     the paper's virtualized-treelet-queue heuristics
 *             (sections 4.3-4.4), used by the TreeletQueues arch.
 *  - Reorder: Morton/octant-binned ray reordering before warp
 *             formation (Meister et al.'s reordering line): pending
 *             rays are binned by a quantized origin Morton code plus
 *             the direction octant and drained in key order, so each
 *             formed warp is spatially coherent.
 *  - Predict: hash-based path prediction (Demoullin/Gubran/Aamodt):
 *             a per-unit direct-mapped table maps a quantized
 *             origin/direction hash to the leaf block that resolved
 *             the last such ray; predicted rays enter traversal at
 *             that block, with misprediction detection and root
 *             fallback built into the traverser.
 */

#ifndef TRT_GPU_DISPATCH_POLICY_HH
#define TRT_GPU_DISPATCH_POLICY_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "gpu/rt_unit.hh"

namespace trt
{

/**
 * Shared prediction table (TRT_PREDICT_SHARED, DESIGN.md §9): one
 * table serving every SM's PredictPolicy instead of one per RT unit
 * (one RT unit per SM in this model, so per-SM and global sharing
 * coincide). Determinism under the parallel tick fan-out: the table is
 * *frozen* during the tick phase — speculate() only reads it — while
 * training updates append to the calling SM's own pending queue
 * (race-free by construction). The Gpu applies the queues in SM order
 * at the serial cycle commit (flush()), the exact order a serial SM
 * loop would produce, so RunStats are bit-identical at any
 * TRT_SIM_THREADS. Updates therefore become visible to lookups at the
 * next cycle boundary.
 */
struct SharedPredict
{
    struct Entry
    {
        uint64_t tag = 0;
        uint32_t firstTri = 0;
        uint32_t count = 0; //!< 0 = empty.
    };

    /** One deferred training update. */
    struct Train
    {
        uint64_t hash = 0;
        uint32_t firstTri = 0;
        uint32_t count = 0;
    };

    explicit SharedPredict(const GpuConfig &cfg);

    std::vector<Entry> table;
    uint64_t mask = 0;
    /** Per-SM pending trainings; SM @p s appends only to pending[s]. */
    std::vector<std::vector<Train>> pending;

    /** Apply every pending training in SM order, then clear the
     *  queues. Serial phases only. */
    void flush();

    /** Snapshot hooks ("PSHR" chunk). Pending queues must be empty —
     *  the capture point is after the per-cycle flush. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);
};

/** Strategy interface; see the file comment. PendingRay (the pool
 *  element type) is declared next to its owner in rt_unit.hh. */
class DispatchPolicy
{
  public:
    /** A predicted leaf block to enter traversal at (Predict only). */
    struct Speculation
    {
        uint32_t firstTri = 0;
        uint32_t count = 0;
        bool valid = false;
    };

    /** One treelet queue as the scheduling decision sees it. */
    struct QueueView
    {
        uint32_t treelet;
        uint32_t size;
    };

    /** What chooseDispatch() wants a free warp slot to run. */
    enum class WarpKind : uint8_t
    {
        None,    //!< Leave the slot free this cycle.
        Treelet, //!< Treelet-stationary warp from the chosen queue.
        Grouped, //!< Ray-stationary warp of gathered queue strays.
    };

    struct DispatchChoice
    {
        WarpKind kind = WarpKind::None;
        uint32_t treelet = kInvalidTreelet;
    };

    DispatchPolicy(const GpuConfig &cfg, const Bvh &bvh, RtStats &stats)
        : cfg_(cfg), bvh_(bvh), stats_(stats)
    {
    }
    virtual ~DispatchPolicy() = default;

    virtual DispatchPolicyKind kind() const = 0;

    // ---- pending-ray pool (baseline-arch warp formation) -------------
    /** Hand over one warp's rays (a group; policies may keep or break
     *  the grouping). */
    virtual void enqueue(std::vector<PendingRay> &&group) = 0;
    /** Fill @p out (cleared first) with up to @p warp_size rays forming
     *  the next warp; empty = nothing to dispatch. */
    virtual void formWarp(uint32_t warp_size,
                          std::vector<PendingRay> &out) = 0;
    virtual bool hasPending() const = 0;
    virtual uint64_t pendingRays() const = 0;
    /** Move out *every* pending ray in deterministic order
     *  (drainFunctional). */
    virtual void takePending(std::vector<PendingRay> &out) = 0;

    // ---- per-ray traversal hooks -------------------------------------
    /** Consulted once per ray at slot install; a valid result primes
     *  the traverser (RayTraverser::primeSpeculation). */
    virtual Speculation
    speculate(const Ray &ray)
    {
        (void)ray;
        return {};
    }
    /** Called when a ray's traversal completes (timing or functional
     *  drain); Predict trains its table and scores the outcome here. */
    virtual void
    onRayComplete(const RayTraverser &trav)
    {
        (void)trav;
    }
    /** Attach the GPU-owned shared prediction table; @p sm_id selects
     *  this unit's pending-train queue. No-op for every policy except
     *  Predict (TRT_PREDICT_SHARED). */
    virtual void
    setShared(SharedPredict *sp, uint32_t sm_id)
    {
        (void)sp;
        (void)sm_id;
    }

    // ---- treelet-queue scheduling decisions (TreeletQueues arch) -----
    // One canonical implementation — the paper's heuristics, extracted
    // verbatim from TreeletQueueRtUnit — lives in the base class and is
    // tagged by VtqPolicy; alternative treelet schedulers override.

    /** Should a fresh warp's initial ray-stationary phase end, given
     *  the warp's current treelet divergence? (Section 3.2 step 1.) */
    virtual bool endInitialPhase(uint32_t divergence) const;

    /**
     * Pick what a free warp slot should run next. @p queues lists the
     * non-empty treelet queues in table order (ascending treelet id,
     * the order the hardware table is scanned in); @p loaded_treelet is
     * the treelet currently resident in the L1 (kInvalidTreelet if
     * none). Sections 4.3-4.4: drain the loaded treelet first, then the
     * largest queue if it meets the threshold, else group strays.
     */
    virtual DispatchChoice
    chooseDispatch(const std::vector<QueueView> &queues,
                   uint32_t loaded_treelet) const;

    // ---- snapshot ----------------------------------------------------
    /** Persist pool + table state ("DPOL"/"PRED" chunks). */
    virtual void saveState(Serializer &s) const = 0;
    virtual void loadState(Deserializer &d) = 0;

  protected:
    const GpuConfig &cfg_;
    const Bvh &bvh_;
    RtStats &stats_;
};

/** Arrival-order pool; warps stay intact. Timing-identical to the
 *  pre-policy baseline unit. */
class FifoPolicy : public DispatchPolicy
{
  public:
    using DispatchPolicy::DispatchPolicy;

    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::Fifo;
    }

    void enqueue(std::vector<PendingRay> &&group) override;
    void formWarp(uint32_t warp_size,
                  std::vector<PendingRay> &out) override;
    bool hasPending() const override { return !groups_.empty(); }
    uint64_t pendingRays() const override { return count_; }
    void takePending(std::vector<PendingRay> &out) override;

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  protected:
    std::deque<std::vector<PendingRay>> groups_;
    uint64_t count_ = 0;
};

/** The paper's treelet-queue heuristics (the base-class decision
 *  defaults); the pool behaves FIFO for the fresh-warp queue. */
class VtqPolicy : public FifoPolicy
{
  public:
    using FifoPolicy::FifoPolicy;

    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::Vtq;
    }
};

/** Morton/octant-binned ray reordering (DESIGN.md §9). */
class ReorderPolicy : public DispatchPolicy
{
  public:
    ReorderPolicy(const GpuConfig &cfg, const Bvh &bvh, RtStats &stats);

    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::Reorder;
    }

    void enqueue(std::vector<PendingRay> &&group) override;
    void formWarp(uint32_t warp_size,
                  std::vector<PendingRay> &out) override;
    bool hasPending() const override { return count_ > 0; }
    uint64_t pendingRays() const override { return count_; }
    void takePending(std::vector<PendingRay> &out) override;

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

    /** Bin key: 3*reorderBinBits Morton bits of the quantized origin,
     *  then the 3 direction-sign octant bits (exposed for tests). */
    uint64_t binKey(const Ray &ray) const;

  private:
    /** std::map: deterministic ascending-key drain order. */
    std::map<uint64_t, std::deque<PendingRay>> bins_;
    uint64_t count_ = 0;
};

/** Hash-based path prediction (DESIGN.md §9). FIFO warp formation;
 *  the table only changes where each ray *starts* traversing. */
class PredictPolicy : public FifoPolicy
{
  public:
    PredictPolicy(const GpuConfig &cfg, const Bvh &bvh, RtStats &stats);

    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::Predict;
    }

    Speculation speculate(const Ray &ray) override;
    void onRayComplete(const RayTraverser &trav) override;
    void setShared(SharedPredict *sp, uint32_t sm_id) override;

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

    /** Quantized origin/direction hash (exposed for tests). */
    uint64_t rayHash(const Ray &ray) const;

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint32_t firstTri = 0;
        uint32_t count = 0; //!< 0 = empty.
    };

    /** Private table; unused (and kept empty in snapshots) when the
     *  shared table is attached. */
    std::vector<Entry> table_;
    uint64_t mask_ = 0;
    SharedPredict *shared_ = nullptr; //!< Non-owning; Gpu-owned.
    uint32_t smId_ = 0;               //!< Pending-queue index when shared.
};

/** Construct the policy @p cfg.policy names, bound to @p stats (the
 *  owning unit's counters). */
std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(const GpuConfig &cfg, const Bvh &bvh, RtStats &stats);

} // namespace trt

#endif // TRT_GPU_DISPATCH_POLICY_HH
