/**
 * @file
 * Per-cycle issue-width limiter shared by the RT unit's memory scheduler
 * and intersection pipeline front end.
 */

#ifndef TRT_GPU_RATE_LIMITER_HH
#define TRT_GPU_RATE_LIMITER_HH

#include <cstdint>

#include "snapshot/serializer.hh"

namespace trt
{

/** Books at most @c width slots per cycle, spilling into later cycles. */
class RateLimiter
{
  public:
    explicit RateLimiter(uint32_t width = 1) : width_(width ? width : 1) {}

    /** Reserve a slot at or after @p now; returns the booked cycle. */
    uint64_t
    book(uint64_t now)
    {
        if (cycle_ < now) {
            cycle_ = now;
            used_ = 0;
        }
        if (used_ >= width_) {
            cycle_ += 1;
            used_ = 0;
        }
        used_++;
        return cycle_;
    }

    /** Earliest cycle >= @p now a slot could be booked (no booking). */
    uint64_t
    nextFree(uint64_t now) const
    {
        if (cycle_ < now)
            return now;
        return used_ < width_ ? cycle_ : cycle_ + 1;
    }

    /** Snapshot hooks; width_ is ctor configuration, not state. */
    void
    saveState(Serializer &s) const
    {
        s.u64(cycle_);
        s.u32(used_);
    }

    void
    loadState(Deserializer &d)
    {
        cycle_ = d.u64();
        used_ = d.u32();
    }

  private:
    uint32_t width_;
    uint64_t cycle_ = 0;
    uint32_t used_ = 0;
};

} // namespace trt

#endif // TRT_GPU_RATE_LIMITER_HH
