/**
 * @file
 * Sampled-simulation configuration and summary (DESIGN.md §8).
 *
 * A sampled run alternates detailed measured intervals with functional
 * fast-forward legs: measure M detailed cycles, functionally complete a
 * quantum of rays with timing models off, run K detailed warm-up cycles
 * (discarded — they refill caches, treelet queues and prefetch state
 * disturbed by the fast-forward), measure again, and so on. Whole-run
 * RunStats are extrapolated from the measured intervals with per-counter
 * 95% confidence intervals (stats/sampling.hh).
 */

#ifndef TRT_GPU_SAMPLED_HH
#define TRT_GPU_SAMPLED_HH

#include <cstdint>
#include <string>
#include <vector>

namespace trt
{

/**
 * Knobs of a sampled run (TRT_SAMPLE_* environment variables; see
 * harness/harness.hh for the full knob table).
 */
struct SampleConfig
{
    /** Master switch (TRT_SAMPLE). runSampled() requires it set. */
    bool enabled = false;

    /** CTAs retired per measured interval (TRT_SAMPLE_MEASURE).
     *  Intervals *close* on retired CTAs — fixed work, not fixed
     *  cycles, so with a constant fast-forward stride the sampling
     *  fraction stays uniform across the whole frame. Fixed-cycle
     *  intervals would cover ~50x more CTAs in the cheap coherent head
     *  than in the divergent tail. Intervals must be long enough to
     *  straddle the post-warm-up transient; 32 CTAs (~2 CTAs/SM) is
     *  the tuned default. */
    uint32_t measureCtas = 32;

    /** Hard cap on the detailed warm-up after each fast-forward leg
     *  (TRT_SAMPLE_WARMUP). The warm-up normally ends on a condition —
     *  the RT-unit ray population rebuilding to its pre-drain level —
     *  and this cap only binds when the backlog cannot rebuild (e.g.
     *  during the occupancy-decay phase). 0 skips warm-up entirely and
     *  measures straight through (small scenes are exact that way). */
    uint64_t warmupCycles = 100000;

    /** Target number of measured intervals (TRT_SAMPLE_INTERVALS).
     *  Each fast-forward leg advances the frame by ~totalCtas/target
     *  finished CTAs. CTAs are fixed-size pixel blocks, so strata are
     *  uniform in work regardless of how the completion *rate* drifts
     *  between the coherent primary burst and the divergent tail —
     *  sizing legs from an observed ray rate instead systematically
     *  overshoots when the rate collapses mid-run. Fewer, longer
     *  intervals beat many short ones here: each leg disturbs the
     *  machine, and the error is dominated by that disturbance, not by
     *  sampling variance. */
    uint32_t targetIntervals = 8;

    /** Fixed fast-forward quantum in rays; overrides the CTA-stratum
     *  sizing when nonzero (TRT_SAMPLE_FF_RAYS). */
    uint64_t ffRays = 0;

    /** Read TRT_SAMPLE_* from the environment (strict parsing via
     *  util/env.hh). */
    static SampleConfig fromEnv();

    /** Hash of every sampling parameter. Folded into the run-cache
     *  fingerprint (and echoed into snapshots) so sampled and full
     *  runs — or two sampled runs with different parameters — never
     *  collide. */
    uint64_t fingerprint() const;
};

/** What the sampler did, attached to RunStats of a sampled run. */
struct SampleSummary
{
    bool enabled = false;       //!< False for full detailed runs.
    uint32_t intervals = 0;     //!< Measured intervals (incl. partial tail).
    uint64_t measuredCycles = 0; //!< Detailed cycles inside intervals.
    uint64_t measuredRounds = 0; //!< Warp rounds executed inside intervals.
    uint64_t totalRays = 0;     //!< Whole-run rays (architecturally exact).
    uint64_t ffRays = 0;        //!< Rays completed by fast-forward legs.
    double cyclesCi95 = 0.0;    //!< 95% CI half-width of run_.cycles.
    /** 95% CI half-width per extrapolated counter, in
     *  sampleCounterNames() order. */
    std::vector<double> counterCi95;
};

/** Names of the extrapolated counters, in the fixed order the sampler
 *  records deltas (for reports and CI artifacts). */
const std::vector<std::string> &sampleCounterNames();

} // namespace trt

#endif // TRT_GPU_SAMPLED_HH
