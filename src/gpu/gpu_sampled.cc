/**
 * @file
 * Sampled-simulation driver (DESIGN.md §8): Gpu::runSampled and the
 * functional fast-forward executor, plus the SampleConfig environment
 * plumbing and the fixed extrapolated-counter enumeration.
 */

#include "gpu/gpu.hh"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "geom/hash.hh"
#include "gpu/dispatch_policy.hh"
#include "telemetry/counter_registry.hh"
#include "telemetry/telemetry.hh"
#include "util/env.hh"

namespace trt
{

// ---- SampleConfig ----------------------------------------------------

SampleConfig
SampleConfig::fromEnv()
{
    SampleConfig sc;
    sc.enabled = envFlag("TRT_SAMPLE", false);
    sc.measureCtas = uint32_t(
        envUInt("TRT_SAMPLE_MEASURE", sc.measureCtas, 1u << 20));
    sc.warmupCycles =
        envUInt("TRT_SAMPLE_WARMUP", sc.warmupCycles, 1ull << 40);
    sc.targetIntervals = uint32_t(
        envUInt("TRT_SAMPLE_INTERVALS", sc.targetIntervals, 1u << 20));
    if (sc.targetIntervals == 0)
        throw EnvError("TRT_SAMPLE_INTERVALS must be > 0");
    sc.ffRays = envUInt("TRT_SAMPLE_FF_RAYS", sc.ffRays, 1ull << 40);
    if (sc.measureCtas == 0)
        throw EnvError("TRT_SAMPLE_MEASURE must be > 0");
    return sc;
}

uint64_t
SampleConfig::fingerprint() const
{
    Fnv1a h;
    h.pod(uint32_t(0x534d504c)); // "SMPL" schema tag
    h.pod(enabled);
    h.pod(measureCtas);
    h.pod(warmupCycles);
    h.pod(targetIntervals);
    h.pod(ffRays);
    return h.value();
}

// ---- extrapolated-counter enumeration --------------------------------

namespace
{

/**
 * The sampler extrapolates exactly the counter registry's Work-kind
 * counters, in registry order (telemetry/counter_registry.hh): those
 * are (a) monotonic during a run and (b) proportional to work, so the
 * ratio estimator applies. Exact quantities (framebuffer, raysTraced,
 * aluLaneInstrs, ctasLaunched) and high-water marks carry their own
 * registry kinds and are filtered out here: the former need no
 * estimation, the latter do not scale linearly with work.
 */
template <typename RS, typename Fn>
void
forEachSampleCounter(RS &r, Fn &&fn)
{
    forEachRunCounter(r, [&](const CounterInfo &ci, auto &v) {
        if (ci.kind != CounterKind::Work)
            return;
        // Work counters are uint64 by registry convention; the
        // constexpr guard keeps the uint32 high-water references (never
        // reached at runtime) out of this instantiation.
        if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                     uint64_t>)
            fn(ci.name, v);
    });
}

} // anonymous namespace

const std::vector<std::string> &
sampleCounterNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        RunStats dummy;
        forEachSampleCounter(dummy,
                             [&](const std::string &name, uint64_t &) {
                                 v.push_back(name);
                             });
        return v;
    }();
    return names;
}

// ---- live counter snapshots ------------------------------------------

uint64_t
Gpu::rtBacklog() const
{
    uint64_t held = 0;
    for (const auto &u : rtUnits_)
        held += u->raysHeld();
    return held;
}

uint64_t
Gpu::totalRaysCompleted() const
{
    uint64_t total = 0;
    for (const auto &u : rtUnits_)
        total += u->stats().raysCompleted;
    return total;
}

std::vector<uint64_t>
Gpu::sampleCounters() const
{
    // Mirror finalizeStats' aggregation into a scratch RunStats so the
    // enumeration sees the same values a finished run would.
    RunStats tmp;
    for (const auto &u : rtUnits_)
        tmp.rt.accumulate(u->stats());
    for (size_t c = 0; c < tmp.mem.size(); c++)
        tmp.mem[c] = mem_.classStats(MemClass(c));
    tmp.ctaSaves = run_.ctaSaves;
    tmp.ctaRestores = run_.ctaRestores;
    tmp.ctaStateBytes = run_.ctaStateBytes;

    std::vector<uint64_t> v;
    v.reserve(sampleCounterNames().size());
    forEachSampleCounter(tmp, [&](const std::string &, uint64_t &x) {
        v.push_back(x);
    });
    return v;
}

// ---- functional fast-forward executor --------------------------------

void
Gpu::traceWarpFunctional(uint64_t now, uint32_t cta, uint32_t warp)
{
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];
    w.pendingHits.clear();
    for (uint32_t l = 0; l < w.lanes.size(); l++) {
        LaneCtx &lane = w.lanes[l];
        lane.traced = lane.path.alive;
        if (!lane.traced)
            continue;
        run_.raysTraced++;
        // The pooled traverser produces hits bit-identical to every
        // RT-unit timing model (they all drive the same RayTraverser).
        ffTrav_.reset(&bvh_, lane.path.ray);
        finishTraversal(ffTrav_);
        w.pendingHits.push_back({uint8_t(l), ffTrav_.hit()});
        ffLegTraced_++;
        samp_.ffRaysTotal++;
    }
    shadeWarp(now, cta, warp);
}

void
Gpu::completeWarpFunctional(uint64_t now, uint32_t cta, uint32_t warp)
{
    // Accept-queue backlog absorbed at fast-forward entry: the warp
    // already counted its rays in issueTrace(), so only compute the
    // hits and deliver them through the normal completion protocol.
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];
    w.pendingHits.clear();
    for (uint32_t l = 0; l < w.lanes.size(); l++) {
        LaneCtx &lane = w.lanes[l];
        if (!lane.traced)
            continue;
        ffTrav_.reset(&bvh_, lane.path.ray);
        finishTraversal(ffTrav_);
        w.pendingHits.push_back({uint8_t(l), ffTrav_.hit()});
    }
    if (c.state == CtaState::Resident) {
        shadeWarp(now, cta, warp);
    } else {
        w.phase = WarpPhase::TraceDone;
        maybeResumeReady(now, cta);
    }
}

void
Gpu::enterFunctional()
{
    functionalMode_ = true;
    ffLegTraced_ = 0;
    if (telem_)
        telem_->gpuChannel().event(lastNow_, TelemEventKind::PhaseBegin,
                                   uint64_t(TelemPhase::FastForward));
    // Queue depth is the machine state the drain is about to destroy;
    // record it so the post-leg warm-up knows when the units have
    // recovered (see beginWarmup).
    ffPreDrainBacklog_ = rtBacklog();
    // Drain every RT unit: in-flight rays complete exactly (the drain
    // runs outside the tick phase, so completions apply inline through
    // the normal callback) and the units end up idle.
    for (uint32_t s = 0; s < cfg_.numSms; s++) {
        rtUnits_[s]->drainFunctional(lastNow_);
        rtNextEvent_[s] = kNoEvent;
    }
    // The drain completed rays serially; commit any shared-predictor
    // trainings it queued before the leg (and any snapshot) proceeds.
    if (sharedPredict_)
        sharedPredict_->flush();
    // Absorb the accept backlog: warps the units refused (VTQ ray
    // cap). Their tokens never reached a unit, so unroute them here.
    for (uint32_t s = 0; s < cfg_.numSms; s++) {
        SmState &sm = sms_[s];
        while (!sm.acceptQueue.empty()) {
            auto [cta, warp] = sm.acceptQueue.front();
            sm.acceptQueue.pop_front();
            tokenMap_.erase(ctas_[cta].warps[warp].token);
            completeWarpFunctional(lastNow_, cta, warp);
        }
    }
    if (!tokenMap_.empty())
        throw std::logic_error(
            "enterFunctional: unrouted warp tokens after drain");
}

bool
Gpu::ffReachedTarget(uint32_t cta, uint32_t newFinished,
                     uint32_t capacity) const
{
    // Target progress profile of a fast-forward leg: after the leg,
    // ctasFinished_ should be newFinished and the resident window
    // [newFinished, newFinished + capacity) should hold CTAs whose
    // completed-path fraction falls off linearly with launch index —
    // the staggered age mix a long detailed run sustains. Advancing
    // every CTA to completion instead leaves the whole machine one
    // shade from retirement and the next interval measures nearly-free
    // retirements; advancing none makes the stratum unreachable. The
    // profile is the fidelity contract of the leg.
    if (cta < newFinished)
        return false; // must retire fully
    const CtaExec &c = ctas_[cta];
    uint32_t alive = 0;
    for (const auto &w : c.warps)
        alive += w.aliveLanes;
    // Every lane already terminated (paths die during the functional
    // shade): only retirement bookkeeping is left. Finish it inside
    // the leg — deferring would hand the next measured interval a
    // zero-cost retirement and bias the rate up.
    if (alive == 0)
        return false;
    if (cta >= newFinished + capacity)
        return true; // beyond the resident window: do not advance
    uint32_t dead = c.threadCount - alive;
    // progress >= targetFraction, with
    // targetFraction = (newFinished + capacity - cta) / capacity.
    return uint64_t(dead) * capacity >=
           uint64_t(newFinished + capacity - cta) * c.threadCount;
}

bool
Gpu::functionalAdvance(uint64_t rayQuantum, uint32_t ctaTarget)
{
    // The clock is frozen at lastNow_: every event is handled "now"
    // regardless of its booked cycle, so pending ALU segments, CTA
    // restores, launches and traces all complete with zero latency.
    uint64_t now = lastNow_;
    uint32_t capacity = cfg_.numSms * cfg_.maxCtasPerSm;
    // Events of CTAs that already reached their target progress (see
    // ffReachedTarget) are deferred untouched and handed back at leg
    // exit; respreadEvents() then re-staggers them in time.
    std::vector<Event> deferred;
    size_t forcedNext = 0;
    servicePass(now);
    // Four exits: frame finished, ray quantum exhausted (when one is
    // set), CTA stratum reached (when one is set), or the frame
    // entered its final wave (the drain must be simulated in detail —
    // see inFinalWave()).
    while (ctasFinished_ < ctas_.size() &&
           (rayQuantum == 0 || ffLegTraced_ < rayQuantum) &&
           (ctaTarget == 0 || ctasFinished_ < ctaTarget) &&
           !inFinalWave()) {
        bool forced = false;
        Event ev;
        if (!events_.empty()) {
            ev = events_.top();
            events_.pop();
        } else {
            servicePass(now);
            if (!events_.empty())
                continue;
            // Stall escape (ray virtualization): a below-target CTA
            // can sit suspended waiting for a slot held by an
            // at-target resident. Force the oldest deferred event
            // through so the machine keeps draining toward the
            // stratum.
            if (forcedNext < deferred.size()) {
                ev = deferred[forcedNext++];
                forced = true;
            } else {
                throw std::logic_error(
                    "functional fast-forward stalled with " +
                    std::to_string(ctas_.size() - ctasFinished_) +
                    " CTAs unfinished\n" + simStateDump(now));
            }
        }
        if (!forced && ctaTarget != 0 &&
            ffReachedTarget(ev.cta, ctaTarget, capacity)) {
            deferred.push_back(ev);
            continue;
        }
        switch (ev.type) {
          case Event::AluDone:
            onAluDone(now, ev.cta, ev.warp);
            break;
          case Event::CtaRestored: {
            CtaExec &c = ctas_[ev.cta];
            for (auto &w : c.warps)
                if (w.phase == WarpPhase::TraceDone)
                    shadeWarp(now, ev.cta, w.index);
            break;
          }
        }
        servicePass(now);
    }
    for (size_t i = forcedNext; i < deferred.size(); i++)
        pushEvent(deferred[i].cycle, deferred[i].type, deferred[i].cta,
                  deferred[i].warp);
    return ctasFinished_ == ctas_.size();
}

// ---- interval bookkeeping --------------------------------------------

void
Gpu::beginMeasure()
{
    // Close the previous interval's stratum at the midpoint (in
    // rounds) of the gap since it ended: the leg + warm-up rounds
    // between two intervals span drifting regimes, so half belong to
    // each neighbor (see SamplerState::stratumStartRounds).
    if (samp_.acc.intervals() > 0) {
        uint64_t gap = aluRounds_ - samp_.gapStartRounds;
        // Entering the drain: a tail interval's serialized straggler
        // regime (huge cycles-per-round, occurs once) must represent
        // only itself — the gap ran under mid-frame conditions and
        // belongs wholly to the previous interval. That covers both
        // the final wave proper and any interval that cannot retire
        // its CTA quota before the frame ends (it will measure
        // through the drain however it starts).
        bool tail = inFinalWave() ||
                    ctasFinished_ + sampleCfg_.measureCtas >=
                        ctas_.size();
        uint64_t boundary = tail ? aluRounds_
                                 : samp_.gapStartRounds + gap / 2;
        samp_.acc.closeStratum(boundary - samp_.stratumStartRounds);
        samp_.stratumStartRounds = boundary;
    } else {
        samp_.stratumStartRounds = aluRounds_;
    }
    samp_.phase = SamplePhase::Measure;
    samp_.inInterval = true;
    samp_.intervalStartCycle = lastNow_;
    if (telem_)
        telem_->gpuChannel().event(lastNow_, TelemEventKind::PhaseBegin,
                                   uint64_t(TelemPhase::Measure));
    // Fixed-work interval: measure until measureCtas more CTAs retire
    // (see SampleConfig::measureCtas); no cycle bound.
    samp_.phaseEndCycle = ~0ull;
    samp_.backlogTarget = 0; // warm-up condition off while measuring
    samp_.workEndTarget = sampleAllDetailed_
                              ? 0
                              : ctasFinished_ + sampleCfg_.measureCtas;
    // Work metric: warp rounds executed (aluRounds_), not CTAs retired.
    // A fast-forward leg leaves the resident cohort near retirement, so
    // the first CTAs retiring in a measured interval are subsidized by
    // work the leg already did functionally — charging cycles per
    // *retirement* would count those as nearly free and underestimate
    // wildly (scene-dependent, up to ~10x). Rounds accrue only when the
    // detailed model actually executes them, so a cheap post-leg
    // interval also books few rounds and the cycles-per-round ratio
    // stays representative. The whole-run round total is architectural
    // (same traversal work whichever executor runs it), so W is known
    // exactly at end of run: aluRounds_ accrues in both the detailed
    // path and functionalAdvance via the shared onAluDone handler.
    samp_.startWork = ctasFinished_;
    samp_.startRounds = aluRounds_;
    samp_.startCounters = sampleCounters();
    mem_.setBvhSeriesRecording(true);
}

void
Gpu::endMeasure()
{
    std::vector<uint64_t> cur = sampleCounters();
    SampleInterval iv;
    iv.cycles = lastNow_ - samp_.intervalStartCycle;
    iv.work = aluRounds_ - samp_.startRounds;
    iv.deltas.resize(cur.size());
    for (size_t i = 0; i < cur.size(); i++)
        iv.deltas[i] = cur[i] - samp_.startCounters[i];
    samp_.lastIvRounds = aluRounds_ - samp_.startRounds;
    samp_.lastIvCycles = iv.cycles;
    samp_.gapStartRounds = aluRounds_;
    samp_.acc.add(std::move(iv));
    samp_.inInterval = false;
    samp_.workEndTarget = 0;
    mem_.setBvhSeriesRecording(false);
    if (telem_)
        telem_->gpuChannel().event(lastNow_, TelemEventKind::PhaseBegin,
                                   uint64_t(TelemPhase::Detailed));
}

uint64_t
Gpu::respreadEvents()
{
    // A fast-forward leg leaves every resident warp's next event booked
    // at the frozen clock: resuming detail would retire them as one
    // synchronized convoy, and the next interval would measure the
    // coherent refill burst instead of steady-state throughput (a ~6x
    // rate overestimate on full-scale scenes). Spread the events so
    // work re-arrives at the warp-round rate the previous interval
    // measured, overdriven 2x: in steady state the RT units are the
    // bottleneck (deep warp backlog), so a saturating arrival stream
    // reproduces that regime and the interval measures true service
    // rate; an undersaturated stream would merely echo the respread
    // rate back. Pure integer arithmetic keeps runs bit-identical.
    std::vector<Event> evs;
    evs.reserve(events_.size());
    while (!events_.empty()) {
        evs.push_back(events_.top());
        events_.pop();
    }
    uint64_t num = samp_.lastIvCycles;
    uint64_t den = 2 * std::max<uint64_t>(1, samp_.lastIvRounds);
    uint64_t end = lastNow_ + 1;
    size_t i = 0;
    for (const Event &ev : evs) {
        uint64_t at = ev.cycle > lastNow_
                          // Booked before the leg froze the clock:
                          // genuinely future, still correctly
                          // staggered — keep as is.
                          ? ev.cycle
                          : lastNow_ + 1 + uint64_t(i++) * num / den;
        pushEvent(at, ev.type, ev.cta, ev.warp);
        end = std::max(end, at);
    }
    return end;
}

void
Gpu::beginWarmup(uint64_t respreadEnd)
{
    samp_.phase = SamplePhase::Warmup;
    samp_.inInterval = false;
    if (telem_)
        telem_->gpuChannel().event(lastNow_, TelemEventKind::PhaseBegin,
                                   uint64_t(TelemPhase::Warmup));
    // The warm-up ends on a *condition*, not a fixed length: the drain
    // left the RT units empty, and a warp round completes against an
    // empty queue far faster than against the steady-state backlog —
    // measuring before the queues refill reads a cycles-per-round
    // ratio biased low (VTQ, whose queues are deepest, by 2x+). Wait
    // until the held-ray population is back to 7/8 of the pre-drain
    // level. The respread window is a second floor (events re-arrive
    // on an artificial 2x schedule there), and warmupCycles is a hard
    // cap so a leg in the occupancy-decay phase — where the backlog
    // may never fully rebuild — cannot stall the run.
    samp_.backlogTarget = ffPreDrainBacklog_;
    samp_.warmupMinCycle = std::max(respreadEnd, lastNow_ + 10000);
    // Units were empty before the leg (nothing to rebuild): the
    // respread window alone bounds the warm-up.
    samp_.phaseEndCycle = samp_.backlogTarget == 0
                              ? respreadEnd
                              : lastNow_ + sampleCfg_.warmupCycles;
    mem_.setBvhSeriesRecording(false);
}

bool
Gpu::inFinalWave() const
{
    // The very end of the frame — at most one CTA per SM left — is
    // serialized straggler drain whose cost depends on exactly which
    // CTAs remain; it is always simulated (and measured) in detail.
    // The earlier, gradual occupancy decay is left to the sampler:
    // CTA retirement (the work metric) keeps accruing there, so the
    // fixed CTA strata keep landing intervals across the decay.
    uint64_t remaining = ctas_.size() - ctasFinished_;
    return remaining <= uint64_t(cfg_.numSms);
}

uint32_t
Gpu::ffCtaTarget() const
{
    // Advance one CTA stratum per leg: uniform strata in work space
    // (every CTA is a fixed-size pixel block), so measured intervals
    // land evenly across the frame however the completion rate drifts.
    if (sampleCfg_.ffRays > 0)
        return 0; // fixed ray quantum override: no CTA bound
    uint64_t stride =
        std::max<uint64_t>(1, ctas_.size() / sampleCfg_.targetIntervals);
    return uint32_t(std::min<uint64_t>(ctas_.size(),
                                       uint64_t(ctasFinished_) + stride));
}

// ---- extrapolation ---------------------------------------------------

void
Gpu::applySampleEstimates()
{
    SampleSummary &ss = run_.sampled;
    ss.enabled = true;
    ss.intervals = uint32_t(samp_.acc.intervals());
    ss.measuredCycles = samp_.acc.measuredCycles();
    ss.measuredRounds = samp_.acc.measuredWork();
    ss.totalRays = run_.raysTraced;
    ss.ffRays = samp_.ffRaysTotal;

    // Close the last interval's stratum at its own end. Rounds that ran
    // after it (a frame-ending leg or warm-up no interval followed) are
    // residual work: no interval observed that regime, so it is charged
    // at the pooled rate rather than the last interval's — the closing
    // interval often runs on a sparse machine whose cycles-per-round is
    // wildly unrepresentative. Every warp round runs exactly once, in
    // detail or fast-forward (both paths go through onAluDone), so
    // strata + residual partition the exact whole-run work.
    samp_.acc.closeStratum(samp_.gapStartRounds - samp_.stratumStartRounds);
    samp_.acc.setResidualWork(aluRounds_ - samp_.gapStartRounds);
    samp_.stratumStartRounds = samp_.gapStartRounds;

    Estimate cycles = samp_.acc.extrapolateCycles();
    run_.cycles = uint64_t(std::llround(cycles.value));
    ss.cyclesCi95 = cycles.ci95;

    std::vector<Estimate> est = samp_.acc.extrapolateCounters();
    ss.counterCi95.clear();
    ss.counterCi95.reserve(est.size());
    size_t idx = 0;
    forEachSampleCounter(run_, [&](const std::string &, uint64_t &x) {
        x = uint64_t(std::llround(est[idx].value));
        ss.counterCi95.push_back(est[idx].ci95);
        idx++;
    });

    // Derived quantities recompute from the extrapolated counters.
    const MemClassStats &bn = run_.memClass(MemClass::BvhNode);
    const MemClassStats &tr = run_.memClass(MemClass::Triangle);
    uint64_t acc = bn.l1Accesses + tr.l1Accesses;
    uint64_t miss = bn.l1Misses + tr.l1Misses;
    run_.bvhL1MissRate = acc ? double(miss) / double(acc) : 0.0;
}

// ---- driver ----------------------------------------------------------

RunStats
Gpu::runSampled(const SampleConfig &sc)
{
    if (ran_)
        throw std::logic_error(
            "Gpu::runSampled() may only be called once");
    if (!sc.enabled)
        throw std::invalid_argument(
            "runSampled: SampleConfig.enabled must be set");
    ran_ = true;
    // Scenes smaller than one full sampling schedule gain nothing from
    // fast-forward; keep them entirely detailed (exact, zero CI).
    sampleAllDetailed_ = ctas_.size() <=
                         uint64_t(sc.measureCtas) * sc.targetIntervals;

    if (restored_ && samp_.active) {
        // Resuming a sampled run mid-flight: the sampler state in the
        // snapshot is only meaningful under identical parameters.
        if (samp_.cfgFp != sc.fingerprint())
            throw SnapshotError(
                "snapshot: TRT_SAMPLE_* parameters differ from the "
                "sampled run that captured this snapshot");
        sampleCfg_ = sc;
        mem_.setBvhSeriesRecording(samp_.phase == SamplePhase::Measure &&
                                   samp_.inInterval);
    } else {
        if (restored_)
            throw SnapshotError(
                "snapshot: full-run snapshot cannot resume under "
                "TRT_SAMPLE (fingerprints should prevent this)");
        sampleCfg_ = sc;
        samp_.active = true;
        samp_.cfgFp = sc.fingerprint();
        servicePass(lastNow_);
        beginMeasure();
    }
    if (snapPolicy_.everyCycles != 0)
        nextSnapshotAt_ = (lastNow_ / snapPolicy_.everyCycles + 1) *
                          snapPolicy_.everyCycles;

    bool finished = false;
    while (!finished) {
        finished = detailedLoop(samp_.phaseEndCycle);
        if (finished)
            break;
        if (samp_.phase == SamplePhase::Measure) {
            endMeasure();
            if (inFinalWave()) {
                // Drain tail: keep measuring back-to-back intervals
                // until the frame finishes (no more fast-forward).
                beginMeasure();
                continue;
            }
            enterFunctional();
            finished = functionalAdvance(sampleCfg_.ffRays, ffCtaTarget());
            functionalMode_ = false;
            if (finished)
                break;
            {
                uint64_t respreadEnd = respreadEvents();
                // warmupCycles == 0: no discard — measure straight
                // through the post-leg window. The nearly-free
                // retirements of the fast-forwarded cohort and the
                // catch-up ramp of its replacements then fall in the
                // same interval and offset each other.
                if (sampleCfg_.warmupCycles == 0)
                    beginMeasure();
                else
                    beginWarmup(respreadEnd);
            }
        } else {
            beginMeasure();
        }
    }
    // Close a partial tail interval (frame finished mid-measurement);
    // it carries the drain phase the schedule would otherwise miss.
    if (samp_.inInterval && lastNow_ > samp_.intervalStartCycle)
        endMeasure();
    mem_.setBvhSeriesRecording(true);

    finalizeStats();
    applySampleEstimates();

    if (envFlag("TRT_SAMPLE_DEBUG", false)) {
        for (const SampleInterval &iv : samp_.acc.samples())
            fprintf(stderr,
                    "[sample] interval cycles=%llu work=%llu stratum=%llu\n",
                    (unsigned long long)iv.cycles,
                    (unsigned long long)iv.work,
                    (unsigned long long)iv.stratumWork);
        fprintf(stderr,
                "[sample] n=%zu measured=%llu cyc / %llu rounds of %llu, "
                "ff=%llu rays, total=%llu rays, end_cycle=%llu, est=%llu\n",
                samp_.acc.intervals(),
                (unsigned long long)samp_.acc.measuredCycles(),
                (unsigned long long)samp_.acc.measuredWork(),
                (unsigned long long)aluRounds_,
                (unsigned long long)samp_.ffRaysTotal,
                (unsigned long long)run_.raysTraced,
                (unsigned long long)lastNow_,
                (unsigned long long)run_.cycles);
    }
    return run_;
}

} // namespace trt
