/**
 * @file
 * Functional path-tracing shader model. The timing simulator charges
 * cycles for shader execution abstractly (instruction counts); the
 * *values* — radiance, next-bounce rays — come from this class. All
 * sampling is counter-based on (pixel, bounce, dimension), so results
 * are identical regardless of execution order, which lets the test
 * suite assert that every architecture renders the same image.
 */

#ifndef TRT_GPU_SHADER_HH
#define TRT_GPU_SHADER_HH

#include <cstdint>
#include <vector>

#include "bvh/bvh.hh"
#include "geom/ray.hh"
#include "scene/scene.hh"

namespace trt
{

/** Per-thread path state (what the raygen shader keeps in registers). */
struct PathState
{
    uint32_t pixel = 0;
    Vec3 throughput{1.0f, 1.0f, 1.0f};
    Vec3 radiance{0.0f, 0.0f, 0.0f};
    uint8_t bounce = 0;   //!< Trace round: 0 = primary ray.
    bool alive = false;   //!< Needs another trace.
    Ray ray;              //!< Ray for the pending/next trace.
};

/** Functional path tracer: primary ray generation and shading. */
class PathTracer
{
  public:
    /**
     * @param scene Scene (materials + camera + background).
     * @param bvh Built BVH over the scene (hit indices refer to its
     *        reordered triangle array).
     * @param max_bounces Secondary bounces per path.
     * @param cutoff Kill paths whose throughput falls below this.
     */
    PathTracer(const Scene &scene, const Bvh &bvh, uint32_t max_bounces,
               float cutoff);

    /** Initialize the path for @p pixel with its primary ray. */
    PathState startPath(uint32_t pixel, uint32_t width,
                        uint32_t height) const;

    /**
     * Consume the traversal result for the pending ray: accumulate
     * radiance, sample the next direction and update @p state.
     * On return, state.alive says whether another trace is needed
     * (state.ray holds the next ray).
     */
    void shade(PathState &state, const HitRecord &hit) const;

    const Scene &scene() const { return scene_; }
    const Bvh &bvh() const { return bvh_; }

  private:
    const Scene &scene_;
    const Bvh &bvh_;
    uint32_t maxBounces_;
    float cutoff_;
};

/**
 * Render the whole frame functionally (no timing). Used by tests as the
 * golden reference and by the preview example.
 */
std::vector<Vec3> renderReference(const Scene &scene, const Bvh &bvh,
                                  uint32_t width, uint32_t height,
                                  uint32_t max_bounces, float cutoff);

} // namespace trt

#endif // TRT_GPU_SHADER_HH
