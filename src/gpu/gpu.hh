/**
 * @file
 * Top-level cycle-level GPU model: CTA scheduler, SMs executing the
 * raygen/path-trace shader loop, per-SM RT units, and the shared memory
 * hierarchy. Supports the paper's ray virtualization (section 3.1/4.1):
 * CTAs are suspended after all their threads issue traceRayEXT(), their
 * state is spilled to memory, and the RT unit injects ready-to-resume
 * CTAs back into the CTA scheduler.
 */

#ifndef TRT_GPU_GPU_HH
#define TRT_GPU_GPU_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bvh/bvh.hh"
#include "gpu/config.hh"
#include "gpu/rt_unit.hh"
#include "gpu/sampled.hh"
#include "gpu/shader.hh"
#include "gpu/sim_pool.hh"
#include "memsys/memsys.hh"
#include "scene/scene.hh"
#include "snapshot/snapshot.hh"
#include "stats/sampling.hh"
#include "telemetry/telemetry.hh"

namespace trt
{

/** Everything a simulation run produces. */
struct RunStats
{
    uint64_t cycles = 0;
    std::vector<Vec3> framebuffer;

    RtStats rt; //!< Aggregated over all RT units.
    std::array<MemClassStats, size_t(MemClass::NumClasses)> mem{};
    double bvhL1MissRate = 0.0;
    /** Windowed BVH L1 miss-rate curve (Fig. 11), resampled. */
    std::vector<double> bvhMissSeries;

    uint64_t aluLaneInstrs = 0; //!< Lane-instructions executed on cores.
    uint64_t raysTraced = 0;
    uint64_t ctasLaunched = 0;
    uint64_t ctaSaves = 0;
    uint64_t ctaRestores = 0;
    uint64_t ctaStateBytes = 0; //!< Saved + restored bytes.

    /** First-trace hit per pixel; only filled for custom-ray runs
     *  (general tree-traversal workloads, see workloads/rt_query.hh). */
    std::vector<HitRecord> primaryHits;

    /** Sampling metadata; enabled=false (all zeros) for full runs. */
    SampleSummary sampled;

    double simtEfficiency() const { return rt.simtEfficiency(); }

    const MemClassStats &memClass(MemClass c) const
    { return mem[size_t(c)]; }
};

/**
 * The simulated GPU. Construct with a scene + BVH, then run() exactly
 * once; results (timing stats and the rendered frame) come back in
 * RunStats.
 */
class Gpu
{
  public:
    /** Creates the RT unit for each SM (lets src/core plug in the
     *  proposed architectures without a dependency cycle). */
    using RtUnitFactory = std::function<std::unique_ptr<RtUnitBase>(
        const GpuConfig &, MemorySystem &, const Bvh &, uint32_t sm_id)>;

    /**
     * @param cfg Simulation configuration.
     * @param scene Scene to render (must outlive the Gpu).
     * @param bvh Built BVH (must outlive the Gpu).
     * @param factory RT unit factory; defaults to BaselineRtUnit and
     *        asserts if cfg.arch needs more.
     * @param primary_rays Optional: replace camera-generated primary
     *        rays with this list (one thread per ray; used to run
     *        general tree-traversal workloads through the RT unit,
     *        the paper's section 8 direction). Must outlive the Gpu.
     */
    Gpu(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
        RtUnitFactory factory = {},
        const std::vector<Ray> *primary_rays = nullptr);
    ~Gpu();

    /** Simulate the full frame. */
    RunStats run();

    /**
     * Sampled simulation (DESIGN.md §8): alternate detailed measured
     * intervals with functional fast-forward legs and extrapolate
     * whole-run RunStats (with confidence intervals in .sampled) from
     * the measured intervals. The frame itself — framebuffer,
     * primaryHits, total rays — is architecturally exact; timing and
     * memory counters are estimates. Like run(), callable exactly
     * once; resumes from a restored snapshot of a sampled run with the
     * same SampleConfig (mismatch throws SnapshotError).
     */
    RunStats runSampled(const SampleConfig &sc);

    MemorySystem &memorySystem() { return mem_; }

    // ---- checkpoint / restore (DESIGN.md §7) ------------------------
    /** Arm the snapshot scheduler; must be called before run(). A
     *  default-constructed policy (the default) disables capture. */
    void setSnapshotPolicy(const SnapshotPolicy &policy);

    /**
     * Serialize the complete mid-run simulator state. Only legal at
     * the serial commit boundary (between run() loop iterations);
     * run() calls this from its snapshot scheduler, tests may call it
     * on a never-run or freshly restored Gpu.
     */
    void saveState(Serializer &s) const;

    /**
     * Restore state captured by saveState into this Gpu, which must
     * have been constructed with the same config/scene/BVH (checked
     * via GpuConfig::fingerprint). After loadState, run() resumes
     * from the captured cycle and produces bit-identical RunStats.
     */
    void loadState(Deserializer &d);

    /** Cycle the restored state was captured at (0 if not restored). */
    uint64_t restoredCycle() const { return restored_ ? lastNow_ : 0; }

    /** The telemetry sink (DESIGN.md §12); null unless cfg.telem is
     *  on. Owned by the Gpu; files are written by finalizeStats. */
    Telemetry *telemetry() { return telem_.get(); }

  private:
    // ---- shader-side structures -------------------------------------
    struct LaneCtx
    {
        PathState path;
        HitRecord hit;
        bool traced = false;
    };

    enum class WarpPhase : uint8_t
    {
        Alu,        //!< Executing an ALU segment on the cores.
        WaitAccept, //!< traceRayEXT() issued, RT unit has not taken it.
        WaitTrace,  //!< Rays in the RT unit.
        TraceDone,  //!< Results arrived while the CTA was suspended.
        Finished,
    };

    struct WarpExec
    {
        uint32_t index = 0; //!< Warp index within the CTA.
        std::vector<LaneCtx> lanes;
        WarpPhase phase = WarpPhase::Alu;
        uint64_t token = 0;
        std::vector<LaneHit> pendingHits;
        uint32_t aliveLanes = 0;
    };

    enum class CtaState : uint8_t
    {
        Pending,   //!< Not yet launched.
        Resident,  //!< Occupying an SM slot.
        Suspended, //!< Ray-virtualized: state spilled, slot released.
        ResumeQueued,
        Finished,
    };

    struct CtaExec
    {
        uint32_t token = 0;
        uint32_t smId = 0;
        CtaState state = CtaState::Pending;
        std::vector<WarpExec> warps;
        uint32_t firstPixel = 0;
        uint32_t threadCount = 0;
    };

    struct SmState
    {
        uint32_t ctasResident = 0;
        uint32_t warpsUsed = 0;
        uint32_t regsUsed = 0;
        uint64_t aluBusyUntil = 0;
        std::deque<std::pair<uint32_t, uint32_t>> acceptQueue; // cta,warp
        std::deque<uint32_t> resumeQueue;                      // cta
    };

    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        enum Type : uint8_t { AluDone, CtaRestored } type;
        uint32_t cta;
        uint32_t warp;

        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    // ---- sampled simulation (DESIGN.md §8) ---------------------------
    enum class SamplePhase : uint8_t
    {
        Measure, //!< Detailed, counters feed the current interval.
        Warmup,  //!< Detailed, results discarded (post-ff cache refill).
    };

    /** Mid-run sampler bookkeeping; serialized as the SMPL chunk. */
    struct SamplerState
    {
        bool active = false;
        SamplePhase phase = SamplePhase::Measure;
        bool inInterval = false;
        uint64_t phaseEndCycle = 0;      //!< Absolute end of the phase.
        /** ctasFinished_ at which the current measured interval closes
         *  (fixed-work intervals); 0 when no work bound is active. */
        uint64_t workEndTarget = 0;
        uint64_t intervalStartCycle = 0;
        uint64_t startWork = 0;          //!< ctasFinished_ at interval start.
        uint64_t startRounds = 0;        //!< aluRounds_ at interval start.
        /** Warp shade rounds / detailed cycles of the last closed
         *  interval; the respread rate after the next fast-forward leg
         *  (see respreadEvents()). */
        uint64_t lastIvRounds = 0;
        uint64_t lastIvCycles = 0;
        /** RT-unit ray population the warm-up must rebuild before
         *  measurement may start (7/8 of the pre-drain level); 0 when
         *  no condition-based warm-up is active. */
        uint64_t backlogTarget = 0;
        /** Earliest cycle the warm-up may end (the respread horizon),
         *  regardless of backlog recovery. */
        uint64_t warmupMinCycle = 0;
        /** aluRounds_ at the start of the current interval's stratum;
         *  the next beginMeasure (or end of run) closes the stratum,
         *  the weight of that interval's rate in the stratified
         *  estimator (stats/sampling.hh). Strata split each
         *  inter-interval gap (leg + warm-up rounds) evenly between
         *  the two neighboring intervals: the regime drifts across the
         *  gap, so assigning it wholly to either side biases the
         *  weighting toward that side's rate. */
        uint64_t stratumStartRounds = 0;
        /** aluRounds_ when the last interval closed (the gap between
         *  intervals starts here). */
        uint64_t gapStartRounds = 0;
        std::vector<uint64_t> startCounters;
        uint64_t ffRaysTotal = 0;        //!< Rays completed by ff legs.
        /** SampleConfig::fingerprint() of the run that produced this
         *  state; resume validates the caller's config against it. */
        uint64_t cfgFp = 0;
        SampleAccumulator acc;
    };

    /** Detailed event loop shared by run()/runSampled(): simulate until
     *  the frame finishes (true) or lastNow_ reaches @p stopAtCycle at
     *  the serial commit boundary (false). */
    bool detailedLoop(uint64_t stopAtCycle);
    /** Final RT-unit tick + raw stat aggregation into run_. */
    void finalizeStats();

    /** Switch to functional mode: drain every RT unit (completing all
     *  in-flight rays exactly) and absorb the queued-warp backlog. */
    void enterFunctional();
    /** Functionally retire rays until @p rayQuantum rays complete
     *  (when nonzero), ctasFinished_ reaches @p ctaTarget (when
     *  nonzero), the final wave starts, or the frame finishes (returns
     *  true then). Clock does not advance. */
    bool functionalAdvance(uint64_t rayQuantum, uint32_t ctaTarget);
    /** True when @p cta has reached the target completed-path fraction
     *  of the current leg's staggered progress profile (fully retired
     *  below @p newFinished, linearly less advanced across the
     *  resident window of @p capacity CTAs above it). */
    bool ffReachedTarget(uint32_t cta, uint32_t newFinished,
                         uint32_t capacity) const;
    /** issueTrace() body in functional mode: trace + shade inline. */
    void traceWarpFunctional(uint64_t now, uint32_t cta, uint32_t warp);
    /** Deliver functional results to a warp already counted as traced
     *  (drained accept-queue backlog). */
    void completeWarpFunctional(uint64_t now, uint32_t cta, uint32_t warp);

    void beginMeasure();
    void endMeasure();
    /** Start the discarded warm-up phase. It ends when the RT-unit ray
     *  population has rebuilt to the pre-drain level recorded by
     *  enterFunctional() (but no earlier than @p respreadEnd, the last
     *  respread event), capped at warmupCycles as a hard bound. */
    void beginWarmup(uint64_t respreadEnd);
    /** Rays held across all RT units (queued + parked + stepping). */
    uint64_t rtBacklog() const;
    /** Re-stagger the event heap after a fast-forward leg: a leg
     *  completes with every resident warp's next event booked at the
     *  frozen clock, which would retire them as one synchronized convoy
     *  and make the following interval measure an unrepresentative
     *  refill burst. Spread the events at (2x) the warp-round rate the
     *  previous interval measured, so work re-arrives at steady pace
     *  and the warm-up rebuilds a plausibly staggered machine. Returns
     *  the cycle of the last respread event (the warm-up horizon). */
    uint64_t respreadEvents();
    /** At most one CTA per SM left (serialized endgame): the sampled
     *  driver stops fast-forwarding and measures the tail in detail. */
    bool inFinalWave() const;
    /** ctasFinished_ value at which the current fast-forward leg ends
     *  (one CTA stratum ahead); 0 when a fixed ray quantum is set. */
    uint32_t ffCtaTarget() const;
    /** Live values of every extrapolated counter, in
     *  sampleCounterNames() order. */
    std::vector<uint64_t> sampleCounters() const;
    /** Rays completed across all RT units (the sampler's work unit). */
    uint64_t totalRaysCompleted() const;
    /** Overwrite run_'s counters with the extrapolated whole-run
     *  estimates and fill run_.sampled. */
    void applySampleEstimates();

    // ---- helpers -----------------------------------------------------
    void buildCtas();
    void servicePass(uint64_t now);
    void tryLaunch(uint64_t now);
    void tryResume(uint64_t now);
    void scheduleAlu(uint64_t now, uint32_t cta, uint32_t warp,
                     uint32_t instrs);
    void onAluDone(uint64_t now, uint32_t cta, uint32_t warp);
    void issueTrace(uint64_t now, uint32_t cta, uint32_t warp);
    void retryAccepts(uint64_t now, uint32_t sm);
    void refreshRtEvent(uint32_t sm)
    { rtNextEvent_[sm] = rtUnits_[sm]->nextEventCycle(); }
    void onWarpTraceDone(uint64_t now, uint64_t token,
                         std::vector<LaneHit> &&hits);
    void shadeWarp(uint64_t now, uint32_t cta, uint32_t warp);
    void maybeSuspendCta(uint64_t now, uint32_t cta);
    void maybeResumeReady(uint64_t now, uint32_t cta);
    void finishWarp(uint32_t cta, uint32_t warp);
    void checkCtaFinished(uint64_t now, uint32_t cta);
    uint32_t ctaStateBytesFor(const CtaExec &c) const;
    void pushEvent(uint64_t cycle, Event::Type t, uint32_t cta,
                   uint32_t warp);
    /** Multi-line snapshot of scheduler + per-SM RT-unit state for
     *  deadlock/livelock diagnostics. */
    std::string simStateDump(uint64_t now) const;

    /** Snapshot scheduler, called at the serial commit boundary (end
     *  of each run() loop iteration). Writes a snapshot file when due;
     *  throws SimulationHalted when haltAtCycle fires. */
    void maybeSnapshot(uint64_t now);

    /** Telemetry merge at the serial commit boundary: capture the
     *  GPU-level (memory system) sample when due and drain every SM's
     *  staging channel in SM order (DESIGN.md §12). */
    void telemCommit(uint64_t now);

    GpuConfig cfg_;
    const Scene &scene_;
    const Bvh &bvh_;
    MemorySystem mem_;
    PathTracer tracer_;
    const std::vector<Ray> *customRays_ = nullptr;

    std::vector<std::unique_ptr<RtUnitBase>> rtUnits_;
    /** Shared prediction table (cfg.predictShared): attached to every
     *  unit's PredictPolicy; pending trainings are flushed in SM order
     *  at each serial commit boundary. Null unless enabled. */
    std::unique_ptr<SharedPredict> sharedPredict_;
    /** Cached RtUnitBase::nextEventCycle() per unit; refreshed after
     *  every call into the unit so the main loop can poll in O(1). */
    std::vector<uint64_t> rtNextEvent_;
    std::vector<SmState> sms_;
    std::vector<CtaExec> ctas_;
    std::deque<uint32_t> pendingCtas_;
    uint32_t ctasFinished_ = 0;
    /** Last launch scan found no SM with room; stays set (and tryLaunch
     *  returns immediately) until some SM releases resources. */
    bool launchBlocked_ = false;
    /** CTAs sitting in any SM's resume queue; lets tryResume() skip its
     *  per-SM scan on the (common) empty case. */
    uint32_t resumeQueued_ = 0;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    uint64_t eventSeq_ = 0;
    /** warp token -> (cta, warp) for completion routing. */
    std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> tokenMap_;
    uint64_t nextToken_ = 1;

    RunStats run_;
    bool ran_ = false;
    uint64_t lastNow_ = 0;

    // ---- sampled-mode state -----------------------------------------
    /** True while a fast-forward leg runs: issueTrace/scheduleAlu/
     *  tryResume take their zero-latency functional paths. */
    bool functionalMode_ = false;
    /** Rays completed by the current fast-forward leg. */
    uint64_t ffLegTraced_ = 0;
    /** rtBacklog() sampled by enterFunctional() just before the drain;
     *  beginWarmup() turns it into the rebuild target. Transient within
     *  one driver step (never live at a snapshot boundary). */
    uint64_t ffPreDrainBacklog_ = 0;
    /** Scene too small to sample: fewer CTAs than one full sampling
     *  schedule (measureCtas * targetIntervals), so fast-forward gains
     *  nothing and the run stays entirely detailed — one interval
     *  covering the whole frame, exact results with zero CI. Derived
     *  from scene + config in runSampled() (never serialized). */
    bool sampleAllDetailed_ = false;
    /** Pooled traverser for functional tracing. */
    RayTraverser ffTrav_;
    SampleConfig sampleCfg_;
    SamplerState samp_;
    /** Warp shade rounds completed (onAluDone count) — the sampler's
     *  work metric. Accrues in both the detailed path and functional
     *  fast-forward (shared onAluDone), so the end-of-run total is the
     *  exact whole-frame work; interval deltas give the measured
     *  cycles-per-round ratio and pace respreadEvents(). */
    uint64_t aluRounds_ = 0;

    /** Telemetry sink; null (telemetry off) keeps every hook to one
     *  predictable branch. */
    std::unique_ptr<Telemetry> telem_;

    SnapshotPolicy snapPolicy_;
    uint64_t nextSnapshotAt_ = 0;
    /** loadState succeeded: run() continues from lastNow_ instead of
     *  starting a fresh frame. */
    bool restored_ = false;

    // ---- SM-parallel tick machinery ---------------------------------
    /** Worker pool for SM tick fan-out (absent when simThreads <= 1). */
    std::unique_ptr<TickPool> pool_;
    /** SMs due to tick this cycle; rebuilt every loop iteration. */
    std::vector<uint32_t> tickList_;
    /** True while SM ticks run (possibly on worker threads): warp
     *  completions must be buffered, not handled inline, because the
     *  handler touches scheduler state shared across SMs. */
    bool inTickPhase_ = false;
    struct DeferredDone
    {
        uint64_t token;
        std::vector<LaneHit> hits;
    };
    /** Completions buffered during the tick phase, per SM; drained in
     *  SM order after the memory commit — the order the serial SM loop
     *  would have produced. */
    std::vector<std::vector<DeferredDone>> pendingDone_;
};

} // namespace trt

#endif // TRT_GPU_GPU_HH
