/**
 * @file
 * Top-level cycle-level GPU model: CTA scheduler, SMs executing the
 * raygen/path-trace shader loop, per-SM RT units, and the shared memory
 * hierarchy. Supports the paper's ray virtualization (section 3.1/4.1):
 * CTAs are suspended after all their threads issue traceRayEXT(), their
 * state is spilled to memory, and the RT unit injects ready-to-resume
 * CTAs back into the CTA scheduler.
 */

#ifndef TRT_GPU_GPU_HH
#define TRT_GPU_GPU_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bvh/bvh.hh"
#include "gpu/config.hh"
#include "gpu/rt_unit.hh"
#include "gpu/shader.hh"
#include "gpu/sim_pool.hh"
#include "memsys/memsys.hh"
#include "scene/scene.hh"
#include "snapshot/snapshot.hh"

namespace trt
{

/** Everything a simulation run produces. */
struct RunStats
{
    uint64_t cycles = 0;
    std::vector<Vec3> framebuffer;

    RtStats rt; //!< Aggregated over all RT units.
    std::array<MemClassStats, size_t(MemClass::NumClasses)> mem{};
    double bvhL1MissRate = 0.0;
    /** Windowed BVH L1 miss-rate curve (Fig. 11), resampled. */
    std::vector<double> bvhMissSeries;

    uint64_t aluLaneInstrs = 0; //!< Lane-instructions executed on cores.
    uint64_t raysTraced = 0;
    uint64_t ctasLaunched = 0;
    uint64_t ctaSaves = 0;
    uint64_t ctaRestores = 0;
    uint64_t ctaStateBytes = 0; //!< Saved + restored bytes.

    /** First-trace hit per pixel; only filled for custom-ray runs
     *  (general tree-traversal workloads, see workloads/rt_query.hh). */
    std::vector<HitRecord> primaryHits;

    double simtEfficiency() const { return rt.simtEfficiency(); }

    const MemClassStats &memClass(MemClass c) const
    { return mem[size_t(c)]; }
};

/**
 * The simulated GPU. Construct with a scene + BVH, then run() exactly
 * once; results (timing stats and the rendered frame) come back in
 * RunStats.
 */
class Gpu
{
  public:
    /** Creates the RT unit for each SM (lets src/core plug in the
     *  proposed architectures without a dependency cycle). */
    using RtUnitFactory = std::function<std::unique_ptr<RtUnitBase>(
        const GpuConfig &, MemorySystem &, const Bvh &, uint32_t sm_id)>;

    /**
     * @param cfg Simulation configuration.
     * @param scene Scene to render (must outlive the Gpu).
     * @param bvh Built BVH (must outlive the Gpu).
     * @param factory RT unit factory; defaults to BaselineRtUnit and
     *        asserts if cfg.arch needs more.
     * @param primary_rays Optional: replace camera-generated primary
     *        rays with this list (one thread per ray; used to run
     *        general tree-traversal workloads through the RT unit,
     *        the paper's section 8 direction). Must outlive the Gpu.
     */
    Gpu(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
        RtUnitFactory factory = {},
        const std::vector<Ray> *primary_rays = nullptr);
    ~Gpu();

    /** Simulate the full frame. */
    RunStats run();

    MemorySystem &memorySystem() { return mem_; }

    // ---- checkpoint / restore (DESIGN.md §7) ------------------------
    /** Arm the snapshot scheduler; must be called before run(). A
     *  default-constructed policy (the default) disables capture. */
    void setSnapshotPolicy(const SnapshotPolicy &policy);

    /**
     * Serialize the complete mid-run simulator state. Only legal at
     * the serial commit boundary (between run() loop iterations);
     * run() calls this from its snapshot scheduler, tests may call it
     * on a never-run or freshly restored Gpu.
     */
    void saveState(Serializer &s) const;

    /**
     * Restore state captured by saveState into this Gpu, which must
     * have been constructed with the same config/scene/BVH (checked
     * via GpuConfig::fingerprint). After loadState, run() resumes
     * from the captured cycle and produces bit-identical RunStats.
     */
    void loadState(Deserializer &d);

    /** Cycle the restored state was captured at (0 if not restored). */
    uint64_t restoredCycle() const { return restored_ ? lastNow_ : 0; }

  private:
    // ---- shader-side structures -------------------------------------
    struct LaneCtx
    {
        PathState path;
        HitRecord hit;
        bool traced = false;
    };

    enum class WarpPhase : uint8_t
    {
        Alu,        //!< Executing an ALU segment on the cores.
        WaitAccept, //!< traceRayEXT() issued, RT unit has not taken it.
        WaitTrace,  //!< Rays in the RT unit.
        TraceDone,  //!< Results arrived while the CTA was suspended.
        Finished,
    };

    struct WarpExec
    {
        uint32_t index = 0; //!< Warp index within the CTA.
        std::vector<LaneCtx> lanes;
        WarpPhase phase = WarpPhase::Alu;
        uint64_t token = 0;
        std::vector<LaneHit> pendingHits;
        uint32_t aliveLanes = 0;
    };

    enum class CtaState : uint8_t
    {
        Pending,   //!< Not yet launched.
        Resident,  //!< Occupying an SM slot.
        Suspended, //!< Ray-virtualized: state spilled, slot released.
        ResumeQueued,
        Finished,
    };

    struct CtaExec
    {
        uint32_t token = 0;
        uint32_t smId = 0;
        CtaState state = CtaState::Pending;
        std::vector<WarpExec> warps;
        uint32_t firstPixel = 0;
        uint32_t threadCount = 0;
    };

    struct SmState
    {
        uint32_t ctasResident = 0;
        uint32_t warpsUsed = 0;
        uint32_t regsUsed = 0;
        uint64_t aluBusyUntil = 0;
        std::deque<std::pair<uint32_t, uint32_t>> acceptQueue; // cta,warp
        std::deque<uint32_t> resumeQueue;                      // cta
    };

    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        enum Type : uint8_t { AluDone, CtaRestored } type;
        uint32_t cta;
        uint32_t warp;

        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    // ---- helpers -----------------------------------------------------
    void buildCtas();
    void servicePass(uint64_t now);
    void tryLaunch(uint64_t now);
    void tryResume(uint64_t now);
    void scheduleAlu(uint64_t now, uint32_t cta, uint32_t warp,
                     uint32_t instrs);
    void onAluDone(uint64_t now, uint32_t cta, uint32_t warp);
    void issueTrace(uint64_t now, uint32_t cta, uint32_t warp);
    void retryAccepts(uint64_t now, uint32_t sm);
    void refreshRtEvent(uint32_t sm)
    { rtNextEvent_[sm] = rtUnits_[sm]->nextEventCycle(); }
    void onWarpTraceDone(uint64_t now, uint64_t token,
                         std::vector<LaneHit> &&hits);
    void shadeWarp(uint64_t now, uint32_t cta, uint32_t warp);
    void maybeSuspendCta(uint64_t now, uint32_t cta);
    void maybeResumeReady(uint64_t now, uint32_t cta);
    void finishWarp(uint32_t cta, uint32_t warp);
    void checkCtaFinished(uint64_t now, uint32_t cta);
    uint32_t ctaStateBytesFor(const CtaExec &c) const;
    void pushEvent(uint64_t cycle, Event::Type t, uint32_t cta,
                   uint32_t warp);
    /** Multi-line snapshot of scheduler + per-SM RT-unit state for
     *  deadlock/livelock diagnostics. */
    std::string simStateDump(uint64_t now) const;

    /** Snapshot scheduler, called at the serial commit boundary (end
     *  of each run() loop iteration). Writes a snapshot file when due;
     *  throws SimulationHalted when haltAtCycle fires. */
    void maybeSnapshot(uint64_t now);

    GpuConfig cfg_;
    const Scene &scene_;
    const Bvh &bvh_;
    MemorySystem mem_;
    PathTracer tracer_;
    const std::vector<Ray> *customRays_ = nullptr;

    std::vector<std::unique_ptr<RtUnitBase>> rtUnits_;
    /** Cached RtUnitBase::nextEventCycle() per unit; refreshed after
     *  every call into the unit so the main loop can poll in O(1). */
    std::vector<uint64_t> rtNextEvent_;
    std::vector<SmState> sms_;
    std::vector<CtaExec> ctas_;
    std::deque<uint32_t> pendingCtas_;
    uint32_t ctasFinished_ = 0;
    /** Last launch scan found no SM with room; stays set (and tryLaunch
     *  returns immediately) until some SM releases resources. */
    bool launchBlocked_ = false;
    /** CTAs sitting in any SM's resume queue; lets tryResume() skip its
     *  per-SM scan on the (common) empty case. */
    uint32_t resumeQueued_ = 0;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    uint64_t eventSeq_ = 0;
    /** warp token -> (cta, warp) for completion routing. */
    std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> tokenMap_;
    uint64_t nextToken_ = 1;

    RunStats run_;
    bool ran_ = false;
    uint64_t lastNow_ = 0;

    SnapshotPolicy snapPolicy_;
    uint64_t nextSnapshotAt_ = 0;
    /** loadState succeeded: run() continues from lastNow_ instead of
     *  starting a fresh frame. */
    bool restored_ = false;

    // ---- SM-parallel tick machinery ---------------------------------
    /** Worker pool for SM tick fan-out (absent when simThreads <= 1). */
    std::unique_ptr<TickPool> pool_;
    /** SMs due to tick this cycle; rebuilt every loop iteration. */
    std::vector<uint32_t> tickList_;
    /** True while SM ticks run (possibly on worker threads): warp
     *  completions must be buffered, not handled inline, because the
     *  handler touches scheduler state shared across SMs. */
    bool inTickPhase_ = false;
    struct DeferredDone
    {
        uint64_t token;
        std::vector<LaneHit> hits;
    };
    /** Completions buffered during the tick phase, per SM; drained in
     *  SM order after the memory commit — the order the serial SM loop
     *  would have produced. */
    std::vector<std::vector<DeferredDone>> pendingDone_;
};

} // namespace trt

#endif // TRT_GPU_GPU_HH
