#include "gpu/gpu.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "gpu/dispatch_policy.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

/** Base simulated address of the CTA state save area (section 4.1). */
constexpr uint64_t kCtaStateBase = 0x300000000ull;
/** Bytes reserved per CTA in the save area. */
constexpr uint64_t kCtaStateStride = 8192;

/** Resolve the SM tick-fan-out width: explicit config, else the
 *  TRT_SIM_THREADS environment variable, else serial. */
uint32_t
resolveSimThreads(uint32_t cfg_threads)
{
    if (cfg_threads > 0)
        return cfg_threads;
    uint64_t v = envUInt("TRT_SIM_THREADS", 1, 4096);
    return v > 0 ? uint32_t(v) : 1;
}

} // anonymous namespace

Gpu::Gpu(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh,
         RtUnitFactory factory, const std::vector<Ray> *primary_rays)
    : cfg_(cfg), scene_(scene), bvh_(bvh), mem_(cfg.mem),
      tracer_(scene, bvh, cfg.maxBounces, cfg.contributionCutoff),
      customRays_(primary_rays)
{
    if (cfg_.mem.numL1s != cfg_.numSms)
        throw std::invalid_argument("mem.numL1s must equal numSms");

    mem_.enableBvhSeries(2048);

    if (cfg_.policy == DispatchPolicyKind::Predict && cfg_.predictShared)
        sharedPredict_ = std::make_unique<SharedPredict>(cfg_);

    if (cfg_.telem.on())
        telem_ = std::make_unique<Telemetry>(cfg_.telem, cfg_.numSms);

    sms_.resize(cfg_.numSms);
    rtUnits_.reserve(cfg_.numSms);
    for (uint32_t sm = 0; sm < cfg_.numSms; sm++) {
        std::unique_ptr<RtUnitBase> unit;
        if (factory) {
            unit = factory(cfg_, mem_, bvh_, sm);
        } else {
            if (cfg_.arch != RtArch::Baseline)
                throw std::invalid_argument(
                    "non-baseline arch requires an RT unit factory "
                    "(use core/arch.hh makeRtUnitFactory)");
            unit = std::make_unique<BaselineRtUnit>(cfg_, mem_, bvh_, sm);
        }
        if (sharedPredict_)
            unit->setSharedPredict(sharedPredict_.get());
        if (telem_)
            unit->setTelemetry(&telem_->channel(sm));
        // During the (possibly multi-threaded) tick phase completions
        // are buffered per SM and drained in SM order after the memory
        // commit; outside it (accept path, final drain) they are
        // handled inline as before.
        unit->setCompletion([this, sm](uint64_t token,
                                       std::vector<LaneHit> &&hits) {
            if (inTickPhase_)
                pendingDone_[sm].push_back({token, std::move(hits)});
            else
                onWarpTraceDone(lastNow_, token, std::move(hits));
        });
        rtUnits_.push_back(std::move(unit));
    }
    rtNextEvent_.assign(cfg_.numSms, kNoEvent);
    pendingDone_.resize(cfg_.numSms);
    for (auto &v : pendingDone_)
        v.reserve(16);
    tickList_.reserve(cfg_.numSms);

    uint32_t threads =
        std::min(resolveSimThreads(cfg_.simThreads), cfg_.numSms);
    if (threads > 1)
        pool_ = std::make_unique<TickPool>(threads);

    buildCtas();
}

Gpu::~Gpu() = default;

void
Gpu::buildCtas()
{
    uint32_t pixels = customRays_ ? uint32_t(customRays_->size())
                                  : cfg_.imageWidth * cfg_.imageHeight;
    uint32_t per_cta = cfg_.ctaSize;
    uint32_t n_ctas = (pixels + per_cta - 1) / per_cta;

    ctas_.resize(n_ctas);
    for (uint32_t c = 0; c < n_ctas; c++) {
        CtaExec &cta = ctas_[c];
        cta.token = c;
        cta.firstPixel = c * per_cta;
        cta.threadCount = std::min(per_cta, pixels - cta.firstPixel);
        uint32_t n_warps =
            (cta.threadCount + cfg_.warpSize - 1) / cfg_.warpSize;
        cta.warps.resize(n_warps);
        for (uint32_t w = 0; w < n_warps; w++) {
            WarpExec &warp = cta.warps[w];
            warp.index = w;
            uint32_t first = cta.firstPixel + w * cfg_.warpSize;
            uint32_t lanes = std::min(cfg_.warpSize,
                                      cta.firstPixel + cta.threadCount -
                                          first);
            warp.lanes.resize(lanes);
        }
        pendingCtas_.push_back(c);
    }
    run_.framebuffer.assign(pixels, Vec3{0, 0, 0});
    if (customRays_)
        run_.primaryHits.assign(pixels, HitRecord{});
}

uint32_t
Gpu::ctaStateBytesFor(const CtaExec &c) const
{
    // Registers (ptxas count, section 6.6) plus per-warp SIMT stack:
    // 32-bit mask + PC + reconvergence PC per stack entry.
    uint32_t reg_bytes = c.threadCount * cfg_.regsPerThread * 4;
    uint32_t stack_bytes =
        uint32_t(c.warps.size()) * cfg_.simtStackDepth * 12;
    return reg_bytes + stack_bytes;
}

void
Gpu::pushEvent(uint64_t cycle, Event::Type t, uint32_t cta, uint32_t warp)
{
    events_.push(Event{cycle, eventSeq_++, t, cta, warp});
}

void
Gpu::scheduleAlu(uint64_t now, uint32_t cta, uint32_t warp, uint32_t instrs)
{
    CtaExec &c = ctas_[cta];
    c.warps[warp].phase = WarpPhase::Alu;
    run_.aluLaneInstrs +=
        uint64_t(instrs) * std::max(1u, c.warps[warp].aliveLanes);
    if (functionalMode_) {
        // Zero latency, and no core-occupancy booking: aluBusyUntil
        // would leak frozen-clock time into the next detailed phase.
        pushEvent(now, Event::AluDone, cta, warp);
        return;
    }
    SmState &sm = sms_[c.smId];
    uint64_t start = std::max(now, sm.aluBusyUntil);
    uint64_t done = start + instrs;
    sm.aluBusyUntil = done;
    pushEvent(done, Event::AluDone, cta, warp);
}

void
Gpu::tryLaunch(uint64_t now)
{
    if (launchBlocked_)
        return; // no SM freed resources since the last failed scan
    while (!pendingCtas_.empty()) {
        uint32_t ctaIdx = pendingCtas_.front();
        CtaExec &c = ctas_[ctaIdx];
        uint32_t warps = uint32_t(c.warps.size());
        uint32_t regs = c.threadCount * cfg_.regsPerThread;

        // Pick the SM with the most free CTA slots (ties: lowest id).
        int best = -1;
        uint32_t best_free = 0;
        for (uint32_t s = 0; s < cfg_.numSms; s++) {
            const SmState &sm = sms_[s];
            if (sm.ctasResident >= cfg_.maxCtasPerSm ||
                sm.warpsUsed + warps > cfg_.maxWarpsPerSm ||
                sm.regsUsed + regs > cfg_.regsPerSm) {
                continue;
            }
            uint32_t free = cfg_.maxCtasPerSm - sm.ctasResident;
            if (int(free) > int(best_free) || best < 0) {
                best = int(s);
                best_free = free;
            }
        }
        if (best < 0) {
            launchBlocked_ = true;
            return;
        }

        pendingCtas_.pop_front();
        c.smId = uint32_t(best);
        c.state = CtaState::Resident;
        SmState &sm = sms_[c.smId];
        sm.ctasResident++;
        sm.warpsUsed += warps;
        sm.regsUsed += regs;
        run_.ctasLaunched++;

        // Initialize paths and start the raygen shader on every warp.
        for (auto &warp : c.warps) {
            warp.aliveLanes = 0;
            for (uint32_t l = 0; l < warp.lanes.size(); l++) {
                uint32_t pixel =
                    c.firstPixel + warp.index * cfg_.warpSize + l;
                if (customRays_) {
                    // Tree-traversal workload: the "raygen shader"
                    // issues a provided query ray instead.
                    PathState st;
                    st.pixel = pixel;
                    st.alive = true;
                    st.ray = (*customRays_)[pixel];
                    warp.lanes[l].path = st;
                } else {
                    warp.lanes[l].path = tracer_.startPath(
                        pixel, cfg_.imageWidth, cfg_.imageHeight);
                }
                warp.lanes[l].traced = false;
                warp.aliveLanes++;
            }
            scheduleAlu(now, ctaIdx, warp.index, cfg_.raygenAluInstrs);
        }
    }
}

void
Gpu::tryResume(uint64_t now)
{
    if (resumeQueued_ == 0)
        return;
    for (uint32_t s = 0; s < cfg_.numSms; s++) {
        SmState &sm = sms_[s];
        while (!sm.resumeQueue.empty()) {
            uint32_t ctaIdx = sm.resumeQueue.front();
            CtaExec &c = ctas_[ctaIdx];
            uint32_t warps = uint32_t(c.warps.size());
            uint32_t regs = c.threadCount * cfg_.regsPerThread;
            if (sm.ctasResident >= cfg_.maxCtasPerSm ||
                sm.warpsUsed + warps > cfg_.maxWarpsPerSm ||
                sm.regsUsed + regs > cfg_.regsPerSm) {
                break;
            }
            sm.resumeQueue.pop_front();
            resumeQueued_--;
            sm.ctasResident++;
            sm.warpsUsed += warps;
            sm.regsUsed += regs;
            c.state = CtaState::Resident;
            run_.ctaRestores++;

            uint64_t ready = now;
            uint32_t bytes = ctaStateBytesFor(c);
            run_.ctaStateBytes += bytes;
            // Functional mode keeps the save/restore counters (they are
            // architectural work) but skips the timed state read.
            if (!cfg_.virtualizationFree && !functionalMode_) {
                // Serial phase: the port resolves immediately.
                mem_.port(s).read(now,
                                  kCtaStateBase +
                                      c.token * kCtaStateStride,
                                  bytes, MemClass::CtaState, false,
                                  &ready);
            }
            pushEvent(ready, Event::CtaRestored, ctaIdx, 0);
        }
    }
}

void
Gpu::issueTrace(uint64_t now, uint32_t cta, uint32_t warp)
{
    if (functionalMode_) {
        traceWarpFunctional(now, cta, warp);
        return;
    }
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];

    TraceRequest req;
    req.token = nextToken_++;
    req.ctaToken = cta;
    for (uint32_t l = 0; l < w.lanes.size(); l++) {
        LaneCtx &lane = w.lanes[l];
        lane.traced = lane.path.alive;
        if (lane.traced)
            req.lanes.push_back({uint8_t(l), lane.path.ray});
    }
    assert(!req.lanes.empty());
    run_.raysTraced += req.lanes.size();
    w.token = req.token;
    tokenMap_[req.token] = {cta, warp};
    w.phase = WarpPhase::WaitAccept;

    SmState &sm = sms_[c.smId];
    if (sm.acceptQueue.empty() &&
        rtUnits_[c.smId]->tryAccept(now, std::move(req))) {
        refreshRtEvent(c.smId);
        w.phase = WarpPhase::WaitTrace;
        maybeSuspendCta(now, cta);
    } else {
        // Request will be rebuilt at retry time from lane state.
        sm.acceptQueue.push_back({cta, warp});
    }
}

void
Gpu::retryAccepts(uint64_t now, uint32_t smId)
{
    SmState &sm = sms_[smId];
    while (!sm.acceptQueue.empty()) {
        auto [cta, warp] = sm.acceptQueue.front();
        CtaExec &c = ctas_[cta];
        WarpExec &w = c.warps[warp];

        TraceRequest req;
        req.token = w.token;
        req.ctaToken = cta;
        for (uint32_t l = 0; l < w.lanes.size(); l++)
            if (w.lanes[l].traced)
                req.lanes.push_back({uint8_t(l), w.lanes[l].path.ray});
        if (!rtUnits_[smId]->tryAccept(now, std::move(req)))
            return;
        refreshRtEvent(smId);
        sm.acceptQueue.pop_front();
        w.phase = WarpPhase::WaitTrace;
        maybeSuspendCta(now, cta);
    }
}

void
Gpu::maybeSuspendCta(uint64_t now, uint32_t cta)
{
    if (!cfg_.rayVirtualization)
        return;
    CtaExec &c = ctas_[cta];
    if (c.state != CtaState::Resident)
        return;

    bool any_waiting = false;
    for (const auto &w : c.warps) {
        switch (w.phase) {
          case WarpPhase::WaitTrace:
          case WarpPhase::TraceDone:
            any_waiting = true;
            break;
          case WarpPhase::Finished:
            break;
          default:
            return; // some warp still executing / not yet accepted
        }
    }
    if (!any_waiting)
        return;

    // Suspension only pays off when the freed slot can actually be
    // used (a CTA pending launch or queued for resume); otherwise keep
    // the CTA resident and skip the save/restore round trip. This is
    // the "until all raygen shader CTAs are issued" clause of 4.1.
    if (pendingCtas_.empty() && sms_[c.smId].resumeQueue.empty())
        return;

    // Terminate the raygen shader: spill CTA state and release the slot
    // so the CTA scheduler can launch more raygen CTAs (section 4.1).
    SmState &sm = sms_[c.smId];
    sm.ctasResident--;
    sm.warpsUsed -= uint32_t(c.warps.size());
    sm.regsUsed -= c.threadCount * cfg_.regsPerThread;
    launchBlocked_ = false;
    c.state = CtaState::Suspended;
    run_.ctaSaves++;
    uint32_t bytes = ctaStateBytesFor(c);
    run_.ctaStateBytes += bytes;
    if (!cfg_.virtualizationFree) {
        mem_.port(c.smId).write(now,
                                kCtaStateBase + c.token * kCtaStateStride,
                                bytes, MemClass::CtaState);
    }
    maybeResumeReady(now, cta);
}

void
Gpu::maybeResumeReady(uint64_t now, uint32_t cta)
{
    (void)now;
    CtaExec &c = ctas_[cta];
    if (c.state != CtaState::Suspended)
        return;
    for (const auto &w : c.warps) {
        if (w.phase != WarpPhase::TraceDone &&
            w.phase != WarpPhase::Finished) {
            return;
        }
    }
    // Every traced warp has its results: inject into the CTA
    // scheduler's (prioritized) resume queue via the RT unit's path.
    c.state = CtaState::ResumeQueued;
    sms_[c.smId].resumeQueue.push_back(cta);
    resumeQueued_++;
}

void
Gpu::onWarpTraceDone(uint64_t now, uint64_t token,
                     std::vector<LaneHit> &&hits)
{
    auto it = tokenMap_.find(token);
    assert(it != tokenMap_.end());
    auto [cta, warp] = it->second;
    tokenMap_.erase(it);

    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];
    w.pendingHits = std::move(hits);

    if (c.state == CtaState::Resident) {
        shadeWarp(now, cta, warp);
    } else {
        w.phase = WarpPhase::TraceDone;
        maybeResumeReady(now, cta);
    }
}

void
Gpu::shadeWarp(uint64_t now, uint32_t cta, uint32_t warp)
{
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];

    // Functional shading: consume hits, sample next-bounce rays.
    for (const auto &lh : w.pendingHits) {
        LaneCtx &lane = w.lanes[lh.lane];
        assert(lane.traced);
        if (!run_.primaryHits.empty() && lane.path.bounce == 0)
            run_.primaryHits[lane.path.pixel] = lh.hit;
        tracer_.shade(lane.path, lh.hit);
    }
    w.pendingHits.clear();
    w.aliveLanes = 0;
    for (auto &lane : w.lanes)
        w.aliveLanes += lane.path.alive ? 1 : 0;

    scheduleAlu(now, cta, warp, cfg_.shadeAluInstrs);
}

void
Gpu::onAluDone(uint64_t now, uint32_t cta, uint32_t warp)
{
    aluRounds_++;
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];
    assert(w.phase == WarpPhase::Alu);

    if (w.aliveLanes > 0) {
        issueTrace(now, cta, warp);
    } else {
        finishWarp(cta, warp);
        checkCtaFinished(now, cta);
    }
}

void
Gpu::finishWarp(uint32_t cta, uint32_t warp)
{
    CtaExec &c = ctas_[cta];
    WarpExec &w = c.warps[warp];
    w.phase = WarpPhase::Finished;
    for (auto &lane : w.lanes)
        run_.framebuffer[lane.path.pixel] = lane.path.radiance;
}

void
Gpu::checkCtaFinished(uint64_t now, uint32_t cta)
{
    (void)now;
    CtaExec &c = ctas_[cta];
    for (const auto &w : c.warps)
        if (w.phase != WarpPhase::Finished)
            return;
    assert(c.state == CtaState::Resident);
    SmState &sm = sms_[c.smId];
    sm.ctasResident--;
    sm.warpsUsed -= uint32_t(c.warps.size());
    sm.regsUsed -= c.threadCount * cfg_.regsPerThread;
    launchBlocked_ = false;
    c.state = CtaState::Finished;
    ctasFinished_++;
}

std::string
Gpu::simStateDump(uint64_t now) const
{
    std::ostringstream os;
    os << "  cycle=" << now << " ctas=" << ctasFinished_ << "/"
       << ctas_.size() << " finished, " << pendingCtas_.size()
       << " pending launch, " << events_.size() << " host events";
    uint32_t suspended = 0, resumeq = 0;
    for (const auto &c : ctas_) {
        if (c.state == CtaState::Suspended)
            suspended++;
        if (c.state == CtaState::ResumeQueued)
            resumeq++;
    }
    os << ", " << suspended << " suspended, " << resumeq
       << " resume-queued\n";
    for (uint32_t s = 0; s < cfg_.numSms; s++) {
        const SmState &sm = sms_[s];
        os << "  sm" << s << ": ctas=" << sm.ctasResident
           << " warps=" << sm.warpsUsed
           << " acceptQ=" << sm.acceptQueue.size()
           << " resumeQ=" << sm.resumeQueue.size() << " nextEvent=";
        if (rtNextEvent_[s] == kNoEvent)
            os << "idle";
        else
            os << rtNextEvent_[s];
        std::string rt = rtUnits_[s]->debugStatus();
        if (!rt.empty())
            os << " | " << rt;
        os << "\n";
    }
    // Hang diagnosis: the recent per-SM telemetry tail shows whether
    // occupancy or queue depth flatlined before the stall.
    if (telem_)
        telem_->recentDump(os);
    return os.str();
}

void
Gpu::servicePass(uint64_t now)
{
    for (uint32_t s = 0; s < cfg_.numSms; s++)
        retryAccepts(now, s);
    tryResume(now);
    tryLaunch(now);
}

// ---- checkpoint / restore (DESIGN.md §7) ----------------------------

void
Gpu::setSnapshotPolicy(const SnapshotPolicy &policy)
{
    if (ran_)
        throw std::logic_error(
            "Gpu::setSnapshotPolicy must be called before run()");
    snapPolicy_ = policy;
}

void
Gpu::saveState(Serializer &s) const
{
    s.beginChunk("GPU0");
    s.u64(cfg_.fingerprint());
    s.u64(lastNow_);

    // Mid-run RunStats subset; the rest (cycles, rt, mem, miss-rate
    // series) is derived after the main loop and never live mid-run.
    s.vecPod(run_.framebuffer);
    s.u64(run_.aluLaneInstrs);
    s.u64(run_.raysTraced);
    s.u64(run_.ctasLaunched);
    s.u64(run_.ctaSaves);
    s.u64(run_.ctaRestores);
    s.u64(run_.ctaStateBytes);
    s.vecPod(run_.primaryHits);

    s.u64(ctas_.size());
    for (const CtaExec &c : ctas_) {
        s.u32(c.token);
        s.u32(c.smId);
        s.u8(uint8_t(c.state));
        s.u32(c.firstPixel);
        s.u32(c.threadCount);
        s.u64(c.warps.size());
        for (const WarpExec &w : c.warps) {
            s.u32(w.index);
            s.u8(uint8_t(w.phase));
            s.u64(w.token);
            s.u32(w.aliveLanes);
            s.u64(w.pendingHits.size());
            for (const LaneHit &lh : w.pendingHits) {
                s.u8(lh.lane);
                s.pod(lh.hit);
            }
            s.u64(w.lanes.size());
            for (const LaneCtx &lane : w.lanes) {
                // PathState field by field: the struct has padding.
                s.u32(lane.path.pixel);
                s.pod(lane.path.throughput);
                s.pod(lane.path.radiance);
                s.u8(lane.path.bounce);
                s.b(lane.path.alive);
                s.pod(lane.path.ray);
                s.pod(lane.hit);
                s.b(lane.traced);
            }
        }
    }

    for (const SmState &sm : sms_) {
        s.u32(sm.ctasResident);
        s.u32(sm.warpsUsed);
        s.u32(sm.regsUsed);
        s.u64(sm.aluBusyUntil);
        s.u64(sm.acceptQueue.size());
        for (const auto &[cta, warp] : sm.acceptQueue) {
            s.u32(cta);
            s.u32(warp);
        }
        s.u64(sm.resumeQueue.size());
        for (uint32_t cta : sm.resumeQueue)
            s.u32(cta);
    }

    s.u64(pendingCtas_.size());
    for (uint32_t c : pendingCtas_)
        s.u32(c);
    s.u32(ctasFinished_);
    s.b(launchBlocked_);
    s.u32(resumeQueued_);

    // Host events: drain a copy in pop order; re-pushing on load
    // rebuilds an equivalent priority queue (ordering is a total
    // function of (cycle, seq), both preserved).
    auto events = events_;
    s.u64(events.size());
    while (!events.empty()) {
        const Event &e = events.top();
        s.u64(e.cycle);
        s.u64(e.seq);
        s.u8(uint8_t(e.type));
        s.u32(e.cta);
        s.u32(e.warp);
        events.pop();
    }
    s.u64(eventSeq_);

    // Token map sorted by token: unordered_map iteration order is
    // layout-dependent and must not leak into the file.
    std::vector<std::pair<uint64_t, std::pair<uint32_t, uint32_t>>> toks(
        tokenMap_.begin(), tokenMap_.end());
    std::sort(toks.begin(), toks.end());
    s.u64(toks.size());
    for (const auto &[tok, cw] : toks) {
        s.u64(tok);
        s.u32(cw.first);
        s.u32(cw.second);
    }
    s.u64(nextToken_);

    s.vecPod(rtNextEvent_);
    s.endChunk();

    // Sampler bookkeeping (inert — all defaults — for full runs).
    // Snapshots are only captured from detailed phases; a fast-forward
    // leg never reaches the capture point, so functionalMode_ is not
    // serialized.
    s.beginChunk("SMPL");
    s.b(samp_.active);
    s.u8(uint8_t(samp_.phase));
    s.b(samp_.inInterval);
    s.u64(samp_.phaseEndCycle);
    s.u64(samp_.workEndTarget);
    s.u64(samp_.intervalStartCycle);
    s.u64(samp_.startWork);
    s.u64(samp_.startRounds);
    s.u64(samp_.lastIvRounds);
    s.u64(samp_.lastIvCycles);
    s.u64(samp_.backlogTarget);
    s.u64(samp_.warmupMinCycle);
    s.u64(samp_.stratumStartRounds);
    s.u64(samp_.gapStartRounds);
    s.u64(aluRounds_);
    s.vecPod(samp_.startCounters);
    s.u64(samp_.ffRaysTotal);
    s.u64(samp_.cfgFp);
    samp_.acc.saveState(s);
    s.endChunk();

    mem_.saveState(s);
    for (const auto &unit : rtUnits_)
        unit->saveState(s);
    // Shared prediction table (only when enabled; predictShared is
    // part of the config fingerprint, so presence always matches).
    if (sharedPredict_)
        sharedPredict_->saveState(s);
    // Telemetry streams. cfg_.telem is deliberately outside the
    // fingerprint, so presence is NOT checked by the fingerprint guard:
    // resuming must run under the same TRT_TELEM* knobs (a mismatch
    // fails the next chunk tag check). Channels are drained — captures
    // happen only after telemCommit().
    if (telem_)
        telem_->saveState(s);
}

void
Gpu::loadState(Deserializer &d)
{
    d.beginChunk("GPU0");
    if (d.u64() != cfg_.fingerprint())
        throw SnapshotError(
            "snapshot: GpuConfig fingerprint mismatch (snapshot was "
            "taken under a different simulation configuration)");
    lastNow_ = d.u64();

    auto fb = d.vecPod<Vec3>();
    if (fb.size() != run_.framebuffer.size())
        throw SnapshotError("snapshot: framebuffer size mismatch");
    run_.framebuffer = std::move(fb);
    run_.aluLaneInstrs = d.u64();
    run_.raysTraced = d.u64();
    run_.ctasLaunched = d.u64();
    run_.ctaSaves = d.u64();
    run_.ctaRestores = d.u64();
    run_.ctaStateBytes = d.u64();
    auto hits = d.vecPod<HitRecord>();
    if (hits.size() != run_.primaryHits.size())
        throw SnapshotError("snapshot: primaryHits size mismatch");
    run_.primaryHits = std::move(hits);

    if (d.u64() != ctas_.size())
        throw SnapshotError("snapshot: CTA count mismatch");
    for (CtaExec &c : ctas_) {
        c.token = d.u32();
        c.smId = d.u32();
        uint8_t state = d.u8();
        if (state > uint8_t(CtaState::Finished))
            throw SnapshotError("snapshot: CTA state out of range");
        c.state = CtaState(state);
        c.firstPixel = d.u32();
        c.threadCount = d.u32();
        if (d.u64() != c.warps.size())
            throw SnapshotError("snapshot: warp count mismatch");
        for (WarpExec &w : c.warps) {
            w.index = d.u32();
            uint8_t phase = d.u8();
            if (phase > uint8_t(WarpPhase::Finished))
                throw SnapshotError("snapshot: warp phase out of range");
            w.phase = WarpPhase(phase);
            w.token = d.u64();
            w.aliveLanes = d.u32();
            w.pendingHits.clear();
            uint64_t nhits = d.u64();
            w.pendingHits.reserve(nhits);
            for (uint64_t i = 0; i < nhits; i++) {
                LaneHit lh;
                lh.lane = d.u8();
                lh.hit = d.pod<HitRecord>();
                if (lh.lane >= w.lanes.size())
                    throw SnapshotError(
                        "snapshot: pending-hit lane out of range");
                w.pendingHits.push_back(lh);
            }
            if (d.u64() != w.lanes.size())
                throw SnapshotError("snapshot: lane count mismatch");
            for (LaneCtx &lane : w.lanes) {
                lane.path.pixel = d.u32();
                lane.path.throughput = d.pod<Vec3>();
                lane.path.radiance = d.pod<Vec3>();
                lane.path.bounce = d.u8();
                lane.path.alive = d.b();
                lane.path.ray = d.pod<Ray>();
                lane.hit = d.pod<HitRecord>();
                lane.traced = d.b();
            }
        }
    }

    for (SmState &sm : sms_) {
        sm.ctasResident = d.u32();
        sm.warpsUsed = d.u32();
        sm.regsUsed = d.u32();
        sm.aluBusyUntil = d.u64();
        sm.acceptQueue.clear();
        uint64_t naccept = d.u64();
        for (uint64_t i = 0; i < naccept; i++) {
            uint32_t cta = d.u32();
            uint32_t warp = d.u32();
            sm.acceptQueue.push_back({cta, warp});
        }
        sm.resumeQueue.clear();
        uint64_t nresume = d.u64();
        for (uint64_t i = 0; i < nresume; i++)
            sm.resumeQueue.push_back(d.u32());
    }

    pendingCtas_.clear();
    uint64_t npending = d.u64();
    for (uint64_t i = 0; i < npending; i++)
        pendingCtas_.push_back(d.u32());
    ctasFinished_ = d.u32();
    launchBlocked_ = d.b();
    resumeQueued_ = d.u32();

    events_ = {};
    uint64_t nevents = d.u64();
    for (uint64_t i = 0; i < nevents; i++) {
        Event e;
        e.cycle = d.u64();
        e.seq = d.u64();
        uint8_t type = d.u8();
        if (type > uint8_t(Event::CtaRestored))
            throw SnapshotError("snapshot: event type out of range");
        e.type = Event::Type(type);
        e.cta = d.u32();
        e.warp = d.u32();
        events_.push(e);
    }
    eventSeq_ = d.u64();

    tokenMap_.clear();
    uint64_t ntoks = d.u64();
    for (uint64_t i = 0; i < ntoks; i++) {
        uint64_t tok = d.u64();
        uint32_t cta = d.u32();
        uint32_t warp = d.u32();
        tokenMap_[tok] = {cta, warp};
    }
    nextToken_ = d.u64();

    auto next = d.vecPod<uint64_t>();
    if (next.size() != rtNextEvent_.size())
        throw SnapshotError("snapshot: SM count mismatch");
    rtNextEvent_ = std::move(next);
    d.endChunk();

    d.beginChunk("SMPL");
    samp_.active = d.b();
    uint8_t phase = d.u8();
    if (phase > uint8_t(SamplePhase::Warmup))
        throw SnapshotError("snapshot: sample phase out of range");
    samp_.phase = SamplePhase(phase);
    samp_.inInterval = d.b();
    samp_.phaseEndCycle = d.u64();
    samp_.workEndTarget = d.u64();
    samp_.intervalStartCycle = d.u64();
    samp_.startWork = d.u64();
    samp_.startRounds = d.u64();
    samp_.lastIvRounds = d.u64();
    samp_.lastIvCycles = d.u64();
    samp_.backlogTarget = d.u64();
    samp_.warmupMinCycle = d.u64();
    samp_.stratumStartRounds = d.u64();
    samp_.gapStartRounds = d.u64();
    aluRounds_ = d.u64();
    samp_.startCounters = d.vecPod<uint64_t>();
    samp_.ffRaysTotal = d.u64();
    samp_.cfgFp = d.u64();
    samp_.acc.loadState(d);
    d.endChunk();
    functionalMode_ = false;
    ffLegTraced_ = 0;

    mem_.loadState(d);
    for (const auto &unit : rtUnits_)
        unit->loadState(d);
    if (sharedPredict_)
        sharedPredict_->loadState(d);
    if (telem_)
        telem_->loadState(d);

    // Transients are empty at the serial commit boundary by
    // construction; reset them in case a failed earlier load ran.
    inTickPhase_ = false;
    for (auto &v : pendingDone_)
        v.clear();
    tickList_.clear();

    ran_ = false;
    restored_ = true;
}

void
Gpu::maybeSnapshot(uint64_t now)
{
    bool halt =
        snapPolicy_.haltAtCycle != 0 && now >= snapPolicy_.haltAtCycle;
    bool periodic =
        snapPolicy_.everyCycles != 0 && now >= nextSnapshotAt_;
    if (!halt && !periodic)
        return;
    if (snapPolicy_.everyCycles != 0)
        nextSnapshotAt_ = (now / snapPolicy_.everyCycles + 1) *
                          snapPolicy_.everyCycles;

    // detailedLoop already committed telemetry this boundary; the
    // channels are drained, which Telemetry::saveState insists on.
    Serializer s;
    saveState(s);
    std::filesystem::path path = writeSnapshotFile(
        snapPolicy_.dir, snapPolicy_.worldFp, now, s.bytes());
    // Trace the capture *after* serializing: the event belongs to this
    // process's live stream, not to the snapshot — a resumed run's
    // trace must be byte-identical to an uninterrupted run's, which
    // never saw a capture.
    if (telem_)
        telem_->gpuChannel().event(now, TelemEventKind::SnapshotCapture,
                                   now);
    if (halt)
        throw SimulationHalted(now, path.string());
}

void
Gpu::telemCommit(uint64_t now)
{
    if (telem_->gpuSampleDue(now)) {
        TelemGpuSample g;
        g.cycle = now;
        const MemClassStats &n = mem_.classStats(MemClass::BvhNode);
        const MemClassStats &t = mem_.classStats(MemClass::Triangle);
        g.bvhL1Accesses = n.l1Accesses + t.l1Accesses;
        g.bvhL1Misses = n.l1Misses + t.l1Misses;
        g.bvhL2Accesses = n.l2Accesses + t.l2Accesses;
        g.bvhL2Misses = n.l2Misses + t.l2Misses;
        MemClassStats total = mem_.totalStats();
        g.dramReadBytes = total.dramReadBytes;
        g.dramWriteBytes = total.dramWriteBytes;
        telem_->pushGpuSample(g);
    }
    telem_->commit();
}

RunStats
Gpu::run()
{
    if (ran_)
        throw std::logic_error("Gpu::run() may only be called once");
    if (samp_.active)
        throw std::logic_error(
            "Gpu::run(): restored snapshot belongs to a sampled run; "
            "resume with runSampled() under the same TRT_SAMPLE_* "
            "parameters");
    ran_ = true;

    // A restored run continues from the captured boundary: the saved
    // state already reflects the servicePass that closed that cycle
    // (and its restored telemetry already holds this phase marker).
    if (!restored_) {
        if (telem_)
            telem_->gpuChannel().event(lastNow_,
                                       TelemEventKind::PhaseBegin,
                                       uint64_t(TelemPhase::Detailed));
        servicePass(lastNow_);
    }
    if (snapPolicy_.everyCycles != 0)
        nextSnapshotAt_ = (lastNow_ / snapPolicy_.everyCycles + 1) *
                          snapPolicy_.everyCycles;

    detailedLoop(kNoEvent);
    finalizeStats();
    return run_;
}

bool
Gpu::detailedLoop(uint64_t stopAtCycle)
{
    uint64_t now = lastNow_;
    uint64_t same_cycle_iters = 0;
    uint64_t last_now = ~0ull;

    while (ctasFinished_ < ctas_.size()) {
        uint64_t next = kNoEvent;
        if (!events_.empty())
            next = events_.top().cycle;
        for (uint64_t ev : rtNextEvent_)
            next = std::min(next, ev);
        if (next == kNoEvent) {
            throw std::logic_error(
                "simulation deadlock: no pending events but " +
                std::to_string(ctas_.size() - ctasFinished_) +
                " CTAs unfinished\n" + simStateDump(now));
        }

        now = std::max(now, next);
        if (now == last_now) {
            if (++same_cycle_iters > 100000)
                throw std::logic_error("simulation livelock at cycle " +
                                       std::to_string(now) + "\n" +
                                       simStateDump(now));
        } else {
            same_cycle_iters = 0;
            last_now = now;
        }
        lastNow_ = now;

        while (!events_.empty() && events_.top().cycle <= now) {
            Event ev = events_.top();
            events_.pop();
            switch (ev.type) {
              case Event::AluDone:
                onAluDone(now, ev.cta, ev.warp);
                break;
              case Event::CtaRestored: {
                CtaExec &c = ctas_[ev.cta];
                for (auto &w : c.warps)
                    if (w.phase == WarpPhase::TraceDone)
                        shadeWarp(now, ev.cta, w.index);
                break;
              }
            }
        }

        // Tick due SMs. Ticks are mutually independent once memory
        // traffic is deferred (two-phase protocol, memsys.hh), so they
        // may run on worker threads; commitIssuePhase() then resolves
        // all recorded requests in (sm, seq) order — exactly what the
        // old serial SM loop produced — and the buffered completions
        // drain in the same SM order. RunStats is bit-identical at any
        // thread count.
        tickList_.clear();
        for (uint32_t s = 0; s < cfg_.numSms; s++)
            if (rtNextEvent_[s] <= now)
                tickList_.push_back(s);

        if (!tickList_.empty()) {
            mem_.beginIssuePhase();
            inTickPhase_ = true;
            if (pool_) {
                pool_->run(uint32_t(tickList_.size()),
                           [this, now](uint32_t i) {
                               rtUnits_[tickList_[i]]->tick(now);
                           });
            } else {
                for (uint32_t s : tickList_)
                    rtUnits_[s]->tick(now);
            }
            mem_.commitIssuePhase();
            for (uint32_t s : tickList_)
                rtUnits_[s]->onMemCommit(now);
            inTickPhase_ = false;
            for (uint32_t s : tickList_) {
                for (auto &d : pendingDone_[s])
                    onWarpTraceDone(now, d.token, std::move(d.hits));
                pendingDone_[s].clear();
            }
            for (uint32_t s : tickList_)
                refreshRtEvent(s);
        }
        servicePass(now);

        // Shared-predictor commit: apply the trainings the tick phase
        // buffered, in SM order — lookups see them from the next cycle
        // on, identically at any thread count.
        if (sharedPredict_)
            sharedPredict_->flush();

        // Serial commit boundary: every transient is quiescent here,
        // the only legal capture point (DESIGN.md §7) and the only
        // legal telemetry merge point (DESIGN.md §12). Telemetry first,
        // so a snapshot serializes fully drained channels.
        if (telem_)
            telemCommit(now);
        if (snapPolicy_.captureEnabled())
            maybeSnapshot(now);
        if (now >= stopAtCycle)
            return false;
        // Fixed-work measured intervals (sampled mode): close the
        // interval once the target number of CTAs has retired.
        if (samp_.workEndTarget != 0 &&
            ctasFinished_ >= samp_.workEndTarget)
            return false;
        // Condition-based warm-up end (sampled mode): the fast-forward
        // drain emptied the RT units; measurement may start once their
        // ray population has rebuilt to the pre-drain level (and the
        // respread window has passed).
        if (samp_.backlogTarget != 0 && now >= samp_.warmupMinCycle &&
            rtBacklog() >= samp_.backlogTarget)
            return false;
        // The backlog can never rebuild once the machine enters its
        // final wave; stop warming up and let the exact tail run.
        if (samp_.backlogTarget != 0 && inFinalWave())
            return false;
    }
    return true;
}

void
Gpu::finalizeStats()
{
    // Final tick so trailing intervals are accounted.
    for (uint32_t s = 0; s < cfg_.numSms; s++)
        rtUnits_[s]->tick(lastNow_);

    run_.cycles = lastNow_;
    for (const auto &u : rtUnits_)
        run_.rt.accumulate(u->stats());
    for (size_t c = 0; c < run_.mem.size(); c++)
        run_.mem[c] = mem_.classStats(MemClass(c));
    run_.bvhL1MissRate = mem_.bvhL1MissRate();
    if (mem_.bvhSeries())
        run_.bvhMissSeries = mem_.bvhSeries()->resampled(64);

    // Drain whatever the final ticks staged, then write the trace
    // files. This is the only write site: a halted (snapshot-resume)
    // run leaves no partial file, and the resumed run emits the
    // complete streams it restored plus its own.
    if (telem_) {
        telemCommit(lastNow_);
        telem_->writeFiles();
    }
}

} // namespace trt
