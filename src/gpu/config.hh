/**
 * @file
 * Simulated GPU configuration. Defaults follow the paper's Table 1
 * (Vulkan-Sim configuration) plus the workload parameters of section 5.1
 * and the virtualized-treelet-queue parameters of sections 4 and 5.
 */

#ifndef TRT_GPU_CONFIG_HH
#define TRT_GPU_CONFIG_HH

#include <cstdint>
#include <string>

#include "memsys/memsys.hh"
#include "telemetry/telemetry.hh"

namespace trt
{

/** Which RT-unit architecture to simulate. */
enum class RtArch : uint8_t
{
    Baseline,        //!< Ray-stationary RT unit (treelet traversal order).
    TreeletPrefetch, //!< Chou et al. MICRO'23 treelet prefetcher.
    TreeletQueues,   //!< This paper: dynamic treelet queues.
};

const char *rtArchName(RtArch a);

/**
 * Dispatch policy: which ray runs next, in which warp, starting at
 * which node (DESIGN.md §9). The policy object owns the RT unit's
 * pending-ray pool and the scheduling decisions; the unit keeps the
 * pipeline/timing machinery. Every policy produces bit-identical
 * rendered frames — policies only move *when* rays run and *where*
 * traversal starts, never what a ray finally hits.
 */
enum class DispatchPolicyKind : uint8_t
{
    Fifo,    //!< Arrival order, warps kept intact (the seed baseline).
    Vtq,     //!< The paper's virtualized-treelet-queue heuristics.
    Reorder, //!< Morton/octant-binned ray reordering (Meister et al.).
    Predict, //!< Hash-based path prediction (Demoullin/Gubran/Aamodt).
};

const char *dispatchPolicyName(DispatchPolicyKind k);

/** Parse a TRT_POLICY value ("baseline"/"fifo", "vtq", "reorder",
 *  "predict"); false on unknown names. */
bool parseDispatchPolicy(const std::string &name, DispatchPolicyKind &out);

/** Full simulation configuration. */
struct GpuConfig
{
    // ------ Table 1 -----------------------------------------------------
    uint32_t numSms = 16;
    uint32_t maxWarpsPerSm = 32;
    uint32_t warpSize = 32;
    uint32_t maxCtasPerSm = 16;
    uint32_t regsPerSm = 32768;
    MemConfig mem;                 //!< L1/L2/DRAM (Table 1 defaults).
    uint32_t rtUnitsPerSm = 1;
    uint32_t warpBufferSize = 1;   //!< RT-unit warp slots.

    // ------ Shader model -------------------------------------------------
    /** Threads per raygen CTA (an 8x8 pixel tile). */
    uint32_t ctaSize = 64;
    /** ALU instructions of the raygen shader before traceRayEXT(). */
    uint32_t raygenAluInstrs = 32;
    /** ALU instructions of shading per bounce after traversal returns. */
    uint32_t shadeAluInstrs = 48;
    /** Registers per thread (ptxas on the LumiBench raygen shader,
     *  paper section 6.6). */
    uint32_t regsPerThread = 10;
    /** SIMT stack entries saved per warp on CTA suspension. */
    uint32_t simtStackDepth = 4;

    // ------ RT unit micro-parameters --------------------------------
    /** BVH addresses the memory scheduler pushes per cycle. */
    uint32_t rtMemIssuePerCycle = 1;
    /** Box-test pipeline latency (one wide node, all children). */
    uint32_t isectBoxLatency = 10;
    /** Triangle-test pipeline latency (one leaf block). */
    uint32_t isectTriLatency = 18;
    /** Node visits entering the intersection pipeline per cycle. */
    uint32_t isectIssuePerCycle = 1;
    /** Extra cycles to dequantize a compressed node's child bounds
     *  before the box tests (charged for any quantized layout; RayFlex
     *  models the same decode stage in the RT-unit datapath). */
    uint32_t nodeDecodeLatency = 4;
    /** Extra box-test cycles for an 8-wide node: the second 4-wide
     *  AABB batch through the same intersection pipeline. */
    uint32_t wideBoxExtraLatency = 5;

    // ------ Workload (section 5.1) -----------------------------------
    uint32_t imageWidth = 256;   //!< As the paper (section 5.1).
    uint32_t imageHeight = 256;
    uint32_t maxBounces = 3;     //!< Secondary bounces at 1 spp.
    float contributionCutoff = 0.02f;

    // ------ Architecture selection and VTQ parameters ------------------
    RtArch arch = RtArch::Baseline;
    /** Ray virtualization (section 3.1/4.1). */
    bool rayVirtualization = false;
    /** Fig. 16: make CTA save/restore free to isolate its overhead. */
    bool virtualizationFree = false;
    /** Max concurrent rays per SM under virtualization (section 5). */
    uint32_t maxVirtualRaysPerSm = 4096;
    /** Underpopulation threshold: min rays for a treelet queue to be
     *  dispatched treelet-stationary (sections 4.4, 6.2). */
    uint32_t queueThreshold = 128;
    /** Group underpopulated queues into ray-stationary warps
     *  (section 4.4). Off = the naive treelet implementation. */
    bool groupUnderpopulated = true;
    /** Warp repacking threshold: repack when fewer rays are active
     *  (section 4.5). 0 disables repacking. */
    uint32_t repackThreshold = 22;
    /** Preload the next treelet + ray data (section 4.3). */
    bool preloadEnabled = true;
    /** Unique treelets within a warp before the initial ray-stationary
     *  phase ends for that warp (section 3.2 step 1). 0 terminates the
     *  warp at its first treelet-boundary divergence, which measures
     *  best and matches the paper's short initial phase (Fig. 14). */
    uint32_t initialDivergeThreshold = 0;
    /** Skip the treelet-stationary phase entirely (section 6.4's
     *  "treelet queue threshold of zero" experiment). */
    bool skipTreeletPhase = false;

    // ------ Dispatch policy (DESIGN.md §9) ----------------------------
    /** Strategy object the RT units consult for warp formation and
     *  scheduling decisions. Fifo reproduces the seed baseline timing
     *  exactly; Vtq holds the paper's treelet-queue heuristics and is
     *  what virtualizedTreeletQueues() selects. */
    DispatchPolicyKind policy = DispatchPolicyKind::Fifo;
    /** Reorder policy: bits per axis of the Morton origin grid over the
     *  scene bounds (bin key = 3*bits morton + 3 direction-octant
     *  bits). More bits = finer bins = stronger sorting. */
    uint32_t reorderBinBits = 6;
    /** Predict policy: log2 of the per-RT-unit direct-mapped
     *  prediction-table entries (quantized ray hash -> leaf block). */
    uint32_t predictTableBits = 12;
    /** Predict policy: share one prediction table across all SMs' RT
     *  units (TRT_PREDICT_SHARED; one RT unit per SM in this model, so
     *  per-SM sharing and global sharing coincide). Lookups read the
     *  shared table during the parallel tick phase; training updates
     *  are buffered per SM and applied in SM order at the serial cycle
     *  commit, keeping the fan-out bit-identical at any thread count. */
    bool predictShared = false;

    // ------ Treelet prefetching baseline (Chou et al.) ----------------
    /** Min cycles between prefetch issues (keeps the prefetcher from
     *  thrashing when the popular treelet flips every few cycles). */
    uint32_t prefetchCooldown = 100;
    /** Min rays on a treelet before it is worth prefetching. */
    uint32_t prefetchMinRays = 2;

    // ------ Host execution (wall clock only) --------------------------
    /** Worker threads for SM tick fan-out. 0 = take TRT_SIM_THREADS
     *  from the environment (default 1). Any value yields bit-identical
     *  RunStats — the two-phase memory commit serializes all shared
     *  state — so this is deliberately excluded from fingerprint(). */
    uint32_t simThreads = 0;
    /** Telemetry knobs (TRT_TELEM*, DESIGN.md §12). Pure observability:
     *  sampling and tracing never change RunStats, so — like
     *  simThreads — deliberately excluded from fingerprint(). The
     *  harness bypasses run-cache *loads* when telemetry is on (a hit
     *  would skip the simulation and produce no trace). */
    TelemetryConfig telem;

    /** Convenience: the full proposed configuration. */
    static GpuConfig
    virtualizedTreeletQueues()
    {
        GpuConfig c;
        c.arch = RtArch::TreeletQueues;
        c.policy = DispatchPolicyKind::Vtq;
        c.rayVirtualization = true;
        c.mem.l2ReservedBytes = 64 * 1024;
        return c;
    }

    /** Convenience: the treelet prefetching comparison point. */
    static GpuConfig
    treeletPrefetch()
    {
        GpuConfig c;
        c.arch = RtArch::TreeletPrefetch;
        return c;
    }

    /**
     * Canonical configuration for a dispatch policy: Vtq implies the
     * full proposed architecture (treelet queues + ray virtualization);
     * Fifo/Reorder/Predict run on the baseline ray-stationary unit.
     * This is what TRT_POLICY and bench_policy select.
     */
    static GpuConfig forPolicy(DispatchPolicyKind kind);

    /**
     * Hash of every simulation-affecting field (including the embedded
     * MemConfig), hashed field by field so struct padding can't leak
     * into the key. Used by the harness run cache: two configs with
     * equal fingerprints produce identical RunStats for the same scene.
     */
    uint64_t fingerprint() const;
};

} // namespace trt

#endif // TRT_GPU_CONFIG_HH
