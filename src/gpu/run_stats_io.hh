/**
 * @file
 * Versioned binary serialization of RunStats, used by the harness run
 * cache (.trt_cache/runs/) to memoize cycle-level simulations across
 * bench invocations.
 */

#ifndef TRT_GPU_RUN_STATS_IO_HH
#define TRT_GPU_RUN_STATS_IO_HH

#include <iosfwd>

#include "gpu/gpu.hh"

namespace trt
{

struct RunStatsIo
{
    /** Bump on any RunStats/RtStats/MemClassStats layout change. */
    static constexpr uint32_t kVersion = 4; //!< v4: counter-registry
                                            //!< order, + treeletSwitches

    static void save(std::ostream &os, const RunStats &st);

    /** Returns false (leaving @p st unspecified) on magic/version
     *  mismatch or truncation. */
    static bool load(std::istream &is, RunStats &st);

    /**
     * FNV-1a over the serialized bytes of @p st: covers every field
     * save() covers (cycles, framebuffer, all counters, miss series),
     * with no padding leakage. Used by the determinism tests and CI to
     * compare runs across TRT_SIM_THREADS settings.
     */
    static uint64_t fingerprint(const RunStats &st);
};

} // namespace trt

#endif // TRT_GPU_RUN_STATS_IO_HH
