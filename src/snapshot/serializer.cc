#include "snapshot/serializer.hh"

#include <array>

namespace trt
{

namespace
{

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < size; i++)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
Serializer::beginChunk(const char *tag)
{
    if (std::strlen(tag) != 4)
        throw SnapshotError("snapshot: chunk tag must be 4 chars");
    buf_.insert(buf_.end(), tag, tag + 4);
    chunkStack_.push_back(buf_.size());
    u64(0); // size placeholder
}

void
Serializer::endChunk()
{
    if (chunkStack_.empty())
        throw SnapshotError("snapshot: endChunk without beginChunk");
    size_t size_off = chunkStack_.back();
    chunkStack_.pop_back();
    uint64_t payload = buf_.size() - (size_off + 8);
    std::memcpy(buf_.data() + size_off, &payload, 8);
}

void
Deserializer::beginChunk(const char *tag)
{
    char got[5] = {};
    raw(got, 4);
    if (std::memcmp(got, tag, 4) != 0)
        throw SnapshotError(std::string("snapshot: expected chunk '") +
                            tag + "', found '" + got + "'");
    uint64_t payload = u64();
    if (payload > remaining())
        throw SnapshotError(std::string("snapshot: chunk '") + tag +
                            "' truncated");
    chunkEnds_.push_back(pos_ + size_t(payload));
}

void
Deserializer::endChunk()
{
    if (chunkEnds_.empty())
        throw SnapshotError("snapshot: endChunk without beginChunk");
    size_t end = chunkEnds_.back();
    chunkEnds_.pop_back();
    if (pos_ != end)
        throw SnapshotError(
            "snapshot: chunk size mismatch (schema drift between "
            "saveState and loadState)");
}

} // namespace trt
