#include "snapshot/snapshot.hh"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/env.hh"

namespace trt
{

namespace
{

constexpr uint32_t kMagic = 0x54525453u; // 'TRTS' (LE "STRT" on disk)

struct SnapshotHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t worldFp;
    uint64_t cycle;
    uint64_t payloadBytes;
    uint32_t payloadCrc;
    uint32_t headerCrc;
};
static_assert(sizeof(SnapshotHeader) == 40);

std::string
fpHex(uint64_t fp)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)fp);
    return buf;
}

/** Parse "snap_<hexfp>_c<cycle>.trtsnap"; false if not a snapshot of
 *  @p worldFp. */
bool
parseSnapshotName(const std::string &name, uint64_t worldFp,
                  uint64_t &cycleOut)
{
    const std::string prefix = "snap_" + fpHex(worldFp) + "_c";
    const std::string suffix = ".trtsnap";
    if (name.size() <= prefix.size() + suffix.size())
        return false;
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0)
        return false;
    std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty())
        return false;
    uint64_t c = 0;
    for (char ch : digits) {
        if (ch < '0' || ch > '9')
            return false;
        c = c * 10 + uint64_t(ch - '0');
    }
    cycleOut = c;
    return true;
}

} // namespace

SnapshotPolicy
SnapshotPolicy::fromEnv(uint64_t worldFp)
{
    SnapshotPolicy p;
    p.everyCycles = envUInt("TRT_SNAPSHOT_EVERY", 0);
    p.haltAtCycle = envUInt("TRT_SNAPSHOT_HALT_AT", 0);
    p.dir = envString("TRT_SNAPSHOT_DIR", p.dir);
    p.keep = envFlag("TRT_SNAPSHOT_KEEP", false);
    p.worldFp = worldFp;
    return p;
}

std::string
snapshotFileName(uint64_t worldFp, uint64_t cycle)
{
    std::ostringstream ss;
    ss << "snap_" << fpHex(worldFp) << "_c" << cycle << ".trtsnap";
    return ss.str();
}

std::filesystem::path
writeSnapshotFile(const std::string &dir, uint64_t worldFp, uint64_t cycle,
                  const std::vector<uint8_t> &payload)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec); // best effort; open() reports failure

    SnapshotHeader h{};
    h.magic = kMagic;
    h.version = kSnapshotVersion;
    h.worldFp = worldFp;
    h.cycle = cycle;
    h.payloadBytes = payload.size();
    h.payloadCrc = crc32(payload.data(), payload.size());
    h.headerCrc = crc32(&h, offsetof(SnapshotHeader, headerCrc));

    fs::path final_path = fs::path(dir) / snapshotFileName(worldFp, cycle);
    fs::path tmp_path =
        final_path.string() + ".tmp." + std::to_string(getpid());
    {
        std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
        if (!os)
            throw SnapshotError("snapshot: cannot open " +
                                tmp_path.string() + " for writing");
        os.write(reinterpret_cast<const char *>(&h), sizeof(h));
        os.write(reinterpret_cast<const char *>(payload.data()),
                 std::streamsize(payload.size()));
        os.flush();
        if (!os) {
            os.close();
            fs::remove(tmp_path, ec);
            throw SnapshotError("snapshot: short write to " +
                                tmp_path.string());
        }
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        throw SnapshotError("snapshot: rename to " + final_path.string() +
                            " failed");
    }
    return final_path;
}

std::vector<uint8_t>
readSnapshotPayload(const std::filesystem::path &path,
                    uint64_t expectedWorldFp)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SnapshotError("snapshot: cannot open " + path.string());

    SnapshotHeader h{};
    is.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!is || is.gcount() != sizeof(h))
        throw SnapshotError("snapshot: truncated header in " +
                            path.string());
    if (h.magic != kMagic)
        throw SnapshotError("snapshot: bad magic in " + path.string());
    if (crc32(&h, offsetof(SnapshotHeader, headerCrc)) != h.headerCrc)
        throw SnapshotError("snapshot: header CRC mismatch in " +
                            path.string());
    if (h.version != kSnapshotVersion)
        throw SnapshotError("snapshot: version " +
                            std::to_string(h.version) + " != " +
                            std::to_string(kSnapshotVersion) + " in " +
                            path.string());
    if (h.worldFp != expectedWorldFp)
        throw SnapshotError("snapshot: fingerprint mismatch in " +
                            path.string() + " (snapshot " +
                            fpHex(h.worldFp) + ", world " +
                            fpHex(expectedWorldFp) + ")");
    if (h.payloadBytes > (1ull << 34))
        throw SnapshotError("snapshot: implausible payload size in " +
                            path.string());

    std::vector<uint8_t> payload(size_t(h.payloadBytes));
    is.read(reinterpret_cast<char *>(payload.data()),
            std::streamsize(payload.size()));
    if (!is || size_t(is.gcount()) != payload.size())
        throw SnapshotError("snapshot: truncated payload in " +
                            path.string());
    if (crc32(payload.data(), payload.size()) != h.payloadCrc)
        throw SnapshotError("snapshot: payload CRC mismatch in " +
                            path.string());
    return payload;
}

std::optional<std::filesystem::path>
findNewestValidSnapshot(const std::string &dir, uint64_t worldFp)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return std::nullopt;

    // Collect candidates sorted newest-first, then take the first one
    // that passes full validation (corrupt files are skipped, so a
    // torn newest snapshot falls back to the previous one).
    std::vector<std::pair<uint64_t, fs::path>> candidates;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        uint64_t cycle = 0;
        if (parseSnapshotName(entry.path().filename().string(), worldFp,
                              cycle))
            candidates.emplace_back(cycle, entry.path());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    for (const auto &[cycle, path] : candidates) {
        try {
            (void)readSnapshotPayload(path, worldFp);
            return path;
        } catch (const SnapshotError &e) {
            std::fprintf(stderr, "[snapshot] skipping %s: %s\n",
                         path.string().c_str(), e.what());
        }
    }
    return std::nullopt;
}

size_t
removeSnapshotsFor(const std::string &dir, uint64_t worldFp)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return 0;
    size_t removed = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        uint64_t cycle = 0;
        if (parseSnapshotName(entry.path().filename().string(), worldFp,
                              cycle)) {
            std::error_code rec;
            if (fs::remove(entry.path(), rec))
                removed++;
        }
    }
    return removed;
}

} // namespace trt
