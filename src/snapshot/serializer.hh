/**
 * @file
 * Versioned, chunked, CRC-guarded binary serialization for simulator
 * snapshots (DESIGN.md §7).
 *
 * The format is a flat byte stream of nested chunks. A chunk is a
 * 4-byte ASCII tag + u64 payload size + payload; sizes are backpatched
 * by endChunk(). The Deserializer verifies the tag on entry and the
 * exact end position on exit, so any drift between a component's
 * saveState and loadState (a field added on one side only) fails
 * loudly at the owning chunk instead of corrupting everything after
 * it. All integers are little-endian host order — snapshots are
 * same-machine artifacts keyed by a config+scene+build fingerprint,
 * not an interchange format.
 */

#ifndef TRT_SNAPSHOT_SERIALIZER_HH
#define TRT_SNAPSHOT_SERIALIZER_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace trt
{

/** Any snapshot capture/restore failure: CRC mismatch, truncation,
 *  tag/version/fingerprint mismatch, schema drift. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** CRC-32 (IEEE 802.3 polynomial, as zlib) over @p size bytes. */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/** Append-only binary writer with nested size-backpatched chunks. */
class Serializer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    u32(uint32_t v)
    {
        pod(v);
    }

    void
    u64(uint64_t v)
    {
        pod(v);
    }

    void
    f32(float v)
    {
        pod(v);
    }

    /** Raw bytes of any trivially-copyable, padding-free value. */
    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const uint8_t *>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Length-prefixed vector of padding-free PODs. */
    template <typename T>
    void
    vecPod(const std::vector<T> &v)
    {
        u64(v.size());
        for (const T &e : v)
            pod(e);
    }

    /** Open a chunk; @p tag must be exactly 4 ASCII characters. */
    void beginChunk(const char *tag);
    /** Close the innermost chunk, backpatching its size. */
    void endChunk();

    const std::vector<uint8_t> &
    bytes() const
    {
        return buf_;
    }

    std::vector<uint8_t>
    take()
    {
        return std::move(buf_);
    }

  private:
    std::vector<uint8_t> buf_;
    std::vector<size_t> chunkStack_; //!< Offsets of open size fields.
};

/** Bounds- and schema-checked reader for Serializer output. */
class Deserializer
{
  public:
    Deserializer(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deserializer(const std::vector<uint8_t> &buf)
        : Deserializer(buf.data(), buf.size())
    {
    }

    uint8_t
    u8()
    {
        uint8_t v;
        raw(&v, 1);
        return v;
    }

    bool
    b()
    {
        uint8_t v = u8();
        if (v > 1)
            throw SnapshotError("snapshot: bool field out of range");
        return v != 0;
    }

    uint32_t
    u32()
    {
        return pod<uint32_t>();
    }

    uint64_t
    u64()
    {
        return pod<uint64_t>();
    }

    float
    f32()
    {
        return pod<float>();
    }

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        raw(&v, sizeof(T));
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (n > remaining())
            throw SnapshotError("snapshot: truncated string");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      size_t(n));
        pos_ += size_t(n);
        return s;
    }

    template <typename T>
    std::vector<T>
    vecPod()
    {
        uint64_t n = u64();
        if (n > remaining() / sizeof(T))
            throw SnapshotError("snapshot: truncated vector");
        std::vector<T> v;
        v.reserve(size_t(n));
        for (uint64_t i = 0; i < n; i++)
            v.push_back(pod<T>());
        return v;
    }

    /** Enter a chunk, verifying its tag. */
    void beginChunk(const char *tag);
    /** Leave the innermost chunk, verifying every byte was consumed. */
    void endChunk();

    size_t
    remaining() const
    {
        return size_ - pos_;
    }

    bool
    atEnd() const
    {
        return pos_ == size_;
    }

  private:
    void
    raw(void *out, size_t n)
    {
        if (n > remaining())
            throw SnapshotError("snapshot: truncated stream");
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    std::vector<size_t> chunkEnds_; //!< Expected end offsets.
};

} // namespace trt

#endif // TRT_SNAPSHOT_SERIALIZER_HH
