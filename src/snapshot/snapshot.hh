/**
 * @file
 * Snapshot files: atomic on-disk capture of a full simulator state at
 * a cycle boundary, keyed by the same GpuConfig+BvhConfig+scene
 * fingerprint the run cache uses so a stale snapshot can never resume
 * against the wrong world (DESIGN.md §7).
 *
 * File layout (all little-endian host order):
 *
 *   [0]  u32 magic   'TRTS'
 *   [4]  u32 version kSnapshotVersion
 *   [8]  u64 worldFp runFingerprint(cfg, scene, scale)
 *   [16] u64 cycle   capture cycle (== Gpu lastNow_)
 *   [24] u64 bytes   payload size
 *   [32] u32 crc     CRC-32 of the payload
 *   [36] u32 hcrc    CRC-32 of bytes [0, 36)
 *   [40] payload     Serializer stream of nested chunks
 *
 * Writes are temp-file + rename so a crash mid-write never leaves a
 * half snapshot under the final name; reads reject bad magic/version,
 * mismatched fingerprints, truncation and CRC failures with a
 * SnapshotError the caller turns into a cold-run fallback.
 */

#ifndef TRT_SNAPSHOT_SNAPSHOT_HH
#define TRT_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/serializer.hh"

namespace trt
{

/** Bump on any incompatible change to the payload schema. Old
 *  snapshots are rejected (and fall back to a cold run), never
 *  migrated — they are caches, not archives. */
constexpr uint32_t kSnapshotVersion = 5; //!< v5: registry-ordered RTST
                                         //!< (+ treeletSwitches),
                                         //!< telemetry TELM chunk

/** Thrown out of Gpu::run when SnapshotPolicy::haltAtCycle fires: the
 *  deterministic stand-in for a crash/preemption, used by tests and
 *  the CI crash-resume job. The snapshot has already been written. */
class SimulationHalted : public std::runtime_error
{
  public:
    SimulationHalted(uint64_t cycle, std::string path)
        : std::runtime_error("simulation halted at cycle " +
                             std::to_string(cycle) + " after snapshot " +
                             path),
          cycle(cycle), snapshotPath(std::move(path))
    {
    }

    uint64_t cycle;
    std::string snapshotPath;
};

/** When/where Gpu::run captures snapshots. Default-constructed =
 *  disabled (a single predictable-false branch per simulated cycle
 *  boundary). */
struct SnapshotPolicy
{
    /** Capture every N simulated cycles; 0 disables capture. */
    uint64_t everyCycles = 0;
    /** If nonzero: capture at the first boundary >= this cycle, then
     *  throw SimulationHalted. */
    uint64_t haltAtCycle = 0;
    /** Snapshot directory (created on first write). */
    std::string dir = ".trt_snapshots";
    /** World identity: runFingerprint(cfg, scene, scale). */
    uint64_t worldFp = 0;
    /** Keep snapshots after a successful run (default: the harness
     *  deletes them once the run completes). */
    bool keep = false;

    bool
    captureEnabled() const
    {
        return everyCycles != 0 || haltAtCycle != 0;
    }

    /** Read TRT_SNAPSHOT_EVERY / TRT_SNAPSHOT_DIR /
     *  TRT_SNAPSHOT_HALT_AT / TRT_SNAPSHOT_KEEP. */
    static SnapshotPolicy fromEnv(uint64_t worldFp);
};

/** File name a snapshot of @p worldFp at @p cycle is stored under. */
std::string snapshotFileName(uint64_t worldFp, uint64_t cycle);

/** Atomically write a snapshot file; returns the final path. Throws
 *  SnapshotError on I/O failure. */
std::filesystem::path writeSnapshotFile(const std::string &dir,
                                        uint64_t worldFp, uint64_t cycle,
                                        const std::vector<uint8_t> &payload);

/** Read and fully validate a snapshot file, returning its payload.
 *  Throws SnapshotError on bad magic/version, fingerprint mismatch,
 *  truncation, or CRC failure. */
std::vector<uint8_t> readSnapshotPayload(const std::filesystem::path &path,
                                         uint64_t expectedWorldFp);

/** Newest (highest-cycle) snapshot of @p worldFp in @p dir that passes
 *  full validation; corrupt candidates are skipped. nullopt when none
 *  survive. */
std::optional<std::filesystem::path>
findNewestValidSnapshot(const std::string &dir, uint64_t worldFp);

/** Delete every snapshot of @p worldFp in @p dir (post-run cleanup).
 *  Returns the number removed; I/O errors are ignored. */
size_t removeSnapshotsFor(const std::string &dir, uint64_t worldFp);

} // namespace trt

#endif // TRT_SNAPSHOT_SNAPSHOT_HH
