/**
 * @file
 * The paper's section 2.4 standalone analytical model (Figure 5): an
 * upper-bound estimate of treelet-queue speedup as a function of the
 * number of concurrent rays in flight, with no caching modeled.
 *
 *  - Baseline cycles  = (total BVH nodes visited by all rays) x memLat.
 *  - Treelet cycles   = sum over batches of B concurrent rays of
 *                       (unique treelets touched by the batch)
 *                       x (nodes per treelet) x memLat.
 *
 * Rays in the same batch reuse a fetched treelet at no cost; more
 * concurrent rays means fewer unique treelet fetches per ray.
 */

#ifndef TRT_ANALYTIC_ANALYTIC_HH
#define TRT_ANALYTIC_ANALYTIC_HH

#include <cstdint>
#include <vector>

#include "bvh/bvh.hh"
#include "scene/scene.hh"

namespace trt
{

/** Per-ray traversal footprint recorded from functional traversal. */
struct RayTrace
{
    uint32_t nodesVisited = 0;
    std::vector<uint32_t> treelets; //!< Unique treelets, visit order.
};

/**
 * Record the BVH access footprint of every path-traced ray of a frame
 * (primary + secondary, same workload as section 5.1).
 *
 * @param max_rays Cap on recorded rays (0 = unlimited).
 */
std::vector<RayTrace> recordTraces(const Scene &scene, const Bvh &bvh,
                                   uint32_t width, uint32_t height,
                                   uint32_t max_bounces, float cutoff,
                                   uint32_t max_rays = 0);

/** The analytical model over a set of recorded traces. */
class AnalyticModel
{
  public:
    /**
     * @param traces Recorded per-ray footprints.
     * @param nodes_per_treelet Average nodes in a treelet (the model's
     *        fixed treelet fetch cost, as in the paper's formulation).
     */
    AnalyticModel(std::vector<RayTrace> traces, double nodes_per_treelet);

    /**
     * Variant pricing each treelet fetch at that treelet's actual node
     * count (tighter than the paper's constant when treelet sizes are
     * skewed). @p treelet_nodes is indexed by treelet id.
     */
    AnalyticModel(std::vector<RayTrace> traces,
                  std::vector<uint32_t> treelet_nodes);

    /** Baseline cycles (memLat factors out of the speedup). */
    double baselineCost() const;

    /** Treelet-queue cycles with batches of @p concurrent_rays. */
    double treeletCost(uint32_t concurrent_rays) const;

    /** Estimated speedup at @p concurrent_rays rays in flight. */
    double speedup(uint32_t concurrent_rays) const;

    size_t rayCount() const { return traces_.size(); }

  private:
    double treeletFetchCost(uint32_t treelet) const;

    std::vector<RayTrace> traces_;
    double nodesPerTreelet_;
    std::vector<uint32_t> treeletNodes_; //!< Empty = use the constant.
    uint64_t totalNodes_;
};

} // namespace trt

#endif // TRT_ANALYTIC_ANALYTIC_HH
