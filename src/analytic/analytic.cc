#include "analytic/analytic.hh"

#include <unordered_set>

#include "bvh/traverser.hh"
#include "gpu/shader.hh"

namespace trt
{

std::vector<RayTrace>
recordTraces(const Scene &scene, const Bvh &bvh, uint32_t width,
             uint32_t height, uint32_t max_bounces, float cutoff,
             uint32_t max_rays)
{
    PathTracer pt(scene, bvh, max_bounces, cutoff);
    std::vector<RayTrace> traces;

    uint32_t pixels = width * height;
    for (uint32_t pixel = 0; pixel < pixels; pixel++) {
        PathState st = pt.startPath(pixel, width, height);
        while (st.alive) {
            if (max_rays && traces.size() >= max_rays)
                return traces;

            RayTrace tr;
            std::unordered_set<uint32_t> seen;
            RayTraverser t(&bvh, st.ray);
            while (!t.done()) {
                if (t.atBoundary()) {
                    t.enterNextTreelet();
                    uint32_t tl = t.currentTreelet();
                    if (seen.insert(tl).second)
                        tr.treelets.push_back(tl);
                    continue;
                }
                bool leaf = t.currentAccess().leaf;
                t.complete();
                if (!leaf)
                    tr.nodesVisited++;
            }
            traces.push_back(std::move(tr));
            pt.shade(st, t.hit());
        }
    }
    return traces;
}

AnalyticModel::AnalyticModel(std::vector<RayTrace> traces,
                             double nodes_per_treelet)
    : traces_(std::move(traces)), nodesPerTreelet_(nodes_per_treelet)
{
    totalNodes_ = 0;
    for (const auto &t : traces_)
        totalNodes_ += t.nodesVisited;
}

AnalyticModel::AnalyticModel(std::vector<RayTrace> traces,
                             std::vector<uint32_t> treelet_nodes)
    : AnalyticModel(std::move(traces), 0.0)
{
    treeletNodes_ = std::move(treelet_nodes);
}

double
AnalyticModel::treeletFetchCost(uint32_t treelet) const
{
    if (treeletNodes_.empty())
        return nodesPerTreelet_;
    return treelet < treeletNodes_.size() ? double(treeletNodes_[treelet])
                                          : 1.0;
}

double
AnalyticModel::baselineCost() const
{
    // Every node visit is a miss paying full memory latency; the
    // latency multiplies both sides so it cancels in speedup().
    return double(totalNodes_);
}

double
AnalyticModel::treeletCost(uint32_t concurrent_rays) const
{
    if (concurrent_rays == 0 || traces_.empty())
        return baselineCost();

    double cost = 0.0;
    for (size_t start = 0; start < traces_.size();
         start += concurrent_rays) {
        size_t end = std::min(traces_.size(),
                              start + size_t(concurrent_rays));
        std::unordered_set<uint32_t> unique;
        for (size_t i = start; i < end; i++)
            for (uint32_t t : traces_[i].treelets)
                unique.insert(t);
        for (uint32_t t : unique)
            cost += treeletFetchCost(t);
    }
    return cost;
}

double
AnalyticModel::speedup(uint32_t concurrent_rays) const
{
    double tc = treeletCost(concurrent_rays);
    return tc > 0.0 ? baselineCost() / tc : 0.0;
}

} // namespace trt
