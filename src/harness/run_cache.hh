/**
 * @file
 * Persistent memoization of cycle-level simulation results.
 *
 * Every bench binary ends up simulating many of the same
 * (scene, GpuConfig) pairs — fig10..fig17 all share baselines with
 * fig01 — so the harness fingerprints each run with
 * (GpuConfig hash, scene name, scale, BVH build params, code version)
 * and stores the resulting RunStats as a versioned binary blob under
 * <TRT_CACHE>/runs/. A later invocation of any bench with a matching
 * fingerprint loads the blob instead of re-simulating.
 *
 * Invalidation is automatic: the fingerprint is part of the file name,
 * so any config/scene/code change keys a different file, and blobs are
 * verified (magic + version) on load. Set TRT_RUN_CACHE=0 to bypass
 * the cache entirely, or TRT_CACHE=0 to disable all harness caching.
 */

#ifndef TRT_HARNESS_RUN_CACHE_HH
#define TRT_HARNESS_RUN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "gpu/gpu.hh"

namespace trt
{

/**
 * Per-process pipeline counters, printed (once, at exit) by every
 * bench so cache effectiveness and pipeline perf regressions are
 * visible in bench output.
 */
struct HarnessTiming
{
    std::atomic<uint64_t> sceneBuildMs{0}; //!< Scene gen + BVH build.
    std::atomic<uint64_t> simulateMs{0};   //!< Cycle-level simulation.
    /** Work actually simulated (cache hits excluded), for the
     *  aggregate cycles/sec + Mrays/sec rates in the summary. */
    std::atomic<uint64_t> simulatedCycles{0};
    std::atomic<uint64_t> simulatedRays{0};
    std::atomic<uint32_t> bundleCacheHits{0};
    std::atomic<uint32_t> bundleCacheMisses{0};
    std::atomic<uint32_t> runCacheHits{0};
    std::atomic<uint32_t> runCacheMisses{0};
    /** Blobs/bytes evicted by the TRT_RUN_CACHE_MAX_MB size cap. */
    std::atomic<uint32_t> runCachePrunedBlobs{0};
    std::atomic<uint64_t> runCachePrunedBytes{0};
};

/** The process-wide counters. First use arms an at-exit summary. */
HarnessTiming &harnessTiming();

/** Zero all counters (tests). */
void resetHarnessTiming();

/** One-line human-readable summary of harnessTiming(). */
std::string harnessTimingSummary();

/** True unless TRT_RUN_CACHE=0 or the cache root is disabled. */
bool runCacheEnabled();

/**
 * Fingerprint of one simulation run. Covers every GpuConfig field
 * (resolution and bounce count live there), the scene identity, the
 * BVH build parameters, the blob schema version and a build stamp of
 * the simulator code, so results can never be served stale.
 *
 * @p modeFp distinguishes execution modes that change the *numbers*
 * without changing the config: a sampled run (TRT_SAMPLE) passes
 * SampleConfig::fingerprint() here so its extrapolated stats can never
 * be served for a full run or vice versa, and different sampling
 * parameters never share a blob. Full runs pass 0 (the default).
 */
uint64_t runFingerprint(const GpuConfig &cfg, const std::string &scene,
                        float scale, uint64_t modeFp = 0);

/** Same, with an explicit BvhConfig instead of BvhConfig::fromEnv() —
 *  what JobSpec::fingerprint() uses so a job's BVH width is part of
 *  the spec, not ambient process state. The env-reading overload above
 *  delegates here. */
uint64_t runFingerprint(const GpuConfig &cfg, const std::string &scene,
                        float scale, const BvhConfig &bvhCfg,
                        uint64_t modeFp);

/**
 * True when a blob for @p fp exists on disk (no load, no validation,
 * no timing counters, no mtime touch). The farm's --dry-run uses this
 * to report cache-hit status without perturbing the cache.
 */
bool cachedRunExists(uint64_t fp, const std::string &scene);

/**
 * Try to load the memoized result for @p fp. Counts a hit or miss in
 * harnessTiming() when the cache is enabled; returns false (without
 * counting) when it is not.
 */
bool loadCachedRun(uint64_t fp, const std::string &scene, RunStats &st);

/**
 * Persist @p st for @p fp (atomic write; no-op if caching disabled).
 * Afterwards prunes the runs directory to TRT_RUN_CACHE_MAX_MB
 * (default 512 MB, <=0 disables), evicting least-recently-used blobs —
 * loads touch their blob's mtime, so hot entries survive.
 */
void storeCachedRun(uint64_t fp, const std::string &scene,
                    const RunStats &st);

} // namespace trt

#endif // TRT_HARNESS_RUN_CACHE_HH
