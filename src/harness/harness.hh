/**
 * @file
 * Experiment harness shared by the benchmark binaries: environment
 * knobs, process-wide scene/BVH caching, and parallel execution of
 * scene x configuration sweeps.
 *
 * Environment variables:
 *   TRT_RES            image resolution (square), default 256 (paper).
 *   TRT_SCALE          scene triangle-budget multiplier, default 1.0.
 *   TRT_SCENES         comma-separated subset of scene names.
 *   TRT_FAST           =1: default resolution 64, scale 0.15 (smoke
 *                      runs). Precedence: TRT_FAST only supplies
 *                      *defaults* — an explicit TRT_RES or TRT_SCALE
 *                      always wins, so "TRT_FAST=1 TRT_SCALE=0.5"
 *                      runs 64x64 at scale 0.5.
 *   TRT_THREADS        max parallel scene simulations (default: hw).
 *   TRT_RESULTS        directory for CSV dumps, default "results".
 *   TRT_CACHE          cache root, default ".trt_cache"; =0 disables
 *                      all on-disk caching (bundles and run results).
 *   TRT_BUILD_THREADS  BVH build threads (default: hw). Any value
 *                      yields a bit-identical BVH; this is purely a
 *                      wall-clock knob.
 *   TRT_RUN_CACHE      =0: bypass the persistent RunStats memoization
 *                      under <TRT_CACHE>/runs/ (see run_cache.hh).
 *   TRT_RUN_CACHE_MAX_MB  size cap for <TRT_CACHE>/runs/, default 512;
 *                      oldest blobs (by mtime, LRU) are pruned after
 *                      each store. <=0 disables pruning.
 *   TRT_SIM_THREADS    worker threads per simulation (SM tick fan-out
 *                      via the two-phase memory interface). Any value
 *                      yields bit-identical RunStats; purely a
 *                      wall-clock knob. Default: unset — the harness
 *                      divides the TRT_THREADS budget across the
 *                      scenes running in parallel (see
 *                      HarnessOptions::effectiveSimThreads).
 *   TRT_SNAPSHOT_EVERY periodic checkpoint interval in simulated
 *                      cycles (0/unset disables; DESIGN.md §7).
 *   TRT_SNAPSHOT_DIR   snapshot directory, default ".trt_snapshots".
 *   TRT_SNAPSHOT_HALT_AT  write a snapshot at the first cycle boundary
 *                      >= this cycle, then abort the run (raises
 *                      SimulationHalted; test/CI crash stand-in).
 *   TRT_SNAPSHOT_KEEP  =1: keep snapshots after a completed run
 *                      (default: the harness deletes them).
 *   TRT_RESUME         =1: resume from the newest valid snapshot
 *                      (same as --resume).
 *   TRT_SAMPLE         =1: sampled simulation (DESIGN.md §8) — detailed
 *                      measured intervals separated by functional
 *                      fast-forward + discarded warm-up; RunStats is
 *                      extrapolated with confidence intervals in
 *                      RunStats::sampled. Sampled and full results
 *                      never share run-cache entries.
 *   TRT_SAMPLE_MEASURE measured-interval length in retired CTAs
 *                      (default 32; must be > 0). Fixed-work intervals
 *                      keep the sampling fraction uniform across the
 *                      frame (see gpu/sampled.hh); longer intervals
 *                      shrink extrapolation error at wall-clock cost.
 *   TRT_SAMPLE_WARMUP  hard cap on the discarded detailed warm-up
 *                      after each fast-forward leg (default 100000
 *                      cycles; 0 skips warm-up). Warm-up normally
 *                      exits earlier: when the RT backlog rebuilds to
 *                      its pre-drain level, or at the final wave.
 *   TRT_SAMPLE_INTERVALS  target measured-interval count (default 8;
 *                      must be > 0): each fast-forward leg skips
 *                      ~totalCtas/target finished CTAs, spreading the
 *                      intervals uniformly across the frame's work.
 *                      Scenes with fewer CTAs than one schedule
 *                      (MEASURE x INTERVALS) run all-detailed (exact).
 *   TRT_SAMPLE_FF_RAYS fixed fast-forward quantum in rays; overrides
 *                      the CTA-stratum leg sizing when set.
 *   TRT_SAMPLE_DEBUG   =1: per-interval rate/strata trace and an
 *                      extrapolation summary on stderr.
 *   TRT_POLICY         dispatch policy (DESIGN.md §9): baseline|fifo
 *                      (seed behavior), vtq (implies the treelet-queue
 *                      architecture + ray virtualization), reorder
 *                      (Morton-binned ray reordering), predict
 *                      (hash-based path prediction). Unset keeps each
 *                      bench config's own policy.
 *   TRT_REORDER_BITS   reorder policy: Morton bits per axis of the
 *                      origin binning grid (default 6).
 *   TRT_PREDICT_BITS   predict policy: log2 prediction-table entries
 *                      per RT unit (default 12).
 *   TRT_PREDICT_SHARED =1: predict policy shares one prediction table
 *                      across all SMs' RT units instead of one table
 *                      per unit (GpuConfig::predictShared). Frames and
 *                      stats stay bit-identical across TRT_SIM_THREADS.
 *   TRT_BVH_WIDTH      BVH branching factor: 4 (default, 64-byte
 *                      nodes) or 8 (compressed 80-byte nodes with
 *                      quantized child bounds — half the bytes per
 *                      child). Keyed into the bundle and run caches;
 *                      frames are bit-identical across widths.
 *   TRT_TELEM          =1: per-SM time-series telemetry (DESIGN.md
 *                      §12) — periodic occupancy / queue-depth / cache
 *                      samples written to <dir>/<scene...>.tsbin.
 *                      Purely observational: RunStats stays
 *                      bit-identical and the knob is excluded from the
 *                      config fingerprint (run-cache *loads* are
 *                      bypassed so the simulation actually runs).
 *   TRT_TELEM_TRACE    =1: event tracing — Chrome trace-event JSON
 *                      (<scene...>.trace.json, open in Perfetto or
 *                      chrome://tracing), one track per SM plus a gpu
 *                      track. Implies TRT_TELEM=1, so the counter
 *                      series always accompanies the events.
 *   TRT_TELEM_EVERY    sampling period in simulated cycles (default
 *                      4096; must be > 0).
 *   TRT_TELEM_OUT      telemetry output directory, default
 *                      "telemetry" (same as --telem-out, which also
 *                      turns both TRT_TELEM and TRT_TELEM_TRACE on).
 *   TRT_FARM_WORKERS   trt_farm (DESIGN.md §13): worker subprocess
 *                      pool size, default 2. Aggregated results are
 *                      bit-identical at any pool size (and --serial).
 *   TRT_FARM_RETRIES   trt_farm: max re-dispatches per job after a
 *                      worker crash or timeout (default 2). Retries
 *                      resume from the crashed attempt's snapshot
 *                      when one exists.
 *   TRT_FARM_TIMEOUT_S trt_farm: per-attempt timeout in seconds
 *                      (default 600; heartbeats keep long simulations
 *                      alive). A worker silent past it is SIGKILLed
 *                      and the job retried.
 *   TRT_FARM_INJECT_CRASH  trt_farm fault injection (tests/CI): path
 *                      of an O_EXCL sentinel; exactly one fresh
 *                      worker attempt claims it, snapshots at
 *                      TRT_FARM_INJECT_CRASH_AT cycles (default
 *                      20000), and SIGKILLs itself to exercise the
 *                      real retry-with-resume path.
 */

#ifndef TRT_HARNESS_HARNESS_HH
#define TRT_HARNESS_HARNESS_HH

#include <functional>
#include <string>
#include <vector>

#include "bvh/bvh.hh"
#include "core/arch.hh"
#include "gpu/gpu.hh"
#include "scene/registry.hh"
#include "stats/table.hh"

namespace trt
{

/** Scene + BVH built once per (name, scale) and shared across runs. */
struct SceneBundle
{
    std::string name;
    Scene scene;
    Bvh bvh;
    BvhStats bvhStats;
};

/** Harness-level options (mostly from the environment). */
struct HarnessOptions
{
    uint32_t resolution = 256;
    float sceneScale = 1.0f;
    std::vector<std::string> scenes; //!< Defaults to all of Table 2.
    uint32_t threads = 0;            //!< 0 = hardware concurrency.
    /** Per-simulation SM tick threads (TRT_SIM_THREADS); 0 = derive
     *  from the thread budget, see effectiveSimThreads(). */
    uint32_t simThreads = 0;
    std::string resultsDir = "results";
    /** Resume interrupted simulations from the newest valid snapshot
     *  (--resume / TRT_RESUME; see DESIGN.md §7). */
    bool resume = false;
    /** Dispatch-policy override (TRT_POLICY); empty = keep each
     *  config's own policy. */
    std::string policyName;
    uint32_t reorderBinBits = 0;   //!< TRT_REORDER_BITS; 0 = default.
    uint32_t predictTableBits = 0; //!< TRT_PREDICT_BITS; 0 = default.
    bool predictShared = false;    //!< TRT_PREDICT_SHARED.
    /** Telemetry knobs (TRT_TELEM* / --telem-out). runScene derives a
     *  per-scene file base name and bypasses run-cache loads when on. */
    TelemetryConfig telem;

    /** Read TRT_* environment variables. */
    static HarnessOptions fromEnv();

    /** fromEnv() plus command-line flags (--resume,
     *  --telem-out <dir>). Unknown arguments are a hard error; exits
     *  with a usage message. */
    static HarnessOptions fromArgs(int argc, char **argv);

    /** Apply resolution to a GpuConfig. */
    GpuConfig apply(GpuConfig cfg) const;

    /**
     * SM tick threads each simulation should use: the explicit
     * TRT_SIM_THREADS when set, otherwise the TRT_THREADS budget
     * divided by the scenes that run concurrently — so scene-level and
     * within-run parallelism compose without oversubscribing the host.
     */
    uint32_t effectiveSimThreads() const;
};

/** Root directory of the on-disk caches (TRT_CACHE, default
 *  ".trt_cache"); empty string when caching is disabled. */
std::string cacheRootDir();

/**
 * Get (building and caching on first use) the bundle for @p name at
 * @p scale, with the BVH built under @p bvhCfg (its fingerprint keys
 * both the in-process and on-disk caches, so different widths coexist).
 * Thread-safe; the returned reference lives for the process.
 */
const SceneBundle &getSceneBundle(const std::string &name, float scale,
                                  const BvhConfig &bvhCfg);

/** Same, with the environment's BVH parameters (TRT_BVH_WIDTH). */
const SceneBundle &getSceneBundle(const std::string &name, float scale);

/**
 * Simulate one scene under @p cfg (resolution from cfg). Consults the
 * persistent run cache first (run_cache.hh); a hit skips simulation
 * entirely and is counted in harnessTiming().
 */
RunStats runScene(const std::string &name, const GpuConfig &cfg,
                  const HarnessOptions &opt);

/**
 * Run @p fn for every scene in @p opt.scenes, up to opt.threads at a
 * time. Results are returned in scene order. Exceptions propagate.
 */
std::vector<RunStats> runAllScenes(
    const HarnessOptions &opt,
    const std::function<GpuConfig(const std::string &)> &cfg_for);

/** Per-scene runner variant returning arbitrary results. */
void parallelForScenes(const HarnessOptions &opt,
                       const std::function<void(size_t idx,
                                                const std::string &)> &fn);

/** Write @p table as CSV into opt.resultsDir / @p filename. */
void writeCsv(const HarnessOptions &opt, const Table &table,
              const std::string &filename);

/** Print a standard bench header with the effective options. */
void printBenchHeader(const std::string &title, const HarnessOptions &opt);

} // namespace trt

#endif // TRT_HARNESS_HARNESS_HH
