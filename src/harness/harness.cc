#include "harness/harness.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "bvh/io.hh"
#include "harness/job.hh"
#include "harness/run_cache.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

/** Bump when scene generators, BVH build or formats change. */
constexpr uint32_t kBundleCacheVersion = 2; //!< v2: wide-BVH io header.

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    uint64_t n = v.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    if (n)
        os.write(reinterpret_cast<const char *>(v.data()),
                 std::streamsize(n * sizeof(T)));
}

template <typename T>
bool
readVec(std::istream &is, std::vector<T> &v)
{
    uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n > (1ull << 32))
        return false;
    v.resize(n);
    if (n)
        is.read(reinterpret_cast<char *>(v.data()),
                std::streamsize(n * sizeof(T)));
    return bool(is);
}

std::filesystem::path
cachePath(const std::string &name, float scale, const BvhConfig &bvhCfg)
{
    // The builder-parameter fingerprint is part of the key: a change
    // to maxLeafTris, the treelet byte cap, the branching width, etc.
    // must never serve a bundle built under the old parameters.
    std::ostringstream ss;
    ss << name << "_s" << scale << "_b" << std::hex
       << bvhCfg.fingerprint() << std::dec << "_v"
       << kBundleCacheVersion << ".bin";
    return std::filesystem::path(cacheRootDir()) / ss.str();
}

/** Milliseconds elapsed since @p t0. */
uint64_t
msSince(std::chrono::steady_clock::time_point t0)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
}

bool
loadBundleFile(const std::filesystem::path &path, SceneBundle &b)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    uint32_t magic = 0, ver = 0;
    is.read(reinterpret_cast<char *>(&magic), 4);
    is.read(reinterpret_cast<char *>(&ver), 4);
    if (!is || magic != 0x54525442u || ver != kBundleCacheVersion)
        return false;

    uint64_t name_len = 0;
    is.read(reinterpret_cast<char *>(&name_len), sizeof(name_len));
    if (!is || name_len > 256)
        return false;
    b.scene.name.resize(name_len);
    is.read(b.scene.name.data(), std::streamsize(name_len));
    b.name = b.scene.name;

    is.read(reinterpret_cast<char *>(&b.scene.background),
            sizeof(b.scene.background));
    Camera::State cam{};
    is.read(reinterpret_cast<char *>(&cam), sizeof(cam));
    b.scene.camera = Camera::fromState(cam);
    if (!readVec(is, b.scene.materials) ||
        !readVec(is, b.scene.triangles)) {
        return false;
    }
    if (!BvhIo::load(is, b.bvh))
        return false;
    b.bvhStats = b.bvh.stats();
    return true;
}

void
saveBundleFile(const std::filesystem::path &path, const SceneBundle &b)
{
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return;
    uint32_t magic = 0x54525442u, ver = kBundleCacheVersion;
    os.write(reinterpret_cast<const char *>(&magic), 4);
    os.write(reinterpret_cast<const char *>(&ver), 4);
    uint64_t name_len = b.scene.name.size();
    os.write(reinterpret_cast<const char *>(&name_len), sizeof(name_len));
    os.write(b.scene.name.data(), std::streamsize(name_len));
    os.write(reinterpret_cast<const char *>(&b.scene.background),
             sizeof(b.scene.background));
    Camera::State cam = b.scene.camera.state();
    os.write(reinterpret_cast<const char *>(&cam), sizeof(cam));
    writeVec(os, b.scene.materials);
    writeVec(os, b.scene.triangles);
    BvhIo::save(os, b.bvh);
}

} // anonymous namespace

std::string
cacheRootDir()
{
    std::string s = envString("TRT_CACHE", ".trt_cache");
    return s == "0" || s.empty() ? std::string() : s;
}

HarnessOptions
HarnessOptions::fromEnv()
{
    HarnessOptions opt;
    // TRT_FAST lowers the *defaults* only; the explicit knobs below
    // read it as their fallback, so "TRT_FAST=1 TRT_SCALE=0.5" runs at
    // 64x64 with scale 0.5 (see the precedence note in harness.hh).
    if (envFlag("TRT_FAST", false)) {
        opt.resolution = 64;
        opt.sceneScale = 0.15f;
    }
    opt.resolution = uint32_t(envUInt("TRT_RES", opt.resolution, 1 << 16));
    opt.sceneScale = float(envDouble("TRT_SCALE", opt.sceneScale));
    opt.threads = uint32_t(envUInt("TRT_THREADS", 0, 4096));
    opt.simThreads = uint32_t(envUInt("TRT_SIM_THREADS", 0, 4096));
    if (const char *r = envRaw("TRT_RESULTS"))
        opt.resultsDir = r;

    if (const char *s = envRaw("TRT_SCENES")) {
        std::stringstream ss(s);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                opt.scenes.push_back(item);
    }
    if (opt.scenes.empty())
        opt.scenes = sceneNames();
    opt.resume = envFlag("TRT_RESUME", false);
    opt.policyName = envString("TRT_POLICY", "");
    opt.reorderBinBits =
        uint32_t(envUInt("TRT_REORDER_BITS", 0, 16));
    opt.predictTableBits =
        uint32_t(envUInt("TRT_PREDICT_BITS", 0, 24));
    opt.predictShared = envFlag("TRT_PREDICT_SHARED", false);
    opt.telem = TelemetryConfig::fromEnv();
    return opt;
}

HarnessOptions
HarnessOptions::fromArgs(int argc, char **argv)
{
    HarnessOptions opt = fromEnv();
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--telem-out" && i + 1 < argc) {
            // Shorthand for TRT_TELEM=1 TRT_TELEM_TRACE=1
            // TRT_TELEM_OUT=<dir>: the full telemetry output in one
            // flag.
            opt.telem.outDir = argv[++i];
            opt.telem.enabled = true;
            opt.telem.trace = true;
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s'\n"
                         "usage: %s [--resume] [--telem-out <dir>]\n"
                         "(all other options come from TRT_* environment "
                         "variables, see harness.hh)\n",
                         argv[0], arg.c_str(), argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

GpuConfig
HarnessOptions::apply(GpuConfig cfg) const
{
    cfg.imageWidth = resolution;
    cfg.imageHeight = resolution;
    if (!policyName.empty()) {
        DispatchPolicyKind kind;
        if (!parseDispatchPolicy(policyName, kind))
            throw EnvError("TRT_POLICY: unknown policy '" + policyName +
                           "' (baseline|fifo|vtq|reorder|predict)");
        cfg.policy = kind;
        // Vtq names the full proposed architecture, so selecting it by
        // knob pulls in what virtualizedTreeletQueues() would set.
        if (kind == DispatchPolicyKind::Vtq) {
            cfg.arch = RtArch::TreeletQueues;
            cfg.rayVirtualization = true;
            cfg.mem.l2ReservedBytes = 64 * 1024;
        }
    }
    if (reorderBinBits > 0)
        cfg.reorderBinBits = reorderBinBits;
    if (predictTableBits > 0)
        cfg.predictTableBits = predictTableBits;
    if (predictShared)
        cfg.predictShared = true;
    return cfg;
}

uint32_t
HarnessOptions::effectiveSimThreads() const
{
    if (simThreads > 0)
        return simThreads;
    uint32_t hw = std::thread::hardware_concurrency();
    uint32_t budget = threads ? threads : (hw ? hw : 4);
    // Scenes run concurrently up to the same budget (parallelForScenes
    // clamps to the scene count); split the remainder across them.
    uint32_t scene_par =
        std::min<uint32_t>(budget, uint32_t(std::max<size_t>(
                                       scenes.size(), 1)));
    return std::max(1u, budget / scene_par);
}

const SceneBundle &
getSceneBundle(const std::string &name, float scale,
               const BvhConfig &bvhCfg)
{
    struct Key
    {
        std::string name;
        float scale;
        uint64_t bvhFp;
        bool
        operator<(const Key &o) const
        {
            if (name != o.name)
                return name < o.name;
            if (scale != o.scale)
                return scale < o.scale;
            return bvhFp < o.bvhFp;
        }
    };
    static std::map<Key, std::unique_ptr<SceneBundle>> cache;
    static std::mutex mtx;
    // Per-bundle build mutexes so two scenes can build concurrently but
    // the same scene is built once.
    static std::map<Key, std::unique_ptr<std::mutex>> building;

    Key key{name, scale, bvhCfg.fingerprint()};
    std::mutex *bmtx;
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = cache.find(key);
        if (it != cache.end() && it->second)
            return *it->second;
        auto bit = building.find(key);
        if (bit == building.end())
            bit = building.emplace(key,
                                   std::make_unique<std::mutex>()).first;
        bmtx = bit->second.get();
    }

    std::lock_guard<std::mutex> build_lock(*bmtx);
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = cache.find(key);
        if (it != cache.end() && it->second)
            return *it->second;
    }

    auto bundle = std::make_unique<SceneBundle>();
    bool cached = false;
    if (!cacheRootDir().empty())
        cached = loadBundleFile(cachePath(name, scale, bvhCfg), *bundle);
    if (cached) {
        harnessTiming().bundleCacheHits++;
    } else {
        auto t0 = std::chrono::steady_clock::now();
        bundle->name = name;
        bundle->scene = buildScene(name, scale);
        bundle->bvh = Bvh::build(bundle->scene.triangles, bvhCfg);
        bundle->bvhStats = bundle->bvh.stats();
        harnessTiming().sceneBuildMs += msSince(t0);
        if (!cacheRootDir().empty()) {
            harnessTiming().bundleCacheMisses++;
            saveBundleFile(cachePath(name, scale, bvhCfg), *bundle);
        }
    }

    std::lock_guard<std::mutex> lk(mtx);
    auto [it, inserted] = cache.emplace(key, std::move(bundle));
    (void)inserted;
    return *it->second;
}

const SceneBundle &
getSceneBundle(const std::string &name, float scale)
{
    return getSceneBundle(name, scale, BvhConfig::fromEnv());
}

RunStats
runScene(const std::string &name, const GpuConfig &cfg,
         const HarnessOptions &opt)
{
    // One execution path for benches, tests and farm workers: the
    // actual run-cache/snapshot/simulate logic lives in executeJob()
    // (harness/job.hh). The environment-dependent pieces — sampling
    // mode and BVH build parameters — are resolved here so the
    // fingerprint matches what a JobSpec with the same knobs computes.
    JobRunnerOptions ropt;
    ropt.simThreads = opt.effectiveSimThreads();
    ropt.resume = opt.resume;
    ropt.telem = opt.telem;
    return executeJob(name, opt.sceneScale, cfg, BvhConfig::fromEnv(),
                      SampleConfig::fromEnv(), ropt)
        .stats;
}

void
parallelForScenes(const HarnessOptions &opt,
                  const std::function<void(size_t, const std::string &)> &fn)
{
    uint32_t hw = std::thread::hardware_concurrency();
    uint32_t n_threads = opt.threads ? opt.threads : (hw ? hw : 4);
    n_threads = std::min<uint32_t>(n_threads,
                                   uint32_t(opt.scenes.size()));
    if (n_threads <= 1) {
        for (size_t i = 0; i < opt.scenes.size(); i++)
            fn(i, opt.scenes[i]);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    std::mutex err_mtx;
    std::exception_ptr first_error;
    for (uint32_t t = 0; t < n_threads; t++) {
        pool.emplace_back([&]() {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= opt.scenes.size())
                    return;
                try {
                    fn(i, opt.scenes[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(err_mtx);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunStats>
runAllScenes(const HarnessOptions &opt,
             const std::function<GpuConfig(const std::string &)> &cfg_for)
{
    std::vector<RunStats> results(opt.scenes.size());
    parallelForScenes(opt, [&](size_t i, const std::string &name) {
        results[i] = runScene(name, cfg_for(name), opt);
    });
    return results;
}

void
writeCsv(const HarnessOptions &opt, const Table &table,
         const std::string &filename)
{
    std::error_code ec;
    std::filesystem::create_directories(opt.resultsDir, ec);
    std::ofstream out(std::filesystem::path(opt.resultsDir) / filename);
    if (out)
        table.printCsv(out);
}

void
printBenchHeader(const std::string &title, const HarnessOptions &opt)
{
    std::cout << "==== " << title << " ====\n"
              << "resolution=" << opt.resolution << "x" << opt.resolution
              << " scene_scale=" << opt.sceneScale
              << " scenes=" << opt.scenes.size() << "\n\n";
}

} // namespace trt
