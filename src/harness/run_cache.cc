#include "harness/run_cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "geom/hash.hh"
#include "gpu/run_stats_io.hh"
#include "harness/harness.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

std::once_flag summary_armed;

void
printSummaryAtExit()
{
    const HarnessTiming &t = harnessTiming();
    if (t.sceneBuildMs == 0 && t.simulateMs == 0 && t.runCacheHits == 0 &&
        t.runCacheMisses == 0 && t.bundleCacheHits == 0 &&
        t.bundleCacheMisses == 0 && t.runCachePrunedBlobs == 0)
        return;
    std::cout << harnessTimingSummary() << "\n";
}

/** Size cap for the runs directory in bytes; 0 = pruning disabled.
 *  Negative or non-numeric values are a hard error (util/env.hh). */
uint64_t
runCacheCapBytes()
{
    uint64_t mb = envUInt("TRT_RUN_CACHE_MAX_MB", 512,
                          UINT64_MAX / (1024 * 1024));
    return mb * 1024 * 1024;
}

/**
 * Cross-process prune lock: an O_CREAT|O_EXCL sentinel file in the
 * runs directory. Concurrent farm workers all store results into the
 * same cache; two of them scanning + removing LRU blobs at once could
 * delete far past the cap (each computes its own eviction list from a
 * stale total). The sentinel serializes pruning across processes; a
 * holder that died mid-prune is recovered by age (a prune takes
 * milliseconds, so a sentinel older than kPruneLockStaleS seconds is
 * orphaned and safe to break).
 */
class PruneLock
{
  public:
    explicit PruneLock(const std::filesystem::path &dir)
        : path_(dir / ".prune.lock")
    {
        for (int attempt = 0; attempt < 2; attempt++) {
            int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_EXCL,
                            0644);
            if (fd >= 0) {
                ::close(fd);
                held_ = true;
                return;
            }
            if (errno != EEXIST)
                return; // Unwritable directory: skip pruning.
            // Another process holds it — or died holding it. Break
            // stale locks once, then give up (the live holder prunes).
            struct stat st{};
            if (attempt == 0 && ::stat(path_.c_str(), &st) == 0 &&
                ::time(nullptr) - st.st_mtime > kPruneLockStaleS) {
                std::error_code ec;
                std::filesystem::remove(path_, ec);
                continue;
            }
            return;
        }
    }

    ~PruneLock()
    {
        if (held_) {
            std::error_code ec;
            std::filesystem::remove(path_, ec);
        }
    }

    bool held() const { return held_; }

  private:
    static constexpr time_t kPruneLockStaleS = 120;
    std::filesystem::path path_;
    bool held_ = false;
};

/**
 * Evict least-recently-used blobs until the directory fits the cap.
 * mtime is the recency signal (loadCachedRun touches it on every hit);
 * ties break on path for determinism. Serialized within the process by
 * a mutex and across processes by PruneLock, so concurrent farm
 * workers never compound their evictions; racing file removals are
 * still tolerated via error_code.
 */
void
pruneRunCache(const std::filesystem::path &dir)
{
    uint64_t cap = runCacheCapBytes();
    if (cap == 0)
        return;

    static std::mutex prune_mtx;
    std::lock_guard<std::mutex> lk(prune_mtx);
    PruneLock cross_process_lock(dir);
    if (!cross_process_lock.held())
        return; // Another process is pruning this directory right now.

    struct Blob
    {
        std::filesystem::path path;
        std::filesystem::file_time_type mtime;
        uint64_t size;
    };
    std::vector<Blob> blobs;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : std::filesystem::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec) || de.path().extension() != ".bin")
            continue;
        uint64_t size = de.file_size(ec);
        if (ec)
            continue;
        blobs.push_back({de.path(), de.last_write_time(ec), size});
        total += size;
    }
    if (total <= cap)
        return;

    std::sort(blobs.begin(), blobs.end(),
              [](const Blob &a, const Blob &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Blob &b : blobs) {
        if (total <= cap)
            break;
        std::filesystem::remove(b.path, ec);
        if (ec)
            continue;
        total -= b.size;
        harnessTiming().runCachePrunedBlobs++;
        harnessTiming().runCachePrunedBytes += b.size;
    }
}

std::filesystem::path
runCachePath(uint64_t fp, const std::string &scene)
{
    std::ostringstream ss;
    ss << scene << "_" << std::hex << fp << "_v" << std::dec
       << RunStatsIo::kVersion << ".bin";
    return std::filesystem::path(cacheRootDir()) / "runs" / ss.str();
}

} // anonymous namespace

HarnessTiming &
harnessTiming()
{
    static HarnessTiming timing;
    std::call_once(summary_armed,
                   []() { std::atexit(printSummaryAtExit); });
    return timing;
}

void
resetHarnessTiming()
{
    HarnessTiming &t = harnessTiming();
    t.sceneBuildMs = 0;
    t.simulateMs = 0;
    t.simulatedCycles = 0;
    t.simulatedRays = 0;
    t.bundleCacheHits = 0;
    t.bundleCacheMisses = 0;
    t.runCacheHits = 0;
    t.runCacheMisses = 0;
    t.runCachePrunedBlobs = 0;
    t.runCachePrunedBytes = 0;
}

std::string
harnessTimingSummary()
{
    const HarnessTiming &t = harnessTiming();
    std::ostringstream ss;
    ss << "[harness] scene build " << t.sceneBuildMs << " ms, simulate "
       << t.simulateMs << " ms | bundle cache " << t.bundleCacheHits
       << " hit " << t.bundleCacheMisses << " miss | run cache "
       << t.runCacheHits << " hit " << t.runCacheMisses << " miss";
    if (t.simulateMs > 0 && t.simulatedCycles > 0) {
        double s = double(t.simulateMs) / 1000.0;
        ss << " | sim rate " << std::fixed << std::setprecision(2)
           << double(t.simulatedCycles) / s / 1e6 << " Mcycles/s, "
           << double(t.simulatedRays) / s / 1e6 << " Mrays/s";
    }
    if (t.runCachePrunedBlobs > 0) {
        ss << ", pruned " << t.runCachePrunedBlobs << " blobs ("
           << (t.runCachePrunedBytes / 1024) << " KB)";
    }
    return ss.str();
}

bool
runCacheEnabled()
{
    if (cacheRootDir().empty())
        return false;
    return envFlag("TRT_RUN_CACHE", true);
}

uint64_t
runFingerprint(const GpuConfig &cfg, const std::string &scene, float scale,
               const BvhConfig &bvhCfg, uint64_t modeFp)
{
    Fnv1a h;
    h.pod(uint32_t(0x52554E01)); // schema tag
    h.pod(cfg.fingerprint());
    h.str(scene);
    h.pod(scale);
    // Execution-mode fingerprint (sampled vs full, and the sampling
    // parameters themselves). Hashed unconditionally so full runs
    // (modeFp == 0) key differently from any sampled run.
    h.pod(modeFp);
    // The BVH build parameters change simulated addresses and must
    // invalidate runs.
    h.pod(bvhCfg.fingerprint());
    h.pod(uint32_t(RunStatsIo::kVersion));
    // Build stamp: simulator code changes invalidate old results even
    // when no schema version was bumped.
    h.str(std::string(__DATE__ " " __TIME__));
    return h.value();
}

uint64_t
runFingerprint(const GpuConfig &cfg, const std::string &scene, float scale,
               uint64_t modeFp)
{
    // The harness default: bundles are built with the environment's
    // BVH parameters (TRT_BVH_WIDTH), so they key the fingerprint.
    return runFingerprint(cfg, scene, scale, BvhConfig::fromEnv(), modeFp);
}

bool
cachedRunExists(uint64_t fp, const std::string &scene)
{
    if (!runCacheEnabled())
        return false;
    std::error_code ec;
    return std::filesystem::exists(runCachePath(fp, scene), ec);
}

bool
loadCachedRun(uint64_t fp, const std::string &scene, RunStats &st)
{
    if (!runCacheEnabled())
        return false;
    std::filesystem::path path = runCachePath(fp, scene);
    std::ifstream is(path, std::ios::binary);
    if (is && RunStatsIo::load(is, st)) {
        harnessTiming().runCacheHits++;
        // Touch the blob so LRU pruning keeps hot entries.
        std::error_code ec;
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now(), ec);
        return true;
    }
    harnessTiming().runCacheMisses++;
    return false;
}

void
storeCachedRun(uint64_t fp, const std::string &scene, const RunStats &st)
{
    if (!runCacheEnabled())
        return;
    std::filesystem::path path = runCachePath(fp, scene);
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);

    // Write to a private temp file and rename so concurrent bench
    // processes never observe a half-written blob. The name carries
    // pid + a process-wide counter: two threads of one process (or a
    // forked farm worker reusing a recycled pid) storing the same
    // fingerprint must never interleave writes into one temp file.
    static std::atomic<uint64_t> tmp_seq{0};
    std::ostringstream tmp_name;
    tmp_name << path.string() << ".tmp." << ::getpid() << "."
             << tmp_seq.fetch_add(1);
    std::filesystem::path tmp(tmp_name.str());
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            return;
        RunStatsIo::save(os, st);
        if (!os) {
            os.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    pruneRunCache(path.parent_path());
}

} // namespace trt
