#include "harness/job.hh"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "core/arch.hh"
#include "harness/harness.hh"
#include "harness/run_cache.hh"
#include "util/env.hh"

namespace trt
{

namespace
{

uint64_t
msSince(std::chrono::steady_clock::time_point t0)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
}

std::string
formatFloat(float v)
{
    char buf[32];
    // 9 significant digits round-trip any float through text exactly.
    std::snprintf(buf, sizeof(buf), "%.9g", double(v));
    return buf;
}

} // anonymous namespace

// ---- JobSpec ---------------------------------------------------------

GpuConfig
JobSpec::gpuConfig() const
{
    GpuConfig cfg;
    if (config == "baseline" || config == "fifo")
        cfg = GpuConfig{};
    else if (config == "prefetch")
        cfg = GpuConfig::treeletPrefetch();
    else if (config == "vtq")
        cfg = GpuConfig::virtualizedTreeletQueues();
    else if (config == "reorder")
        cfg = GpuConfig::forPolicy(DispatchPolicyKind::Reorder);
    else if (config == "predict")
        cfg = GpuConfig::forPolicy(DispatchPolicyKind::Predict);
    else
        throw EnvError("job config: unknown '" + config +
                       "' (baseline|fifo|prefetch|vtq|reorder|predict)");
    cfg.imageWidth = resolution;
    cfg.imageHeight = resolution;
    if (maxBounces > 0)
        cfg.maxBounces = maxBounces;
    if (reorderBinBits > 0)
        cfg.reorderBinBits = reorderBinBits;
    if (predictTableBits > 0)
        cfg.predictTableBits = predictTableBits;
    if (predictShared)
        cfg.predictShared = true;
    return cfg;
}

BvhConfig
JobSpec::bvhConfig() const
{
    if (bvhWidth != 4 && bvhWidth != 8)
        throw EnvError("job bvh_width=\"" + std::to_string(bvhWidth) +
                       "\": expected 4 or 8");
    BvhConfig b;
    b.width = int(bvhWidth);
    return b;
}

uint64_t
JobSpec::fingerprint() const
{
    return runFingerprint(gpuConfig(), scene, scale, bvhConfig(),
                          sample.enabled ? sample.fingerprint() : 0);
}

std::string
JobSpec::label() const
{
    std::ostringstream ss;
    ss << scene << "/" << config << "/r" << resolution << "/x"
       << formatFloat(scale) << "/w" << bvhWidth;
    if (sample.enabled)
        ss << "/sampled";
    return ss.str();
}

std::string
JobSpec::serialize() const
{
    std::ostringstream ss;
    ss << "scene=" << scene << "\n"
       << "scale=" << formatFloat(scale) << "\n"
       << "res=" << resolution << "\n"
       << "config=" << config << "\n"
       << "bvh_width=" << bvhWidth << "\n"
       << "bounces=" << maxBounces << "\n"
       << "reorder_bits=" << reorderBinBits << "\n"
       << "predict_bits=" << predictTableBits << "\n"
       << "predict_shared=" << (predictShared ? 1 : 0) << "\n"
       << "sample=" << (sample.enabled ? 1 : 0) << "\n"
       << "sample_measure=" << sample.measureCtas << "\n"
       << "sample_warmup=" << sample.warmupCycles << "\n"
       << "sample_intervals=" << sample.targetIntervals << "\n"
       << "sample_ff_rays=" << sample.ffRays << "\n";
    return ss.str();
}

JobSpec
JobSpec::deserialize(const std::string &text, const std::string &origin)
{
    JobSpec spec;
    std::istringstream is(text);
    std::string line;
    bool have_scene = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw EnvError(origin + ": malformed line \"" + line +
                           "\" (expected key=value)");
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        std::string what = origin + "." + key;
        if (key == "scene") {
            spec.scene = val;
            have_scene = !val.empty();
        } else if (key == "scale") {
            spec.scale = float(parseDoubleText(what, val));
        } else if (key == "res") {
            spec.resolution = uint32_t(parseUIntText(what, val, 1 << 16));
        } else if (key == "config") {
            spec.config = val;
        } else if (key == "bvh_width") {
            spec.bvhWidth = uint32_t(parseUIntText(what, val, 8));
        } else if (key == "bounces") {
            spec.maxBounces = uint32_t(parseUIntText(what, val, 1 << 10));
        } else if (key == "reorder_bits") {
            spec.reorderBinBits = uint32_t(parseUIntText(what, val, 16));
        } else if (key == "predict_bits") {
            spec.predictTableBits =
                uint32_t(parseUIntText(what, val, 24));
        } else if (key == "predict_shared") {
            spec.predictShared = parseFlagText(what, val);
        } else if (key == "sample") {
            spec.sample.enabled = parseFlagText(what, val);
        } else if (key == "sample_measure") {
            spec.sample.measureCtas =
                uint32_t(parseUIntText(what, val, 1u << 20));
        } else if (key == "sample_warmup") {
            spec.sample.warmupCycles =
                parseUIntText(what, val, 1ull << 40);
        } else if (key == "sample_intervals") {
            spec.sample.targetIntervals =
                uint32_t(parseUIntText(what, val, 1u << 20));
        } else if (key == "sample_ff_rays") {
            spec.sample.ffRays = parseUIntText(what, val, 1ull << 40);
        } else {
            throw EnvError(origin + ": unknown key \"" + key + "\"");
        }
    }
    if (!have_scene)
        throw EnvError(origin + ": missing required key \"scene\"");
    return spec;
}

// ---- execution -------------------------------------------------------

JobOutcome
executeJob(const std::string &scene, float scale, const GpuConfig &cfg,
           const BvhConfig &bvhCfg, const SampleConfig &sample,
           const JobRunnerOptions &opt)
{
    JobOutcome out;
    // Consult the run cache before touching the scene bundle: a warm
    // cache skips scene generation and the BVH build as well. Sampled
    // runs fold their SampleConfig into the fingerprint so full and
    // sampled (or differently-sampled) results never alias.
    uint64_t fp =
        runFingerprint(cfg, scene, scale, bvhCfg,
                       sample.enabled ? sample.fingerprint() : 0);
    out.fingerprint = fp;
    // Telemetry wants the simulation to actually run (a cache hit
    // would produce no trace), so loads are bypassed; stores still
    // happen below — the result is valid for non-telemetry runs too.
    if (!opt.telem.on() && loadCachedRun(fp, scene, out.stats)) {
        out.cacheHit = true;
        return out;
    }

    const SceneBundle &b = getSceneBundle(scene, scale, bvhCfg);
    auto t0 = std::chrono::steady_clock::now();
    // Wall-clock-only knobs, applied after the fingerprint above so
    // cached results remain valid across thread counts and telemetry
    // settings.
    GpuConfig run_cfg = cfg;
    if (run_cfg.simThreads == 0)
        run_cfg.simThreads = opt.simThreads;
    if (opt.telem.on()) {
        run_cfg.telem = opt.telem;
        if (run_cfg.telem.outBase.empty()) {
            // Scene + architecture + policy + short fingerprint: keeps
            // concurrent scenes and configurations from clobbering each
            // other's traces in one output directory.
            char fp_hex[9];
            std::snprintf(fp_hex, sizeof(fp_hex), "%08x",
                          unsigned(fp & 0xffffffffu));
            run_cfg.telem.outBase = scene + "_" +
                                    rtArchName(run_cfg.arch) + "_" +
                                    dispatchPolicyName(run_cfg.policy) +
                                    "_" + fp_hex;
        }
    }
    SnapshotPolicy snap = SnapshotPolicy::fromEnv(fp);
    if (opt.haltAtCycle != 0)
        snap.haltAtCycle = opt.haltAtCycle;
    RunStats &st = out.stats;
    if (sample.enabled) {
        st = simulateSampled(run_cfg, b.scene, b.bvh, sample, snap,
                             opt.resume);
        if ((snap.captureEnabled() || opt.resume) && !snap.keep)
            removeSnapshotsFor(snap.dir, fp);
    } else if (snap.captureEnabled() || opt.resume) {
        st = simulateWithSnapshots(run_cfg, b.scene, b.bvh, snap,
                                   opt.resume);
        // The run completed: its snapshots are spent (resuming them
        // would replay work already banked in the run cache).
        if (!snap.keep)
            removeSnapshotsFor(snap.dir, fp);
    } else {
        st = simulate(run_cfg, b.scene, b.bvh);
    }
    uint64_t ms = msSince(t0);
    out.wallMs = ms;
    harnessTiming().simulateMs += ms;
    harnessTiming().simulatedCycles += st.cycles;
    harnessTiming().simulatedRays += st.raysTraced;
    if (envFlag("TRT_SIM_RATE", false)) {
        // Machine-parseable per-scene rate line (key=value pairs).
        double s = double(std::max<uint64_t>(ms, 1)) / 1000.0;
        std::fprintf(stderr,
                     "[harness] sim-rate scene=%s arch=%s cycles=%llu "
                     "rays=%llu ms=%llu cyc_per_s=%.0f mrays_per_s=%.3f\n",
                     scene.c_str(), rtArchName(cfg.arch),
                     (unsigned long long)st.cycles,
                     (unsigned long long)st.raysTraced,
                     (unsigned long long)ms, double(st.cycles) / s,
                     double(st.raysTraced) / s / 1e6);
    }
    storeCachedRun(fp, scene, st);
    return out;
}

JobOutcome
runJob(const JobSpec &spec, const JobRunnerOptions &opt)
{
    return executeJob(spec.scene, spec.scale, spec.gpuConfig(),
                      spec.bvhConfig(), spec.sample, opt);
}

} // namespace trt
