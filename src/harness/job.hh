/**
 * @file
 * Declarative job descriptions and the single execution path behind
 * them (the JobSpec / JobRunner split, DESIGN.md §13).
 *
 * A JobSpec is everything that *identifies* one simulation — scene,
 * scale, resolution, named configuration, BVH width, policy knobs,
 * sampling parameters — with three properties the farm is built on:
 *
 *   - serializable: round-trips through a line-based key=value text
 *     form (the farm's worker protocol payload), parsed with the same
 *     strict validation as the TRT_* environment knobs;
 *   - fingerprintable: JobSpec::fingerprint() is *the run-cache key*
 *     (run_cache.hh). A job whose fingerprint matches a cached blob is
 *     already computed, whatever binary computed it;
 *   - materializable: gpuConfig()/bvhConfig() expand the spec into the
 *     exact GpuConfig/BvhConfig the bench mains would build for the
 *     same knob settings, so farm jobs and hand-run benches alias.
 *
 * executeJob()/runJob() are the one execution path shared by the
 * bench harness (runScene), tests, and farm workers: run-cache lookup,
 * scene-bundle build, snapshot capture/resume, sampled or full
 * simulation, run-cache store.
 */

#ifndef TRT_HARNESS_JOB_HH
#define TRT_HARNESS_JOB_HH

#include <cstdint>
#include <string>

#include "bvh/bvh.hh"
#include "gpu/gpu.hh"

namespace trt
{

/** Declarative description of one simulation run. */
struct JobSpec
{
    std::string scene;            //!< Scene name (scene/registry.hh).
    float scale = 1.0f;           //!< Triangle-budget multiplier.
    uint32_t resolution = 256;    //!< Square frame resolution.
    /** Named configuration: baseline|fifo (seed GpuConfig), prefetch
     *  (Chou et al. treelet prefetcher), vtq (the paper's proposal),
     *  reorder, predict (DESIGN.md §9 policies). */
    std::string config = "baseline";
    uint32_t bvhWidth = 4;        //!< 4 or 8 (TRT_BVH_WIDTH semantics).
    uint32_t maxBounces = 0;      //!< 0 = GpuConfig default (3).
    uint32_t reorderBinBits = 0;  //!< reorder only; 0 = default.
    uint32_t predictTableBits = 0; //!< predict only; 0 = default.
    bool predictShared = false;   //!< predict only.
    /** Sampled simulation (DESIGN.md §8); .enabled=false = full run. */
    SampleConfig sample;

    /** Materialize the GpuConfig a bench would build for these knobs.
     *  Throws EnvError on an unknown config name. */
    GpuConfig gpuConfig() const;

    /** Materialize the BVH build parameters. Throws EnvError when
     *  bvhWidth is not 4 or 8. */
    BvhConfig bvhConfig() const;

    /** The run-cache key of this job: runFingerprint() over the
     *  materialized configs (identical to what runScene computes for
     *  the same knobs, regression-tested). */
    uint64_t fingerprint() const;

    /** Compact human-readable id, e.g. "BUNNY/vtq/r256/x1/w4". */
    std::string label() const;

    /** Line-based key=value text form (the wire format). */
    std::string serialize() const;

    /** Strict parse of serialize() output: unknown keys and malformed
     *  values throw EnvError naming the key. @p origin names the
     *  source in error messages. */
    static JobSpec deserialize(const std::string &text,
                               const std::string &origin = "job");
};

/** Execution knobs that never change the result, only how it is
 *  computed (all deliberately outside JobSpec::fingerprint()). */
struct JobRunnerOptions
{
    /** SM tick worker threads; 0 = GpuConfig/env default. */
    uint32_t simThreads = 0;
    /** Resume from the newest valid snapshot of this job's
     *  fingerprint (the farm sets this on retries). */
    bool resume = false;
    /** Nonzero: snapshot at the first cycle boundary >= this and
     *  throw SimulationHalted (crash injection for tests/CI). */
    uint64_t haltAtCycle = 0;
    /** Telemetry (DESIGN.md §12); bypasses run-cache loads when on. */
    TelemetryConfig telem;
};

/** What one executed job produced. */
struct JobOutcome
{
    RunStats stats;
    uint64_t fingerprint = 0; //!< The run-cache key that was used.
    bool cacheHit = false;    //!< Served from the run cache.
    uint64_t wallMs = 0;      //!< Simulation wall clock (0 on a hit).
};

/**
 * The single execution path: run-cache lookup, bundle build, snapshot
 * capture/resume, full or sampled simulation, run-cache store.
 * runScene() (harness.hh) and runJob() are thin wrappers.
 */
JobOutcome executeJob(const std::string &scene, float scale,
                      const GpuConfig &cfg, const BvhConfig &bvhCfg,
                      const SampleConfig &sample,
                      const JobRunnerOptions &opt = {});

/** Materialize @p spec and execute it. */
JobOutcome runJob(const JobSpec &spec, const JobRunnerOptions &opt = {});

} // namespace trt

#endif // TRT_HARNESS_JOB_HH
