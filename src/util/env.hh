/**
 * @file
 * Strict environment-knob parsing. Every TRT_* knob goes through these
 * helpers so a malformed value (`TRT_SIM_THREADS=abc`, a negative size
 * cap, trailing garbage) aborts with the knob name and the offending
 * text instead of silently falling back to a default mid-sweep.
 */

#ifndef TRT_UTIL_ENV_HH
#define TRT_UTIL_ENV_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace trt
{

/** Thrown on a malformed environment knob; .what() names the knob and
 *  echoes the offending value. */
class EnvError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raw lookup: nullptr when unset. */
const char *envRaw(const char *name);

/** True when the knob is set and non-empty. */
bool envSet(const char *name);

/** String knob with default for unset. */
std::string envString(const char *name, const std::string &defaultValue);

/**
 * Boolean knob: unset -> defaultValue; "0", "" , "false", "off", "no"
 * -> false; "1", "true", "on", "yes" -> true; anything else throws.
 */
bool envFlag(const char *name, bool defaultValue);

/** Signed integer knob; throws EnvError on non-numeric or trailing
 *  garbage, and on values outside [minValue, maxValue]. */
int64_t envInt(const char *name, int64_t defaultValue,
               int64_t minValue = INT64_MIN, int64_t maxValue = INT64_MAX);

/** Unsigned integer knob; rejects negatives with the knob name. */
uint64_t envUInt(const char *name, uint64_t defaultValue,
                 uint64_t maxValue = UINT64_MAX);

/** Floating-point knob; throws EnvError on malformed input. */
double envDouble(const char *name, double defaultValue);

// ---- strict text parsing -------------------------------------------
// The same validation the env knobs get, applied to values that arrive
// as text from elsewhere (sweep manifests, the farm worker protocol).
// @p what names the knob/field in the error message.

/** Parse @p text as a boolean with the envFlag() spellings. */
bool parseFlagText(const std::string &what, const std::string &text);

/** Parse @p text as a non-negative integer <= @p maxValue. */
uint64_t parseUIntText(const std::string &what, const std::string &text,
                       uint64_t maxValue = UINT64_MAX);

/** Parse @p text as a floating-point number. */
double parseDoubleText(const std::string &what, const std::string &text);

} // namespace trt

#endif // TRT_UTIL_ENV_HH
