#include "util/env.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace trt
{

namespace
{

[[noreturn]] void
fail(const std::string &name, const char *value, const char *expected)
{
    throw EnvError(name + "=\"" + value + "\": expected " + expected);
}

} // namespace

const char *
envRaw(const char *name)
{
    return std::getenv(name);
}

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v;
}

std::string
envString(const char *name, const std::string &defaultValue)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : defaultValue;
}

bool
parseFlagText(const std::string &what, const std::string &text)
{
    std::string s(text);
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s.empty() || s == "0" || s == "false" || s == "off" || s == "no")
        return false;
    if (s == "1" || s == "true" || s == "on" || s == "yes")
        return true;
    fail(what, text.c_str(), "a boolean (0/1/true/false/on/off/yes/no)");
}

bool
envFlag(const char *name, bool defaultValue)
{
    const char *v = std::getenv(name);
    if (!v)
        return defaultValue;
    return parseFlagText(name, v);
}

int64_t
envInt(const char *name, int64_t defaultValue, int64_t minValue,
       int64_t maxValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    errno = 0;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE)
        fail(name, v, "an integer");
    if (parsed < minValue || parsed > maxValue)
        fail(name, v,
             ("an integer in [" + std::to_string(minValue) + ", " +
              std::to_string(maxValue) + "]")
                 .c_str());
    return parsed;
}

uint64_t
parseUIntText(const std::string &what, const std::string &text,
              uint64_t maxValue)
{
    const char *v = text.c_str();
    // Reject a leading '-' explicitly: strtoull would silently wrap it.
    const char *p = v;
    while (*p && std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '-')
        fail(what, v, "a non-negative integer");
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE)
        fail(what, v, "a non-negative integer");
    if (parsed > maxValue)
        fail(what, v,
             ("an integer <= " + std::to_string(maxValue)).c_str());
    return parsed;
}

uint64_t
envUInt(const char *name, uint64_t defaultValue, uint64_t maxValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    return parseUIntText(name, v, maxValue);
}

double
parseDoubleText(const std::string &what, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fail(what, text.c_str(), "a number");
    return parsed;
}

double
envDouble(const char *name, double defaultValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    return parseDoubleText(name, v);
}

} // namespace trt
