#include "util/env.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace trt
{

namespace
{

[[noreturn]] void
fail(const char *name, const char *value, const char *expected)
{
    throw EnvError(std::string(name) + "=\"" + value + "\": expected " +
                   expected);
}

} // namespace

const char *
envRaw(const char *name)
{
    return std::getenv(name);
}

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v;
}

std::string
envString(const char *name, const std::string &defaultValue)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : defaultValue;
}

bool
envFlag(const char *name, bool defaultValue)
{
    const char *v = std::getenv(name);
    if (!v)
        return defaultValue;
    std::string s(v);
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s.empty() || s == "0" || s == "false" || s == "off" || s == "no")
        return false;
    if (s == "1" || s == "true" || s == "on" || s == "yes")
        return true;
    fail(name, v, "a boolean (0/1/true/false/on/off/yes/no)");
}

int64_t
envInt(const char *name, int64_t defaultValue, int64_t minValue,
       int64_t maxValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    errno = 0;
    char *end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE)
        fail(name, v, "an integer");
    if (parsed < minValue || parsed > maxValue)
        fail(name, v,
             ("an integer in [" + std::to_string(minValue) + ", " +
              std::to_string(maxValue) + "]")
                 .c_str());
    return parsed;
}

uint64_t
envUInt(const char *name, uint64_t defaultValue, uint64_t maxValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    // Reject a leading '-' explicitly: strtoull would silently wrap it.
    const char *p = v;
    while (*p && std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '-')
        fail(name, v, "a non-negative integer");
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE)
        fail(name, v, "a non-negative integer");
    if (parsed > maxValue)
        fail(name, v,
             ("an integer <= " + std::to_string(maxValue)).c_str());
    return parsed;
}

double
envDouble(const char *name, double defaultValue)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return defaultValue;
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || errno == ERANGE)
        fail(name, v, "a number");
    return parsed;
}

} // namespace trt
