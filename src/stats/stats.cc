#include "stats/stats.hh"

#include <cmath>

namespace trt
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / double(values.size());
}

} // namespace trt
