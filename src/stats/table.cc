#include "stats/table.hh"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace trt
{

std::string
formatDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    cells_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    assert(!cells_.empty() && "call row() before cell()");
    cells_.back().push_back(s);
    return *this;
}

Table &
Table::cell(const char *s)
{
    return cell(std::string(s));
}

Table &
Table::cell(double v, int precision)
{
    return cell(formatDouble(v, precision));
}

Table &
Table::cell(uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(int v)
{
    return cell(std::to_string(v));
}

const std::string &
Table::at(size_t row, size_t col) const
{
    return cells_.at(row).at(col);
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &r : cells_)
        for (size_t c = 0; c < r.size() && c < widths.size(); c++)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &r) {
        os << "| ";
        for (size_t c = 0; c < headers_.size(); c++) {
            std::string v = c < r.size() ? r[c] : "";
            os << std::left << std::setw(int(widths[c])) << v;
            os << (c + 1 < headers_.size() ? " | " : " |");
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); c++) {
        os << std::string(widths[c] + 2, '-');
        os << (c + 1 < headers_.size() ? "|" : "|");
    }
    os << "\n";
    for (const auto &r : cells_)
        print_row(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < r.size(); c++) {
            os << r[c];
            if (c + 1 < r.size())
                os << ",";
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &r : cells_)
        emit(r);
}

} // namespace trt
