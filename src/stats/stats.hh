/**
 * @file
 * Lightweight statistics primitives used by every simulator component.
 * Components embed these directly (no global registry lookup on the fast
 * path); the harness walks component stat structs when printing reports.
 */

#ifndef TRT_STATS_STATS_HH
#define TRT_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "snapshot/serializer.hh"

namespace trt
{

/**
 * Running scalar distribution: count, sum, min, max, mean. Constant
 * memory; suitable for per-cycle updates.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        count_++;
        sum_ += v;
        minv_ = std::min(minv_, v);
        maxv_ = std::max(maxv_, v);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        minv_ = std::numeric_limits<double>::max();
        maxv_ = std::numeric_limits<double>::lowest();
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? minv_ : 0.0; }
    double maxValue() const { return count_ ? maxv_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double minv_ = std::numeric_limits<double>::max();
    double maxv_ = std::numeric_limits<double>::lowest();
};

/** Ratio of two event counters (e.g. misses / accesses). */
struct Ratio
{
    uint64_t num = 0;
    uint64_t den = 0;

    void add(bool in_num) { den++; num += in_num ? 1 : 0; }
    double value() const { return den ? double(num) / double(den) : 0.0; }
};

/**
 * Windowed time series: aggregates (numerator, denominator) event pairs
 * into fixed-width cycle windows. Used to produce the
 * miss-rate-over-time curves of Figure 11.
 */
class WindowedSeries
{
  public:
    explicit WindowedSeries(uint64_t window_cycles = 10000)
        : window_(window_cycles ? window_cycles : 1)
    {
        // record() is on the per-access hot path; a power-of-two window
        // (the common configuration) gets a shift instead of a divide.
        if ((window_ & (window_ - 1)) == 0) {
            shift_ = 0;
            while ((uint64_t(1) << shift_) < window_)
                shift_++;
        }
    }

    /** Record an event pair at @p cycle. */
    void
    record(uint64_t cycle, uint64_t num, uint64_t den)
    {
        size_t idx = shift_ >= 0 ? size_t(cycle >> shift_)
                                 : size_t(cycle / window_);
        if (idx >= numAcc_.size()) {
            numAcc_.resize(idx + 1, 0);
            denAcc_.resize(idx + 1, 0);
        }
        numAcc_[idx] += num;
        denAcc_[idx] += den;
    }

    uint64_t windowCycles() const { return window_; }
    size_t windows() const { return numAcc_.size(); }

    /** Ratio in window @p idx; 0 when the window had no events. */
    double
    ratioAt(size_t idx) const
    {
        if (idx >= numAcc_.size() || denAcc_[idx] == 0)
            return 0.0;
        return double(numAcc_[idx]) / double(denAcc_[idx]);
    }

    uint64_t numAt(size_t idx) const
    { return idx < numAcc_.size() ? numAcc_[idx] : 0; }
    uint64_t denAt(size_t idx) const
    { return idx < denAcc_.size() ? denAcc_[idx] : 0; }

    /**
     * Resample the series to exactly @p buckets points by merging
     * neighbouring windows, so figures have a fixed number of rows
     * regardless of run length.
     */
    std::vector<double>
    resampled(size_t buckets) const
    {
        std::vector<double> out;
        if (buckets == 0 || numAcc_.empty())
            return out;
        out.reserve(buckets);
        double per = double(numAcc_.size()) / double(buckets);
        for (size_t b = 0; b < buckets; b++) {
            size_t s = static_cast<size_t>(b * per);
            size_t e = std::max(s + 1, static_cast<size_t>((b + 1) * per));
            e = std::min(e, numAcc_.size());
            uint64_t n = 0, d = 0;
            for (size_t i = s; i < e; i++) {
                n += numAcc_[i];
                d += denAcc_[i];
            }
            out.push_back(d ? double(n) / double(d) : 0.0);
        }
        return out;
    }

    /** Snapshot hooks; window_/shift_ are ctor-derived and only
     *  validated, the accumulators round-trip verbatim. */
    void
    saveState(Serializer &s) const
    {
        s.beginChunk("WSER");
        s.u64(window_);
        s.vecPod(numAcc_);
        s.vecPod(denAcc_);
        s.endChunk();
    }

    void
    loadState(Deserializer &d)
    {
        d.beginChunk("WSER");
        if (d.u64() != window_)
            throw SnapshotError("snapshot: WindowedSeries window mismatch");
        numAcc_ = d.vecPod<uint64_t>();
        denAcc_ = d.vecPod<uint64_t>();
        d.endChunk();
    }

  private:
    uint64_t window_;
    int shift_ = -1; //!< log2(window_) when it is a power of two.
    std::vector<uint64_t> numAcc_;
    std::vector<uint64_t> denAcc_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

} // namespace trt

#endif // TRT_STATS_STATS_HH
