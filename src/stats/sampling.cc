#include "stats/sampling.hh"

#include <cmath>
#include <stdexcept>

namespace trt
{

double
studentT95(size_t df)
{
    // Two-sided 95% critical values for df = 1..30; the normal
    // approximation beyond that.
    static const double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kTable[df - 1];
    return 1.96;
}

Estimate
stratifiedExtrapolate(const std::vector<uint64_t> &xs,
                      const std::vector<uint64_t> &ws,
                      const std::vector<uint64_t> &strata,
                      uint64_t residualWork)
{
    if (xs.size() != ws.size() || xs.size() != strata.size())
        throw std::invalid_argument(
            "stratifiedExtrapolate: length mismatch");

    Estimate est;
    double sum_x = 0.0, sum_w = 0.0, sum_s = 0.0;
    for (size_t i = 0; i < xs.size(); i++) {
        sum_x += double(xs[i]);
        sum_w += double(ws[i]);
        sum_s += double(strata[i]);
    }
    if (sum_w == 0.0) {
        // No work observed: nothing to scale by. Report the raw
        // measured total; callers treat this as a degenerate run.
        est.value = sum_x;
        est.ci95 = 0.0;
        return est;
    }

    // Per-stratum contribution: the interval's own rate when it
    // observed work, the pooled rate otherwise.
    double pooled = sum_x / sum_w;
    double value = 0.0;
    for (size_t i = 0; i < xs.size(); i++) {
        double rate = ws[i] ? double(xs[i]) / double(ws[i]) : pooled;
        value += rate * double(strata[i]);
    }
    // Work no interval represents (frame-ending warm-up after the last
    // interval): the pooled rate is the least-bad stand-in — any one
    // interval's rate would impose that interval's regime on it.
    value += pooled * double(residualWork);
    est.value = value;

    // All-detailed degenerate case: every unit of work was measured,
    // the "estimate" is the exact sum.
    if (sum_s == sum_w && residualWork == 0) {
        est.value = sum_x;
        est.ci95 = 0.0;
        return est;
    }

    // One observation per stratum admits no per-stratum variance;
    // treat the observed rates as draws from a common distribution.
    size_t n_r = 0;
    double mean_r = 0.0;
    for (size_t i = 0; i < xs.size(); i++)
        if (ws[i]) {
            mean_r += double(xs[i]) / double(ws[i]);
            n_r++;
        }
    if (n_r < 2) {
        est.ci95 = 0.0;
        return est;
    }
    mean_r /= double(n_r);
    double ss = 0.0;
    for (size_t i = 0; i < xs.size(); i++)
        if (ws[i]) {
            double d = double(xs[i]) / double(ws[i]) - mean_r;
            ss += d * d;
        }
    double sd = std::sqrt(ss / double(n_r - 1));
    double s2 = 0.0;
    for (size_t i = 0; i < strata.size(); i++)
        s2 += double(strata[i]) * double(strata[i]);
    est.ci95 = studentT95(n_r - 1) * sd * std::sqrt(s2);
    return est;
}

void
SampleAccumulator::add(SampleInterval iv)
{
    if (intervals_.empty())
        counterCount_ = iv.deltas.size();
    else if (iv.deltas.size() != counterCount_)
        throw std::invalid_argument(
            "SampleAccumulator: interval counter-count mismatch");
    measuredCycles_ += iv.cycles;
    measuredWork_ += iv.work;
    intervals_.push_back(std::move(iv));
}

void
SampleAccumulator::closeStratum(uint64_t stratumWork)
{
    if (intervals_.empty())
        return;
    intervals_.back().stratumWork = stratumWork;
}

std::vector<uint64_t>
SampleAccumulator::strata() const
{
    std::vector<uint64_t> ss;
    ss.reserve(intervals_.size());
    for (const SampleInterval &iv : intervals_)
        ss.push_back(iv.stratumWork);
    return ss;
}

Estimate
SampleAccumulator::extrapolateCycles() const
{
    std::vector<uint64_t> xs, ws;
    xs.reserve(intervals_.size());
    ws.reserve(intervals_.size());
    for (const SampleInterval &iv : intervals_) {
        xs.push_back(iv.cycles);
        ws.push_back(iv.work);
    }
    return stratifiedExtrapolate(xs, ws, strata(), residualWork_);
}

std::vector<Estimate>
SampleAccumulator::extrapolateCounters() const
{
    std::vector<Estimate> out;
    out.reserve(counterCount_);
    std::vector<uint64_t> xs(intervals_.size()), ws(intervals_.size());
    std::vector<uint64_t> ss = strata();
    for (size_t i = 0; i < intervals_.size(); i++)
        ws[i] = intervals_[i].work;
    for (size_t c = 0; c < counterCount_; c++) {
        for (size_t i = 0; i < intervals_.size(); i++)
            xs[i] = intervals_[i].deltas[c];
        out.push_back(stratifiedExtrapolate(xs, ws, ss, residualWork_));
    }
    return out;
}

void
SampleAccumulator::saveState(Serializer &s) const
{
    s.beginChunk("SACC");
    s.u64(counterCount_);
    s.u64(measuredCycles_);
    s.u64(measuredWork_);
    s.u64(residualWork_);
    s.u64(intervals_.size());
    for (const SampleInterval &iv : intervals_) {
        s.u64(iv.cycles);
        s.u64(iv.work);
        s.u64(iv.stratumWork);
        s.vecPod(iv.deltas);
    }
    s.endChunk();
}

void
SampleAccumulator::loadState(Deserializer &d)
{
    d.beginChunk("SACC");
    counterCount_ = size_t(d.u64());
    measuredCycles_ = d.u64();
    measuredWork_ = d.u64();
    residualWork_ = d.u64();
    uint64_t n = d.u64();
    intervals_.clear();
    intervals_.reserve(size_t(n));
    for (uint64_t i = 0; i < n; i++) {
        SampleInterval iv;
        iv.cycles = d.u64();
        iv.work = d.u64();
        iv.stratumWork = d.u64();
        iv.deltas = d.vecPod<uint64_t>();
        if (iv.deltas.size() != counterCount_)
            throw SnapshotError(
                "snapshot: SampleAccumulator counter-count mismatch");
        intervals_.push_back(std::move(iv));
    }
    d.endChunk();
}

} // namespace trt
