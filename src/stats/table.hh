/**
 * @file
 * Console table and CSV writers used by the benchmark harness to print
 * the rows/series of each paper figure.
 */

#ifndef TRT_STATS_TABLE_HH
#define TRT_STATS_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace trt
{

/**
 * A simple column-aligned text table. Cells are strings; numeric helpers
 * format with fixed precision. The table can also be emitted as CSV.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. Subsequent cell() calls fill it left to right. */
    Table &row();

    Table &cell(const std::string &s);
    Table &cell(const char *s);
    Table &cell(double v, int precision = 3);
    Table &cell(uint64_t v);
    Table &cell(int v);

    size_t rows() const { return cells_.size(); }
    size_t columns() const { return headers_.size(); }

    /** The string content of a cell (for tests). */
    const std::string &at(size_t row, size_t col) const;

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

    /** Emit as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

/** Format a double with @p precision fractional digits. */
std::string formatDouble(double v, int precision = 3);

} // namespace trt

#endif // TRT_STATS_TABLE_HH
