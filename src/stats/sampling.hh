/**
 * @file
 * Interval-sampling accumulation and extrapolation (SMARTS-style).
 *
 * A sampled run alternates detailed "measure" intervals with functional
 * fast-forward legs. Each measure interval contributes one
 * SampleInterval: the detailed cycles it spanned, the architectural
 * work it executed (warp rounds), and the delta of every sampled
 * hardware counter. Whole-run estimates are *stratified*: interval i
 * represents the stratum of work from its own start to the start of
 * interval i+1 (through the fast-forward leg and warm-up between
 * them), and contributes its observed per-work rate scaled by that
 * stratum's work:
 *
 *     X-hat = sum_i (x_i / w_i) * S_i,      sum_i S_i = W
 *
 * where W is the architecturally exact whole-run work. This matters
 * because the rate varies systematically across a frame (the coherent
 * primary-ray head is an order of magnitude cheaper per round than the
 * divergent tail) and early intervals observe far more rounds than
 * their share of the frame: the pooled ratio-of-sums estimator would
 * weight each observed rate by rounds *measured* instead of rounds
 * *represented* and over-weight the cheap head severely. When the
 * strata exactly coincide with the measured work (an all-detailed run)
 * the estimate degenerates to the exact measured sum with a zero CI.
 *
 * Confidence intervals treat the per-interval rates as draws from a
 * common rate distribution (one observation per stratum admits no
 * unbiased per-stratum variance): ci = t95(n-1) * sd(rate) *
 * sqrt(sum S_i^2).
 *
 * All arithmetic is in a fixed interval order over IEEE doubles, so
 * extrapolated results are bit-identical across TRT_SIM_THREADS and
 * TRT_SIMD (the inputs are integer counters that are themselves
 * deterministic).
 */

#ifndef TRT_STATS_SAMPLING_HH
#define TRT_STATS_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "snapshot/serializer.hh"

namespace trt
{

/** One detailed measured interval of a sampled run. */
struct SampleInterval
{
    uint64_t cycles = 0; //!< Detailed cycles spanned by the interval.
    uint64_t work = 0;   //!< Work executed inside the interval.
    /** Whole-run work of the stratum this interval represents: from
     *  this interval's start to the next interval's start (or the end
     *  of the run), including the fast-forward leg and warm-up between
     *  them. Filled by SampleAccumulator::closeStratum. */
    uint64_t stratumWork = 0;
    std::vector<uint64_t> deltas; //!< Per-counter deltas (fixed order).
};

/** Point estimate plus a 95% confidence half-width (same units). */
struct Estimate
{
    double value = 0.0;
    double ci95 = 0.0;
};

/** Two-sided 95% Student-t critical value for @p df degrees of
 *  freedom; the normal 1.96 beyond the tabulated range. */
double studentT95(size_t df);

/**
 * Stratified ratio extrapolation: interval i observed numerator
 * @p xs [i] over work @p ws [i] and represents @p strata [i] units of
 * whole-run work. Returns sum_i (x_i/w_i) * S_i; intervals with zero
 * observed work fall back to the pooled rate for their stratum. When
 * no work was observed at all (sum w == 0) the estimate degenerates to
 * the raw measured sum with a zero CI; when the strata coincide with
 * the measured work (sum S == sum w, an all-detailed run) the result
 * is the exact measured sum and the CI is 0.
 */
Estimate stratifiedExtrapolate(const std::vector<uint64_t> &xs,
                               const std::vector<uint64_t> &ws,
                               const std::vector<uint64_t> &strata,
                               uint64_t residualWork = 0);

/**
 * Accumulates measured intervals during a sampled run and extrapolates
 * whole-run totals once the run finishes. counterCount is fixed by the
 * first interval; later intervals must match.
 */
class SampleAccumulator
{
  public:
    void add(SampleInterval iv);

    /** Record the whole-run work represented by the most recently
     *  added interval (its stratum: own start through the following
     *  leg and warm-up). No-op when no interval has been added. */
    void closeStratum(uint64_t stratumWork);

    /** Work not represented by any interval (e.g. a frame-ending
     *  warm-up after the last interval closed); extrapolated at the
     *  pooled rate rather than any single interval's. */
    void setResidualWork(uint64_t work) { residualWork_ = work; }
    uint64_t residualWork() const { return residualWork_; }

    size_t intervals() const { return intervals_.size(); }
    size_t counterCount() const { return counterCount_; }
    const std::vector<SampleInterval> &samples() const
    { return intervals_; }

    uint64_t measuredCycles() const { return measuredCycles_; }
    uint64_t measuredWork() const { return measuredWork_; }

    /** Whole-run cycle estimate over the recorded strata. */
    Estimate extrapolateCycles() const;

    /** Whole-run estimate of every sampled counter, in the order the
     *  deltas were recorded. */
    std::vector<Estimate> extrapolateCounters() const;

    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    std::vector<uint64_t> strata() const;

    std::vector<SampleInterval> intervals_;
    size_t counterCount_ = 0;
    uint64_t measuredCycles_ = 0;
    uint64_t measuredWork_ = 0;
    uint64_t residualWork_ = 0;
};

} // namespace trt

#endif // TRT_STATS_SAMPLING_HH
