#include "workloads/rt_query.hh"

#include <algorithm>
#include <cmath>

#include "geom/onb.hh"
#include "geom/rng.hh"

namespace trt
{

namespace
{

/** L1 (Manhattan) distance — the octahedron splat's natural metric. */
float
l1Distance(const Vec3 &a, const Vec3 &b)
{
    return std::fabs(a.x - b.x) + std::fabs(a.y - b.y) +
           std::fabs(a.z - b.z);
}

/** Append the 8 faces of an L1 ball (octahedron) of radius r at c. */
void
addSplat(std::vector<Triangle> &tris, const Vec3 &c, float r)
{
    Vec3 px{c.x + r, c.y, c.z}, nx{c.x - r, c.y, c.z};
    Vec3 py{c.x, c.y + r, c.z}, ny{c.x, c.y - r, c.z};
    Vec3 pz{c.x, c.y, c.z + r}, nz{c.x, c.y, c.z - r};
    auto add = [&](const Vec3 &a, const Vec3 &b, const Vec3 &d) {
        tris.push_back(Triangle{a, b, d, 0});
    };
    add(px, py, pz);
    add(py, nx, pz);
    add(nx, ny, pz);
    add(ny, px, pz);
    add(py, px, nz);
    add(nx, py, nz);
    add(ny, nx, nz);
    add(px, ny, nz);
}

std::vector<Vec3>
generatePoints(const RtQueryConfig &cfg)
{
    Pcg32 rng(cfg.seed, 77);
    std::vector<Vec3> pts;
    pts.reserve(cfg.numPoints);

    switch (cfg.distribution) {
      case PointDistribution::Uniform:
        for (uint32_t i = 0; i < cfg.numPoints; i++) {
            pts.push_back({rng.nextFloat(), rng.nextFloat(),
                           rng.nextFloat()});
        }
        break;

      case PointDistribution::Clustered: {
        std::vector<Vec3> centers;
        for (uint32_t c = 0; c < std::max(1u, cfg.clusters); c++) {
            centers.push_back({rng.nextRange(0.1f, 0.9f),
                               rng.nextRange(0.1f, 0.9f),
                               rng.nextRange(0.1f, 0.9f)});
        }
        for (uint32_t i = 0; i < cfg.numPoints; i++) {
            const Vec3 &c = centers[rng.nextBounded(
                uint32_t(centers.size()))];
            // Box-Muller-free gaussian-ish: sum of uniforms.
            auto g = [&]() {
                return (rng.nextFloat() + rng.nextFloat() +
                        rng.nextFloat() - 1.5f) *
                       0.06f;
            };
            pts.push_back(clamp(c + Vec3{g(), g(), g()}, 0.0f, 1.0f));
        }
        break;
      }

      case PointDistribution::Shell:
      default:
        for (uint32_t i = 0; i < cfg.numPoints; i++) {
            Vec3 d = sampleUniformSphere(rng.nextFloat(),
                                         rng.nextFloat());
            float rad = 0.4f + 0.01f * rng.nextFloat();
            pts.push_back(Vec3{0.5f, 0.5f, 0.5f} + d * rad);
        }
        break;
    }
    return pts;
}

} // anonymous namespace

RtQueryWorkload
buildRtQueryWorkload(const RtQueryConfig &cfg)
{
    RtQueryWorkload wl;
    wl.points = generatePoints(cfg);

    // Splat radius = query radius so a query segment through q crosses
    // the boundary of every splat whose L1 ball contains q (RTNN's
    // geometry inflation), with a little slack for the splat's own
    // footprint.
    float r = std::max(cfg.splatRadius, cfg.queryRadius);
    wl.queryRadius = r;
    wl.scene.name = "RTQUERY";
    wl.scene.materials = {Material::lambert({0.5f, 0.5f, 0.5f})};
    wl.scene.triangles.reserve(size_t(wl.points.size()) * 8);
    for (const Vec3 &p : wl.points)
        addSplat(wl.scene.triangles, p, r);
    wl.trisPerSplat = 8;

    // Queries: points drawn from the same distribution, each lowered
    // to a segment of length 2r (the L1 ball's diameter) so the
    // segment always exits any containing ball.
    RtQueryConfig qcfg = cfg;
    qcfg.numPoints = cfg.numQueries;
    qcfg.seed = cfg.seed ^ 0x9e3779b97f4a7c15ull;
    std::vector<Vec3> qpts = generatePoints(qcfg);
    Pcg32 rng(cfg.seed, 123);
    wl.queries.reserve(qpts.size());
    for (const Vec3 &q : qpts) {
        Vec3 d = sampleUniformSphere(rng.nextFloat(), rng.nextFloat());
        wl.queries.emplace_back(q, d, 0.0f, 2.0f * r);
    }
    return wl;
}

QueryResult
bruteForceNearest(const std::vector<Vec3> &points, const Vec3 &q,
                  float radius)
{
    QueryResult r;
    for (uint32_t i = 0; i < points.size(); i++) {
        float d = l1Distance(points[i], q);
        if (d <= radius && (!(r.distance >= 0.0f) || d < r.distance)) {
            r.distance = d;
            r.nearest = i;
        }
    }
    return r;
}

std::vector<QueryResult>
answerQueries(const RtQueryWorkload &wl, const Bvh &bvh)
{
    // Anyhit-style traversal: enumerate every splat whose boundary the
    // query segment crosses (a superset of the balls containing q),
    // then rank candidates by exact L1 distance with the in-range
    // filter. This mirrors what an RTNN-style anyhit shader computes.
    float radius = wl.queryRadius;
    std::vector<QueryResult> out;
    out.reserve(wl.queries.size());

    std::vector<uint32_t> stack;
    for (const Ray &ray : wl.queries) {
        RayInv inv(ray);
        Vec3 q = ray.orig;
        QueryResult best;

        stack.clear();
        stack.push_back(bvh.rootNode());
        while (!stack.empty()) {
            uint32_t ni = stack.back();
            stack.pop_back();
            const WideNode &n = bvh.nodes()[ni];
            for (const auto &c : n.child) {
                if (c.kind == WideChild::Invalid)
                    continue;
                float t;
                if (!intersectAabb(ray, inv, c.bounds, t))
                    continue;
                if (c.kind == WideChild::Internal) {
                    stack.push_back(c.index);
                    continue;
                }
                for (uint32_t k = 0; k < c.count; k++) {
                    float tt, u, v;
                    const Triangle &tri =
                        bvh.triangles()[c.index + k];
                    if (!intersectTriangle(ray, tri, tt, u, v))
                        continue;
                    uint32_t pt = wl.pointOf(
                        bvh.originalTriIndex(c.index + k));
                    float d = l1Distance(wl.points[pt], q);
                    if (d <= radius &&
                        (!(best.distance >= 0.0f) ||
                         d < best.distance)) {
                        best.distance = d;
                        best.nearest = pt;
                    }
                }
            }
        }
        out.push_back(best);
    }
    return out;
}

} // namespace trt
