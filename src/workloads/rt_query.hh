/**
 * @file
 * General tree-traversal workloads on the RT unit — the paper's
 * future-work direction (section 8): RT-DBSCAN, RTIndeX and RTNN map
 * database/neighbor queries onto ray tracing hardware by encoding data
 * points as geometry in a BVH and queries as rays. This module builds
 * that mapping on our substrate so the treelet-queue architecture can
 * be evaluated on a non-rendering workload.
 *
 * Encoding (after RTNN, Zhu PPoPP'22): each data point becomes a small
 * axis-aligned octahedron (a "splat") of radius r; a fixed-radius
 * neighbor query for point q becomes a short ray segment through q.
 * Every splat whose geometry the ray segment hits lies within ~r of q,
 * so closest-hit traversal finds the nearest neighbor and the
 * traversal's leaf visits enumerate candidates. Query rays are
 * extremely incoherent (random access pattern), which is exactly the
 * regime treelet queues target.
 */

#ifndef TRT_WORKLOADS_RT_QUERY_HH
#define TRT_WORKLOADS_RT_QUERY_HH

#include <cstdint>
#include <vector>

#include "bvh/bvh.hh"
#include "geom/vec.hh"
#include "scene/scene.hh"

namespace trt
{

/** Distribution of the synthetic point set. */
enum class PointDistribution : uint8_t
{
    Uniform,    //!< Uniform in the unit cube (DBSCAN-hard).
    Clustered,  //!< Gaussian clusters (typical embedding index).
    Shell,      //!< Points on a sphere shell (kNN-on-manifold).
};

/** Parameters of a point-query workload. */
struct RtQueryConfig
{
    uint32_t numPoints = 100000;
    uint32_t numQueries = 65536;
    PointDistribution distribution = PointDistribution::Clustered;
    uint32_t clusters = 64;      //!< For Clustered.
    float splatRadius = 0.004f;  //!< Point splat half-extent.
    float queryRadius = 0.02f;   //!< Fixed-radius query range.
    uint64_t seed = 1;
};

/**
 * A point-query workload lowered to the ray tracing substrate: a Scene
 * whose triangles are point splats, plus the query rays. Feed the
 * scene to Bvh::build and the rays to a query kernel or to the GPU
 * model via the QueryShader adapter below.
 */
struct RtQueryWorkload
{
    Scene scene;                 //!< Splat geometry (one material).
    std::vector<Vec3> points;    //!< Original points.
    std::vector<Ray> queries;    //!< One segment ray per query.
    float queryRadius = 0.0f;    //!< Effective L1 query radius.
    /** Splat index = triangle's original index / trisPerSplat. */
    uint32_t trisPerSplat = 8;

    /** Point index a hit triangle belongs to. */
    uint32_t
    pointOf(uint32_t original_tri_index) const
    {
        return original_tri_index / trisPerSplat;
    }
};

/** Build the synthetic workload (deterministic in cfg.seed). */
RtQueryWorkload buildRtQueryWorkload(const RtQueryConfig &cfg);

/** Result of one query. */
struct QueryResult
{
    uint32_t nearest = ~0u; //!< Nearest point index, ~0u if none in range.
    float distance = -1.0f;
};

/**
 * Functional reference: answer every query by BVH traversal (closest
 * hit). Used by tests against brute force and by the example.
 */
std::vector<QueryResult> answerQueries(const RtQueryWorkload &wl,
                                       const Bvh &bvh);

/** Brute-force reference for validation. */
QueryResult bruteForceNearest(const std::vector<Vec3> &points,
                              const Vec3 &q, float radius);

} // namespace trt

#endif // TRT_WORKLOADS_RT_QUERY_HH
