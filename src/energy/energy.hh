/**
 * @file
 * AccelWattch-style per-event energy model (paper section 5 uses
 * AccelWattch inside Vulkan-Sim). Energy = sum over event counts times
 * per-event energies, plus a static/constant term proportional to
 * runtime. Per-access energies follow published CACTI/AccelWattch-class
 * numbers at a 7-8nm-ish node; Figure 17 only relies on *relative*
 * energy, which a per-event model over identical event streams
 * preserves.
 */

#ifndef TRT_ENERGY_ENERGY_HH
#define TRT_ENERGY_ENERGY_HH

#include <cstdint>

#include "gpu/gpu.hh"

namespace trt
{

/** Per-event energies in nanojoules. */
struct EnergyParams
{
    double dramPerByte = 0.015;      //!< ~15 pJ/byte off-chip.
    double l2PerAccess = 0.60;       //!< Per line access.
    double l1PerAccess = 0.12;
    double aluPerLaneInstr = 0.004;  //!< Includes RF read/write.
    double boxTest = 0.020;          //!< Fixed-function box test.
    double triTest = 0.060;          //!< Fixed-function triangle test.
    double queueTableOp = 0.010;     //!< Treelet controller table update.
    double staticPerSmCycle = 0.35;  //!< Leakage + clock tree per SM.
};

/** Energy breakdown in nanojoules. */
struct EnergyReport
{
    double dram = 0.0;
    double l2 = 0.0;
    double l1 = 0.0;
    double core = 0.0;       //!< Shader ALU + register file.
    double rtUnit = 0.0;     //!< Intersection tests + controller.
    double ctaState = 0.0;   //!< Ray virtualization save/restore traffic.
    double staticE = 0.0;

    double
    total() const
    {
        return dram + l2 + l1 + core + rtUnit + ctaState + staticE;
    }

    /** Share of total energy spent on virtualization traffic. */
    double
    virtualizationShare() const
    {
        double t = total();
        return t > 0.0 ? ctaState / t : 0.0;
    }
};

/** Compute the energy breakdown for one finished run. */
EnergyReport computeEnergy(const RunStats &run, uint32_t num_sms,
                           const EnergyParams &params = {});

} // namespace trt

#endif // TRT_ENERGY_ENERGY_HH
