#include "energy/energy.hh"

namespace trt
{

EnergyReport
computeEnergy(const RunStats &run, uint32_t num_sms,
              const EnergyParams &p)
{
    EnergyReport r;

    // Memory hierarchy, per class so CTA-state traffic is separable.
    for (size_t c = 0; c < run.mem.size(); c++) {
        const MemClassStats &m = run.mem[c];
        double dram =
            double(m.dramReadBytes + m.dramWriteBytes) * p.dramPerByte;
        double l2 = double(m.l2Accesses) * p.l2PerAccess;
        double l1 = double(m.l1Accesses) * p.l1PerAccess;
        if (MemClass(c) == MemClass::CtaState) {
            r.ctaState += dram + l2 + l1;
        } else {
            r.dram += dram;
            r.l2 += l2;
            r.l1 += l1;
        }
    }

    r.core = double(run.aluLaneInstrs) * p.aluPerLaneInstr;

    uint64_t box = 0, tri = 0;
    // Box vs triangle split: leaf visits ran triangle tests, node
    // visits ran box tests; isectTests aggregates both, so apportion by
    // visit counts (box tests dominate).
    uint64_t tests = 0;
    for (auto t : run.rt.isectTests)
        tests += t;
    uint64_t visits = run.rt.nodeVisits + run.rt.leafVisits;
    if (visits > 0) {
        box = tests * run.rt.nodeVisits / visits;
        tri = tests - box;
    }
    r.rtUnit = double(box) * p.boxTest + double(tri) * p.triTest +
               double(run.rt.raysEnqueued + run.rt.repackedRays) *
                   p.queueTableOp;

    r.staticE = double(run.cycles) * double(num_sms) * p.staticPerSmCycle;
    return r;
}

} // namespace trt
