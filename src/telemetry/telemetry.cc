#include "telemetry/telemetry.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/env.hh"

namespace trt
{

namespace
{

constexpr uint32_t kBinMagic = 0x54545254u; // 'TRTT'
constexpr uint32_t kBinVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

void
writeSample(std::ostream &os, const TelemSample &s)
{
    writePod(os, s.cycle);
    writePod(os, s.sm);
    writePod(os, s.raysHeld);
    writePod(os, s.queuedRays);
    writePod(os, s.queueCount);
    for (uint32_t d : s.queueDepth)
        writePod(os, d);
    writePod(os, s.treeletSwitches);
    writePod(os, s.predictLookups);
    writePod(os, s.predictHits);
    writePod(os, s.nodeVisits);
    writePod(os, s.raysCompleted);
}

void
writeGpuSample(std::ostream &os, const TelemGpuSample &s)
{
    writePod(os, s.cycle);
    writePod(os, s.bvhL1Accesses);
    writePod(os, s.bvhL1Misses);
    writePod(os, s.bvhL2Accesses);
    writePod(os, s.bvhL2Misses);
    writePod(os, s.dramReadBytes);
    writePod(os, s.dramWriteBytes);
}

void
writeEvent(std::ostream &os, const TelemEvent &e)
{
    writePod(os, e.cycle);
    writePod(os, e.sm);
    writePod(os, uint8_t(e.kind));
    writePod(os, e.a0);
    writePod(os, e.a1);
}

} // anonymous namespace

const char *
telemEventKindName(TelemEventKind k)
{
    switch (k) {
      case TelemEventKind::WarpFormed:
        return "warp_formed";
      case TelemEventKind::TreeletSwitch:
        return "treelet_switch";
      case TelemEventKind::QueueDrained:
        return "queue_drained";
      case TelemEventKind::QueueOverflow:
        return "queue_overflow";
      case TelemEventKind::SpeculationVerdict:
        return "spec_verdict";
      case TelemEventKind::PrefetchIssue:
        return "prefetch_issue";
      case TelemEventKind::TreeletPhaseEntered:
        return "treelet_phase_entered";
      case TelemEventKind::SnapshotCapture:
        return "snapshot_capture";
      case TelemEventKind::PhaseBegin:
        return "phase_begin";
      default:
        return "unknown";
    }
}

const char *
telemPhaseName(TelemPhase p)
{
    switch (p) {
      case TelemPhase::Detailed:
        return "detailed";
      case TelemPhase::Measure:
        return "measure";
      case TelemPhase::FastForward:
        return "fast_forward";
      case TelemPhase::Warmup:
        return "warmup";
      default:
        return "unknown";
    }
}

TelemetryConfig
TelemetryConfig::fromEnv()
{
    TelemetryConfig c;
    c.enabled = envFlag("TRT_TELEM", false);
    c.trace = envFlag("TRT_TELEM_TRACE", false);
    // Tracing implies sampling: a trace without the counter series
    // would render empty tracks in Perfetto, and every documented
    // workflow wants both.
    if (c.trace)
        c.enabled = true;
    c.everyCycles = envUInt("TRT_TELEM_EVERY", c.everyCycles);
    if (c.everyCycles == 0)
        throw EnvError("TRT_TELEM_EVERY: must be > 0");
    c.outDir = envString("TRT_TELEM_OUT", c.outDir);
    return c;
}

Telemetry::Telemetry(const TelemetryConfig &cfg, uint32_t num_sms)
    : cfg_(cfg), numSms_(num_sms), channels_(num_sms + 1)
{
    for (uint32_t i = 0; i < num_sms + 1; i++) {
        TelemChannel &ch = channels_[i];
        ch.sm = i;
        ch.samplingOn = cfg_.enabled;
        ch.eventsOn = cfg_.trace;
        ch.every = cfg_.everyCycles;
        ch.nextSampleAt = 0;
    }
    // The gpu track never self-samples; the Gpu pushes its samples
    // directly at the commit boundary.
    channels_[num_sms].samplingOn = false;
}

void
Telemetry::commit()
{
    for (TelemChannel &ch : channels_) {
        if (!ch.samples.empty()) {
            samples_.insert(samples_.end(), ch.samples.begin(),
                            ch.samples.end());
            ch.samples.clear();
        }
        if (!ch.events.empty()) {
            events_.insert(events_.end(), ch.events.begin(),
                           ch.events.end());
            ch.events.clear();
        }
    }
}

std::string
Telemetry::binPath() const
{
    std::string base = cfg_.outBase.empty() ? "telem" : cfg_.outBase;
    return cfg_.outDir + "/" + base + ".tsbin";
}

std::string
Telemetry::jsonPath() const
{
    std::string base = cfg_.outBase.empty() ? "telem" : cfg_.outBase;
    return cfg_.outDir + "/" + base + ".trace.json";
}

void
Telemetry::writeFiles() const
{
    std::filesystem::create_directories(cfg_.outDir);
    writeBinary(binPath());
    if (cfg_.trace)
        writeJson(jsonPath());
}

void
Telemetry::writeBinary(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("telemetry: cannot write " + path);

    writePod(os, kBinMagic);
    writePod(os, kBinVersion);
    writePod(os, cfg_.everyCycles);
    writePod(os, numSms_);
    writePod(os, uint8_t(cfg_.trace ? 1 : 0));

    writePod(os, uint64_t(samples_.size()));
    for (const TelemSample &s : samples_)
        writeSample(os, s);
    writePod(os, uint64_t(gpuSamples_.size()));
    for (const TelemGpuSample &s : gpuSamples_)
        writeGpuSample(os, s);
    writePod(os, uint64_t(events_.size()));
    for (const TelemEvent &e : events_)
        writeEvent(os, e);
}

void
Telemetry::writeJson(const std::string &path) const
{
    // Hand-rolled, integer-only JSON: byte determinism is part of the
    // format contract (the CI/test matrix byte-compares traces across
    // thread counts), so no floats, no locale, no wall-clock.
    std::ostringstream js;
    js << "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            js << ",\n";
        first = false;
        js << line;
    };

    // Track metadata: one thread per SM plus the gpu track, sorted in
    // SM order.
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"trt-sim\"}}");
    for (uint32_t sm = 0; sm <= numSms_; sm++) {
        std::ostringstream m;
        std::string tname =
            sm == numSms_ ? std::string("gpu")
                          : "SM" + std::to_string(sm);
        m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
          << sm << ",\"args\":{\"name\":\"" << tname << "\"}}";
        emit(m.str());
        std::ostringstream so;
        so << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << sm << ",\"args\":{\"sort_index\":" << sm
           << "}}";
        emit(so.str());
    }

    // Per-SM counter tracks from the time series. Cumulative fields
    // are differentiated against the SM's previous sample so the
    // tracks read as per-interval rates.
    std::vector<TelemSample> prev(numSms_ + 1);
    for (const TelemSample &s : samples_) {
        const TelemSample &p = prev[s.sm];
        std::ostringstream c;
        c << "{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":" << s.cycle
          << ",\"pid\":0,\"tid\":" << s.sm << ",\"args\":{\"rays\":"
          << s.raysHeld << "}}";
        emit(c.str());
        std::ostringstream q;
        q << "{\"name\":\"queueDepth\",\"ph\":\"C\",\"ts\":" << s.cycle
          << ",\"pid\":0,\"tid\":" << s.sm << ",\"args\":{"
          << "\"q0\":" << s.queueDepth[0] << ",\"q1\":"
          << s.queueDepth[1] << ",\"q2\":" << s.queueDepth[2]
          << ",\"q3\":" << s.queueDepth[3] << ",\"rest\":"
          << (s.queuedRays - std::min(s.queuedRays,
                                      s.queueDepth[0] + s.queueDepth[1] +
                                          s.queueDepth[2] +
                                          s.queueDepth[3]))
          << "}}";
        emit(q.str());
        std::ostringstream qc;
        qc << "{\"name\":\"liveQueues\",\"ph\":\"C\",\"ts\":" << s.cycle
           << ",\"pid\":0,\"tid\":" << s.sm << ",\"args\":{\"queues\":"
           << s.queueCount << "}}";
        emit(qc.str());
        std::ostringstream w;
        w << "{\"name\":\"work\",\"ph\":\"C\",\"ts\":" << s.cycle
          << ",\"pid\":0,\"tid\":" << s.sm << ",\"args\":{"
          << "\"treeletSwitches\":" << (s.treeletSwitches -
                                        p.treeletSwitches)
          << ",\"nodeVisits\":" << (s.nodeVisits - p.nodeVisits)
          << ",\"raysCompleted\":" << (s.raysCompleted - p.raysCompleted)
          << "}}";
        emit(w.str());
        uint64_t dLook = s.predictLookups - p.predictLookups;
        if (dLook) {
            uint64_t dHit = s.predictHits - p.predictHits;
            std::ostringstream pr;
            pr << "{\"name\":\"predictHitRate\",\"ph\":\"C\",\"ts\":"
               << s.cycle << ",\"pid\":0,\"tid\":" << s.sm
               << ",\"args\":{\"pct\":" << (100 * dHit / dLook) << "}}";
            emit(pr.str());
        }
        prev[s.sm] = s;
    }

    // GPU-level memory counters, differentiated the same way.
    TelemGpuSample gprev;
    for (const TelemGpuSample &s : gpuSamples_) {
        std::ostringstream l1;
        l1 << "{\"name\":\"bvhL1\",\"ph\":\"C\",\"ts\":" << s.cycle
           << ",\"pid\":0,\"tid\":" << numSms_ << ",\"args\":{"
           << "\"accesses\":" << (s.bvhL1Accesses - gprev.bvhL1Accesses)
           << ",\"misses\":" << (s.bvhL1Misses - gprev.bvhL1Misses)
           << "}}";
        emit(l1.str());
        std::ostringstream l2;
        l2 << "{\"name\":\"bvhL2\",\"ph\":\"C\",\"ts\":" << s.cycle
           << ",\"pid\":0,\"tid\":" << numSms_ << ",\"args\":{"
           << "\"accesses\":" << (s.bvhL2Accesses - gprev.bvhL2Accesses)
           << ",\"misses\":" << (s.bvhL2Misses - gprev.bvhL2Misses)
           << "}}";
        emit(l2.str());
        std::ostringstream dr;
        dr << "{\"name\":\"dramBytes\",\"ph\":\"C\",\"ts\":" << s.cycle
           << ",\"pid\":0,\"tid\":" << numSms_ << ",\"args\":{"
           << "\"read\":" << (s.dramReadBytes - gprev.dramReadBytes)
           << ",\"write\":" << (s.dramWriteBytes - gprev.dramWriteBytes)
           << "}}";
        emit(dr.str());
        gprev = s;
    }

    // Events. PhaseBegin markers on the gpu track are turned into
    // begin/end duration pairs here (pairing at export time cannot
    // leave an unbalanced B dangling mid-stream); everything else is
    // an instant on its SM's track.
    bool phaseOpen = false;
    uint64_t lastCycle = 0;
    for (const TelemEvent &e : events_) {
        lastCycle = std::max(lastCycle, e.cycle);
        if (e.kind == TelemEventKind::PhaseBegin) {
            if (phaseOpen) {
                std::ostringstream pe;
                pe << "{\"ph\":\"E\",\"ts\":" << e.cycle
                   << ",\"pid\":0,\"tid\":" << numSms_ << "}";
                emit(pe.str());
            }
            std::ostringstream pb;
            pb << "{\"name\":\""
               << telemPhaseName(TelemPhase(uint8_t(e.a0)))
               << "\",\"ph\":\"B\",\"ts\":" << e.cycle
               << ",\"pid\":0,\"tid\":" << numSms_ << "}";
            emit(pb.str());
            phaseOpen = true;
            continue;
        }
        std::ostringstream ev;
        ev << "{\"name\":\"" << telemEventKindName(e.kind)
           << "\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":" << e.sm << ",\"s\":\"t\","
           << "\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}}";
        emit(ev.str());
    }
    for (const TelemSample &s : samples_)
        lastCycle = std::max(lastCycle, s.cycle);
    if (phaseOpen) {
        std::ostringstream pe;
        pe << "{\"ph\":\"E\",\"ts\":" << lastCycle
           << ",\"pid\":0,\"tid\":" << numSms_ << "}";
        emit(pe.str());
    }

    js << "\n]}\n";

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw std::runtime_error("telemetry: cannot write " + path);
    os << js.str();
}

void
Telemetry::recentDump(std::ostream &os, size_t per_sm) const
{
    os << "telemetry: last " << per_sm
       << " samples per SM (cycle: rays queued queues switches)\n";
    for (uint32_t sm = 0; sm < numSms_; sm++) {
        std::vector<const TelemSample *> recent;
        for (size_t i = samples_.size(); i-- > 0 &&
                                         recent.size() < per_sm;) {
            if (samples_[i].sm == sm)
                recent.push_back(&samples_[i]);
        }
        os << "  sm" << sm << ":";
        if (recent.empty()) {
            os << " (no samples)\n";
            continue;
        }
        for (size_t i = recent.size(); i-- > 0;) {
            const TelemSample &s = *recent[i];
            os << "  " << s.cycle << ": " << s.raysHeld << " "
               << s.queuedRays << " " << s.queueCount << " "
               << s.treeletSwitches;
        }
        os << "\n";
    }
}

void
Telemetry::saveState(Serializer &s) const
{
    s.beginChunk("TELM");
    s.u32(numSms_);
    s.u64(nextGpuSampleAt_);
    for (const TelemChannel &ch : channels_) {
        // commit() must precede saveState; staged data would vanish.
        if (!ch.samples.empty() || !ch.events.empty())
            throw SnapshotError("telemetry: channel not drained before "
                                "snapshot");
        s.u64(ch.nextSampleAt);
    }
    s.u64(samples_.size());
    for (const TelemSample &sm : samples_) {
        s.u64(sm.cycle);
        s.u32(sm.sm);
        s.u32(sm.raysHeld);
        s.u32(sm.queuedRays);
        s.u32(sm.queueCount);
        for (uint32_t d : sm.queueDepth)
            s.u32(d);
        s.u64(sm.treeletSwitches);
        s.u64(sm.predictLookups);
        s.u64(sm.predictHits);
        s.u64(sm.nodeVisits);
        s.u64(sm.raysCompleted);
    }
    s.u64(gpuSamples_.size());
    for (const TelemGpuSample &g : gpuSamples_) {
        s.u64(g.cycle);
        s.u64(g.bvhL1Accesses);
        s.u64(g.bvhL1Misses);
        s.u64(g.bvhL2Accesses);
        s.u64(g.bvhL2Misses);
        s.u64(g.dramReadBytes);
        s.u64(g.dramWriteBytes);
    }
    s.u64(events_.size());
    for (const TelemEvent &e : events_) {
        s.u64(e.cycle);
        s.u32(e.sm);
        s.u8(uint8_t(e.kind));
        s.u64(e.a0);
        s.u64(e.a1);
    }
    s.endChunk();
}

void
Telemetry::loadState(Deserializer &d)
{
    d.beginChunk("TELM");
    if (d.u32() != numSms_)
        throw SnapshotError("telemetry: SM count mismatch");
    nextGpuSampleAt_ = d.u64();
    for (TelemChannel &ch : channels_) {
        ch.nextSampleAt = d.u64();
        ch.samples.clear();
        ch.events.clear();
    }
    samples_.clear();
    gpuSamples_.clear();
    events_.clear();
    uint64_t n = d.u64();
    samples_.reserve(n);
    for (uint64_t i = 0; i < n; i++) {
        TelemSample sm;
        sm.cycle = d.u64();
        sm.sm = d.u32();
        sm.raysHeld = d.u32();
        sm.queuedRays = d.u32();
        sm.queueCount = d.u32();
        for (uint32_t &dep : sm.queueDepth)
            dep = d.u32();
        sm.treeletSwitches = d.u64();
        sm.predictLookups = d.u64();
        sm.predictHits = d.u64();
        sm.nodeVisits = d.u64();
        sm.raysCompleted = d.u64();
        samples_.push_back(sm);
    }
    n = d.u64();
    gpuSamples_.reserve(n);
    for (uint64_t i = 0; i < n; i++) {
        TelemGpuSample g;
        g.cycle = d.u64();
        g.bvhL1Accesses = d.u64();
        g.bvhL1Misses = d.u64();
        g.bvhL2Accesses = d.u64();
        g.bvhL2Misses = d.u64();
        g.dramReadBytes = d.u64();
        g.dramWriteBytes = d.u64();
        gpuSamples_.push_back(g);
    }
    n = d.u64();
    events_.reserve(n);
    for (uint64_t i = 0; i < n; i++) {
        TelemEvent e;
        e.cycle = d.u64();
        e.sm = d.u32();
        uint8_t kind = d.u8();
        if (kind >= uint8_t(TelemEventKind::NumKinds))
            throw SnapshotError("telemetry: bad event kind");
        e.kind = TelemEventKind(kind);
        e.a0 = d.u64();
        e.a1 = d.u64();
        events_.push_back(e);
    }
    d.endChunk();
}

} // namespace trt
