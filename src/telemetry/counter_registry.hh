/**
 * @file
 * Self-describing counter registry (DESIGN.md §12): every RtStats /
 * RunStats counter is enumerated from one table with its name, unit
 * and aggregation kind. Serialization (run_stats_io, snapshot chunks),
 * cross-unit accumulation and the sampled-simulation counter
 * enumeration all walk this registry, so adding a counter is one entry
 * here plus the field — the hand-maintained per-consumer lists are
 * gone and can never skew out of step again.
 *
 * The visitors deliberately traverse fields in declaration order, which
 * matches the historic run_stats_io / RTST-chunk layout; the callback
 * receives a reference of the field's native width (uint64_t or
 * uint32_t) so byte layouts are fixed by the registry, not the caller.
 */

#ifndef TRT_TELEMETRY_COUNTER_REGISTRY_HH
#define TRT_TELEMETRY_COUNTER_REGISTRY_HH

#include <cstdint>
#include <string>

#include "gpu/gpu.hh"
#include "gpu/rt_unit.hh"
#include "memsys/memsys.hh"

namespace trt
{

/** How a counter combines across units and extrapolates under
 *  sampling (DESIGN.md §8). */
enum class CounterKind : uint8_t
{
    /** Monotonic work counter: summed across units, scaled by the
     *  sampled simulator's work-rate extrapolation. */
    Work,
    /** Summed across units but *exact by construction* even in sampled
     *  runs (counted functionally during fast-forward too), so never
     *  extrapolated. */
    Exact,
    /** High-water mark: max-merged across units, meaningless to
     *  extrapolate. */
    HighWater,
};

/** One registry entry describing the counter a visitor is holding. */
struct CounterInfo
{
    std::string name; //!< Dotted path, e.g. "rt.nodeVisits".
    const char *unit; //!< Human unit for reports ("cycles", "bytes"...).
    CounterKind kind;
};

/**
 * Visit every RtStats counter in serialization order.
 * @p fn is invoked as fn(const CounterInfo &, <uint64_t|uint32_t> &)
 * with a reference into @p rt (const when @p rt is const).
 */
template <typename RT, typename Fn>
void
forEachRtCounter(RT &rt, Fn &&fn)
{
    auto work = [&](const char *name, auto &v, const char *unit) {
        fn(CounterInfo{std::string("rt.") + name, unit,
                       CounterKind::Work},
           v);
    };
    auto high = [&](const char *name, auto &v) {
        fn(CounterInfo{std::string("rt.") + name, "peak",
                       CounterKind::HighWater},
           v);
    };

    work("activeLaneCycles", rt.activeLaneCycles, "lane-cycles");
    work("slotLaneCycles", rt.slotLaneCycles, "lane-cycles");
    for (size_t i = 0; i < rt.modeCycles.size(); i++)
        work((std::string("modeCycles.") +
              traversalModeName(TraversalMode(i)))
                 .c_str(),
             rt.modeCycles[i], "cycles");
    for (size_t i = 0; i < rt.isectTests.size(); i++)
        work((std::string("isectTests.") +
              traversalModeName(TraversalMode(i)))
                 .c_str(),
             rt.isectTests[i], "tests");
    work("nodeVisits", rt.nodeVisits, "nodes");
    work("leafVisits", rt.leafVisits, "leaves");
    work("raysCompleted", rt.raysCompleted, "rays");
    work("boundaryCrossings", rt.boundaryCrossings, "crossings");
    work("raysEnqueued", rt.raysEnqueued, "rays");
    work("treeletWarpsFormed", rt.treeletWarpsFormed, "warps");
    work("groupedWarpsFormed", rt.groupedWarpsFormed, "warps");
    work("repackEvents", rt.repackEvents, "events");
    work("repackedRays", rt.repackedRays, "rays");
    work("treeletSwitches", rt.treeletSwitches, "switches");
    high("countTableHighWater", rt.countTableHighWater);
    high("countTableOverThresholdHW", rt.countTableOverThresholdHW);
    high("queueTableEntriesHW", rt.queueTableEntriesHW);
    high("maxConcurrentRays", rt.maxConcurrentRays);
    work("prefetchLines", rt.prefetchLines, "lines");
    work("prefetchUsedLines", rt.prefetchUsedLines, "lines");
    work("prefetchIssues", rt.prefetchIssues, "issues");
    work("reorderBatches", rt.reorderBatches, "batches");
    work("predictLookups", rt.predictLookups, "probes");
    work("predictHits", rt.predictHits, "hits");
    work("predictMisses", rt.predictMisses, "misses");
    work("predictInserts", rt.predictInserts, "inserts");
}

/**
 * Visit one memory class's MemClassStats counters (all Work, all
 * uint64_t) under names "mem.<class>.<field>".
 */
template <typename MS, typename Fn>
void
forEachMemCounter(MS &ms, MemClass cls, Fn &&fn)
{
    std::string base = std::string("mem.") + memClassName(cls) + ".";
    auto work = [&](const char *name, auto &v, const char *unit) {
        fn(CounterInfo{base + name, unit, CounterKind::Work}, v);
    };
    work("l1Accesses", ms.l1Accesses, "accesses");
    work("l1Misses", ms.l1Misses, "misses");
    work("l2Accesses", ms.l2Accesses, "accesses");
    work("l2Misses", ms.l2Misses, "misses");
    work("dramAccesses", ms.dramAccesses, "accesses");
    work("dramReadBytes", ms.dramReadBytes, "bytes");
    work("dramWriteBytes", ms.dramWriteBytes, "bytes");
    work("writes", ms.writes, "writes");
}

/**
 * Visit every scalar counter of a RunStats: the RT counters, then each
 * memory class, then the GPU-level counters. This is the authoritative
 * enumeration behind run_stats_io and the sampled-counter vector; the
 * Work-kind subset, in this order, IS the sampled-counter layout.
 */
template <typename RS, typename Fn>
void
forEachRunCounter(RS &rs, Fn &&fn)
{
    forEachRtCounter(rs.rt, fn);
    for (size_t c = 0; c < size_t(MemClass::NumClasses); c++)
        forEachMemCounter(rs.mem[c], MemClass(c), fn);

    // ALU instructions, traced rays and CTA launches are counted
    // functionally during sampled fast-forward too, so they are exact
    // and must never be extrapolated (DESIGN.md §8).
    fn(CounterInfo{"aluLaneInstrs", "instrs", CounterKind::Exact},
       rs.aluLaneInstrs);
    fn(CounterInfo{"raysTraced", "rays", CounterKind::Exact},
       rs.raysTraced);
    fn(CounterInfo{"ctasLaunched", "ctas", CounterKind::Exact},
       rs.ctasLaunched);
    fn(CounterInfo{"ctaSaves", "saves", CounterKind::Work}, rs.ctaSaves);
    fn(CounterInfo{"ctaRestores", "restores", CounterKind::Work},
       rs.ctaRestores);
    fn(CounterInfo{"ctaStateBytes", "bytes", CounterKind::Work},
       rs.ctaStateBytes);
}

} // namespace trt

#endif // TRT_TELEMETRY_COUNTER_REGISTRY_HH
