/**
 * @file
 * Deterministic telemetry layer (DESIGN.md §12): per-SM time-series
 * sampling and event tracing for the cycle-level simulator.
 *
 * Determinism contract: during the parallel SM tick phase each unit
 * writes only its own TelemChannel (samples and events staged in plain
 * vectors, no shared state). At the serial cycle-commit boundary the
 * Gpu drains every channel in SM order — so the merged streams are in
 * (commit window, sm, intra-SM order), bit-identical at any
 * TRT_SIM_THREADS. All record timestamps are simulated cycles; no
 * wall-clock value ever enters a trace.
 *
 * Outputs (written once, at end of run):
 *   <out>/<base>.tsbin       versioned binary time series (v1; CSV via
 *                            scripts/telem_report.py)
 *   <out>/<base>.trace.json  Chrome trace-event JSON (Perfetto /
 *                            chrome://tracing), one track per SM plus
 *                            a "gpu" track for memory-system counters,
 *                            snapshot captures and sampled-simulation
 *                            phases.
 */

#ifndef TRT_TELEMETRY_TELEMETRY_HH
#define TRT_TELEMETRY_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "snapshot/serializer.hh"

namespace trt
{

/** Telemetry knobs (TRT_TELEM*). Wall-clock/observability only: never
 *  part of GpuConfig::fingerprint(), never a RunStats input. */
struct TelemetryConfig
{
    /** Time-series sampling (TRT_TELEM=1). */
    bool enabled = false;
    /** Event tracing (TRT_TELEM_TRACE=1; implies on()). */
    bool trace = false;
    /** Sampling period in simulated cycles (TRT_TELEM_EVERY). */
    uint64_t everyCycles = 4096;
    /** Output directory (TRT_TELEM_OUT, default "telemetry"). */
    std::string outDir = "telemetry";
    /** Per-run file base name; the harness derives it from the scene,
     *  architecture and config fingerprint. Empty -> "telem". */
    std::string outBase;

    bool on() const { return enabled || trace; }

    /** Read TRT_TELEM / TRT_TELEM_TRACE / TRT_TELEM_EVERY /
     *  TRT_TELEM_OUT. */
    static TelemetryConfig fromEnv();
};

/** Traced event kinds (the a0/a1 payload meaning per kind). */
enum class TelemEventKind : uint8_t
{
    WarpFormed = 0,      //!< a0 = TraversalMode, a1 = rays in the warp.
    TreeletSwitch,       //!< a0 = new treelet id (VTQ L1 reload).
    QueueDrained,        //!< a0 = treelet id whose queue emptied.
    QueueOverflow,       //!< a0 = rays in flight (admission refused).
    SpeculationVerdict,  //!< a0 = 1 correct / 0 wrong prediction.
    PrefetchIssue,       //!< a0 = treelet id, a1 = lines fetched.
    TreeletPhaseEntered, //!< First treelet-stationary warp of this SM.
    SnapshotCapture,     //!< gpu track; a0 = snapshot cycle.
    PhaseBegin,          //!< gpu track; a0 = TelemPhase (B/E pairs are
                         //!< synthesized by the JSON exporter).
    NumKinds
};

const char *telemEventKindName(TelemEventKind k);

/** Sampled-simulation phase markers (DESIGN.md §8). */
enum class TelemPhase : uint8_t
{
    Detailed = 0, //!< Full-detail simulation (incl. all-detailed runs).
    Measure,      //!< Measured interval.
    FastForward,  //!< Functional fast-forward leg.
    Warmup,       //!< Discarded detailed warm-up.
    NumPhases
};

const char *telemPhaseName(TelemPhase p);

/** One periodic per-SM snapshot. Counter fields are cumulative (the
 *  CSV converter differentiates); depth fields are instantaneous. */
struct TelemSample
{
    uint64_t cycle = 0;
    uint32_t sm = 0;
    uint32_t raysHeld = 0;   //!< Rays queued, parked or stepping.
    uint32_t queuedRays = 0; //!< VTQ: rays parked in treelet queues.
    uint32_t queueCount = 0; //!< VTQ: live treelet queues.
    /** VTQ: the four deepest queue depths, descending. */
    std::array<uint32_t, 4> queueDepth{};
    uint64_t treeletSwitches = 0;
    uint64_t predictLookups = 0;
    uint64_t predictHits = 0;
    uint64_t nodeVisits = 0;
    uint64_t raysCompleted = 0;
};

/** One periodic GPU-level (memory-system) snapshot, captured at the
 *  serial commit boundary. Cumulative counters. */
struct TelemGpuSample
{
    uint64_t cycle = 0;
    uint64_t bvhL1Accesses = 0; //!< BVH node + triangle classes.
    uint64_t bvhL1Misses = 0;
    uint64_t bvhL2Accesses = 0;
    uint64_t bvhL2Misses = 0;
    uint64_t dramReadBytes = 0; //!< All classes.
    uint64_t dramWriteBytes = 0;
};

/** One traced event. */
struct TelemEvent
{
    uint64_t cycle = 0;
    uint32_t sm = 0;
    TelemEventKind kind = TelemEventKind::WarpFormed;
    uint64_t a0 = 0;
    uint64_t a1 = 0;
};

/**
 * Per-SM staging buffer. During the parallel tick phase it is written
 * exclusively by its SM (the Gpu's serial sections may also append —
 * they run with no tick in flight); the Gpu drains it at the serial
 * commit boundary.
 */
class TelemChannel
{
  public:
    uint32_t sm = 0;
    bool samplingOn = false;
    bool eventsOn = false;
    uint64_t every = 0;
    uint64_t nextSampleAt = 0;

    bool
    sampleDue(uint64_t now) const
    {
        return samplingOn && now >= nextSampleAt;
    }

    /** Append a zeroed sample stamped (cycle, sm) and advance
     *  nextSampleAt past @p now; the caller fills the payload. */
    TelemSample &
    startSample(uint64_t now)
    {
        nextSampleAt = (now / every + 1) * every;
        samples.emplace_back();
        samples.back().cycle = now;
        samples.back().sm = sm;
        return samples.back();
    }

    void
    event(uint64_t cycle, TelemEventKind kind, uint64_t a0 = 0,
          uint64_t a1 = 0)
    {
        if (!eventsOn)
            return;
        events.push_back({cycle, sm, kind, a0, a1});
    }

    std::vector<TelemSample> samples;
    std::vector<TelemEvent> events;
};

/**
 * The telemetry sink owned by a Gpu: numSms per-SM channels plus one
 * GPU-level channel (memory system, snapshots, sampled phases), merged
 * into flat in-memory streams at each commit and written to disk once
 * at end of run. saveState/loadState carry the full telemetry state
 * through snapshot/resume, so a resumed run's trace is byte-identical
 * to an uninterrupted one.
 */
class Telemetry
{
  public:
    Telemetry(const TelemetryConfig &cfg, uint32_t num_sms);

    const TelemetryConfig &config() const { return cfg_; }
    uint32_t numSms() const { return numSms_; }

    /** Channel for SM @p sm (< numSms). */
    TelemChannel &
    channel(uint32_t sm)
    {
        return channels_[sm];
    }

    /** The GPU-level track (rendered as tid numSms / "gpu"). */
    TelemChannel &gpuChannel() { return channels_[numSms_]; }

    bool
    gpuSampleDue(uint64_t now) const
    {
        return cfg_.enabled && now >= nextGpuSampleAt_;
    }

    /** Append a GPU-level sample (serial context only). */
    void
    pushGpuSample(const TelemGpuSample &s)
    {
        nextGpuSampleAt_ = (s.cycle / cfg_.everyCycles + 1) *
                           cfg_.everyCycles;
        gpuSamples_.push_back(s);
    }

    /**
     * Serial commit boundary: drain every channel in SM order (gpu
     * track last) into the merged streams. The only legal merge point;
     * calling it anywhere else would interleave with the tick fan-out.
     */
    void commit();

    const std::vector<TelemSample> &samples() const { return samples_; }
    const std::vector<TelemGpuSample> &
    gpuSamples() const
    {
        return gpuSamples_;
    }
    const std::vector<TelemEvent> &events() const { return events_; }

    std::string binPath() const;
    std::string jsonPath() const;

    /** Write <base>.tsbin and (trace mode) <base>.trace.json under
     *  cfg_.outDir, creating the directory. Call once, after the final
     *  commit. */
    void writeFiles() const;

    /** Hang diagnostics: the last @p per_sm samples of every SM (plus
     *  the gpu track), most recent last. */
    void recentDump(std::ostream &os, size_t per_sm = 4) const;

    /** Snapshot hooks (TELM chunk). Only callable at the serial commit
     *  boundary, after commit() — staged channel data would be lost. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    void writeBinary(const std::string &path) const;
    void writeJson(const std::string &path) const;

    TelemetryConfig cfg_;
    uint32_t numSms_;
    std::vector<TelemChannel> channels_; //!< numSms_ + 1 (gpu last).
    uint64_t nextGpuSampleAt_ = 0;

    // Merged, commit-ordered streams.
    std::vector<TelemSample> samples_;
    std::vector<TelemGpuSample> gpuSamples_;
    std::vector<TelemEvent> events_;
};

} // namespace trt

#endif // TRT_TELEMETRY_TELEMETRY_HH
