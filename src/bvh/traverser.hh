/**
 * @file
 * Stepwise BVH traversal in the treelet traversal order of Chou et al.
 * (MICRO'23), which the paper's baseline and all proposed RT-unit
 * variants use (paper section 5).
 *
 * Each ray keeps two stacks: a *current stack* for nodes inside the
 * treelet it is currently traversing and a *treelet stack* for pending
 * nodes in other treelets. The ray drains its current stack before
 * popping the treelet stack (a treelet boundary crossing). The RT unit
 * timing models drive this class one memory access at a time so they can
 * charge cache/DRAM latency per access; the functional results (closest
 * hit) are computed here and are bit-identical across every
 * architecture variant.
 */

#ifndef TRT_BVH_TRAVERSER_HH
#define TRT_BVH_TRAVERSER_HH

#include <cstdint>
#include <vector>

#include "bvh/bvh.hh"
#include "geom/ray.hh"
#include "snapshot/serializer.hh"

namespace trt
{

/** Per-ray stepwise traverser. Copyable; cheap enough to store per ray. */
class RayTraverser
{
  public:
    /** Phase of the per-ray state machine. */
    enum class Phase : uint8_t
    {
        AtBoundary, //!< Next node must come from the treelet stack.
        FetchNode,  //!< A node fetch is outstanding / due.
        FetchLeaf,  //!< A leaf triangle-block fetch is outstanding / due.
        Done,       //!< Traversal complete; hit() is final.
    };

    /** Description of the memory access the ray needs next. */
    struct Access
    {
        uint64_t addr = 0;
        uint32_t bytes = 0;
        uint32_t node = kInvalidNode;
        bool leaf = false;
    };

    /** Counts of work performed, for the mode-breakdown figures. */
    struct Counts
    {
        uint64_t nodeFetches = 0;
        uint64_t leafFetches = 0;
        uint64_t boxTests = 0;
        uint64_t triTests = 0;
        uint64_t treeletSwitches = 0;
    };

    RayTraverser() = default;

    /** Begin traversal of @p ray over @p bvh (kept by pointer; must
     *  outlive the traverser). */
    RayTraverser(const Bvh *bvh, const Ray &ray);

    /** Re-begin traversal in place, reusing the stack allocations of
     *  whatever this traverser ran before (hot-loop pooling). */
    void reset(const Bvh *bvh, const Ray &ray);

    /** Outcome of a speculative leaf-block entry (path prediction). */
    enum class SpecOutcome : uint8_t
    {
        None,    //!< Traversal was not primed.
        Correct, //!< The predicted block contained the closest hit.
        Wrong,   //!< It did not; root fallback found (or confirmed) it.
    };

    /**
     * Prime a freshly reset() traversal with a predicted leaf block
     * (hash-based path prediction, DESIGN.md §9): the block's triangles
     * are fetched and tested *first*, before any node of the tree. The
     * speculative result is never committed to hit() directly — its
     * closest valid t only tightens the traversal cull bound, and a
     * triangle matching that bound exactly is accepted once during the
     * root fallback that always follows. The final hit is therefore
     * bit-identical to an unprimed traversal whether the prediction was
     * right, partially right, or wrong (the misprediction fallback *is*
     * the normal root traversal); a correct prediction merely prunes
     * most of it. Only legal immediately after reset().
     */
    void primeSpeculation(uint32_t first_tri, uint32_t count);

    /** Whether this traversal was primed with a prediction. */
    bool specPrimed() const { return specPrimed_; }
    /** Prediction outcome; final once done(). */
    SpecOutcome specOutcome() const;

    Phase phase() const { return phase_; }
    bool done() const { return phase_ == Phase::Done; }

    /**
     * True when the ray sits at a treelet boundary: its current stack is
     * exhausted and the next node lives in another treelet. The caller
     * decides whether to continue (ray-stationary) via
     * enterNextTreelet() or to park the ray in that treelet's queue
     * (treelet-stationary).
     */
    bool atBoundary() const { return phase_ == Phase::AtBoundary; }

    /** Treelet the ray will enter next. Only valid atBoundary(). */
    uint32_t nextTreelet() const;

    /** Cross the boundary: pop the treelet stack into the current
     *  stack. Moves to Phase::FetchNode. */
    void enterNextTreelet();

    /** The access needed now. Valid in FetchNode / FetchLeaf. */
    Access currentAccess() const;

    /**
     * Complete the outstanding access: run the box/triangle tests for
     * the fetched data and advance the state machine.
     * @return number of intersection tests this step performed.
     */
    uint32_t complete();

    /** Treelet the ray is currently inside (kInvalidTreelet initially). */
    uint32_t currentTreelet() const { return curTreelet_; }

    const HitRecord &hit() const { return hitRec_; }
    const Counts &counts() const { return counts_; }
    const Ray &ray() const { return ray_; }

    /** Leaf block (firstTri, count) whose triangle produced the current
     *  hit(); count is 0 while there is no hit. Predictor training
     *  reads these at completion. */
    uint32_t hitBlockFirst() const { return hitBlockFirst_; }
    uint32_t hitBlockCount() const { return hitBlockCount_; }

    /** Entries remaining across both stacks (diagnostics). */
    size_t stackDepth() const
    { return currentStack_.size() + treeletStack_.size(); }

    /** Snapshot hooks. The BVH pointer is re-bound by the caller (the
     *  restored Gpu owns the same deterministically rebuilt BVH, keyed
     *  by the snapshot fingerprint); inv_ is recomputed from the ray. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d, const Bvh *bvh);

  private:
    struct Entry
    {
        uint32_t node;
        float t;
    };

    struct PendingLeaf
    {
        uint32_t firstTri;
        uint32_t count;
    };

    /** Drop stack entries that can no longer beat the current hit. */
    void pruneStacks();
    /** Choose the next step after finishing a node/leaf. */
    void advance();

    const Bvh *bvh_ = nullptr;
    Ray ray_;
    RayInv inv_{Ray{}};
    Phase phase_ = Phase::Done;

    std::vector<Entry> currentStack_;
    std::vector<Entry> treeletStack_;
    uint32_t curTreelet_ = kInvalidTreelet;
    uint32_t fetchNode_ = kInvalidNode;
    std::vector<PendingLeaf> pendingLeaves_;

    HitRecord hitRec_;
    Counts counts_;

    // Speculative-entry state (primeSpeculation). specT_ is the closest
    // valid t found in the predicted block; it bounds the fallback
    // traversal until the first real acceptance re-derives the hit.
    bool specPrimed_ = false;  //!< Traversal was primed at reset.
    bool specPending_ = false; //!< The primed block fetch is in flight.
    bool specValid_ = false;   //!< specT_ holds a valid candidate t.
    float specT_ = 0.0f;
    uint32_t hitBlockFirst_ = 0;
    uint32_t hitBlockCount_ = 0;
};

/**
 * Run @p t to completion without any timing model: every outstanding
 * access completes immediately and treelet boundaries are crossed
 * ray-stationary. Traversal order — and therefore the closest hit and
 * every per-ray count — is bit-identical to what any RT-unit timing
 * model produces, which is what lets the sampled-simulation
 * fast-forward executor advance architectural state exactly.
 */
inline void
finishTraversal(RayTraverser &t)
{
    while (!t.done()) {
        if (t.atBoundary())
            t.enterNextTreelet();
        else
            t.complete();
    }
}

} // namespace trt

#endif // TRT_BVH_TRAVERSER_HH
