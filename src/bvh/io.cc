#include "bvh/io.hh"

#include <cstdint>

namespace trt
{

namespace
{

template <typename T>
void
writeVec(std::ostream &os, const std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = v.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    if (n)
        os.write(reinterpret_cast<const char *>(v.data()),
                 std::streamsize(n * sizeof(T)));
}

template <typename T>
bool
readVec(std::istream &is, std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is || n > (1ull << 32))
        return false;
    v.resize(n);
    if (n)
        is.read(reinterpret_cast<char *>(v.data()),
                std::streamsize(n * sizeof(T)));
    return bool(is);
}

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return bool(is);
}

/** Stream magic/version: load() rejects anything else up front, so a
 *  truncated or stale cache file can never deserialize into garbage
 *  vectors. v2: explicit header + BVH width (8-wide backend). */
constexpr uint32_t kBvhIoMagic = 0x54425648u; // 'TBVH'
constexpr uint32_t kBvhIoVersion = 2;

} // anonymous namespace

void
BvhIo::save(std::ostream &os, const Bvh &bvh)
{
    writePod(os, kBvhIoMagic);
    writePod(os, kBvhIoVersion);
    writePod(os, int32_t(bvh.width_));
    writePod(os, bvh.nodeBytes_);
    writeVec(os, bvh.nodes_);
    writeVec(os, bvh.tris_);
    writeVec(os, bvh.triOrig_);
    writePod(os, bvh.rootBounds_);
    writeVec(os, bvh.nodeTreelet_);
    writeVec(os, bvh.treeletNodes_);
    writeVec(os, bvh.treeletBytes_);
    writeVec(os, bvh.treeletAddr_);
    writeVec(os, bvh.treeletDepth_);
    writeVec(os, bvh.nodeAddr_);
    writeVec(os, bvh.triAddr_);
    writePod(os, bvh.totalBytes_);
}

bool
BvhIo::load(std::istream &is, Bvh &bvh)
{
    uint32_t magic = 0, version = 0;
    int32_t width = 0;
    if (!readPod(is, magic) || magic != kBvhIoMagic ||
        !readPod(is, version) || version != kBvhIoVersion ||
        !readPod(is, width) ||
        (width != kBvhWidth && width != kMaxBvhWidth) ||
        !readPod(is, bvh.nodeBytes_) ||
        (bvh.nodeBytes_ != kNodeBytes &&
         bvh.nodeBytes_ != kCompressedNodeBytes &&
         bvh.nodeBytes_ != kCompressedNode8Bytes)) {
        return false;
    }
    bvh.width_ = width;
    bool ok =
        readVec(is, bvh.nodes_) && readVec(is, bvh.tris_) &&
        readVec(is, bvh.triOrig_) && readPod(is, bvh.rootBounds_) &&
        readVec(is, bvh.nodeTreelet_) &&
        readVec(is, bvh.treeletNodes_) &&
        readVec(is, bvh.treeletBytes_) &&
        readVec(is, bvh.treeletAddr_) &&
        readVec(is, bvh.treeletDepth_) && readVec(is, bvh.nodeAddr_) &&
        readVec(is, bvh.triAddr_) && readPod(is, bvh.totalBytes_);
    if (ok) {
        // The SoA kernel mirror is derived, not serialized.
        bvh.buildPackedBounds(1);
    }
    return ok;
}

} // namespace trt
