/**
 * @file
 * Wide (4-ary) bounding volume hierarchy with an explicit memory layout.
 *
 * The pipeline mirrors the paper's methodology (section 5): a binary
 * binned-SAH build (standing in for Embree), collapse to a 4-wide BVH
 * (the branching factor Vulkan-Sim uses via Benthin et al.'s format),
 * treelet partitioning with treelets capped at half the L1 size, and a
 * byte-level layout in which each treelet's nodes and leaf triangle
 * blocks are contiguous (Chou et al. pack treelets in memory; the
 * paper's area analysis in section 6.5 depends on this).
 */

#ifndef TRT_BVH_BVH_HH
#define TRT_BVH_BVH_HH

#include <cstdint>
#include <vector>

#include "geom/aabb.hh"
#include "geom/intersect.hh"
#include "geom/simd.hh"

namespace trt
{

/** Default branching factor of the wide BVH. */
constexpr int kBvhWidth = 4;
/** Maximum supported branching factor (TRT_BVH_WIDTH=8 backend). */
constexpr int kMaxBvhWidth = 8;
/** Bytes one wide node occupies in simulated memory. */
constexpr uint32_t kNodeBytes = 64;
/** Bytes per node with quantized child bounds (Ylitie et al. style
 *  compressed wide BVH, paper section 7.3). */
constexpr uint32_t kCompressedNodeBytes = 32;
/** Bytes per compressed 8-wide node (DESIGN.md §11): 12B origin +
 *  3x1B scale exponents + 1B imask + 4B child base + 4B tri base +
 *  8 x (1B meta + 6B quantized bounds) = 80 — 10B per child vs the
 *  16B per child of the 64B 4-wide layout. */
constexpr uint32_t kCompressedNode8Bytes = 80;
/** Bytes one triangle record occupies in simulated memory. */
constexpr uint32_t kTriBytes = 48;
/** Base simulated address of the BVH allocation. */
constexpr uint64_t kBvhBaseAddr = 0x100000000ull;

/** Sentinel for "no treelet assigned / invalid id". */
constexpr uint32_t kInvalidTreelet = ~0u;
/** Sentinel node index. */
constexpr uint32_t kInvalidNode = ~0u;

/** Build-time parameters. */
struct BvhConfig
{
    /** Leaf size cap. 2 matches the node density of the compressed
     *  4-wide LumiBench BVHs (~100B/triangle overall). */
    int maxLeafTris = 2;
    int sahBins = 16;        //!< Binned-SAH bin count.
    float traversalCost = 1.0f;
    float intersectCost = 1.5f;
    /** Treelet byte cap: half of a 16KB L1 per the paper (section 5). */
    uint32_t treeletMaxBytes = 8 * 1024;
    /**
     * Compressed wide BVH (Ylitie et al., section 7.3): child bounds
     * are quantized to an 8-bit grid anchored at the node's union box
     * (conservatively, so no hit is ever missed) and nodes shrink to
     * kCompressedNodeBytes. Composable with treelet queues — more
     * nodes fit per treelet and per cache line.
     */
    bool quantizedNodes = false;
    /**
     * Branching factor of the built BVH: 4 (the seed greedy collapse,
     * 64B nodes, or 32B with quantizedNodes) or 8 (cost-based DP
     * collapse into kCompressedNode8Bytes quantized nodes — the
     * Ylitie/Karras/Laine compressed wide BVH; width 8 always implies
     * the compressed layout). Selected by TRT_BVH_WIDTH.
     */
    int width = kBvhWidth;
    /**
     * Build threads: 1 = serial, N = exactly N threads, 0 = auto (the
     * TRT_BUILD_THREADS environment variable, else hardware
     * concurrency). The thread count never changes the built BVH — the
     * parallel build is bit-identical to the serial one (same node
     * order, same treelet ids, same layout) — so it is deliberately
     * excluded from fingerprint().
     */
    uint32_t buildThreads = 0;

    /**
     * Hash of every parameter that affects the built BVH (not
     * buildThreads). Folded into the harness's scene-bundle cache key
     * so cached bundles can't go stale when builder parameters change.
     */
    uint64_t fingerprint() const;

    /** Default config with the TRT_BVH_WIDTH env knob applied
     *  (strictly 4 or 8; unset = 4). */
    static BvhConfig fromEnv();
};

/** Resolve a BvhConfig::buildThreads-style knob to a concrete thread
 *  count >= 1 (0 = TRT_BUILD_THREADS env var, else hardware). */
uint32_t resolveBuildThreads(uint32_t requested);

/** One child slot of a wide node. */
struct WideChild
{
    enum Kind : uint8_t { Invalid = 0, Internal = 1, Leaf = 2 };

    Aabb bounds;
    Kind kind = Invalid;
    uint32_t index = 0;  //!< Node index (Internal) or first triangle (Leaf).
    uint32_t count = 0;  //!< Triangle count (Leaf only).
};

/** A wide BVH node: up to kMaxBvhWidth children (slots past the
 *  built width stay Invalid on a 4-wide build). */
struct WideNode
{
    WideChild child[kMaxBvhWidth];

    int
    childCount() const
    {
        int n = 0;
        for (const auto &c : child)
            n += c.kind != WideChild::Invalid ? 1 : 0;
        return n;
    }
};

/** Aggregate statistics about a built BVH. */
struct BvhStats
{
    uint32_t nodeCount = 0;
    uint32_t leafCount = 0;      //!< Leaf child slots.
    uint32_t triCount = 0;
    uint32_t maxDepth = 0;
    double avgLeafTris = 0.0;
    uint64_t totalBytes = 0;     //!< Nodes + triangle records.
    uint32_t treeletCount = 0;
    double avgTreeletBytes = 0.0;
    double avgTreeletNodes = 0.0;
    double avgTreeletDepth = 0.0; //!< Mean node depth within a treelet.
};

/**
 * The built acceleration structure. Immutable after build(); shared by
 * the functional renderer, the analytical model and the timing model.
 */
class Bvh
{
  public:
    /**
     * Build from a triangle soup.
     *
     * @param tris Scene triangles (copied and reordered internally).
     * @param cfg Build parameters.
     */
    static Bvh build(const std::vector<Triangle> &tris,
                     const BvhConfig &cfg = {});

    const std::vector<WideNode> &nodes() const { return nodes_; }
    /** SoA child bounds for the 4-wide intersection kernels
     *  (geom/simd.hh): packedStride() groups of 4 lanes per node, node
     *  n's group g at index n * packedStride() + g (lane k of group g
     *  covers child g*4+k). */
    const std::vector<PackedBounds4> &packedBounds() const
    { return packed_; }
    const std::vector<Triangle> &triangles() const { return tris_; }
    /** Original scene index of reordered triangle @p i. */
    uint32_t originalTriIndex(uint32_t i) const { return triOrig_[i]; }

    uint32_t rootNode() const { return 0; }
    const Aabb &rootBounds() const { return rootBounds_; }

    /** Bytes per node in simulated memory (64, 32 when built with
     *  quantizedNodes, or 80 for the 8-wide compressed layout). */
    uint32_t nodeBytes() const { return nodeBytes_; }
    /** True when built with quantized (compressed) child bounds. */
    bool quantized() const { return nodeBytes_ != kNodeBytes; }
    /** Branching factor this BVH was built with (4 or 8). */
    int width() const { return width_; }
    /** PackedBounds4 groups per node in packedBounds(). */
    uint32_t packedStride() const { return uint32_t(width_) / 4; }

    // --- Treelet structure -------------------------------------------
    /** Number of treelets. */
    uint32_t treeletCount() const { return uint32_t(treeletNodes_.size()); }
    /** Treelet owning node @p node. */
    uint32_t treeletOf(uint32_t node) const { return nodeTreelet_[node]; }
    /** Node count of treelet @p t. */
    uint32_t treeletNodeCount(uint32_t t) const { return treeletNodes_[t]; }
    /** Byte footprint (nodes + leaf blocks) of treelet @p t. */
    uint32_t treeletBytes(uint32_t t) const { return treeletBytes_[t]; }
    /** First simulated byte address of treelet @p t. */
    uint64_t treeletBaseAddr(uint32_t t) const { return treeletAddr_[t]; }
    /** Mean within-treelet node depth of treelet @p t (>= 1). */
    float treeletAvgDepth(uint32_t t) const { return treeletDepth_[t]; }

    // --- Memory layout -----------------------------------------------
    /** Simulated byte address of node @p node. */
    uint64_t nodeAddr(uint32_t node) const { return nodeAddr_[node]; }
    /** Simulated byte address of the triangle block starting at
     *  reordered triangle @p first_tri. */
    uint64_t triBlockAddr(uint32_t first_tri) const
    { return triAddr_[first_tri]; }
    /** Total simulated footprint in bytes. */
    uint64_t totalBytes() const { return totalBytes_; }

    /** Build/treelet statistics. */
    BvhStats stats() const;

    /**
     * Functional closest-hit query (plain depth-first traversal). Used
     * by tests and the fast preview renderer; the timing models use
     * RayTraverser instead but must produce identical hits.
     */
    HitRecord intersectClosest(const Ray &ray) const;

  private:
    friend class BvhBuilder;
    friend struct BvhIo;

    /** (Re)derive packed_ from nodes_ (build tail and BvhIo::load;
     *  the SoA mirror is never serialized). */
    void buildPackedBounds(uint32_t threads);

    std::vector<WideNode> nodes_;
    std::vector<PackedBounds4> packed_;
    std::vector<Triangle> tris_;
    std::vector<uint32_t> triOrig_;
    Aabb rootBounds_;

    std::vector<uint32_t> nodeTreelet_;
    std::vector<uint32_t> treeletNodes_;
    std::vector<uint32_t> treeletBytes_;
    std::vector<uint64_t> treeletAddr_;
    std::vector<float> treeletDepth_;

    std::vector<uint64_t> nodeAddr_;
    std::vector<uint64_t> triAddr_;
    uint64_t totalBytes_ = 0;
    uint32_t nodeBytes_ = kNodeBytes;
    int width_ = kBvhWidth;
};

} // namespace trt

#endif // TRT_BVH_BVH_HH
