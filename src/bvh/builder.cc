/**
 * @file
 * BVH construction: binned-SAH binary build, collapse to a 4-wide BVH,
 * treelet partitioning and byte-level memory layout.
 */

#include "bvh/bvh.hh"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace trt
{

namespace
{

/** Binary build node (temporary). */
struct BinNode
{
    Aabb bounds;
    uint32_t left = kInvalidNode;   //!< Child index, or kInvalidNode.
    uint32_t right = kInvalidNode;
    uint32_t firstTri = 0;          //!< Leaf only: range into the index
    uint32_t triCount = 0;          //!< permutation array.

    bool isLeaf() const { return triCount > 0; }
};

struct PrimRef
{
    Aabb bounds;
    Vec3 centroid;
    uint32_t tri;
};

class BinaryBuilder
{
  public:
    BinaryBuilder(const std::vector<Triangle> &tris, const BvhConfig &cfg)
        : cfg_(cfg)
    {
        prims_.reserve(tris.size());
        for (uint32_t i = 0; i < tris.size(); i++) {
            PrimRef p;
            p.bounds = tris[i].bounds();
            p.centroid = p.bounds.center();
            p.tri = i;
            prims_.push_back(p);
        }
    }

    /** Build; returns root index (kInvalidNode for an empty scene). */
    uint32_t
    build()
    {
        if (prims_.empty())
            return kInvalidNode;
        return buildRange(0, uint32_t(prims_.size()));
    }

    const std::vector<BinNode> &nodes() const { return nodes_; }
    const std::vector<PrimRef> &prims() const { return prims_; }

  private:
    uint32_t
    buildRange(uint32_t begin, uint32_t end)
    {
        Aabb bounds, cbounds;
        for (uint32_t i = begin; i < end; i++) {
            bounds.grow(prims_[i].bounds);
            cbounds.grow(prims_[i].centroid);
        }

        uint32_t count = end - begin;
        uint32_t idx = uint32_t(nodes_.size());
        nodes_.emplace_back();
        nodes_[idx].bounds = bounds;

        if (count <= uint32_t(cfg_.maxLeafTris)) {
            nodes_[idx].firstTri = begin;
            nodes_[idx].triCount = count;
            return idx;
        }

        uint32_t mid = findSplit(begin, end, bounds, cbounds);
        uint32_t l = buildRange(begin, mid);
        uint32_t r = buildRange(mid, end);
        nodes_[idx].left = l;
        nodes_[idx].right = r;
        return idx;
    }

    /** Binned SAH split; falls back to a median split when degenerate. */
    uint32_t
    findSplit(uint32_t begin, uint32_t end, const Aabb &bounds,
              const Aabb &cbounds)
    {
        const int nbins = cfg_.sahBins;
        Vec3 cext = cbounds.extent();
        int axis = cext.maxDim();

        uint32_t count = end - begin;
        if (cext[axis] <= 1e-12f) {
            // All centroids coincide: equal split keeps the tree balanced.
            uint32_t mid = begin + count / 2;
            std::nth_element(prims_.begin() + begin, prims_.begin() + mid,
                             prims_.begin() + end,
                             [axis](const PrimRef &a, const PrimRef &b) {
                                 return a.centroid[axis] < b.centroid[axis];
                             });
            return mid;
        }

        float lo = cbounds.lo[axis];
        float scale = float(nbins) / cext[axis];
        auto bin_of = [&](const PrimRef &p) {
            int b = int((p.centroid[axis] - lo) * scale);
            return std::clamp(b, 0, nbins - 1);
        };

        struct Bin
        {
            Aabb bounds;
            uint32_t count = 0;
        };
        std::vector<Bin> bins(nbins);
        for (uint32_t i = begin; i < end; i++) {
            Bin &b = bins[bin_of(prims_[i])];
            b.bounds.grow(prims_[i].bounds);
            b.count++;
        }

        // Sweep to evaluate SAH for each of the nbins-1 split planes.
        std::vector<float> rightArea(nbins, 0.0f);
        std::vector<uint32_t> rightCount(nbins, 0);
        Aabb acc;
        uint32_t cacc = 0;
        for (int b = nbins - 1; b > 0; b--) {
            acc.grow(bins[b].bounds);
            cacc += bins[b].count;
            rightArea[b] = acc.surfaceArea();
            rightCount[b] = cacc;
        }

        float best_cost = std::numeric_limits<float>::max();
        int best_split = -1;
        acc = Aabb();
        cacc = 0;
        float inv_root = 1.0f / std::max(bounds.surfaceArea(), 1e-20f);
        for (int b = 0; b < nbins - 1; b++) {
            acc.grow(bins[b].bounds);
            cacc += bins[b].count;
            if (cacc == 0 || rightCount[b + 1] == 0)
                continue;
            float cost = cfg_.traversalCost +
                         cfg_.intersectCost * inv_root *
                             (acc.surfaceArea() * float(cacc) +
                              rightArea[b + 1] * float(rightCount[b + 1]));
            if (cost < best_cost) {
                best_cost = cost;
                best_split = b;
            }
        }

        if (best_split < 0) {
            uint32_t mid = begin + count / 2;
            std::nth_element(prims_.begin() + begin, prims_.begin() + mid,
                             prims_.begin() + end,
                             [axis](const PrimRef &a, const PrimRef &b) {
                                 return a.centroid[axis] < b.centroid[axis];
                             });
            return mid;
        }

        auto it = std::partition(prims_.begin() + begin, prims_.begin() + end,
                                 [&](const PrimRef &p) {
                                     return bin_of(p) <= best_split;
                                 });
        uint32_t mid = uint32_t(it - prims_.begin());
        assert(mid > begin && mid < end);
        return mid;
    }

    const BvhConfig &cfg_;
    std::vector<PrimRef> prims_;
    std::vector<BinNode> nodes_;
};

/** Bytes node @p n occupies including the leaf blocks it references. */
uint32_t
nodeFootprintBytes(const WideNode &n, uint32_t node_bytes)
{
    uint32_t bytes = node_bytes;
    for (const auto &c : n.child)
        if (c.kind == WideChild::Leaf)
            bytes += c.count * kTriBytes;
    return bytes;
}

/**
 * Quantize every child box to an 8-bit grid anchored at its node's
 * union box, growing outward so the quantized box always contains the
 * exact one (Ylitie et al. compressed wide BVH). Traversal then tests
 * exactly what the hardware would decode.
 */
void
quantizeChildBounds(std::vector<WideNode> &nodes)
{
    for (auto &n : nodes) {
        Aabb u;
        for (const auto &c : n.child)
            if (c.kind != WideChild::Invalid)
                u.grow(c.bounds);
        if (u.empty())
            continue;
        Vec3 ext = u.extent();
        for (auto &c : n.child) {
            if (c.kind == WideChild::Invalid)
                continue;
            Aabb exact = c.bounds;
            for (int a = 0; a < 3; a++) {
                float e = ext[a];
                if (e <= 0.0f)
                    continue; // flat axis: exact representation
                float step = e / 255.0f;
                float qlo = u.lo[a] +
                            std::floor((exact.lo[a] - u.lo[a]) / step) *
                                step;
                float qhi = u.lo[a] +
                            std::ceil((exact.hi[a] - u.lo[a]) / step) *
                                step;
                // Guard against float round-off un-conserving the box.
                c.bounds.lo[a] = std::min(qlo, exact.lo[a]);
                c.bounds.hi[a] = std::max(qhi, exact.hi[a]);
            }
        }
    }
}

} // anonymous namespace

/** Collapses the binary tree into the wide node array of @p out. */
class BvhBuilder
{
  public:
    static void
    collapse(const std::vector<BinNode> &bin, uint32_t bin_root, Bvh &out)
    {
        if (bin_root == kInvalidNode) {
            out.nodes_.emplace_back();
            return;
        }
        if (bin[bin_root].isLeaf()) {
            // Degenerate: root itself is a leaf; wrap it in a node.
            WideNode n;
            n.child[0].bounds = bin[bin_root].bounds;
            n.child[0].kind = WideChild::Leaf;
            n.child[0].index = bin[bin_root].firstTri;
            n.child[0].count = bin[bin_root].triCount;
            out.nodes_.push_back(n);
            return;
        }
        out.nodes_.emplace_back();
        collapseNode(bin, bin_root, 0, out);
    }

    static void
    partitionTreelets(Bvh &bvh, uint32_t max_bytes)
    {
        auto &nodes = bvh.nodes_;
        bvh.nodeTreelet_.assign(nodes.size(), kInvalidTreelet);

        // Treelet node membership in assignment order, used for layout.
        std::vector<std::vector<uint32_t>> members;

        std::deque<uint32_t> pending;
        pending.push_back(0);
        while (!pending.empty()) {
            uint32_t root = pending.front();
            pending.pop_front();
            uint32_t tid = uint32_t(members.size());
            members.emplace_back();

            // Frontier ordered by surface area so the biggest subtrees
            // are pulled into the treelet first (Aila & Karras).
            using Entry = std::pair<float, uint32_t>;
            std::priority_queue<Entry> frontier;
            auto area_of = [&](uint32_t n) {
                Aabb b;
                for (const auto &c : nodes[n].child)
                    if (c.kind != WideChild::Invalid)
                        b.grow(c.bounds);
                return b.surfaceArea();
            };
            frontier.emplace(area_of(root), root);
            uint32_t bytes = 0;

            while (!frontier.empty()) {
                uint32_t n = frontier.top().second;
                frontier.pop();
                uint32_t fp = nodeFootprintBytes(nodes[n],
                                                 bvh.nodeBytes_);
                if (bytes > 0 && bytes + fp > max_bytes) {
                    pending.push_back(n);
                    continue;
                }
                bvh.nodeTreelet_[n] = tid;
                members[tid].push_back(n);
                bytes += fp;
                for (const auto &c : nodes[n].child)
                    if (c.kind == WideChild::Internal)
                        frontier.emplace(area_of(c.index), c.index);
            }
        }

        layout(bvh, members);
        computeTreeletDepths(bvh, members);
    }

  private:
    static void
    collapseNode(const std::vector<BinNode> &bin, uint32_t bin_idx,
                 uint32_t wide_idx, Bvh &out)
    {
        // Gather up to kBvhWidth binary descendants, greedily expanding
        // the internal slot with the largest surface area.
        uint32_t slots[kBvhWidth];
        int n_slots = 0;
        slots[n_slots++] = bin[bin_idx].left;
        slots[n_slots++] = bin[bin_idx].right;

        while (n_slots < kBvhWidth) {
            int best = -1;
            float best_area = -1.0f;
            for (int i = 0; i < n_slots; i++) {
                if (bin[slots[i]].isLeaf())
                    continue;
                float a = bin[slots[i]].bounds.surfaceArea();
                if (a > best_area) {
                    best_area = a;
                    best = i;
                }
            }
            if (best < 0)
                break;
            uint32_t expand = slots[best];
            slots[best] = bin[expand].left;
            slots[n_slots++] = bin[expand].right;
        }

        // First create all children entries (reserving wide indices for
        // the internal ones), then recurse; out.nodes_ may reallocate so
        // never hold a reference across the recursion.
        uint32_t child_wide[kBvhWidth];
        for (int i = 0; i < n_slots; i++) {
            const BinNode &c = bin[slots[i]];
            WideChild wc;
            wc.bounds = c.bounds;
            if (c.isLeaf()) {
                wc.kind = WideChild::Leaf;
                wc.index = c.firstTri;
                wc.count = c.triCount;
                child_wide[i] = kInvalidNode;
            } else {
                wc.kind = WideChild::Internal;
                wc.index = uint32_t(out.nodes_.size());
                child_wide[i] = wc.index;
                out.nodes_.emplace_back();
            }
            out.nodes_[wide_idx].child[i] = wc;
        }
        for (int i = 0; i < n_slots; i++)
            if (child_wide[i] != kInvalidNode)
                collapseNode(bin, slots[i], child_wide[i], out);
    }

    static void
    layout(Bvh &bvh, const std::vector<std::vector<uint32_t>> &members)
    {
        bvh.nodeAddr_.assign(bvh.nodes_.size(), 0);
        bvh.triAddr_.assign(std::max<size_t>(1, bvh.tris_.size()), 0);
        bvh.treeletAddr_.assign(members.size(), 0);
        bvh.treeletNodes_.assign(members.size(), 0);
        bvh.treeletBytes_.assign(members.size(), 0);

        uint64_t cur = kBvhBaseAddr;
        for (uint32_t t = 0; t < members.size(); t++) {
            uint64_t base = cur;
            bvh.treeletAddr_[t] = base;
            bvh.treeletNodes_[t] = uint32_t(members[t].size());
            for (uint32_t n : members[t]) {
                bvh.nodeAddr_[n] = cur;
                cur += bvh.nodeBytes_;
            }
            for (uint32_t n : members[t]) {
                for (const auto &c : bvh.nodes_[n].child) {
                    if (c.kind != WideChild::Leaf)
                        continue;
                    for (uint32_t k = 0; k < c.count; k++)
                        bvh.triAddr_[c.index + k] = cur + k * kTriBytes;
                    cur += uint64_t(c.count) * kTriBytes;
                }
            }
            bvh.treeletBytes_[t] = uint32_t(cur - base);
        }
        bvh.totalBytes_ = cur - kBvhBaseAddr;
    }

    static void
    computeTreeletDepths(Bvh &bvh,
                         const std::vector<std::vector<uint32_t>> &members)
    {
        // Within-treelet depth: a treelet's entry node has depth 1;
        // children in the same treelet are one deeper. Used to estimate
        // how many node visits a ray makes per treelet (preload timing,
        // section 4.3).
        std::vector<uint32_t> depth(bvh.nodes_.size(), 0);
        depth[0] = 1;
        // Nodes were appended parent-before-child per treelet, but child
        // wide indices are globally increasing, so a forward sweep works.
        for (uint32_t n = 0; n < bvh.nodes_.size(); n++) {
            if (depth[n] == 0)
                depth[n] = 1; // treelet entry reached via cross edge
            for (const auto &c : bvh.nodes_[n].child) {
                if (c.kind != WideChild::Internal)
                    continue;
                depth[c.index] =
                    bvh.nodeTreelet_[c.index] == bvh.nodeTreelet_[n]
                        ? depth[n] + 1
                        : 1;
            }
        }
        bvh.treeletDepth_.assign(members.size(), 1.0f);
        for (uint32_t t = 0; t < members.size(); t++) {
            double sum = 0.0;
            for (uint32_t n : members[t])
                sum += depth[n];
            if (!members[t].empty())
                bvh.treeletDepth_[t] = float(sum / members[t].size());
        }
    }
};

Bvh
Bvh::build(const std::vector<Triangle> &tris, const BvhConfig &cfg)
{
    Bvh bvh;

    BinaryBuilder bb(tris, cfg);
    uint32_t bin_root = bb.build();

    // Reorder triangles by the permutation the binary build produced so
    // leaf ranges are contiguous.
    bvh.tris_.reserve(tris.size());
    bvh.triOrig_.reserve(tris.size());
    for (const auto &p : bb.prims()) {
        bvh.tris_.push_back(tris[p.tri]);
        bvh.triOrig_.push_back(p.tri);
    }

    BvhBuilder::collapse(bb.nodes(), bin_root, bvh);

    if (cfg.quantizedNodes) {
        bvh.nodeBytes_ = kCompressedNodeBytes;
        quantizeChildBounds(bvh.nodes_);
    }
    for (const auto &c : bvh.nodes_[0].child)
        if (c.kind != WideChild::Invalid)
            bvh.rootBounds_.grow(c.bounds);

    BvhBuilder::partitionTreelets(bvh, cfg.treeletMaxBytes);
    return bvh;
}

HitRecord
Bvh::intersectClosest(const Ray &ray) const
{
    HitRecord hit;
    RayInv inv(ray);

    Ray r = ray; // r.tmax shrinks as hits are found
    struct Entry
    {
        uint32_t node;
        float t;
    };
    std::vector<Entry> stack;
    stack.push_back({0, r.tmin});

    while (!stack.empty()) {
        Entry e = stack.back();
        stack.pop_back();
        if (hit.hit() && e.t > hit.t)
            continue;

        const WideNode &n = nodes_[e.node];
        // Collect intersected children, then push far-to-near.
        struct ChildHit
        {
            const WideChild *c;
            float t;
        };
        ChildHit hits[kBvhWidth];
        int nh = 0;
        for (const auto &c : n.child) {
            if (c.kind == WideChild::Invalid)
                continue;
            float t;
            if (intersectAabb(r, inv, c.bounds, t))
                hits[nh++] = {&c, t};
        }
        // Insertion sort by descending t (at most kBvhWidth entries;
        // avoids std::sort's code paths tripping -Warray-bounds).
        for (int i = 1; i < nh; i++) {
            ChildHit key = hits[i];
            int j = i - 1;
            while (j >= 0 && hits[j].t < key.t) {
                hits[j + 1] = hits[j];
                j--;
            }
            hits[j + 1] = key;
        }
        for (int i = 0; i < nh; i++) {
            const WideChild &c = *hits[i].c;
            if (c.kind == WideChild::Internal) {
                stack.push_back({c.index, hits[i].t});
            } else {
                for (uint32_t k = 0; k < c.count; k++) {
                    float t, u, v;
                    if (intersectTriangle(r, tris_[c.index + k], t, u, v)) {
                        hit.t = t;
                        hit.u = u;
                        hit.v = v;
                        hit.triIndex = c.index + k;
                        r.tmax = t;
                    }
                }
            }
        }
    }
    return hit;
}

BvhStats
Bvh::stats() const
{
    BvhStats st;
    st.nodeCount = uint32_t(nodes_.size());
    st.triCount = uint32_t(tris_.size());
    st.totalBytes = totalBytes_;
    st.treeletCount = treeletCount();

    uint64_t leaf_tris = 0;
    for (const auto &n : nodes_) {
        for (const auto &c : n.child) {
            if (c.kind == WideChild::Leaf) {
                st.leafCount++;
                leaf_tris += c.count;
            }
        }
    }
    st.avgLeafTris = st.leafCount ? double(leaf_tris) / st.leafCount : 0.0;

    // Depth via explicit traversal.
    struct Entry
    {
        uint32_t node;
        uint32_t depth;
    };
    std::vector<Entry> stack{{0, 1}};
    while (!stack.empty()) {
        Entry e = stack.back();
        stack.pop_back();
        st.maxDepth = std::max(st.maxDepth, e.depth);
        for (const auto &c : nodes_[e.node].child)
            if (c.kind == WideChild::Internal)
                stack.push_back({c.index, e.depth + 1});
    }

    double tb = 0.0, tn = 0.0, td = 0.0;
    for (uint32_t t = 0; t < treeletCount(); t++) {
        tb += treeletBytes_[t];
        tn += treeletNodes_[t];
        td += treeletDepth_[t];
    }
    if (treeletCount()) {
        st.avgTreeletBytes = tb / treeletCount();
        st.avgTreeletNodes = tn / treeletCount();
        st.avgTreeletDepth = td / treeletCount();
    }
    return st;
}

} // namespace trt
