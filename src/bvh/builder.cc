/**
 * @file
 * BVH construction: binned-SAH binary build, collapse to a wide BVH
 * (greedy 4-wide, or cost-based DP 8-wide — Ylitie/Karras/Laine
 * HPG'17 — when BvhConfig::width == 8), treelet partitioning and
 * byte-level memory layout.
 *
 * The build is task-parallel (BvhConfig::buildThreads / the
 * TRT_BUILD_THREADS knob) and **bit-identical** to the serial build at
 * any thread count:
 *  - Per-thread bin accumulation splits ranges into fixed chunks and
 *    merges partials in chunk order; AABB growth is min/max and counts
 *    are integer sums, both exactly associative.
 *  - The top of the binary tree is expanded on one thread (with
 *    parallel binning); subtrees below a cutoff become tasks that
 *    recurse serially over disjoint primitive ranges, so the primitive
 *    permutation matches the serial build exactly.
 *  - The 4-wide collapse runs as parallel waves over a scratch tree and
 *    then assigns the exact node numbering the serial recursion would
 *    (a parent's children are allocated consecutively, then each child
 *    subtree in slot order), computed from per-subtree node counts.
 *  - Treelet partitioning processes the FIFO frontier of treelet roots
 *    in parallel waves; wave order equals the serial queue order, so
 *    treelet ids and layout match.
 */

#include "bvh/bvh.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <queue>

#include "util/env.hh"
#include <thread>

#include "bvh/parallel.hh"
#include "geom/hash.hh"

namespace trt
{

namespace
{

/** Below this many primitives the whole build runs serially. */
constexpr uint32_t kParallelMinPrims = 4096;
/** Subtrees at or below this size become serial tasks. */
constexpr uint32_t kMinTaskGrain = 1024;
/** Ranges larger than this use chunk-parallel bin accumulation. */
constexpr uint32_t kParallelBinMin = 16384;
/** Chunk size for parallel reductions over primitive ranges. */
constexpr uint32_t kReduceGrain = 8192;
/** Below this many binary nodes the collapse runs serially. */
constexpr size_t kParallelCollapseMin = 4096;

/** Binary build node (temporary). */
struct BinNode
{
    Aabb bounds;
    uint32_t left = kInvalidNode;   //!< Child index, or kInvalidNode.
    uint32_t right = kInvalidNode;
    uint32_t firstTri = 0;          //!< Leaf only: range into the index
    uint32_t triCount = 0;          //!< permutation array.

    bool isLeaf() const { return triCount > 0; }
};

struct PrimRef
{
    Aabb bounds;
    Vec3 centroid;
    uint32_t tri;
};

class BinaryBuilder
{
  public:
    BinaryBuilder(const std::vector<Triangle> &tris, const BvhConfig &cfg,
                  uint32_t threads)
        : cfg_(cfg), threads_(threads)
    {
        prims_.resize(tris.size());
        parallelChunks(tris.size(), kReduceGrain, threads_,
                       [&](size_t begin, size_t end, uint32_t) {
                           for (size_t i = begin; i < end; i++) {
                               PrimRef &p = prims_[i];
                               p.bounds = tris[i].bounds();
                               p.centroid = p.bounds.center();
                               p.tri = uint32_t(i);
                           }
                       });
    }

    /** Build; returns root index (kInvalidNode for an empty scene). */
    uint32_t
    build()
    {
        if (prims_.empty())
            return kInvalidNode;
        uint32_t n = uint32_t(prims_.size());
        if (threads_ <= 1 || n < kParallelMinPrims)
            return buildRange(nodes_, 0, n);
        return buildParallel();
    }

    const std::vector<BinNode> &nodes() const { return nodes_; }
    const std::vector<PrimRef> &prims() const { return prims_; }

  private:
    struct Bin
    {
        Aabb bounds;
        uint32_t count = 0;
    };

    /** Deferred subtree build: fills one child slot of a top node. */
    struct SubtreeTask
    {
        uint32_t begin;
        uint32_t end;
        uint32_t parent; //!< Node whose left/right slot this fills.
        bool right;
    };

    /**
     * Grow @p bounds / @p cbounds over [begin, end). Chunk boundaries
     * are size-derived and partials merge in chunk order, so the result
     * is bit-identical to the serial loop at any thread count.
     */
    void
    rangeBounds(uint32_t begin, uint32_t end, uint32_t threads,
                Aabb &bounds, Aabb &cbounds) const
    {
        uint32_t count = end - begin;
        if (threads <= 1 || count < kParallelBinMin) {
            for (uint32_t i = begin; i < end; i++) {
                bounds.grow(prims_[i].bounds);
                cbounds.grow(prims_[i].centroid);
            }
            return;
        }
        uint32_t chunks = chunkCount(count, kReduceGrain);
        std::vector<std::pair<Aabb, Aabb>> partial(chunks);
        parallelChunks(count, kReduceGrain, threads,
                       [&](size_t b, size_t e, uint32_t c) {
                           Aabb pb, pc;
                           for (size_t i = begin + b; i < begin + e; i++) {
                               pb.grow(prims_[i].bounds);
                               pc.grow(prims_[i].centroid);
                           }
                           partial[c] = {pb, pc};
                       });
        for (const auto &[pb, pc] : partial) {
            bounds.grow(pb);
            cbounds.grow(pc);
        }
    }

    /** Per-thread bin accumulation with in-order reduction. */
    void
    accumulateBins(uint32_t begin, uint32_t end, int axis, float lo,
                   float scale, uint32_t threads,
                   std::vector<Bin> &bins) const
    {
        const int nbins = int(bins.size());
        auto bin_of = [&](const PrimRef &p) {
            int b = int((p.centroid[axis] - lo) * scale);
            return std::clamp(b, 0, nbins - 1);
        };
        uint32_t count = end - begin;
        if (threads <= 1 || count < kParallelBinMin) {
            for (uint32_t i = begin; i < end; i++) {
                Bin &b = bins[size_t(bin_of(prims_[i]))];
                b.bounds.grow(prims_[i].bounds);
                b.count++;
            }
            return;
        }
        uint32_t chunks = chunkCount(count, kReduceGrain);
        std::vector<std::vector<Bin>> partial(chunks);
        parallelChunks(count, kReduceGrain, threads,
                       [&](size_t b, size_t e, uint32_t c) {
                           auto &pb = partial[c];
                           pb.resize(size_t(nbins));
                           for (size_t i = begin + b; i < begin + e; i++) {
                               Bin &bin = pb[size_t(bin_of(prims_[i]))];
                               bin.bounds.grow(prims_[i].bounds);
                               bin.count++;
                           }
                       });
        for (const auto &pb : partial) {
            for (int b = 0; b < nbins; b++) {
                bins[size_t(b)].bounds.grow(pb[size_t(b)].bounds);
                bins[size_t(b)].count += pb[size_t(b)].count;
            }
        }
    }

    uint32_t
    buildRange(std::vector<BinNode> &nodes, uint32_t begin, uint32_t end)
    {
        Aabb bounds, cbounds;
        rangeBounds(begin, end, 1, bounds, cbounds);

        uint32_t count = end - begin;
        uint32_t idx = uint32_t(nodes.size());
        nodes.emplace_back();
        nodes[idx].bounds = bounds;

        if (count <= uint32_t(cfg_.maxLeafTris)) {
            nodes[idx].firstTri = begin;
            nodes[idx].triCount = count;
            return idx;
        }

        uint32_t mid = findSplit(begin, end, bounds, cbounds, 1);
        uint32_t l = buildRange(nodes, begin, mid);
        uint32_t r = buildRange(nodes, mid, end);
        nodes[idx].left = l;
        nodes[idx].right = r;
        return idx;
    }

    /** Binned SAH split; falls back to a median split when degenerate. */
    uint32_t
    findSplit(uint32_t begin, uint32_t end, const Aabb &bounds,
              const Aabb &cbounds, uint32_t threads)
    {
        const int nbins = cfg_.sahBins;
        Vec3 cext = cbounds.extent();
        int axis = cext.maxDim();

        uint32_t count = end - begin;
        if (cext[axis] <= 1e-12f) {
            // All centroids coincide: equal split keeps the tree balanced.
            uint32_t mid = begin + count / 2;
            std::nth_element(prims_.begin() + begin, prims_.begin() + mid,
                             prims_.begin() + end,
                             [axis](const PrimRef &a, const PrimRef &b) {
                                 return a.centroid[axis] < b.centroid[axis];
                             });
            return mid;
        }

        float lo = cbounds.lo[axis];
        float scale = float(nbins) / cext[axis];
        auto bin_of = [&](const PrimRef &p) {
            int b = int((p.centroid[axis] - lo) * scale);
            return std::clamp(b, 0, nbins - 1);
        };

        std::vector<Bin> bins(static_cast<size_t>(nbins));
        accumulateBins(begin, end, axis, lo, scale, threads, bins);

        // Sweep to evaluate SAH for each of the nbins-1 split planes.
        std::vector<float> rightArea(size_t(nbins), 0.0f);
        std::vector<uint32_t> rightCount(size_t(nbins), 0);
        Aabb acc;
        uint32_t cacc = 0;
        for (int b = nbins - 1; b > 0; b--) {
            acc.grow(bins[size_t(b)].bounds);
            cacc += bins[size_t(b)].count;
            rightArea[size_t(b)] = acc.surfaceArea();
            rightCount[size_t(b)] = cacc;
        }

        float best_cost = std::numeric_limits<float>::max();
        int best_split = -1;
        acc = Aabb();
        cacc = 0;
        float inv_root = 1.0f / std::max(bounds.surfaceArea(), 1e-20f);
        for (int b = 0; b < nbins - 1; b++) {
            acc.grow(bins[size_t(b)].bounds);
            cacc += bins[size_t(b)].count;
            if (cacc == 0 || rightCount[size_t(b) + 1] == 0)
                continue;
            float cost =
                cfg_.traversalCost +
                cfg_.intersectCost * inv_root *
                    (acc.surfaceArea() * float(cacc) +
                     rightArea[size_t(b) + 1] *
                         float(rightCount[size_t(b) + 1]));
            if (cost < best_cost) {
                best_cost = cost;
                best_split = b;
            }
        }

        if (best_split < 0) {
            uint32_t mid = begin + count / 2;
            std::nth_element(prims_.begin() + begin, prims_.begin() + mid,
                             prims_.begin() + end,
                             [axis](const PrimRef &a, const PrimRef &b) {
                                 return a.centroid[axis] < b.centroid[axis];
                             });
            return mid;
        }

        auto it = std::partition(prims_.begin() + begin, prims_.begin() + end,
                                 [&](const PrimRef &p) {
                                     return bin_of(p) <= best_split;
                                 });
        uint32_t mid = uint32_t(it - prims_.begin());
        assert(mid > begin && mid < end);
        return mid;
    }

    /**
     * Expand the top of the tree on the calling thread (parallel
     * binning inside findSplit), deferring small subtrees as tasks.
     */
    uint32_t
    expandTop(uint32_t begin, uint32_t end, uint32_t cutoff,
              std::vector<SubtreeTask> &tasks)
    {
        Aabb bounds, cbounds;
        rangeBounds(begin, end, threads_, bounds, cbounds);

        uint32_t count = end - begin;
        uint32_t idx = uint32_t(nodes_.size());
        nodes_.emplace_back();
        nodes_[idx].bounds = bounds;

        if (count <= uint32_t(cfg_.maxLeafTris)) {
            nodes_[idx].firstTri = begin;
            nodes_[idx].triCount = count;
            return idx;
        }

        uint32_t mid = findSplit(begin, end, bounds, cbounds, threads_);
        if (mid - begin <= cutoff)
            tasks.push_back({begin, mid, idx, false});
        else
            nodes_[idx].left = expandTop(begin, mid, cutoff, tasks);
        if (end - mid <= cutoff)
            tasks.push_back({mid, end, idx, true});
        else
            nodes_[idx].right = expandTop(mid, end, cutoff, tasks);
        return idx;
    }

    uint32_t
    buildParallel()
    {
        uint32_t n = uint32_t(prims_.size());
        uint32_t cutoff =
            std::max(kMinTaskGrain, n / (threads_ * 8));
        if (n <= cutoff)
            return buildRange(nodes_, 0, n);

        std::vector<SubtreeTask> tasks;
        uint32_t root = expandTop(0, n, cutoff, tasks);

        // Build deferred subtrees into task-local node arrays over
        // their disjoint primitive ranges. Tasks are claimed biggest
        // first for load balance; output placement is by task index,
        // so execution order can't affect the result.
        std::vector<std::vector<BinNode>> local(tasks.size());
        std::vector<uint32_t> order(tasks.size());
        for (uint32_t i = 0; i < tasks.size(); i++)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             return tasks[a].end - tasks[a].begin >
                                    tasks[b].end - tasks[b].begin;
                         });
        parallelTasks(order.size(), threads_, [&](size_t k) {
            uint32_t i = order[k];
            local[i].reserve(2 * size_t(tasks[i].end - tasks[i].begin));
            buildRange(local[i], tasks[i].begin, tasks[i].end);
        });

        // Stitch: concatenate local arrays in task order, rebasing
        // child links. Binary node numbering differs from the serial
        // build here, but only the topology and the primitive
        // permutation feed the collapse, and both are identical.
        std::vector<size_t> base(tasks.size());
        size_t total = nodes_.size();
        for (size_t i = 0; i < tasks.size(); i++) {
            base[i] = total;
            total += local[i].size();
        }
        nodes_.resize(total);
        parallelTasks(tasks.size(), threads_, [&](size_t i) {
            uint32_t off = uint32_t(base[i]);
            const SubtreeTask &t = tasks[i];
            BinNode *dst = nodes_.data() + off;
            for (size_t k = 0; k < local[i].size(); k++) {
                BinNode nd = local[i][k];
                if (nd.left != kInvalidNode)
                    nd.left += off;
                if (nd.right != kInvalidNode)
                    nd.right += off;
                dst[k] = nd;
            }
            if (t.right)
                nodes_[t.parent].right = off;
            else
                nodes_[t.parent].left = off;
        });
        return root;
    }

    const BvhConfig &cfg_;
    uint32_t threads_;
    std::vector<PrimRef> prims_;
    std::vector<BinNode> nodes_;
};

/** Bytes node @p n occupies including the leaf blocks it references. */
uint32_t
nodeFootprintBytes(const WideNode &n, uint32_t node_bytes)
{
    uint32_t bytes = node_bytes;
    for (const auto &c : n.child)
        if (c.kind == WideChild::Leaf)
            bytes += c.count * kTriBytes;
    return bytes;
}

/**
 * Quantize every child box to an 8-bit grid anchored at its node's
 * union box, growing outward so the quantized box always contains the
 * exact one (Ylitie et al. compressed wide BVH). Traversal then tests
 * exactly what the hardware would decode.
 */
void
quantizeChildBounds(std::vector<WideNode> &nodes, uint32_t threads)
{
    parallelChunks(nodes.size(), 4096, threads, [&](size_t begin,
                                                    size_t end, uint32_t) {
        for (size_t i = begin; i < end; i++) {
            WideNode &n = nodes[i];
            Aabb u;
            for (const auto &c : n.child)
                if (c.kind != WideChild::Invalid)
                    u.grow(c.bounds);
            if (u.empty())
                continue;
            Vec3 ext = u.extent();
            for (auto &c : n.child) {
                if (c.kind == WideChild::Invalid)
                    continue;
                Aabb exact = c.bounds;
                for (int a = 0; a < 3; a++) {
                    float e = ext[a];
                    if (e <= 0.0f)
                        continue; // flat axis: exact representation
                    float step = e / 255.0f;
                    float qlo = u.lo[a] +
                                std::floor((exact.lo[a] - u.lo[a]) / step) *
                                    step;
                    float qhi = u.lo[a] +
                                std::ceil((exact.hi[a] - u.lo[a]) / step) *
                                    step;
                    // Guard against float round-off un-conserving the box.
                    c.bounds.lo[a] = std::min(qlo, exact.lo[a]);
                    c.bounds.hi[a] = std::max(qhi, exact.hi[a]);
                }
            }
        }
    });
}

/**
 * Quantizer for the compressed 8-wide layout (DESIGN.md §11): each
 * node stores an origin (the union box's lo corner), one power-of-two
 * scale exponent per axis, and 8-bit child bounds. The stored child
 * boxes are exactly what decompression produces — origin + q * 2^e,
 * one float rounding per coordinate — so traversal, the functional
 * renderer and the timing model all test identical planes
 * ("decompression-order-exact"). The grid always grows outward:
 * qlo rounds down, qhi rounds up, and bounded +-1 nudges absorb any
 * division round-off, so a quantized box strictly contains the exact
 * one and no hit can be missed.
 */
void
quantizeChildBounds8(std::vector<WideNode> &nodes, uint32_t threads)
{
    parallelChunks(nodes.size(), 4096, threads, [&](size_t begin,
                                                    size_t end, uint32_t) {
        for (size_t i = begin; i < end; i++) {
            WideNode &n = nodes[i];
            Aabb u;
            for (const auto &c : n.child)
                if (c.kind != WideChild::Invalid)
                    u.grow(c.bounds);
            if (u.empty())
                continue;
            for (int a = 0; a < 3; a++) {
                float origin = u.lo[a];
                float ext = u.hi[a] - u.lo[a];
                if (ext <= 0.0f) {
                    // Flat axis: every child collapses to the origin
                    // plane, which the 8-bit grid represents exactly.
                    for (auto &c : n.child) {
                        if (c.kind == WideChild::Invalid)
                            continue;
                        c.bounds.lo[a] = origin;
                        c.bounds.hi[a] = origin;
                    }
                    continue;
                }
                // Smallest power-of-two cell covering ext/255: frexp
                // yields ext/255 = m * 2^e with m in [0.5, 1), so
                // 2^e > ext/255 and ceil((hi-origin)/scale) <= 255.
                int e = 0;
                std::frexp(ext / 255.0f, &e);
                for (;; e++) {
                    float scale = std::ldexp(1.0f, e);
                    bool ok = true;
                    for (auto &c : n.child) {
                        if (c.kind == WideChild::Invalid)
                            continue;
                        float lo = c.bounds.lo[a], hi = c.bounds.hi[a];
                        int qlo = std::clamp(
                            int(std::floor((lo - origin) / scale)), 0, 255);
                        int qhi = std::clamp(
                            int(std::ceil((hi - origin) / scale)), 0, 255);
                        while (qlo > 0 && origin + float(qlo) * scale > lo)
                            qlo--;
                        while (qhi < 255 && origin + float(qhi) * scale < hi)
                            qhi++;
                        float dlo = origin + float(qlo) * scale;
                        float dhi = origin + float(qhi) * scale;
                        if (dlo > lo || dhi < hi) {
                            ok = false; // grid can't cover; double cell
                            break;
                        }
                        c.bounds.lo[a] = dlo;
                        c.bounds.hi[a] = dhi;
                    }
                    if (ok)
                        break;
                }
            }
        }
    });
}

// --- Cost-based DP collapse to an 8-wide BVH (Ylitie et al.) ---------
//
// For every binary node n and slot budget j in [1, 8], costF(n, j) is
// the cheapest SAH cost of representing n's subtree in at most j root
// slots of its parent's wide node. A binary leaf always occupies one
// slot (leaves are never merged — leaf blocks stay identical to the
// 4-wide backend's, which is what keeps frames bit-identical across
// widths). An internal node either *emits* a wide node here
// (costF(n,1) = A(n)*Cnode + dist(n,8)) or *distributes* its two
// children over the budget (dist(n,j) = min_k costF(l,k) +
// costF(r,j-k)). Each row is a pure function of the children's rows,
// so computing rows bottom-up over depth waves is bit-identical at any
// thread count. Ties: the distribute scan takes the lowest k (strict
// <), and carrying the j-1 decision beats an equal-cost distribute.

constexpr uint8_t kDecLeaf = 255; //!< Slot is a binary leaf.
constexpr uint8_t kDecNode = 0;   //!< Emit a wide node at this slot.

/** Per-(node, budget) DP rows; index n * kMaxBvhWidth + (j - 1). */
struct WideDp
{
    std::vector<float> cost;
    std::vector<uint8_t> decL; //!< kDecLeaf / kDecNode / left slot count.
    std::vector<uint8_t> decR; //!< Right slot count of a distribute.
    /** Left slot count of dist(n, 8), used when n emits a wide node. */
    std::vector<uint8_t> rootK;
};

void
computeDpNode(const std::vector<BinNode> &bin, uint32_t n,
              const BvhConfig &cfg, WideDp &dp)
{
    const size_t at = size_t(n) * kMaxBvhWidth;
    float area = bin[n].bounds.surfaceArea();
    if (bin[n].isLeaf()) {
        float c = area * cfg.intersectCost * float(bin[n].triCount);
        for (int j = 0; j < kMaxBvhWidth; j++) {
            dp.cost[at + j] = c;
            dp.decL[at + j] = kDecLeaf;
            dp.decR[at + j] = 0;
        }
        return;
    }
    const float *cl = &dp.cost[size_t(bin[n].left) * kMaxBvhWidth];
    const float *cr = &dp.cost[size_t(bin[n].right) * kMaxBvhWidth];
    float dist[kMaxBvhWidth + 1];
    uint8_t distK[kMaxBvhWidth + 1];
    for (int j = 2; j <= kMaxBvhWidth; j++) {
        float best = std::numeric_limits<float>::max();
        uint8_t best_k = 1;
        for (int k = 1; k < j; k++) {
            float v = cl[k - 1] + cr[j - k - 1];
            if (v < best) {
                best = v;
                best_k = uint8_t(k);
            }
        }
        dist[j] = best;
        distK[j] = best_k;
    }
    dp.cost[at] = area * cfg.traversalCost + dist[kMaxBvhWidth];
    dp.decL[at] = kDecNode;
    dp.decR[at] = 0;
    dp.rootK[n] = distK[kMaxBvhWidth];
    for (int j = 2; j <= kMaxBvhWidth; j++) {
        if (dist[j] < dp.cost[at + j - 2]) {
            dp.cost[at + j - 1] = dist[j];
            dp.decL[at + j - 1] = distK[j];
            dp.decR[at + j - 1] = uint8_t(j) - distK[j];
        } else {
            dp.cost[at + j - 1] = dp.cost[at + j - 2];
            dp.decL[at + j - 1] = dp.decL[at + j - 2];
            dp.decR[at + j - 1] = dp.decR[at + j - 2];
        }
    }
}

/**
 * Fill the DP tables bottom-up. Depth buckets come from a forward
 * sweep over the parent-before-child node order the binary builders
 * guarantee (serial recursion appends parents first; the stitched
 * parallel arrays rebase child links to later offsets).
 */
WideDp
computeWideDp(const std::vector<BinNode> &bin, uint32_t root,
              const BvhConfig &cfg, uint32_t threads)
{
    WideDp dp;
    const size_t n = bin.size();
    dp.cost.resize(n * kMaxBvhWidth);
    dp.decL.resize(n * kMaxBvhWidth);
    dp.decR.resize(n * kMaxBvhWidth);
    dp.rootK.assign(n, 0);

    std::vector<uint32_t> depth(n, 0);
    depth[root] = 1;
    uint32_t maxd = 1;
    for (uint32_t i = root; i < n; i++) {
        assert(depth[i] > 0 && "binary node unreachable from root");
        if (bin[i].isLeaf())
            continue;
        assert(bin[i].left > i && bin[i].right > i);
        depth[bin[i].left] = depth[i] + 1;
        depth[bin[i].right] = depth[i] + 1;
        maxd = std::max(maxd, depth[i] + 1);
    }

    // Counting sort into depth buckets (deepest processed first).
    std::vector<uint32_t> bucket_begin(maxd + 2, 0);
    for (uint32_t i = root; i < n; i++)
        bucket_begin[depth[i] + 1]++;
    for (uint32_t d = 1; d <= maxd; d++)
        bucket_begin[d + 1] += bucket_begin[d];
    std::vector<uint32_t> order(n - root);
    {
        std::vector<uint32_t> cur(bucket_begin.begin(),
                                  bucket_begin.end() - 1);
        for (uint32_t i = root; i < n; i++)
            order[cur[depth[i]]++] = i;
    }
    for (uint32_t d = maxd; d >= 1; d--) {
        uint32_t begin = bucket_begin[d], end = bucket_begin[d + 1];
        parallelChunks(end - begin, 1024, threads,
                       [&](size_t b, size_t e, uint32_t) {
                           for (size_t i = b; i < e; i++)
                               computeDpNode(bin, order[begin + i], cfg,
                                             dp);
                       });
    }
    return dp;
}

} // anonymous namespace

uint64_t
BvhConfig::fingerprint() const
{
    // buildThreads is deliberately excluded: it never changes the
    // output (the parallel build is bit-identical to the serial one).
    Fnv1a h;
    h.pod(uint32_t(0xB1D50002)); // schema tag (v2: + width)
    h.pod(int32_t(maxLeafTris));
    h.pod(int32_t(sahBins));
    h.pod(traversalCost);
    h.pod(intersectCost);
    h.pod(treeletMaxBytes);
    h.pod(uint8_t(quantizedNodes));
    h.pod(int32_t(width));
    return h.value();
}

BvhConfig
BvhConfig::fromEnv()
{
    BvhConfig cfg;
    uint64_t w = envUInt("TRT_BVH_WIDTH", kBvhWidth, kMaxBvhWidth);
    if (w != 4 && w != 8)
        throw EnvError("TRT_BVH_WIDTH must be 4 or 8, got " +
                       std::to_string(w));
    cfg.width = int(w);
    return cfg;
}

uint32_t
resolveBuildThreads(uint32_t requested)
{
    if (requested)
        return requested;
    uint64_t n = envUInt("TRT_BUILD_THREADS", 0, 256);
    if (n > 0)
        return uint32_t(n);
    uint32_t hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** Collapses the binary tree into the wide node array of @p out. */
class BvhBuilder
{
  public:
    static void
    collapse(const std::vector<BinNode> &bin, uint32_t bin_root, Bvh &out,
             const BvhConfig &cfg, uint32_t threads)
    {
        if (bin_root == kInvalidNode) {
            out.nodes_.emplace_back();
            return;
        }
        if (bin[bin_root].isLeaf()) {
            // Degenerate: root itself is a leaf; wrap it in a node.
            WideNode n;
            n.child[0].bounds = bin[bin_root].bounds;
            n.child[0].kind = WideChild::Leaf;
            n.child[0].index = bin[bin_root].firstTri;
            n.child[0].count = bin[bin_root].triCount;
            out.nodes_.push_back(n);
            return;
        }
        WideDp dp;
        const WideDp *dpp = nullptr;
        if (cfg.width == kMaxBvhWidth) {
            dp = computeWideDp(bin, bin_root, cfg, threads);
            dpp = &dp;
        }
        if (threads > 1 && bin.size() >= kParallelCollapseMin) {
            collapseParallel(bin, bin_root, out, cfg.width, dpp, threads);
            return;
        }
        out.nodes_.emplace_back();
        collapseNode(bin, bin_root, 0, out, cfg.width, dpp);
    }

    static void
    partitionTreelets(Bvh &bvh, uint32_t max_bytes, uint32_t threads)
    {
        auto &nodes = bvh.nodes_;
        bvh.nodeTreelet_.assign(nodes.size(), kInvalidTreelet);

        // Treelet node membership in assignment order, used for layout.
        std::vector<std::vector<uint32_t>> members;

        // The serial formulation is a FIFO over treelet roots: pop a
        // root, fill its treelet, append the spilled roots. Each fill
        // depends only on its root (fills touch disjoint subtrees), so
        // entire FIFO generations can run in parallel; processing them
        // as waves preserves the serial pop order and hence the
        // treelet ids and the layout, bit for bit.
        std::vector<uint32_t> wave{0};
        while (!wave.empty()) {
            uint32_t base = uint32_t(members.size());
            members.resize(base + wave.size());
            std::vector<std::vector<uint32_t>> spills(wave.size());
            parallelChunks(wave.size(), 1, threads,
                           [&](size_t i, size_t, uint32_t) {
                               fillTreelet(bvh, wave[i],
                                           base + uint32_t(i), max_bytes,
                                           members[base + i], spills[i]);
                           });
            std::vector<uint32_t> next;
            for (const auto &s : spills)
                next.insert(next.end(), s.begin(), s.end());
            wave = std::move(next);
        }

        layout(bvh, members);
        computeTreeletDepths(bvh, members);
    }

  private:
    /** Walk the DP decision tree of (@p n, budget @p j): a leaf or
     *  emit-node decision makes @p n a root slot; a distribute
     *  decision recurses left then right, so slots come out in
     *  left-to-right binary order (recursion depth < kMaxBvhWidth). */
    static void
    collectRoots(const std::vector<BinNode> &bin, const WideDp &dp,
                 uint32_t n, int j, uint32_t slots[kMaxBvhWidth],
                 int &n_slots)
    {
        const size_t at = size_t(n) * kMaxBvhWidth + size_t(j) - 1;
        uint8_t d = dp.decL[at];
        if (d == kDecLeaf || d == kDecNode) {
            slots[n_slots++] = n;
            return;
        }
        collectRoots(bin, dp, bin[n].left, d, slots, n_slots);
        collectRoots(bin, dp, bin[n].right, dp.decR[at], slots, n_slots);
    }

    /**
     * Gather the binary descendants that become @p bin_idx's wide
     * children. Width 4 (no DP tables): greedily expand the internal
     * slot with the largest surface area. Width 8: walk the DP
     * decision tree of dist(bin_idx, 8). Returns the slot count.
     */
    static int
    gatherSlots(const std::vector<BinNode> &bin, uint32_t bin_idx,
                uint32_t slots[kMaxBvhWidth], int width, const WideDp *dp)
    {
        int n_slots = 0;
        if (dp) {
            int k = dp->rootK[bin_idx];
            collectRoots(bin, *dp, bin[bin_idx].left, k, slots, n_slots);
            collectRoots(bin, *dp, bin[bin_idx].right, width - k, slots,
                         n_slots);
            return n_slots;
        }
        slots[n_slots++] = bin[bin_idx].left;
        slots[n_slots++] = bin[bin_idx].right;

        while (n_slots < width) {
            int best = -1;
            float best_area = -1.0f;
            for (int i = 0; i < n_slots; i++) {
                if (bin[slots[i]].isLeaf())
                    continue;
                float a = bin[slots[i]].bounds.surfaceArea();
                if (a > best_area) {
                    best_area = a;
                    best = i;
                }
            }
            if (best < 0)
                break;
            uint32_t expand = slots[best];
            slots[best] = bin[expand].left;
            slots[n_slots++] = bin[expand].right;
        }
        return n_slots;
    }

    static void
    collapseNode(const std::vector<BinNode> &bin, uint32_t bin_idx,
                 uint32_t wide_idx, Bvh &out, int width, const WideDp *dp)
    {
        uint32_t slots[kMaxBvhWidth];
        int n_slots = gatherSlots(bin, bin_idx, slots, width, dp);

        // First create all children entries (reserving wide indices for
        // the internal ones), then recurse; out.nodes_ may reallocate so
        // never hold a reference across the recursion.
        uint32_t child_wide[kMaxBvhWidth];
        for (int i = 0; i < n_slots; i++) {
            const BinNode &c = bin[slots[i]];
            WideChild wc;
            wc.bounds = c.bounds;
            if (c.isLeaf()) {
                wc.kind = WideChild::Leaf;
                wc.index = c.firstTri;
                wc.count = c.triCount;
                child_wide[i] = kInvalidNode;
            } else {
                wc.kind = WideChild::Internal;
                wc.index = uint32_t(out.nodes_.size());
                child_wide[i] = wc.index;
                out.nodes_.emplace_back();
            }
            out.nodes_[wide_idx].child[i] = wc;
        }
        for (int i = 0; i < n_slots; i++)
            if (child_wide[i] != kInvalidNode)
                collapseNode(bin, slots[i], child_wide[i], out, width, dp);
    }

    /** Scratch entry of the wave-parallel collapse: one wide node. */
    struct CollapseScratch
    {
        uint32_t bin = 0;               //!< Binary node collapsed here.
        uint32_t slots[kMaxBvhWidth] = {}; //!< Gathered binary descendants.
        int nSlots = 0;
        uint32_t internalCount = 0; //!< Slots that are wide children.
        uint32_t firstChild = 0;    //!< First wide child (slot order).
        uint32_t subtree = 0;       //!< Wide nodes in this subtree.
        uint32_t canon = 0;         //!< Canonical index in out.nodes_.
        uint32_t childrenBase = 0;  //!< Canonical index of first child.
    };

    /**
     * Wave-parallel collapse reproducing the serial numbering exactly.
     * The serial recursion allocates a parent's internal children
     * consecutively, then numbers each child's descendants in slot
     * order; with per-subtree wide-node counts those indices are
     * computable top-down without running the recursion.
     */
    static void
    collapseParallel(const std::vector<BinNode> &bin, uint32_t bin_root,
                     Bvh &out, int width, const WideDp *dp,
                     uint32_t threads)
    {
        std::vector<CollapseScratch> cn;
        cn.reserve(bin.size() / 2 + 1);
        cn.emplace_back();
        cn[0].bin = bin_root;

        // Wave expansion: gather slots for the current wave in
        // parallel, then append its wide children (slot order within a
        // parent, parent order within the wave).
        std::vector<std::pair<uint32_t, uint32_t>> waves;
        uint32_t wave_begin = 0;
        while (wave_begin < cn.size()) {
            uint32_t wave_end = uint32_t(cn.size());
            waves.emplace_back(wave_begin, wave_end);
            parallelChunks(
                wave_end - wave_begin, 256, threads,
                [&](size_t b, size_t e, uint32_t) {
                    for (size_t i = b; i < e; i++) {
                        CollapseScratch &c = cn[wave_begin + i];
                        c.nSlots =
                            gatherSlots(bin, c.bin, c.slots, width, dp);
                        c.internalCount = 0;
                        for (int s = 0; s < c.nSlots; s++)
                            if (!bin[c.slots[s]].isLeaf())
                                c.internalCount++;
                    }
                });
            uint32_t next = wave_end;
            for (uint32_t i = wave_begin; i < wave_end; i++) {
                cn[i].firstChild = next;
                next += cn[i].internalCount;
            }
            cn.resize(next);
            parallelChunks(wave_end - wave_begin, 256, threads,
                           [&](size_t b, size_t e, uint32_t) {
                               for (size_t i = b; i < e; i++) {
                                   CollapseScratch &c = cn[wave_begin + i];
                                   uint32_t r = 0;
                                   for (int s = 0; s < c.nSlots; s++)
                                       if (!bin[c.slots[s]].isLeaf())
                                           cn[c.firstChild + r++].bin =
                                               c.slots[s];
                               }
                           });
            wave_begin = wave_end;
        }

        // Subtree wide-node counts, bottom-up wave by wave.
        for (size_t w = waves.size(); w-- > 0;) {
            auto [begin, end] = waves[w];
            parallelChunks(end - begin, 1024, threads,
                           [&](size_t b, size_t e, uint32_t) {
                               for (size_t i = b; i < e; i++) {
                                   CollapseScratch &c = cn[begin + i];
                                   c.subtree = 1;
                                   for (uint32_t r = 0;
                                        r < c.internalCount; r++)
                                       c.subtree +=
                                           cn[c.firstChild + r].subtree;
                               }
                           });
        }

        // Canonical numbering, top-down: each wave assigns the next
        // wave's indices from its own (already assigned) ones.
        cn[0].canon = 0;
        cn[0].childrenBase = 1;
        for (const auto &[begin, end] : waves) {
            parallelChunks(
                end - begin, 1024, threads,
                [&](size_t b, size_t e, uint32_t) {
                    for (size_t i = b; i < e; i++) {
                        const CollapseScratch &p = cn[begin + i];
                        uint32_t running =
                            p.childrenBase + p.internalCount;
                        for (uint32_t r = 0; r < p.internalCount; r++) {
                            CollapseScratch &c = cn[p.firstChild + r];
                            c.canon = p.childrenBase + r;
                            c.childrenBase = running;
                            running += c.subtree - 1;
                        }
                    }
                });
        }

        // Emit the wide nodes.
        out.nodes_.assign(cn.size(), WideNode{});
        parallelChunks(cn.size(), 1024, threads, [&](size_t b, size_t e,
                                                     uint32_t) {
            for (size_t i = b; i < e; i++) {
                const CollapseScratch &c = cn[i];
                WideNode &n = out.nodes_[c.canon];
                uint32_t r = 0;
                for (int s = 0; s < c.nSlots; s++) {
                    const BinNode &bc = bin[c.slots[s]];
                    WideChild wc;
                    wc.bounds = bc.bounds;
                    if (bc.isLeaf()) {
                        wc.kind = WideChild::Leaf;
                        wc.index = bc.firstTri;
                        wc.count = bc.triCount;
                    } else {
                        wc.kind = WideChild::Internal;
                        wc.index = cn[c.firstChild + r].canon;
                        r++;
                    }
                    n.child[s] = wc;
                }
            }
        });
    }

    /**
     * Fill the treelet rooted at @p root with id @p tid: pull nodes by
     * descending surface area (Aila & Karras) until the byte cap, spill
     * the rest as future treelet roots.
     */
    static void
    fillTreelet(Bvh &bvh, uint32_t root, uint32_t tid, uint32_t max_bytes,
                std::vector<uint32_t> &out_members,
                std::vector<uint32_t> &spills)
    {
        const auto &nodes = bvh.nodes_;
        using Entry = std::pair<float, uint32_t>;
        std::priority_queue<Entry> frontier;
        auto area_of = [&](uint32_t n) {
            Aabb b;
            for (const auto &c : nodes[n].child)
                if (c.kind != WideChild::Invalid)
                    b.grow(c.bounds);
            return b.surfaceArea();
        };
        frontier.emplace(area_of(root), root);
        uint32_t bytes = 0;

        while (!frontier.empty()) {
            uint32_t n = frontier.top().second;
            frontier.pop();
            uint32_t fp = nodeFootprintBytes(nodes[n], bvh.nodeBytes_);
            if (bytes > 0 && bytes + fp > max_bytes) {
                spills.push_back(n);
                continue;
            }
            bvh.nodeTreelet_[n] = tid;
            out_members.push_back(n);
            bytes += fp;
            for (const auto &c : nodes[n].child)
                if (c.kind == WideChild::Internal)
                    frontier.emplace(area_of(c.index), c.index);
        }
    }

    static void
    layout(Bvh &bvh, const std::vector<std::vector<uint32_t>> &members)
    {
        bvh.nodeAddr_.assign(bvh.nodes_.size(), 0);
        bvh.triAddr_.assign(std::max<size_t>(1, bvh.tris_.size()), 0);
        bvh.treeletAddr_.assign(members.size(), 0);
        bvh.treeletNodes_.assign(members.size(), 0);
        bvh.treeletBytes_.assign(members.size(), 0);

        uint64_t cur = kBvhBaseAddr;
        for (uint32_t t = 0; t < members.size(); t++) {
            uint64_t base = cur;
            bvh.treeletAddr_[t] = base;
            bvh.treeletNodes_[t] = uint32_t(members[t].size());
            for (uint32_t n : members[t]) {
                bvh.nodeAddr_[n] = cur;
                cur += bvh.nodeBytes_;
            }
            for (uint32_t n : members[t]) {
                for (const auto &c : bvh.nodes_[n].child) {
                    if (c.kind != WideChild::Leaf)
                        continue;
                    for (uint32_t k = 0; k < c.count; k++)
                        bvh.triAddr_[c.index + k] = cur + k * kTriBytes;
                    cur += uint64_t(c.count) * kTriBytes;
                }
            }
            bvh.treeletBytes_[t] = uint32_t(cur - base);
        }
        bvh.totalBytes_ = cur - kBvhBaseAddr;
    }

    static void
    computeTreeletDepths(Bvh &bvh,
                         const std::vector<std::vector<uint32_t>> &members)
    {
        // Within-treelet depth: a treelet's entry node has depth 1;
        // children in the same treelet are one deeper. Used to estimate
        // how many node visits a ray makes per treelet (preload timing,
        // section 4.3).
        std::vector<uint32_t> depth(bvh.nodes_.size(), 0);
        depth[0] = 1;
        // Nodes were appended parent-before-child per treelet, but child
        // wide indices are globally increasing, so a forward sweep works.
        for (uint32_t n = 0; n < bvh.nodes_.size(); n++) {
            if (depth[n] == 0)
                depth[n] = 1; // treelet entry reached via cross edge
            for (const auto &c : bvh.nodes_[n].child) {
                if (c.kind != WideChild::Internal)
                    continue;
                depth[c.index] =
                    bvh.nodeTreelet_[c.index] == bvh.nodeTreelet_[n]
                        ? depth[n] + 1
                        : 1;
            }
        }
        bvh.treeletDepth_.assign(members.size(), 1.0f);
        for (uint32_t t = 0; t < members.size(); t++) {
            double sum = 0.0;
            for (uint32_t n : members[t])
                sum += depth[n];
            if (!members[t].empty())
                bvh.treeletDepth_[t] = float(sum / members[t].size());
        }
    }
};

Bvh
Bvh::build(const std::vector<Triangle> &tris, const BvhConfig &cfg)
{
    Bvh bvh;
    uint32_t threads = resolveBuildThreads(cfg.buildThreads);

    BinaryBuilder bb(tris, cfg, threads);
    uint32_t bin_root = bb.build();

    // Reorder triangles by the permutation the binary build produced so
    // leaf ranges are contiguous.
    bvh.tris_.resize(tris.size());
    bvh.triOrig_.resize(tris.size());
    const auto &prims = bb.prims();
    parallelChunks(tris.size(), kReduceGrain, threads,
                   [&](size_t begin, size_t end, uint32_t) {
                       for (size_t i = begin; i < end; i++) {
                           bvh.tris_[i] = tris[prims[i].tri];
                           bvh.triOrig_[i] = prims[i].tri;
                       }
                   });

    assert(cfg.width == kBvhWidth || cfg.width == kMaxBvhWidth);
    BvhBuilder::collapse(bb.nodes(), bin_root, bvh, cfg, threads);

    if (cfg.width == kMaxBvhWidth) {
        // Width 8 always uses the compressed layout: quantized child
        // bounds and the 80-byte node encoding (DESIGN.md §11).
        bvh.width_ = kMaxBvhWidth;
        bvh.nodeBytes_ = kCompressedNode8Bytes;
        quantizeChildBounds8(bvh.nodes_, threads);
    } else if (cfg.quantizedNodes) {
        bvh.nodeBytes_ = kCompressedNodeBytes;
        quantizeChildBounds(bvh.nodes_, threads);
    }
    for (const auto &c : bvh.nodes_[0].child)
        if (c.kind != WideChild::Invalid)
            bvh.rootBounds_.grow(c.bounds);

    BvhBuilder::partitionTreelets(bvh, cfg.treeletMaxBytes, threads);
    bvh.buildPackedBounds(threads);
    return bvh;
}

void
Bvh::buildPackedBounds(uint32_t threads)
{
    const uint32_t stride = packedStride();
    packed_.resize(nodes_.size() * stride);
    parallelChunks(nodes_.size(), kReduceGrain, threads,
                   [&](size_t begin, size_t end, uint32_t) {
                       for (size_t i = begin; i < end; i++) {
                           const WideNode &n = nodes_[i];
                           for (uint32_t g = 0; g < stride; g++) {
                               PackedBounds4 pb;
                               for (int k = 0; k < 4; k++) {
                                   const WideChild &c =
                                       n.child[g * 4 + k];
                                   if (c.kind != WideChild::Invalid)
                                       pb.set(k, c.bounds);
                               }
                               packed_[i * stride + g] = pb;
                           }
                       }
                   });
}

HitRecord
Bvh::intersectClosest(const Ray &ray) const
{
    HitRecord hit;
    RayInv inv(ray);

    Ray r = ray; // r.tmax shrinks as hits are found
    struct Entry
    {
        uint32_t node;
        float t;
    };
    std::vector<Entry> stack;
    stack.push_back({0, r.tmin});

    while (!stack.empty()) {
        Entry e = stack.back();
        stack.pop_back();
        if (hit.hit() && e.t > hit.t)
            continue;

        const WideNode &n = nodes_[e.node];
        // Collect intersected children (one packed slab test per group
        // of four lanes, groups in child order), then push far-to-near.
        struct ChildHit
        {
            const WideChild *c;
            float t;
        };
        ChildHit hits[kMaxBvhWidth];
        int nh = 0;
        const uint32_t stride = packedStride();
        for (uint32_t g = 0; g < stride; g++) {
            float t_entry[4];
            uint32_t m = intersectAabb4(
                r, inv, packed_[size_t(e.node) * stride + g], t_entry);
            for (int k = 0; k < 4; k++) {
                if (m >> k & 1u)
                    hits[nh++] = {&n.child[g * 4 + k], t_entry[k]};
            }
        }
        // Insertion sort by descending t (at most kMaxBvhWidth entries;
        // avoids std::sort's code paths tripping -Warray-bounds).
        for (int i = 1; i < nh; i++) {
            ChildHit key = hits[i];
            int j = i - 1;
            while (j >= 0 && hits[j].t < key.t) {
                hits[j + 1] = hits[j];
                j--;
            }
            hits[j + 1] = key;
        }
        for (int i = 0; i < nh; i++) {
            const WideChild &c = *hits[i].c;
            if (c.kind == WideChild::Internal) {
                stack.push_back({c.index, hits[i].t});
            } else {
                // Batched Möller-Trumbore; the acceptance fold runs
                // per lane in order so r.tmax shrinks exactly as the
                // scalar loop's did.
                for (uint32_t k0 = 0; k0 < c.count; k0 += 4) {
                    uint32_t cnt = std::min(c.count - k0, 4u);
                    float t[4], u[4], v[4];
                    uint32_t tm = mollerTrumbore4(
                        r, &tris_[c.index + k0], cnt, t, u, v);
                    for (uint32_t k = 0; k < cnt; k++) {
                        if (!(tm >> k & 1u))
                            continue;
                        if (t[k] > r.tmin && t[k] < r.tmax) {
                            hit.t = t[k];
                            hit.u = u[k];
                            hit.v = v[k];
                            hit.triIndex = c.index + k0 + k;
                            r.tmax = t[k];
                        }
                    }
                }
            }
        }
    }
    return hit;
}

BvhStats
Bvh::stats() const
{
    BvhStats st;
    st.nodeCount = uint32_t(nodes_.size());
    st.triCount = uint32_t(tris_.size());
    st.totalBytes = totalBytes_;
    st.treeletCount = treeletCount();

    uint64_t leaf_tris = 0;
    for (const auto &n : nodes_) {
        for (const auto &c : n.child) {
            if (c.kind == WideChild::Leaf) {
                st.leafCount++;
                leaf_tris += c.count;
            }
        }
    }
    st.avgLeafTris = st.leafCount ? double(leaf_tris) / st.leafCount : 0.0;

    // Depth via explicit traversal.
    struct Entry
    {
        uint32_t node;
        uint32_t depth;
    };
    std::vector<Entry> stack{{0, 1}};
    while (!stack.empty()) {
        Entry e = stack.back();
        stack.pop_back();
        st.maxDepth = std::max(st.maxDepth, e.depth);
        for (const auto &c : nodes_[e.node].child)
            if (c.kind == WideChild::Internal)
                stack.push_back({c.index, e.depth + 1});
    }

    double tb = 0.0, tn = 0.0, td = 0.0;
    for (uint32_t t = 0; t < treeletCount(); t++) {
        tb += treeletBytes_[t];
        tn += treeletNodes_[t];
        td += treeletDepth_[t];
    }
    if (treeletCount()) {
        st.avgTreeletBytes = tb / treeletCount();
        st.avgTreeletNodes = tn / treeletCount();
        st.avgTreeletDepth = td / treeletCount();
    }
    return st;
}

} // namespace trt
