/**
 * @file
 * Flat binary serialization of a built Bvh, used by the harness's
 * bundle disk cache so benchmark binaries don't rebuild multi-million
 * triangle BVHs on every launch. The format is an internal cache — not
 * a stable interchange format — and is versioned by the harness.
 */

#ifndef TRT_BVH_IO_HH
#define TRT_BVH_IO_HH

#include <istream>
#include <ostream>

#include "bvh/bvh.hh"

namespace trt
{

/** Save/load access to Bvh internals. */
struct BvhIo
{
    static void save(std::ostream &os, const Bvh &bvh);
    /** @return false on malformed input. */
    static bool load(std::istream &is, Bvh &bvh);
};

} // namespace trt

#endif // TRT_BVH_IO_HH
