/**
 * @file
 * Minimal deterministic fork/join helpers for the parallel BVH build.
 *
 * Work is cut into chunks whose boundaries depend only on the input
 * size — never on the thread count or execution order — and every chunk
 * writes a disjoint output slot. Reductions then combine the per-chunk
 * partials in chunk order on one thread. Because the combining
 * operations used by the builder (min/max for AABB growth, integer
 * sums) are exactly associative, any thread count produces bit-identical
 * results to a serial run.
 */

#ifndef TRT_BVH_PARALLEL_HH
#define TRT_BVH_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace trt
{

/** Number of fixed-size chunks covering @p n items at @p grain. */
inline uint32_t
chunkCount(size_t n, uint32_t grain)
{
    return uint32_t((n + grain - 1) / grain);
}

/**
 * Run @p fn(begin, end, chunk) for every grain-sized chunk of [0, n)
 * on up to @p threads threads (dynamic chunk scheduling). Exceptions
 * are captured and the first one rethrown on the calling thread.
 */
template <typename Fn>
void
parallelChunks(size_t n, uint32_t grain, uint32_t threads, Fn &&fn)
{
    if (n == 0)
        return;
    const uint32_t chunks = chunkCount(n, grain);
    auto run_chunk = [&](uint32_t c) {
        size_t begin = size_t(c) * grain;
        size_t end = begin + grain < n ? begin + grain : n;
        fn(begin, end, c);
    };
    if (threads <= 1 || chunks <= 1) {
        for (uint32_t c = 0; c < chunks; c++)
            run_chunk(c);
        return;
    }

    std::atomic<uint32_t> next{0};
    std::mutex err_mtx;
    std::exception_ptr first_error;
    auto worker = [&]() {
        for (;;) {
            uint32_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                return;
            try {
                run_chunk(c);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    uint32_t nt = threads < chunks ? threads : chunks;
    std::vector<std::thread> pool;
    pool.reserve(nt - 1);
    for (uint32_t t = 1; t < nt; t++)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

/** parallelChunks with one item per chunk (a plain task queue). */
template <typename Fn>
void
parallelTasks(size_t n, uint32_t threads, Fn &&fn)
{
    parallelChunks(n, 1, threads,
                   [&](size_t begin, size_t, uint32_t) { fn(begin); });
}

} // namespace trt

#endif // TRT_BVH_PARALLEL_HH
