#include "bvh/traverser.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace trt
{

RayTraverser::RayTraverser(const Bvh *bvh, const Ray &ray)
{
    reset(bvh, ray);
}

void
RayTraverser::reset(const Bvh *bvh, const Ray &ray)
{
    bvh_ = bvh;
    ray_ = ray;
    inv_ = RayInv(ray);
    currentStack_.clear();
    treeletStack_.clear();
    pendingLeaves_.clear();
    curTreelet_ = kInvalidTreelet;
    fetchNode_ = kInvalidNode;
    hitRec_ = HitRecord{};
    counts_ = Counts{};
    specPrimed_ = false;
    specPending_ = false;
    specValid_ = false;
    specT_ = 0.0f;
    hitBlockFirst_ = 0;
    hitBlockCount_ = 0;
    // The ray conceptually starts outside any treelet with the root on
    // its treelet stack, so even the first step is a boundary crossing
    // into the root treelet. This is exactly how the paper's treelet
    // queues see fresh rays: they are inserted into the root treelet's
    // queue first.
    treeletStack_.push_back({bvh_->rootNode(), ray.tmin});
    phase_ = Phase::AtBoundary;
}

void
RayTraverser::primeSpeculation(uint32_t first_tri, uint32_t count)
{
    // Only a freshly reset traversal can be primed: the root is the
    // sole stack entry and nothing has been fetched yet.
    assert(phase_ == Phase::AtBoundary && currentStack_.empty() &&
           treeletStack_.size() == 1 && pendingLeaves_.empty() &&
           count > 0);
    pendingLeaves_.push_back({first_tri, count});
    phase_ = Phase::FetchLeaf;
    specPrimed_ = true;
    specPending_ = true;
}

namespace
{

/**
 * Node-culling bound derived from the speculative candidate distance.
 * Triangle t (Möller-Trumbore) and box entry t (slab test) come from
 * different float expressions, so near a triangle lying on its node's
 * boundary plane the computed box entry can exceed the exact hit t by
 * a few ulps; culling boxes at the raw specT_ would then prune the
 * very node that holds the closest hit (observed on axis-aligned
 * Cornell walls). Padding the *culling* bound — never the acceptance
 * bound, whose equal-t tie-break is bit-exact — keeps that node alive
 * at the price of visiting a handful of nodes the unprimed traversal
 * visits anyway (pre-hit it traverses with the full ray extent).
 */
inline float
specCullBound(float spec_t)
{
    return spec_t + (std::fabs(spec_t) * 1e-4f + 1e-6f);
}

} // anonymous namespace

RayTraverser::SpecOutcome
RayTraverser::specOutcome() const
{
    if (!specPrimed_)
        return SpecOutcome::None;
    // Correct iff the speculative block produced the final hit
    // distance; equal-t means the block held a closest-hit triangle
    // even if the in-order tie-break later picked another.
    return (specValid_ && hitRec_.hit() && hitRec_.t == specT_)
               ? SpecOutcome::Correct
               : SpecOutcome::Wrong;
}

void
RayTraverser::pruneStacks()
{
    // Until a real hit exists, the speculative candidate distance
    // prunes nearly as hard (padded against float noise, see
    // specCullBound); entries near the bound survive because an
    // equal-t triangle may still be the tie-break winner.
    auto dead = [this](const Entry &e) {
        if (hitRec_.hit())
            return e.t > hitRec_.t;
        return specValid_ && e.t > specCullBound(specT_);
    };
    while (!currentStack_.empty() && dead(currentStack_.back()))
        currentStack_.pop_back();
    while (currentStack_.empty() && !treeletStack_.empty() &&
           dead(treeletStack_.back())) {
        treeletStack_.pop_back();
    }
}

uint32_t
RayTraverser::nextTreelet() const
{
    assert(phase_ == Phase::AtBoundary && !treeletStack_.empty());
    return bvh_->treeletOf(treeletStack_.back().node);
}

void
RayTraverser::enterNextTreelet()
{
    assert(phase_ == Phase::AtBoundary && !treeletStack_.empty());
    Entry e = treeletStack_.back();
    treeletStack_.pop_back();
    curTreelet_ = bvh_->treeletOf(e.node);
    fetchNode_ = e.node;
    phase_ = Phase::FetchNode;
    counts_.treeletSwitches++;
}

RayTraverser::Access
RayTraverser::currentAccess() const
{
    Access a;
    if (phase_ == Phase::FetchNode) {
        a.addr = bvh_->nodeAddr(fetchNode_);
        a.bytes = bvh_->nodeBytes();
        a.node = fetchNode_;
        a.leaf = false;
    } else if (phase_ == Phase::FetchLeaf) {
        assert(!pendingLeaves_.empty());
        const PendingLeaf &pl = pendingLeaves_.back();
        a.addr = bvh_->triBlockAddr(pl.firstTri);
        a.bytes = pl.count * kTriBytes;
        a.node = fetchNode_;
        a.leaf = true;
    }
    return a;
}

uint32_t
RayTraverser::complete()
{
    uint32_t tests = 0;
    if (phase_ == Phase::FetchNode) {
        counts_.nodeFetches++;
        const WideNode &n = bvh_->nodes()[fetchNode_];

        // Shrink the ray interval to the best hit so far — or, before
        // the first real hit, to the speculative candidate distance
        // padded against slab-vs-triangle float noise so nodes holding
        // an equal-t closest triangle are never culled.
        Ray r = ray_;
        if (hitRec_.hit())
            r.tmax = hitRec_.t;
        else if (specValid_)
            r.tmax = specCullBound(specT_);

        struct ChildHit
        {
            const WideChild *c;
            float t;
        };
        ChildHit hits[kMaxBvhWidth];
        int nh = 0;
        // One packed slab test per group of four children, groups in
        // child order (so an 8-wide node replicates the scalar 0..7
        // child visit order exactly); every valid child counts as a
        // box test exactly as the per-child loop did.
        const uint32_t stride = bvh_->packedStride();
        for (uint32_t g = 0; g < stride; g++) {
            const PackedBounds4 &pb =
                bvh_->packedBounds()[size_t(fetchNode_) * stride + g];
            float t_entry[4];
            uint32_t m = intersectAabb4(r, inv_, pb, t_entry);
            for (int k = 0; k < 4; k++) {
                if (m >> k & 1u)
                    hits[nh++] = {&n.child[g * 4 + k], t_entry[k]};
            }
            tests += pb.validCount;
        }
        counts_.boxTests += tests;

        // Internal children pushed far-to-near so the nearest pops
        // first; leaf children queued for triangle fetches. Insertion
        // sort: at most kMaxBvhWidth entries.
        for (int i = 1; i < nh; i++) {
            ChildHit key = hits[i];
            int j = i - 1;
            while (j >= 0 && hits[j].t < key.t) {
                hits[j + 1] = hits[j];
                j--;
            }
            hits[j + 1] = key;
        }
        for (int i = 0; i < nh; i++) {
            const WideChild &c = *hits[i].c;
            if (c.kind == WideChild::Internal) {
                Entry e{c.index, hits[i].t};
                if (bvh_->treeletOf(c.index) == curTreelet_)
                    currentStack_.push_back(e);
                else
                    treeletStack_.push_back(e);
            } else {
                pendingLeaves_.push_back({c.index, c.count});
            }
        }

        if (!pendingLeaves_.empty()) {
            phase_ = Phase::FetchLeaf;
        } else {
            advance();
        }
    } else if (phase_ == Phase::FetchLeaf) {
        counts_.leafFetches++;
        PendingLeaf pl = pendingLeaves_.back();
        pendingLeaves_.pop_back();

        Ray r = ray_;
        // Before the first real acceptance the speculative candidate
        // only *bounds* the search; a triangle matching it exactly is
        // accepted once, so the ordinary first-in-traversal-order
        // tie-break still decides the final hit (see
        // primeSpeculation()).
        bool allow_eq = false;
        if (hitRec_.hit()) {
            r.tmax = hitRec_.t;
        } else if (specValid_) {
            r.tmax = specT_;
            allow_eq = true;
        }
        // Batched Möller-Trumbore candidates; the acceptance fold runs
        // per lane in order so r.tmax shrinks between triangles of the
        // leaf exactly as the scalar loop's did.
        const Triangle *tris = &bvh_->triangles()[pl.firstTri];
        if (specPending_) {
            // The primed block: record only the closest valid candidate
            // distance. hit() stays untouched — the fallback traversal
            // (which always follows) re-derives the actual hit record.
            specPending_ = false;
            for (uint32_t k0 = 0; k0 < pl.count; k0 += 4) {
                uint32_t cnt = std::min(pl.count - k0, 4u);
                float t[4], u[4], v[4];
                uint32_t m = mollerTrumbore4(r, tris + k0, cnt, t, u, v);
                for (uint32_t k = 0; k < cnt; k++) {
                    if (!(m >> k & 1u))
                        continue;
                    if (t[k] > r.tmin && t[k] < r.tmax) {
                        specT_ = t[k];
                        specValid_ = true;
                        r.tmax = t[k];
                    }
                }
            }
        } else {
            for (uint32_t k0 = 0; k0 < pl.count; k0 += 4) {
                uint32_t cnt = std::min(pl.count - k0, 4u);
                float t[4], u[4], v[4];
                uint32_t m = mollerTrumbore4(r, tris + k0, cnt, t, u, v);
                for (uint32_t k = 0; k < cnt; k++) {
                    if (!(m >> k & 1u))
                        continue;
                    if (t[k] > r.tmin &&
                        (t[k] < r.tmax ||
                         (allow_eq && t[k] == r.tmax))) {
                        hitRec_.t = t[k];
                        hitRec_.u = u[k];
                        hitRec_.v = v[k];
                        hitRec_.triIndex = pl.firstTri + k0 + k;
                        hitBlockFirst_ = pl.firstTri;
                        hitBlockCount_ = pl.count;
                        r.tmax = t[k];
                        allow_eq = false;
                    }
                }
            }
        }
        tests = pl.count;
        counts_.triTests += tests;

        if (pendingLeaves_.empty())
            advance();
    } else {
        assert(false && "complete() called with no outstanding access");
    }
    return tests;
}

void
RayTraverser::advance()
{
    pruneStacks();
    if (!currentStack_.empty()) {
        fetchNode_ = currentStack_.back().node;
        currentStack_.pop_back();
        phase_ = Phase::FetchNode;
    } else if (!treeletStack_.empty()) {
        phase_ = Phase::AtBoundary;
    } else {
        phase_ = Phase::Done;
    }
}

void
RayTraverser::saveState(Serializer &s) const
{
    static_assert(sizeof(Entry) == 8);
    static_assert(sizeof(PendingLeaf) == 8);
    static_assert(sizeof(Ray) == 32);       // padding-free for pod()
    static_assert(sizeof(HitRecord) == 16);
    static_assert(sizeof(Counts) == 40);
    s.beginChunk("TRAV");
    s.pod(ray_);
    s.u8(uint8_t(phase_));
    s.vecPod(currentStack_);
    s.vecPod(treeletStack_);
    s.u32(curTreelet_);
    s.u32(fetchNode_);
    s.vecPod(pendingLeaves_);
    s.pod(hitRec_);
    s.pod(counts_);
    s.b(specPrimed_);
    s.b(specPending_);
    s.b(specValid_);
    s.f32(specT_);
    s.u32(hitBlockFirst_);
    s.u32(hitBlockCount_);
    s.endChunk();
}

void
RayTraverser::loadState(Deserializer &d, const Bvh *bvh)
{
    d.beginChunk("TRAV");
    bvh_ = bvh;
    ray_ = d.pod<Ray>();
    inv_ = RayInv(ray_);
    uint8_t phase = d.u8();
    if (phase > uint8_t(Phase::Done))
        throw SnapshotError("snapshot: traverser phase out of range");
    phase_ = Phase(phase);
    currentStack_ = d.vecPod<Entry>();
    treeletStack_ = d.vecPod<Entry>();
    curTreelet_ = d.u32();
    fetchNode_ = d.u32();
    pendingLeaves_ = d.vecPod<PendingLeaf>();
    hitRec_ = d.pod<HitRecord>();
    counts_ = d.pod<Counts>();
    specPrimed_ = d.b();
    specPending_ = d.b();
    specValid_ = d.b();
    specT_ = d.f32();
    hitBlockFirst_ = d.u32();
    hitBlockCount_ = d.u32();
    d.endChunk();
}

} // namespace trt
