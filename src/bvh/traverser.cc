#include "bvh/traverser.hh"

#include <algorithm>
#include <cassert>

namespace trt
{

RayTraverser::RayTraverser(const Bvh *bvh, const Ray &ray)
{
    reset(bvh, ray);
}

void
RayTraverser::reset(const Bvh *bvh, const Ray &ray)
{
    bvh_ = bvh;
    ray_ = ray;
    inv_ = RayInv(ray);
    currentStack_.clear();
    treeletStack_.clear();
    pendingLeaves_.clear();
    curTreelet_ = kInvalidTreelet;
    fetchNode_ = kInvalidNode;
    hitRec_ = HitRecord{};
    counts_ = Counts{};
    // The ray conceptually starts outside any treelet with the root on
    // its treelet stack, so even the first step is a boundary crossing
    // into the root treelet. This is exactly how the paper's treelet
    // queues see fresh rays: they are inserted into the root treelet's
    // queue first.
    treeletStack_.push_back({bvh_->rootNode(), ray.tmin});
    phase_ = Phase::AtBoundary;
}

void
RayTraverser::pruneStacks()
{
    auto dead = [this](const Entry &e) {
        return hitRec_.hit() && e.t > hitRec_.t;
    };
    while (!currentStack_.empty() && dead(currentStack_.back()))
        currentStack_.pop_back();
    while (currentStack_.empty() && !treeletStack_.empty() &&
           dead(treeletStack_.back())) {
        treeletStack_.pop_back();
    }
}

uint32_t
RayTraverser::nextTreelet() const
{
    assert(phase_ == Phase::AtBoundary && !treeletStack_.empty());
    return bvh_->treeletOf(treeletStack_.back().node);
}

void
RayTraverser::enterNextTreelet()
{
    assert(phase_ == Phase::AtBoundary && !treeletStack_.empty());
    Entry e = treeletStack_.back();
    treeletStack_.pop_back();
    curTreelet_ = bvh_->treeletOf(e.node);
    fetchNode_ = e.node;
    phase_ = Phase::FetchNode;
    counts_.treeletSwitches++;
}

RayTraverser::Access
RayTraverser::currentAccess() const
{
    Access a;
    if (phase_ == Phase::FetchNode) {
        a.addr = bvh_->nodeAddr(fetchNode_);
        a.bytes = bvh_->nodeBytes();
        a.node = fetchNode_;
        a.leaf = false;
    } else if (phase_ == Phase::FetchLeaf) {
        assert(!pendingLeaves_.empty());
        const PendingLeaf &pl = pendingLeaves_.back();
        a.addr = bvh_->triBlockAddr(pl.firstTri);
        a.bytes = pl.count * kTriBytes;
        a.node = fetchNode_;
        a.leaf = true;
    }
    return a;
}

uint32_t
RayTraverser::complete()
{
    uint32_t tests = 0;
    if (phase_ == Phase::FetchNode) {
        counts_.nodeFetches++;
        const WideNode &n = bvh_->nodes()[fetchNode_];

        // Shrink the ray interval to the best hit so far.
        Ray r = ray_;
        if (hitRec_.hit())
            r.tmax = hitRec_.t;

        struct ChildHit
        {
            const WideChild *c;
            float t;
        };
        ChildHit hits[kBvhWidth];
        int nh = 0;
        // One packed slab test covers all four children; every valid
        // child counts as a box test exactly as the per-child loop did.
        const PackedBounds4 &pb = bvh_->packedBounds()[fetchNode_];
        float t_entry[4];
        uint32_t m = intersectAabb4(r, inv_, pb, t_entry);
        for (int k = 0; k < kBvhWidth; k++) {
            if (m >> k & 1u)
                hits[nh++] = {&n.child[k], t_entry[k]};
        }
        tests = pb.validCount;
        counts_.boxTests += tests;

        // Internal children pushed far-to-near so the nearest pops
        // first; leaf children queued for triangle fetches. Insertion
        // sort: at most kBvhWidth entries.
        for (int i = 1; i < nh; i++) {
            ChildHit key = hits[i];
            int j = i - 1;
            while (j >= 0 && hits[j].t < key.t) {
                hits[j + 1] = hits[j];
                j--;
            }
            hits[j + 1] = key;
        }
        for (int i = 0; i < nh; i++) {
            const WideChild &c = *hits[i].c;
            if (c.kind == WideChild::Internal) {
                Entry e{c.index, hits[i].t};
                if (bvh_->treeletOf(c.index) == curTreelet_)
                    currentStack_.push_back(e);
                else
                    treeletStack_.push_back(e);
            } else {
                pendingLeaves_.push_back({c.index, c.count});
            }
        }

        if (!pendingLeaves_.empty()) {
            phase_ = Phase::FetchLeaf;
        } else {
            advance();
        }
    } else if (phase_ == Phase::FetchLeaf) {
        counts_.leafFetches++;
        PendingLeaf pl = pendingLeaves_.back();
        pendingLeaves_.pop_back();

        Ray r = ray_;
        if (hitRec_.hit())
            r.tmax = hitRec_.t;
        // Batched Möller-Trumbore candidates; the acceptance fold runs
        // per lane in order so r.tmax shrinks between triangles of the
        // leaf exactly as the scalar loop's did.
        const Triangle *tris = &bvh_->triangles()[pl.firstTri];
        for (uint32_t k0 = 0; k0 < pl.count; k0 += 4) {
            uint32_t cnt = std::min(pl.count - k0, 4u);
            float t[4], u[4], v[4];
            uint32_t m = mollerTrumbore4(r, tris + k0, cnt, t, u, v);
            for (uint32_t k = 0; k < cnt; k++) {
                if (!(m >> k & 1u))
                    continue;
                if (t[k] > r.tmin && t[k] < r.tmax) {
                    hitRec_.t = t[k];
                    hitRec_.u = u[k];
                    hitRec_.v = v[k];
                    hitRec_.triIndex = pl.firstTri + k0 + k;
                    r.tmax = t[k];
                }
            }
        }
        tests = pl.count;
        counts_.triTests += tests;

        if (pendingLeaves_.empty())
            advance();
    } else {
        assert(false && "complete() called with no outstanding access");
    }
    return tests;
}

void
RayTraverser::advance()
{
    pruneStacks();
    if (!currentStack_.empty()) {
        fetchNode_ = currentStack_.back().node;
        currentStack_.pop_back();
        phase_ = Phase::FetchNode;
    } else if (!treeletStack_.empty()) {
        phase_ = Phase::AtBoundary;
    } else {
        phase_ = Phase::Done;
    }
}

void
RayTraverser::saveState(Serializer &s) const
{
    static_assert(sizeof(Entry) == 8);
    static_assert(sizeof(PendingLeaf) == 8);
    static_assert(sizeof(Ray) == 32);       // padding-free for pod()
    static_assert(sizeof(HitRecord) == 16);
    static_assert(sizeof(Counts) == 40);
    s.beginChunk("TRAV");
    s.pod(ray_);
    s.u8(uint8_t(phase_));
    s.vecPod(currentStack_);
    s.vecPod(treeletStack_);
    s.u32(curTreelet_);
    s.u32(fetchNode_);
    s.vecPod(pendingLeaves_);
    s.pod(hitRec_);
    s.pod(counts_);
    s.endChunk();
}

void
RayTraverser::loadState(Deserializer &d, const Bvh *bvh)
{
    d.beginChunk("TRAV");
    bvh_ = bvh;
    ray_ = d.pod<Ray>();
    inv_ = RayInv(ray_);
    uint8_t phase = d.u8();
    if (phase > uint8_t(Phase::Done))
        throw SnapshotError("snapshot: traverser phase out of range");
    phase_ = Phase(phase);
    currentStack_ = d.vecPod<Entry>();
    treeletStack_ = d.vecPod<Entry>();
    curTreelet_ = d.u32();
    fetchNode_ = d.u32();
    pendingLeaves_ = d.vecPod<PendingLeaf>();
    hitRec_ = d.pod<HitRecord>();
    counts_ = d.pod<Counts>();
    d.endChunk();
}

} // namespace trt
