/**
 * @file
 * Portable 4-lane SIMD intersection kernels for the wide-BVH hot loop.
 *
 * One call tests a ray against all four children of a packed wide node
 * (SoA child bounds, PackedBounds4) or against up to four leaf
 * triangles (batched Möller-Trumbore). The SSE2/NEON paths replicate
 * the scalar kernels of geom/intersect.cc operation for operation —
 * same axis order, same left-associated dot products, IEEE-exact
 * division, no FMA contraction (the build forces -ffp-contract=off) —
 * so scalar and SIMD traversals produce bit-identical hit records and
 * the simulator's determinism bar holds across builds and the runtime
 * toggle. See DESIGN.md §6 for the full determinism policy.
 *
 * Backend selection is compile-time (TRT_SIMD CMake option; scalar
 * fallback otherwise); on top of that a process-wide runtime switch
 * (setSimdEnabled / TRT_SIMD=0 environment) lets tests flip between
 * paths inside one binary and prove bit-equality.
 */

#ifndef TRT_GEOM_SIMD_HH
#define TRT_GEOM_SIMD_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "geom/intersect.hh"
#include "geom/ray.hh"

#if !defined(TRT_NO_SIMD) && \
    (defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64))
#define TRT_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(TRT_NO_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define TRT_SIMD_NEON 1
#include <arm_neon.h>
#else
#define TRT_SIMD_SCALAR 1
#endif

namespace trt
{

namespace detail
{
/** Runtime SIMD switch; initialized from TRT_SIMD (default on). */
extern bool g_simdRuntime;
} // namespace detail

/** True when a vector backend was compiled in (TRT_SIMD build knob). */
bool simdCompiledIn();

/** Enable/disable the vector paths at runtime (no-op in scalar
 *  builds). Results are bit-identical either way; this exists so the
 *  determinism tests can compare both paths in one process. */
void setSimdEnabled(bool on);

/** True when intersectAabb4/mollerTrumbore4 dispatch to vector code. */
inline bool
simdEnabled()
{
#ifdef TRT_SIMD_SCALAR
    return false;
#else
    return detail::g_simdRuntime;
#endif
}

/**
 * SoA child bounds of one wide node, the operand of intersectAabb4.
 * lo[axis][lane] / hi[axis][lane]; lanes of Invalid children are
 * zero-filled and masked out via validMask (a zero box still passes a
 * slab test, so validity must be explicit).
 */
struct alignas(16) PackedBounds4
{
    float lo[3][4] = {};
    float hi[3][4] = {};
    uint32_t validMask = 0;  //!< Bit k set = child k is a real child.
    uint32_t validCount = 0; //!< Popcount of validMask.
    uint32_t pad_[2] = {};   //!< Keep sizeof a multiple of 16.

    void
    set(int lane, const Aabb &b)
    {
        lo[0][lane] = b.lo.x;
        lo[1][lane] = b.lo.y;
        lo[2][lane] = b.lo.z;
        hi[0][lane] = b.hi.x;
        hi[1][lane] = b.hi.y;
        hi[2][lane] = b.hi.z;
        validMask |= 1u << lane;
        validCount++;
    }
};

/**
 * Scalar reference: the slab test of intersectAabb() applied to each
 * valid lane. @return bitmask of lanes whose interval overlaps the
 * ray's; tEntry[k] is the entry distance for each set lane.
 */
inline uint32_t
intersectAabb4Scalar(const Ray &ray, const RayInv &inv,
                     const PackedBounds4 &pb, float t_entry[4])
{
    uint32_t mask = 0;
    for (int k = 0; k < 4; k++) {
        if (!(pb.validMask >> k & 1u))
            continue;
        float tx1 = (pb.lo[0][k] - ray.orig.x) * inv.invDir.x;
        float tx2 = (pb.hi[0][k] - ray.orig.x) * inv.invDir.x;
        float tlo = std::min(tx1, tx2);
        float thi = std::max(tx1, tx2);

        float ty1 = (pb.lo[1][k] - ray.orig.y) * inv.invDir.y;
        float ty2 = (pb.hi[1][k] - ray.orig.y) * inv.invDir.y;
        tlo = std::max(tlo, std::min(ty1, ty2));
        thi = std::min(thi, std::max(ty1, ty2));

        float tz1 = (pb.lo[2][k] - ray.orig.z) * inv.invDir.z;
        float tz2 = (pb.hi[2][k] - ray.orig.z) * inv.invDir.z;
        tlo = std::max(tlo, std::min(tz1, tz2));
        thi = std::min(thi, std::max(tz1, tz2));

        if (thi < tlo || thi < ray.tmin || tlo > ray.tmax)
            continue;
        t_entry[k] = std::max(tlo, ray.tmin);
        mask |= 1u << k;
    }
    return mask;
}

/**
 * Scalar reference for the batched triangle kernel: Möller-Trumbore
 * candidates for @p n (<= 4) triangles, everything *except* the final
 * (tmin, tmax) range check, which the caller folds sequentially so the
 * shrinking tmax between triangles of one leaf matches the scalar
 * loop. Outputs t/u/v are only meaningful for set lanes.
 */
inline uint32_t
mollerTrumbore4Scalar(const Ray &ray, const Triangle *tris, uint32_t n,
                      float t[4], float u[4], float v[4])
{
    constexpr float kEps = 1e-9f;
    uint32_t mask = 0;
    for (uint32_t k = 0; k < n; k++) {
        const Triangle &tri = tris[k];
        Vec3 e1 = tri.v1 - tri.v0;
        Vec3 e2 = tri.v2 - tri.v0;
        Vec3 pvec = cross(ray.dir, e2);
        float det = dot(e1, pvec);
        if (std::fabs(det) < kEps)
            continue;
        float inv_det = 1.0f / det;
        Vec3 tvec = ray.orig - tri.v0;
        u[k] = dot(tvec, pvec) * inv_det;
        if (u[k] < 0.0f || u[k] > 1.0f)
            continue;
        Vec3 qvec = cross(tvec, e1);
        v[k] = dot(ray.dir, qvec) * inv_det;
        if (v[k] < 0.0f || u[k] + v[k] > 1.0f)
            continue;
        t[k] = dot(e2, qvec) * inv_det;
        mask |= 1u << k;
    }
    return mask;
}

#ifdef TRT_SIMD_SSE2

inline uint32_t
intersectAabb4Simd(const Ray &ray, const RayInv &inv,
                   const PackedBounds4 &pb, float t_entry[4])
{
    // Same op sequence as the scalar kernel, four lanes wide: per axis
    // t1/t2 products, min/max folds, then the three reject compares.
    __m128 o = _mm_set1_ps(ray.orig.x);
    __m128 i = _mm_set1_ps(inv.invDir.x);
    __m128 t1 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.lo[0]), o), i);
    __m128 t2 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.hi[0]), o), i);
    __m128 tlo = _mm_min_ps(t1, t2);
    __m128 thi = _mm_max_ps(t1, t2);

    o = _mm_set1_ps(ray.orig.y);
    i = _mm_set1_ps(inv.invDir.y);
    t1 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.lo[1]), o), i);
    t2 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.hi[1]), o), i);
    tlo = _mm_max_ps(tlo, _mm_min_ps(t1, t2));
    thi = _mm_min_ps(thi, _mm_max_ps(t1, t2));

    o = _mm_set1_ps(ray.orig.z);
    i = _mm_set1_ps(inv.invDir.z);
    t1 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.lo[2]), o), i);
    t2 = _mm_mul_ps(_mm_sub_ps(_mm_load_ps(pb.hi[2]), o), i);
    tlo = _mm_max_ps(tlo, _mm_min_ps(t1, t2));
    thi = _mm_min_ps(thi, _mm_max_ps(t1, t2));

    __m128 tmin = _mm_set1_ps(ray.tmin);
    __m128 pass = _mm_and_ps(
        _mm_cmpge_ps(thi, tlo),
        _mm_and_ps(_mm_cmpge_ps(thi, tmin),
                   _mm_cmple_ps(tlo, _mm_set1_ps(ray.tmax))));
    _mm_storeu_ps(t_entry, _mm_max_ps(tlo, tmin));
    return uint32_t(_mm_movemask_ps(pass)) & pb.validMask;
}

inline uint32_t
mollerTrumbore4Simd(const Ray &ray, const Triangle *tris, uint32_t n,
                    float t[4], float u[4], float v[4])
{
    // Pad short batches by replicating an in-range triangle; the lane
    // mask strips the duplicates.
    const uint32_t k1 = n > 1 ? 1 : 0;
    const uint32_t k2 = n > 2 ? 2 : 0;
    const uint32_t k3 = n > 3 ? 3 : 0;
#define TRT_GATHER(vert, comp)                                          \
    _mm_setr_ps(tris[0].vert.comp, tris[k1].vert.comp,                  \
                tris[k2].vert.comp, tris[k3].vert.comp)
    __m128 v0x = TRT_GATHER(v0, x), v0y = TRT_GATHER(v0, y),
           v0z = TRT_GATHER(v0, z);
    __m128 e1x = _mm_sub_ps(TRT_GATHER(v1, x), v0x),
           e1y = _mm_sub_ps(TRT_GATHER(v1, y), v0y),
           e1z = _mm_sub_ps(TRT_GATHER(v1, z), v0z);
    __m128 e2x = _mm_sub_ps(TRT_GATHER(v2, x), v0x),
           e2y = _mm_sub_ps(TRT_GATHER(v2, y), v0y),
           e2z = _mm_sub_ps(TRT_GATHER(v2, z), v0z);
#undef TRT_GATHER

    const __m128 dx = _mm_set1_ps(ray.dir.x);
    const __m128 dy = _mm_set1_ps(ray.dir.y);
    const __m128 dz = _mm_set1_ps(ray.dir.z);

    // cross(a, b) component order matches geom/vec.hh exactly.
    __m128 px = _mm_sub_ps(_mm_mul_ps(dy, e2z), _mm_mul_ps(dz, e2y));
    __m128 py = _mm_sub_ps(_mm_mul_ps(dz, e2x), _mm_mul_ps(dx, e2z));
    __m128 pz = _mm_sub_ps(_mm_mul_ps(dx, e2y), _mm_mul_ps(dy, e2x));
    // dot(a, b) is left-associated: (ax*bx + ay*by) + az*bz.
    __m128 det = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(e1x, px), _mm_mul_ps(e1y, py)),
        _mm_mul_ps(e1z, pz));

    const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    __m128 ok = _mm_cmpge_ps(_mm_and_ps(det, abs_mask),
                             _mm_set1_ps(1e-9f));
    __m128 inv_det = _mm_div_ps(_mm_set1_ps(1.0f), det);

    __m128 tx = _mm_sub_ps(_mm_set1_ps(ray.orig.x), v0x);
    __m128 ty = _mm_sub_ps(_mm_set1_ps(ray.orig.y), v0y);
    __m128 tz = _mm_sub_ps(_mm_set1_ps(ray.orig.z), v0z);

    __m128 uu = _mm_mul_ps(
        _mm_add_ps(_mm_add_ps(_mm_mul_ps(tx, px), _mm_mul_ps(ty, py)),
                   _mm_mul_ps(tz, pz)),
        inv_det);
    const __m128 zero = _mm_setzero_ps();
    const __m128 one = _mm_set1_ps(1.0f);
    ok = _mm_and_ps(ok, _mm_and_ps(_mm_cmpge_ps(uu, zero),
                                   _mm_cmple_ps(uu, one)));

    __m128 qx = _mm_sub_ps(_mm_mul_ps(ty, e1z), _mm_mul_ps(tz, e1y));
    __m128 qy = _mm_sub_ps(_mm_mul_ps(tz, e1x), _mm_mul_ps(tx, e1z));
    __m128 qz = _mm_sub_ps(_mm_mul_ps(tx, e1y), _mm_mul_ps(ty, e1x));

    __m128 vv = _mm_mul_ps(
        _mm_add_ps(_mm_add_ps(_mm_mul_ps(dx, qx), _mm_mul_ps(dy, qy)),
                   _mm_mul_ps(dz, qz)),
        inv_det);
    ok = _mm_and_ps(ok,
                    _mm_and_ps(_mm_cmpge_ps(vv, zero),
                               _mm_cmple_ps(_mm_add_ps(uu, vv), one)));

    __m128 tt = _mm_mul_ps(
        _mm_add_ps(_mm_add_ps(_mm_mul_ps(e2x, qx), _mm_mul_ps(e2y, qy)),
                   _mm_mul_ps(e2z, qz)),
        inv_det);

    _mm_storeu_ps(t, tt);
    _mm_storeu_ps(u, uu);
    _mm_storeu_ps(v, vv);
    return uint32_t(_mm_movemask_ps(ok)) & ((1u << n) - 1u);
}

#elif defined(TRT_SIMD_NEON)

namespace detail
{
inline uint32_t
neonMask(uint32x4_t m)
{
    const uint32x4_t bits = {1u, 2u, 4u, 8u};
    return vaddvq_u32(vandq_u32(m, bits));
}
} // namespace detail

inline uint32_t
intersectAabb4Simd(const Ray &ray, const RayInv &inv,
                   const PackedBounds4 &pb, float t_entry[4])
{
    float32x4_t o = vdupq_n_f32(ray.orig.x);
    float32x4_t i = vdupq_n_f32(inv.invDir.x);
    float32x4_t t1 = vmulq_f32(vsubq_f32(vld1q_f32(pb.lo[0]), o), i);
    float32x4_t t2 = vmulq_f32(vsubq_f32(vld1q_f32(pb.hi[0]), o), i);
    float32x4_t tlo = vminq_f32(t1, t2);
    float32x4_t thi = vmaxq_f32(t1, t2);

    o = vdupq_n_f32(ray.orig.y);
    i = vdupq_n_f32(inv.invDir.y);
    t1 = vmulq_f32(vsubq_f32(vld1q_f32(pb.lo[1]), o), i);
    t2 = vmulq_f32(vsubq_f32(vld1q_f32(pb.hi[1]), o), i);
    tlo = vmaxq_f32(tlo, vminq_f32(t1, t2));
    thi = vminq_f32(thi, vmaxq_f32(t1, t2));

    o = vdupq_n_f32(ray.orig.z);
    i = vdupq_n_f32(inv.invDir.z);
    t1 = vmulq_f32(vsubq_f32(vld1q_f32(pb.lo[2]), o), i);
    t2 = vmulq_f32(vsubq_f32(vld1q_f32(pb.hi[2]), o), i);
    tlo = vmaxq_f32(tlo, vminq_f32(t1, t2));
    thi = vminq_f32(thi, vmaxq_f32(t1, t2));

    float32x4_t tmin = vdupq_n_f32(ray.tmin);
    uint32x4_t pass = vandq_u32(
        vcgeq_f32(thi, tlo),
        vandq_u32(vcgeq_f32(thi, tmin),
                  vcleq_f32(tlo, vdupq_n_f32(ray.tmax))));
    vst1q_f32(t_entry, vmaxq_f32(tlo, tmin));
    return detail::neonMask(pass) & pb.validMask;
}

inline uint32_t
mollerTrumbore4Simd(const Ray &ray, const Triangle *tris, uint32_t n,
                    float t[4], float u[4], float v[4])
{
    const uint32_t k1 = n > 1 ? 1 : 0;
    const uint32_t k2 = n > 2 ? 2 : 0;
    const uint32_t k3 = n > 3 ? 3 : 0;
#define TRT_GATHER(vert, comp)                                          \
    float32x4_t                                                         \
    {                                                                   \
        tris[0].vert.comp, tris[k1].vert.comp, tris[k2].vert.comp,      \
            tris[k3].vert.comp                                          \
    }
    float32x4_t v0x = TRT_GATHER(v0, x), v0y = TRT_GATHER(v0, y),
                v0z = TRT_GATHER(v0, z);
    float32x4_t e1x = vsubq_f32(TRT_GATHER(v1, x), v0x),
                e1y = vsubq_f32(TRT_GATHER(v1, y), v0y),
                e1z = vsubq_f32(TRT_GATHER(v1, z), v0z);
    float32x4_t e2x = vsubq_f32(TRT_GATHER(v2, x), v0x),
                e2y = vsubq_f32(TRT_GATHER(v2, y), v0y),
                e2z = vsubq_f32(TRT_GATHER(v2, z), v0z);
#undef TRT_GATHER

    const float32x4_t dx = vdupq_n_f32(ray.dir.x);
    const float32x4_t dy = vdupq_n_f32(ray.dir.y);
    const float32x4_t dz = vdupq_n_f32(ray.dir.z);

    float32x4_t px = vsubq_f32(vmulq_f32(dy, e2z), vmulq_f32(dz, e2y));
    float32x4_t py = vsubq_f32(vmulq_f32(dz, e2x), vmulq_f32(dx, e2z));
    float32x4_t pz = vsubq_f32(vmulq_f32(dx, e2y), vmulq_f32(dy, e2x));
    float32x4_t det = vaddq_f32(
        vaddq_f32(vmulq_f32(e1x, px), vmulq_f32(e1y, py)),
        vmulq_f32(e1z, pz));

    uint32x4_t ok = vcgeq_f32(vabsq_f32(det), vdupq_n_f32(1e-9f));
    float32x4_t inv_det = vdivq_f32(vdupq_n_f32(1.0f), det);

    float32x4_t tx = vsubq_f32(vdupq_n_f32(ray.orig.x), v0x);
    float32x4_t ty = vsubq_f32(vdupq_n_f32(ray.orig.y), v0y);
    float32x4_t tz = vsubq_f32(vdupq_n_f32(ray.orig.z), v0z);

    float32x4_t uu = vmulq_f32(
        vaddq_f32(vaddq_f32(vmulq_f32(tx, px), vmulq_f32(ty, py)),
                  vmulq_f32(tz, pz)),
        inv_det);
    const float32x4_t zero = vdupq_n_f32(0.0f);
    const float32x4_t one = vdupq_n_f32(1.0f);
    ok = vandq_u32(ok, vandq_u32(vcgeq_f32(uu, zero),
                                 vcleq_f32(uu, one)));

    float32x4_t qx = vsubq_f32(vmulq_f32(ty, e1z), vmulq_f32(tz, e1y));
    float32x4_t qy = vsubq_f32(vmulq_f32(tz, e1x), vmulq_f32(tx, e1z));
    float32x4_t qz = vsubq_f32(vmulq_f32(tx, e1y), vmulq_f32(ty, e1x));

    float32x4_t vv = vmulq_f32(
        vaddq_f32(vaddq_f32(vmulq_f32(dx, qx), vmulq_f32(dy, qy)),
                  vmulq_f32(dz, qz)),
        inv_det);
    ok = vandq_u32(ok, vandq_u32(vcgeq_f32(vv, zero),
                                 vcleq_f32(vaddq_f32(uu, vv), one)));

    float32x4_t tt = vmulq_f32(
        vaddq_f32(vaddq_f32(vmulq_f32(e2x, qx), vmulq_f32(e2y, qy)),
                  vmulq_f32(e2z, qz)),
        inv_det);

    vst1q_f32(t, tt);
    vst1q_f32(u, uu);
    vst1q_f32(v, vv);
    return detail::neonMask(ok) & ((1u << n) - 1u);
}

#endif // TRT_SIMD_SSE2 / TRT_SIMD_NEON

/** 4-wide slab test: dispatches to the vector backend when enabled. */
inline uint32_t
intersectAabb4(const Ray &ray, const RayInv &inv, const PackedBounds4 &pb,
               float t_entry[4])
{
#ifndef TRT_SIMD_SCALAR
    if (detail::g_simdRuntime)
        return intersectAabb4Simd(ray, inv, pb, t_entry);
#endif
    return intersectAabb4Scalar(ray, inv, pb, t_entry);
}

/** Batched (<= 4) Möller-Trumbore: dispatches like intersectAabb4.
 *  The caller applies the (tmin, tmax) acceptance fold per lane in
 *  order so the shrinking tmax matches the scalar triangle loop. */
inline uint32_t
mollerTrumbore4(const Ray &ray, const Triangle *tris, uint32_t n,
                float t[4], float u[4], float v[4])
{
#ifndef TRT_SIMD_SCALAR
    if (detail::g_simdRuntime)
        return mollerTrumbore4Simd(ray, tris, n, t, u, v);
#endif
    return mollerTrumbore4Scalar(ray, tris, n, t, u, v);
}

} // namespace trt

#endif // TRT_GEOM_SIMD_HH
