/**
 * @file
 * Ray representation shared by the functional renderer and the RT-unit
 * timing model. The layout mirrors what the paper stores per ray in the
 * RT unit's warp buffer / L2 ray-data region: origin, direction, tmin and
 * tmax (32 bytes, see paper section 6.5).
 */

#ifndef TRT_GEOM_RAY_HH
#define TRT_GEOM_RAY_HH

#include <cstdint>

#include "geom/vec.hh"

namespace trt
{

/** Bytes of ray state held per ray in the L2 reserved region (paper 6.5). */
constexpr uint32_t kRayDataBytes = 32;

/** A ray with a parametric validity interval [tmin, tmax]. */
struct Ray
{
    Vec3 orig;
    Vec3 dir;       //!< Not required to be normalized, but usually is.
    float tmin = 1e-4f;
    float tmax = 3.4e38f;

    Ray() = default;
    Ray(const Vec3 &o, const Vec3 &d, float t0 = 1e-4f, float t1 = 3.4e38f)
        : orig(o), dir(d), tmin(t0), tmax(t1)
    {}

    /** Point at parameter @p t. */
    Vec3 at(float t) const { return orig + dir * t; }
};

/**
 * Precomputed reciprocal directions for slab tests. Computed once per ray
 * and reused for every AABB test during traversal, as real RT units do.
 */
struct RayInv
{
    Vec3 invDir;
    /** Per-axis flag: direction component negative. */
    bool neg[3];

    explicit RayInv(const Ray &r)
    {
        auto inv = [](float d) {
            // IEEE infinity is fine for the slab test as long as the
            // origin is not exactly on the slab; nudge zero directions.
            return 1.0f / (d == 0.0f ? 1e-30f : d);
        };
        invDir = {inv(r.dir.x), inv(r.dir.y), inv(r.dir.z)};
        neg[0] = r.dir.x < 0.0f;
        neg[1] = r.dir.y < 0.0f;
        neg[2] = r.dir.z < 0.0f;
    }
};

/** Result of the closest-hit query for one ray. */
struct HitRecord
{
    float t = -1.0f;          //!< Hit distance; < 0 means miss.
    float u = 0.0f;           //!< Barycentric u at the hit.
    float v = 0.0f;           //!< Barycentric v at the hit.
    uint32_t triIndex = ~0u;  //!< Index of the intersected triangle.

    bool hit() const { return t >= 0.0f; }
};

} // namespace trt

#endif // TRT_GEOM_RAY_HH
