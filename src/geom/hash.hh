/**
 * @file
 * FNV-1a hashing used for configuration fingerprints (scene-bundle and
 * run-result cache keys). Hash scalar fields one at a time — never a
 * whole struct — so padding bytes can't leak nondeterminism into keys.
 */

#ifndef TRT_GEOM_HASH_HH
#define TRT_GEOM_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace trt
{

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    Fnv1a &
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; i++) {
            state_ ^= b[i];
            state_ *= 1099511628211ull;
        }
        return *this;
    }

    /** Hash one scalar (its object representation). */
    template <typename T>
    Fnv1a &
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "hash scalars field by field, not whole structs");
        return bytes(&v, sizeof(T));
    }

    Fnv1a &
    str(const std::string &s)
    {
        uint64_t n = s.size();
        bytes(&n, sizeof(n));
        return bytes(s.data(), s.size());
    }

    uint64_t value() const { return state_; }

  private:
    uint64_t state_ = 1469598103934665603ull;
};

} // namespace trt

#endif // TRT_GEOM_HASH_HH
