/**
 * @file
 * Orthonormal basis construction and the hemisphere sampling routines the
 * path tracer's material models use.
 */

#ifndef TRT_GEOM_ONB_HH
#define TRT_GEOM_ONB_HH

#include "geom/vec.hh"

namespace trt
{

/** Orthonormal basis around a unit normal (Duff et al. 2017 branchless). */
struct Onb
{
    Vec3 t, b, n;

    explicit Onb(const Vec3 &normal) : n(normal)
    {
        float sign = std::copysign(1.0f, n.z);
        float a = -1.0f / (sign + n.z);
        float c = n.x * n.y * a;
        t = {1.0f + sign * n.x * n.x * a, sign * c, -sign * n.x};
        b = {c, sign + n.y * n.y * a, -n.y};
    }

    /** Transform local coordinates (x along t, z along n) to world. */
    Vec3
    toWorld(const Vec3 &v) const
    {
        return t * v.x + b * v.y + n * v.z;
    }
};

/**
 * Cosine-weighted hemisphere direction around @p n from two uniform
 * samples in [0, 1).
 */
inline Vec3
sampleCosineHemisphere(const Vec3 &n, float u1, float u2)
{
    constexpr float kPi = 3.14159265358979323846f;
    float r = std::sqrt(u1);
    float phi = 2.0f * kPi * u2;
    Vec3 local{r * std::cos(phi), r * std::sin(phi),
               std::sqrt(std::fmax(0.0f, 1.0f - u1))};
    return Onb(n).toWorld(local);
}

/** Uniform direction on the unit sphere from two uniform samples. */
inline Vec3
sampleUniformSphere(float u1, float u2)
{
    constexpr float kPi = 3.14159265358979323846f;
    float z = 1.0f - 2.0f * u1;
    float r = std::sqrt(std::fmax(0.0f, 1.0f - z * z));
    float phi = 2.0f * kPi * u2;
    return {r * std::cos(phi), r * std::sin(phi), z};
}

} // namespace trt

#endif // TRT_GEOM_ONB_HH
