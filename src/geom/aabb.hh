/**
 * @file
 * Axis-aligned bounding box used by the BVH builder, the treelet
 * partitioner and the traversal kernels.
 */

#ifndef TRT_GEOM_AABB_HH
#define TRT_GEOM_AABB_HH

#include <limits>

#include "geom/vec.hh"

namespace trt
{

/**
 * Axis-aligned bounding box. A default-constructed box is *empty*
 * (inverted bounds) so that growing it with the first point works.
 */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    constexpr Aabb() = default;
    constexpr Aabb(const Vec3 &l, const Vec3 &h) : lo(l), hi(h) {}

    /** True when no point has been added yet. */
    bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

    /** Grow to include point @p p. */
    void
    grow(const Vec3 &p)
    {
        lo = min(lo, p);
        hi = max(hi, p);
    }

    /** Grow to include box @p b. */
    void
    grow(const Aabb &b)
    {
        lo = min(lo, b.lo);
        hi = max(hi, b.hi);
    }

    /** Diagonal extent (hi - lo); non-positive components for empty box. */
    Vec3 extent() const { return hi - lo; }

    /** Box center. */
    Vec3 center() const { return (lo + hi) * 0.5f; }

    /** Surface area; 0 for an empty box. */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** True when @p p lies inside or on the boundary. */
    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** True when @p b is fully inside this box (inclusive). */
    bool
    contains(const Aabb &b) const
    {
        return contains(b.lo) && contains(b.hi);
    }

    /** True when this box and @p b intersect (inclusive). */
    bool
    overlaps(const Aabb &b) const
    {
        return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
               hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
    }

    /** Union of two boxes. */
    static Aabb
    merge(const Aabb &a, const Aabb &b)
    {
        Aabb r = a;
        r.grow(b);
        return r;
    }
};

} // namespace trt

#endif // TRT_GEOM_AABB_HH
