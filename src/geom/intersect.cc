#include "geom/intersect.hh"

#include <algorithm>

namespace trt
{

bool
intersectAabb(const Ray &ray, const RayInv &inv, const Aabb &box,
              float &tEntry)
{
    // Classic slab test using precomputed reciprocal directions. Using
    // min/max keeps the test branch-free, matching the fixed-function
    // box-test datapath of hardware RT units.
    float tx1 = (box.lo.x - ray.orig.x) * inv.invDir.x;
    float tx2 = (box.hi.x - ray.orig.x) * inv.invDir.x;
    float tlo = std::min(tx1, tx2);
    float thi = std::max(tx1, tx2);

    float ty1 = (box.lo.y - ray.orig.y) * inv.invDir.y;
    float ty2 = (box.hi.y - ray.orig.y) * inv.invDir.y;
    tlo = std::max(tlo, std::min(ty1, ty2));
    thi = std::min(thi, std::max(ty1, ty2));

    float tz1 = (box.lo.z - ray.orig.z) * inv.invDir.z;
    float tz2 = (box.hi.z - ray.orig.z) * inv.invDir.z;
    tlo = std::max(tlo, std::min(tz1, tz2));
    thi = std::min(thi, std::max(tz1, tz2));

    if (thi < tlo || thi < ray.tmin || tlo > ray.tmax)
        return false;

    tEntry = std::max(tlo, ray.tmin);
    return true;
}

bool
intersectTriangle(const Ray &ray, const Triangle &tri, float &t, float &u,
                  float &v)
{
    constexpr float kEps = 1e-9f;

    Vec3 e1 = tri.v1 - tri.v0;
    Vec3 e2 = tri.v2 - tri.v0;
    Vec3 pvec = cross(ray.dir, e2);
    float det = dot(e1, pvec);

    // Double-sided test: reject only near-degenerate configurations.
    if (std::fabs(det) < kEps)
        return false;

    float inv_det = 1.0f / det;
    Vec3 tvec = ray.orig - tri.v0;
    u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f)
        return false;

    Vec3 qvec = cross(tvec, e1);
    v = dot(ray.dir, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f)
        return false;

    t = dot(e2, qvec) * inv_det;
    return t > ray.tmin && t < ray.tmax;
}

} // namespace trt
