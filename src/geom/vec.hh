/**
 * @file
 * Small fixed-size vector types used throughout the renderer and the
 * geometry pipeline. Only the operations the ray tracer actually needs are
 * provided; this is not a general linear-algebra library.
 */

#ifndef TRT_GEOM_VEC_HH
#define TRT_GEOM_VEC_HH

#include <cmath>
#include <cstdint>
#include <ostream>

namespace trt
{

/** Three-component single-precision vector. */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }
    constexpr Vec3 operator/(const Vec3 &o) const
    { return {x / o.x, y / o.y, z / o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(const Vec3 &o)
    { x *= o.x; y *= o.y; z *= o.z; return *this; }
    Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const
    { return x == o.x && y == o.y && z == o.z; }

    /** Component access by index (0 = x, 1 = y, 2 = z). */
    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    float &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    /** Largest component value. */
    float maxComponent() const { return std::fmax(x, std::fmax(y, z)); }
    /** Smallest component value. */
    float minComponent() const { return std::fmin(x, std::fmin(y, z)); }

    /** Index of the component with the largest magnitude. */
    int
    maxDim() const
    {
        float ax = std::fabs(x), ay = std::fabs(y), az = std::fabs(z);
        if (ax >= ay && ax >= az)
            return 0;
        return ay >= az ? 1 : 2;
    }
};

constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }

/** Dot product. */
constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Cross product. */
constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Squared Euclidean length. */
constexpr float lengthSq(const Vec3 &v) { return dot(v, v); }

/** Euclidean length. */
inline float length(const Vec3 &v) { return std::sqrt(lengthSq(v)); }

/** Unit-length copy of @p v. Returns +x for a zero vector. */
inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    if (len <= 0.0f)
        return {1.0f, 0.0f, 0.0f};
    return v / len;
}

/** Component-wise minimum. */
inline Vec3
min(const Vec3 &a, const Vec3 &b)
{
    return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}

/** Component-wise maximum. */
inline Vec3
max(const Vec3 &a, const Vec3 &b)
{
    return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

/** Linear interpolation between @p a and @p b at parameter @p t. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

/** Component-wise clamp. */
inline Vec3
clamp(const Vec3 &v, float lo, float hi)
{
    auto c = [lo, hi](float f) { return std::fmin(hi, std::fmax(lo, f)); };
    return {c(v.x), c(v.y), c(v.z)};
}

/** Reflect @p v about unit normal @p n. */
constexpr Vec3
reflect(const Vec3 &v, const Vec3 &n)
{
    return v - n * (2.0f * dot(v, n));
}

/** Average of the three components (used for luminance-ish weights). */
constexpr float avg(const Vec3 &v) { return (v.x + v.y + v.z) / 3.0f; }

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/** Two-component vector (screen coordinates, sample points). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float xx, float yy) : x(xx), y(yy) {}

    constexpr Vec2 operator+(const Vec2 &o) const
    { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const
    { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
};

} // namespace trt

#endif // TRT_GEOM_VEC_HH
