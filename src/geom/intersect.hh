/**
 * @file
 * Ray/AABB and ray/triangle intersection kernels. These are the fixed
 * function operations the RT unit's intersection pipeline performs; the
 * timing model charges latency per invocation while the functional result
 * comes from these routines.
 */

#ifndef TRT_GEOM_INTERSECT_HH
#define TRT_GEOM_INTERSECT_HH

#include "geom/aabb.hh"
#include "geom/ray.hh"
#include "geom/vec.hh"

namespace trt
{

/** A triangle with its material binding, the unit of scene geometry. */
struct Triangle
{
    Vec3 v0, v1, v2;
    uint32_t material = 0;

    Aabb
    bounds() const
    {
        Aabb b;
        b.grow(v0);
        b.grow(v1);
        b.grow(v2);
        return b;
    }

    Vec3 centroid() const { return (v0 + v1 + v2) / 3.0f; }

    /** Geometric (unnormalized) normal. */
    Vec3 geometricNormal() const { return cross(v1 - v0, v2 - v0); }

    float area() const { return 0.5f * length(geometricNormal()); }
};

/**
 * Slab test of @p ray against @p box.
 *
 * @param ray    The ray (interval [tmin, tmax] is respected).
 * @param inv    Precomputed reciprocal directions.
 * @param box    Box to test.
 * @param tEntry Out: entry distance when the test passes.
 * @return true when the ray's interval overlaps the box.
 */
bool intersectAabb(const Ray &ray, const RayInv &inv, const Aabb &box,
                   float &tEntry);

/**
 * Möller-Trumbore ray/triangle intersection.
 *
 * @param ray The ray; only hits with t in (tmin, tmax) are reported.
 * @param tri Triangle to test.
 * @param t   Out: hit distance.
 * @param u   Out: barycentric u.
 * @param v   Out: barycentric v.
 * @return true on hit.
 */
bool intersectTriangle(const Ray &ray, const Triangle &tri, float &t,
                       float &u, float &v);

} // namespace trt

#endif // TRT_GEOM_INTERSECT_HH
