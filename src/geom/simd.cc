#include "geom/simd.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/env.hh"

namespace trt
{

namespace
{

bool
initSimdRuntime()
{
    // Runs during static initialization: report malformed values
    // ourselves instead of letting the exception reach terminate().
    try {
        return envFlag("TRT_SIMD", true);
    } catch (const EnvError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        std::exit(2);
    }
}

} // anonymous namespace

namespace detail
{
bool g_simdRuntime = initSimdRuntime();
} // namespace detail

bool
simdCompiledIn()
{
#ifdef TRT_SIMD_SCALAR
    return false;
#else
    return true;
#endif
}

void
setSimdEnabled(bool on)
{
#ifdef TRT_SIMD_SCALAR
    (void)on;
#else
    detail::g_simdRuntime = on;
#endif
}

} // namespace trt
