#include "geom/simd.hh"

#include <cstdlib>
#include <cstring>

namespace trt
{

namespace
{

bool
initSimdRuntime()
{
    const char *v = std::getenv("TRT_SIMD");
    if (v && std::strcmp(v, "0") == 0)
        return false;
    return true;
}

} // anonymous namespace

namespace detail
{
bool g_simdRuntime = initSimdRuntime();
} // namespace detail

bool
simdCompiledIn()
{
#ifdef TRT_SIMD_SCALAR
    return false;
#else
    return true;
#endif
}

void
setSimdEnabled(bool on)
{
#ifdef TRT_SIMD_SCALAR
    (void)on;
#else
    detail::g_simdRuntime = on;
#endif
}

} // namespace trt
