/**
 * @file
 * Deterministic random number generation. Two flavours:
 *
 *  - Pcg32: a sequential PCG-XSH-RR generator for procedural scene
 *    construction, where a stream of numbers per generator is natural.
 *  - hashRng / sampleDim: counter-based (stateless) sampling for the path
 *    tracer so that the radiance of a pixel depends only on
 *    (pixel, bounce, dimension) and never on execution order. This is
 *    what makes every architecture variant render bit-identical images,
 *    a property the test suite relies on.
 */

#ifndef TRT_GEOM_RNG_HH
#define TRT_GEOM_RNG_HH

#include <cstdint>

namespace trt
{

/** Minimal PCG-XSH-RR 32-bit generator (O'Neill 2014). */
class Pcg32
{
  public:
    explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                   uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (seq << 1) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next uniformly distributed 32-bit value. */
    uint32_t
    nextU32()
    {
        uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextU32() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint32_t
    nextBounded(uint32_t bound)
    {
        // Lemire's nearly-divisionless method is overkill here; simple
        // modulo bias is acceptable for procedural content.
        return nextU32() % bound;
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

/** Strong 64 -> 32 bit mixing (splitmix64 finalizer). */
inline uint32_t
hashMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return static_cast<uint32_t>(x);
}

/**
 * Counter-based uniform sample in [0, 1).
 *
 * @param pixel Pixel (or generally, path) identifier.
 * @param bounce Path depth.
 * @param dim Sample dimension within the bounce.
 */
inline float
sampleDim(uint32_t pixel, uint32_t bounce, uint32_t dim)
{
    uint64_t key = (static_cast<uint64_t>(pixel) << 24) ^
                   (static_cast<uint64_t>(bounce) << 8) ^ dim;
    return static_cast<float>(hashMix(key) >> 8) * (1.0f / 16777216.0f);
}

} // namespace trt

#endif // TRT_GEOM_RNG_HH
