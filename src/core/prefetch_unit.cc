#include "core/prefetch_unit.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"

namespace trt
{

TreeletPrefetchRtUnit::TreeletPrefetchRtUnit(const GpuConfig &cfg,
                                             MemorySystem &mem,
                                             const Bvh &bvh, uint32_t sm_id)
    : BaselineRtUnit(cfg, mem, bvh, sm_id)
{
}

uint32_t
TreeletPrefetchRtUnit::popularTreelet() const
{
    // At most warpBufferSize x warpSize rays contribute, with far fewer
    // distinct treelets; a pooled vector with linear lookup beats a
    // freshly allocated hash map at this size. The max-count/min-id
    // selection is order-independent, so results are unchanged.
    histoScratch_.clear();
    for (const auto &slot : slots_) {
        if (!slot.active)
            continue;
        for (const auto &e : slot.rays) {
            if (!e.valid || e.stage == Stage::Done)
                continue;
            uint32_t t = e.trav.currentTreelet();
            if (t == kInvalidTreelet)
                continue;
            auto it = std::find_if(histoScratch_.begin(),
                                   histoScratch_.end(),
                                   [t](const auto &h)
                                   { return h.first == t; });
            if (it == histoScratch_.end())
                histoScratch_.emplace_back(t, 1u);
            else
                it->second++;
        }
    }
    uint32_t best = kInvalidTreelet;
    uint32_t best_count = std::max(1u, cfg_.prefetchMinRays) - 1;
    for (const auto &[t, n] : histoScratch_) {
        if (n > best_count || (n == best_count && t < best)) {
            best = t;
            best_count = n;
        }
    }
    return best;
}

void
TreeletPrefetchRtUnit::onTreeletEnter(uint64_t now, uint32_t)
{
    if (now < nextAllowed_)
        return;
    uint32_t popular = popularTreelet();
    if (popular == kInvalidTreelet || popular == lastPrefetched_)
        return;
    nextAllowed_ = now + cfg_.prefetchCooldown;

    lastPrefetched_ = popular;
    stats_.prefetchIssues++;

    uint64_t base = bvh_.treeletBaseAddr(popular);
    uint32_t bytes = bvh_.treeletBytes(popular);
    // Result (ready cycle) is unused: the prefetcher fires and forgets,
    // so a deferred ticket needs no fixup.
    port_.prefetchL1(now, base, bytes, MemClass::BvhNode);

    uint32_t line = mem_.lineBytes();
    uint64_t first = base & ~uint64_t(line - 1);
    uint64_t last = (base + bytes - 1) & ~uint64_t(line - 1);
    uint64_t lines = 0;
    for (uint64_t a = first; a <= last; a += line) {
        if (outstanding_.insert(a))
            lines++;
    }
    stats_.prefetchLines += lines;
    telemEvent(now, TelemEventKind::PrefetchIssue, popular, lines);
}

void
TreeletPrefetchRtUnit::onDemandLine(uint64_t line_addr)
{
    if (outstanding_.erase(line_addr))
        stats_.prefetchUsedLines++;
}

void
TreeletPrefetchRtUnit::saveState(Serializer &s) const
{
    BaselineRtUnit::saveState(s);
    s.beginChunk("PREF");
    s.u32(lastPrefetched_);
    s.u64(nextAllowed_);
    s.vecPod(outstanding_.sortedKeys());
    s.endChunk();
}

void
TreeletPrefetchRtUnit::loadState(Deserializer &d)
{
    BaselineRtUnit::loadState(d);
    d.beginChunk("PREF");
    lastPrefetched_ = d.u32();
    nextAllowed_ = d.u64();
    outstanding_.clear();
    for (uint64_t key : d.vecPod<uint64_t>())
        outstanding_.insert(key);
    d.endChunk();
}

} // namespace trt
