/**
 * @file
 * Open-addressed, linear-probed set of simulated line addresses (0 =
 * empty slot; simulated addresses are well above 0). A treelet prefetch
 * inserts ~100 lines and every demand access probes the set, so the
 * node allocation and pointer chasing of a std::unordered_set are a
 * real cost on that path. Erasure backward-shifts, keeping probe
 * chains intact with no tombstones — clear() never has to skip dead
 * slots and the load factor only counts live keys.
 */

#ifndef TRT_CORE_LINE_SET_HH
#define TRT_CORE_LINE_SET_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace trt
{

/** Allocation-light hash set of nonzero uint64 keys. */
class LineSet
{
  public:
    LineSet() : keys_(kMinCapacity, 0), mask_(kMinCapacity - 1) {}

    /** True when @p key was absent and has been added. */
    bool
    insert(uint64_t key)
    {
        std::size_t i = hashOf(key) & mask_;
        while (keys_[i] != 0) {
            if (keys_[i] == key)
                return false;
            i = (i + 1) & mask_;
        }
        keys_[i] = key;
        if (++size_ * 4 > keys_.size() * 3)
            grow();
        return true;
    }

    /** True when @p key was present and has been removed. */
    bool
    erase(uint64_t key)
    {
        std::size_t i = hashOf(key) & mask_;
        while (keys_[i] != key) {
            if (keys_[i] == 0)
                return false;
            i = (i + 1) & mask_;
        }
        keys_[i] = 0;
        size_--;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            if (keys_[j] == 0)
                return true;
            std::size_t k = hashOf(keys_[j]) & mask_;
            // Shift j back unless its home k lies cyclically in
            // (i, j] — then the new hole doesn't break its chain.
            bool reachable = (i < j) ? (k > i && k <= j)
                                     : (k > i || k <= j);
            if (!reachable) {
                keys_[i] = keys_[j];
                keys_[j] = 0;
                i = j;
            }
        }
    }

    bool
    contains(uint64_t key) const
    {
        std::size_t i = hashOf(key) & mask_;
        while (keys_[i] != 0) {
            if (keys_[i] == key)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return keys_.size(); }

    /** Drop every key, keeping the current capacity. */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), 0);
        size_ = 0;
    }

    /** Live keys in ascending order (snapshotting, tests). */
    std::vector<uint64_t>
    sortedKeys() const
    {
        std::vector<uint64_t> out;
        out.reserve(size_);
        for (uint64_t k : keys_)
            if (k != 0)
                out.push_back(k);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    static constexpr std::size_t kMinCapacity = 1024;

    static std::size_t
    hashOf(uint64_t key)
    {
        return std::size_t((key * 0x9E3779B97F4A7C15ull) >> 32);
    }

    void
    grow()
    {
        std::vector<uint64_t> old = std::move(keys_);
        keys_.assign(old.size() * 2, 0);
        mask_ = keys_.size() - 1;
        for (uint64_t key : old) {
            if (key == 0)
                continue;
            std::size_t i = hashOf(key) & mask_;
            while (keys_[i] != 0)
                i = (i + 1) & mask_;
            keys_[i] = key;
        }
    }

    std::vector<uint64_t> keys_;
    std::size_t mask_;
    std::size_t size_ = 0;
};

} // namespace trt

#endif // TRT_CORE_LINE_SET_HH
