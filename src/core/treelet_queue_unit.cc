#include "core/treelet_queue_unit.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hh"

namespace trt
{

namespace
{

/** Base simulated address of the per-SM ray-data region (section 4.2:
 *  ray data lives in a reserved portion of the L2). */
constexpr uint64_t kRayDataBase = 0x200000000ull;

} // anonymous namespace

TreeletQueueRtUnit::TreeletQueueRtUnit(const GpuConfig &cfg,
                                       MemorySystem &mem, const Bvh &bvh,
                                       uint32_t sm_id)
    : RtUnitBase(cfg, mem, bvh, sm_id)
{
    slots_.resize(cfg.warpBufferSize);
    for (auto &s : slots_)
        s.entries.resize(cfg.warpSize);
    policy_ = makeDispatchPolicy(cfg, bvh, stats_);
}

TraversalMode
TreeletQueueRtUnit::modeOf(SlotKind k)
{
    switch (k) {
      case SlotKind::Fresh:
        return TraversalMode::Initial;
      case SlotKind::Treelet:
        return TraversalMode::TreeletStationary;
      default:
        return TraversalMode::RayStationary;
    }
}

uint64_t
TreeletQueueRtUnit::rayDataAddr(uint32_t ray_id) const
{
    return kRayDataBase +
           (uint64_t(smId_) * cfg_.maxVirtualRaysPerSm + ray_id) *
               kRayDataBytes;
}

uint32_t
TreeletQueueRtUnit::allocRayId()
{
    if (!freeRayIds_.empty()) {
        uint32_t id = freeRayIds_.back();
        freeRayIds_.pop_back();
        return id;
    }
    return nextRayId_++;
}

void
TreeletQueueRtUnit::releaseRayId(uint32_t ray_id)
{
    freeRayIds_.push_back(ray_id);
}

bool
TreeletQueueRtUnit::tryAccept(uint64_t now, TraceRequest &&req)
{
    uint32_t lanes = uint32_t(req.lanes.size());
    if (raysInFlight_ + lanes > cfg_.maxVirtualRaysPerSm) {
        if (telem_ && (lastOverflowEventAt_ == 0 ||
                       now >= lastOverflowEventAt_ + telem_->every)) {
            telemEvent(now, TelemEventKind::QueueOverflow,
                       raysInFlight_);
            lastOverflowEventAt_ = now;
        }
        return false;
    }

    warps_[req.token] = WarpBk{lanes, {}};
    std::vector<Parked> fresh;
    fresh.reserve(lanes);
    for (const auto &lr : req.lanes) {
        Parked p;
        p.trav = takeTraverser();
        p.trav.reset(&bvh_, lr.ray);
        p.warpToken = req.token;
        p.ctaToken = req.ctaToken;
        p.lane = lr.lane;
        p.rayId = allocRayId();
        // Section 4.2 step 1: ray data is written to the reserved L2
        // region as the warp issues to the RT unit.
        port_.write(now, rayDataAddr(p.rayId), kRayDataBytes,
                    MemClass::RayData);
        fresh.push_back(std::move(p));
    }
    raysInFlight_ += lanes;
    stats_.maxConcurrentRays =
        std::max<uint64_t>(stats_.maxConcurrentRays, raysInFlight_);
    pendingFresh_.push_back(std::move(fresh));
    dispatch(now);
    return true;
}

void
TreeletQueueRtUnit::deliver(uint64_t warp_token, uint8_t lane,
                            const HitRecord &hit)
{
    auto it = warps_.find(warp_token);
    assert(it != warps_.end());
    it->second.hits.push_back({lane, hit});
    if (--it->second.outstanding == 0) {
        std::vector<LaneHit> hits = std::move(it->second.hits);
        warps_.erase(it);
        if (completion_)
            completion_(warp_token, std::move(hits));
    }
}

void
TreeletQueueRtUnit::finishEntry(Slot &slot, RayEntry &e)
{
    deliver(e.warpToken, e.lane, e.trav.hit());
    releaseRayId(e.rayId);
    e.valid = false;
    e.stage = Stage::Done;
    slot.active--;
    raysInFlight_--;
    stats_.raysCompleted++;
}

void
TreeletQueueRtUnit::enqueue(uint64_t now, Parked &&p, uint32_t treelet)
{
    (void)now;
    auto &q = queues_[treelet];
    q.push_back(std::move(p));
    noteQueueGrew(q.size());
    queuedRays_++;
    stats_.raysEnqueued++;
    updateTableHighWater();
}

void
TreeletQueueRtUnit::noteQueueGrew(size_t sz)
{
    // Only non-empty queues exist in the table, so a threshold of 0
    // counts exactly the queues a threshold of 1 does.
    if (sz == std::max<size_t>(1, cfg_.queueThreshold))
        overThresholdNow_++;
    if ((sz - 1) % cfg_.warpSize == 0)
        tableEntriesNow_++;
}

void
TreeletQueueRtUnit::noteQueueShrank(size_t sz)
{
    if (sz + 1 == std::max<size_t>(1, cfg_.queueThreshold))
        overThresholdNow_--;
    if (sz % cfg_.warpSize == 0)
        tableEntriesNow_--;
}

void
TreeletQueueRtUnit::updateTableHighWater()
{
    stats_.countTableHighWater = std::max<uint32_t>(
        stats_.countTableHighWater, uint32_t(queues_.size()));
    stats_.countTableOverThresholdHW =
        std::max(stats_.countTableOverThresholdHW, overThresholdNow_);
    stats_.queueTableEntriesHW =
        std::max(stats_.queueTableEntriesHW, tableEntriesNow_);
}

void
TreeletQueueRtUnit::parkEntry(uint64_t now, Slot &slot, RayEntry &e)
{
    uint32_t target = e.trav.atBoundary() ? e.trav.nextTreelet()
                                          : e.trav.currentTreelet();
    assert(target != kInvalidTreelet);

    Parked p;
    p.trav = std::move(e.trav);
    p.warpToken = e.warpToken;
    p.ctaToken = e.ctaToken;
    p.rayId = e.rayId;
    p.lane = e.lane;

    // Ray state (shrunk tmax / hit-so-far) is written back to the
    // reserved L2 region; the queue-table update itself is charged to
    // the energy model per enqueue (the 6.29KB table is pinned next to
    // the treelet data, section 6.5).
    port_.write(now, rayDataAddr(p.rayId), kRayDataBytes,
                MemClass::RayData);
    enqueue(now, std::move(p), target);

    e.valid = false;
    e.stage = Stage::Done;
    slot.active--;
}

void
TreeletQueueRtUnit::installParked(uint64_t now, Slot &slot, Parked &&p)
{
    for (auto &e : slot.entries) {
        if (e.valid)
            continue;
        e.valid = true;
        e.lane = p.lane;
        e.warpToken = p.warpToken;
        e.ctaToken = p.ctaToken;
        e.rayId = p.rayId;
        e.trav = std::move(p.trav);
        e.fetchIsLeaf = false;
        // Fetch the parked ray's data from the reserved L2 region,
        // bypassing the L1 so treelet data is not evicted — unless the
        // preloader already fetched it (section 4.3).
        e.stage = Stage::WaitData;
        if (p.dataReadyAt > 0) {
            // A kPendingReady preload sentinel propagates into e.ready
            // and stalls the ray until onMemCommit() patches it (which
            // also notes the wake-up).
            e.ready = std::max(now, p.dataReadyAt);
        } else {
            e.ready = kPendingReady;
            port_.read(now, rayDataAddr(p.rayId), kRayDataBytes,
                       MemClass::RayData, true, &e.ready);
        }
        // Entries live in a fixed-size vector and a WaitData entry pins
        // its slot, so the sentinel pointer stays valid until drained.
        if (e.ready == kPendingReady)
            notePendingEvent(&e.ready);
        else
            noteEvent(e.ready);
        slot.active++;
        slot.policyPending = true;
        return;
    }
    assert(false && "no free entry in slot");
}

void
TreeletQueueRtUnit::gatherStrays(uint32_t max, std::vector<Parked> &out)
{
    // Section 4.4: select queues starting from the first treelet count
    // table entry until enough rays fill the warp.
    out.clear();
    auto it = queues_.begin();
    while (it != queues_.end() && out.size() < max) {
        auto &q = it->second;
        while (!q.empty() && out.size() < max) {
            out.push_back(std::move(q.front()));
            q.pop_front();
            noteQueueShrank(q.size());
            queuedRays_--;
        }
        if (q.empty())
            it = queues_.erase(it);
        else
            ++it;
    }
}

void
TreeletQueueRtUnit::dispatchFresh(uint64_t now, Slot &slot)
{
    std::vector<Parked> fresh = std::move(pendingFresh_.front());
    pendingFresh_.pop_front();

    slot.kind = SlotKind::Fresh;
    slot.treelet = kInvalidTreelet;
    slot.draining = false;
    slot.active = 0;
    reclaimEntries(slot);

    for (auto &p : fresh) {
        for (auto &e : slot.entries) {
            if (e.valid)
                continue;
            e.valid = true;
            e.lane = p.lane;
            e.warpToken = p.warpToken;
            e.ctaToken = p.ctaToken;
            e.rayId = p.rayId;
            e.trav = std::move(p.trav);
            // Fresh rays arrive straight from the shader core's
            // registers: no ray-data load, start at the root treelet.
            e.trav.enterNextTreelet();
            e.stage = Stage::NeedIssue;
            e.ready = now;
            slot.active++;
            slot.policyPending = true;
            break;
        }
    }
    telemEvent(now, TelemEventKind::WarpFormed,
               uint64_t(TraversalMode::Initial), slot.active);
    // Fresh entries can issue this very cycle; when dispatched from
    // tryAccept() (outside a tick) this schedules the same-cycle tick
    // the old rescan provided.
    noteEvent(now);
}

void
TreeletQueueRtUnit::dispatchTreelet(uint64_t now, Slot &slot,
                                    uint32_t treelet)
{
    auto qit = queues_.find(treelet);
    assert(qit != queues_.end() && !qit->second.empty());

    if (treelet != loadedTreelet_) {
        if (treelet == preloadedTreelet_) {
            // Already (being) loaded by the preloader.
            preloadedTreelet_ = kInvalidTreelet;
        } else {
            port_.prefetchL1(now, bvh_.treeletBaseAddr(treelet),
                             bvh_.treeletBytes(treelet),
                             MemClass::BvhNode);
        }
        loadedTreelet_ = treelet;
        stats_.treeletSwitches++;
        telemEvent(now, TelemEventKind::TreeletSwitch, treelet);
    }

    slot.kind = SlotKind::Treelet;
    slot.treelet = treelet;
    slot.draining = false;
    slot.active = 0;
    reclaimEntries(slot);

    uint32_t n = std::min<uint32_t>(cfg_.warpSize,
                                    uint32_t(qit->second.size()));
    for (uint32_t i = 0; i < n; i++) {
        installParked(now, slot, std::move(qit->second.front()));
        qit->second.pop_front();
        noteQueueShrank(qit->second.size());
        queuedRays_--;
    }
    // Ray-data preloading (section 4.3): fetch the data of the rays
    // forming this queue's *next* warp while the current warp runs.
    if (cfg_.preloadEnabled) {
        uint32_t pre = std::min<uint32_t>(cfg_.warpSize,
                                          uint32_t(qit->second.size()));
        for (uint32_t i = 0; i < pre; i++) {
            Parked &p = qit->second[i];
            if (p.dataReadyAt == 0) {
                // The Parked may move (deque churn, or into a slot)
                // before the phase commits, so the result cannot be
                // written through a pointer; record a fixup resolved
                // by ray id in onMemCommit().
                MemTicket t =
                    port_.read(now, rayDataAddr(p.rayId), kRayDataBytes,
                               MemClass::RayData, true, nullptr);
                if (port_.resolved(t)) {
                    p.dataReadyAt = port_.result(t).readyCycle;
                } else {
                    p.dataReadyAt = kPendingReady;
                    preloadFixups_.push_back({t, p.rayId, treelet});
                }
            }
        }
    }
    if (qit->second.empty()) {
        queues_.erase(qit);
        telemEvent(now, TelemEventKind::QueueDrained, treelet);
    }
    if (stats_.treeletWarpsFormed == 0)
        telemEvent(now, TelemEventKind::TreeletPhaseEntered, treelet);
    stats_.treeletWarpsFormed++;
    telemEvent(now, TelemEventKind::WarpFormed,
               uint64_t(TraversalMode::TreeletStationary), n);
    maybePreload(now);
}

void
TreeletQueueRtUnit::dispatchGrouped(uint64_t now, Slot &slot)
{
    gatherStrays(cfg_.warpSize, strayScratch_);
    if (strayScratch_.empty())
        return;

    slot.kind = SlotKind::Grouped;
    slot.treelet = kInvalidTreelet;
    slot.draining = false;
    slot.active = 0;
    reclaimEntries(slot);
    for (auto &p : strayScratch_)
        installParked(now, slot, std::move(p));
    stats_.groupedWarpsFormed++;
    telemEvent(now, TelemEventKind::WarpFormed,
               uint64_t(TraversalMode::RayStationary),
               strayScratch_.size());
}

void
TreeletQueueRtUnit::maybePreload(uint64_t now)
{
    if (!cfg_.preloadEnabled || preloadedTreelet_ != kInvalidTreelet)
        return;

    // Trigger when at most one more warp remains in the current queue.
    // (The paper estimates remaining cycles as remaining-warps x
    // intersection latency x average treelet depth and preloads when
    // that matches the memory latency; with one warp slot this reduces
    // to "preload while the last warp drains".)
    auto cur = queues_.find(loadedTreelet_);
    if (cur != queues_.end() && cur->second.size() > cfg_.warpSize)
        return;

    uint32_t min_size = cfg_.groupUnderpopulated ? cfg_.queueThreshold : 1;
    uint32_t best = kInvalidTreelet;
    size_t best_size = 0;
    for (const auto &[t, q] : queues_) {
        if (t == loadedTreelet_ || q.size() < min_size)
            continue;
        if (q.size() > best_size) {
            best = t;
            best_size = q.size();
        }
    }
    if (best == kInvalidTreelet)
        return;

    preloadedTreelet_ = best;
    port_.prefetchL1(now, bvh_.treeletBaseAddr(best),
                     bvh_.treeletBytes(best), MemClass::BvhNode);
}

uint32_t
TreeletQueueRtUnit::slotDivergence(const Slot &slot) const
{
    // Linear dedup over at most warpSize ids into pooled scratch; this
    // runs per boundary decision, so avoiding a hash set matters.
    divScratch_.clear();
    for (const auto &e : slot.entries) {
        if (!e.valid || e.stage == Stage::Done)
            continue;
        uint32_t id = e.trav.atBoundary() ? e.trav.nextTreelet()
                                          : e.trav.currentTreelet();
        if (id != kInvalidTreelet &&
            std::find(divScratch_.begin(), divScratch_.end(), id) ==
                divScratch_.end()) {
            divScratch_.push_back(id);
        }
    }
    return uint32_t(divScratch_.size());
}

void
TreeletQueueRtUnit::handlePolicy(uint64_t now, Slot &slot)
{
    for (auto &e : slot.entries) {
        if (!e.valid || e.stage != Stage::NeedIssue)
            continue;

        if (e.trav.done()) {
            finishEntry(slot, e);
            continue;
        }

        switch (slot.kind) {
          case SlotKind::Fresh: {
            if (slot.draining) {
                // Warp was terminated: park every ray at its next
                // stopping point, mid-treelet rays keyed by their
                // current treelet.
                parkEntry(now, slot, e);
                continue;
            }
            if (!e.trav.atBoundary())
                continue; // issue-port limited; retried next cycle
            if (policy_->endInitialPhase(slotDivergence(slot))) {
                slot.draining = true;
                parkEntry(now, slot, e);
            } else {
                e.trav.enterNextTreelet();
                stats_.boundaryCrossings++;
            }
            break;
          }

          case SlotKind::Treelet: {
            if (!e.trav.atBoundary())
                continue;
            if (e.trav.nextTreelet() == slot.treelet) {
                e.trav.enterNextTreelet();
                stats_.boundaryCrossings++;
            } else {
                parkEntry(now, slot, e);
            }
            break;
          }

          case SlotKind::Grouped: {
            if (!e.trav.atBoundary())
                continue;
            e.trav.enterNextTreelet();
            stats_.boundaryCrossings++;
            break;
          }

          default:
            break;
        }
    }

    // Warp repacking (section 4.5): refill a grouped warp whose active
    // count fell below the threshold with fresh rays from the queues.
    if (slot.kind == SlotKind::Grouped && cfg_.repackThreshold > 0 &&
        slot.active > 0 && slot.active < cfg_.repackThreshold &&
        queuedRays_ > 0) {
        gatherStrays(cfg_.warpSize - slot.active, strayScratch_);
        if (!strayScratch_.empty()) {
            stats_.repackEvents++;
            stats_.repackedRays += strayScratch_.size();
            for (auto &p : strayScratch_)
                installParked(now, slot, std::move(p));
        }
    }

    if (slot.kind != SlotKind::Free && slot.active == 0) {
        slot.kind = SlotKind::Free;
        slot.treelet = kInvalidTreelet;
        slot.draining = false;
    }
}

void
TreeletQueueRtUnit::dispatch(uint64_t now)
{
    for (auto &slot : slots_) {
        if (slot.kind != SlotKind::Free)
            continue;

        if (!pendingFresh_.empty()) {
            dispatchFresh(now, slot);
            continue;
        }
        if (queuedRays_ == 0)
            continue;

        // Present the non-empty queues in table order and let the
        // policy choose (DESIGN.md §9); acting on the choice — treelet
        // load, ray-data fetches, preloading — stays in this unit.
        queueScratch_.clear();
        for (const auto &[t, q] : queues_)
            if (!q.empty())
                queueScratch_.push_back({t, uint32_t(q.size())});
        DispatchPolicy::DispatchChoice choice =
            policy_->chooseDispatch(queueScratch_, loadedTreelet_);
        if (choice.kind == DispatchPolicy::WarpKind::Treelet)
            dispatchTreelet(now, slot, choice.treelet);
        else if (choice.kind == DispatchPolicy::WarpKind::Grouped)
            dispatchGrouped(now, slot);
    }
}

void
TreeletQueueRtUnit::accountInterval(uint64_t now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t dt = now - lastAccounted_;
    lastAccounted_ = now;
    for (const auto &slot : slots_) {
        if (slot.kind == SlotKind::Free)
            continue;
        stats_.activeLaneCycles += uint64_t(slot.active) * dt;
        stats_.slotLaneCycles += uint64_t(cfg_.warpSize) * dt;
        stats_.modeCycles[modeIndex(modeOf(slot.kind))] += dt;
    }
}

void
TreeletQueueRtUnit::tick(uint64_t now)
{
    maybeTelemSample(now);
    accountInterval(now);
    // Everything due by now is handled below; drop its event records.
    consumeEventsUpTo(now);

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &slot : slots_) {
            if (slot.kind == SlotKind::Free)
                continue;
            uint32_t before = slot.active;
            bool park_all = slot.kind == SlotKind::Fresh && slot.draining;
            bool stepped = false;
            for (auto &e : slot.entries) {
                if (!e.valid || e.stage == Stage::Done)
                    continue;
                // Not-due waits can't progress; skip the call entirely.
                if (e.stage != Stage::NeedIssue && e.ready > now)
                    continue;
                stepped |= stepRay(now, e, modeOf(slot.kind), park_all);
            }
            changed |= stepped;
            // handlePolicy() leaves no actionable entry behind, so it
            // is a no-op until a ray makes progress, entries are
            // (re)installed, or an underpopulated grouped warp can
            // still repack from the queues. Skipping it makes the
            // fixed-point verification pass cheap.
            if (stepped || slot.policyPending ||
                (slot.kind == SlotKind::Grouped &&
                 cfg_.repackThreshold > 0 && slot.active > 0 &&
                 slot.active < cfg_.repackThreshold && queuedRays_ > 0)) {
                slot.policyPending = false;
                handlePolicy(now, slot);
            }
            changed |= slot.active != before ||
                       slot.kind == SlotKind::Free;
        }
        dispatch(now);
        // Exiting is safe without a leftover-work scan: every stalled
        // entry already has a wake-up on the books. stepRay() notes the
        // issue-port free cycle when the port blocks it, installParked()
        // notes (or defers via sentinel) each entry's data-ready cycle,
        // and dispatchFresh() notes the current cycle, so rays the loop
        // leaves behind always have a pending event.
    }
}

bool
TreeletQueueRtUnit::idle() const
{
    return raysInFlight_ == 0 && pendingFresh_.empty();
}

uint64_t
TreeletQueueRtUnit::raysHeld() const
{
    // Recovery metric for the sampler's warm-up (RtUnitBase::raysHeld):
    // population alone recovers quickly after a drain, but what the
    // drain really destroys is the queue *contents* — in steady state
    // rays are spread over many queues at meaningful depths, and
    // serving rounds against freshly refilled shallow queues looks
    // nothing like it. Count the stepping/fresh rays plus each queue's
    // depth capped at twice the dispatch threshold, so depth has to
    // rebuild queue by queue and one giant root queue (the post-drain
    // shape) cannot stand in for the steady-state spread. The previous
    // population-x-spread product over-weighted exactly that shape; see
    // the re-measured error table in DESIGN.md §8.
    uint64_t cap = 2 * std::max<uint64_t>(1, cfg_.queueThreshold);
    uint64_t held = uint64_t(raysInFlight_) - queuedRays_;
    for (const auto &q : queues_)
        held += std::min<uint64_t>(q.second.size(), cap);
    return held;
}

void
TreeletQueueRtUnit::onMemCommit(uint64_t now)
{
    for (const auto &f : preloadFixups_) {
        uint64_t ready = port_.result(f.ticket).readyCycle;
        bool found = false;

        // Still parked in the queue it was preloaded from?
        auto qit = queues_.find(f.treelet);
        if (qit != queues_.end()) {
            for (auto &p : qit->second) {
                if (p.rayId == f.rayId &&
                    p.dataReadyAt == kPendingReady) {
                    p.dataReadyAt = ready;
                    found = true;
                    break;
                }
            }
        }
        if (found)
            continue;

        // Installed into a slot within the same tick: the sentinel
        // propagated into the entry's ready cycle (installParked). The
        // pending-event pointer recorded there reads kPendingReady if
        // drained before this patch (and is skipped), so note the real
        // wake-up here.
        for (auto &slot : slots_) {
            for (auto &e : slot.entries) {
                if (e.valid && e.stage == Stage::WaitData &&
                    e.rayId == f.rayId && e.ready == kPendingReady) {
                    e.ready = std::max(now, ready);
                    noteEvent(e.ready);
                    found = true;
                    break;
                }
            }
            if (found)
                break;
        }
        assert(found && "preload fixup target vanished");
        (void)found;
    }
    preloadFixups_.clear();
}

void
TreeletQueueRtUnit::drainFunctional(uint64_t now)
{
    // Same contract as saveState: the serial commit boundary, where
    // every preload ticket has been resolved by onMemCommit().
    if (!preloadFixups_.empty())
        throw std::logic_error(
            "drainFunctional: unresolved preload fixups (must be called "
            "at the serial commit boundary)");
    accountInterval(now);

    // Live slot entries first: finish each in place and deliver via the
    // normal path so per-warp bookkeeping (warps_) stays consistent.
    for (auto &slot : slots_) {
        if (slot.kind == SlotKind::Free)
            continue;
        for (auto &e : slot.entries) {
            if (!e.valid)
                continue;
            finishTraversal(e.trav);
            finishEntry(slot, e);
        }
        reclaimEntries(slot);
        slot.kind = SlotKind::Free;
        slot.treelet = kInvalidTreelet;
        slot.draining = false;
        slot.policyPending = false;
    }

    // Parked rays: pending fresh warps (still at the root boundary),
    // then every treelet queue in table order.
    auto drainParked = [&](Parked &p) {
        finishTraversal(p.trav);
        deliver(p.warpToken, p.lane, p.trav.hit());
        releaseRayId(p.rayId);
        travPool_.push_back(std::move(p.trav));
        raysInFlight_--;
        stats_.raysCompleted++;
    };
    while (!pendingFresh_.empty()) {
        for (Parked &p : pendingFresh_.front())
            drainParked(p);
        pendingFresh_.pop_front();
    }
    for (auto &kv : queues_)
        for (Parked &p : kv.second)
            drainParked(p);
    queues_.clear();
    queuedRays_ = 0;
    overThresholdNow_ = 0;
    tableEntriesNow_ = 0;
    loadedTreelet_ = kInvalidTreelet;
    preloadedTreelet_ = kInvalidTreelet;

    if (raysInFlight_ != 0 || !warps_.empty())
        throw std::logic_error(
            "drainFunctional: rays or warps left after drain");
    // All ray ids are free again; restart the id space so post-drain
    // allocation (and the ray-data addresses derived from it) is
    // independent of pre-drain history.
    freeRayIds_.clear();
    nextRayId_ = 0;
    clearEventRecords();
}

std::string
TreeletQueueRtUnit::debugStatus() const
{
    std::ostringstream os;
    os << "vtq raysInFlight=" << raysInFlight_
       << " queued=" << queuedRays_ << " queues=" << queues_.size()
       << " freshWarps=" << pendingFresh_.size() << " loaded=";
    if (loadedTreelet_ == kInvalidTreelet)
        os << "-";
    else
        os << loadedTreelet_;
    os << " preloaded=";
    if (preloadedTreelet_ == kInvalidTreelet)
        os << "-";
    else
        os << preloadedTreelet_;
    os << " slots{";
    for (size_t i = 0; i < slots_.size(); i++) {
        const Slot &s = slots_[i];
        const char *kind = s.kind == SlotKind::Free      ? "free"
                           : s.kind == SlotKind::Fresh   ? "fresh"
                           : s.kind == SlotKind::Treelet ? "treelet"
                                                         : "grouped";
        os << (i ? " " : "") << kind << ":" << s.active;
    }
    os << "}";
    return os.str();
}

// ---- snapshot hooks ----------------------------------------------------

namespace
{

constexpr uint32_t kMaxSlotKind = 3; // SlotKind::Grouped

} // namespace

void
TreeletQueueRtUnit::saveState(Serializer &s) const
{
    if (!preloadFixups_.empty())
        throw SnapshotError(
            "snapshot: unresolved preload fixups (capture outside the "
            "serial commit boundary)");

    RtUnitBase::saveState(s);
    s.beginChunk("VTQU");

    auto save_parked = [&](const Parked &p) {
        if (p.dataReadyAt == kPendingReady)
            throw SnapshotError(
                "snapshot: parked ray with unresolved preload ready");
        p.trav.saveState(s);
        s.u64(p.warpToken);
        s.u32(p.ctaToken);
        s.u32(p.rayId);
        s.u8(p.lane);
        s.u64(p.dataReadyAt);
    };

    s.u64(slots_.size());
    for (const Slot &slot : slots_) {
        s.u8(uint8_t(slot.kind));
        s.u32(slot.treelet);
        s.b(slot.draining);
        s.b(slot.policyPending);
        s.u64(slot.entries.size());
        for (const RayEntry &e : slot.entries)
            saveRayEntry(s, e);
        s.u32(slot.active);
    }

    s.u64(pendingFresh_.size());
    for (const std::vector<Parked> &warp : pendingFresh_) {
        s.u64(warp.size());
        for (const Parked &p : warp)
            save_parked(p);
    }

    // std::map iterates key-sorted: deterministic on its own.
    s.u64(queues_.size());
    for (const auto &[treelet, q] : queues_) {
        s.u32(treelet);
        s.u64(q.size());
        for (const Parked &p : q)
            save_parked(p);
    }
    s.u64(queuedRays_);

    // unordered_map iteration order is layout-dependent; persist
    // token-sorted so identical states produce identical bytes.
    std::vector<uint64_t> tokens;
    tokens.reserve(warps_.size());
    for (const auto &[token, bk] : warps_)
        tokens.push_back(token);
    std::sort(tokens.begin(), tokens.end());
    s.u64(tokens.size());
    for (uint64_t token : tokens) {
        const WarpBk &bk = warps_.at(token);
        s.u64(token);
        s.u32(bk.outstanding);
        saveLaneHits(s, bk.hits);
    }

    s.u32(raysInFlight_);
    s.vecPod(freeRayIds_);
    s.u32(nextRayId_);
    s.u32(loadedTreelet_);
    s.u32(preloadedTreelet_);
    s.u32(overThresholdNow_);
    s.u32(tableEntriesNow_);
    s.u64(lastOverflowEventAt_);
    s.endChunk();
}

void
TreeletQueueRtUnit::loadState(Deserializer &d)
{
    RtUnitBase::loadState(d);
    d.beginChunk("VTQU");

    auto load_parked = [&]() {
        Parked p;
        p.trav.loadState(d, &bvh_);
        p.warpToken = d.u64();
        p.ctaToken = d.u32();
        p.rayId = d.u32();
        p.lane = d.u8();
        p.dataReadyAt = d.u64();
        return p;
    };

    if (d.u64() != slots_.size())
        throw SnapshotError("snapshot: VTQ slot count mismatch");
    for (Slot &slot : slots_) {
        uint8_t kind = d.u8();
        if (kind > kMaxSlotKind)
            throw SnapshotError("snapshot: VTQ slot kind out of range");
        slot.kind = SlotKind(kind);
        slot.treelet = d.u32();
        slot.draining = d.b();
        slot.policyPending = d.b();
        uint64_t n = d.u64();
        slot.entries.assign(size_t(n), RayEntry{});
        for (RayEntry &e : slot.entries)
            loadRayEntry(d, e);
        slot.active = d.u32();
    }

    pendingFresh_.clear();
    uint64_t n_fresh = d.u64();
    for (uint64_t i = 0; i < n_fresh; i++) {
        std::vector<Parked> warp;
        uint64_t n = d.u64();
        warp.reserve(size_t(n));
        for (uint64_t j = 0; j < n; j++)
            warp.push_back(load_parked());
        pendingFresh_.push_back(std::move(warp));
    }

    queues_.clear();
    uint64_t n_queues = d.u64();
    for (uint64_t i = 0; i < n_queues; i++) {
        uint32_t treelet = d.u32();
        std::deque<Parked> q;
        uint64_t n = d.u64();
        for (uint64_t j = 0; j < n; j++)
            q.push_back(load_parked());
        queues_.emplace(treelet, std::move(q));
    }
    queuedRays_ = d.u64();

    warps_.clear();
    uint64_t n_warps = d.u64();
    for (uint64_t i = 0; i < n_warps; i++) {
        uint64_t token = d.u64();
        WarpBk bk;
        bk.outstanding = d.u32();
        bk.hits = loadLaneHits(d);
        warps_.emplace(token, std::move(bk));
    }

    raysInFlight_ = d.u32();
    freeRayIds_ = d.vecPod<uint32_t>();
    nextRayId_ = d.u32();
    loadedTreelet_ = d.u32();
    preloadedTreelet_ = d.u32();
    overThresholdNow_ = d.u32();
    tableEntriesNow_ = d.u32();
    lastOverflowEventAt_ = d.u64();
    preloadFixups_.clear();
    d.endChunk();
}

void
TreeletQueueRtUnit::telemSampleFill(TelemSample &s) const
{
    s.raysHeld = raysInFlight_;
    s.queuedRays =
        uint32_t(std::min<uint64_t>(queuedRays_, UINT32_MAX));
    s.queueCount = uint32_t(queues_.size());
    // Keep the four deepest depths, descending (insertion sort into the
    // fixed array; queues_ is small and samples are periodic).
    for (const auto &[treelet, q] : queues_) {
        (void)treelet;
        uint32_t depth = uint32_t(q.size());
        for (size_t i = 0; i < s.queueDepth.size(); i++) {
            if (depth > s.queueDepth[i]) {
                for (size_t j = s.queueDepth.size() - 1; j > i; j--)
                    s.queueDepth[j] = s.queueDepth[j - 1];
                s.queueDepth[i] = depth;
                break;
            }
        }
    }
}

} // namespace trt
