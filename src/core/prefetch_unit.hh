/**
 * @file
 * Treelet Prefetching RT unit — the comparison point of Chou et al.
 * (MICRO'23), the most recent treelet work on ray tracing GPUs and the
 * baseline the paper's Figure 10 compares against.
 *
 * The unit behaves like the baseline ray-stationary RT unit but watches
 * which treelet is most popular among the rays in the warp buffer and
 * prefetches that whole treelet into the L1. Prefetched lines that are
 * never demanded before the next prefetch are counted as wasted
 * bandwidth (the paper quotes 43.5% unused for Chou et al.).
 */

#ifndef TRT_CORE_PREFETCH_UNIT_HH
#define TRT_CORE_PREFETCH_UNIT_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "core/line_set.hh"
#include "gpu/rt_unit.hh"

namespace trt
{

/** Baseline + most-popular-treelet prefetcher. */
class TreeletPrefetchRtUnit : public BaselineRtUnit
{
  public:
    TreeletPrefetchRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                          const Bvh &bvh, uint32_t sm_id);

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  protected:
    void onTreeletEnter(uint64_t now, uint32_t treelet) override;
    void onDemandLine(uint64_t line_addr) override;

  private:
    /** Most popular current treelet among active rays (or invalid). */
    uint32_t popularTreelet() const;

    uint32_t lastPrefetched_ = kInvalidTreelet;
    /** Earliest cycle the next prefetch may issue (cooldown). */
    uint64_t nextAllowed_ = 0;
    /** Prefetched lines not yet demanded. */
    LineSet outstanding_;
    /** Pooled {treelet, count} histogram for popularTreelet(). */
    mutable std::vector<std::pair<uint32_t, uint32_t>> histoScratch_;
};

} // namespace trt

#endif // TRT_CORE_PREFETCH_UNIT_HH
