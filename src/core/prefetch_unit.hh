/**
 * @file
 * Treelet Prefetching RT unit — the comparison point of Chou et al.
 * (MICRO'23), the most recent treelet work on ray tracing GPUs and the
 * baseline the paper's Figure 10 compares against.
 *
 * The unit behaves like the baseline ray-stationary RT unit but watches
 * which treelet is most popular among the rays in the warp buffer and
 * prefetches that whole treelet into the L1. Prefetched lines that are
 * never demanded before the next prefetch are counted as wasted
 * bandwidth (the paper quotes 43.5% unused for Chou et al.).
 */

#ifndef TRT_CORE_PREFETCH_UNIT_HH
#define TRT_CORE_PREFETCH_UNIT_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "gpu/rt_unit.hh"

namespace trt
{

/** Baseline + most-popular-treelet prefetcher. */
class TreeletPrefetchRtUnit : public BaselineRtUnit
{
  public:
    TreeletPrefetchRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                          const Bvh &bvh, uint32_t sm_id);

  protected:
    void onTreeletEnter(uint64_t now, uint32_t treelet) override;
    void onDemandLine(uint64_t line_addr) override;

  private:
    /** Most popular current treelet among active rays (or invalid). */
    uint32_t popularTreelet() const;

    /**
     * Open-addressed, linear-probed set of line addresses (0 = empty;
     * simulated addresses are well above 0). A prefetch inserts ~100
     * lines and every demand access probes it, so the node allocation
     * and pointer chasing of a std::unordered_set are a real cost here.
     * Erasure backward-shifts, keeping probe chains intact.
     */
    class LineSet
    {
      public:
        LineSet() : keys_(kMinCapacity, 0), mask_(kMinCapacity - 1) {}

        /** True when @p key was absent and has been added. */
        bool
        insert(uint64_t key)
        {
            std::size_t i = hashOf(key) & mask_;
            while (keys_[i] != 0) {
                if (keys_[i] == key)
                    return false;
                i = (i + 1) & mask_;
            }
            keys_[i] = key;
            if (++size_ * 4 > keys_.size() * 3)
                grow();
            return true;
        }

        /** True when @p key was present and has been removed. */
        bool
        erase(uint64_t key)
        {
            std::size_t i = hashOf(key) & mask_;
            while (keys_[i] != key) {
                if (keys_[i] == 0)
                    return false;
                i = (i + 1) & mask_;
            }
            keys_[i] = 0;
            size_--;
            std::size_t j = i;
            for (;;) {
                j = (j + 1) & mask_;
                if (keys_[j] == 0)
                    return true;
                std::size_t k = hashOf(keys_[j]) & mask_;
                // Shift j back unless its home k lies cyclically in
                // (i, j] — then the new hole doesn't break its chain.
                bool reachable = (i < j) ? (k > i && k <= j)
                                         : (k > i || k <= j);
                if (!reachable) {
                    keys_[i] = keys_[j];
                    keys_[j] = 0;
                    i = j;
                }
            }
        }

      private:
        static constexpr std::size_t kMinCapacity = 1024;

        static std::size_t
        hashOf(uint64_t key)
        {
            return std::size_t((key * 0x9E3779B97F4A7C15ull) >> 32);
        }

        void
        grow()
        {
            std::vector<uint64_t> old = std::move(keys_);
            keys_.assign(old.size() * 2, 0);
            mask_ = keys_.size() - 1;
            for (uint64_t key : old) {
                if (key == 0)
                    continue;
                std::size_t i = hashOf(key) & mask_;
                while (keys_[i] != 0)
                    i = (i + 1) & mask_;
                keys_[i] = key;
            }
        }

        std::vector<uint64_t> keys_;
        std::size_t mask_;
        std::size_t size_ = 0;
    };

    uint32_t lastPrefetched_ = kInvalidTreelet;
    /** Earliest cycle the next prefetch may issue (cooldown). */
    uint64_t nextAllowed_ = 0;
    /** Prefetched lines not yet demanded. */
    LineSet outstanding_;
    /** Pooled {treelet, count} histogram for popularTreelet(). */
    mutable std::vector<std::pair<uint32_t, uint32_t>> histoScratch_;
};

} // namespace trt

#endif // TRT_CORE_PREFETCH_UNIT_HH
