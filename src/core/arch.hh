/**
 * @file
 * Architecture selection: builds the right RT unit for a GpuConfig and
 * provides the one-call simulation entry point used by examples, tests
 * and the benchmark harness.
 */

#ifndef TRT_CORE_ARCH_HH
#define TRT_CORE_ARCH_HH

#include "gpu/gpu.hh"

namespace trt
{

/** Factory dispatching on GpuConfig::arch. */
Gpu::RtUnitFactory makeRtUnitFactory();

/**
 * Build a Gpu for @p cfg over @p scene / @p bvh and simulate the frame.
 * This is the main public entry point of the library.
 */
RunStats simulate(const GpuConfig &cfg, const Scene &scene, const Bvh &bvh);

/**
 * Simulate a general tree-traversal workload (section 8): trace the
 * given rays through the RT unit(s) instead of camera-generated path
 * tracing rays. One thread per ray, no bounces; per-ray closest hits
 * come back in RunStats::primaryHits.
 */
RunStats simulateRays(const GpuConfig &cfg, const Scene &scene,
                      const Bvh &bvh, const std::vector<Ray> &rays);

/**
 * simulate() with checkpoint/restore (DESIGN.md §7): arms the Gpu with
 * @p policy and, when @p resume is set, first looks for the newest
 * valid snapshot of policy.worldFp under policy.dir and restores it.
 * A corrupt, stale or missing snapshot falls back to a cold run (a
 * warning is printed for corrupt ones). Throws SimulationHalted when
 * policy.haltAtCycle fires.
 */
RunStats simulateWithSnapshots(const GpuConfig &cfg, const Scene &scene,
                               const Bvh &bvh, const SnapshotPolicy &policy,
                               bool resume);

/**
 * Sampled simulation (DESIGN.md §8): Gpu::runSampled under @p sample,
 * with optional snapshot capture/resume exactly as
 * simulateWithSnapshots (pass a default SnapshotPolicy and
 * resume=false to disable). RunStats comes back extrapolated, with
 * confidence intervals in RunStats::sampled.
 */
RunStats simulateSampled(const GpuConfig &cfg, const Scene &scene,
                         const Bvh &bvh, const SampleConfig &sample,
                         const SnapshotPolicy &policy = {},
                         bool resume = false);

} // namespace trt

#endif // TRT_CORE_ARCH_HH
