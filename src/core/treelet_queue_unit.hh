/**
 * @file
 * Dynamic Treelet Queue RT unit — the paper's proposed architecture
 * (sections 3.2, 4.2-4.5).
 *
 * Operation (Figure 7):
 *  1. *Initial traversal phase*: fresh warps traverse ray-stationary in
 *     the warp buffer until the rays of a warp spread over more than a
 *     threshold of distinct treelets; the warp is then terminated and
 *     its rays written to per-treelet queues (Treelet Count Table +
 *     Treelet Queue Table, ray data parked in the reserved L2 region).
 *  2. *Treelet stationary mode*: the treelet controller picks the most
 *     populated queue (>= queueThreshold rays), loads that treelet into
 *     the L1, fetches the queue's ray data (bypassing the L1), and runs
 *     the rays as treelet warps; rays leaving the treelet are re-queued
 *     by their next treelet. The next treelet (+ its ray data) is
 *     preloaded while the current queue drains (section 4.3; treelets
 *     are half the L1 so two fit).
 *  3. *Ray stationary mode*: when the largest queue falls below the
 *     threshold, stray rays from underpopulated queues are grouped into
 *     warps that traverse freely (section 4.4); when more than
 *     (warpSize - repackThreshold) lanes of such a warp complete, the
 *     warp is repacked with fresh rays from the queues (section 4.5).
 *
 * Ray virtualization (section 3.1/4.1) lives in the Gpu/CTA scheduler;
 * this unit enforces its ray capacity (maxVirtualRaysPerSm) by refusing
 * warps beyond it.
 */

#ifndef TRT_CORE_TREELET_QUEUE_UNIT_HH
#define TRT_CORE_TREELET_QUEUE_UNIT_HH

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "gpu/dispatch_policy.hh"
#include "gpu/rt_unit.hh"

namespace trt
{

/** The proposed virtualized-treelet-queue RT unit. */
class TreeletQueueRtUnit : public RtUnitBase
{
  public:
    TreeletQueueRtUnit(const GpuConfig &cfg, MemorySystem &mem,
                       const Bvh &bvh, uint32_t sm_id);

    bool tryAccept(uint64_t now, TraceRequest &&req) override;
    void tick(uint64_t now) override;
    bool idle() const override;
    uint64_t raysHeld() const override;
    void onMemCommit(uint64_t now) override;
    std::string debugStatus() const override;
    void drainFunctional(uint64_t now) override;

    /** Rays currently owned by this unit (active + parked). */
    uint32_t raysInFlight() const { return raysInFlight_; }

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  protected:
    /** VTQ occupancy: rays in flight, parked rays, live queues and the
     *  four deepest queue depths (DESIGN.md §12). */
    void telemSampleFill(TelemSample &s) const override;

  private:
    /** What a warp slot is currently running. */
    enum class SlotKind : uint8_t
    {
        Free,
        Fresh,   //!< Initial traversal phase warp.
        Treelet, //!< Treelet-stationary warp.
        Grouped, //!< Ray-stationary warp of grouped queue strays.
    };

    struct Slot
    {
        SlotKind kind = SlotKind::Free;
        uint32_t treelet = kInvalidTreelet;
        bool draining = false; //!< Fresh warp diverged: park at next stop.
        /** Entries were (re)installed since handlePolicy() last ran, so
         *  the next tick pass must run it even without step progress. */
        bool policyPending = false;
        std::vector<RayEntry> entries;
        uint32_t active = 0;
    };

    /** A ray parked in a treelet queue. */
    struct Parked
    {
        RayTraverser trav;
        uint64_t warpToken = 0;
        uint32_t ctaToken = 0;
        uint32_t rayId = 0;
        uint8_t lane = 0;
        /** Nonzero: ray data was preloaded and arrives at this cycle
         *  (section 4.3 ray-data preloading). */
        uint64_t dataReadyAt = 0;
    };

    static TraversalMode modeOf(SlotKind k);

    uint64_t rayDataAddr(uint32_t ray_id) const;
    uint32_t allocRayId();
    void releaseRayId(uint32_t ray_id);

    /** Park @p entry's ray into the queue of its next treelet. */
    void parkEntry(uint64_t now, Slot &slot, RayEntry &e);
    /** Deliver a finished ray's hit and recycle its id. */
    void finishEntry(Slot &slot, RayEntry &e);
    void deliver(uint64_t warp_token, uint8_t lane, const HitRecord &hit);

    void enqueue(uint64_t now, Parked &&p, uint32_t treelet);
    /** Fold the live table counters into the stats high-water marks
     *  (sampled per enqueue, as the full rescan used to be). */
    void updateTableHighWater();
    /** Incremental table-occupancy bookkeeping: called with the queue's
     *  new size after every push / pop. */
    void noteQueueGrew(size_t sz);
    void noteQueueShrank(size_t sz);

    /** Fill free warp slots: fresh warps first, then queue dispatch. */
    void dispatch(uint64_t now);
    void dispatchFresh(uint64_t now, Slot &slot);
    void dispatchTreelet(uint64_t now, Slot &slot, uint32_t treelet);
    void dispatchGrouped(uint64_t now, Slot &slot);
    /** Pull up to @p max rays across queues in table order into @p out
     *  (cleared first; callers pass the pooled strayScratch_). */
    void gatherStrays(uint32_t max, std::vector<Parked> &out);
    void maybePreload(uint64_t now);
    void installParked(uint64_t now, Slot &slot, Parked &&p);

    /** Per-slot policy when a ray stops at a boundary / finishes. */
    void handlePolicy(uint64_t now, Slot &slot);
    /** Distinct treelets the slot's active rays need. */
    uint32_t slotDivergence(const Slot &slot) const;

    // Live treelet-table occupancy, maintained at every queue size
    // change so the per-enqueue high-water sampling is O(1) instead of
    // a scan of every queue.
    uint32_t overThresholdNow_ = 0;
    /** Sum over queues of ceil(size / warpSize). */
    uint32_t tableEntriesNow_ = 0;

    // Pooled scratch (allocation-free steady state).
    mutable std::vector<uint32_t> divScratch_;
    std::vector<Parked> strayScratch_;
    std::vector<DispatchPolicy::QueueView> queueScratch_;

    /** Scheduling decisions (initial-phase termination, queue
     *  selection) extracted behind the DispatchPolicy interface
     *  (DESIGN.md §9); the timing of acting on them stays here. */
    std::unique_ptr<DispatchPolicy> policy_;

    /**
     * Retired traversers, kept for their grown stack capacity. Every
     * fresh ray takes one from here (tryAccept) and its buffers return
     * when a dispatch recycles the slot entries — without this, each
     * ray pays the full vector growth sequence of its stacks plus the
     * matching frees, which dominates the simulator's malloc traffic.
     */
    std::vector<RayTraverser> travPool_;

    /** Pop a pooled traverser (or a fresh one when the pool is dry). */
    RayTraverser
    takeTraverser()
    {
        if (travPool_.empty())
            return RayTraverser();
        RayTraverser t = std::move(travPool_.back());
        travPool_.pop_back();
        return t;
    }

    /** Return every entry's traverser buffers to the pool and reset the
     *  entries; only legal on slots with no live rays. */
    void
    reclaimEntries(Slot &slot)
    {
        for (auto &e : slot.entries) {
            travPool_.push_back(std::move(e.trav));
            e = RayEntry{};
        }
    }

    void accountInterval(uint64_t now);

    // ---- state ---------------------------------------------------------
    std::vector<Slot> slots_;
    std::deque<std::vector<Parked>> pendingFresh_;

    /** treeletId -> parked rays; std::map gives the deterministic
     *  "first table entry" order section 4.4 gathers in. */
    std::map<uint32_t, std::deque<Parked>> queues_;
    uint64_t queuedRays_ = 0;

    struct WarpBk
    {
        uint32_t outstanding = 0;
        std::vector<LaneHit> hits;
    };
    std::unordered_map<uint64_t, WarpBk> warps_;

    uint32_t raysInFlight_ = 0;
    std::vector<uint32_t> freeRayIds_;
    uint32_t nextRayId_ = 0;

    uint32_t loadedTreelet_ = kInvalidTreelet;
    uint32_t preloadedTreelet_ = kInvalidTreelet;

    /** Last cycle a QueueOverflow event was traced. Admission refusals
     *  repeat every retry cycle while the unit is full; tracing one per
     *  sampling window keeps the trace readable. Serialized (VTQU) so a
     *  resumed trace rate-limits identically. */
    uint64_t lastOverflowEventAt_ = 0;

    /**
     * Ray-data preloads deferred in an issue phase whose destination —
     * a Parked in a deque, possibly moved into a slot entry within the
     * same tick — cannot be pinned by address. onMemCommit() resolves
     * each ticket and finds the ray by id instead.
     */
    struct PreloadFixup
    {
        MemTicket ticket;
        uint32_t rayId;
        uint32_t treelet;
    };
    std::vector<PreloadFixup> preloadFixups_;
};

} // namespace trt

#endif // TRT_CORE_TREELET_QUEUE_UNIT_HH
